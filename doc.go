// Package rix is a from-scratch reproduction of "Three Extensions to
// Register Integration" (Roth, Bracy, Petric — University of Pennsylvania
// TR MS-CIS-02-22, 2002): a cycle-level, execution-driven, out-of-order
// superscalar simulator whose register-rename stage implements register
// integration, plus the paper's three extensions — general reuse via
// physical-register reference counting, opcode/call-depth integration
// table indexing, and reverse integration (speculative memory bypassing
// for stack saves and restores).
//
// # Streaming trace pipeline
//
// Golden traces are produced and consumed through the emu.TraceSource
// contract (Next/Err/Rewind/SizeHint): the emulator is an incremental
// producer (emu.Stream), the pipeline buffers only a sliding window of
// O(ROB + fetch queue) records, and workload.Built mints an independent
// source per simulation so concurrent configs of one workload never
// share a cursor. Memory per simulation is therefore bounded by the
// machine's in-flight window, not by trace length (formerly up to
// 24 bytes x 2^24 records materialized per workload). emu.FromSlice
// adapts recorded traces, and emu.Materialize / workload.Built.Materialize
// flatten a stream for tests and small traces. The pipeline's steady
// state allocates nothing: uops recycle through a free list sized to the
// in-flight window, completion events reuse a pooled ring of buffers,
// and the issue stage sorts candidates in preallocated scratch.
//
// # The unified run API
//
// internal/run is the single entry point for every simulation: a run is
// described by a JSON-serializable run.Request (workload name or inline
// program, sim.Options including sampling, checkpoint/resume knobs),
// validated eagerly, and executed by run.Do(ctx, req, opts...), which
// routes automatically to the full-detail pipeline, the sampling
// engine, or checkpoint resume. The context is honored at batched poll
// boundaries through the whole stack (pipeline cycle loop, emulator
// streams, sampling windows, workload builds, runner pool) so a
// cancelled run returns ctx.Err() promptly without putting work on the
// per-cycle path; a cancelled checkpointing sampled run flushes a final
// checkpoint and a Resume request finishes it bit-identically
// (sample.Continue). run.Observer receives typed progress events (cell
// started/finished, instructions retired, window completed, checkpoint
// written); runner.Engine executes its spec matrices through run.Do and
// forwards every cell's events to Engine.Observer. internal/sim is pure
// configuration — Options renders presets into pipeline.Config and has
// no execution entry point of its own.
//
// # Sampled simulation
//
// internal/sample layers checkpointed interval sampling on the
// streaming contract: functional fast-forward with microarchitectural
// warming (caches, TLBs, branch predictors, BTB, RAS), periodic
// detailed measurement windows booted mid-trace via pipeline.BootState
// (a warmup prefix with statistics gated off warms the
// rename-dependent state), per-window Stats aggregated into estimates
// with confidence half-widths, and gob checkpoints per window boundary
// so runs resume and windows shard across processes (doc/FORMATS.md
// specifies the on-disk encodings). A two-phase mode fast-forwards
// once, snapshots every window boundary, and executes the detail
// windows speculatively on a shared work-stealing scheduler
// (sample.Scheduler): a process-wide pool of worker slots, each
// holding a pooled boot clone re-seeded in place per window, that all
// sampled cells draw from — a cell that settles early stops
// submitting and its slots flow to cells still draining — with the
// estimate bit-identical to the sequential engine and the
// dispatched/settled/discarded window counts reported on
// run.Result.Sampled. The warm pass itself shards over disjoint trace
// spans (-warm-jobs workers resuming from layout-independent stride
// snapshots, captured every -warm-stride instructions via the
// emulator's copy-on-write memory) with the resulting warm set
// bit-identical to the sequential pass's, and its output is reusable
// through a content-addressed, LRU-bounded checkpoint cache
// (run.Request.CheckpointCache, rixsim/rixbench -ckpt-cache,
// -ckpt-cache-mb, -ckpt-cache-age) that holds both .warmset and
// .stride entries. sim.Options.Sampling selects
// sampling per cell; runner routes sampled cells automatically and
// sizes the matrix-wide scheduler from its -j budget (Engine
// .WindowJobs overrides), and runner.Sampled derives sampled variants
// of whole specs (rixbench -sample). doc/ARCHITECTURE.md maps the
// whole sampling stack top to bottom.
//
// Layout:
//
//	internal/isa          Alpha-flavoured 64-bit RISC ISA
//	internal/asm          two-pass assembler
//	internal/emu          architectural emulator (golden model / DIVA)
//	internal/bpred        hybrid branch predictor, BTB, RAS, CHT
//	internal/memsys       caches, TLBs, MSHRs, write buffer, buses
//	internal/regfile      reference-counted physical register file
//	internal/rename       pointer-based map table
//	internal/core         the paper's contribution: IT, LISP, logic
//	internal/pipeline     13-stage 4-way out-of-order core
//	internal/sim          named configuration presets (pure configuration facade)
//	internal/sample       checkpointed interval-sampling engine (Run/Resume/Continue)
//	internal/run          unified run API: Request/Do/Observer/Result (serializable, cancellable)
//	internal/workload     16 synthetic SPEC2000int stand-ins
//	internal/runner       experiment engine over run.Do: spec registry, lazy builds, bounded pool
//	internal/experiments  the paper's figures/diagnostics as registered specs
//	cmd/internal/cmdutil  shared CLI harness: signal-cancelled contexts, one exit path
//	cmd/rixsim            single-run driver over run.Do (-sample/-resume/-req/-json/-timeout)
//	cmd/rixbench          figure/table reproduction harness (-sample for the fast matrix)
//	cmd/rixasm            assembler / disassembler
//	cmd/rixtrace          functional profiler (streaming; -out records the trace)
//	cmd/benchgate         bench output -> BENCH_pipeline.json + perf gates (-update refreshes baseline)
//	examples/             quickstart, membypass, complexity, customworkload, runapi
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for measured
// results against the paper.
package rix
