#!/usr/bin/env bash
# lint_docs.sh — keep the user-facing docs honest about the CLIs.
#
# Fails if README.md, EXPERIMENTS.md, doc/ARCHITECTURE.md, or
# doc/FORMATS.md reference a `-flag` that no command under cmd/
# actually defines, the way the docs drifted when the static per-cell
# window split was retired. Flag definitions are discovered by
# grepping cmd/ for flag.<Type>("name", ...) calls and for
# fs.<Type>Var(...) registrations on a FlagSet (how the shared
# cmdutil.SampledFlags group installs its flags, and how rixvet builds
# its standalone FlagSet), so a renamed or deleted flag fails this
# lint until every doc mention is updated.
# Go-toolchain flags that legitimately appear in doc command lines
# (go test -bench, gofmt -l, ...) are allowlisted.
set -euo pipefail
cd "$(dirname "$0")/.."

defined=$(grep -rhoE '(flag|fs)\.[A-Za-z][A-Za-z0-9]*\((&[A-Za-z0-9.]+, )?"[a-z][a-z0-9-]*"' cmd/ \
  | sed -E 's/.*"([^"]+)".*/\1/' | sort -u)
if [ -z "$defined" ]; then
  echo "lint_docs: found no flag definitions under cmd/ — the grep is broken" >&2
  exit 1
fi

# The cross-process flag group (-worker, -worker-idle, -coordinator)
# registers through cmdutil.SampledFlags like the other sampled knobs,
# and the distributed-windows docs lean on it heavily. Its absence
# from the discovered set means the registration moved or the grep
# broke — fail fast instead of silently passing stale doc mentions.
for f in worker worker-idle coordinator; do
  if ! grep -qx "$f" <<<"$defined"; then
    echo "lint_docs: cross-process flag -$f not discovered under cmd/ — registration or the grep broke" >&2
    exit 1
  fi
done

# go test / gofmt / go vet flags quoted in CI and benchmarking docs
# (vettool is go vet's own flag, quoted in the rixvet instructions).
toolchain="bench benchmem benchtime race run count cover l vettool"

fail=0
for doc in README.md EXPERIMENTS.md doc/ARCHITECTURE.md doc/FORMATS.md; do
  # A doc flag reference is `-name` at a word start: preceded by a
  # space, backtick, or parenthesis so hyphenated prose (two-phase,
  # best-effort) and numeric ranges (2-5x) never match.
  refs=$(grep -oE "(^|[ \`(])-[a-z][a-z0-9-]*" "$doc" \
    | sed -E 's/^[^-]*-//' | sort -u)
  for r in $refs; do
    case " $toolchain " in *" $r "*) continue ;; esac
    if ! grep -qx "$r" <<<"$defined"; then
      echo "lint_docs: $doc references -$r but no command under cmd/ defines it" >&2
      fail=1
    fi
  done
done

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "lint_docs: every doc-referenced flag is defined by a command"
