#!/usr/bin/env bash
# smoke_worker.sh — cross-process executor smoke: a `-coordinator` run
# whose detail windows execute on two real `rixsim -worker` processes
# must print byte-for-byte the output of a plain in-process run.
#
# TestCrossProcessBitEqual and TestCrossProcessEngineParity prove the
# same equality inside one test process; this script is the CI check
# that the *process boundary* — flag wiring, the worker main loop, gob
# manifests/leases/results on a real filesystem — preserves it. The
# text output (stats block + sampled summary) carries no wall-clock
# times, so a plain `diff` is an exact comparison.
#
# SMOKE_DIR, when set, names the shared cache directory and leaves it
# in place afterwards (the nightly tier sets it to upload the resulting
# .warmset/.stride cache entries as an artifact); unset, a temp dir is
# used and removed.
set -euo pipefail
cd "$(dirname "$0")/.."

bin=$(mktemp -d)
keep_dir=1
if [ -z "${SMOKE_DIR:-}" ]; then
  SMOKE_DIR=$(mktemp -d)
  keep_dir=0
fi
mkdir -p "$SMOKE_DIR"

workers=()
cleanup() {
  if [ "${#workers[@]}" -gt 0 ]; then
    kill "${workers[@]}" 2>/dev/null || true
  fi
  wait 2>/dev/null || true
  rm -rf "$bin"
  if [ "$keep_dir" -eq 0 ]; then
    rm -rf "$SMOKE_DIR"
  fi
}
trap cleanup EXIT

go build -o "$bin/rixsim" ./cmd/rixsim

# Two workers on the shared directory. The generous -worker-idle is a
# backstop against a wedged run; cleanup kills them as soon as the
# diff has run.
"$bin/rixsim" -worker "$SMOKE_DIR" -worker-idle 10m &
workers+=($!)
"$bin/rixsim" -worker "$SMOKE_DIR" -worker-idle 10m &
workers+=($!)

cell=(-bench gzip -int +reverse -sample default)
# -timeout bounds the coordinator: if both workers died, the run fails
# here instead of hanging the job until the CI-level timeout.
"$bin/rixsim" "${cell[@]}" -coordinator -ckpt-cache "$SMOKE_DIR" \
  -timeout 10m > "$bin/proc.txt"
"$bin/rixsim" "${cell[@]}" > "$bin/inproc.txt"

diff -u "$bin/inproc.txt" "$bin/proc.txt"
echo "smoke_worker: cross-process output byte-identical to in-process"
