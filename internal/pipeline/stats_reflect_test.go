package pipeline

import (
	"reflect"
	"strings"
	"testing"
)

// TestVisitCountersCoversStats pins the invariant the reflection in
// Delta/Add relies on: every Stats field is a uint64 counter or a
// uint64 array, so visitCounters walks the whole struct without
// panicking and visits at least one element per field.
func TestVisitCountersCoversStats(t *testing.T) {
	st := reflect.TypeOf(Stats{})
	seen := make(map[int]bool)
	visitCounters(st, "Delta", func(field, elem int) {
		seen[field] = true
	})
	if len(seen) != st.NumField() {
		t.Fatalf("visitCounters visited %d of %d Stats fields", len(seen), st.NumField())
	}
}

func expectPanicNaming(t *testing.T, wantSubstrings ...string) {
	t.Helper()
	r := recover()
	if r == nil {
		t.Fatal("expected a panic, got none")
	}
	msg, ok := r.(string)
	if !ok {
		t.Fatalf("panic value is %T, want the descriptive string", r)
	}
	for _, want := range wantSubstrings {
		if !strings.Contains(msg, want) {
			t.Errorf("panic %q does not mention %q", msg, want)
		}
	}
}

// TestVisitCountersRejectsNonNumericField checks the descriptive panic:
// a field that is neither uint64 nor a uint64 array must be named in
// the message, so whoever adds it knows to write a Delta/Add rule.
func TestVisitCountersRejectsNonNumericField(t *testing.T) {
	type badStats struct {
		Cycles uint64
		Label  string
	}
	defer expectPanicNaming(t, "Label", "string", "Delta rule")
	visitCounters(reflect.TypeOf(badStats{}), "Delta", func(int, int) {})
}

// TestVisitCountersRejectsNonNumericArray checks that an array of a
// non-counter element type fails descriptively too, instead of the
// opaque reflect.Value.Uint panic the old per-method loops produced.
func TestVisitCountersRejectsNonNumericArray(t *testing.T) {
	type badStats struct {
		Names [3]string
	}
	defer expectPanicNaming(t, "Names", "[3]string", "Add rule")
	visitCounters(reflect.TypeOf(badStats{}), "Add", func(int, int) {})
}

// TestDeltaAddRoundTrip checks the two reflection walks stay duals:
// base.Add(total.Delta(base)) reproduces total for counters, with
// TraceWindowPeak following its max/latch rule.
func TestDeltaAddRoundTrip(t *testing.T) {
	var base, total Stats
	base.Retired, total.Retired = 100, 350
	base.IntType[1], total.IntType[1] = 7, 30
	base.IntDistance[3], total.IntDistance[3] = 2, 12
	base.TraceWindowPeak, total.TraceWindowPeak = 40, 64

	d := total.Delta(&base)
	if d.Retired != 250 || d.IntType[1] != 23 || d.IntDistance[3] != 10 {
		t.Fatalf("Delta got Retired=%d IntType[1]=%d IntDistance[3]=%d", d.Retired, d.IntType[1], d.IntDistance[3])
	}
	if d.TraceWindowPeak != 64 {
		t.Fatalf("Delta TraceWindowPeak = %d, want the whole-run value 64", d.TraceWindowPeak)
	}
	sum := base
	sum.Add(&d)
	if sum.Retired != total.Retired || sum.IntType[1] != total.IntType[1] ||
		sum.TraceWindowPeak != 64 {
		t.Fatalf("Add after Delta: got %+v, want counters of %+v", sum, total)
	}
}
