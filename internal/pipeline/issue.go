package pipeline

import (
	"rix/internal/isa"
	"rix/internal/regfile"
)

// priorityOf orders issue candidates: loads, branches and floating-point
// first (paper §3.1), age as the tie-breaker.
func priorityOf(u *uop) int {
	switch u.in.Op.ClassOf() {
	case isa.ClassLoad:
		return 0
	case isa.ClassBranch, isa.ClassCallIndirect, isa.ClassJumpIndirect, isa.ClassRet:
		return 0
	case isa.ClassFP:
		return 0
	default:
		return 1
	}
}

// srcReady reports whether all of u's register sources have values.
func (pl *Pipeline) srcReady(u *uop) bool {
	if u.in.Op.ReadsRa() && !pl.ready(u.src1.P) {
		return false
	}
	if u.in.Op.ReadsRb() && !pl.ready(u.src2.P) {
		return false
	}
	if (u.in.Op == isa.CMOVEQ || u.in.Op == isa.CMOVNE) && !pl.ready(u.oldDest.P) {
		return false
	}
	return true
}

func (pl *Pipeline) ready(p regfile.PReg) bool {
	return p == regfile.ZeroReg || pl.rf.Ready(p)
}

// loadMayIssue applies the memory-ordering issue policy: loads issue
// speculatively past unresolved older stores, unless the collision
// history table predicts a conflict, in which case the load waits until
// every older store address is resolved.
func (pl *Pipeline) loadMayIssue(u *uop) bool {
	if !pl.cht.Predict(u.pc) {
		return true
	}
	if pl.olderStoresResolved(u) {
		return true
	}
	pl.Stats.CHTStallsGranted++
	return false
}

// olderStoresResolved scans the LSQ for older stores with unresolved
// addresses.
func (pl *Pipeline) olderStoresResolved(u *uop) bool {
	for i := pl.lsqIndexOf(u) - 1; i >= 0; i-- {
		v := pl.lsq[(pl.lsqHead+i)%len(pl.lsq)]
		if v.isStore && !v.addrValid {
			return false
		}
	}
	return true
}

// lsqIndexOf converts a uop's ring position to its ordinal in the LSQ.
func (pl *Pipeline) lsqIndexOf(u *uop) int {
	d := u.lsqPos - pl.lsqHead
	if d < 0 {
		d += len(pl.lsq)
	}
	return d
}

// issueStage selects up to IssueWidth ready instructions under the
// per-class port constraints and dispatches them to execution.
//
//rix:hotpath
func (pl *Pipeline) issueStage() {
	intPorts := pl.cfg.IntPorts
	fpPorts := pl.cfg.FPPorts
	loadPorts := pl.cfg.LoadPorts
	storePorts := pl.cfg.StorePorts
	budget := pl.cfg.IssueWidth

	cand := pl.cand[:0] // scratch preallocated to NumRS: no per-cycle allocation
	for _, u := range pl.rs {
		if u == nil || u.issued || u.squashed {
			continue
		}
		if !pl.srcReady(u) {
			continue
		}
		if u.isLoad && !pl.loadMayIssue(u) {
			continue
		}
		cand = append(cand, u)
	}
	if len(cand) == 0 {
		return
	}
	// Insertion sort by (priority, seq); seq is unique, so the order is
	// total and matches what sort.Slice produced.
	for i := 1; i < len(cand); i++ {
		u := cand[i]
		pu := priorityOf(u)
		j := i - 1
		for j >= 0 {
			pj := priorityOf(cand[j])
			if pj < pu || (pj == pu && cand[j].seq < u.seq) {
				break
			}
			cand[j+1] = cand[j]
			j--
		}
		cand[j+1] = u
	}

	for _, u := range cand {
		if budget == 0 {
			return
		}
		switch u.in.Op.ClassOf() {
		case isa.ClassIntALU, isa.ClassBranch, isa.ClassCallIndirect, isa.ClassJumpIndirect, isa.ClassRet:
			if intPorts == 0 {
				continue
			}
			intPorts--
		case isa.ClassIntMul, isa.ClassFP:
			if fpPorts == 0 {
				continue
			}
			fpPorts--
		case isa.ClassLoad:
			if loadPorts == 0 {
				continue
			}
			loadPorts--
		case isa.ClassStore:
			if pl.cfg.CombinedLS {
				if loadPorts == 0 {
					continue
				}
				loadPorts--
			} else {
				if storePorts == 0 {
					continue
				}
				storePorts--
			}
		}
		budget--
		pl.issue(u)
	}
}

// issue dispatches one uop, freeing its reservation station.
func (pl *Pipeline) issue(u *uop) {
	u.issued = true
	u.issueCyc = pl.now
	pl.Stats.Executed++
	pl.rs[u.rsIdx] = nil
	u.rsIdx = -1
	pl.rsUsed--

	switch {
	case u.isLoad:
		pl.schedule(pl.now+1, event{kind: evAddrGen, u: u})
	case u.isStore:
		pl.schedule(pl.now+1, event{kind: evStoreExec, u: u})
	case u.in.Op.IsControl():
		lat := uint64(u.in.Op.Latency()) + pl.cfg.ResolveDelay
		pl.schedule(pl.now+lat, event{kind: evExec, u: u})
	default:
		pl.schedule(pl.now+uint64(u.in.Op.Latency()), event{kind: evExec, u: u})
	}
}
