package pipeline

import (
	"fmt"

	"rix/internal/isa"
	"rix/internal/regfile"
	"rix/internal/rename"
)

// retireStage retires up to RetireWidth completed instructions in order,
// running the DIVA check on each. DIVA re-execution is modelled by
// comparison against the golden architectural trace: any value the
// machine is about to commit that differs from the architectural result
// is a fault. Integrated instructions faulting this way are
// mis-integrations; speculative loads faulting are late-caught ordering
// violations; anything else is a simulator bug.
//
//rix:hotpath
func (pl *Pipeline) retireStage() {
	if pl.now < pl.retireStall {
		return
	}
	for n := 0; n < pl.cfg.RetireWidth && pl.robLen > 0; n++ {
		u := pl.rob[pl.robHead]
		if !u.completed(pl.rf) {
			return
		}
		if u.traceIdx != int64(pl.Stats.Retired) {
			//rix:alloc-ok — divergence panic: simulator-bug path
			panic(fmt.Sprintf("pipeline: retirement stream diverged at %d: uop trace %d pc %#x",
				pl.Stats.Retired, u.traceIdx, u.pc))
		}
		rec := pl.win.at(int(u.traceIdx))
		if rec.PC(pl.prog) != u.pc {
			panic("pipeline: retiring PC does not match golden trace")
		}

		// DIVA value check.
		if bad, kind := pl.divaCheck(u); bad {
			pl.handleDIVAFault(u, kind)
			return
		}

		// Commit.
		if u.isStore {
			pl.commitStore(u)
		}
		if u.hasDest {
			old := pl.arch.Get(u.in.Rd)
			if old.P != regfile.ZeroReg {
				pl.rf.Release(old.P, regfile.CauseShadow)
			}
			pl.arch.Set(u.in.Rd, rename.Mapping{P: u.destPreg, Gen: u.destGen})
			if pl.prod[u.destPreg] == u {
				pl.prod[u.destPreg] = nil
			}
		}
		if u.isCondBranch() {
			pl.Stats.CondBranches++
			pl.pred.Train(u.pc, u.resolvedTaken, u.histSnap)
			if u.resolvedTaken != u.predTaken {
				pl.Stats.CondMispredicts++
				pl.Stats.ResolutionLatency += u.resolvedAt - u.fetchCycle
			}
		}
		if u.in.Op.ClassOf() == isa.ClassCallIndirect ||
			u.in.Op.ClassOf() == isa.ClassJumpIndirect ||
			u.in.Op.ClassOf() == isa.ClassRet {
			pl.Stats.IndirectBranches++
			if u.resolvedTarget != u.predTarget {
				pl.Stats.IndirectMispreds++
			}
		}
		if u.isLoad {
			pl.Stats.LoadsRetired++
			if u.in.IsSPLoad() {
				pl.Stats.SPLoadsRetired++
			}
		}
		if u.integrated {
			pl.noteIntegrationRetired(u)
		}

		pl.rob[pl.robHead] = nil
		pl.robHead = (pl.robHead + 1) % len(pl.rob)
		pl.robLen--
		if u.lsqPos >= 0 {
			pl.popLSQHead(u)
		}
		pl.Stats.Retired++
		pl.win.release(int(pl.Stats.Retired))
		pl.freeUop(u)
		if !pl.win.has(int(pl.Stats.Retired)) {
			// End of golden stream: the whole trace has retired.
			pl.halted = true
			return
		}
		if pl.now < pl.retireStall {
			// Write buffer full: the store committed but retirement
			// backpressure stalls the rest of the group.
			return
		}
	}
}

// popLSQHead removes a retiring memory op, which must be the LSQ head.
func (pl *Pipeline) popLSQHead(u *uop) {
	if pl.lsq[pl.lsqHead] != u {
		panic("pipeline: retiring memory op is not the LSQ head")
	}
	pl.lsq[pl.lsqHead] = nil
	pl.lsqHead = (pl.lsqHead + 1) % len(pl.lsq)
	pl.lsqLen--
}

// divaKind classifies DIVA faults.
type divaKind uint8

const (
	faultMisIntegration divaKind = iota
	faultLateViolation
)

// divaCheck compares the uop's committed effect against the golden trace.
func (pl *Pipeline) divaCheck(u *uop) (bool, divaKind) {
	rec := pl.win.at(int(u.traceIdx))
	var bad bool
	switch {
	case u.isStore:
		bad = u.addr != rec.Addr || u.storeData != rec.Value
	case u.isCondBranch():
		bad = u.resolvedTaken != (rec.Value == 1)
	case u.hasDest:
		bad = pl.rf.Value(u.destPreg) != rec.Value
	}
	if !bad {
		return false, 0
	}
	switch {
	case u.integrated:
		return true, faultMisIntegration
	case u.isLoad && u.specPastStores:
		return true, faultLateViolation
	default:
		panic(fmt.Sprintf(
			"pipeline: DIVA fault on non-integrated %v at %#x (trace %d): simulator bug",
			u.in.Op, u.pc, u.traceIdx))
	}
}

// handleDIVAFault performs the paper's mis-integration recovery: a
// complete pipeline flush including the faulting instruction, modelled as
// monolithic single-cycle recovery, plus LISP/IT training.
func (pl *Pipeline) handleDIVAFault(u *uop, kind divaKind) {
	switch kind {
	case faultMisIntegration:
		pl.Stats.MisIntegrations++
		if u.in.Op.IsLoad() {
			pl.Stats.MisIntLoads++
		} else {
			pl.Stats.MisIntRegs++
		}
		if pl.cfg.Policy.Oracle {
			pl.Stats.OracleResidual++
		}
		pl.integ.OnMisIntegration(u.in, u.pc, u.intRes.Entry, u.intRes.EntryStamp)
	case faultLateViolation:
		pl.Stats.LateLoadViolation++
		pl.cht.Train(u.pc)
	}
	pl.Stats.DIVAFlushes++
	pc, cursorAt := u.pc, u.traceIdx // capture: the inclusive squash recycles u
	pl.squashFrom(u, true)
	pl.redirectFetch(pc, cursorAt)
}

// commitStore writes the store architecturally and charges the write
// buffer; a full buffer stalls subsequent retirement.
func (pl *Pipeline) commitStore(u *uop) {
	if u.in.Op == isa.STQ {
		pl.archMem.Write64(u.addr, u.storeData)
	} else {
		pl.archMem.Write32(u.addr, u.storeData)
	}
	admitAt := pl.mem.Store(u.addr, pl.now)
	if admitAt > pl.now {
		pl.retireStall = admitAt
	}
}

// noteIntegrationRetired accumulates the paper's integration statistics;
// rates are measured at retirement to avoid counting squashed
// integrations (§3.2).
func (pl *Pipeline) noteIntegrationRetired(u *uop) {
	pl.Stats.Integrated++
	if u.intRes.Reverse {
		pl.Stats.IntegratedReverse++
	} else {
		pl.Stats.IntegratedDirect++
	}
	pl.Stats.IntType[u.integrationType()]++
	pl.Stats.IntDistance[distanceBucket(u.intRes.Distance)]++
	pl.Stats.IntStatus[u.intStatus]++
	if !u.intRes.IsBranch {
		pl.Stats.IntRefcount[refcountBucket(u.intRes.RefAfter)]++
	}
}
