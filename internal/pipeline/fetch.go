package pipeline

import (
	"rix/internal/isa"
)

func isaReg(l int) isa.Reg { return isa.Reg(l) }

// fetchStage fetches up to FetchWidth instructions along the predicted
// path, charging the I-cache and maintaining the golden-trace cursor that
// labels correct-path instructions.
//
//rix:hotpath
func (pl *Pipeline) fetchStage() {
	if pl.fetchPC == 0 || pl.now < pl.fetchReadyAt {
		return
	}
	if pl.fqLen >= pl.cfg.FetchQueue {
		return
	}

	// One I-cache access per fetch group.
	if !pl.icachePaid {
		done := pl.mem.IFetch(pl.fetchPC, pl.now)
		if done > pl.now+pl.cfg.Mem.L1I.HitLatency {
			pl.fetchReadyAt = done
			pl.icachePaid = true
			pl.Stats.FetchStallsICache++
			return
		}
	}
	pl.icachePaid = false

	for n := 0; n < pl.cfg.FetchWidth && pl.fqLen < pl.cfg.FetchQueue; n++ {
		in, ok := pl.prog.InstrAt(pl.fetchPC)
		if !ok {
			// Wrong-path fetch ran off the text segment; wait for a
			// redirect.
			pl.fetchPC = 0
			return
		}
		u := pl.newUop()
		u.pc = pl.fetchPC
		u.in = in
		u.fetchCycle = pl.now
		u.renameReady = pl.now + pl.cfg.FrontendDepth
		u.rsIdx = -1
		u.lsqPos = -1
		u.traceIdx = -1
		u.callDepth = pl.ras.Depth()
		u.rasSnap = pl.ras.Snapshot()
		u.histSnap = pl.pred.HistSnapshot()

		// Golden-trace tracking: on the correct path, the fetch PC must
		// equal the next trace record's PC (pulled incrementally from the
		// streaming source).
		if pl.onPath && pl.win.has(pl.cursor) {
			if pl.win.at(pl.cursor).PC(pl.prog) == pl.fetchPC {
				u.traceIdx = int64(pl.cursor)
				pl.cursor++
			} else {
				pl.onPath = false
			}
		} else {
			pl.onPath = false
		}
		if !pl.onPath {
			pl.Stats.FetchedWrongPath++
		}
		pl.Stats.Fetched++

		nextPC := pl.fetchPC + isa.InstrBytes
		groupEnds := false
		switch in.Op.ClassOf() {
		case isa.ClassBranch:
			taken, snap := pl.pred.Predict(u.pc)
			u.histSnap = snap
			u.predTaken = taken
			pl.pred.SpecUpdate(taken)
			if taken {
				nextPC = in.Target(u.pc)
				groupEnds = true
			}
		case isa.ClassJumpDirect:
			nextPC = in.Target(u.pc)
			groupEnds = true
		case isa.ClassCallDirect:
			pl.ras.Push(u.pc + isa.InstrBytes)
			nextPC = in.Target(u.pc)
			groupEnds = true
		case isa.ClassCallIndirect:
			pl.ras.Push(u.pc + isa.InstrBytes)
			if tgt, ok := pl.btb.Predict(u.pc); ok {
				u.predTarget = tgt
				nextPC = tgt
			} else {
				nextPC = 0 // stall until resolution redirects
			}
			groupEnds = true
		case isa.ClassJumpIndirect:
			if tgt, ok := pl.btb.Predict(u.pc); ok {
				u.predTarget = tgt
				nextPC = tgt
			} else {
				nextPC = 0
			}
			groupEnds = true
		case isa.ClassRet:
			if tgt, ok := pl.ras.Pop(); ok {
				u.predTarget = tgt
				nextPC = tgt
			} else {
				nextPC = 0
			}
			groupEnds = true
		}

		pl.fqPush(u)
		pl.fetchPC = nextPC
		if groupEnds || nextPC == 0 {
			return
		}
	}
}

// redirectFetch points fetch at pc starting next cycle and resets the
// golden cursor. afterTraceIdx is the trace index of the instruction the
// redirect logically follows (-1 when it was on the wrong path);
// inclusive redirects (DIVA, load violations) pass the instruction's own
// index via exactTraceIdx >= 0.
func (pl *Pipeline) redirectFetch(pc uint64, cursorAt int64) {
	pl.fetchPC = pc
	pl.fetchReadyAt = pl.now + 1
	pl.icachePaid = false
	if cursorAt >= 0 {
		pl.cursor = int(cursorAt)
		pl.onPath = true
	} else {
		pl.onPath = false
	}
}
