package pipeline

import (
	"reflect"
	"testing"

	"rix/internal/bpred"
	"rix/internal/emu"
	"rix/internal/workload"
)

func buildWorkload(t testing.TB, name string) workload.Built {
	t.Helper()
	b, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("workload %q not registered", name)
	}
	bw, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return bw
}

// TestNewFromColdBootEquivalence pins the boot-state seam: booting from
// an explicit count-0 emulator state with cold structures must be
// *byte-identical* to the default constructor — same register
// allocation order, same stats — so the sampled path's window 0 is
// exactly the full machine's start.
func TestNewFromColdBootEquivalence(t *testing.T) {
	bw := buildWorkload(t, "gzip")
	cfg := DefaultConfig()
	cfg.Policy.Enable = true
	cfg.Policy.GeneralReuse = true
	cfg.Policy.UseLISP = true

	ref, err := New(cfg, bw.Prog, bw.Source()).Run()
	if err != nil {
		t.Fatal(err)
	}

	st := emu.New(bw.Prog).State() // architectural state at instruction 0
	mem, err := emu.NewMemoryFromState(st.Mem)
	if err != nil {
		t.Fatal(err)
	}
	boot := &BootState{PC: st.PC, Regs: st.Regs, Mem: mem}
	got, err := NewFrom(cfg, bw.Prog, bw.Source(), boot).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("cold-boot NewFrom diverges from New:\nref: %+v\ngot: %+v", ref, got)
	}
}

// TestRunWindowFullCoverage runs a "window" covering the whole program
// with zero warmup from the cold-boot state: the measured delta must
// equal the full run's stats.
func TestRunWindowFullCoverage(t *testing.T) {
	bw := buildWorkload(t, "gzip")
	cfg := DefaultConfig()

	ref, err := New(cfg, bw.Prog, bw.Source()).Run()
	if err != nil {
		t.Fatal(err)
	}
	st := emu.New(bw.Prog).State()
	mem, err := emu.NewMemoryFromState(st.Mem)
	if err != nil {
		t.Fatal(err)
	}
	boot := &BootState{PC: st.PC, Regs: st.Regs, Mem: mem}
	got, err := NewFrom(cfg, bw.Prog, bw.Source(), boot).RunWindow(0, uint64(bw.DynLen))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("full-coverage RunWindow diverges from Run:\nref: %+v\ngot: %+v", ref, got)
	}
}

// TestRunWindowWarmupGating checks the windowed-stats contract: warmup
// retirement is excluded, the measured window's retired count is the
// requested measure (within one retire group), and warmup+measured never
// exceeds the source.
func TestRunWindowWarmupGating(t *testing.T) {
	bw := buildWorkload(t, "gzip")
	cfg := DefaultConfig()
	const warmup, measure = 500, 1000

	src := emu.Limit(bw.Source(), warmup+measure+uint64(cfg.ROBSize))
	st, err := New(cfg, bw.Prog, src).RunWindow(warmup, measure)
	if err != nil {
		t.Fatal(err)
	}
	if st.Retired < measure || st.Retired >= measure+uint64(cfg.RetireWidth) {
		t.Errorf("measured %d retired, want ~%d", st.Retired, measure)
	}
	if st.Cycles == 0 || st.IPC() <= 0 {
		t.Errorf("no cycles measured: %+v", st.Cycles)
	}

	// A stream ending inside warmup measures nothing.
	empty, err := New(cfg, bw.Prog, emu.Limit(bw.Source(), 100)).RunWindow(500, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if *empty != (Stats{}) {
		t.Errorf("warmup-only stream measured something: %+v", empty)
	}
}

// TestStatsDeltaAdd pins the windowed-stats arithmetic, and fails when a
// future Stats field gains a kind the reflection walk cannot handle.
func TestStatsDeltaAdd(t *testing.T) {
	var a, b Stats
	a.Retired, b.Retired = 100, 40
	a.Cycles, b.Cycles = 1000, 300
	a.IntType[2], b.IntType[2] = 7, 3
	a.TraceWindowPeak, b.TraceWindowPeak = 150, 90

	d := a.Delta(&b)
	if d.Retired != 60 || d.Cycles != 700 || d.IntType[2] != 4 {
		t.Errorf("delta: %+v", d)
	}
	if d.TraceWindowPeak != 150 {
		t.Errorf("delta peak = %d, want the final high-water mark 150", d.TraceWindowPeak)
	}

	sum := b
	sum.Add(&d)
	if sum.Retired != 100 || sum.Cycles != 1000 || sum.IntType[2] != 7 {
		t.Errorf("add: %+v", sum)
	}
	if sum.TraceWindowPeak != 150 {
		t.Errorf("add peak = %d, want max 150", sum.TraceWindowPeak)
	}

	// Every field must be uint64 or an array of uint64 — the kinds the
	// reflection walk handles; anything else must be special-cased in
	// Delta/Add before this test is updated.
	rt := reflect.TypeOf(Stats{})
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		switch f.Type.Kind() {
		case reflect.Uint64:
		case reflect.Array:
			if f.Type.Elem().Kind() != reflect.Uint64 {
				t.Errorf("field %s: array of %s needs a Delta/Add rule", f.Name, f.Type.Elem())
			}
		default:
			t.Errorf("field %s: kind %s needs a Delta/Add rule", f.Name, f.Type.Kind())
		}
	}
}

// TestBootStateInjection verifies injected warm structures are actually
// used: a predictor pre-trained toward taken biases early predictions.
func TestBootStateInjection(t *testing.T) {
	bw := buildWorkload(t, "gzip")
	cfg := DefaultConfig()

	// Baseline and injected runs over a short prefix.
	n := uint64(5000)
	run := func(boot *BootState) *Stats {
		t.Helper()
		pl := NewFrom(cfg, bw.Prog, emu.Limit(bw.Source(), n), boot)
		st, err := pl.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	st := emu.New(bw.Prog).State()
	mem1, err := emu.NewMemoryFromState(st.Mem)
	if err != nil {
		t.Fatal(err)
	}
	cold := run(&BootState{PC: st.PC, Regs: st.Regs, Mem: mem1})

	// The same machine with an adversarially mistrained predictor must
	// behave measurably differently (more mispredicts).
	pred := bpredMistrained(cfg)
	mem2, err := emu.NewMemoryFromState(st.Mem)
	if err != nil {
		t.Fatal(err)
	}
	warm := run(&BootState{PC: st.PC, Regs: st.Regs, Mem: mem2, Pred: pred})
	if warm.CondMispredicts == cold.CondMispredicts {
		t.Errorf("injected predictor had no effect (mispredicts %d == %d)",
			warm.CondMispredicts, cold.CondMispredicts)
	}
}

// bpredMistrained builds a predictor saturated toward taken everywhere.
func bpredMistrained(cfg Config) *bpred.Predictor {
	p := bpred.NewPredictor(cfg.Pred)
	st := p.State()
	for i := range st.Bimodal {
		st.Bimodal[i] = 3
	}
	for i := range st.Gshare {
		st.Gshare[i] = 3
	}
	if err := p.SetState(st); err != nil {
		panic(err)
	}
	return p
}
