package pipeline

import (
	"fmt"
	"math/rand"
	"testing"

	"rix/internal/core"
	"rix/internal/emu"
	"rix/internal/prog"
	"rix/internal/workload"
)

func runCfg(t *testing.T, p *prog.Program, trace []emu.TraceRec, cfg Config) *Stats {
	t.Helper()
	st, err := New(cfg, p, emu.FromSlice(trace)).Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if st.Retired != uint64(len(trace)) {
		t.Fatalf("retired %d, want %d", st.Retired, len(trace))
	}
	return st
}

// TestTinyResources squeezes every structural resource to its minimum and
// verifies the machine still completes correctly (the pre-rename resource
// checks and serial undo must compose under constant structural stalls).
func TestTinyResources(t *testing.T) {
	p, trace := build(t, factorialSrc)
	variants := []func(*Config){
		func(c *Config) { c.ROBSize = 8 },
		func(c *Config) { c.NumRS = 2 },
		func(c *Config) { c.LSQSize = 2 },
		func(c *Config) { c.PhysRegs = 40 }, // 34 is the hard minimum
		func(c *Config) { c.FetchQueue = 1 },
		func(c *Config) { c.IssueWidth = 1; c.IntPorts = 1; c.LoadPorts = 1; c.StorePorts = 1; c.FPPorts = 1 },
		func(c *Config) { c.FetchWidth = 1; c.RenameWidth = 1; c.RetireWidth = 1 },
		func(c *Config) {
			c.ROBSize = 8
			c.NumRS = 2
			c.LSQSize = 2
			c.PhysRegs = 40
			c.FetchQueue = 1
		},
	}
	for i, mod := range variants {
		for _, pol := range []core.Policy{{}, {Enable: true, GeneralReuse: true, OpcodeIndex: true, Reverse: true, UseLISP: true}} {
			cfg := DefaultConfig()
			cfg.Policy = pol
			mod(&cfg)
			t.Run(fmt.Sprintf("v%d/int=%v", i, pol.Enable), func(t *testing.T) {
				runCfg(t, p, trace, cfg)
			})
		}
	}
}

// TestTinyIT verifies degenerate integration tables work.
func TestTinyIT(t *testing.T) {
	p, trace := build(t, saveRestoreSrc)
	for _, it := range []core.TableConfig{
		{Entries: 1, Assoc: 1},
		{Entries: 4, Assoc: 4},
		{Entries: 8, Assoc: 2},
	} {
		cfg := DefaultConfig()
		cfg.Policy = core.Policy{Enable: true, GeneralReuse: true, OpcodeIndex: true, Reverse: true, UseLISP: true}
		cfg.IT = it
		runCfg(t, p, trace, cfg)
	}
}

// A program engineered to mis-integrate: a load from a fixed global
// address (base register = the stable zero register) whose value changes
// between instances via an intervening store. The second instance
// integrates the stale first value; DIVA must flush and the LISP must
// learn to suppress it.
const misintSrc = `
        .text
main:   ldiq t0, 50
        clr  t3
loop:   ldq  t1, counter       ; integrates the previous instance
        addqi t1, t1, 1
        stq  t1, counter       ; makes the integrated value stale
        addq t3, t3, t1
        addqi t0, t0, -1
        bne  t0, loop
        clr  v0
        mov  a0, t3
        syscall
        .data
counter: .word 0
`

func TestMisIntegrationRecovery(t *testing.T) {
	p, trace := build(t, misintSrc)
	cfg := DefaultConfig()
	cfg.Policy = core.Policy{Enable: true, GeneralReuse: true, UseLISP: true}
	st := runCfg(t, p, trace, cfg)
	if st.MisIntegrations == 0 {
		t.Fatal("engineered mis-integration did not fire")
	}
	if st.MisIntLoads != st.MisIntegrations {
		t.Errorf("mis-integrations not all loads: %d vs %d", st.MisIntLoads, st.MisIntegrations)
	}
	if st.DIVAFlushes < st.MisIntegrations {
		t.Errorf("DIVA flushes %d < mis-integrations %d", st.DIVAFlushes, st.MisIntegrations)
	}
	// The LISP learns: far fewer mis-integrations than loop iterations.
	if st.MisIntegrations > 5 {
		t.Errorf("LISP failed to suppress: %d mis-integrations in 50 iterations", st.MisIntegrations)
	}

	// Without the LISP, the load mis-integrates repeatedly (the IT entry
	// invalidation helps, but a fresh entry is created every iteration).
	cfg2 := DefaultConfig()
	cfg2.Policy = core.Policy{Enable: true, GeneralReuse: true}
	st2 := runCfg(t, p, trace, cfg2)
	if st2.MisIntegrations <= st.MisIntegrations {
		t.Errorf("no-LISP mis-integrations (%d) not worse than LISP (%d)",
			st2.MisIntegrations, st.MisIntegrations)
	}

	// Oracle suppression avoids (almost) all of them.
	cfg3 := DefaultConfig()
	cfg3.Policy = core.Policy{Enable: true, GeneralReuse: true, Oracle: true}
	st3 := runCfg(t, p, trace, cfg3)
	if st3.MisIntegrations > 2 {
		t.Errorf("oracle let %d mis-integrations through", st3.MisIntegrations)
	}
}

// Jump-table dispatch: indirect calls through a register, BTB training,
// and RAS behaviour under wrong-path call/return fetch.
const jumpTableSrc = `
        .text
main:   ldiq s0, 400
        ldiq s1, 98765
        clr  s2
loop:   mulqi s1, s1, 1103515245
        addqi s1, s1, 12345
        srli t0, s1, 8
        andi t0, t0, 1
        slli t0, t0, 3
        ldiq t1, jt
        addq t1, t1, t0
        ldq  pv, 0(t1)
        mov  a0, s2
        jsr  (pv)
        mov  s2, v0
        addqi s0, s0, -1
        bne  s0, loop
        clr  v0
        mov  a0, s2
        syscall
f0:     addqi v0, a0, 3
        ret
f1:     lda  sp, -16(sp)
        stq  s5, 8(sp)
        xori s5, a0, 255
        mov  v0, s5
        ldq  s5, 8(sp)
        lda  sp, 16(sp)
        ret
        .data
jt:     .word f0, f1
`

func TestJumpTableDispatch(t *testing.T) {
	p, trace := build(t, jumpTableSrc)
	for name, pol := range paperPolicies() {
		t.Run(name, func(t *testing.T) {
			st := runWith(t, p, trace, pol)
			if st.IndirectBranches == 0 {
				t.Error("no indirect branches retired")
			}
			if st.IndirectMispreds == 0 {
				t.Error("alternating jump table never mispredicted")
			}
		})
	}
}

// Deep recursion overflowing the 32-entry RAS: return prediction degrades
// but correctness must hold, and the call-depth index keeps working.
const deepRecursionSrc = `
        .text
main:   ldiq a0, 60
        call down
        clr  v0
        syscall
down:   beq  a0, base
        lda  sp, -16(sp)
        stq  ra, 0(sp)
        addqi a0, a0, -1
        call down
        addqi v0, v0, 1
        ldq  ra, 0(sp)
        lda  sp, 16(sp)
        ret
base:   clr  v0
        ret
`

func TestDeepRecursionRASOverflow(t *testing.T) {
	p, trace := build(t, deepRecursionSrc)
	for name, pol := range paperPolicies() {
		t.Run(name, func(t *testing.T) {
			runWith(t, p, trace, pol)
		})
	}
}

// Mixed-width memory: STQ covering an LDL, STL feeding LDL, and a
// partial-overlap LDQ over an STL (the forwarding retry path).
const mixedWidthSrc = `
        .text
main:   ldiq t0, 300
        ldiq t5, buf
        clr  t3
loop:   stq  t0, 0(t5)
        ldl  t1, 0(t5)          ; same-width low half? (STQ->LDL: overlap retry)
        addq t3, t3, t1
        stl  t0, 8(t5)
        ldl  t2, 8(t5)          ; STL->LDL exact forward
        addq t3, t3, t2
        ldq  t4, 8(t5)          ; STL->LDQ partial overlap: retry path
        addq t3, t3, t4
        addqi t0, t0, -1
        bne  t0, loop
        clr  v0
        mov  a0, t3
        syscall
        .data
buf:    .space 16
`

func TestMixedWidthMemory(t *testing.T) {
	p, trace := build(t, mixedWidthSrc)
	for name, pol := range paperPolicies() {
		t.Run(name, func(t *testing.T) {
			runWith(t, p, trace, pol)
		})
	}
}

// TestCHTLearning: a load that repeatedly collides with an older store
// must train the collision history table and stop violating.
const collisionSrc = `
        .text
main:   ldiq t0, 2000
        ldiq t5, buf
        clr  t3
loop:   mulqi t1, t0, 17        ; slow address computation for the store
        mulqi t1, t1, 23
        andi t1, t1, 7
        slli t1, t1, 3
        addq t2, t5, t1
        stq  t0, 0(t2)          ; store with late-resolving address
        ldq  t4, 0(t5)          ; load that may collide when t1 == 0
        addq t3, t3, t4
        addqi t0, t0, -1
        bne  t0, loop
        clr  v0
        mov  a0, t3
        syscall
        .data
buf:    .space 64
`

func TestCHTLearning(t *testing.T) {
	p, trace := build(t, collisionSrc)
	st := runWith(t, p, trace, core.Policy{})
	if st.LoadViolations == 0 {
		t.Skip("no collisions occurred under this timing; CHT untested here")
	}
	// The CHT must keep violations far below the number of actual
	// store-load conflicts (1/8 of 2000 iterations).
	if st.LoadViolations > 150 {
		t.Errorf("CHT failed to learn: %d violations", st.LoadViolations)
	}
}

// TestManyRandomProgramsAllConfigs is the wide equivalence sweep: random
// synthetic programs across machine configurations, every run checked
// instruction-by-instruction by DIVA and refcount-audited at halt.
func TestManyRandomProgramsAllConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("long equivalence sweep")
	}
	rng := rand.New(rand.NewSource(777))
	for i := 0; i < 10; i++ {
		b := workload.Synth(workload.SynthParams{
			Seed:       rng.Int63(),
			Iters:      80 + rng.Intn(150),
			BodyOps:    6 + rng.Intn(14),
			CallEvery:  rng.Intn(5),
			MemFrac:    rng.Float64() * 0.4,
			BranchFrac: rng.Float64() * 0.3,
			Invariants: rng.Intn(3),
		})
		bw, err := b.Build()
		if err != nil {
			t.Fatalf("prog %d: %v", i, err)
		}
		for name, pol := range paperPolicies() {
			cfg := DefaultConfig()
			cfg.Policy = pol
			if i%2 == 1 {
				cfg.NumRS = 20
				cfg.IssueWidth = 3
				cfg.CombinedLS = true
			}
			if _, err := New(cfg, bw.Prog, bw.Source()).Run(); err != nil {
				t.Fatalf("prog %d cfg %s: %v", i, name, err)
			}
		}
	}
}

// TestWriteBufferBackpressure: a store burst must stall retirement, not
// break it.
const storeBurstSrc = `
        .text
main:   ldiq t0, 120
        ldiq t5, buf
loop:   stq  t0, 0(t5)
        stq  t0, 8(t5)
        stq  t0, 16(t5)
        stq  t0, 24(t5)
        stq  t0, 32(t5)
        stq  t0, 40(t5)
        addqi t0, t0, -1
        bne  t0, loop
        clr  v0
        clr  a0
        syscall
        .data
buf:    .space 64
`

func TestWriteBufferBackpressure(t *testing.T) {
	p, trace := build(t, storeBurstSrc)
	runWith(t, p, trace, core.Policy{})
}
