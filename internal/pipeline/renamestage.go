package pipeline

import (
	"rix/internal/core"
	"rix/internal/isa"
	"rix/internal/regfile"
	"rix/internal/rename"
)

// probe implements core.ProducerProbe for the uop currently being renamed.
type probe struct{ pl *Pipeline }

// Status classifies the integrated result's producer state (Figure 5).
func (p probe) Status(preg regfile.PReg, refBefore uint16) core.ResultStatus {
	if refBefore == 0 {
		return core.StatusShadowSquash
	}
	prod := p.pl.prod[preg]
	switch {
	case prod == nil:
		return core.StatusRetire
	case prod.issued:
		return core.StatusIssue
	default:
		return core.StatusRename
	}
}

// OracleValue returns the architecturally correct result of the rename
// candidate when it is on the correct path.
func (p probe) OracleValue() (uint64, bool) {
	u := p.pl.probeU
	if u == nil || u.traceIdx < 0 {
		return 0, false
	}
	return p.pl.win.at(int(u.traceIdx)).Value, true
}

// PregValue reports the eventual value of preg when determinable: either
// already computed, or its producer is a correct-path in-flight
// instruction whose golden value is known.
func (p probe) PregValue(preg regfile.PReg) (uint64, bool) {
	if p.pl.rf.Ready(preg) {
		return p.pl.rf.Value(preg), true
	}
	if prod := p.pl.prod[preg]; prod != nil && prod.traceIdx >= 0 {
		return p.pl.win.at(int(prod.traceIdx)).Value, true
	}
	return 0, false
}

// needsExecution reports whether the (non-integrated) uop must occupy a
// reservation station.
func needsExecution(in isa.Instr) bool {
	switch in.Op.ClassOf() {
	case isa.ClassIntALU, isa.ClassIntMul, isa.ClassFP, isa.ClassLoad, isa.ClassStore, isa.ClassBranch:
		return true
	case isa.ClassCallIndirect, isa.ClassJumpIndirect, isa.ClassRet:
		return true // must verify the register target
	}
	return false // nop, br, bsr, syscall
}

// renameStage renames and dispatches up to RenameWidth instructions,
// running the integration logic on each (the paper's critical loop).
//
//rix:hotpath
func (pl *Pipeline) renameStage() {
	for n := 0; n < pl.cfg.RenameWidth; n++ {
		if pl.fqLen == 0 {
			return
		}
		u := pl.fq[pl.fqHead]
		if u.renameReady > pl.now {
			return
		}
		// Conservative resource pre-check (rename stalls on any shortage).
		if pl.robLen >= pl.cfg.ROBSize {
			pl.Stats.RenameStallsResources++
			return
		}
		isMem := u.in.Op.IsMem()
		if isMem && pl.lsqLen >= pl.cfg.LSQSize {
			pl.Stats.RenameStallsResources++
			return
		}
		if needsExecution(u.in) && pl.rsUsed >= pl.cfg.NumRS {
			pl.Stats.RenameStallsResources++
			return
		}
		if u.in.Op.HasDest() && u.in.Rd != isa.RegZero && pl.rf.NumFree() == 0 {
			pl.Stats.RenameStallsResources++
			return
		}

		pl.fqPop()
		pl.seqCounter++
		u.seq = pl.seqCounter
		pl.Stats.Renamed++

		// Read source mappings.
		if u.in.Op.ReadsRa() {
			u.src1 = pl.front.Get(u.in.Ra)
		}
		if u.in.Op.ReadsRb() {
			u.src2 = pl.front.Get(u.in.Rb)
		}
		// Conditional moves read the prior destination mapping.
		cmov := u.in.Op == isa.CMOVEQ || u.in.Op == isa.CMOVNE
		if cmov {
			u.oldDest = pl.front.Get(u.in.Rd)
		}

		// Integration attempt (the paper's rename-stage logic).
		pl.probeU = u
		res, status, integrated := pl.integ.TryIntegrate(
			u.in, u.pc, u.callDepth, u.seq, pl.front, pl.prb)
		pl.probeU = nil

		switch {
		case integrated && res.IsBranch:
			u.integrated = true
			u.intRes = res
			u.intStatus = status
			u.resolvedTaken = res.Taken
			u.resolvedAt = pl.now

		case integrated:
			u.integrated = true
			u.intRes = res
			u.intStatus = status
			u.hasDest = true
			u.destPreg = res.Out
			u.destGen = res.OutGen
			u.oldDest = pl.front.Set(u.in.Rd, rename.Mapping{P: res.Out, Gen: res.OutGen})
			u.undoValid = true

		case u.in.Op.HasDest() && u.in.Rd != isa.RegZero:
			p, ok := pl.rf.Alloc()
			if !ok {
				panic("pipeline: register allocation failed after pre-check")
			}
			u.hasDest = true
			u.destPreg = p
			u.destGen = pl.rf.Gen(p)
			u.oldDest = pl.front.Set(u.in.Rd, rename.Mapping{P: p, Gen: u.destGen})
			u.undoValid = true
			pl.prod[p] = u
			// Link values of direct/indirect calls are known at rename.
			if u.in.Op.IsCall() {
				pl.rf.SetReady(p, u.pc+isa.InstrBytes)
				pl.prod[p] = nil
			}
		}

		// IT entry creation.
		outMap := rename.Mapping{P: u.destPreg, Gen: u.destGen}
		if !u.hasDest {
			outMap = rename.Mapping{P: regfile.NoReg}
		}
		pl.integ.NoteRenamed(u.in, u.pc, u.callDepth, u.seq,
			u.src1, u.src2, outMap, u.oldDest, u.integrated)

		// Dispatch.
		u.robPos = (pl.robHead + pl.robLen) % len(pl.rob)
		pl.rob[u.robPos] = u
		pl.robLen++
		if isMem {
			u.isLoad = u.in.Op.IsLoad()
			u.isStore = u.in.Op.IsStore()
			u.lsqPos = (pl.lsqHead + pl.lsqLen) % len(pl.lsq)
			pl.lsq[u.lsqPos] = u
			pl.lsqLen++
		}
		if !u.integrated && needsExecution(u.in) {
			u.needsRS = true
			pl.allocRS(u)
		}

		// Integrated branch: early resolution at rename. A disagreement
		// with the fetch-time prediction redirects the front end now,
		// far cheaper than an execute-time mispredict.
		if u.integrated && u.intRes.IsBranch {
			actualNext := u.pc + isa.InstrBytes
			if u.resolvedTaken {
				actualNext = u.in.Target(u.pc)
			}
			if u.resolvedTaken != u.predTaken {
				pl.renameRedirect(u, actualNext)
				return
			}
		}
	}
}

// allocRS places a uop in a free reservation station.
func (pl *Pipeline) allocRS(u *uop) {
	for i := range pl.rs {
		if pl.rs[i] == nil {
			pl.rs[i] = u
			u.rsIdx = i
			pl.rsUsed++
			return
		}
	}
	panic("pipeline: RS allocation failed after pre-check")
}

// renameRedirect handles an integrated branch whose recorded outcome
// disagrees with the fetch-time prediction: drop the (younger) fetch
// queue, repair history, and refetch.
func (pl *Pipeline) renameRedirect(u *uop, target uint64) {
	pl.fqDrain()
	pl.pred.RestoreAfter(u.histSnap, u.resolvedTaken)
	pl.ras.Restore(u.rasSnap) // conditional branches have no RAS effect
	cursorAt := int64(-1)
	if u.traceIdx >= 0 {
		cursorAt = u.traceIdx + 1
	}
	pl.redirectFetch(target, cursorAt)
}
