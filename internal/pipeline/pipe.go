package pipeline

import (
	"fmt"

	"rix/internal/bpred"
	"rix/internal/core"
	"rix/internal/emu"
	"rix/internal/memsys"
	"rix/internal/prog"
	"rix/internal/regfile"
	"rix/internal/rename"
)

// Config is the full machine description.
type Config struct {
	FetchWidth  int
	RenameWidth int
	IssueWidth  int
	RetireWidth int

	ROBSize    int
	LSQSize    int // max memory operations in flight
	NumRS      int
	FetchQueue int

	// Issue ports per class (paper base: 2 simple int, 2 FP/complex, 1
	// load, 1 store). CombinedLS makes loads and stores share LoadPorts
	// (the paper's IW configuration).
	IntPorts   int
	FPPorts    int
	LoadPorts  int
	StorePorts int
	CombinedLS bool

	// Pipeline depths: 3 fetch + 1 decode stages before rename; 2
	// schedule + 2 register-read stages between issue and execute for
	// control resolution.
	FrontendDepth uint64
	ResolveDelay  uint64

	PhysRegs int
	GenBits  uint
	RefBits  uint

	Policy core.Policy
	IT     core.TableConfig
	LISP   core.LISPConfig
	Pred   bpred.Config
	Mem    memsys.Config

	MaxCycles uint64
}

// DefaultConfig is the paper's base machine.
func DefaultConfig() Config {
	return Config{
		FetchWidth:  4,
		RenameWidth: 4,
		IssueWidth:  4,
		RetireWidth: 4,
		ROBSize:     128,
		LSQSize:     64,
		NumRS:       40,
		FetchQueue:  16,
		IntPorts:    2,
		FPPorts:     2,
		LoadPorts:   1,
		StorePorts:  1,

		FrontendDepth: 4, // 3 fetch + 1 decode
		ResolveDelay:  2, // schedule/regread depth for redirects

		PhysRegs: 1024,
		GenBits:  4,
		RefBits:  4,

		IT:   core.TableConfig{Entries: 1024, Assoc: 4},
		LISP: core.LISPConfig{Entries: 1024, Assoc: 2},
		Mem:  memsys.DefaultConfig(),

		MaxCycles: 1 << 32,
	}
}

const eventHorizon = 1 << 16

// eventKind discriminates completion events.
type eventKind uint8

const (
	evExec eventKind = iota // ALU/FP/control execution complete
	evAddrGen
	evLoadDone
	evLoadRetry
	evStoreExec
)

type event struct {
	kind eventKind
	u    *uop
	val  uint64 // payload: load value for evLoadDone
}

// Pipeline is one simulated machine instance bound to a program and its
// golden trace.
type Pipeline struct {
	cfg   Config
	prog  *prog.Program
	trace []emu.TraceRec

	rf    *regfile.File
	front *rename.MapTable
	arch  *rename.MapTable
	integ *core.Integrator
	pred  *bpred.Predictor
	btb   *bpred.BTB
	ras   *bpred.RAS
	cht   *bpred.CHT
	mem   *memsys.Hierarchy

	archMem *emu.Memory // architectural memory, updated at retirement

	now    uint64
	halted bool

	// ROB: ring of in-flight renamed uops.
	rob     []*uop
	robHead int
	robLen  int

	// Fetch queue (fetched, not yet renamed).
	fq []*uop

	// Reservation stations.
	rs     []*uop
	rsUsed int

	// LSQ: ring of memory operations in program order.
	lsq     []*uop
	lsqHead int
	lsqLen  int

	// Producer map: physical register -> in-flight producing uop.
	prod []*uop

	// Fetch state.
	fetchPC      uint64 // 0 = waiting for redirect
	fetchReadyAt uint64
	icachePaid   bool // current group's I-cache access already charged

	// Golden-trace cursor.
	cursor int
	onPath bool

	seqCounter   uint64
	retireStall  uint64 // store write-buffer admission backpressure
	events       [][]event
	pendingFlush bool

	// Oracle probe plumbing (current rename candidate).
	probeU *uop

	Stats Stats
}

// New builds a pipeline for a program with its golden trace (from
// emu.Trace).
func New(cfg Config, p *prog.Program, trace []emu.TraceRec) *Pipeline {
	pl := &Pipeline{
		cfg:   cfg,
		prog:  p,
		trace: trace,
		rf: regfile.New(regfile.Config{
			NumRegs: cfg.PhysRegs, GenBits: cfg.GenBits, RefBits: cfg.RefBits,
			GeneralMode: cfg.Policy.GeneralReuse,
		}),
		front:   rename.NewMapTable(),
		arch:    rename.NewMapTable(),
		pred:    bpred.NewPredictor(cfg.Pred),
		btb:     bpred.NewBTB(btbSize(cfg.Pred)),
		ras:     bpred.NewRAS(rasSize(cfg.Pred)),
		cht:     bpred.NewCHT(chtSize(cfg.Pred)),
		mem:     memsys.New(cfg.Mem),
		archMem: emu.NewMemory(),
		rob:     make([]*uop, cfg.ROBSize),
		rs:      make([]*uop, cfg.NumRS),
		lsq:     make([]*uop, cfg.LSQSize),
		events:  make([][]event, eventHorizon),
		fetchPC: p.Entry,
		onPath:  true,
	}
	pl.integ = core.New(cfg.Policy, cfg.IT, cfg.LISP, pl.rf)
	pl.prod = make([]*uop, cfg.PhysRegs)
	pl.archMem.LoadImage(p.DataBase, p.Data)

	// Architectural boot state: SP and GP mappings with their boot
	// values, everything else on the zero register.
	pl.bootReg(30, p.StackTop) // sp
	pl.bootReg(29, p.DataBase) // gp
	return pl
}

func (pl *Pipeline) bootReg(l int, v uint64) {
	preg, ok := pl.rf.Alloc()
	if !ok {
		panic("pipeline: boot allocation failed")
	}
	pl.rf.SetReady(preg, v)
	m := rename.Mapping{P: preg, Gen: pl.rf.Gen(preg)}
	pl.front.Set(isaReg(l), m)
	pl.arch.Set(isaReg(l), m)
}

func btbSize(c bpred.Config) int {
	if c.BTBEntries > 0 {
		return c.BTBEntries
	}
	return 4096
}

func rasSize(c bpred.Config) int {
	if c.RASEntries > 0 {
		return c.RASEntries
	}
	return 32
}

func chtSize(c bpred.Config) int {
	if c.CHTEntries > 0 {
		return c.CHTEntries
	}
	return 256
}

// Run simulates to completion (all golden-trace instructions retired) and
// returns the statistics.
func (pl *Pipeline) Run() (*Stats, error) {
	for !pl.halted {
		if pl.now >= pl.cfg.MaxCycles {
			return nil, fmt.Errorf("pipeline: %s exceeded cycle budget at %d retired",
				pl.prog.Name, pl.Stats.Retired)
		}
		pl.step()
	}
	pl.Stats.Cycles = pl.now
	if err := pl.auditRegisters(); err != nil {
		return nil, err
	}
	return &pl.Stats, nil
}

// step advances one cycle. Stages run back-to-front so that same-cycle
// structural hazards resolve like hardware latches.
func (pl *Pipeline) step() {
	pl.retireStage()
	if !pl.halted {
		pl.completeStage()
		pl.issueStage()
		pl.renameStage()
		pl.fetchStage()
	}
	pl.Stats.RSOccupancySum += uint64(pl.rsUsed)
	pl.Stats.ROBOccupancySum += uint64(pl.robLen)
	pl.now++
}

// schedule registers a completion event.
func (pl *Pipeline) schedule(at uint64, ev event) {
	if at <= pl.now {
		at = pl.now + 1
	}
	if at-pl.now >= eventHorizon {
		panic("pipeline: event beyond horizon")
	}
	slot := at % eventHorizon
	pl.events[slot] = append(pl.events[slot], ev)
}

// auditRegisters verifies at halt that no physical registers leaked: once
// everything still in flight is squashed, the live mappings must be
// exactly the architectural map entries.
func (pl *Pipeline) auditRegisters() error {
	// Retirement of the exit syscall leaves younger (wrong-path) uops in
	// flight; squash them to release their references.
	pl.drainInFlight()
	expected := 0
	for l := 0; l < 32; l++ {
		if pl.arch.Get(isaReg(l)).P != regfile.ZeroReg {
			expected++
		}
	}
	return pl.rf.CheckLeaks(expected)
}

// drainInFlight squashes everything still in flight (post-halt cleanup).
func (pl *Pipeline) drainInFlight() {
	for pl.robLen > 0 {
		u := pl.rob[(pl.robHead+pl.robLen-1)%len(pl.rob)]
		pl.undoUop(u)
		pl.robLen--
	}
	pl.fq = pl.fq[:0]
}
