package pipeline

import (
	"context"
	"fmt"

	"rix/internal/bpred"
	"rix/internal/core"
	"rix/internal/emu"
	"rix/internal/isa"
	"rix/internal/memsys"
	"rix/internal/prog"
	"rix/internal/regfile"
	"rix/internal/rename"
)

// Config is the full machine description.
type Config struct {
	FetchWidth  int
	RenameWidth int
	IssueWidth  int
	RetireWidth int

	ROBSize    int
	LSQSize    int // max memory operations in flight
	NumRS      int
	FetchQueue int

	// Issue ports per class (paper base: 2 simple int, 2 FP/complex, 1
	// load, 1 store). CombinedLS makes loads and stores share LoadPorts
	// (the paper's IW configuration).
	IntPorts   int
	FPPorts    int
	LoadPorts  int
	StorePorts int
	CombinedLS bool

	// Pipeline depths: 3 fetch + 1 decode stages before rename; 2
	// schedule + 2 register-read stages between issue and execute for
	// control resolution.
	FrontendDepth uint64
	ResolveDelay  uint64

	PhysRegs int
	GenBits  uint
	RefBits  uint

	Policy core.Policy
	IT     core.TableConfig
	LISP   core.LISPConfig
	Pred   bpred.Config
	Mem    memsys.Config

	MaxCycles uint64
}

// DefaultConfig is the paper's base machine.
func DefaultConfig() Config {
	return Config{
		FetchWidth:  4,
		RenameWidth: 4,
		IssueWidth:  4,
		RetireWidth: 4,
		ROBSize:     128,
		LSQSize:     64,
		NumRS:       40,
		FetchQueue:  16,
		IntPorts:    2,
		FPPorts:     2,
		LoadPorts:   1,
		StorePorts:  1,

		FrontendDepth: 4, // 3 fetch + 1 decode
		ResolveDelay:  2, // schedule/regread depth for redirects

		PhysRegs: 1024,
		GenBits:  4,
		RefBits:  4,

		IT:   core.TableConfig{Entries: 1024, Assoc: 4},
		LISP: core.LISPConfig{Entries: 1024, Assoc: 2},
		Mem:  memsys.DefaultConfig(),

		MaxCycles: 1 << 32,
	}
}

// eventHorizon bounds how far ahead a completion event may be scheduled.
// Worst-case latency chains (TLB miss + L2 miss + memory + bus + MSHR
// retry) stay well under a thousand cycles; 8K slots leaves an order of
// magnitude of slack while keeping the per-pipeline ring at 64KB — it
// used to be 512KB, which dominated the allocation cost of the sampling
// subsystem's per-window pipelines. schedule panics loudly if an event
// ever lands beyond the horizon.
const eventHorizon = 1 << 13

// eventKind discriminates completion events.
type eventKind uint8

const (
	evExec eventKind = iota // ALU/FP/control execution complete
	evAddrGen
	evLoadDone
	evLoadRetry
	evStoreExec
)

type event struct {
	kind eventKind
	u    *uop
	seq  uint64 // u.seq at schedule time; a recycled uop has a newer seq
	val  uint64 // payload: load value for evLoadDone
}

// Pipeline is one simulated machine instance bound to a program and a
// streaming view of its golden trace.
type Pipeline struct {
	cfg  Config
	prog *prog.Program
	win  traceWindow

	rf    *regfile.File
	front *rename.MapTable
	arch  *rename.MapTable
	integ *core.Integrator
	pred  *bpred.Predictor
	btb   *bpred.BTB
	ras   *bpred.RAS
	cht   *bpred.CHT
	mem   *memsys.Hierarchy

	archMem *emu.Memory // architectural memory, updated at retirement

	now    uint64
	halted bool

	// ROB: ring of in-flight renamed uops.
	rob     []*uop
	robHead int
	robLen  int

	// Fetch queue: ring of fetched, not-yet-renamed uops.
	fq     []*uop
	fqHead int
	fqLen  int

	// Reservation stations.
	rs     []*uop
	rsUsed int

	// LSQ: ring of memory operations in program order.
	lsq     []*uop
	lsqHead int
	lsqLen  int

	// Producer map: physical register -> in-flight producing uop.
	prod []*uop

	// Fetch state.
	fetchPC      uint64 // 0 = waiting for redirect
	fetchReadyAt uint64
	icachePaid   bool // current group's I-cache access already charged

	// Golden-trace cursor.
	cursor int
	onPath bool

	seqCounter   uint64
	retireStall  uint64 // store write-buffer admission backpressure
	events       [][]event
	pendingFlush bool

	// Steady-state allocation pools: recycled uops (sized to the
	// in-flight window), recycled event buffers (one per future cycle
	// with pending completions), and the issue-candidate scratch slice.
	uopFree []*uop
	evFree  [][]event
	cand    []*uop

	// Oracle probe plumbing (current rename candidate). prb is the probe
	// boxed once so rename does not allocate an interface per uop.
	probeU *uop
	prb    core.ProducerProbe

	// Progress observation (SetProgress): polled on the same batched
	// cadence as cancellation, so the hot loop stays allocation-free.
	progressEvery uint64
	progressFn    func(retired uint64)
	progressLast  uint64

	Stats Stats
}

// pollInterval is the cycle cadence of the batched cancellation and
// progress checks in RunContext/RunWindowContext: a power of two, so the
// check is a mask on the cycle counter. At simulation speed (a few
// hundred ns/cycle) cancellation is detected within about a millisecond,
// and the poll itself — one masked compare per cycle plus a non-blocking
// channel read every pollInterval cycles — is far below the benchgate
// noise floor.
const pollInterval = 1 << 12

// SetProgress registers fn to be called with the cumulative retired
// instruction count roughly every `every` retired instructions (polled
// at pollInterval cycle granularity, so the callback runs well off the
// per-cycle path). every == 0 disables. Call before Run; the callback
// must not mutate the pipeline.
func (pl *Pipeline) SetProgress(every uint64, fn func(retired uint64)) {
	pl.progressEvery = every
	pl.progressFn = fn
}

// poll runs the batched cancellation/progress check. It returns a
// non-nil error exactly when ctx is cancelled.
func (pl *Pipeline) poll(ctx context.Context, done <-chan struct{}) error {
	if done != nil {
		select {
		case <-done:
			return ctx.Err()
		default:
		}
	}
	if pl.progressFn != nil && pl.progressEvery > 0 &&
		pl.Stats.Retired-pl.progressLast >= pl.progressEvery {
		pl.progressLast = pl.Stats.Retired
		pl.progressFn(pl.Stats.Retired)
	}
	return nil
}

// New builds a pipeline for a program with a golden trace source (from
// emu.Stream, emu.FromSlice, or workload.Built.Source). The source is
// consumed incrementally with O(ROB) buffering.
func New(cfg Config, p *prog.Program, src emu.TraceSource) *Pipeline {
	return NewFrom(cfg, p, src, nil)
}

// BootState positions a pipeline at a mid-trace instruction boundary —
// the detailed-window entry point of the sampling subsystem. PC and Regs
// come from an emulator checkpoint (emu.State); Mem is the architectural
// memory at that boundary (the pipeline takes ownership — pass a clone if
// it is shared). The structure pointers inject pre-warmed front-end and
// memory-system state; nil fields get cold defaults sized from the
// Config. Injected structures must match the Config's geometry and are
// owned by the pipeline afterwards.
type BootState struct {
	PC   uint64
	Regs [isa.NumLogical]uint64
	Mem  *emu.Memory

	Pred *bpred.Predictor
	BTB  *bpred.BTB
	RAS  *bpred.RAS
	CHT  *bpred.CHT
	Hier *memsys.Hierarchy

	// IT and LISP seed the integrator. IT entries name physical
	// registers, which only mean something inside one pipeline, so a
	// seeded IT is for tests and controlled replays; the LISP is
	// PC-keyed and safe to carry between pipelines.
	IT   *core.Table
	LISP *core.LISP

	// Scratch recycles a finished pipeline's allocation pools and ring
	// buffers (Pipeline.Recycle) into this one. Only adopted when every
	// buffer matches the Config's sizing; a mismatched or nil Scratch
	// falls back to fresh allocations. Purely an allocation optimization:
	// recycled buffers never change simulated behavior.
	Scratch *Scratch
}

// Scratch is the recyclable allocation state of a finished pipeline:
// the uop and event pools, the ROB/RS/LSQ/fetch-queue rings, the
// producer map, and the trace-window ring. The sampling engine threads
// one Scratch through its per-window pipelines so steady-state window
// simulation allocates almost nothing. A Scratch is single-owner: hand
// it to at most one NewFrom at a time.
type Scratch struct {
	uops   []*uop
	events [][]event
	evFree [][]event
	prod   []*uop
	rob    []*uop
	rs     []*uop
	lsq    []*uop
	fq     []*uop
	cand   []*uop
	win    []emu.TraceRec
}

// fits reports whether every recycled buffer matches cfg's sizing.
func (s *Scratch) fits(cfg Config) bool {
	return s != nil &&
		len(s.rob) == cfg.ROBSize &&
		len(s.rs) == cfg.NumRS &&
		len(s.lsq) == cfg.LSQSize &&
		len(s.fq) == cfg.FetchQueue &&
		len(s.prod) == cfg.PhysRegs &&
		len(s.events) == eventHorizon &&
		len(s.win) >= cfg.ROBSize+cfg.FetchQueue+8
}

// Recycle strips a finished pipeline for parts, returning a Scratch a
// successor pipeline of the same configuration can adopt through
// BootState.Scratch. Call it only after a Run/RunWindow variant
// returned successfully — the machine is halted and its in-flight
// window drained — and do not touch the pipeline afterwards.
func (pl *Pipeline) Recycle() *Scratch {
	pl.drainInFlight() // idempotent: audit already drained on the success paths
	for i := range pl.events {
		if buf := pl.events[i]; buf != nil {
			pl.events[i] = nil
			pl.evFree = append(pl.evFree, buf[:0])
		}
	}
	for i := range pl.rob {
		pl.rob[i] = nil
	}
	for i := range pl.rs {
		pl.rs[i] = nil
	}
	for i := range pl.lsq {
		pl.lsq[i] = nil
	}
	for i := range pl.fq {
		pl.fq[i] = nil
	}
	for i := range pl.prod {
		pl.prod[i] = nil
	}
	for i := range pl.cand {
		pl.cand[i] = nil
	}
	return &Scratch{
		uops:   pl.uopFree,
		events: pl.events,
		evFree: pl.evFree,
		prod:   pl.prod,
		rob:    pl.rob,
		rs:     pl.rs,
		lsq:    pl.lsq,
		fq:     pl.fq,
		cand:   pl.cand[:0],
		win:    pl.win.buf,
	}
}

// NewFrom builds a pipeline booted from an explicit state instead of the
// program entry point. The golden trace source must produce records
// starting at the boot PC's dynamic instruction (emu.ResumeStream from
// the same checkpoint, usually wrapped in emu.Limit for a bounded
// window). A nil boot is exactly New: entry point, SP/GP boot values,
// cold structures.
func NewFrom(cfg Config, p *prog.Program, src emu.TraceSource, boot *BootState) *Pipeline {
	pl := &Pipeline{
		cfg:  cfg,
		prog: p,
		rf: regfile.New(regfile.Config{
			NumRegs: cfg.PhysRegs, GenBits: cfg.GenBits, RefBits: cfg.RefBits,
			GeneralMode: cfg.Policy.GeneralReuse,
		}),
		front:   rename.NewMapTable(),
		arch:    rename.NewMapTable(),
		fetchPC: p.Entry,
		onPath:  true,
	}
	// Warm structures: adopt the boot's when injected; cold defaults are
	// built only when actually needed, so a fully-seeded boot (the
	// sampling engine's per-window path) allocates none of them just to
	// throw them away.
	if boot != nil && boot.Pred != nil {
		pl.pred = boot.Pred
	} else {
		pl.pred = bpred.NewPredictor(cfg.Pred)
	}
	if boot != nil && boot.BTB != nil {
		pl.btb = boot.BTB
	} else {
		pl.btb = bpred.NewBTB(btbSize(cfg.Pred))
	}
	if boot != nil && boot.RAS != nil {
		pl.ras = boot.RAS
	} else {
		pl.ras = bpred.NewRAS(rasSize(cfg.Pred))
	}
	if boot != nil && boot.CHT != nil {
		pl.cht = boot.CHT
	} else {
		pl.cht = bpred.NewCHT(chtSize(cfg.Pred))
	}
	if boot != nil && boot.Hier != nil {
		pl.mem = boot.Hier
	} else {
		pl.mem = memsys.New(cfg.Mem)
	}
	if boot != nil {
		pl.fetchPC = boot.PC
	}
	var winBuf []emu.TraceRec
	if boot != nil && boot.Scratch.fits(cfg) {
		s := boot.Scratch
		pl.rob, pl.rs, pl.lsq, pl.fq = s.rob, s.rs, s.lsq, s.fq
		pl.events = s.events
		pl.evFree = s.evFree
		pl.uopFree = s.uops
		pl.prod = s.prod
		pl.cand = s.cand[:0]
		winBuf = s.win
	} else {
		pl.rob = make([]*uop, cfg.ROBSize)
		pl.rs = make([]*uop, cfg.NumRS)
		pl.lsq = make([]*uop, cfg.LSQSize)
		pl.fq = make([]*uop, cfg.FetchQueue)
		pl.events = make([][]event, eventHorizon)
		pl.uopFree = make([]*uop, 0, cfg.ROBSize+cfg.FetchQueue+1)
		pl.cand = make([]*uop, 0, cfg.NumRS)
		pl.prod = make([]*uop, cfg.PhysRegs)
	}
	pl.win.init(src, cfg.ROBSize+cfg.FetchQueue+8, winBuf)
	pl.integ = core.New(cfg.Policy, cfg.IT, cfg.LISP, pl.rf)
	if boot != nil {
		if boot.IT != nil {
			pl.integ.Table = boot.IT
		}
		if boot.LISP != nil {
			pl.integ.LISP = boot.LISP
		}
	}
	pl.prb = probe{pl}

	if boot == nil {
		pl.archMem = emu.NewMemory()
		pl.archMem.LoadImage(p.DataBase, p.Data)
		// Architectural boot state: SP and GP mappings with their boot
		// values, everything else on the zero register.
		pl.bootReg(30, p.StackTop) // sp
		pl.bootReg(29, p.DataBase) // gp
		return pl
	}

	if boot.Mem != nil {
		pl.archMem = boot.Mem
	} else {
		pl.archMem = emu.NewMemory()
		pl.archMem.LoadImage(p.DataBase, p.Data)
	}
	// Boot every live architectural register value. SP and GP first so a
	// count-0 checkpoint allocates physical registers in exactly the
	// order New does; zero-valued registers stay on the pinned zero
	// register (reads yield 0, as architecturally required).
	for _, l := range bootOrder {
		if v := boot.Regs[l]; v != 0 {
			pl.bootReg(l, v)
		}
	}
	return pl
}

// bootOrder lists logical registers in boot-mapping order: SP, GP, then
// the rest ascending. The hardwired zero register (isa.RegZero) never
// boots — it stays pinned to the zero physical register.
var bootOrder = func() []int {
	order := []int{int(isa.RegSP), int(isa.RegGP)}
	for l := 0; l < isa.NumLogical; l++ {
		if l != int(isa.RegSP) && l != int(isa.RegGP) && l != int(isa.RegZero) {
			order = append(order, l)
		}
	}
	return order
}()

func (pl *Pipeline) bootReg(l int, v uint64) {
	preg, ok := pl.rf.Alloc()
	if !ok {
		panic("pipeline: boot allocation failed")
	}
	pl.rf.SetReady(preg, v)
	m := rename.Mapping{P: preg, Gen: pl.rf.Gen(preg)}
	pl.front.Set(isaReg(l), m)
	pl.arch.Set(isaReg(l), m)
}

func btbSize(c bpred.Config) int {
	if c.BTBEntries > 0 {
		return c.BTBEntries
	}
	return 4096
}

func rasSize(c bpred.Config) int {
	if c.RASEntries > 0 {
		return c.RASEntries
	}
	return 32
}

func chtSize(c bpred.Config) int {
	if c.CHTEntries > 0 {
		return c.CHTEntries
	}
	return 256
}

// Run simulates to completion (all golden-trace instructions retired) and
// returns the statistics.
func (pl *Pipeline) Run() (*Stats, error) {
	return pl.RunContext(context.Background()) //rix:ctx-ok — compatibility shim; RunContext is the real entry point
}

// RunContext is Run with cancellation: ctx is polled every pollInterval
// cycles (batched, allocation-free), and a cancelled run returns
// ctx.Err() within that bound. context.Background() adds no per-cycle
// work beyond one masked compare.
func (pl *Pipeline) RunContext(ctx context.Context) (*Stats, error) {
	done := ctx.Done()
	watch := done != nil || pl.progressFn != nil
	for !pl.halted {
		if pl.now >= pl.cfg.MaxCycles {
			return nil, fmt.Errorf("pipeline: %s exceeded cycle budget at %d retired",
				pl.prog.Name, pl.Stats.Retired)
		}
		if watch && pl.now&(pollInterval-1) == 0 {
			if err := pl.poll(ctx, done); err != nil {
				return nil, err
			}
		}
		pl.step()
	}
	pl.Stats.Cycles = pl.now
	pl.Stats.TraceWindowPeak = uint64(pl.win.peak)
	if err := pl.win.err(); err != nil {
		return nil, fmt.Errorf("pipeline: golden trace source failed: %w", err)
	}
	if err := pl.auditRegisters(); err != nil {
		return nil, err
	}
	return &pl.Stats, nil
}

// Integrator exposes the integration machinery for diagnostics (match
// and rejection counters, table occupancy). Mutating it mid-run corrupts
// the simulation.
func (pl *Pipeline) Integrator() *core.Integrator { return pl.integ }

// RunWindow simulates a measurement window in three phases. The first
// warmup retired instructions run in warmup mode — the machine executes
// in full detail (filling the integration table, LISP, register file and
// any residual cache/predictor state) while the statistics are gated
// off. The next measure instructions are the measurement: their Stats
// delta is the result. The run then stops at the measurement boundary
// with the pipeline still full — the caller's source should extend a
// drain pad beyond warmup+measure (emu.Limit(src, warmup+measure+pad))
// so the end-of-window drain overlaps with later instructions exactly as
// in a full run, instead of deflating the measured IPC.
//
// Both boundaries land at the end of the first cycle in which cumulative
// retirement reaches them (exact to within one retire group, and
// deterministic). If the stream ends before the warmup boundary the
// measured window is empty: all-zero Stats; if it ends inside the
// measurement, the delta covers what retired (including the genuine
// final drain when the program itself ends there, as in a full run).
// Stats.TraceWindowPeak reports the whole run's peak, warmup included —
// it is a memory bound, not a windowed counter.
func (pl *Pipeline) RunWindow(warmup, measure uint64) (*Stats, error) {
	return pl.RunWindowContext(context.Background(), warmup, measure) //rix:ctx-ok — compatibility shim; RunWindowContext is the real entry point
}

// RunWindowContext is RunWindow with cancellation, polled on the same
// batched cadence as RunContext.
func (pl *Pipeline) RunWindowContext(ctx context.Context, warmup, measure uint64) (*Stats, error) {
	done := ctx.Done()
	watch := done != nil || pl.progressFn != nil
	var base *Stats
	if warmup == 0 {
		base = &Stats{} // measure from the very first cycle
	}
	end := warmup + measure
	for !pl.halted {
		if pl.now >= pl.cfg.MaxCycles {
			return nil, fmt.Errorf("pipeline: %s exceeded cycle budget at %d retired",
				pl.prog.Name, pl.Stats.Retired)
		}
		if watch && pl.now&(pollInterval-1) == 0 {
			if err := pl.poll(ctx, done); err != nil {
				return nil, err
			}
		}
		pl.step()
		if base == nil && pl.Stats.Retired >= warmup {
			b := pl.Stats
			b.Cycles = pl.now
			base = &b
		}
		if pl.Stats.Retired >= end {
			pl.halted = true
		}
	}
	pl.Stats.Cycles = pl.now
	pl.Stats.TraceWindowPeak = uint64(pl.win.peak)
	if err := pl.win.err(); err != nil {
		return nil, fmt.Errorf("pipeline: golden trace source failed: %w", err)
	}
	if err := pl.auditRegisters(); err != nil {
		return nil, err
	}
	if base == nil {
		// Stream ended inside warmup: nothing was measured.
		return &Stats{}, nil
	}
	m := pl.Stats.Delta(base)
	return &m, nil
}

// newUop returns a zeroed uop, recycling from the free list. Steady-state
// fetch allocates nothing: the pool is bounded by the in-flight window
// (ROB + fetch queue).
//
//rix:hotpath
func (pl *Pipeline) newUop() *uop {
	n := len(pl.uopFree)
	if n == 0 {
		return &uop{} //rix:alloc-ok — pool refill, bounded by the in-flight window
	}
	u := pl.uopFree[n-1]
	pl.uopFree = pl.uopFree[:n-1]
	*u = uop{}
	return u
}

// freeUop returns a dead uop to the pool. Fields are cleared on reuse,
// not here, so callers (e.g. squash recovery reading checkpoint
// snapshots) may still read the carcass until the next newUop. Stale
// completion events are fenced by the (seq, squashed) guard in
// completeStage.
func (pl *Pipeline) freeUop(u *uop) { pl.uopFree = append(pl.uopFree, u) }

// fqPush appends a fetched uop; the ring is sized to cfg.FetchQueue and
// callers check fqLen first.
func (pl *Pipeline) fqPush(u *uop) {
	pl.fq[(pl.fqHead+pl.fqLen)%len(pl.fq)] = u
	pl.fqLen++
}

// fqPop removes and returns the oldest fetched uop.
func (pl *Pipeline) fqPop() *uop {
	u := pl.fq[pl.fqHead]
	pl.fq[pl.fqHead] = nil
	pl.fqHead = (pl.fqHead + 1) % len(pl.fq)
	pl.fqLen--
	return u
}

// fqDrain squashes and recycles every fetched-but-unrenamed uop,
// returning the oldest (the squash recovery checkpoint), or nil when the
// queue was empty.
func (pl *Pipeline) fqDrain() *uop {
	var oldest *uop
	for i := 0; i < pl.fqLen; i++ {
		pos := (pl.fqHead + i) % len(pl.fq)
		v := pl.fq[pos]
		pl.fq[pos] = nil
		v.squashed = true
		if oldest == nil {
			oldest = v
		}
		pl.freeUop(v)
	}
	pl.fqLen = 0
	return oldest
}

// step advances one cycle. Stages run back-to-front so that same-cycle
// structural hazards resolve like hardware latches.
//
//rix:hotpath
func (pl *Pipeline) step() {
	pl.retireStage()
	if !pl.halted {
		pl.completeStage()
		pl.issueStage()
		pl.renameStage()
		pl.fetchStage()
	}
	pl.Stats.RSOccupancySum += uint64(pl.rsUsed)
	pl.Stats.ROBOccupancySum += uint64(pl.robLen)
	pl.now++
}

// schedule registers a completion event, stamping the uop's current
// sequence number so stale events for recycled uops are discarded at
// dispatch. Empty slots draw a reusable buffer from the pool instead of
// growing a fresh slice, so steady state schedules allocation-free.
//
//rix:hotpath
func (pl *Pipeline) schedule(at uint64, ev event) {
	if at <= pl.now {
		at = pl.now + 1
	}
	if at-pl.now >= eventHorizon {
		panic("pipeline: event beyond horizon")
	}
	ev.seq = ev.u.seq
	slot := at % eventHorizon
	buf := pl.events[slot]
	if buf == nil {
		if n := len(pl.evFree); n > 0 {
			buf = pl.evFree[n-1]
			pl.evFree = pl.evFree[:n-1]
		}
	}
	pl.events[slot] = append(buf, ev)
}

// auditRegisters verifies at halt that no physical registers leaked: once
// everything still in flight is squashed, the live mappings must be
// exactly the architectural map entries.
func (pl *Pipeline) auditRegisters() error {
	// Retirement of the exit syscall leaves younger (wrong-path) uops in
	// flight; squash them to release their references.
	pl.drainInFlight()
	expected := 0
	for l := 0; l < 32; l++ {
		if pl.arch.Get(isaReg(l)).P != regfile.ZeroReg {
			expected++
		}
	}
	return pl.rf.CheckLeaks(expected)
}

// drainInFlight squashes everything still in flight (post-halt cleanup).
func (pl *Pipeline) drainInFlight() {
	for pl.robLen > 0 {
		tail := (pl.robHead + pl.robLen - 1) % len(pl.rob)
		u := pl.rob[tail]
		pl.undoUop(u)
		pl.rob[tail] = nil
		pl.robLen--
		pl.freeUop(u)
	}
	pl.fqDrain()
}

// CHT exposes the collision history table for diagnostics and for the
// sampling engine's feedback chaining. Mutating it mid-run corrupts the
// simulation.
func (pl *Pipeline) CHT() *bpred.CHT { return pl.cht }

// Predictor exposes the branch direction predictor for diagnostics.
// Mutating it mid-run corrupts the simulation.
func (pl *Pipeline) Predictor() *bpred.Predictor { return pl.pred }
