package pipeline

import (
	"fmt"

	"rix/internal/emu"
)

// traceWindow is the pipeline's bounded view of the golden trace: a ring
// of records covering [base, base+n) trace indices, filled on demand from
// a TraceSource and released as instructions retire. Live indices span at
// most the in-flight window (ROB + fetch queue), so steady-state memory
// is O(ROB) regardless of trace length. The ring grows (doubling) only if
// a consumer outruns the sizing hint — a safety valve, not a steady state.
type traceWindow struct {
	src  emu.TraceSource
	buf  []emu.TraceRec // ring storage
	base int            // trace index of buf[head]
	head int
	n    int
	done bool // source exhausted (cleanly or with error)
	peak int  // high-water occupancy, exported via Stats.TraceWindowPeak
}

// init binds the window to a source. A recycled ring buffer (Scratch)
// of at least capHint records is adopted instead of allocating; ring
// capacity never affects behavior (grow is a safety valve, and peak
// tracks occupancy, not size).
func (w *traceWindow) init(src emu.TraceSource, capHint int, buf []emu.TraceRec) {
	if capHint < 16 {
		capHint = 16
	}
	w.src = src
	if len(buf) >= capHint {
		w.buf = buf
	} else {
		w.buf = make([]emu.TraceRec, capHint)
	}
}

// has reports whether trace record i exists, pulling from the source as
// needed. Indices below the release point are gone by contract.
func (w *traceWindow) has(i int) bool {
	if i < w.base {
		panic(fmt.Sprintf("pipeline: trace index %d below window base %d", i, w.base))
	}
	for w.base+w.n <= i {
		if w.done {
			return false
		}
		rec, ok := w.src.Next()
		if !ok {
			w.done = true
			return false
		}
		w.push(rec)
	}
	return true
}

// at returns trace record i, which must be in the live window (or still
// producible from the source).
func (w *traceWindow) at(i int) emu.TraceRec {
	if !w.has(i) {
		panic(fmt.Sprintf("pipeline: trace index %d beyond end of stream", i))
	}
	return w.buf[(w.head+(i-w.base))%len(w.buf)]
}

func (w *traceWindow) push(rec emu.TraceRec) {
	if w.n == len(w.buf) {
		w.grow()
	}
	w.buf[(w.head+w.n)%len(w.buf)] = rec
	w.n++
	if w.n > w.peak {
		w.peak = w.n
	}
}

func (w *traceWindow) grow() {
	nb := make([]emu.TraceRec, 2*len(w.buf))
	for i := 0; i < w.n; i++ {
		nb[i] = w.buf[(w.head+i)%len(w.buf)]
	}
	w.buf, w.head = nb, 0
}

// release drops records below trace index lo; the pipeline calls it as
// retirement advances, keeping the window at O(in-flight).
func (w *traceWindow) release(lo int) {
	d := lo - w.base
	if d <= 0 {
		return
	}
	if d > w.n {
		d = w.n
	}
	w.head = (w.head + d) % len(w.buf)
	w.base += d
	w.n -= d
}

// err surfaces a source production failure after the stream ends.
func (w *traceWindow) err() error { return w.src.Err() }
