package pipeline

import (
	"rix/internal/regfile"
)

// undoUop reverses one instruction's rename effects: serial undo of the
// map table and the reference-count increment its mapping represents
// (paper §2.2, "reference-count consistency across mis-speculation").
func (pl *Pipeline) undoUop(u *uop) {
	u.squashed = true
	if u.undoValid {
		pl.front.Set(u.in.Rd, u.oldDest)
	}
	if u.hasDest {
		pl.rf.Release(u.destPreg, regfile.CauseSquash)
		if pl.prod[u.destPreg] == u {
			pl.prod[u.destPreg] = nil
		}
	}
	if u.rsIdx >= 0 {
		pl.rs[u.rsIdx] = nil
		u.rsIdx = -1
		pl.rsUsed--
	}
}

// squashFrom squashes every instruction younger than u, and u itself when
// inclusive. It restores the map table by walking the ROB serially from
// the tail, repairs the RAS and branch history from the oldest squashed
// instruction's checkpoints, and drops the fetch queue.
func (pl *Pipeline) squashFrom(u *uop, inclusive bool) {
	pl.Stats.Squashes++

	// The fetch queue holds only instructions younger than anything
	// renamed; all of it goes. Recycled carcasses keep their checkpoint
	// snapshots readable until the next fetch, so restoring from oldest
	// below stays valid.
	oldest := pl.fqDrain()

	for pl.robLen > 0 {
		tail := (pl.robHead + pl.robLen - 1) % len(pl.rob)
		v := pl.rob[tail]
		if v == u && !inclusive {
			break
		}
		pl.undoUop(v)
		if v.lsqPos >= 0 {
			pl.popLSQTail(v)
		}
		pl.rob[tail] = nil
		pl.robLen--
		pl.freeUop(v)
		oldest = v
		if v == u {
			break
		}
	}

	if oldest != nil {
		pl.ras.Restore(oldest.rasSnap)
		pl.pred.Restore(oldest.histSnap)
	}
}

// popLSQTail removes a squashed memory op, which must be the LSQ tail.
func (pl *Pipeline) popLSQTail(v *uop) {
	tail := (pl.lsqHead + pl.lsqLen - 1) % len(pl.lsq)
	if pl.lsq[tail] != v {
		panic("pipeline: squashed memory op is not the LSQ tail")
	}
	pl.lsq[tail] = nil
	pl.lsqLen--
}

// branchMispredict recovers from a resolved conditional branch whose
// direction disagrees with the prediction: squash younger, repair the
// history to reflect the actual outcome, and refetch the correct target.
func (pl *Pipeline) branchMispredict(u *uop, target uint64) {
	pl.squashFrom(u, false)
	pl.pred.RestoreAfter(u.histSnap, u.resolvedTaken)
	cursorAt := int64(-1)
	if u.traceIdx >= 0 {
		cursorAt = u.traceIdx + 1
	}
	pl.redirectFetch(target, cursorAt)
}

// indirectMispredict recovers from a wrong indirect target (JSR/JMP/RET).
func (pl *Pipeline) indirectMispredict(u *uop, target uint64) {
	pl.squashFrom(u, false)
	cursorAt := int64(-1)
	if u.traceIdx >= 0 {
		cursorAt = u.traceIdx + 1
	}
	pl.redirectFetch(target, cursorAt)
}

// loadViolationSquash recovers from a memory-order violation: full squash
// from the violating load inclusive, so it refetches and re-executes.
func (pl *Pipeline) loadViolationSquash(v *uop) {
	cursorAt := v.traceIdx // may be -1 (wrong path)
	pc := v.pc
	pl.squashFrom(v, true)
	pl.redirectFetch(pc, cursorAt)
}
