package pipeline

import (
	"rix/internal/isa"
	"rix/internal/regfile"
)

// completeStage drains this cycle's completion events and returns the
// slot's buffer to the reuse pool; schedule can never append to the
// current slot mid-drain because events always land at least one cycle
// out.
//
//rix:hotpath
func (pl *Pipeline) completeStage() {
	slot := pl.now % eventHorizon
	evs := pl.events[slot]
	if evs == nil {
		return
	}
	pl.events[slot] = nil
	for _, ev := range evs {
		// Drop events for squashed uops — including recycled carcasses,
		// whose sequence number no longer matches the stamp.
		if ev.u.squashed || ev.u.seq != ev.seq {
			continue
		}
		switch ev.kind {
		case evExec:
			pl.execComplete(ev.u)
		case evAddrGen:
			pl.loadAddrGen(ev.u)
		case evLoadRetry:
			pl.loadAccess(ev.u)
		case evLoadDone:
			pl.loadComplete(ev.u, ev.val)
		case evStoreExec:
			pl.storeExec(ev.u)
		}
	}
	pl.evFree = append(pl.evFree, evs[:0])
}

// val reads a source physical register's value.
func (pl *Pipeline) val(p regfile.PReg) uint64 {
	if p == regfile.ZeroReg {
		return 0
	}
	return pl.rf.Value(p)
}

// execComplete finishes a non-memory instruction: computes the result,
// publishes it, and resolves control.
func (pl *Pipeline) execComplete(u *uop) {
	a := pl.val(u.src1.P)
	b := pl.val(u.src2.P)
	switch u.in.Op.ClassOf() {
	case isa.ClassIntALU, isa.ClassIntMul, isa.ClassFP:
		old := pl.val(u.oldDest.P) // conditional moves
		v := isa.EvalOp(u.in.Op, a, b, old, u.in.Imm)
		if u.hasDest {
			pl.rf.SetReady(u.destPreg, v)
		}
		u.execDone = true
		u.doneCyc = pl.now

	case isa.ClassBranch:
		taken := isa.EvalBranch(u.in.Op, a)
		u.resolvedTaken = taken
		u.resolvedAt = pl.now
		u.execDone = true
		u.doneCyc = pl.now
		// Extension-2/3 machinery: branch outcome entries are inserted at
		// resolution, keyed by the rename-time input mapping.
		pl.integ.NoteBranchResolved(u.in, u.pc, u.callDepth, u.seq, u.src1, taken)
		if taken != u.predTaken {
			target := u.pc + isa.InstrBytes
			if taken {
				target = u.in.Target(u.pc)
			}
			pl.branchMispredict(u, target)
		}

	case isa.ClassCallIndirect, isa.ClassJumpIndirect, isa.ClassRet:
		target := b // all take the target from Rb
		u.resolvedTarget = target
		u.resolvedAt = pl.now
		u.execDone = true
		u.doneCyc = pl.now
		if u.in.Op.ClassOf() != isa.ClassRet {
			pl.btb.Train(u.pc, target)
		}
		if target != u.predTarget {
			pl.indirectMispredict(u, target)
		}
	}
}

// loadAddrGen computes the effective address one cycle after issue, then
// starts the memory access or store-queue forward.
func (pl *Pipeline) loadAddrGen(u *uop) {
	u.addr = isa.EffAddr(pl.val(u.src1.P), u.in.Imm)
	u.addrValid = true
	pl.loadAccess(u)
}

// loadAccess resolves where the load's data comes from: the youngest
// older store with a matching resolved address (forwarding), or memory.
// Unresolved older store addresses are recorded — the load speculates
// past them (paper §3.1).
func (pl *Pipeline) loadAccess(u *uop) {
	var match *uop
	for i := pl.lsqIndexOf(u) - 1; i >= 0; i-- {
		v := pl.lsq[(pl.lsqHead+i)%len(pl.lsq)]
		if !v.isStore {
			continue
		}
		if !v.addrValid {
			u.specPastStores = true
			continue
		}
		if v.addr == u.addr && v.in.Op.IsStore() && sameWidth(u.in.Op, v.in.Op) {
			match = v
			break
		}
		if overlaps(u, v) {
			// Partial overlap: retry until the store leaves the LSQ
			// (rare; workloads use aligned same-width accesses).
			pl.schedule(pl.now+2, event{kind: evLoadRetry, u: u})
			return
		}
	}
	if match != nil {
		pl.Stats.LoadsForwarded++
		u.fwdFromSeq = match.seq
		v := match.storeData
		if u.in.Op == isa.LDL {
			v = uint64(int64(int32(uint32(v))))
		}
		pl.schedule(pl.now+pl.cfg.Mem.StoreForwardLat, event{kind: evLoadDone, u: u, val: v})
		return
	}
	// Memory: value captured from architectural memory now (older stores
	// either forwarded above or already retired into it); timing from the
	// cache hierarchy.
	var v uint64
	if u.in.Op == isa.LDQ {
		v = pl.archMem.Read64(u.addr)
	} else {
		v = pl.archMem.Read32(u.addr)
	}
	done := pl.mem.Load(u.addr, pl.now)
	pl.schedule(done, event{kind: evLoadDone, u: u, val: v})
}

func sameWidth(load, store isa.Opcode) bool {
	return (load == isa.LDQ) == (store == isa.STQ)
}

// overlaps reports whether a load and store touch overlapping bytes
// without being an exact same-width match.
func overlaps(ld, st *uop) bool {
	lw, sw := width(ld.in.Op), width(st.in.Op)
	return ld.addr < st.addr+sw && st.addr < ld.addr+lw
}

func width(op isa.Opcode) uint64 {
	switch op {
	case isa.LDQ, isa.STQ:
		return 8
	default:
		return 4
	}
}

// loadComplete publishes the load's value.
func (pl *Pipeline) loadComplete(u *uop, v uint64) {
	u.loadValue = v
	if u.hasDest {
		pl.rf.SetReady(u.destPreg, v)
	}
	u.execDone = true
	u.doneCyc = pl.now
}

// storeExec resolves a store's address and data, then scans younger
// executed loads for memory-order violations.
func (pl *Pipeline) storeExec(u *uop) {
	u.addr = isa.EffAddr(pl.val(u.src1.P), u.in.Imm)
	u.storeData = pl.val(u.src2.P)
	u.addrValid = true
	u.execDone = true
	u.doneCyc = pl.now

	// Violation scan: a younger load that already obtained its value from
	// memory or from a store older than this one, at an overlapping
	// address, mis-speculated.
	n := pl.lsqLen
	for i := pl.lsqIndexOf(u) + 1; i < n; i++ {
		v := pl.lsq[(pl.lsqHead+i)%len(pl.lsq)]
		if !v.isLoad || !v.addrValid || v.squashed {
			continue
		}
		if !(v.execDone || v.issued) {
			continue
		}
		lw := width(v.in.Op)
		sw := width(u.in.Op)
		if !(v.addr < u.addr+sw && u.addr < v.addr+lw) {
			continue
		}
		if v.fwdFromSeq > u.seq {
			continue // load correctly forwarded from a younger store
		}
		// Mis-speculation: full squash from the load (paper §3.1), and
		// train the collision history table.
		pl.Stats.LoadViolations++
		pl.cht.Train(v.pc)
		pl.loadViolationSquash(v)
		return
	}
}
