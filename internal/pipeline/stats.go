package pipeline

import (
	"reflect"

	"rix/internal/core"
)

// Stats aggregates everything the paper's evaluation section reports.
type Stats struct {
	Cycles  uint64
	Retired uint64

	Fetched          uint64 // all fetched, including wrong path
	FetchedWrongPath uint64
	Renamed          uint64
	Executed         uint64 // instructions that occupied an issue slot

	// Integration (measured at retirement, per the paper).
	Integrated        uint64
	IntegratedDirect  uint64
	IntegratedReverse uint64
	IntType           [numIntTypes]uint64
	IntDistance       [4]uint64 // <4, <16, <64, >=64 renamed instructions
	IntStatus         [core.NumStatuses]uint64
	IntRefcount       [4]uint64 // 1, <=3, <=7, >7

	// Mis-integrations.
	MisIntegrations   uint64
	MisIntLoads       uint64
	MisIntRegs        uint64
	OracleResidual    uint64 // mis-integrations that slipped past the oracle
	DIVAFlushes       uint64
	LateLoadViolation uint64 // order violations caught only at DIVA

	// Branches.
	CondBranches      uint64
	CondMispredicts   uint64
	ResolutionLatency uint64 // sum over retired mispredicted branches
	IndirectBranches  uint64
	IndirectMispreds  uint64

	// Loads.
	LoadsRetired     uint64
	SPLoadsRetired   uint64
	LoadViolations   uint64 // caught at store resolution
	LoadsForwarded   uint64
	CHTStallsGranted uint64

	// Machine occupancy.
	RSOccupancySum  uint64 // per-cycle busy reservation stations
	ROBOccupancySum uint64
	Squashes        uint64

	// Stalls.
	RenameStallsResources uint64
	FetchStallsICache     uint64

	// Streaming: peak golden-trace records buffered by the sliding
	// window. Bounded by the in-flight window (ROB + fetch queue), never
	// by trace length — the machine-checkable form of "the stream is
	// consumed incrementally".
	TraceWindowPeak uint64
}

// Delta returns the component-wise difference s - base: the statistics
// accumulated after the snapshot `base` was taken — the windowed-stats
// primitive behind RunWindow. Every uint64 field and every uint64 array
// element is a monotonic counter and subtracts, with one exception:
// TraceWindowPeak is a high-water mark, so the delta carries the final
// (whole-run) value. Implemented by reflection so new counter fields are
// windowed automatically; a new non-counter field must be special-cased
// here (the accompanying test enumerates the known field kinds).
func (s *Stats) Delta(base *Stats) Stats {
	var out Stats
	sv := reflect.ValueOf(s).Elem()
	bv := reflect.ValueOf(base).Elem()
	ov := reflect.ValueOf(&out).Elem()
	visitCounters(sv.Type(), "Delta", func(i, j int) {
		f, b, o := sv.Field(i), bv.Field(i), ov.Field(i)
		if j >= 0 {
			f, b, o = f.Index(j), b.Index(j), o.Index(j)
		}
		o.SetUint(f.Uint() - b.Uint())
	})
	out.TraceWindowPeak = s.TraceWindowPeak
	return out
}

// visitCounters walks every uint64 counter of a stats-shaped struct
// type, calling visit(fieldIndex, elemIndex) for each scalar counter
// (elemIndex -1) and each element of a uint64-array counter. Any other
// field shape panics with the field's name: Stats grows by counters,
// and a non-counter field must be given an explicit rule in Delta and
// Add (like TraceWindowPeak's max/latch rule) before it can land.
func visitCounters(t reflect.Type, rule string, visit func(field, elem int)) {
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		switch f.Type.Kind() {
		case reflect.Uint64:
			visit(i, -1)
		case reflect.Array:
			if f.Type.Elem().Kind() != reflect.Uint64 {
				panic("pipeline: " + t.Name() + " field " + f.Name + " is a " +
					f.Type.String() + ", not a uint64 array, and has no " + rule + " rule")
			}
			for j := 0; j < f.Type.Len(); j++ {
				visit(i, j)
			}
		default:
			panic("pipeline: " + t.Name() + " field " + f.Name + " (" +
				f.Type.String() + ") has no " + rule + " rule")
		}
	}
}

// Add accumulates other into s component-wise; TraceWindowPeak takes the
// maximum. It is the aggregation dual of Delta (internal/sample sums
// per-window measurements with it).
func (s *Stats) Add(other *Stats) {
	peak := s.TraceWindowPeak
	if other.TraceWindowPeak > peak {
		peak = other.TraceWindowPeak
	}
	sv := reflect.ValueOf(s).Elem()
	tv := reflect.ValueOf(other).Elem()
	visitCounters(sv.Type(), "Add", func(i, j int) {
		f, o := sv.Field(i), tv.Field(i)
		if j >= 0 {
			f, o = f.Index(j), o.Index(j)
		}
		f.SetUint(f.Uint() + o.Uint())
	})
	s.TraceWindowPeak = peak
}

// IPC is retired instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Retired) / float64(s.Cycles)
}

// IntegrationRate is the fraction of retired instructions that integrated.
func (s *Stats) IntegrationRate() float64 {
	if s.Retired == 0 {
		return 0
	}
	return float64(s.Integrated) / float64(s.Retired)
}

// ReverseRate is the fraction of retired instructions that integrated via
// reverse entries.
func (s *Stats) ReverseRate() float64 {
	if s.Retired == 0 {
		return 0
	}
	return float64(s.IntegratedReverse) / float64(s.Retired)
}

// MisIntPerMillion is the paper's mis-integrations per one million
// retired instructions.
func (s *Stats) MisIntPerMillion() float64 {
	if s.Retired == 0 {
		return 0
	}
	return float64(s.MisIntegrations) * 1e6 / float64(s.Retired)
}

// MispredictResolutionAvg is the average cycles from fetch (prediction) to
// resolution for retired mispredicted conditional branches.
func (s *Stats) MispredictResolutionAvg() float64 {
	if s.CondMispredicts == 0 {
		return 0
	}
	return float64(s.ResolutionLatency) / float64(s.CondMispredicts)
}

// AvgRSOccupancy is the mean number of busy reservation stations.
func (s *Stats) AvgRSOccupancy() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.RSOccupancySum) / float64(s.Cycles)
}

// LoadIntegrationRate is the fraction of retired loads that integrated.
func (s *Stats) LoadIntegrationRate() float64 {
	if s.LoadsRetired == 0 {
		return 0
	}
	return float64(s.IntType[intSPLoad]+s.IntType[intLoad]) / float64(s.LoadsRetired)
}

// SPLoadIntegrationRate is the fraction of retired stack-pointer loads
// that integrated.
func (s *Stats) SPLoadIntegrationRate() float64 {
	if s.SPLoadsRetired == 0 {
		return 0
	}
	return float64(s.IntType[intSPLoad]) / float64(s.SPLoadsRetired)
}

// distanceBucket maps a rename-stream distance to the Figure 5 histogram.
func distanceBucket(d uint64) int {
	switch {
	case d < 4:
		return 0
	case d < 16:
		return 1
	case d < 64:
		return 2
	default:
		return 3
	}
}

// refcountBucket maps a post-integration refcount to the Figure 5
// histogram (1, <=3, <=7, >7).
func refcountBucket(r uint16) int {
	switch {
	case r <= 1:
		return 0
	case r <= 3:
		return 1
	case r <= 7:
		return 2
	default:
		return 3
	}
}
