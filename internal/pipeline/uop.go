// Package pipeline implements the execution-driven, cycle-level
// out-of-order core of the paper's §3.1 machine: a 4-way superscalar,
// 13-stage pipeline with 128 instructions / 64 memory operations in
// flight, 40 reservation stations, speculative load issue with a collision
// history table, pointer-based register renaming with register
// integration at the rename stage, and DIVA-style in-order re-execution
// before retirement.
//
// The simulator is self-checking: every retiring instruction is compared
// against the program's golden architectural trace. A mismatch on an
// integrated instruction is a mis-integration (flush + LISP training, as
// in the paper); a mismatch anywhere else is a simulator bug and panics.
package pipeline

import (
	"rix/internal/bpred"
	"rix/internal/core"
	"rix/internal/isa"
	"rix/internal/regfile"
	"rix/internal/rename"
)

// uop is one in-flight dynamic instruction.
type uop struct {
	seq      uint64 // rename sequence number (0 = not renamed)
	pc       uint64
	in       isa.Instr
	traceIdx int64 // index in the golden trace; -1 on the wrong path

	// Fetch state.
	fetchCycle  uint64
	renameReady uint64 // earliest cycle rename may process it (front-end depth)
	callDepth   int
	histSnap    bpred.Snap
	rasSnap     bpred.RASSnap
	predTaken   bool
	predTarget  uint64 // predicted target for indirect control; 0 = none

	// Rename state.
	src1, src2 rename.Mapping // rename-time source mappings
	oldDest    rename.Mapping // mapping displaced by this instruction
	destPreg   regfile.PReg
	destGen    uint8
	hasDest    bool
	undoValid  bool

	// Integration state.
	integrated bool
	intRes     core.Result
	intStatus  core.ResultStatus

	// Scheduling state.
	needsRS  bool
	rsIdx    int // -1 when not occupying a reservation station
	issued   bool
	execDone bool
	issueCyc uint64
	doneCyc  uint64

	// Memory state.
	isLoad, isStore bool
	lsqPos          int // ring index in the LSQ; -1 otherwise
	addr            uint64
	addrValid       bool
	storeData       uint64
	loadValue       uint64
	fwdFromSeq      uint64 // store this load forwarded from; 0 = memory
	specPastStores  bool   // issued while an older store address was unknown

	// Control state.
	resolvedTaken  bool
	resolvedTarget uint64
	resolvedAt     uint64

	squashed bool
	robPos   int
}

// completed reports whether the uop may retire.
func (u *uop) completed(rf *regfile.File) bool {
	switch {
	case u.integrated && u.intRes.IsBranch:
		return true
	case u.integrated:
		return rf.Ready(u.destPreg)
	case u.needsRS:
		return u.execDone
	default:
		return true // nop, br, bsr, syscall: complete at rename
	}
}

// isCondBranch reports a conditional branch.
func (u *uop) isCondBranch() bool { return u.in.Op.IsConditional() }

// intType classifies a retiring integrated instruction for the Figure 5
// Type breakdown.
type intType int

const (
	intSPLoad intType = iota
	intLoad
	intALU
	intBranch
	intFP
	numIntTypes
)

func (u *uop) integrationType() intType {
	switch {
	case u.in.IsSPLoad():
		return intSPLoad
	case u.in.Op.IsLoad():
		return intLoad
	case u.in.Op.IsConditional():
		return intBranch
	case u.in.Op.ClassOf() == isa.ClassFP:
		return intFP
	default:
		return intALU
	}
}
