package pipeline

import (
	"fmt"
	"math/rand"
	"testing"

	"rix/internal/asm"
	"rix/internal/core"
	"rix/internal/emu"
	"rix/internal/prog"
)

func build(t *testing.T, src string) (*prog.Program, []emu.TraceRec) {
	t.Helper()
	p, err := asm.Assemble("test.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	trace, _, err := emu.Trace(p, 1<<24)
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	return p, trace
}

// paperPolicies returns the four configurations of Figure 4.
func paperPolicies() map[string]core.Policy {
	return map[string]core.Policy{
		"none":     {},
		"squash":   {Enable: true, UseLISP: true},
		"+general": {Enable: true, GeneralReuse: true, UseLISP: true},
		"+opcode":  {Enable: true, GeneralReuse: true, OpcodeIndex: true, UseLISP: true},
		"+reverse": {Enable: true, GeneralReuse: true, OpcodeIndex: true, Reverse: true, UseLISP: true},
	}
}

func runWith(t *testing.T, p *prog.Program, trace []emu.TraceRec, pol core.Policy) *Stats {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Policy = pol
	st, err := New(cfg, p, emu.FromSlice(trace)).Run()
	if err != nil {
		t.Fatalf("run (%+v): %v", pol, err)
	}
	if st.Retired != uint64(len(trace)) {
		t.Fatalf("retired %d, want %d", st.Retired, len(trace))
	}
	return st
}

const countdownSrc = `
        .text
main:   ldiq t0, 200
        clr  t1
loop:   addq t1, t1, t0
        addqi t0, t0, -1
        bne  t0, loop
        clr  v0
        mov  a0, t1
        syscall
`

func TestCountdownAllConfigs(t *testing.T) {
	p, trace := build(t, countdownSrc)
	for name, pol := range paperPolicies() {
		t.Run(name, func(t *testing.T) {
			st := runWith(t, p, trace, pol)
			if st.IPC() <= 0.1 {
				t.Errorf("IPC = %.3f, suspiciously low", st.IPC())
			}
		})
	}
}

const factorialSrc = `
        .text
main:   ldiq a0, 12
        call fact
        clr  v0
        syscall

fact:   bne  a0, rec
        ldiq v0, 1
        ret
rec:    lda  sp, -16(sp)
        stq  ra, 0(sp)
        stq  a0, 8(sp)
        addqi a0, a0, -1
        call fact
        ldq  a0, 8(sp)
        ldq  ra, 0(sp)
        lda  sp, 16(sp)
        mulq v0, v0, a0
        ret
`

func TestRecursionAllConfigs(t *testing.T) {
	p, trace := build(t, factorialSrc)
	for name, pol := range paperPolicies() {
		t.Run(name, func(t *testing.T) {
			runWith(t, p, trace, pol)
		})
	}
}

// A loop with an un-hoisted loop-invariant computation: classic general
// reuse fodder (paper §2.2).
const invariantSrc = `
        .text
main:   ldiq t3, 50
        clr  t4
outer:  ldiq t0, 1000          ; program constant, redundant per iteration
        addqi t1, t0, 24       ; loop-invariant, un-hoisted
        mulqi t2, t1, 3        ; dependent invariant chain
        addq t4, t4, t2
        addqi t3, t3, -1
        bne  t3, outer
        clr  v0
        mov  a0, t4
        syscall
`

func TestGeneralReuseIntegrates(t *testing.T) {
	p, trace := build(t, invariantSrc)

	base := runWith(t, p, trace, core.Policy{})
	if base.Integrated != 0 {
		t.Fatalf("no-integration config integrated %d", base.Integrated)
	}

	squash := runWith(t, p, trace, core.Policy{Enable: true, UseLISP: true})
	general := runWith(t, p, trace, core.Policy{Enable: true, GeneralReuse: true, UseLISP: true})

	if general.Integrated == 0 {
		t.Fatal("general reuse integrated nothing on loop-invariant code")
	}
	if general.Integrated <= squash.Integrated {
		t.Errorf("general (%d) should integrate more than squash-only (%d)",
			general.Integrated, squash.Integrated)
	}
	// The invariant chain is ~3 of 6 loop instructions; expect a
	// substantial rate.
	if general.IntegrationRate() < 0.2 {
		t.Errorf("integration rate %.3f, want >= 0.2", general.IntegrationRate())
	}
	// Integration must reduce executed instructions.
	if general.Executed >= base.Executed {
		t.Errorf("executed %d with integration >= %d without", general.Executed, base.Executed)
	}
	// And it should not hurt performance.
	if general.IPC() < base.IPC()*0.95 {
		t.Errorf("integration hurt IPC: %.3f vs %.3f", general.IPC(), base.IPC())
	}
}

// Save/restore around calls: the reverse-integration target.
const saveRestoreSrc = `
        .text
main:   ldiq s0, 7
        ldiq s1, 9
        ldiq t3, 100
loop:   mov  a0, s0
        call leaf
        addq s1, s1, v0
        addqi t3, t3, -1
        bne  t3, loop
        clr  v0
        mov  a0, s1
        syscall

leaf:   lda  sp, -32(sp)
        stq  ra, 0(sp)
        stq  s0, 8(sp)
        stq  s1, 16(sp)
        addq s0, a0, a0        ; clobber s0, s1
        addq s1, a0, s0
        addq v0, s0, s1
        ldq  s1, 16(sp)
        ldq  s0, 8(sp)
        ldq  ra, 0(sp)
        lda  sp, 32(sp)
        ret
`

func TestReverseIntegrationBypassesSaves(t *testing.T) {
	p, trace := build(t, saveRestoreSrc)

	opcode := runWith(t, p, trace, core.Policy{Enable: true, GeneralReuse: true, OpcodeIndex: true, UseLISP: true})
	reverse := runWith(t, p, trace, core.Policy{Enable: true, GeneralReuse: true, OpcodeIndex: true, Reverse: true, UseLISP: true})

	if reverse.IntegratedReverse == 0 {
		t.Fatal("reverse integration produced no reverse integrations on save/restore code")
	}
	if reverse.Integrated <= opcode.Integrated {
		t.Errorf("+reverse (%d) should integrate more than +opcode (%d)",
			reverse.Integrated, opcode.Integrated)
	}
	// Restores are SP loads; most should bypass.
	if reverse.SPLoadIntegrationRate() < 0.3 {
		t.Errorf("SP-load integration rate %.3f, want >= 0.3", reverse.SPLoadIntegrationRate())
	}
}

// Branchy, data-dependent program: exercises mispredicts, squashes and
// squash reuse.
const branchySrc = `
        .text
main:   ldiq t0, 4000
        ldiq t1, 1234567
        clr  t2
loop:   mulqi t1, t1, 1103515245
        addqi t1, t1, 12345
        andi t3, t1, 0xffff
        andi t4, t3, 1
        beq  t4, even
        addq t2, t2, t3
        br   next
even:   subq t2, t2, t3
next:   addqi t0, t0, -1
        bne  t0, loop
        clr  v0
        mov  a0, t2
        syscall
`

func TestBranchyWorkload(t *testing.T) {
	p, trace := build(t, branchySrc)
	for name, pol := range paperPolicies() {
		t.Run(name, func(t *testing.T) {
			st := runWith(t, p, trace, pol)
			if st.CondMispredicts == 0 {
				t.Error("data-dependent branches never mispredicted")
			}
		})
	}
}

// Memory traffic with store-load communication through a buffer.
const memTrafficSrc = `
        .text
main:   ldiq t0, 64
        ldiq t5, buf
        clr  t2
fill:   stq  t2, 0(t5)
        addqi t5, t5, 8
        addqi t2, t2, 3
        addqi t0, t0, -1
        bne  t0, fill
        ldiq t0, 64
        ldiq t5, buf
        clr  t3
sum:    ldq  t4, 0(t5)
        addq t3, t3, t4
        addqi t5, t5, 8
        addqi t0, t0, -1
        bne  t0, sum
        clr  v0
        mov  a0, t3
        syscall
        .data
buf:    .space 512
`

func TestMemoryTraffic(t *testing.T) {
	p, trace := build(t, memTrafficSrc)
	for name, pol := range paperPolicies() {
		t.Run(name, func(t *testing.T) {
			st := runWith(t, p, trace, pol)
			if st.LoadsRetired < 64 {
				t.Errorf("loads retired %d", st.LoadsRetired)
			}
		})
	}
}

// Store-to-load forwarding within the window.
const forwardSrc = `
        .text
main:   ldiq t0, 500
        ldiq t5, buf
        clr  t3
loop:   stq  t0, 0(t5)
        ldq  t4, 0(t5)         ; immediately reloaded: forwarded or bypassed
        addq t3, t3, t4
        addqi t0, t0, -1
        bne  t0, loop
        clr  v0
        mov  a0, t3
        syscall
        .data
buf:    .space 8
`

func TestStoreLoadForwarding(t *testing.T) {
	p, trace := build(t, forwardSrc)
	st := runWith(t, p, trace, core.Policy{})
	if st.LoadsForwarded == 0 {
		t.Error("no store-to-load forwarding observed")
	}
}

func TestOracleSuppression(t *testing.T) {
	p, trace := build(t, saveRestoreSrc)
	pol := core.Policy{Enable: true, GeneralReuse: true, OpcodeIndex: true, Reverse: true, Oracle: true}
	st := runWith(t, p, trace, pol)
	if st.OracleResidual > st.MisIntegrations {
		t.Errorf("oracle residual %d > misintegrations %d", st.OracleResidual, st.MisIntegrations)
	}
}

// Random program generator: straight-line ALU/memory/branch soup with a
// couple of helper functions, self-terminating. Each generated program is
// run under every policy; the run itself asserts retirement-stream
// equivalence with the emulator (DIVA panics on divergence) and audits
// refcounts at halt.
func genRandomProgram(rng *rand.Rand) string {
	var b []byte
	add := func(s string, args ...interface{}) {
		b = append(b, []byte(fmt.Sprintf(s+"\n", args...))...)
	}
	add("        .text")
	add("main:   ldiq t0, %d", 50+rng.Intn(100))
	add("        ldiq t1, %d", rng.Intn(1<<20))
	add("        ldiq t5, data")
	add("        clr  t2")
	add("loop:")
	n := 3 + rng.Intn(12)
	for i := 0; i < n; i++ {
		switch rng.Intn(10) {
		case 0, 1:
			add("        addqi t1, t1, %d", rng.Intn(100)-50)
		case 2:
			add("        mulqi t1, t1, %d", 3+rng.Intn(5))
		case 3:
			add("        xori t2, t1, %d", rng.Intn(1<<12))
		case 4:
			add("        stq  t1, %d(t5)", 8*rng.Intn(8))
		case 5:
			add("        ldq  t3, %d(t5)", 8*rng.Intn(8))
		case 6:
			add("        addq t2, t2, t3")
		case 7:
			add("        andi t4, t1, %d", 1+rng.Intn(7))
			add("        beq  t4, skip%d", i)
			add("        addqi t2, t2, 1")
			add("skip%d:", i)
		case 8:
			add("        mov  a0, t1")
			add("        call  helper")
			add("        addq t2, t2, v0")
		case 9:
			add("        srli t3, t1, %d", 1+rng.Intn(8))
			add("        subq t2, t2, t3")
		}
	}
	add("        addqi t0, t0, -1")
	add("        bne  t0, loop")
	add("        clr  v0")
	add("        mov  a0, t2")
	add("        syscall")
	add("helper: lda  sp, -16(sp)")
	add("        stq  s0, 8(sp)")
	add("        addqi s0, a0, %d", rng.Intn(64))
	add("        andi v0, s0, 255")
	add("        ldq  s0, 8(sp)")
	add("        lda  sp, 16(sp)")
	add("        ret")
	add("        .data")
	add("data:   .space 64")
	return string(b)
}

func TestRandomProgramsEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(20020715))
	for i := 0; i < 6; i++ {
		src := genRandomProgram(rng)
		p, trace := build(t, src)
		for name, pol := range paperPolicies() {
			t.Run(fmt.Sprintf("prog%d/%s", i, name), func(t *testing.T) {
				runWith(t, p, trace, pol)
			})
		}
	}
}

func TestStatsHelpers(t *testing.T) {
	s := &Stats{Cycles: 100, Retired: 150, Integrated: 30, IntegratedReverse: 10,
		MisIntegrations: 3, CondMispredicts: 2, ResolutionLatency: 40, RSOccupancySum: 3100}
	if s.IPC() != 1.5 {
		t.Errorf("IPC = %v", s.IPC())
	}
	if s.IntegrationRate() != 0.2 {
		t.Errorf("rate = %v", s.IntegrationRate())
	}
	if s.MisIntPerMillion() != 20000 {
		t.Errorf("mispm = %v", s.MisIntPerMillion())
	}
	if s.MispredictResolutionAvg() != 20 {
		t.Errorf("resolution = %v", s.MispredictResolutionAvg())
	}
	if s.AvgRSOccupancy() != 31 {
		t.Errorf("occupancy = %v", s.AvgRSOccupancy())
	}
	if distanceBucket(3) != 0 || distanceBucket(15) != 1 || distanceBucket(63) != 2 || distanceBucket(64) != 3 {
		t.Error("distance buckets wrong")
	}
	if refcountBucket(1) != 0 || refcountBucket(3) != 1 || refcountBucket(7) != 2 || refcountBucket(8) != 3 {
		t.Error("refcount buckets wrong")
	}
}
