// Package asm implements a two-pass assembler for the rix ISA. It is the
// tool with which the synthetic SPEC2000-like workloads are written.
//
// Syntax overview:
//
//	; comment        # comment
//	        .text
//	main:   lda   sp, -32(sp)        ; stack-frame open
//	        stq   ra, 0(sp)          ; save
//	        ldiq  t0, 1000           ; pseudo: load 32-bit immediate
//	loop:   addqi t0, t0, -1
//	        bne   t0, loop
//	        ldq   ra, 0(sp)
//	        lda   sp, 32(sp)
//	        ret
//	        .data
//	tbl:    .word 1, 2, 3
//	buf:    .space 4096
//	        .equ  N, 64
//
// Pseudo-instructions: mov, clr, ldiq, negq, call, ret (bare), and
// automatic immediate-form selection (addq rd, ra, 5 becomes addqi).
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"rix/internal/isa"
	"rix/internal/prog"
)

// Error is an assembly diagnostic with source position.
type Error struct {
	File string
	Line int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
}

// ErrorList is the set of diagnostics from one assembly.
type ErrorList []*Error

func (l ErrorList) Error() string {
	if len(l) == 0 {
		return "no errors"
	}
	var b strings.Builder
	for i, e := range l {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(e.Error())
		if i == 9 && len(l) > 10 {
			fmt.Fprintf(&b, "\n... and %d more errors", len(l)-10)
			break
		}
	}
	return b.String()
}

// immKind distinguishes how a symbolic immediate is resolved.
type immKind uint8

const (
	immNone   immKind = iota
	immAbs            // absolute address/value of symbol + addend
	immBranch         // PC-relative displacement to symbol
)

// slot is one instruction position awaiting symbol resolution.
type slot struct {
	line   int
	in     isa.Instr
	kind   immKind
	sym    string
	addend int64
}

// dataPatch records a .word referencing a symbol.
type dataPatch struct {
	line   int
	offset int // byte offset in data segment
	sym    string
	addend int64
}

type assembler struct {
	file     string
	codeBase uint64
	dataBase uint64

	slots   []slot
	lines   []int
	data    []byte
	patches []dataPatch

	symbols map[string]uint64
	equs    map[string]int64
	entry   string
	inData  bool
	errs    ErrorList
}

// Assemble assembles source text into a validated program image.
func Assemble(name, text string) (*prog.Program, error) {
	a := &assembler{
		file:     name,
		codeBase: prog.DefaultCodeBase,
		dataBase: prog.DefaultDataBase,
		symbols:  make(map[string]uint64),
		equs:     make(map[string]int64),
	}
	a.pass1(text)
	p := a.pass2()
	if len(a.errs) > 0 {
		return nil, a.errs
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func (a *assembler) errorf(line int, format string, args ...interface{}) {
	a.errs = append(a.errs, &Error{a.file, line, fmt.Sprintf(format, args...)})
}

func (a *assembler) pass1(text string) {
	for lineNo, raw := range strings.Split(text, "\n") {
		line := stripComment(raw)
		// Peel off labels. Multiple labels per line are allowed.
		for {
			trimmed := strings.TrimSpace(line)
			if trimmed == "" {
				line = ""
				break
			}
			colon := strings.Index(trimmed, ":")
			if colon < 0 || !isIdent(trimmed[:colon]) {
				line = trimmed
				break
			}
			a.defineLabel(lineNo+1, trimmed[:colon])
			line = trimmed[colon+1:]
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ".") {
			a.directive(lineNo+1, line)
			continue
		}
		if a.inData {
			a.errorf(lineNo+1, "instruction in .data section: %q", line)
			continue
		}
		a.instruction(lineNo+1, line)
	}
}

func (a *assembler) defineLabel(line int, name string) {
	if _, dup := a.symbols[name]; dup {
		a.errorf(line, "duplicate label %q", name)
		return
	}
	if a.inData {
		a.symbols[name] = a.dataBase + uint64(len(a.data))
	} else {
		a.symbols[name] = a.codeBase + uint64(len(a.slots))*isa.InstrBytes
	}
}

func (a *assembler) directive(line int, text string) {
	fields := splitOperands(text)
	dir := fields[0]
	args := fields[1:]
	switch dir {
	case ".text":
		a.inData = false
	case ".data":
		a.inData = true
	case ".globl", ".global":
		// Accepted for compatibility; all symbols are global.
	case ".entry":
		if len(args) != 1 {
			a.errorf(line, ".entry wants one symbol")
			return
		}
		a.entry = args[0]
	case ".equ":
		if len(args) != 2 {
			a.errorf(line, ".equ wants name, value")
			return
		}
		v, ok := a.constValue(line, args[1])
		if !ok {
			return
		}
		a.equs[args[0]] = v
	case ".word":
		if !a.inData {
			a.errorf(line, ".word outside .data")
			return
		}
		for _, arg := range args {
			if v, err := parseInt(arg); err == nil {
				a.emitWord(uint64(v))
				continue
			}
			sym, addend, ok := parseSymExpr(arg)
			if !ok {
				a.errorf(line, "bad .word operand %q", arg)
				continue
			}
			a.patches = append(a.patches, dataPatch{line, len(a.data), sym, addend})
			a.emitWord(0)
		}
	case ".space":
		if !a.inData {
			a.errorf(line, ".space outside .data")
			return
		}
		if len(args) != 1 {
			a.errorf(line, ".space wants a size")
			return
		}
		n, ok := a.constValue(line, args[0])
		if !ok || n < 0 || n > 1<<28 {
			a.errorf(line, "bad .space size %q", args[0])
			return
		}
		a.data = append(a.data, make([]byte, n)...)
	case ".align":
		if !a.inData {
			return // text is always instruction-aligned
		}
		if len(args) != 1 {
			a.errorf(line, ".align wants a boundary")
			return
		}
		n, ok := a.constValue(line, args[0])
		if !ok || n <= 0 || n&(n-1) != 0 {
			a.errorf(line, "bad .align boundary %q", args[0])
			return
		}
		for uint64(len(a.data))%uint64(n) != 0 {
			a.data = append(a.data, 0)
		}
	default:
		a.errorf(line, "unknown directive %q", dir)
	}
}

func (a *assembler) emitWord(v uint64) {
	for i := 0; i < 8; i++ {
		a.data = append(a.data, byte(v>>(8*i)))
	}
}

// constValue resolves an integer literal or .equ constant.
func (a *assembler) constValue(line int, s string) (int64, bool) {
	if v, err := parseInt(s); err == nil {
		return v, true
	}
	if v, ok := a.equs[s]; ok {
		return v, true
	}
	a.errorf(line, "expected constant, got %q", s)
	return 0, false
}

func (a *assembler) pass2() *prog.Program {
	p := &prog.Program{
		Name:     a.file,
		CodeBase: a.codeBase,
		DataBase: a.dataBase,
		StackTop: prog.DefaultStackTop,
		Data:     a.data,
		Symbols:  a.symbols,
		Lines:    a.lines,
	}
	p.Code = make([]isa.Instr, len(a.slots))
	for i, s := range a.slots {
		in := s.in
		if s.kind != immNone {
			target, ok := a.resolve(s.sym)
			if !ok {
				a.errorf(s.line, "undefined symbol %q", s.sym)
				continue
			}
			v := target + s.addend
			if s.kind == immBranch {
				pc := int64(a.codeBase) + int64(i)*isa.InstrBytes
				v = v - (pc + isa.InstrBytes)
			}
			if !isa.FitsImm(v) {
				a.errorf(s.line, "immediate %d out of range", v)
				continue
			}
			in.Imm = v
		}
		p.Code[i] = in
	}
	// Apply data patches.
	for _, pt := range a.patches {
		v, ok := a.resolve(pt.sym)
		if !ok {
			a.errorf(pt.line, "undefined symbol %q", pt.sym)
			continue
		}
		u := uint64(v + pt.addend)
		for i := 0; i < 8; i++ {
			a.data[pt.offset+i] = byte(u >> (8 * i))
		}
	}
	// Entry point: .entry, else "main", else first instruction.
	entry := a.codeBase
	switch {
	case a.entry != "":
		v, ok := a.symbols[a.entry]
		if !ok {
			a.errorf(0, "entry symbol %q undefined", a.entry)
		} else {
			entry = v
		}
	default:
		if v, ok := a.symbols["main"]; ok {
			entry = v
		}
	}
	p.Entry = entry
	return p
}

func (a *assembler) resolve(sym string) (int64, bool) {
	if v, ok := a.symbols[sym]; ok {
		return int64(v), true
	}
	if v, ok := a.equs[sym]; ok {
		return v, true
	}
	return 0, false
}

func stripComment(s string) string {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ';', '#':
			return s[:i]
		case '/':
			if i+1 < len(s) && s[i+1] == '/' {
				return s[:i]
			}
		}
	}
	return s
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == '.' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// splitOperands splits "op a, b, c" into ["op", "a", "b", "c"].
func splitOperands(line string) []string {
	line = strings.TrimSpace(line)
	sp := strings.IndexAny(line, " \t")
	if sp < 0 {
		return []string{line}
	}
	out := []string{line[:sp]}
	for _, f := range strings.Split(line[sp+1:], ",") {
		out = append(out, strings.TrimSpace(f))
	}
	return out
}

func parseInt(s string) (int64, error) {
	if len(s) == 3 && s[0] == '\'' && s[2] == '\'' {
		return int64(s[1]), nil
	}
	return strconv.ParseInt(s, 0, 64)
}

// parseSymExpr parses "sym", "sym+4", "sym-8".
func parseSymExpr(s string) (sym string, addend int64, ok bool) {
	idx := strings.IndexAny(s, "+-")
	if idx <= 0 {
		if isIdent(s) {
			return s, 0, true
		}
		return "", 0, false
	}
	sym = strings.TrimSpace(s[:idx])
	if !isIdent(sym) {
		return "", 0, false
	}
	v, err := parseInt(strings.TrimSpace(s[idx:]))
	if err != nil {
		return "", 0, false
	}
	return sym, v, true
}
