package asm

import (
	"strings"

	"rix/internal/isa"
)

// immTwins maps register-form ALU opcodes to their immediate-form twins,
// enabling "addq rd, ra, 5" to auto-select addqi.
var immTwins = map[isa.Opcode]isa.Opcode{
	isa.ADDQ: isa.ADDQI, isa.SUBQ: isa.SUBQI, isa.MULQ: isa.MULQI,
	isa.AND: isa.ANDI, isa.BIS: isa.BISI, isa.XOR: isa.XORI,
	isa.SLL: isa.SLLI, isa.SRL: isa.SRLI, isa.SRA: isa.SRAI,
	isa.CMPEQ: isa.CMPEQI, isa.CMPLT: isa.CMPLTI, isa.CMPLE: isa.CMPLEI,
	isa.CMPULT: isa.CMPULTI,
}

// instruction parses one instruction line and appends the resulting slot.
func (a *assembler) instruction(line int, text string) {
	f := splitOperands(text)
	mnem, args := strings.ToLower(f[0]), f[1:]

	// Pseudo-instructions first.
	switch mnem {
	case "mov": // mov rd, rs -> bis rd, rs, zero
		if rd, ok := a.reg(line, args, 0); ok {
			if rs, ok := a.reg(line, args, 1); ok {
				a.emit(line, isa.Instr{Op: isa.BIS, Rd: rd, Ra: rs, Rb: isa.RegZero})
			}
		}
		return
	case "clr": // clr rd -> bis rd, zero, zero
		if rd, ok := a.reg(line, args, 0); ok {
			a.emit(line, isa.Instr{Op: isa.BIS, Rd: rd, Ra: isa.RegZero, Rb: isa.RegZero})
		}
		return
	case "ldiq": // ldiq rd, imm|sym -> lda rd, imm(zero)
		rd, ok := a.reg(line, args, 0)
		if !ok {
			return
		}
		if len(args) < 2 {
			a.errorf(line, "ldiq wants rd, value")
			return
		}
		in := isa.Instr{Op: isa.LDA, Rd: rd, Ra: isa.RegZero}
		a.emitImmOrSym(line, in, args[1], immAbs)
		return
	case "negq": // negq rd, rs -> subq rd, zero, rs
		if rd, ok := a.reg(line, args, 0); ok {
			if rs, ok := a.reg(line, args, 1); ok {
				a.emit(line, isa.Instr{Op: isa.SUBQ, Rd: rd, Ra: isa.RegZero, Rb: rs})
			}
		}
		return
	case "call": // call sym -> bsr ra, sym
		if len(args) != 1 {
			a.errorf(line, "call wants a target")
			return
		}
		a.emitImmOrSym(line, isa.Instr{Op: isa.BSR, Rd: isa.RegRA}, args[0], immBranch)
		return
	}

	op, ok := isa.OpByName(mnem)
	if !ok {
		a.errorf(line, "unknown mnemonic %q", mnem)
		return
	}

	switch op.ClassOf() {
	case isa.ClassNop:
		a.emit(line, isa.Instr{Op: isa.NOP})

	case isa.ClassIntALU, isa.ClassIntMul, isa.ClassFP:
		a.operate(line, op, args)

	case isa.ClassLoad: // ldq rd, disp(ra) | ldq rd, sym | ldq rd, sym(ra)
		rd, ok := a.reg(line, args, 0)
		if !ok {
			return
		}
		if len(args) < 2 {
			a.errorf(line, "%s wants rd, address", op)
			return
		}
		a.emitMem(line, isa.Instr{Op: op, Rd: rd}, args[1])

	case isa.ClassStore: // stq rs, disp(ra)
		rs, ok := a.reg(line, args, 0)
		if !ok {
			return
		}
		if len(args) < 2 {
			a.errorf(line, "%s wants rs, address", op)
			return
		}
		a.emitMem(line, isa.Instr{Op: op, Rb: rs}, args[1])

	case isa.ClassBranch: // beq ra, target
		ra, ok := a.reg(line, args, 0)
		if !ok {
			return
		}
		if len(args) < 2 {
			a.errorf(line, "%s wants ra, target", op)
			return
		}
		a.emitImmOrSym(line, isa.Instr{Op: op, Ra: ra}, args[1], immBranch)

	case isa.ClassJumpDirect: // br target
		if len(args) != 1 {
			a.errorf(line, "br wants a target")
			return
		}
		a.emitImmOrSym(line, isa.Instr{Op: isa.BR}, args[0], immBranch)

	case isa.ClassCallDirect: // bsr [rd,] target
		in := isa.Instr{Op: isa.BSR, Rd: isa.RegRA}
		target := ""
		switch len(args) {
		case 1:
			target = args[0]
		case 2:
			rd, ok := a.reg(line, args, 0)
			if !ok {
				return
			}
			in.Rd = rd
			target = args[1]
		default:
			a.errorf(line, "bsr wants [rd,] target")
			return
		}
		a.emitImmOrSym(line, in, target, immBranch)

	case isa.ClassCallIndirect: // jsr [rd,] (rb)
		in := isa.Instr{Op: isa.JSR, Rd: isa.RegRA}
		tgt := ""
		switch len(args) {
		case 1:
			tgt = args[0]
		case 2:
			rd, ok := a.reg(line, args, 0)
			if !ok {
				return
			}
			in.Rd = rd
			tgt = args[1]
		default:
			a.errorf(line, "jsr wants [rd,] (rb)")
			return
		}
		rb, ok := a.parenReg(line, tgt)
		if !ok {
			return
		}
		in.Rb = rb
		a.emit(line, in)

	case isa.ClassJumpIndirect: // jmp (rb)
		if len(args) != 1 {
			a.errorf(line, "jmp wants (rb)")
			return
		}
		rb, ok := a.parenReg(line, args[0])
		if !ok {
			return
		}
		a.emit(line, isa.Instr{Op: isa.JMP, Rb: rb})

	case isa.ClassRet: // ret | ret (rb)
		in := isa.Instr{Op: isa.RET, Rb: isa.RegRA}
		if len(args) == 1 {
			rb, ok := a.parenReg(line, args[0])
			if !ok {
				return
			}
			in.Rb = rb
		} else if len(args) > 1 {
			a.errorf(line, "ret wants at most (rb)")
			return
		}
		a.emit(line, in)

	case isa.ClassSyscall:
		a.emit(line, isa.Instr{Op: isa.SYSCALL})
	}
}

// operate parses ALU/FP formats.
func (a *assembler) operate(line int, op isa.Opcode, args []string) {
	rd, ok := a.reg(line, args, 0)
	if !ok {
		return
	}
	switch {
	case op == isa.LDA || op == isa.LDAH:
		if len(args) < 2 {
			a.errorf(line, "%s wants rd, disp(ra)", op)
			return
		}
		a.emitMem(line, isa.Instr{Op: op, Rd: rd}, args[1])

	case op == isa.CVTQT || op == isa.CVTTQ:
		ra, ok := a.reg(line, args, 1)
		if !ok {
			return
		}
		a.emit(line, isa.Instr{Op: op, Rd: rd, Ra: ra})

	case op.HasImm(): // immediate form: op rd, ra, imm
		ra, ok := a.reg(line, args, 1)
		if !ok {
			return
		}
		if len(args) < 3 {
			a.errorf(line, "%s wants rd, ra, imm", op)
			return
		}
		a.emitImmOrSym(line, isa.Instr{Op: op, Rd: rd, Ra: ra}, args[2], immAbs)

	default: // register form: op rd, ra, rb — or immediate-twin switch
		ra, ok := a.reg(line, args, 1)
		if !ok {
			return
		}
		if len(args) < 3 {
			a.errorf(line, "%s wants rd, ra, rb", op)
			return
		}
		if rb, ok := isa.RegByName(args[2]); ok {
			a.emit(line, isa.Instr{Op: op, Rd: rd, Ra: ra, Rb: rb})
			return
		}
		twin, ok := immTwins[op]
		if !ok {
			a.errorf(line, "%s wants a register third operand, got %q", op, args[2])
			return
		}
		a.emitImmOrSym(line, isa.Instr{Op: twin, Rd: rd, Ra: ra}, args[2], immAbs)
	}
}

// emitMem parses a "disp(ra)" / "sym" / "sym+off(ra)" memory operand into
// in.Ra and the immediate.
func (a *assembler) emitMem(line int, in isa.Instr, operand string) {
	base := isa.RegZero
	dispStr := operand
	if i := strings.IndexByte(operand, '('); i >= 0 {
		if !strings.HasSuffix(operand, ")") {
			a.errorf(line, "bad memory operand %q", operand)
			return
		}
		r, ok := isa.RegByName(strings.TrimSpace(operand[i+1 : len(operand)-1]))
		if !ok {
			a.errorf(line, "bad base register in %q", operand)
			return
		}
		base = r
		dispStr = strings.TrimSpace(operand[:i])
		if dispStr == "" {
			dispStr = "0"
		}
	}
	in.Ra = base
	a.emitImmOrSym(line, in, dispStr, immAbs)
}

// emitImmOrSym fills the immediate from a literal, .equ constant, or
// symbol expression, then appends the slot.
func (a *assembler) emitImmOrSym(line int, in isa.Instr, s string, kind immKind) {
	if v, err := parseInt(s); err == nil {
		if !isa.FitsImm(v) {
			a.errorf(line, "immediate %d out of range", v)
			return
		}
		in.Imm = v
		a.emit(line, in)
		return
	}
	if v, ok := a.equs[s]; ok {
		if !isa.FitsImm(v) {
			a.errorf(line, "immediate %d out of range", v)
			return
		}
		in.Imm = v
		a.emit(line, in)
		return
	}
	sym, addend, ok := parseSymExpr(s)
	if !ok {
		a.errorf(line, "bad operand %q", s)
		return
	}
	a.slots = append(a.slots, slot{line: line, in: in, kind: kind, sym: sym, addend: addend})
	a.lines = append(a.lines, line)
}

func (a *assembler) emit(line int, in isa.Instr) {
	a.slots = append(a.slots, slot{line: line, in: in, kind: immNone})
	a.lines = append(a.lines, line)
}

func (a *assembler) reg(line int, args []string, i int) (isa.Reg, bool) {
	if i >= len(args) {
		a.errorf(line, "missing register operand")
		return 0, false
	}
	r, ok := isa.RegByName(args[i])
	if !ok {
		a.errorf(line, "bad register %q", args[i])
		return 0, false
	}
	return r, true
}

func (a *assembler) parenReg(line int, s string) (isa.Reg, bool) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "(") || !strings.HasSuffix(s, ")") {
		a.errorf(line, "expected (reg), got %q", s)
		return 0, false
	}
	r, ok := isa.RegByName(strings.TrimSpace(s[1 : len(s)-1]))
	if !ok {
		a.errorf(line, "bad register in %q", s)
		return 0, false
	}
	return r, true
}
