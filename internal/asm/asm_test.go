package asm

import (
	"strings"
	"testing"

	"rix/internal/isa"
	"rix/internal/prog"
)

func mustAssemble(t *testing.T, src string) *prog.Program {
	t.Helper()
	p, err := Assemble("test.s", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func TestBasicProgram(t *testing.T) {
	p := mustAssemble(t, `
        .text
main:   addqi t0, zero, 5
loop:   addqi t0, t0, -1
        bne   t0, loop
        clr   v0
        syscall
`)
	if len(p.Code) != 5 {
		t.Fatalf("code len = %d, want 5", len(p.Code))
	}
	if p.Entry != p.CodeBase {
		t.Errorf("entry = %#x, want %#x", p.Entry, p.CodeBase)
	}
	// bne target: loop is at index 1, bne at index 2.
	bne := p.Code[2]
	if bne.Op != isa.BNE || bne.Target(p.PCOf(2)) != p.PCOf(1) {
		t.Errorf("bne mis-assembled: %+v", bne)
	}
}

func TestLabelsAndEntry(t *testing.T) {
	p := mustAssemble(t, `
        .entry start
        .text
helper: ret
start:  bsr ra, helper
        syscall
`)
	if p.Entry != p.PCOf(1) {
		t.Errorf("entry = %#x, want %#x", p.Entry, p.PCOf(1))
	}
	bsr := p.Code[1]
	if bsr.Op != isa.BSR || bsr.Rd != isa.RegRA || bsr.Target(p.PCOf(1)) != p.PCOf(0) {
		t.Errorf("bsr mis-assembled: %+v", bsr)
	}
}

func TestMemoryOperands(t *testing.T) {
	p := mustAssemble(t, `
        .text
main:   ldq  t0, 8(sp)
        stq  t0, -16(sp)
        ldq  t1, tbl
        ldq  t2, tbl+8
        stl  t0, tbl+16(gp)
        lda  sp, -32(sp)
        syscall
        .data
tbl:    .word 1, 2, 3
`)
	ld := p.Code[0]
	if ld.Op != isa.LDQ || ld.Rd != 1 || ld.Ra != isa.RegSP || ld.Imm != 8 {
		t.Errorf("ldq: %+v", ld)
	}
	st := p.Code[1]
	if st.Op != isa.STQ || st.Rb != 1 || st.Ra != isa.RegSP || st.Imm != -16 {
		t.Errorf("stq: %+v", st)
	}
	tbl := int64(p.Symbols["tbl"])
	if p.Code[2].Imm != tbl || p.Code[2].Ra != isa.RegZero {
		t.Errorf("ldq sym: %+v, want imm %d", p.Code[2], tbl)
	}
	if p.Code[3].Imm != tbl+8 {
		t.Errorf("ldq sym+8: %+v", p.Code[3])
	}
	if p.Code[4].Op != isa.STL || p.Code[4].Imm != tbl+16 || p.Code[4].Ra != isa.RegGP {
		t.Errorf("stl sym(gp): %+v", p.Code[4])
	}
	if p.Code[5].Op != isa.LDA || p.Code[5].Rd != isa.RegSP || p.Code[5].Imm != -32 {
		t.Errorf("lda: %+v", p.Code[5])
	}
}

func TestDataSegment(t *testing.T) {
	p := mustAssemble(t, `
        .text
main:   syscall
        .data
a:      .word 0x1122334455667788
b:      .space 16
        .align 8
c:      .word -1
d:      .word a
`)
	if p.Symbols["a"] != p.DataBase {
		t.Errorf("a = %#x", p.Symbols["a"])
	}
	if p.Symbols["b"] != p.DataBase+8 {
		t.Errorf("b = %#x", p.Symbols["b"])
	}
	if p.Symbols["c"] != p.DataBase+24 {
		t.Errorf("c = %#x", p.Symbols["c"])
	}
	// a's bytes, little-endian.
	if p.Data[0] != 0x88 || p.Data[7] != 0x11 {
		t.Errorf("word bytes: % x", p.Data[:8])
	}
	// d holds a's address.
	var d uint64
	for i := 0; i < 8; i++ {
		d |= uint64(p.Data[32+i]) << (8 * i)
	}
	if d != p.Symbols["a"] {
		t.Errorf("d = %#x, want %#x", d, p.Symbols["a"])
	}
}

func TestEquAndLdiq(t *testing.T) {
	p := mustAssemble(t, `
        .equ N, 64
        .equ NEG, -8
        .text
main:   ldiq t0, N
        ldiq t1, 0x1234
        addqi t2, t0, NEG
        ldiq t3, main
        syscall
`)
	if p.Code[0].Op != isa.LDA || p.Code[0].Imm != 64 || p.Code[0].Ra != isa.RegZero {
		t.Errorf("ldiq N: %+v", p.Code[0])
	}
	if p.Code[1].Imm != 0x1234 {
		t.Errorf("ldiq hex: %+v", p.Code[1])
	}
	if p.Code[2].Imm != -8 {
		t.Errorf("equ NEG: %+v", p.Code[2])
	}
	if p.Code[3].Imm != int64(p.CodeBase) {
		t.Errorf("ldiq main: %+v", p.Code[3])
	}
}

func TestPseudos(t *testing.T) {
	p := mustAssemble(t, `
        .text
main:   mov  t0, t1
        clr  t2
        negq t3, t4
        call f
        ret
f:      ret (t5)
        syscall
`)
	if p.Code[0].Op != isa.BIS || p.Code[0].Rd != 1 || p.Code[0].Ra != 2 || p.Code[0].Rb != isa.RegZero {
		t.Errorf("mov: %+v", p.Code[0])
	}
	if p.Code[1].Op != isa.BIS || p.Code[1].Ra != isa.RegZero || p.Code[1].Rb != isa.RegZero {
		t.Errorf("clr: %+v", p.Code[1])
	}
	if p.Code[2].Op != isa.SUBQ || p.Code[2].Ra != isa.RegZero || p.Code[2].Rb != 5 {
		t.Errorf("negq: %+v", p.Code[2])
	}
	if p.Code[3].Op != isa.BSR || p.Code[3].Rd != isa.RegRA {
		t.Errorf("call: %+v", p.Code[3])
	}
	if p.Code[4].Op != isa.RET || p.Code[4].Rb != isa.RegRA {
		t.Errorf("bare ret: %+v", p.Code[4])
	}
	if p.Code[5].Op != isa.RET || p.Code[5].Rb != 6 {
		t.Errorf("ret (t5): %+v", p.Code[5])
	}
}

func TestImmediateTwinSelection(t *testing.T) {
	p := mustAssemble(t, `
        .text
main:   addq t0, t1, 5
        subq t0, t1, t2
        and  t0, t1, 0xff
        syscall
`)
	if p.Code[0].Op != isa.ADDQI || p.Code[0].Imm != 5 {
		t.Errorf("addq imm twin: %+v", p.Code[0])
	}
	if p.Code[1].Op != isa.SUBQ {
		t.Errorf("subq reg form: %+v", p.Code[1])
	}
	if p.Code[2].Op != isa.ANDI || p.Code[2].Imm != 0xff {
		t.Errorf("and imm twin: %+v", p.Code[2])
	}
}

func TestCommentsAndFormatting(t *testing.T) {
	p := mustAssemble(t, `
; leading comment
        .text
main:   nop            ; trailing
        nop            # hash comment
        nop            // slash comment
a: b:   nop            ; two labels, one line
        syscall
`)
	if len(p.Code) != 5 {
		t.Fatalf("code len = %d, want 5", len(p.Code))
	}
	if p.Symbols["a"] != p.Symbols["b"] || p.Symbols["a"] != p.PCOf(3) {
		t.Errorf("multi-label line: a=%#x b=%#x", p.Symbols["a"], p.Symbols["b"])
	}
}

func TestJsrJmpForms(t *testing.T) {
	p := mustAssemble(t, `
        .text
main:   jsr (pv)
        jsr t0, (t1)
        jmp (t2)
        syscall
`)
	if p.Code[0].Op != isa.JSR || p.Code[0].Rd != isa.RegRA || p.Code[0].Rb != isa.RegPV {
		t.Errorf("jsr (pv): %+v", p.Code[0])
	}
	if p.Code[1].Rd != 1 || p.Code[1].Rb != 2 {
		t.Errorf("jsr t0,(t1): %+v", p.Code[1])
	}
	if p.Code[2].Op != isa.JMP || p.Code[2].Rb != 3 {
		t.Errorf("jmp: %+v", p.Code[2])
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"main: frob t0, t1\n syscall", "unknown mnemonic"},
		{"main: addq t0, t1\n syscall", "wants rd, ra, rb"},
		{"main: beq t0, nowhere\n syscall", "undefined symbol"},
		{"main: ldq t0, 8(bad)\n syscall", "bad base register"},
		{".data\nx: .word 1\n.text\nmain: syscall\nx: nop", "duplicate label"},
		{".text\nmain: syscall\n.data\n.word 1\n.text\n .word 2", ".word outside .data"},
		{"main: br main\n.frob", "unknown directive"},
		{".data\nx: .space -1\n.text\nmain: syscall", "bad .space size"},
		{"main: ldiq t0, 0x100000000\n syscall", "out of range"},
	}
	for _, c := range cases {
		_, err := Assemble("e.s", c.src)
		if err == nil {
			t.Errorf("source %q: expected error %q, got none", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("source %q: error %q does not contain %q", c.src, err, c.want)
		}
	}
}

func TestBranchOutOfTextRejected(t *testing.T) {
	// Validate() must reject control transfers outside the text segment.
	_, err := Assemble("e.s", `
        .text
main:   br end
        syscall
        .data
end:    .word 0
`)
	if err == nil || !strings.Contains(err.Error(), "outside text") {
		t.Errorf("expected outside-text error, got %v", err)
	}
}

func TestErrorListFormatting(t *testing.T) {
	var l ErrorList
	if l.Error() != "no errors" {
		t.Errorf("empty list: %q", l.Error())
	}
	for i := 0; i < 15; i++ {
		l = append(l, &Error{"f.s", i + 1, "boom"})
	}
	s := l.Error()
	if !strings.Contains(s, "f.s:1: boom") || !strings.Contains(s, "and 5 more") {
		t.Errorf("list format: %q", s)
	}
}

func TestEncodedRoundTrip(t *testing.T) {
	p := mustAssemble(t, `
        .text
main:   addq t0, t1, t2
        ldq  s0, 16(sp)
        beq  t0, main
        syscall
`)
	for i, in := range p.Code {
		got, err := isa.Decode(isa.Encode(in))
		if err != nil || got != in {
			t.Errorf("code[%d] round trip: %+v -> %+v (%v)", i, in, got, err)
		}
	}
}

func TestSymbolFor(t *testing.T) {
	p := mustAssemble(t, `
        .text
main:   nop
        nop
f:      nop
        syscall
`)
	name, off := p.SymbolFor(p.PCOf(3))
	if name != "f" || off != 4 {
		t.Errorf("SymbolFor = %s+%d, want f+4", name, off)
	}
}
