package asm

import (
	"strings"
	"testing"

	"rix/internal/isa"
)

// TestDisasmReassemble: disassembling an assembled program and feeding
// the listing back through the assembler must reproduce the same code.
// This closes the loop between the assembler's operand grammar and the
// disassembler's output format.
func TestDisasmReassemble(t *testing.T) {
	p := mustAssemble(t, `
        .text
main:   lda   sp, -32(sp)
        stq   ra, 0(sp)
        stq   s0, 8(sp)
        ldiq  t0, 1000
        clr   t1
loop:   addq  t1, t1, t0
        mulqi t2, t0, 3
        and   t3, t1, t2
        srl   t4, t3, t0
        cmplt t5, t4, t1
        beq   t5, skip
        subqi t1, t1, 7
skip:   ldq   t6, 16(sp)
        stl   t6, 24(sp)
        ldl   t7, 24(sp)
        fadd  t8, t6, t7
        cvttq t9, t8
        addqi t0, t0, -1
        bne   t0, loop
        jsr   ra, (pv)
        jmp   (t9)
        ret
        ldq   ra, 0(sp)
        lda   sp, 32(sp)
        syscall
`)
	// Render each instruction with raw offsets and reassemble.
	var b strings.Builder
	b.WriteString(".text\nmain:\n")
	for i, in := range p.Code {
		// PC-relative operands need symbolic targets; rewrite them.
		switch in.Op.ClassOf() {
		case isa.ClassBranch:
			b.WriteString("l" + itoa(i) + ": " + in.Op.String() + " " + in.Ra.String() +
				", l" + itoa(i+1+int(in.Imm)/4) + "\n")
		case isa.ClassJumpDirect:
			b.WriteString("l" + itoa(i) + ": br l" + itoa(i+1+int(in.Imm)/4) + "\n")
		case isa.ClassCallDirect:
			b.WriteString("l" + itoa(i) + ": bsr " + in.Rd.String() + ", l" + itoa(i+1+int(in.Imm)/4) + "\n")
		default:
			b.WriteString("l" + itoa(i) + ": " + isa.Disasm(in, 0) + "\n")
		}
	}
	// Branch targets may point one past the end.
	b.WriteString("l" + itoa(len(p.Code)) + ": nop\n")

	p2, err := Assemble("rt.s", b.String())
	if err != nil {
		t.Fatalf("reassemble:\n%s\n%v", b.String(), err)
	}
	if len(p2.Code) != len(p.Code)+1 {
		t.Fatalf("code length %d != %d", len(p2.Code), len(p.Code)+1)
	}
	for i, want := range p.Code {
		if p2.Code[i] != want {
			t.Errorf("instr %d: %+v != %+v (%s)", i, p2.Code[i], want, isa.Disasm(want, 0))
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	neg := i < 0
	if neg {
		i = -i
	}
	var d []byte
	for i > 0 {
		d = append([]byte{byte('0' + i%10)}, d...)
		i /= 10
	}
	if neg {
		return "-" + string(d)
	}
	return string(d)
}
