package run

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"rix/internal/asm"
	"rix/internal/emu"
	"rix/internal/pipeline"
	"rix/internal/prog"
	"rix/internal/sample"
	"rix/internal/sample/procexec"
	"rix/internal/workload"
)

// Source supplies built workloads by name. workload.Builder is the
// standard implementation; the runner engine passes its own memoizing
// source so matrix cells share builds.
type Source interface {
	Get(ctx context.Context, name string) (workload.Built, error)
}

// DetailRunner executes one full-detail simulation — the seam the
// engine's tests use to substitute a stub machine. The default
// constructs a pipeline, attaches progress observation, and runs it
// under ctx.
type DetailRunner func(ctx context.Context, cfg pipeline.Config, p *prog.Program, src emu.TraceSource) (*pipeline.Stats, error)

// DefaultProgressInterval is the retired/fast-forwarded instruction
// cadence of Progress events when an Observer is attached.
const DefaultProgressInterval = 1 << 18

// Options collects every per-call execution knob Do accepts beyond the
// serializable Request: live resources (observer, workload source,
// shared scheduler), test seams, and event cadence. The zero value
// selects all defaults. This struct is the whole option surface — the
// With* functions below are thin wrappers over its fields, for call
// sites that prefer variadic style — so a caller holding several knobs
// can pass one WithOptions instead of composing wrappers.
type Options struct {
	// Observer streams the run's typed progress events (nil: none).
	Observer Observer

	// Source resolves workload names (nil: the package registry,
	// memoized across Do calls).
	Source Source

	// DetailRunner substitutes the full-detail execution path — a test
	// seam; sampled modes are unaffected.
	DetailRunner DetailRunner

	// ProgressEvery is the Progress event cadence in instructions
	// (0: DefaultProgressInterval).
	ProgressEvery uint64

	// Scheduler runs a sampled request's detail-window phase on a
	// shared work-stealing pool (see sample.Scheduler) instead of a
	// per-run worker set: concurrent Do calls passing the same
	// scheduler steal each other's idle slots, and each slot's pooled
	// boot state is reused across every window it executes. The pool is
	// a live resource, not part of the serializable Request — the
	// request's Jobs field records the intended pool size, and the
	// caller (e.g. the runner engine) owns the scheduler's lifecycle.
	// Ignored for detail runs.
	Scheduler *sample.Scheduler

	// Executor runs a sampled request's detail-window phase through a
	// caller-supplied sample.Executor — a live resource like Scheduler,
	// taking precedence over both it and the request's Executor/
	// WorkerDir fields (from which Do would otherwise construct a
	// cross-process coordinator itself). The caller owns its lifecycle.
	// Ignored for detail and resume runs.
	Executor sample.Executor
}

// Option customizes one Do call.
type Option func(*Options)

// WithOptions merges every non-zero field of o into the call's options
// — the bulk form of the wrappers below.
func WithOptions(o Options) Option {
	return func(c *Options) {
		if o.Observer != nil {
			c.Observer = o.Observer
		}
		if o.Source != nil {
			c.Source = o.Source
		}
		if o.DetailRunner != nil {
			c.DetailRunner = o.DetailRunner
		}
		if o.ProgressEvery > 0 {
			c.ProgressEvery = o.ProgressEvery
		}
		if o.Scheduler != nil {
			c.Scheduler = o.Scheduler
		}
		if o.Executor != nil {
			c.Executor = o.Executor
		}
	}
}

// WithObserver streams the run's typed progress events to o.
func WithObserver(o Observer) Option {
	return func(c *Options) {
		if o != nil {
			c.Observer = o
		}
	}
}

// WithSource resolves workload names through s instead of the package
// registry.
func WithSource(s Source) Option {
	return func(c *Options) {
		if s != nil {
			c.Source = s
		}
	}
}

// WithProgressEvery sets Options.ProgressEvery (0 keeps the default).
func WithProgressEvery(n uint64) Option {
	return func(c *Options) {
		if n > 0 {
			c.ProgressEvery = n
		}
	}
}

// WithScheduler sets Options.Scheduler; see that field for the sharing
// and ownership contract.
func WithScheduler(s *sample.Scheduler) Option {
	return func(c *Options) {
		if s != nil {
			c.Scheduler = s
		}
	}
}

// WithExecutor sets Options.Executor; see that field for the
// precedence and ownership contract.
func WithExecutor(e sample.Executor) Option {
	return func(c *Options) {
		if e != nil {
			c.Executor = e
		}
	}
}

// WithDetailRunner sets Options.DetailRunner — a test seam; sampled
// modes are unaffected.
func WithDetailRunner(fn DetailRunner) Option {
	return func(c *Options) {
		if fn != nil {
			c.DetailRunner = fn
		}
	}
}

// config is the resolved option set execute works from: Options with
// defaults applied, plus whether a real observer is attached (the
// detail path skips progress instrumentation entirely without one).
type config struct {
	Options
	hasObs bool
}

// defaultSource memoizes registry builds across Do calls (programs and
// validation metadata only; golden traces stream).
var defaultSource = workload.NewBuilder()

// Do executes one request: validate eagerly, resolve the program, route
// by Mode, and return the Result. Cancelling ctx ends the run with
// ctx.Err() within a bounded amount of simulated work at every stage —
// workload build, detailed cycle loop, sampled fast-forward, window
// replay, and checkpoint re-execution.
func Do(ctx context.Context, req Request, opts ...Option) (*Result, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	c := config{Options: o, hasObs: o.Observer != nil}
	if c.Observer == nil {
		c.Observer = nopObserver{}
	}
	if c.Source == nil {
		c.Source = defaultSource
	}
	if c.ProgressEvery == 0 {
		c.ProgressEvery = DefaultProgressInterval
	}

	start := time.Now()
	bw, err := resolve(ctx, &c, &req)
	if err != nil {
		return nil, err
	}

	res := &Result{Workload: req.name(), Label: req.ResolvedLabel(), Mode: req.Mode(), DynLen: bw.DynLen}
	ev := Event{Workload: res.Workload, Label: res.Label, Mode: res.Mode}

	ev.Kind = CellStarted
	c.Observer.Observe(ev)
	err = execute(ctx, &c, &req, bw, res, ev)
	ev.Kind = CellFinished
	if err != nil {
		ev.Err = err.Error()
		c.Observer.Observe(ev)
		return nil, err
	}
	ev.Instrs = res.Stats.Retired
	c.Observer.Observe(ev)
	res.Wall = time.Since(start)
	return res, nil
}

// resolve produces the program to simulate: a named workload through the
// source, or inline assembly.
func resolve(ctx context.Context, c *config, req *Request) (workload.Built, error) {
	if req.Workload != "" {
		return c.Source.Get(ctx, req.Workload)
	}
	p, err := asm.Assemble(req.name(), req.Source)
	if err != nil {
		return workload.Built{}, fmt.Errorf("run: assemble %s: %w", req.name(), err)
	}
	return workload.BuiltFromProgram(p, req.MaxInstrs), nil
}

// execute routes the resolved run to its engine and fills in the
// result's statistics.
func execute(ctx context.Context, c *config, req *Request, bw workload.Built, res *Result, ev Event) error {
	cfg, err := req.Options.Config()
	if err != nil {
		return err
	}

	if req.Options.Sampling == nil {
		detail := c.DetailRunner
		if detail == nil {
			detail = func(ctx context.Context, cfg pipeline.Config, p *prog.Program, src emu.TraceSource) (*pipeline.Stats, error) {
				pl := pipeline.New(cfg, p, src)
				if c.hasObs {
					pev := ev
					pev.Kind = Progress
					pl.SetProgress(c.ProgressEvery, func(retired uint64) {
						pev.Instrs = retired
						c.Observer.Observe(pev)
					})
				}
				return pl.RunContext(ctx)
			}
		}
		st, err := detail(ctx, cfg, bw.Prog, bw.Source())
		if err != nil {
			return err
		}
		res.Stats = *st
		return nil
	}

	sc := sample.Config{
		Sampling:      *req.Options.Sampling,
		CheckpointDir: req.CheckpointDir,
		Parallel:      req.Parallel,
		Windows:       req.Jobs,
		WarmJobs:      req.WarmJobs,
		WarmStride:    req.WarmStride,
		CacheDir:      req.CheckpointCache,
		CacheMaxBytes: int64(req.CacheMaxMB) << 20,
		CacheMaxAge:   time.Duration(req.CacheMaxAgeSec) * time.Second,
		Scheduler:     c.Scheduler,
		MaxInstrs:     req.MaxInstrs,
	}
	if c.hasObs {
		sc.Hooks = sampleHooks(c, ev)
	}
	sc.Executor = c.Executor
	if sc.Executor == nil && req.Executor == ExecProc {
		// Construct the cross-process coordinator from the request's own
		// fields: window jobs travel through WorkerDir's windows/
		// subdirectory for `rixsim -worker` processes to claim. Jobs
		// bounds the in-flight dispatches (the coordinator's default
		// otherwise).
		coord, err := procexec.New(req.WorkerDir, procConfig(c, req, ev))
		if err != nil {
			return err
		}
		sc.Executor = coord
	}
	// Wave telemetry is part of the Result, observer or not: count
	// dispatches and discards on top of whatever event hooks are
	// installed. Both fire from the coordinating goroutine, but WindowDone
	// (and thus a future reader of these counters) may run concurrently in
	// Resume mode, so keep them atomic.
	var dispatched, discarded atomic.Uint64
	prevSched, prevDisc := sc.Hooks.WindowScheduled, sc.Hooks.WindowDiscarded
	sc.Hooks.WindowScheduled = func(index int) {
		dispatched.Add(1)
		if prevSched != nil {
			prevSched(index)
		}
	}
	sc.Hooks.WindowDiscarded = func(index int) {
		discarded.Add(1)
		if prevDisc != nil {
			prevDisc(index)
		}
	}
	var est *sample.Estimate
	if req.Resume {
		est, err = sample.Continue(ctx, bw.Prog, bw.DynLen, cfg, sc)
	} else {
		est, err = sample.Run(ctx, bw.Prog, bw.DynLen, cfg, sc)
	}
	if err != nil {
		return err
	}
	res.Stats = est.Agg
	res.Sampled = summarize(est, dispatched.Load(), discarded.Load())
	return nil
}

// procConfig builds the cross-process coordinator configuration for an
// ExecProc request, adapting its worker-lifecycle callbacks to the
// typed event stream. The callbacks fire from the coordinator's
// per-window collection goroutines — concurrently, like WindowDone in
// resume mode — so each builds its Event as a local value.
func procConfig(c *config, req *Request, ev Event) procexec.Config {
	pc := procexec.Config{Width: req.Jobs}
	if !c.hasObs {
		return pc
	}
	pc.OnWorkerJoined = func(worker string) {
		e := ev
		e.Kind = WorkerJoined
		e.Worker = worker
		c.Observer.Observe(e)
	}
	pc.OnLeaseClaimed = func(job, worker string, window int) {
		e := ev
		e.Kind = LeaseClaimed
		e.Worker = worker
		e.Window = window
		c.Observer.Observe(e)
	}
	pc.OnResultCollected = func(job string, window int, path string) {
		e := ev
		e.Kind = ResultCollected
		e.Window = window
		e.Path = path
		c.Observer.Observe(e)
	}
	return pc
}

// sampleHooks adapts the sampling engine's callbacks to the typed event
// stream. Progress and CheckpointWritten fire from the sequential run
// goroutine; WindowDone may also fire concurrently from Resume/
// Continue's worker pool, so every hook builds its Event as a local
// value — nothing shared is mutated (window-rate events are far off the
// hot path, so the per-call value is free).
func sampleHooks(c *config, ev Event) sample.Hooks {
	var lastProgress uint64
	every := c.ProgressEvery
	return sample.Hooks{
		Progress: func(instrs uint64) {
			if instrs-lastProgress < every {
				return
			}
			lastProgress = instrs
			e := ev
			e.Kind = Progress
			e.Instrs = instrs
			c.Observer.Observe(e)
		},
		WindowDone: func(w sample.WindowStat) {
			e := ev
			e.Kind = WindowDone
			e.Window = w.Index
			e.Instrs = w.Stats.Retired
			c.Observer.Observe(e)
		},
		CheckpointWritten: func(path string, index int) {
			e := ev
			e.Kind = CheckpointWritten
			e.Window = index
			e.Path = path
			c.Observer.Observe(e)
		},
		WindowScheduled: func(index int) {
			e := ev
			e.Kind = WindowScheduled
			e.Window = index
			c.Observer.Observe(e)
		},
		WindowDiscarded: func(index int) {
			e := ev
			e.Kind = WindowDiscarded
			e.Window = index
			c.Observer.Observe(e)
		},
		WarmShardStarted: func(shard int, start, end uint64) {
			e := ev
			e.Kind = WarmShardStarted
			e.Shard = shard
			e.SpanStart, e.SpanEnd = start, end
			c.Observer.Observe(e)
		},
		WarmShardDone: func(shard int, start, end uint64) {
			e := ev
			e.Kind = WarmShardDone
			e.Shard = shard
			e.SpanStart, e.SpanEnd = start, end
			c.Observer.Observe(e)
		},
		SlotStolen: func(slot int) {
			e := ev
			e.Kind = SlotStolen
			e.Slot = slot
			c.Observer.Observe(e)
		},
		SlotReturned: func(index int) {
			e := ev
			e.Kind = SlotReturned
			e.Window = index
			c.Observer.Observe(e)
		},
		CacheHit: func(path string) {
			e := ev
			e.Kind = CacheHit
			e.Path = path
			c.Observer.Observe(e)
		},
		CacheWritten: func(path string) {
			e := ev
			e.Kind = CacheWritten
			e.Path = path
			c.Observer.Observe(e)
		},
	}
}
