package run

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"rix/internal/asm"
	"rix/internal/emu"
	"rix/internal/pipeline"
	"rix/internal/prog"
	"rix/internal/sample"
	"rix/internal/workload"
)

// Source supplies built workloads by name. workload.Builder is the
// standard implementation; the runner engine passes its own memoizing
// source so matrix cells share builds.
type Source interface {
	Get(ctx context.Context, name string) (workload.Built, error)
}

// DetailRunner executes one full-detail simulation — the seam the
// engine's tests use to substitute a stub machine. The default
// constructs a pipeline, attaches progress observation, and runs it
// under ctx.
type DetailRunner func(ctx context.Context, cfg pipeline.Config, p *prog.Program, src emu.TraceSource) (*pipeline.Stats, error)

// DefaultProgressInterval is the retired/fast-forwarded instruction
// cadence of Progress events when an Observer is attached.
const DefaultProgressInterval = 1 << 18

// config collects Do's options.
type config struct {
	obs           Observer
	hasObs        bool
	src           Source
	detail        DetailRunner
	progressEvery uint64
	sched         *sample.Scheduler
}

// Option customizes one Do call.
type Option func(*config)

// WithObserver streams the run's typed progress events to o.
func WithObserver(o Observer) Option {
	return func(c *config) {
		if o != nil {
			c.obs = o
			c.hasObs = true
		}
	}
}

// WithSource resolves workload names through s instead of the package
// registry.
func WithSource(s Source) Option {
	return func(c *config) {
		if s != nil {
			c.src = s
		}
	}
}

// WithProgressEvery sets the Progress event cadence in instructions
// (default DefaultProgressInterval; 0 keeps the default).
func WithProgressEvery(n uint64) Option {
	return func(c *config) {
		if n > 0 {
			c.progressEvery = n
		}
	}
}

// WithScheduler runs a sampled request's detail-window phase on the
// given shared work-stealing pool (see sample.Scheduler) instead of a
// per-run worker set: concurrent Do calls passing the same scheduler
// steal each other's idle slots, and each slot's pooled boot state is
// reused across every window it executes. The pool is a live resource,
// not part of the serializable Request — the request's Jobs field
// records the intended pool size, and the caller (e.g. the runner
// engine) owns the scheduler's lifecycle. Ignored for detail runs.
func WithScheduler(s *sample.Scheduler) Option {
	return func(c *config) {
		if s != nil {
			c.sched = s
		}
	}
}

// WithDetailRunner substitutes the full-detail execution path — a test
// seam; sampled modes are unaffected.
func WithDetailRunner(fn DetailRunner) Option {
	return func(c *config) {
		if fn != nil {
			c.detail = fn
		}
	}
}

// defaultSource memoizes registry builds across Do calls (programs and
// validation metadata only; golden traces stream).
var defaultSource = workload.NewBuilder()

// Do executes one request: validate eagerly, resolve the program, route
// by Mode, and return the Result. Cancelling ctx ends the run with
// ctx.Err() within a bounded amount of simulated work at every stage —
// workload build, detailed cycle loop, sampled fast-forward, window
// replay, and checkpoint re-execution.
func Do(ctx context.Context, req Request, opts ...Option) (*Result, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	c := config{obs: nopObserver{}, src: defaultSource, progressEvery: DefaultProgressInterval}
	for _, o := range opts {
		o(&c)
	}

	start := time.Now()
	bw, err := resolve(ctx, &c, &req)
	if err != nil {
		return nil, err
	}

	res := &Result{Workload: req.name(), Label: req.ResolvedLabel(), Mode: req.Mode(), DynLen: bw.DynLen}
	ev := Event{Workload: res.Workload, Label: res.Label, Mode: res.Mode}

	ev.Kind = CellStarted
	c.obs.Observe(ev)
	err = execute(ctx, &c, &req, bw, res, ev)
	ev.Kind = CellFinished
	if err != nil {
		ev.Err = err.Error()
		c.obs.Observe(ev)
		return nil, err
	}
	ev.Instrs = res.Stats.Retired
	c.obs.Observe(ev)
	res.Wall = time.Since(start)
	return res, nil
}

// resolve produces the program to simulate: a named workload through the
// source, or inline assembly.
func resolve(ctx context.Context, c *config, req *Request) (workload.Built, error) {
	if req.Workload != "" {
		return c.src.Get(ctx, req.Workload)
	}
	p, err := asm.Assemble(req.name(), req.Source)
	if err != nil {
		return workload.Built{}, fmt.Errorf("run: assemble %s: %w", req.name(), err)
	}
	return workload.BuiltFromProgram(p, req.MaxInstrs), nil
}

// execute routes the resolved run to its engine and fills in the
// result's statistics.
func execute(ctx context.Context, c *config, req *Request, bw workload.Built, res *Result, ev Event) error {
	cfg, err := req.Options.Config()
	if err != nil {
		return err
	}

	if req.Options.Sampling == nil {
		detail := c.detail
		if detail == nil {
			detail = func(ctx context.Context, cfg pipeline.Config, p *prog.Program, src emu.TraceSource) (*pipeline.Stats, error) {
				pl := pipeline.New(cfg, p, src)
				if c.hasObs {
					pev := ev
					pev.Kind = Progress
					pl.SetProgress(c.progressEvery, func(retired uint64) {
						pev.Instrs = retired
						c.obs.Observe(pev)
					})
				}
				return pl.RunContext(ctx)
			}
		}
		st, err := detail(ctx, cfg, bw.Prog, bw.Source())
		if err != nil {
			return err
		}
		res.Stats = *st
		return nil
	}

	sc := sample.Config{
		Sampling:      *req.Options.Sampling,
		CheckpointDir: req.CheckpointDir,
		Parallel:      req.Parallel,
		Windows:       req.Jobs,
		CacheDir:      req.CheckpointCache,
		CacheMaxBytes: int64(req.CacheMaxMB) << 20,
		CacheMaxAge:   time.Duration(req.CacheMaxAgeSec) * time.Second,
		Scheduler:     c.sched,
		MaxInstrs:     req.MaxInstrs,
	}
	if c.hasObs {
		sc.Hooks = sampleHooks(c, ev)
	}
	// Wave telemetry is part of the Result, observer or not: count
	// dispatches and discards on top of whatever event hooks are
	// installed. Both fire from the coordinating goroutine, but WindowDone
	// (and thus a future reader of these counters) may run concurrently in
	// Resume mode, so keep them atomic.
	var dispatched, discarded atomic.Uint64
	prevSched, prevDisc := sc.Hooks.WindowScheduled, sc.Hooks.WindowDiscarded
	sc.Hooks.WindowScheduled = func(index int) {
		dispatched.Add(1)
		if prevSched != nil {
			prevSched(index)
		}
	}
	sc.Hooks.WindowDiscarded = func(index int) {
		discarded.Add(1)
		if prevDisc != nil {
			prevDisc(index)
		}
	}
	var est *sample.Estimate
	if req.Resume {
		est, err = sample.Continue(ctx, bw.Prog, bw.DynLen, cfg, sc)
	} else {
		est, err = sample.Run(ctx, bw.Prog, bw.DynLen, cfg, sc)
	}
	if err != nil {
		return err
	}
	res.Stats = est.Agg
	res.Sampled = summarize(est, dispatched.Load(), discarded.Load())
	return nil
}

// sampleHooks adapts the sampling engine's callbacks to the typed event
// stream. Progress and CheckpointWritten fire from the sequential run
// goroutine; WindowDone may also fire concurrently from Resume/
// Continue's worker pool, so every hook builds its Event as a local
// value — nothing shared is mutated (window-rate events are far off the
// hot path, so the per-call value is free).
func sampleHooks(c *config, ev Event) sample.Hooks {
	var lastProgress uint64
	every := c.progressEvery
	return sample.Hooks{
		Progress: func(instrs uint64) {
			if instrs-lastProgress < every {
				return
			}
			lastProgress = instrs
			e := ev
			e.Kind = Progress
			e.Instrs = instrs
			c.obs.Observe(e)
		},
		WindowDone: func(w sample.WindowStat) {
			e := ev
			e.Kind = WindowDone
			e.Window = w.Index
			e.Instrs = w.Stats.Retired
			c.obs.Observe(e)
		},
		CheckpointWritten: func(path string, index int) {
			e := ev
			e.Kind = CheckpointWritten
			e.Window = index
			e.Path = path
			c.obs.Observe(e)
		},
		WindowScheduled: func(index int) {
			e := ev
			e.Kind = WindowScheduled
			e.Window = index
			c.obs.Observe(e)
		},
		WindowDiscarded: func(index int) {
			e := ev
			e.Kind = WindowDiscarded
			e.Window = index
			c.obs.Observe(e)
		},
		SlotStolen: func(slot int) {
			e := ev
			e.Kind = SlotStolen
			e.Slot = slot
			c.obs.Observe(e)
		},
		SlotReturned: func(index int) {
			e := ev
			e.Kind = SlotReturned
			e.Window = index
			c.obs.Observe(e)
		},
		CacheHit: func(path string) {
			e := ev
			e.Kind = CacheHit
			e.Path = path
			c.obs.Observe(e)
		},
		CacheWritten: func(path string) {
			e := ev
			e.Kind = CacheWritten
			e.Path = path
			c.obs.Observe(e)
		},
	}
}
