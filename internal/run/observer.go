package run

// EventKind discriminates the typed progress events a run emits.
//
// The enum is closed: the constants below are the complete set, new
// kinds are added only alongside a new entry in EventKinds, and a JSON
// consumer switching over them may treat an unknown string as a
// protocol error rather than a forward-compatibility case. Each kind's
// comment names the Event fields it populates.
type EventKind string

const (
	// CellStarted fires once per Do call, after validation and workload
	// resolution succeed.
	CellStarted EventKind = "cell-started"
	// Progress reports simulation progress: Instrs is the cumulative
	// retired (detail) or fast-forwarded (sampled) instruction count.
	Progress EventKind = "progress"
	// WindowDone fires after each sampled measurement window; Window is
	// its index and Instrs the instructions it measured.
	WindowDone EventKind = "window-done"
	// WindowScheduled fires when the two-phase sampled engine dispatches
	// a detail window to a worker (possibly speculatively; a window that
	// misspeculates on feedback is scheduled again). Window is its index.
	WindowScheduled EventKind = "window-scheduled"
	// WindowDiscarded fires when the two-phase engine cancels a
	// speculatively dispatched window because an earlier settle
	// invalidated its boot feedback; the window is scheduled again under
	// the corrected chain. Window is its index. Dispatch, settle, and
	// discard events follow a deterministic sequence for a given run.
	WindowDiscarded EventKind = "window-discarded"
	// WorkerJoined fires the first time a cross-process run (Request.
	// Executor == ExecProc) observes a given worker's lease — once per
	// worker ID for the run's lifetime. Worker is its ID. Emitted from
	// the coordinator's per-window collection goroutines; concurrent,
	// and ordering against other windows' events is not deterministic.
	WorkerJoined EventKind = "worker-joined"
	// LeaseClaimed fires when a cross-process run observes a worker's
	// exclusive claim on a dispatched window: Worker is the claimant
	// and Window the index. A window re-dispatched after a crashed
	// worker's lease goes stale fires again for the new claimant. Same
	// concurrency contract as WorkerJoined.
	LeaseClaimed EventKind = "lease-claimed"
	// ResultCollected fires when a cross-process run collects one
	// window's result file: Window is the index and Path the result
	// entry. Same concurrency contract as WorkerJoined.
	ResultCollected EventKind = "result-collected"
	// SlotStolen fires when a shared window-scheduler slot that last
	// served another cell picks up one of this run's windows — the
	// work-stealing handoff. Slot is the pool slot index. Emitted from
	// the pool's worker goroutines; the count depends on runtime
	// scheduling and is not deterministic.
	SlotStolen EventKind = "slot-stolen"
	// SlotReturned fires once per window settled after the run has
	// dispatched its last one — each such settle releases a scheduler
	// slot back to the shared pool. Window is the settled index.
	SlotReturned EventKind = "slot-returned"
	// WarmShardStarted fires when a sharded warm pass hands one trace
	// span to a warm worker: Shard is the span's ordinal, SpanStart the
	// dynamic instruction count the worker resumes from (its nearest
	// preceding stride snapshot, 0 for a fresh boot), and SpanEnd the
	// last window boundary inside the span. Emitted from the warm
	// workers' goroutines: the set of events is deterministic, their
	// order is not.
	WarmShardStarted EventKind = "warm-shard-started"
	// WarmShardDone fires when that worker has snapshotted every window
	// boundary in its span; same fields and concurrency contract as
	// WarmShardStarted.
	WarmShardDone EventKind = "warm-shard-done"
	// CacheHit fires when a sampled run finds its warm set — or the
	// stride snapshots backing a sharded warm pass — in the checkpoint
	// cache; Path names the entry (.warmset or .stride).
	CacheHit EventKind = "cache-hit"
	// CacheWritten fires after a sampled run persists its warm set into
	// the checkpoint cache; Path names the entry.
	CacheWritten EventKind = "cache-written"
	// CheckpointWritten fires after a sampled-run checkpoint lands on
	// disk; Path names the file and Window the index.
	CheckpointWritten EventKind = "checkpoint-written"
	// CellFinished fires once per Do call that got as far as
	// CellStarted, success or failure (Err carries the failure text).
	CellFinished EventKind = "cell-finished"
)

// EventKinds returns every EventKind, in the order a typical run emits
// them. The slice is freshly allocated; callers may keep or mutate it.
// Exhaustiveness tests (and JSON consumers building dispatch tables)
// should range over this rather than hand-copying the constants.
func EventKinds() []EventKind {
	return []EventKind{
		CellStarted, Progress,
		WarmShardStarted, WarmShardDone,
		CacheHit, CacheWritten,
		WindowScheduled, WorkerJoined, LeaseClaimed, ResultCollected,
		WindowDone, WindowDiscarded,
		SlotStolen, SlotReturned,
		CheckpointWritten, CellFinished,
	}
}

// Event is one typed progress notification. Events are values — they
// serialize to JSON, so an Observer can forward them over a wire as
// easily as render them.
type Event struct {
	Kind     EventKind `json:"kind"`
	Workload string    `json:"workload"`
	Label    string    `json:"label"`
	Mode     Mode      `json:"mode"`

	Instrs    uint64 `json:"instrs,omitempty"`     // Progress, WindowDone
	Window    int    `json:"window,omitempty"`     // WindowDone, WindowScheduled, WindowDiscarded, SlotReturned, CheckpointWritten, LeaseClaimed, ResultCollected
	Slot      int    `json:"slot,omitempty"`       // SlotStolen
	Shard     int    `json:"shard,omitempty"`      // WarmShardStarted, WarmShardDone
	SpanStart uint64 `json:"span_start,omitempty"` // WarmShardStarted, WarmShardDone
	SpanEnd   uint64 `json:"span_end,omitempty"`   // WarmShardStarted, WarmShardDone
	Path      string `json:"path,omitempty"`       // CheckpointWritten, CacheHit, CacheWritten, ResultCollected
	Worker    string `json:"worker,omitempty"`     // WorkerJoined, LeaseClaimed
	Err       string `json:"err,omitempty"`        // CellFinished on failure
}

// Observer receives a run's typed progress events. Observe is called
// synchronously from the goroutines executing the run, so it must be
// fast and must not block. It must also be safe for concurrent use:
// a ModeResume run fires WindowDone from its bounded worker pool (one
// event per re-run window, in completion order), and an Observer
// shared across engine cells (see runner.Engine.Observer) sees every
// cell's events concurrently.
type Observer interface {
	Observe(Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// Observe calls f.
func (f ObserverFunc) Observe(e Event) { f(e) }

// MultiObserver fans events out to every observer in order.
func MultiObserver(obs ...Observer) Observer {
	return ObserverFunc(func(e Event) {
		for _, o := range obs {
			o.Observe(e)
		}
	})
}

// nopObserver is the default sink.
type nopObserver struct{}

func (nopObserver) Observe(Event) {}
