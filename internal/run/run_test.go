package run_test

import (
	"context"
	"encoding/json"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"rix/internal/pipeline"
	"rix/internal/run"
	"rix/internal/sample"
	"rix/internal/sample/procexec"
	"rix/internal/sim"
	"rix/internal/workload"
)

func buildBench(t testing.TB, name string) workload.Built {
	t.Helper()
	b, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("workload %q not registered", name)
	}
	bw, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return bw
}

// leakCheck snapshots the goroutine count and verifies (with retries,
// since runtime bookkeeping lags) that it returns to the baseline.
func leakCheck(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(3 * time.Second)
		for {
			if runtime.NumGoroutine() <= before {
				return
			}
			if time.Now().After(deadline) {
				t.Errorf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

func TestRequestValidation(t *testing.T) {
	sp := sample.DefaultSampling()
	cases := []struct {
		name string
		req  run.Request
		want string // error substring; "" = valid
	}{
		{"no program", run.Request{}, "exactly one"},
		{"both programs", run.Request{Workload: "gzip", Source: "x"}, "exactly one"},
		{"bad axis", run.Request{Workload: "gzip", Options: sim.Options{Integration: "warp"}}, "unknown integration"},
		{"bad sampling", run.Request{Workload: "gzip",
			Options: sim.Options{Sampling: &sample.Sampling{Interval: 10, Window: 20}}}, "exceeds interval"},
		{"resume without sampling", run.Request{Workload: "gzip", Resume: true, CheckpointDir: "/tmp/x"}, "needs Options.Sampling"},
		{"resume without dir", run.Request{Workload: "gzip", Resume: true,
			Options: sim.Options{Sampling: &sp}}, "needs CheckpointDir"},
		{"ckpt without sampling", run.Request{Workload: "gzip", CheckpointDir: "/tmp/x"}, "only meaningful for sampled"},
		{"unknown executor", run.Request{Workload: "gzip", Options: sim.Options{Sampling: &sp},
			Executor: "threads"}, "unknown Executor"},
		{"executor without sampling", run.Request{Workload: "gzip", Executor: run.ExecPool}, "only meaningful for sampled"},
		{"executor with resume", run.Request{Workload: "gzip", Resume: true, CheckpointDir: "/tmp/x",
			Options: sim.Options{Sampling: &sp}, Executor: run.ExecPool}, "Executor does not apply"},
		{"proc without worker dir", run.Request{Workload: "gzip", Options: sim.Options{Sampling: &sp},
			Executor: run.ExecProc}, "needs WorkerDir"},
		{"worker dir without proc", run.Request{Workload: "gzip", Options: sim.Options{Sampling: &sp},
			WorkerDir: "/tmp/x"}, `WorkerDir needs Executor "proc"`},
		{"valid detail", run.Request{Workload: "gzip", Options: sim.Options{Integration: sim.IntReverse}}, ""},
		{"valid sampled", run.Request{Workload: "gzip", Options: sim.Options{Sampling: &sp}}, ""},
		{"valid proc", run.Request{Workload: "gzip", Options: sim.Options{Sampling: &sp},
			Executor: run.ExecProc, WorkerDir: "/tmp/x"}, ""},
	}
	for _, c := range cases {
		err := c.req.Validate()
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

// TestRequestJSONRoundTrip: a request survives marshal/unmarshal with
// every field intact — the serializable-run contract.
func TestRequestJSONRoundTrip(t *testing.T) {
	sp := sample.Sampling{Interval: 20000, Window: 800, Warmup: 400}
	req := &run.Request{
		Workload: "crafty",
		Label:    "paper-full",
		Options: sim.Options{
			Integration: sim.IntReverse,
			Suppression: sim.SuppressOracle,
			Core:        sim.CoreIWRS,
			ITEntries:   512,
			ITAssoc:     -1,
			GenBits:     3,
			Sampling:    &sp,
		},
		CheckpointDir: "/tmp/ck",
		Parallel:      4,
		MaxInstrs:     1 << 22,
		Executor:      run.ExecProc,
		WorkerDir:     "/tmp/wd",
	}
	data, err := run.MarshalRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	back, err := run.UnmarshalRequest(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(req, back) {
		t.Errorf("request did not round-trip:\nsent: %+v\ngot:  %+v", req, back)
	}
	if back.Mode() != run.ModeSampled {
		t.Errorf("mode = %s, want sampled", back.Mode())
	}
	// UnmarshalRequest validates eagerly.
	if _, err := run.UnmarshalRequest([]byte(`{"workload":"x","options":{"integration":"warp"}}`)); err == nil {
		t.Error("UnmarshalRequest accepted an invalid request")
	}
	// A misspelled key must fail loudly, not silently change the run.
	if _, err := run.UnmarshalRequest([]byte(`{"workload":"x","checkpoint-dir":"/tmp/ck"}`)); err == nil {
		t.Error("UnmarshalRequest accepted an unknown field (typo'd key)")
	}
}

// TestDoDetailMatchesPipeline: the entry point reproduces a directly
// constructed pipeline's statistics exactly for a full-detail run, and
// the Result round-trips through JSON.
func TestDoDetailMatchesPipeline(t *testing.T) {
	defer leakCheck(t)()
	bw := buildBench(t, "gzip")
	o := sim.Options{Integration: sim.IntReverse}

	cfg, err := o.Config()
	if err != nil {
		t.Fatal(err)
	}
	want, err := pipeline.New(cfg, bw.Prog, bw.Source()).Run()
	if err != nil {
		t.Fatal(err)
	}
	res, err := run.Do(context.Background(), run.Request{Workload: "gzip", Options: o})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Stats, *want) {
		t.Errorf("run.Do stats differ from direct pipeline:\nDo:       %+v\npipeline: %+v", res.Stats, *want)
	}
	if res.Mode != run.ModeDetail || res.Workload != "gzip" || res.Label != o.Label() {
		t.Errorf("result identity: %+v", res)
	}
	if res.DynLen != bw.DynLen {
		t.Errorf("DynLen = %d, want %d", res.DynLen, bw.DynLen)
	}

	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back run.Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*res, back) {
		t.Errorf("result did not round-trip:\nsent: %+v\ngot:  %+v", *res, back)
	}
}

// TestDoSampledMatchesEngine: ModeSampled routes through the sampling
// engine and reports the same aggregate the engine does, with the
// window summaries attached; the Result round-trips through JSON.
func TestDoSampledMatchesEngine(t *testing.T) {
	defer leakCheck(t)()
	bw := buildBench(t, "gzip")
	sp := sample.DefaultSampling()
	o := sim.Options{Integration: sim.IntReverse, Sampling: &sp}

	cfg, err := o.Config()
	if err != nil {
		t.Fatal(err)
	}
	est, err := sample.Run(context.Background(), bw.Prog, bw.DynLen, cfg, sample.Config{Sampling: sp})
	if err != nil {
		t.Fatal(err)
	}
	want := est.StatsEstimate()
	res, err := run.Do(context.Background(), run.Request{Workload: "gzip", Options: o})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Stats, *want) {
		t.Errorf("sampled aggregate differs:\nDo:   %+v\nshim: %+v", res.Stats, *want)
	}
	if res.Mode != run.ModeSampled || res.Sampled == nil || len(res.Sampled.Windows) == 0 {
		t.Fatalf("sampled result shape: %+v", res)
	}

	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back run.Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*res, back) {
		t.Errorf("sampled result did not round-trip")
	}
}

// eventLog is a concurrency-safe observer recording event kinds.
type eventLog struct {
	mu     sync.Mutex
	events []run.Event
}

func (l *eventLog) Observe(e run.Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, e)
}

func (l *eventLog) kinds() map[run.EventKind]int {
	l.mu.Lock()
	defer l.mu.Unlock()
	m := map[run.EventKind]int{}
	for _, e := range l.events {
		m[e.Kind]++
	}
	return m
}

// TestObserverEventStream: a sampled checkpointing run emits the full
// typed event vocabulary in a sane shape.
func TestObserverEventStream(t *testing.T) {
	defer leakCheck(t)()
	sp := sample.DefaultSampling()
	o := sim.Options{Integration: sim.IntReverse, Sampling: &sp}
	log := &eventLog{}
	res, err := run.Do(context.Background(),
		run.Request{Workload: "gzip", Options: o, CheckpointDir: t.TempDir()},
		run.WithObserver(log), run.WithProgressEvery(4096))
	if err != nil {
		t.Fatal(err)
	}
	k := log.kinds()
	if k[run.CellStarted] != 1 || k[run.CellFinished] != 1 {
		t.Errorf("cell lifecycle events: %v", k)
	}
	if k[run.Progress] == 0 {
		t.Errorf("no progress events (cadence 4096): %v", k)
	}
	if got, want := k[run.WindowDone], len(res.Sampled.Windows); got != want {
		t.Errorf("%d window-done events for %d windows", got, want)
	}
	if k[run.CheckpointWritten] == 0 {
		t.Errorf("no checkpoint events despite CheckpointDir: %v", k)
	}
	log.mu.Lock()
	first, last := log.events[0], log.events[len(log.events)-1]
	log.mu.Unlock()
	if first.Kind != run.CellStarted || last.Kind != run.CellFinished {
		t.Errorf("event order: first %s, last %s", first.Kind, last.Kind)
	}
	if first.Workload != "gzip" || first.Label != o.Label() || first.Mode != run.ModeSampled {
		t.Errorf("event identity: %+v", first)
	}
}

// TestDoCrossProcess: an ExecProc request reproduces the plain sampled
// run's statistics exactly while executing its windows on worker loops
// over the shared directory, and the observer sees the cross-process
// event vocabulary (worker-joined, lease-claimed, result-collected).
func TestDoCrossProcess(t *testing.T) {
	defer leakCheck(t)()
	sp := sample.DefaultSampling()
	o := sim.Options{Integration: sim.IntReverse, Sampling: &sp}

	want, err := run.Do(context.Background(), run.Request{Workload: "gzip", Options: o})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	wctx, stop := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			procexec.Work(wctx, dir, procexec.WorkerConfig{Poll: 2 * time.Millisecond}) //nolint:errcheck
		}()
	}
	defer func() { stop(); wg.Wait() }()

	log := &eventLog{}
	res, err := run.Do(context.Background(),
		run.Request{Workload: "gzip", Options: o, Executor: run.ExecProc, WorkerDir: dir},
		run.WithObserver(log))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Stats, want.Stats) {
		t.Errorf("cross-process aggregate differs from in-process:\nproc: %+v\npool: %+v", res.Stats, want.Stats)
	}
	if !reflect.DeepEqual(res.Sampled.Windows, want.Sampled.Windows) {
		t.Error("cross-process window summaries differ from in-process")
	}
	k := log.kinds()
	if k[run.WorkerJoined] == 0 || k[run.LeaseClaimed] == 0 || k[run.ResultCollected] == 0 {
		t.Errorf("missing cross-process events: %v", k)
	}
	if got, want := k[run.ResultCollected], len(res.Sampled.Windows); got != want {
		t.Errorf("%d result-collected events for %d settled windows", got, want)
	}
}

// TestDetailCancellation: cancelling a detailed run mid-flight returns
// ctx.Err() promptly and leaks no goroutines; a pre-cancelled context
// never starts simulating.
func TestDetailCancellation(t *testing.T) {
	defer leakCheck(t)()
	o := sim.Options{Integration: sim.IntReverse}

	pre, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := run.Do(pre, run.Request{Workload: "crafty", Options: o}); err != context.Canceled {
		t.Fatalf("pre-cancelled Do returned %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("pre-cancelled Do took %v", d)
	}

	// Mid-run: cancel at the first progress event, i.e. from inside the
	// simulation itself — deterministic, no timing dependence.
	ctx, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	var once sync.Once
	obs := run.ObserverFunc(func(e run.Event) {
		if e.Kind == run.Progress {
			once.Do(cancel2)
		}
	})
	_, err := run.Do(ctx, run.Request{Workload: "crafty", Options: o},
		run.WithObserver(obs), run.WithProgressEvery(2048))
	if err != context.Canceled {
		t.Fatalf("mid-run cancelled Do returned %v, want context.Canceled", err)
	}
}

// TestSampledCancellationAndResume: cancelling a sampled checkpointing
// run mid-flight leaves a resumable directory; a ModeResume request
// finishes it and reproduces the uninterrupted run's stats bit-for-bit
// (the engine-level equivalent is TestContinueCancelledRunBitEqual in
// internal/sample).
func TestSampledCancellationAndResume(t *testing.T) {
	defer leakCheck(t)()
	sp := sample.DefaultSampling()
	o := sim.Options{Integration: sim.IntReverse, Sampling: &sp}

	uninterrupted, err := run.Do(context.Background(), run.Request{Workload: "gzip", Options: o})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	obs := run.ObserverFunc(func(e run.Event) {
		if e.Kind == run.WindowDone && e.Window == 1 {
			cancel()
		}
	})
	_, err = run.Do(ctx, run.Request{Workload: "gzip", Options: o, CheckpointDir: dir},
		run.WithObserver(obs))
	if err != context.Canceled {
		t.Fatalf("cancelled sampled Do returned %v, want context.Canceled", err)
	}

	resumeLog := &eventLog{}
	resumed, err := run.Do(context.Background(),
		run.Request{Workload: "gzip", Options: o, CheckpointDir: dir, Resume: true, Parallel: 4},
		run.WithObserver(resumeLog))
	if err != nil {
		t.Fatal(err)
	}
	// The resume must report every measured window — the parallel prefix
	// re-run from disk as well as the sequential continuation.
	if got, want := resumeLog.kinds()[run.WindowDone], len(resumed.Sampled.Windows); got != want {
		t.Errorf("resume emitted %d window-done events for %d windows", got, want)
	}
	if !reflect.DeepEqual(resumed.Stats, uninterrupted.Stats) {
		t.Errorf("resumed aggregate differs from uninterrupted:\nresumed:       %+v\nuninterrupted: %+v",
			resumed.Stats, uninterrupted.Stats)
	}
	if !reflect.DeepEqual(resumed.Sampled, uninterrupted.Sampled) {
		t.Errorf("resumed window summaries differ from uninterrupted")
	}
	if resumed.Mode != run.ModeResume {
		t.Errorf("mode = %s, want resume", resumed.Mode)
	}
}

// TestInlineSource: an inline-assembly request assembles and runs.
func TestInlineSource(t *testing.T) {
	defer leakCheck(t)()
	const src = `
        .text
main:   addqi t0, zero, 5
loop:   addqi t0, t0, -1
        bne   t0, loop
        clr   v0
        syscall
`
	res, err := run.Do(context.Background(),
		run.Request{Source: src, SourceName: "tiny.s", Options: sim.Options{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Retired == 0 {
		t.Error("inline program retired nothing")
	}
	if res.Workload != "tiny.s" {
		t.Errorf("workload name = %q", res.Workload)
	}
}
