// Package run is the unified entry point for every simulation in the
// tree: a run is described as a JSON-serializable Request, validated
// eagerly, executed by Do under a context.Context, observed live
// through a typed event stream (Observer), and summarized in a Result
// that round-trips through JSON.
//
// Do routes automatically by the request's Mode():
//
//   - ModeDetail — full-detail pipeline simulation (pipeline.RunContext)
//   - ModeSampled — checkpointed interval sampling (sample.Run)
//   - ModeResume — finish or re-measure a checkpointed sampled run
//     (sample.Continue)
//
// Cancellation reaches every layer: the pipeline's cycle loop, the
// emulator's fast-forward and stream loops, and the sampling engine's
// window iteration all poll the context at batched intervals, so a
// cancelled run returns ctx.Err() within a bounded amount of simulated
// work while the hot loops stay allocation-free. A cancelled sampled
// run that was writing checkpoints flushes one final checkpoint, so a
// later ModeResume request reproduces the uninterrupted run's stats
// bit-for-bit.
//
// The runner engine (internal/runner) executes its experiment matrices
// through Do, and the simulation CLIs (rixsim, rixbench, rixtrace)
// build on the same stack, so one cancellation and observation story
// covers ad-hoc runs, experiment suites, and the command line.
package run

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"rix/internal/pipeline"
	"rix/internal/sample"
	"rix/internal/sim"
)

// Mode names the execution path a Request routes to.
type Mode string

const (
	ModeDetail  Mode = "detail"  // full-detail pipeline simulation
	ModeSampled Mode = "sampled" // checkpointed interval sampling
	ModeResume  Mode = "resume"  // finish/re-measure a checkpointed sampled run
)

// Request describes one simulation as data. It is the serializable unit
// of work: a request marshals to JSON, travels (to a config file, a job
// queue, a remote daemon), unmarshals, and executes identically —
// Validate and Do never depend on anything outside the value.
//
// Exactly one of Workload (a registered or engine-supplied workload
// name) and Source (inline rix assembly) selects the program.
type Request struct {
	// Workload names a workload resolved through the run's Source
	// (default: the package registry, memoized).
	Workload string `json:"workload,omitempty"`

	// Source is inline rix assembly, assembled under SourceName (default
	// "inline.s"). Inline programs have no validated dynamic length, so
	// sampled estimates scale by the observed count.
	Source     string `json:"source,omitempty"`
	SourceName string `json:"source_name,omitempty"`

	// Label keys the run's results (default Options.Label()).
	Label string `json:"label,omitempty"`

	// Options is the machine configuration, including the sampling
	// switch that selects ModeSampled.
	Options sim.Options `json:"options"`

	// CheckpointDir persists (ModeSampled) or supplies (ModeResume) the
	// sampled run's per-window checkpoints.
	CheckpointDir string `json:"checkpoint_dir,omitempty"`

	// Resume selects ModeResume: finish or re-measure the checkpointed
	// run in CheckpointDir. Requires Options.Sampling and CheckpointDir.
	Resume bool `json:"resume,omitempty"`

	// Parallel bounds the worker pool re-running checkpointed windows in
	// ModeResume (default 1).
	Parallel int `json:"parallel,omitempty"`

	// Jobs bounds window-level parallelism for ModeSampled: >1 selects
	// the two-phase engine (one warm pass, then up to Jobs detail windows
	// in flight on a worker pool), 1 forces the sequential engine, 0
	// leaves the choice to the caller's default (sequential unless a
	// checkpoint cache or warm set makes the two-phase path worthwhile).
	// When the caller supplies a shared pool (WithScheduler), the pool's
	// slot count governs instead and Jobs records the intended size for
	// request-serialization fidelity. The estimate is bit-identical in
	// every case.
	Jobs int `json:"jobs,omitempty"`

	// WarmJobs bounds warm-pass shard workers for ModeSampled: >1 shards
	// the warm pass across disjoint trace spans when stride snapshots
	// are available (from CheckpointCache's layout-independent .stride
	// entry); the boundary snapshots are bit-identical to the sequential
	// pass's. 0 or 1 keeps the warm pass sequential — still recording a
	// stride set into CheckpointCache for later sharded builds.
	WarmJobs int `json:"warm_jobs,omitempty"`

	// WarmStride is the spacing, in dynamic instructions, of the
	// emulator snapshots recorded for warm-pass sharding (0 selects the
	// sampling interval). An existing cache entry's recorded stride wins
	// over this value.
	WarmStride uint64 `json:"warm_stride,omitempty"`

	// CheckpointCache is a directory for the content-addressed warm-set
	// cache: a sampled run probes it before fast-forwarding and skips the
	// warm pass on a hit. Safe to share across runs and processes; any
	// configuration change is a clean miss.
	CheckpointCache string `json:"checkpoint_cache,omitempty"`

	// CacheMaxMB bounds the warm-set cache directory's total size in
	// MiB: after each save, least-recently-used entries are evicted
	// until the directory fits (0 = unbounded). Requires
	// CheckpointCache.
	CacheMaxMB int `json:"cache_max_mb,omitempty"`

	// CacheMaxAgeSec evicts warm-set cache entries not written or hit
	// within this many seconds, during the same post-save sweep (0 = no
	// age bound). Requires CheckpointCache.
	CacheMaxAgeSec int `json:"cache_max_age_sec,omitempty"`

	// MaxInstrs bounds functional execution of inline sources and
	// sampled fast-forward (default workload.MaxInstrs /
	// sample.DefaultMaxInstrs).
	MaxInstrs uint64 `json:"max_instrs,omitempty"`

	// Executor names how a sampled run's detail windows execute:
	// ExecPool (or empty) keeps them on the in-process work-stealing
	// pool, ExecProc dispatches them as job manifests under WorkerDir
	// for `rixsim -worker` processes to claim (see
	// internal/sample/procexec). The estimate is bit-identical either
	// way. Does not apply to resume runs, which re-execute checkpoints
	// locally.
	Executor string `json:"executor,omitempty"`

	// WorkerDir is the cache directory shared with the worker
	// processes serving an ExecProc run — manifests, leases, and
	// results travel through its windows/ subdirectory. Requires
	// Executor == ExecProc.
	WorkerDir string `json:"worker_dir,omitempty"`
}

// Executor names for Request.Executor.
const (
	// ExecPool is the in-process work-stealing pool — the explicit
	// spelling of the default.
	ExecPool = "pool"
	// ExecProc is the cross-process executor: windows run on
	// `rixsim -worker` processes sharing WorkerDir.
	ExecProc = "proc"
)

// Mode reports the execution path the request routes to.
func (r *Request) Mode() Mode {
	switch {
	case r.Resume:
		return ModeResume
	case r.Options.Sampling != nil:
		return ModeSampled
	default:
		return ModeDetail
	}
}

// ResolvedLabel is the result key: Label, or the canonical option label.
func (r *Request) ResolvedLabel() string {
	if r.Label != "" {
		return r.Label
	}
	return r.Options.Label()
}

// name is the workload name results and events carry.
func (r *Request) name() string {
	if r.Workload != "" {
		return r.Workload
	}
	if r.SourceName != "" {
		return r.SourceName
	}
	return "inline.s"
}

// Validate rejects malformed requests eagerly — before any workload is
// built or simulation started — so a registry of requests (like the
// experiment spec registry) catches bad axes at registration time.
func (r *Request) Validate() error {
	if (r.Workload == "") == (r.Source == "") {
		return fmt.Errorf("run: request needs exactly one of workload and source (got workload=%q, %d source bytes)",
			r.Workload, len(r.Source))
	}
	if _, err := r.Options.Config(); err != nil {
		return fmt.Errorf("run: %w", err)
	}
	if r.Resume {
		if r.Options.Sampling == nil {
			return fmt.Errorf("run: resume request needs Options.Sampling (the layout the checkpoints were written under)")
		}
		if r.CheckpointDir == "" {
			return fmt.Errorf("run: resume request needs CheckpointDir")
		}
	}
	if r.CheckpointDir != "" && r.Options.Sampling == nil {
		return fmt.Errorf("run: CheckpointDir is only meaningful for sampled runs (set Options.Sampling)")
	}
	if r.Jobs < 0 {
		return fmt.Errorf("run: Jobs must be >= 0, got %d", r.Jobs)
	}
	if r.Jobs > 1 && r.Options.Sampling == nil {
		return fmt.Errorf("run: Jobs is only meaningful for sampled runs (set Options.Sampling)")
	}
	if r.WarmJobs < 0 {
		return fmt.Errorf("run: WarmJobs must be >= 0, got %d", r.WarmJobs)
	}
	if (r.WarmJobs > 1 || r.WarmStride > 0) && r.Options.Sampling == nil {
		return fmt.Errorf("run: warm-shard knobs are only meaningful for sampled runs (set Options.Sampling)")
	}
	if r.CheckpointCache != "" && r.Options.Sampling == nil {
		return fmt.Errorf("run: CheckpointCache is only meaningful for sampled runs (set Options.Sampling)")
	}
	if r.CacheMaxMB < 0 || r.CacheMaxAgeSec < 0 {
		return fmt.Errorf("run: cache bounds must be >= 0 (got CacheMaxMB=%d, CacheMaxAgeSec=%d)",
			r.CacheMaxMB, r.CacheMaxAgeSec)
	}
	if (r.CacheMaxMB > 0 || r.CacheMaxAgeSec > 0) && r.CheckpointCache == "" {
		return fmt.Errorf("run: cache bounds need CheckpointCache")
	}
	switch r.Executor {
	case "", ExecPool, ExecProc:
	default:
		return fmt.Errorf("run: unknown Executor %q (want %q or %q)", r.Executor, ExecPool, ExecProc)
	}
	if r.Executor != "" && r.Options.Sampling == nil {
		return fmt.Errorf("run: Executor is only meaningful for sampled runs (set Options.Sampling)")
	}
	if r.Executor != "" && r.Resume {
		return fmt.Errorf("run: resume re-executes checkpoints on a local worker pool; Executor does not apply")
	}
	if r.Executor == ExecProc && r.WorkerDir == "" {
		return fmt.Errorf("run: Executor %q needs WorkerDir (the cache directory shared with the workers)", ExecProc)
	}
	if r.WorkerDir != "" && r.Executor != ExecProc {
		return fmt.Errorf("run: WorkerDir needs Executor %q", ExecProc)
	}
	return nil
}

// Window is one sampled measurement window's summary in a Result.
type Window struct {
	Index        int     `json:"index"`
	Start        uint64  `json:"start"`
	MeasuredFrom uint64  `json:"measured_from"`
	Retired      uint64  `json:"retired"`
	Cycles       uint64  `json:"cycles"`
	IPC          float64 `json:"ipc"`
	Rate         float64 `json:"rate"`
}

// Sampled is the sampling-specific half of a Result: per-window
// estimates plus the aggregate coverage and confidence numbers of the
// sample.Estimate it summarizes.
type Sampled struct {
	Sampling        sample.Sampling `json:"sampling"`
	TotalInstrs     uint64          `json:"total_instrs"`
	SampledInstrs   uint64          `json:"sampled_instrs"`
	DetailedInstrs  uint64          `json:"detailed_instrs"`
	EstimatedCycles uint64          `json:"estimated_cycles"`
	IPC             float64         `json:"ipc"`       // sample-weighted IPC estimate
	Rate            float64         `json:"rate"`      // sample-weighted integration-rate estimate
	IPCCI95         float64         `json:"ipc_ci95"`  // relative half-width on IPC
	RateCI95        float64         `json:"rate_ci95"` // absolute half-width on integration rate

	// Speculative-wave telemetry. The two-phase engine dispatches detail
	// windows speculatively on guessed feedback: WindowsDispatched counts
	// dispatches (re-dispatches after a misspeculation count again),
	// WindowsSettled the windows whose results were adopted, and
	// WindowsDiscarded the dispatches cancelled by a feedback
	// misspeculation — so Dispatched = Settled + Discarded + (in-flight
	// at an error). A feedback-volatile workload that degrades toward
	// sequential execution shows up here as Discarded approaching
	// Settled, rather than as unexplained slowness. The sequential
	// engine reports Dispatched = Settled, Discarded = 0. These counts
	// are deterministic for a given run (unlike SlotStolen events).
	WindowsDispatched uint64 `json:"windows_dispatched"`
	WindowsSettled    uint64 `json:"windows_settled"`
	WindowsDiscarded  uint64 `json:"windows_discarded"`

	Windows []Window `json:"windows"`
}

// DetailFraction is the fraction of the run simulated in detail.
func (s *Sampled) DetailFraction() float64 {
	if s.TotalInstrs == 0 {
		return 0
	}
	return float64(s.DetailedInstrs) / float64(s.TotalInstrs)
}

// summarize flattens a sample.Estimate into the serializable Sampled
// form. dispatched/discarded are the run's wave-telemetry tallies; a
// sequential run (which never dispatches speculatively) passes 0 and is
// normalized to Dispatched = Settled.
func summarize(est *sample.Estimate, dispatched, discarded uint64) *Sampled {
	settled := uint64(len(est.Windows))
	if dispatched == 0 {
		dispatched = settled
	}
	s := &Sampled{
		WindowsDispatched: dispatched,
		WindowsSettled:    settled,
		WindowsDiscarded:  discarded,
		Sampling:          est.Sampling,
		TotalInstrs:       est.TotalInstrs,
		SampledInstrs:     est.SampledInstrs,
		DetailedInstrs:    est.DetailedInstrs,
		EstimatedCycles:   est.EstimatedCycles(),
		IPC:               est.IPC(),
		Rate:              est.IntegrationRate(),
		IPCCI95:           est.IPCCI95,
		RateCI95:          est.RateCI95,
		Windows:           make([]Window, len(est.Windows)),
	}
	for i, w := range est.Windows {
		s.Windows[i] = Window{
			Index:        w.Index,
			Start:        w.Start,
			MeasuredFrom: w.MeasuredFrom,
			Retired:      w.Stats.Retired,
			Cycles:       w.Stats.Cycles,
			IPC:          w.Stats.IPC(),
			Rate:         w.Stats.IntegrationRate(),
		}
	}
	return s
}

// String renders the one-look sampled summary block (the same
// sample.Summary formatting Estimate.String uses).
func (s *Sampled) String() string {
	return sample.Summary(s.SampledInstrs, s.TotalInstrs, s.DetailFraction(), len(s.Windows), s.Sampling,
		s.IPC, s.IPCCI95, s.Rate, s.RateCI95, s.EstimatedCycles)
}

// Result is a completed run: identification, the measured statistics,
// sampling detail when the run sampled, and wall-clock timing. It
// round-trips through JSON (Wall serializes as nanoseconds).
type Result struct {
	Workload string `json:"workload"`
	Label    string `json:"label"`
	Mode     Mode   `json:"mode"`

	// Stats are the run's statistics. For sampled runs they aggregate
	// the measured windows: ratio metrics (IPC, rates, per-million
	// counts) estimate the full run, absolute counters cover the
	// windows.
	Stats pipeline.Stats `json:"stats"`

	// Sampled carries the window-level estimates for sampled/resumed
	// runs; nil for detail runs.
	Sampled *Sampled `json:"sampled,omitempty"`

	// DynLen is the workload's validated dynamic instruction count, or 0
	// when unknown (inline sources).
	DynLen int `json:"dyn_len,omitempty"`

	// Wall is the run's wall-clock duration (request resolution through
	// simulation end).
	Wall time.Duration `json:"wall_ns"`
}

// MarshalRequest / UnmarshalRequest are convenience round-trip helpers
// for tooling that stores requests as files or wire messages.
func MarshalRequest(r *Request) ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// UnmarshalRequest parses and eagerly validates a serialized request.
// Unknown fields are rejected: a misspelled key in a request file must
// fail loudly here, not silently reinterpret the run (e.g. a typo'd
// "checkpoint_dir" would otherwise just drop checkpointing).
func UnmarshalRequest(data []byte) (*Request, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var r Request
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("run: parse request: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}
