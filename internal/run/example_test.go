package run_test

import (
	"context"
	"fmt"
	"log"

	"rix/internal/run"
	"rix/internal/sample"
	"rix/internal/sim"
)

// ExampleDo_observer runs one full-detail simulation with a live
// observer: run.Do executes the request and the ObserverFunc receives
// typed lifecycle events as the cell progresses. The example keys its
// output off event structure rather than raw counts so it documents
// the contract, not one workload build's numbers.
func ExampleDo_observer() {
	req := run.Request{
		Workload: "gzip",
		Options:  sim.Options{Integration: sim.IntReverse},
	}
	obs := run.ObserverFunc(func(e run.Event) {
		switch e.Kind {
		case run.CellStarted:
			fmt.Printf("%s [%s] started in %s mode\n", e.Workload, e.Label, e.Mode)
		case run.CellFinished:
			fmt.Printf("%s [%s] finished, retired instructions reported: %v\n",
				e.Workload, e.Label, e.Instrs > 0)
		}
	})
	res, err := run.Do(context.Background(), req, run.WithObserver(obs))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IPC above zero: %v\n", res.Stats.IPC() > 0)
	// Output:
	// gzip [+reverse/lisp] started in detail mode
	// gzip [+reverse/lisp] finished, retired instructions reported: true
	// IPC above zero: true
}

// ExampleDo_schedulerTelemetry shares one work-stealing scheduler with
// a sampled run (run.WithScheduler — the pool the runner engine passes
// to every cell of a matrix) and reads the run's speculation economy
// two ways: the deterministic counters on Result.Sampled, and the
// window-discarded / slot-returned observer events that mirror them.
// SlotStolen events are deliberately not counted here: they fire from
// pool worker goroutines (an observer counting them must synchronize)
// and their count depends on worker timing, unlike the counters below.
func ExampleDo_schedulerTelemetry() {
	sp := sample.DefaultSampling()
	req := run.Request{
		Workload: "gzip",
		Options:  sim.Options{Integration: sim.IntReverse, Sampling: &sp},
		Jobs:     4,
	}
	sched := sample.NewScheduler(4)
	defer sched.Close()

	var discarded, returned uint64
	obs := run.ObserverFunc(func(e run.Event) {
		switch e.Kind {
		case run.WindowDiscarded: // a misspeculated boot, thrown away
			discarded++
		case run.SlotReturned: // the run is draining; a slot rejoined the pool
			returned++
		}
	})
	res, err := run.Do(context.Background(), req, run.WithObserver(obs), run.WithScheduler(sched))
	if err != nil {
		log.Fatal(err)
	}
	s := res.Sampled
	fmt.Printf("every dispatch settled or discarded: %v\n",
		s.WindowsDispatched == s.WindowsSettled+s.WindowsDiscarded)
	fmt.Printf("settled count matches measured windows: %v\n",
		s.WindowsSettled == uint64(len(s.Windows)))
	fmt.Printf("observer saw every discard: %v\n", discarded == s.WindowsDiscarded)
	fmt.Printf("slots returned to the pool: %v\n", returned > 0)
	// Output:
	// every dispatch settled or discarded: true
	// settled count matches measured windows: true
	// observer saw every discard: true
	// slots returned to the pool: true
}
