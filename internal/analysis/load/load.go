// Package load parses and type-checks the packages rixvet analyzes.
// It is the offline, dependency-free stand-in for go/packages: module
// packages are resolved by path arithmetic against go.mod (module path
// prefix → directory under the module root), standard-library imports
// are type-checked from GOROOT source via go/importer's source
// importer, and test files are excluded — rixvet checks shipped code.
//
// Two layouts are supported, selected by ModulePath:
//
//   - module mode (ModulePath "rix"): import "rix/internal/x" resolves
//     to <Dir>/internal/x. This is how cmd/rixvet loads the repository.
//   - plain-root mode (ModulePath ""): import "a" resolves to <Dir>/a
//     when that directory exists, else to the standard library. This is
//     the analysistest fixture layout (testdata/src/a/...).
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath   string
	Dir       string
	GoFiles   []string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Loader resolves, parses, and type-checks packages. One Loader owns
// one FileSet; load every package you intend to cross-reference through
// the same Loader.
type Loader struct {
	Dir        string // module root (or fixture src root)
	ModulePath string // module path from go.mod; "" = plain-root mode

	fset  *token.FileSet
	std   types.Importer
	cache map[string]*Package
}

// New returns a Loader rooted at dir. modulePath may be "" for
// plain-root (fixture) layouts.
func New(dir, modulePath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Dir:        dir,
		ModulePath: modulePath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		cache:      map[string]*Package{},
	}
}

// ModuleRoot walks up from dir to the nearest directory containing
// go.mod and returns it with the declared module path. It is how the
// driver finds what to load from an arbitrary working directory.
func ModuleRoot(dir string) (root, modulePath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("load: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("load: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Fset returns the loader's shared FileSet.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load resolves patterns to import paths and returns the loaded
// packages in deterministic (sorted) order. Supported patterns: "./..."
// (every package under the root), "./relative/dir", and explicit import
// paths.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	paths, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.loadPackage(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// expand turns CLI patterns into a sorted import-path list.
func (l *Loader) expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			paths, err := l.walkAll()
			if err != nil {
				return nil, err
			}
			for _, p := range paths {
				add(p)
			}
		case strings.HasPrefix(pat, "./"):
			rel := filepath.Clean(strings.TrimPrefix(pat, "./"))
			if rel == "." {
				add(l.ModulePath)
			} else {
				add(l.importPathFor(rel))
			}
		default:
			add(pat)
		}
	}
	sort.Strings(out)
	return out, nil
}

func (l *Loader) importPathFor(rel string) string {
	if l.ModulePath == "" {
		return filepath.ToSlash(rel)
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

// walkAll finds every directory under the root containing non-test Go
// files, skipping testdata, hidden directories, and examples of other
// modules (nested go.mod).
func (l *Loader) walkAll() ([]string, error) {
	var out []string
	err := filepath.WalkDir(l.Dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.Dir {
			if name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir // nested module
			}
		}
		if !l.hasGoFiles(path) {
			return nil
		}
		rel, err := filepath.Rel(l.Dir, path)
		if err != nil {
			return err
		}
		if rel == "." {
			if l.ModulePath != "" {
				out = append(out, l.ModulePath)
			}
			return nil
		}
		out = append(out, l.importPathFor(rel))
		return nil
	})
	return out, err
}

func (l *Loader) hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") {
			return true
		}
	}
	return false
}

// dirFor maps an import path to a local directory, or "" when the path
// is not local (standard library).
func (l *Loader) dirFor(path string) string {
	if l.ModulePath != "" {
		if path == l.ModulePath {
			return l.Dir
		}
		if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
			return filepath.Join(l.Dir, filepath.FromSlash(rest))
		}
		return ""
	}
	dir := filepath.Join(l.Dir, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		return dir
	}
	return ""
}

// loadPackage parses and type-checks one local package (memoized).
func (l *Loader) loadPackage(path string) (*Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	dir := l.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("load: %s is not under %s", path, l.Dir)
	}
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("load: %s: %w", path, err)
	}
	pkg := &Package{PkgPath: path, Dir: dir, Fset: l.fset}
	for _, name := range bp.GoFiles {
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(l.fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.GoFiles = append(pkg.GoFiles, full)
		pkg.Syntax = append(pkg.Syntax, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(path, l.fset, pkg.Syntax, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %w", path, err)
	}
	pkg.Types = tpkg
	pkg.TypesInfo = info
	l.cache[path] = pkg
	return pkg, nil
}

// loaderImporter resolves imports during type checking: local packages
// recurse through the loader, everything else goes to the stdlib source
// importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir := l.dirFor(path); dir != "" {
		pkg, err := l.loadPackage(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}
