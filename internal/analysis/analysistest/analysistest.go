// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against expectations written in the fixture
// source, mirroring golang.org/x/tools/go/analysis/analysistest.
//
// Fixture layout: <testdata>/src/<pkg>/... — plain-root packages whose
// import path is their directory name. An expectation is a trailing
// line comment of the form
//
//	x := leak() // want "regexp matching the diagnostic"
//
// Each line with a `// want` comment must receive at least one
// diagnostic matching the regexp, every diagnostic must land on a line
// that expects it, and a fixture with zero wants asserts the analyzer
// is silent there.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"sort"
	"strings"
	"testing"

	"rix/internal/analysis"
	"rix/internal/analysis/load"
)

// wantRe extracts the quoted pattern of a // want comment. Patterns are
// double-quoted Go-style strings without escapes — fixtures keep them
// simple.
var wantRe = regexp.MustCompile(`//\s*want\s+"((?:[^"\\]|\\.)*)"`)

// Run loads each fixture package from <testdata>/src/<pkg>, applies the
// analyzer, and reports mismatches through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	loader := load.New(testdata+"/src", "")
	loaded, err := loader.Load(pkgs...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	for _, pkg := range loaded {
		runPackage(t, a, loader, pkg)
	}
}

type finding struct {
	pos token.Position
	msg string
}

func runPackage(t *testing.T, a *analysis.Analyzer, loader *load.Loader, pkg *load.Package) {
	t.Helper()
	var got []finding
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Syntax,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Report: func(d analysis.Diagnostic) {
			got = append(got, finding{pos: pkg.Fset.Position(d.Pos), msg: d.Message})
		},
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: analyzer %s failed: %v", pkg.PkgPath, a.Name, err)
	}
	sort.Slice(got, func(i, j int) bool {
		if got[i].pos.Filename != got[j].pos.Filename {
			return got[i].pos.Filename < got[j].pos.Filename
		}
		return got[i].pos.Line < got[j].pos.Line
	})

	wants := collectWants(t, pkg)
	matched := make([]bool, len(got))
	for _, w := range wants {
		found := false
		for i, g := range got {
			if matched[i] || g.pos.Filename != w.file || g.pos.Line != w.line {
				continue
			}
			if w.re.MatchString(g.msg) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none",
				w.file, w.line, w.re)
		}
	}
	for i, g := range got {
		if !matched[i] {
			t.Errorf("%s:%d: unexpected diagnostic: %s", g.pos.Filename, g.pos.Line, g.msg)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// collectWants scans every fixture file for // want comments.
func collectWants(t *testing.T, pkg *load.Package) []want {
	t.Helper()
	var wants []want
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.Contains(c.Text, "want ") && strings.Contains(c.Text, "\"") {
						t.Fatalf("%s: malformed want comment: %s",
							pkg.Fset.Position(c.Pos()), c.Text)
					}
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				re, err := regexp.Compile(strings.ReplaceAll(m[1], `\"`, `"`))
				if err != nil {
					t.Fatalf("%s: bad want pattern %q: %v", pos, m[1], err)
				}
				wants = append(wants, want{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return wants
}

// RunAnalyzer applies a to one already-loaded package and returns the
// diagnostics as "file:line: message" strings — the hook the driver
// tests use.
func RunAnalyzer(a *analysis.Analyzer, pkg *load.Package) ([]string, error) {
	var out []string
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Syntax,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Report: func(d analysis.Diagnostic) {
			p := pkg.Fset.Position(d.Pos)
			out = append(out, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, d.Message))
		},
	}
	if _, err := a.Run(pass); err != nil {
		return nil, err
	}
	return out, nil
}
