// Package eventenum enforces exhaustive switches over the project's
// closed enums — named types whose defining package also declares a
// <Type>s() []<Type> enumerator, the convention run.EventKind
// established with EventKinds(). The enum being closed is a documented
// API promise ("a JSON consumer may treat an unknown string as a
// protocol error"), so every switch over it must either handle every
// declared constant or explicitly opt out: adding a warm-shard-style
// event kind then fails the build at each consumer that has not chosen.
//
// A switch that deliberately handles a subset (a filter that only cares
// about two kinds and discards the rest) opts out with //rix:partial on
// the switch line or the line above; a default case alone does NOT
// silence the check — defaults are how missed events rot unnoticed.
package eventenum

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"rix/internal/analysis"
)

// Marker opts a deliberately partial switch out of the check.
const Marker = "rix:partial"

// Analyzer is the eventenum check.
var Analyzer = &analysis.Analyzer{
	Name: "eventenum",
	Doc:  "require switches over closed enums (types with a <Type>s() enumerator) to cover every constant",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitch(pass, sw)
			return true
		})
	}
	return nil, nil
}

func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	tv, ok := pass.TypesInfo.Types[sw.Tag]
	if !ok {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return
	}
	consts := closedEnumConsts(named)
	if consts == nil {
		return
	}
	if pass.HasAnnotation(sw.Pos(), Marker) {
		return
	}
	covered := map[string]bool{}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if etv, ok := pass.TypesInfo.Types[e]; ok && etv.Value != nil {
				covered[etv.Value.ExactString()] = true
			}
		}
	}
	var missing []string
	for val, name := range consts {
		if !covered[val] {
			missing = append(missing, name)
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	pass.Reportf(sw.Pos(),
		"switch over closed enum %s is missing cases %s; handle them or mark the switch //rix:partial",
		named.Obj().Name(), strings.Join(missing, ", "))
}

// closedEnumConsts returns value→name for every constant of the named
// type declared in its defining package, or nil when the type is not a
// closed enum (no <Type>s() []<Type> enumerator).
func closedEnumConsts(named *types.Named) map[string]string {
	obj := named.Obj()
	pkg := obj.Pkg()
	if pkg == nil {
		return nil
	}
	enum, ok := pkg.Scope().Lookup(obj.Name() + "s").(*types.Func)
	if !ok {
		return nil
	}
	sig, ok := enum.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return nil
	}
	slice, ok := sig.Results().At(0).Type().Underlying().(*types.Slice)
	if !ok || !types.Identical(slice.Elem(), named) {
		return nil
	}
	consts := map[string]string{}
	for _, name := range pkg.Scope().Names() {
		c, ok := pkg.Scope().Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		val := c.Val().ExactString()
		if prev, ok := consts[val]; !ok || name < prev {
			consts[val] = name // aliases for one value count once
		}
	}
	if len(consts) == 0 {
		return nil
	}
	return consts
}
