// Package a declares one closed enum (Kind, with the Kinds enumerator)
// and one open type (Other, no enumerator) and switches over both.
package a

type Kind int

const (
	KA Kind = iota
	KB
	KC
)

// Kinds marks Kind as a closed enum.
func Kinds() []Kind { return []Kind{KA, KB, KC} }

func full(k Kind) int {
	switch k {
	case KA:
		return 1
	case KB, KC:
		return 2
	}
	return 0
}

func missing(k Kind) int {
	switch k { // want "missing cases KC"
	case KA, KB:
		return 1
	default: // a default does not excuse the missing case
		return 0
	}
}

func filtered(k Kind) bool {
	//rix:partial
	switch k {
	case KA:
		return true
	}
	return false
}

type Other int

const (
	OA Other = iota
	OB
)

// Other has no enumerator, so partial switches over it are fine.
func open(o Other) bool {
	switch o {
	case OA:
		return true
	}
	return false
}
