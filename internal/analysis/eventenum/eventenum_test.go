package eventenum_test

import (
	"testing"

	"rix/internal/analysis/analysistest"
	"rix/internal/analysis/eventenum"
)

func TestEventenum(t *testing.T) {
	analysistest.Run(t, "testdata", eventenum.Analyzer, "a")
}
