package gobversion_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rix/internal/analysis/analysistest"
	"rix/internal/analysis/gobversion"
	"rix/internal/analysis/load"
)

// withFixtureConfig points the analyzer at a temp golden and the
// fixture package's tracked names, restoring the real configuration
// afterwards.
func withFixtureConfig(t *testing.T) {
	t.Helper()
	oldPath, oldTracked, oldConsts, oldUpdate :=
		gobversion.GoldenPath, gobversion.Tracked, gobversion.TrackedConsts, gobversion.Update
	t.Cleanup(func() {
		gobversion.GoldenPath, gobversion.Tracked, gobversion.TrackedConsts, gobversion.Update =
			oldPath, oldTracked, oldConsts, oldUpdate
	})
	gobversion.GoldenPath = filepath.Join(t.TempDir(), "golden.json")
	gobversion.Tracked = map[string][]string{"a": {"Blob"}}
	gobversion.TrackedConsts = map[string][]string{"a": {"BlobFormat"}}
	gobversion.Update = false
}

func findings(t *testing.T, testdata string) []string {
	t.Helper()
	loader := load.New(testdata+"/src", "")
	pkgs, err := loader.Load("a")
	if err != nil {
		t.Fatalf("loading %s: %v", testdata, err)
	}
	out, err := analysistest.RunAnalyzer(gobversion.Analyzer, pkgs[0])
	if err != nil {
		t.Fatalf("analyzer failed: %v", err)
	}
	return out
}

func TestGobversionLifecycle(t *testing.T) {
	withFixtureConfig(t)

	// No golden yet: every tracked name reports a missing entry.
	got := findings(t, "testdata")
	if len(got) != 2 {
		t.Fatalf("expected 2 missing-entry findings, got %v", got)
	}
	for _, f := range got {
		if !strings.Contains(f, "no golden entry") {
			t.Errorf("expected missing-entry finding, got %q", f)
		}
	}

	// Update mode records the structure and reports nothing.
	gobversion.Update = true
	if got := findings(t, "testdata"); len(got) != 0 {
		t.Fatalf("update mode reported findings: %v", got)
	}
	gobversion.Update = false
	if _, err := os.Stat(gobversion.GoldenPath); err != nil {
		t.Fatalf("update mode did not write the golden: %v", err)
	}

	// Unchanged structure: clean.
	if got := findings(t, "testdata"); len(got) != 0 {
		t.Fatalf("clean compare reported findings: %v", got)
	}

	// Drifted structure without a const bump, then with one — the want
	// comments in the fixtures assert the message flavor.
	analysistest.Run(t, "testdata/drift", gobversion.Analyzer, "a")
	analysistest.Run(t, "testdata/bump", gobversion.Analyzer, "a")
}

func TestGobversionUntrackedPackageIsIgnored(t *testing.T) {
	withFixtureConfig(t)
	gobversion.Tracked = map[string][]string{}
	gobversion.TrackedConsts = map[string][]string{}
	if got := findings(t, "testdata"); len(got) != 0 {
		t.Fatalf("untracked package reported findings: %v", got)
	}
}
