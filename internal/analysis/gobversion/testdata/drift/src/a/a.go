// Package a drifts structurally from the baseline without bumping the
// format constant — the dangerous case gobversion exists to catch.
package a

// BlobFormat was NOT bumped despite the new field below.
const BlobFormat = 1

// Blob gained a field since the golden was recorded.
type Blob struct { // want "without a format-const bump"
	A uint64
	B []byte
	C string
}
