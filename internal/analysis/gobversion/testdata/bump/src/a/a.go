// Package a drifts structurally WITH a format bump: the remaining
// diagnostics just say the golden is stale.
package a // want "format const a.BlobFormat changed"

// BlobFormat was bumped alongside the structural change.
const BlobFormat = 2

// Blob gained a field, and the format const above was bumped.
type Blob struct { // want "refresh the golden"
	A uint64
	B []byte
	C string
}
