// Package a is the baseline structure the gobversion test pins.
package a

// BlobFormat is the format constant guarding Blob's gob layout.
const BlobFormat = 1

// Blob stands in for a gob-serialized artifact type.
type Blob struct {
	A uint64
	B []byte

	scratch int // unexported: invisible to gob, excluded from the hash
}
