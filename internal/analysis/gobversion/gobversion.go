// Package gobversion guards the on-disk compatibility of the gob
// artifacts doc/FORMATS.md specifies: checkpoints, warm caches, and
// stride caches. Gob is structurally tolerant — adding, removing, or
// retyping a field usually still *decodes*, silently producing zero
// values where data used to be. FORMATS.md therefore requires any
// structural change to a persisted type to bump the owning format
// constant so stale artifacts are rejected rather than misread.
//
// The analyzer hashes the exported-field structure (field name + fully
// qualified type, in declaration order) of every tracked type and
// compares it, along with the tracked format-constant values, against
// the committed golden file (golden.json next to this package). A
// mismatch is a diagnostic at the type's declaration:
//
//   - structure changed, format consts unchanged → the dangerous case:
//     bump the format const, then refresh the golden;
//   - structure or const changed and the golden is stale → refresh
//     with `rixvet -update-gob-golden`.
//
// Update mode (the driver's -update-gob-golden flag sets Update)
// rewrites the golden entries for the analyzed package instead of
// reporting.
package gobversion

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"rix/internal/analysis"
)

// Tracked maps package path → gob-serialized struct types whose
// exported-field structure is pinned by the golden.
var Tracked = map[string][]string{
	"rix/internal/sample": {
		"Checkpoint", "WarmSnapshot", "WarmSet", "Boundary",
		"StrideSet", "Stride", "Sampling",
	},
	"rix/internal/sample/procexec": {"Manifest", "Lease", "Result"},
	"rix/internal/emu":             {"State", "MemState"},
	"rix/internal/bpred":           {"PredictorState", "BTBState", "RASState", "CHTState"},
	"rix/internal/memsys":          {"WarmState", "CacheState", "CacheLineState"},
	"rix/internal/core":            {"TableState", "EntryState", "LISPState", "LISPEntryState"},
	"rix/internal/pipeline":        {"Stats"},
}

// TrackedConsts maps package path → format constants whose values are
// recorded so the analyzer can tell "changed with a bump" from
// "changed silently".
var TrackedConsts = map[string][]string{
	"rix/internal/sample":          {"CheckpointFormat", "WarmCacheFormat", "StrideCacheFormat"},
	"rix/internal/sample/procexec": {"ManifestFormat", "LeaseFormat", "ResultFormat"},
}

// GoldenPath locates the golden file: absolute paths are used as-is
// (tests point it at a temp file), relative paths resolve against the
// module root of the analyzed package.
var GoldenPath = "internal/analysis/gobversion/golden.json"

// Update switches the analyzer from compare mode to regenerate mode.
var Update = false

// Analyzer is the gobversion check.
var Analyzer = &analysis.Analyzer{
	Name: "gobversion",
	Doc:  "pin the field structure of gob-serialized types; structural drift without a format-const bump fails the build",
	Run:  run,
}

// Golden is the committed structure record.
type Golden struct {
	Types  map[string]GoldenType `json:"types"`
	Consts map[string]string     `json:"consts"`
}

// GoldenType records one type: the hash that is compared and the field
// lines that make review diffs readable.
type GoldenType struct {
	Hash   string   `json:"hash"`
	Fields []string `json:"fields"`
}

func run(pass *analysis.Pass) (interface{}, error) {
	pkgPath := pass.Pkg.Path()
	typeNames := Tracked[pkgPath]
	constNames := TrackedConsts[pkgPath]
	if len(typeNames) == 0 && len(constNames) == 0 {
		return nil, nil
	}
	goldenFile, err := resolveGoldenPath(pass)
	if err != nil {
		return nil, err
	}
	golden, err := readGolden(goldenFile)
	if err != nil {
		return nil, err
	}

	types_ := map[string]GoldenType{}
	for _, name := range typeNames {
		obj, ok := pass.Pkg.Scope().Lookup(name).(*types.TypeName)
		if !ok {
			pass.Reportf(pass.Files[0].Pos(),
				"gobversion tracks %s.%s but the type does not exist; update gobversion.Tracked alongside the rename", pkgPath, name)
			continue
		}
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok {
			pass.Reportf(obj.Pos(), "gobversion tracks %s.%s but it is not a struct", pkgPath, name)
			continue
		}
		fields := fieldLines(st)
		types_[pkgPath+"."+name] = GoldenType{Hash: hashFields(fields), Fields: fields}
	}
	consts := map[string]string{}
	for _, name := range constNames {
		obj, ok := pass.Pkg.Scope().Lookup(name).(*types.Const)
		if !ok {
			pass.Reportf(pass.Files[0].Pos(),
				"gobversion tracks const %s.%s but it does not exist; update gobversion.TrackedConsts", pkgPath, name)
			continue
		}
		consts[pkgPath+"."+name] = obj.Val().ExactString()
	}

	if Update {
		return nil, writeGolden(goldenFile, golden, types_, consts)
	}

	constsBumped := false
	for key, val := range consts {
		if old, ok := golden.Consts[key]; ok && old != val {
			constsBumped = true
		}
	}
	var typeKeys []string
	for key := range types_ {
		typeKeys = append(typeKeys, key)
	}
	sort.Strings(typeKeys)
	for _, key := range typeKeys {
		cur := types_[key]
		old, ok := golden.Types[key]
		pos := declPos(pass, key)
		switch {
		case !ok:
			pass.Reportf(pos, "gob-serialized type %s has no golden entry; run `rixvet -update-gob-golden` to pin its structure", key)
		case old.Hash != cur.Hash && !constsBumped:
			pass.Reportf(pos,
				"gob-serialized type %s changed structure (%s) without a format-const bump; bump the owning format const in doc/FORMATS.md's table, then run `rixvet -update-gob-golden`",
				key, diffFields(old.Fields, cur.Fields))
		case old.Hash != cur.Hash:
			pass.Reportf(pos,
				"gob-serialized type %s changed structure (%s); format const is bumped — refresh the golden with `rixvet -update-gob-golden`",
				key, diffFields(old.Fields, cur.Fields))
		}
	}
	var constKeys []string
	for key := range consts {
		constKeys = append(constKeys, key)
	}
	sort.Strings(constKeys)
	for _, key := range constKeys {
		if _, ok := golden.Consts[key]; !ok {
			pass.Reportf(pass.Files[0].Pos(),
				"format const %s has no golden entry; run `rixvet -update-gob-golden`", key)
		} else if golden.Consts[key] != consts[key] {
			pass.Reportf(pass.Files[0].Pos(),
				"format const %s changed (%s -> %s); refresh the golden with `rixvet -update-gob-golden`",
				key, golden.Consts[key], consts[key])
		}
	}
	return nil, nil
}

// fieldLines renders the exported fields gob would encode, one
// "Name fully/qualified.Type" line per field, in declaration order.
// Unexported fields are invisible to gob and excluded.
func fieldLines(st *types.Struct) []string {
	var out []string
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() {
			continue
		}
		out = append(out, f.Name()+" "+types.TypeString(f.Type(), nil))
	}
	return out
}

func hashFields(fields []string) string {
	sum := sha256.Sum256([]byte(strings.Join(fields, "\n")))
	return hex.EncodeToString(sum[:])
}

// diffFields summarizes what changed between two field lists.
func diffFields(old, cur []string) string {
	oldSet := map[string]bool{}
	for _, f := range old {
		oldSet[f] = true
	}
	curSet := map[string]bool{}
	for _, f := range cur {
		curSet[f] = true
	}
	var added, removed []string
	for _, f := range cur {
		if !oldSet[f] {
			added = append(added, f)
		}
	}
	for _, f := range old {
		if !curSet[f] {
			removed = append(removed, f)
		}
	}
	var parts []string
	if len(added) > 0 {
		parts = append(parts, "added: "+strings.Join(added, ", "))
	}
	if len(removed) > 0 {
		parts = append(parts, "removed: "+strings.Join(removed, ", "))
	}
	if len(parts) == 0 {
		return "fields reordered"
	}
	return strings.Join(parts, "; ")
}

func declPos(pass *analysis.Pass, key string) token.Pos {
	name := key[strings.LastIndex(key, ".")+1:]
	if obj := pass.Pkg.Scope().Lookup(name); obj != nil && obj.Pos().IsValid() {
		return obj.Pos()
	}
	return pass.Files[0].Pos()
}

// resolveGoldenPath returns the absolute golden-file path for the
// analyzed package: GoldenPath as-is when absolute, else joined to the
// module root found by walking up from the package's source files.
func resolveGoldenPath(pass *analysis.Pass) (string, error) {
	if filepath.IsAbs(GoldenPath) {
		return GoldenPath, nil
	}
	dir := filepath.Dir(pass.Fset.Position(pass.Files[0].Pos()).Filename)
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return filepath.Join(dir, filepath.FromSlash(GoldenPath)), nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("gobversion: no go.mod above %s and GoldenPath is relative", dir)
		}
		dir = parent
	}
}

func readGolden(path string) (*Golden, error) {
	g := &Golden{Types: map[string]GoldenType{}, Consts: map[string]string{}}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return g, nil
	}
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(data, g); err != nil {
		return nil, fmt.Errorf("gobversion: parsing %s: %w", path, err)
	}
	if g.Types == nil {
		g.Types = map[string]GoldenType{}
	}
	if g.Consts == nil {
		g.Consts = map[string]string{}
	}
	return g, nil
}

// writeGolden merges this package's entries into the golden and writes
// it back. Merging keeps update mode package-at-a-time safe: the driver
// runs packages sequentially.
func writeGolden(path string, golden *Golden, types_ map[string]GoldenType, consts map[string]string) error {
	for k, v := range types_ {
		golden.Types[k] = v
	}
	for k, v := range consts {
		golden.Consts[k] = v
	}
	data, err := json.MarshalIndent(golden, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
