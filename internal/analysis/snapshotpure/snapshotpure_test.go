package snapshotpure_test

import (
	"testing"

	"rix/internal/analysis/analysistest"
	"rix/internal/analysis/snapshotpure"
)

func TestSnapshotpure(t *testing.T) {
	analysistest.Run(t, "testdata", snapshotpure.Analyzer, "a")
}
