// Package a seeds aliasing bugs in snapshot-family methods alongside
// the correct deep-copy idioms.
package a

type Inner struct{ Vals []int }

type S struct {
	Data []int
	M    map[int]int
	In   Inner
}

func (s *S) Clone() *S {
	c := &S{
		Data: s.Data, // want "composite-literal field aliases"
	}
	c.M = s.M // want "copied by assignment aliases the source"
	return c
}

func (s *S) CopyFrom(o *S) {
	*s = *o // want "whole-struct assignment shares"
}

func (s *S) State() []int {
	return s.Data // want "returns a reference-typed view of s"
}

// SetState deep-copies properly: call results and append into an
// existing buffer are not aliases.
func (s *S) SetState(vals []int) {
	s.Data = append(s.Data[:0], vals...)
	m := make(map[int]int, len(vals))
	for k, v := range s.M {
		m[k] = v
	}
	s.M = m
}

// Alias is not in the snapshot family; it may hand out views.
func (s *S) Alias() []int { return s.Data }

type Pages struct {
	Pages map[int][]byte
	pages map[int]*[16]byte
}

// State aliases through a range variable: p is bound over the
// receiver's map, so p[:] is a view of live storage.
func (m *Pages) State() Pages {
	st := Pages{Pages: make(map[int][]byte, len(m.pages))}
	for pn, p := range m.pages {
		st.Pages[pn] = p[:] // want "copied by assignment aliases the source"
	}
	return st
}

type Shared struct {
	Pages map[int][]byte
}

// Clone deliberately shares the page map (copy-on-write protocol).
func (p *Shared) Clone() *Shared {
	c := &Shared{}
	c.Pages = p.Pages //rix:shared
	return c
}
