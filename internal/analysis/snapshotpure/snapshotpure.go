// Package snapshotpure enforces the deep-copy contract of the state
// snapshot family — State, Clone, CloneWarm, CopyFrom, SetState,
// WarmState, SetWarmState, CopyTagsFrom, CopyWarmFrom — across the
// simulator's state-bearing packages (bpred, core, memsys, emu,
// regfile, sample). Parallel window workers boot from these snapshots;
// a reference-typed field (slice, map, pointer) copied by plain
// assignment aliases the live structure, and the resulting cross-window
// write sharing is exactly the class of bug TestParallelEstimateBitEqual
// exists to catch — after the fact. This analyzer catches it at build
// time.
//
// Inside a snapshot-family method it reports:
//
//   - a field write (x.f = ..., x.f[k] = ...) whose right-hand side is
//     a bare reference-typed expression (identifier, field read, index,
//     or reslice) rather than an explicit copy (append, copy, make, a
//     Clone/State call, a loop);
//   - a composite-literal field initialized from such an expression;
//   - a whole-struct copy (*dst = *src) of a struct containing
//     reference-typed fields;
//   - returning a bare reference-typed projection of the receiver or a
//     parameter.
//
// A deliberate share — the emulator's copy-on-write page snapshot is
// the canonical one — is exempted with //rix:shared on the line (or the
// line above), which is a claim that the aliasing is protected by a
// documented copy-on-write or immutability protocol.
package snapshotpure

import (
	"go/ast"
	"go/token"

	"rix/internal/analysis"
)

// Marker exempts a deliberate, documented copy-on-write share.
const Marker = "rix:shared"

// Methods is the snapshot family: method names whose bodies must deep
// copy.
var Methods = map[string]bool{
	"State": true, "Clone": true, "CloneWarm": true, "CopyFrom": true,
	"SetState": true, "WarmState": true, "SetWarmState": true,
	"CopyTagsFrom": true, "CopyWarmFrom": true,
}

// Analyzer is the snapshotpure check.
var Analyzer = &analysis.Analyzer{
	Name: "snapshotpure",
	Doc:  "flag reference-typed fields copied by plain assignment in State/Clone/CopyFrom-family methods",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, fn := range analysis.FuncsOf(pass.Files) {
		if fn.Recv == nil || !Methods[fn.Name.Name] {
			continue
		}
		checkMethod(pass, fn)
	}
	return nil, nil
}

func checkMethod(pass *analysis.Pass, fn *ast.FuncDecl) {
	sources := sourceIdents(fn)
	addRangeVars(fn, sources)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // different frame; the family contract is per-method
		case *ast.AssignStmt:
			checkAssign(pass, fn, n, sources)
		case *ast.CompositeLit:
			checkComposite(pass, fn, n, sources)
		case *ast.ReturnStmt:
			checkReturn(pass, fn, n, sources)
		}
		return true
	})
}

// sourceIdents collects the receiver and parameter names — the objects a
// returned alias would leak.
func sourceIdents(fn *ast.FuncDecl) map[string]bool {
	set := map[string]bool{}
	for _, f := range fn.Recv.List {
		for _, name := range f.Names {
			set[name.Name] = true
		}
	}
	if fn.Type.Params != nil {
		for _, f := range fn.Type.Params.List {
			for _, name := range f.Names {
				set[name.Name] = true
			}
		}
	}
	return set
}

// addRangeVars extends sources with range variables bound over a
// source-rooted expression: in `for pn, p := range m.pages`, p aliases
// m's storage, so `st.Pages[pn] = p[:]` is the canonical copy-on-write
// share. Iterates to a fixpoint for ranges over range variables.
func addRangeVars(fn *ast.FuncDecl, sources map[string]bool) {
	for changed := true; changed; {
		changed = false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if root := rootIdent(rs.X); root == nil || !sources[root.Name] {
				return true
			}
			for _, v := range []ast.Expr{rs.Key, rs.Value} {
				if id, ok := v.(*ast.Ident); ok && id.Name != "_" && !sources[id.Name] {
					sources[id.Name] = true
					changed = true
				}
			}
			return true
		})
	}
}

func checkAssign(pass *analysis.Pass, fn *ast.FuncDecl, as *ast.AssignStmt, sources map[string]bool) {
	if as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		rhs := as.Rhs[i]
		// Whole-struct copy through pointers: *dst = *src shares every
		// reference field of the struct at once.
		if lstar, ok := ast.Unparen(lhs).(*ast.StarExpr); ok {
			if _, ok := ast.Unparen(rhs).(*ast.StarExpr); ok {
				if root := rootIdent(rhs); root == nil || !sources[root.Name] {
					continue
				}
				if t, ok := pass.TypesInfo.Types[lstar]; ok && analysis.HasReferenceField(t.Type) {
					report(pass, as.Pos(),
						"%s: whole-struct assignment shares its reference-typed fields; copy them explicitly", fn.Name.Name)
				}
			}
			continue
		}
		// Field or element writes only: locals may alias for reading.
		switch ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr, *ast.IndexExpr:
		default:
			continue
		}
		if !plainAlias(pass, rhs) {
			continue
		}
		// Only a right-hand side rooted at the receiver or a parameter is
		// an aliasing bug; a local is assumed to be a freshly built copy
		// (tracking local dataflow is out of scope for a vet check).
		if root := rootIdent(rhs); root == nil || !sources[root.Name] {
			continue
		}
		if sameRoot(lhs, rhs) {
			continue // x.f = x.f[:n] style self-adjustment
		}
		report(pass, rhs.Pos(),
			"%s: reference-typed value copied by assignment aliases the source; deep-copy it (append/copy/Clone) or mark the line //rix:shared", fn.Name.Name)
	}
}

func checkComposite(pass *analysis.Pass, fn *ast.FuncDecl, lit *ast.CompositeLit, sources map[string]bool) {
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if !plainAlias(pass, kv.Value) {
			continue
		}
		if root := rootIdent(kv.Value); root == nil || !sources[root.Name] {
			continue
		}
		report(pass, kv.Value.Pos(),
			"%s: composite-literal field aliases a reference-typed source; deep-copy it or mark the line //rix:shared", fn.Name.Name)
	}
}

func checkReturn(pass *analysis.Pass, fn *ast.FuncDecl, ret *ast.ReturnStmt, sources map[string]bool) {
	for _, res := range ret.Results {
		if !plainAlias(pass, res) {
			continue
		}
		if root := rootIdent(res); root != nil && sources[root.Name] {
			report(pass, res.Pos(),
				"%s: returns a reference-typed view of %s without copying; deep-copy it or mark the line //rix:shared", fn.Name.Name, root.Name)
		}
	}
}

// plainAlias reports whether e is a bare reference-typed expression
// that, assigned as-is, aliases its source: an identifier, selector
// chain, index, or slice expression. Calls, literals, nil, and unary
// &x (a fresh pointer is the *point* of Clone) are not flagged here.
func plainAlias(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.IsNil() || !analysis.IsReferenceType(tv.Type) {
		return false
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		// A bare identifier only aliases if it names a variable, not a
		// package or type.
		return rootIdent(e) != nil
	case *ast.SelectorExpr, *ast.IndexExpr:
		return rootIdent(e) != nil
	case *ast.SliceExpr:
		return rootIdent(e.X) != nil
	}
	return false
}

// rootIdent returns the leftmost identifier of a selector/index/slice
// chain, or nil when the chain bottoms out in a call or literal.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func sameRoot(a, b ast.Expr) bool {
	ra, rb := rootIdent(a), rootIdent(b)
	return ra != nil && rb != nil && ra.Name == rb.Name
}

func report(pass *analysis.Pass, pos token.Pos, format string, args ...interface{}) {
	if pass.HasAnnotation(pos, Marker) {
		return
	}
	pass.Reportf(pos, format, args...)
}
