package b // want "required hot path b.Gone not found"

type P struct{}

// step is a known hot path (registered by the test) but lacks the
// annotation.
func (p *P) step() {} // want "must be annotated"
