// Package a seeds one of every construct hotalloc flags, plus the
// allowed idioms, inside an annotated function.
package a

import "fmt"

type T struct{ N int }

func sink(v interface{}) { _ = v }

func worker() {}

//rix:hotpath
func hot(buf []int, n int) []int {
	m := make([]int, n) // want "make allocates"
	_ = m
	p := new(int) // want "new allocates"
	_ = p
	s := []int{1, 2} // want "slice literal allocates"
	_ = s
	mm := map[int]int{} // want "map literal allocates"
	_ = mm
	t := &T{N: n} // want "composite literal escapes"
	_ = t
	f := func() int { return n } // want "closure allocates"
	_ = f
	go worker()                         // want "spawns a goroutine"
	fmt.Println(n)                      // want "fmt.Println formats and allocates"
	sink(n)                             // want "boxes it on the heap"
	sink(42)                            // constants intern: allowed
	fresh := append([]int(nil), buf...) // want "fresh slice"
	_ = fresh
	b := []byte("xyz") // want "conversion copies"
	_ = b
	buf = append(buf, n) // growing an existing slice: the pool idiom, allowed
	//rix:alloc-ok
	cold := make([]int, 1) // suppressed: documented cold path
	_ = cold
	if n < 0 {
		panic(n) // panic boxing is exempt
	}
	return buf
}

// unannotated allocates freely without complaint.
func unannotated(n int) []int {
	return make([]int, n)
}
