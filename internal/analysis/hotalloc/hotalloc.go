// Package hotalloc flags heap-allocating constructs inside functions
// annotated //rix:hotpath — the build-time form of the allocation
// budget benchgate enforces at runtime (the hot loop went from 1.25M
// to ~880 allocs/op across PRs 2 and 6; this analyzer keeps casual
// regressions from starting that fight again).
//
// Inside an annotated function it reports:
//
//   - make, new, and fresh-slice append (append([]T(nil), ...),
//     append with a literal or call as its first argument). Growing an
//     existing slice (x = append(x, v)) is the bounded-pool idiom the
//     hot loop is built on and is allowed.
//   - map and slice composite literals, and &T{...} pointer literals.
//   - function literals (closures capture and escape).
//   - go statements (each spawn allocates a stack).
//   - any call into package fmt (formatting boxes and allocates).
//   - interface boxing: passing a concrete value to an interface
//     parameter, or converting a concrete value to an interface type.
//     panic is exempt — by the time it runs, allocation is moot.
//   - string<->[]byte/[]rune conversions (they copy).
//
// A construct that is genuinely cold — an error return path, a
// pool-refill — is suppressed with //rix:alloc-ok on its line (or the
// line above), which doubles as documentation that the allocation is
// deliberate.
//
// The analyzer also *requires* the //rix:hotpath annotation on the
// known hot functions (Required): the per-cycle pipeline stages, the
// emulator step and trace streamer, and the sampling warmer's
// per-instruction observe. Renaming or splitting one of those functions
// updates Required in the same commit, so coverage can't silently rot.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"rix/internal/analysis"
)

// Marker is the annotation that opts a function into the check.
const Marker = "rix:hotpath"

// suppress is the per-line opt-out.
const suppress = "rix:alloc-ok"

// Required maps a package path to the functions ("Name" or
// "Receiver.Name") that must carry the //rix:hotpath annotation. Tests
// may extend it for fixture packages.
var Required = map[string][]string{
	"rix/internal/pipeline": {
		"Pipeline.step", "Pipeline.completeStage", "Pipeline.fetchStage",
		"Pipeline.renameStage", "Pipeline.issueStage", "Pipeline.retireStage",
		"Pipeline.schedule", "Pipeline.newUop",
	},
	"rix/internal/emu":    {"Emulator.Step", "Streamer.Next"},
	"rix/internal/sample": {"warmer.observe"},
}

// Analyzer is the hotalloc check.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "flag heap allocations inside //rix:hotpath functions and require the annotation on known hot paths",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	annotated := map[string]bool{}
	for _, fn := range analysis.FuncsOf(pass.Files) {
		key := funcKey(fn)
		if pass.FuncAnnotated(fn, Marker) {
			annotated[key] = true
			checkBody(pass, fn)
		}
	}
	missing := append([]string(nil), Required[pass.Pkg.Path()]...)
	sort.Strings(missing)
	for _, key := range missing {
		if annotated[key] {
			continue
		}
		if fn := findFunc(pass, key); fn != nil {
			pass.Reportf(fn.Pos(), "%s is a known hot path and must be annotated //rix:hotpath", key)
		} else if len(pass.Files) > 0 {
			pass.Reportf(pass.Files[0].Pos(),
				"required hot path %s.%s not found; update hotalloc.Required alongside the rename", pass.Pkg.Path(), key)
		}
	}
	return nil, nil
}

func funcKey(fn *ast.FuncDecl) string {
	if recv := analysis.ReceiverTypeName(fn); recv != "" {
		return recv + "." + fn.Name.Name
	}
	return fn.Name.Name
}

func findFunc(pass *analysis.Pass, key string) *ast.FuncDecl {
	for _, fn := range analysis.FuncsOf(pass.Files) {
		if funcKey(fn) == key {
			return fn
		}
	}
	return nil
}

// checkBody walks one annotated function, skipping nested function
// literals' bodies for the alloc rules other than the literal itself
// (the literal is already flagged; its body is a different frame).
func checkBody(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(pass, n.Pos(), "closure allocates; hoist it out of the hot path")
			return false
		case *ast.GoStmt:
			report(pass, n.Pos(), "go statement in hot path spawns a goroutine per call")
		case *ast.CompositeLit:
			checkComposite(pass, n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					report(pass, n.Pos(), "&composite literal escapes to the heap")
					return false // the inner literal is covered by this report
				}
			}
		case *ast.CallExpr:
			checkCall(pass, n)
		}
		return true
	})
}

func checkComposite(pass *analysis.Pass, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		report(pass, lit.Pos(), "slice literal allocates per execution")
	case *types.Map:
		report(pass, lit.Pos(), "map literal allocates per execution")
	}
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	// Conversions: interface boxing and string copies.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		checkConversion(pass, call, tv.Type)
		return
	}
	if b := builtinName(pass, call); b != "" {
		switch b {
		case "make":
			report(pass, call.Pos(), "make allocates; preallocate outside the hot path")
		case "new":
			report(pass, call.Pos(), "new allocates; preallocate outside the hot path")
		case "append":
			if len(call.Args) > 0 && freshSlice(pass, call.Args[0]) {
				report(pass, call.Pos(), "append to a fresh slice allocates; reuse a pooled buffer")
			}
		}
		return // other builtins (len, cap, copy, panic, ...) never allocate
	}
	if callee := calleeObj(pass, call); callee != nil && callee.Pkg() != nil &&
		callee.Pkg().Path() == "fmt" {
		report(pass, call.Pos(), "fmt.%s formats and allocates; keep it off the hot path", callee.Name())
		return
	}
	checkBoxing(pass, call)
}

func checkConversion(pass *analysis.Pass, call *ast.CallExpr, target types.Type) {
	if len(call.Args) != 1 {
		return
	}
	argT, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok {
		return
	}
	if types.IsInterface(target.Underlying()) && !types.IsInterface(argT.Type.Underlying()) {
		report(pass, call.Pos(), "conversion to interface boxes the value on the heap")
		return
	}
	if stringByteConv(target, argT.Type) {
		report(pass, call.Pos(), "string/byte-slice conversion copies; avoid it in the hot path")
	}
}

func stringByteConv(dst, src types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Kind() == types.String
	}
	isBytes := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
			b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(dst) && isBytes(src)) || (isBytes(dst) && isStr(src))
}

// checkBoxing flags concrete arguments bound to interface parameters.
func checkBoxing(pass *analysis.Pass, call *ast.CallExpr) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt.Underlying()) {
			continue
		}
		at, ok := pass.TypesInfo.Types[arg]
		if !ok || at.IsNil() || types.IsInterface(at.Type.Underlying()) {
			continue
		}
		if isSmallConst(at) {
			continue // constants intern; no per-call allocation
		}
		report(pass, arg.Pos(), "passing %s to interface parameter boxes it on the heap",
			types.TypeString(at.Type, nil))
	}
}

// isSmallConst reports whether the argument is an untyped or typed
// constant — the runtime interns their boxes, so they do not allocate
// per call.
func isSmallConst(tv types.TypeAndValue) bool { return tv.Value != nil }

func builtinName(pass *analysis.Pass, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
		return id.Name
	}
	return ""
}

func calleeObj(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}

// freshSlice reports whether the expression denotes a newly created
// slice: a nil conversion, a literal, or a call result.
func freshSlice(pass *analysis.Pass, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		// []T(nil) conversions and call results are both fresh.
		if tv, ok := pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() {
			if len(e.Args) == 1 {
				if at, ok := pass.TypesInfo.Types[e.Args[0]]; ok && at.IsNil() {
					return true
				}
			}
			return false // converting an existing slice keeps its storage
		}
		return true
	case *ast.Ident:
		if tv, ok := pass.TypesInfo.Types[e]; ok && tv.IsNil() {
			return true
		}
	}
	return false
}

// report emits a diagnostic unless the line carries //rix:alloc-ok.
func report(pass *analysis.Pass, pos token.Pos, format string, args ...interface{}) {
	if pass.HasAnnotation(pos, suppress) {
		return
	}
	pass.Reportf(pos, format, args...)
}
