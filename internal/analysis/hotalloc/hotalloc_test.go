package hotalloc_test

import (
	"testing"

	"rix/internal/analysis/analysistest"
	"rix/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotalloc.Analyzer, "a")
}

func TestRequiredAnnotations(t *testing.T) {
	hotalloc.Required["b"] = []string{"P.step", "Gone"}
	defer delete(hotalloc.Required, "b")
	analysistest.Run(t, "testdata", hotalloc.Analyzer, "b")
}
