package ctxflow_test

import (
	"testing"

	"rix/internal/analysis/analysistest"
	"rix/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer, "a")
}

func TestCmdExempt(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer, "cmd/tool")
}
