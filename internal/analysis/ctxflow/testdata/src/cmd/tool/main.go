// Command tool is exempt: cmd/ binaries own the root context, so no
// diagnostics are expected in this file.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = ctx
}
