// Package a seeds root-context creation below cmd/ and dropped-context
// calls where a Context-aware sibling exists.
package a

import "context"

func root() {
	ctx := context.Background() // want "detaches this call tree"
	_ = ctx
}

func todo() {
	_ = context.TODO() // want "detaches this call tree"
}

// shim is a documented compatibility wrapper.
func shim() {
	//rix:ctx-ok
	_ = context.Background()
}

func Run() {}

// RunContext is the context-aware sibling of Run.
func RunContext(ctx context.Context) { _ = ctx }

func drop(ctx context.Context) {
	Run() // want "dropping cancellation"
}

func threaded(ctx context.Context) {
	RunContext(ctx)
}

// noCtx holds no context, so calling the blind variant is fine.
func noCtx() {
	Run()
}

type T struct{}

func (T) Step() {}

// StepContext is the context-aware sibling of Step.
func (T) StepContext(ctx context.Context) { _ = ctx }

func dropMethod(ctx context.Context, t T) {
	t.Step() // want "call StepContext"
}

func deliberate(ctx context.Context) {
	Run() //rix:ctx-ok
}
