// Package ctxflow enforces the context discipline PR 4 established:
// cancellation enters at the top (cmd/ binaries own the root context)
// and is threaded through, never re-minted mid-stack. Below cmd/ it
// reports:
//
//   - any call to context.Background() or context.TODO(). A library
//     function that needs a context receives one; minting a fresh root
//     silently detaches everything below it from Ctrl-C, deadlines,
//     and test timeouts.
//   - inside a function that receives a context.Context: calls to a
//     context-less function F when a context-aware sibling FContext
//     exists (the repo's Run/RunContext naming convention). Holding a
//     ctx and calling the blind variant drops cancellation on the
//     floor.
//
// Compatibility shims that exist precisely to mint a root context for
// old callers are exempted with //rix:ctx-ok on the line (or the line
// above). Package main and anything under cmd/ is exempt wholesale —
// that is where roots are supposed to be created.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"rix/internal/analysis"
)

// Marker exempts a deliberate root-context creation or a deliberate
// context drop.
const Marker = "rix:ctx-ok"

// Analyzer is the ctxflow check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "forbid context.Background/TODO below cmd/ and flag dropped contexts where a Context-aware sibling exists",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if exemptPackage(pass.Pkg) {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkRootContext(pass, call)
			return true
		})
	}
	for _, fn := range analysis.FuncsOf(pass.Files) {
		if hasContextParam(pass, fn) {
			checkThreading(pass, fn)
		}
	}
	return nil, nil
}

// exemptPackage reports whether the package is allowed to mint root
// contexts: package main, or anything under a cmd/ directory.
func exemptPackage(pkg *types.Package) bool {
	if pkg.Name() == "main" {
		return true
	}
	path := pkg.Path()
	return strings.HasPrefix(path, "cmd/") || strings.Contains(path, "/cmd/")
}

func checkRootContext(pass *analysis.Pass, call *ast.CallExpr) {
	callee := calleeFunc(pass, call)
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "context" {
		return
	}
	switch callee.Name() {
	case "Background", "TODO":
	default:
		return
	}
	if pass.HasAnnotation(call.Pos(), Marker) {
		return
	}
	pass.Reportf(call.Pos(),
		"context.%s() below cmd/ detaches this call tree from cancellation; accept a ctx parameter (or mark a deliberate shim //rix:ctx-ok)",
		callee.Name())
}

// checkThreading reports calls to F from a ctx-receiving function when
// FContext exists — the caller holds a context and is dropping it.
func checkThreading(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(pass, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		sig, ok := callee.Type().(*types.Signature)
		if !ok || signatureTakesContext(sig) {
			return true // already context-aware
		}
		sibling := contextSibling(pass, call, callee)
		if sibling == nil {
			return true
		}
		if pass.HasAnnotation(call.Pos(), Marker) {
			return true
		}
		pass.Reportf(call.Pos(),
			"%s holds a ctx but calls %s, dropping cancellation; call %s (or mark the drop //rix:ctx-ok)",
			fn.Name.Name, callee.Name(), sibling.Name())
		return true
	})
}

// contextSibling finds a context-aware variant of the callee: a method
// <Name>Context on the same receiver, or a package-level function
// <Name>Context in the callee's package.
func contextSibling(pass *analysis.Pass, call *ast.CallExpr, callee *types.Func) *types.Func {
	want := callee.Name() + "Context"
	sig := callee.Type().(*types.Signature)
	if sig.Recv() != nil {
		// Method: look the sibling up on the receiver type.
		obj, _, _ := types.LookupFieldOrMethod(sig.Recv().Type(), true, callee.Pkg(), want)
		if m, ok := obj.(*types.Func); ok && takesContext(m) {
			return m
		}
		return nil
	}
	if obj, ok := callee.Pkg().Scope().Lookup(want).(*types.Func); ok && takesContext(obj) {
		return obj
	}
	return nil
}

func takesContext(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && signatureTakesContext(sig)
}

func signatureTakesContext(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

func hasContextParam(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	if fn.Body == nil || fn.Type.Params == nil {
		return false
	}
	for _, field := range fn.Type.Params.List {
		if tv, ok := pass.TypesInfo.Types[field.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	default:
		return nil
	}
	fn, _ := obj.(*types.Func)
	return fn
}
