// Package suite registers the rixvet analyzers in the order the driver
// runs them. cmd/rixvet and the suite-level tests both consume this
// list, so adding an analyzer here is the single step that wires it
// into CI.
package suite

import (
	"rix/internal/analysis"
	"rix/internal/analysis/ctxflow"
	"rix/internal/analysis/eventenum"
	"rix/internal/analysis/gobversion"
	"rix/internal/analysis/hotalloc"
	"rix/internal/analysis/snapshotpure"
)

// Analyzers is the full rixvet suite in execution order.
var Analyzers = []*analysis.Analyzer{
	hotalloc.Analyzer,
	snapshotpure.Analyzer,
	eventenum.Analyzer,
	ctxflow.Analyzer,
	gobversion.Analyzer,
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *analysis.Analyzer {
	for _, a := range Analyzers {
		if a.Name == name {
			return a
		}
	}
	return nil
}
