// Package analysis is the foundation of rixvet, the project's static
// analysis suite: a deliberately small, dependency-free re-statement of
// the golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass,
// Diagnostic) built entirely on the standard library's go/ast and
// go/types. The build environment is hermetic — no module downloads —
// so the suite vendors nothing and stubs nothing; the subset of the
// upstream API the five rix analyzers need is defined here, with the
// same field names, so migrating to the real framework later is a
// mechanical import swap.
//
// The analyzers themselves live in subpackages (hotalloc, snapshotpure,
// eventenum, ctxflow, gobversion); Suite in suite.go enumerates them
// for the cmd/rixvet driver. Each invariant an analyzer enforces is
// documented in doc/ARCHITECTURE.md's "Static analysis" section.
//
// # Annotations
//
// The analyzers read three source annotations, all line comments:
//
//   - //rix:hotpath — on a function declaration: the body must be
//     allocation-free (hotalloc).
//   - //rix:shared — on a statement inside a State/Clone/CopyFrom
//     method: the reference-typed copy on that line is a documented
//     copy-on-write share, not an aliasing bug (snapshotpure).
//   - //rix:alloc-ok, //rix:ctx-ok, //rix:partial — per-line
//     suppressions for hotalloc, ctxflow, and eventenum, for the rare
//     deliberate exception (a cold error path inside a hot function, a
//     compatibility shim, a filter switch). Each analyzer's doc says
//     when a suppression is legitimate.
//
// A suppression applies to the line it is on, or — when written as a
// standalone comment line — to the line directly below it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check, mirroring the upstream
// go/analysis type: a name (used in diagnostics and -only filters), a
// doc string, and a Run function applied once per loaded package.
type Analyzer struct {
	Name string
	Doc  string

	// Run applies the check to one package and reports findings through
	// pass.Report. The interface{} result is reserved for upstream
	// compatibility (fact passing); rix analyzers return nil.
	Run func(pass *Pass) (interface{}, error)
}

// Pass carries one package's syntax and type information through an
// analyzer, mirroring the upstream go/analysis.Pass surface the rix
// analyzers use.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver wires this; analyzers
	// usually call Reportf.
	Report func(Diagnostic)

	lineComments map[string]map[int]string // filename -> line -> comment text
}

// Diagnostic is one finding, positioned at Pos.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// buildLineComments indexes every comment by (file, line) so annotation
// lookups are O(1). A comment group occupying lines n..m annotates each
// of those lines with its text.
func (p *Pass) buildLineComments() {
	p.lineComments = make(map[string]map[int]string)
	for _, f := range p.Files {
		pos := p.Fset.Position(f.Pos())
		m := p.lineComments[pos.Filename]
		if m == nil {
			m = make(map[int]string)
			p.lineComments[pos.Filename] = m
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				start := p.Fset.Position(c.Pos())
				m[start.Line] += c.Text
			}
		}
	}
}

// commentAt returns the comment text on the given file line ("" when
// none).
func (p *Pass) commentAt(filename string, line int) string {
	if p.lineComments == nil {
		p.buildLineComments()
	}
	return p.lineComments[filename][line]
}

// HasAnnotation reports whether the line containing pos, or the line
// directly above it, carries the given //rix:... marker (e.g.
// "rix:alloc-ok"). This is the shared suppression lookup: a marker on
// the flagged line or on a standalone comment line above it.
func (p *Pass) HasAnnotation(pos token.Pos, marker string) bool {
	position := p.Fset.Position(pos)
	return strings.Contains(p.commentAt(position.Filename, position.Line), marker) ||
		strings.Contains(p.commentAt(position.Filename, position.Line-1), marker)
}

// FuncAnnotated reports whether fn's doc comment (or the line above the
// func keyword, for functions whose doc gofmt keeps detached) carries
// the marker.
func (p *Pass) FuncAnnotated(fn *ast.FuncDecl, marker string) bool {
	if fn.Doc != nil && strings.Contains(docRaw(fn.Doc), marker) {
		return true
	}
	return p.HasAnnotation(fn.Pos(), marker)
}

func docRaw(doc *ast.CommentGroup) string {
	var b strings.Builder
	for _, c := range doc.List {
		b.WriteString(c.Text)
		b.WriteByte('\n')
	}
	return b.String()
}

// FuncsOf yields every function declaration in the package with a body.
func FuncsOf(files []*ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range files {
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
				out = append(out, fn)
			}
		}
	}
	return out
}

// ReceiverTypeName returns the bare type name of a method's receiver
// ("" for plain functions): *Pipeline and Pipeline both yield
// "Pipeline".
func ReceiverTypeName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return ""
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	switch e := t.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr: // generic receiver T[P]
		if id, ok := e.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}

// IsReferenceType reports whether values of t alias underlying storage
// when copied by plain assignment: slices, maps, pointers, and
// channels. Interfaces and functions are excluded — sharing those is
// the norm, not an aliasing bug — and arrays/structs copy by value.
func IsReferenceType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer, *types.Chan:
		return true
	}
	return false
}

// HasReferenceField reports whether t (after unwrapping pointers and
// named types) is a struct with at least one reference-typed field,
// searching embedded value structs recursively.
func HasReferenceField(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if IsReferenceType(ft) || HasReferenceField(ft) {
			return true
		}
	}
	return false
}
