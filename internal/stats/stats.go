// Package stats provides small statistics containers and text-table
// rendering for the experiment harness.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram counts samples into caller-defined upper-bound buckets.
type Histogram struct {
	bounds []uint64 // sorted upper bounds; final bucket is overflow
	counts []uint64
	total  uint64
}

// NewHistogram builds a histogram with the given inclusive upper bounds.
func NewHistogram(bounds ...uint64) *Histogram {
	b := append([]uint64(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// Add records one sample.
func (h *Histogram) Add(v uint64) {
	for i, ub := range h.bounds {
		if v <= ub {
			h.counts[i]++
			h.total++
			return
		}
	}
	h.counts[len(h.bounds)]++
	h.total++
}

// Total returns the sample count.
func (h *Histogram) Total() uint64 { return h.total }

// Fraction returns the share of samples in bucket i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[i]) / float64(h.total)
}

// Buckets returns the bucket count (bounds + overflow).
func (h *Histogram) Buckets() int { return len(h.counts) }

// Count returns the samples in bucket i.
func (h *Histogram) Count(i int) uint64 { return h.counts[i] }

// Breakdown is an ordered label -> count map for stacked-bar style
// reports.
type Breakdown struct {
	labels []string
	counts map[string]uint64
}

// NewBreakdown builds a breakdown with a fixed label order.
func NewBreakdown(labels ...string) *Breakdown {
	return &Breakdown{labels: labels, counts: make(map[string]uint64, len(labels))}
}

// Add increments a label.
func (b *Breakdown) Add(label string, n uint64) { b.counts[label] += n }

// Labels returns the label order.
func (b *Breakdown) Labels() []string { return b.labels }

// Count returns a label's count.
func (b *Breakdown) Count(label string) uint64 { return b.counts[label] }

// Total sums all labels.
func (b *Breakdown) Total() uint64 {
	var t uint64
	for _, l := range b.labels {
		t += b.counts[l]
	}
	return t
}

// Fraction returns a label's share.
func (b *Breakdown) Fraction(label string) float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return float64(b.counts[label]) / float64(t)
}

// Table renders aligned text tables (and CSV) for experiment output.
type Table struct {
	Title   string
	header  []string
	rows    [][]string
	noteSet []string
}

// NewTable builds a table with column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, header: header}
}

// Row appends a row; cells are formatted with %v.
func (t *Table) Row(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Note attaches a footnote line.
func (t *Table) Note(format string, args ...interface{}) {
	t.noteSet = append(t.noteSet, fmt.Sprintf(format, args...))
}

// Header returns the column headers.
func (t *Table) Header() []string { return append([]string(nil), t.header...) }

// Rows returns the rendered data rows.
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = append([]string(nil), r...)
	}
	return out
}

// Notes returns the attached footnotes.
func (t *Table) Notes() []string { return append([]string(nil), t.noteSet...) }

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// NumCols returns the number of header columns.
func (t *Table) NumCols() int { return len(t.header) }

// Cell returns a rendered cell.
func (t *Table) Cell(row, col int) string { return t.rows[row][col] }

// String renders the aligned text form.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	for _, n := range t.noteSet {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// CSV renders the comma-separated form.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.header, ","))
	b.WriteByte('\n')
	for _, r := range t.rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// GeoMean computes the geometric mean of speedup-like values.
func GeoMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	prod := 1.0
	for _, v := range vals {
		if v <= 0 {
			return 0
		}
		prod *= v
	}
	return pow(prod, 1/float64(len(vals)))
}

// AMean computes the arithmetic mean.
func AMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

func pow(x, y float64) float64 { return math.Pow(x, y) }
