package stats

import (
	"math"
	"strings"
	"testing"
)

func TestHistogram(t *testing.T) {
	h := NewHistogram(3, 15, 63)
	for _, v := range []uint64{0, 3, 4, 15, 16, 63, 64, 1000} {
		h.Add(v)
	}
	if h.Total() != 8 {
		t.Errorf("total = %d", h.Total())
	}
	want := []uint64{2, 2, 2, 2}
	for i, w := range want {
		if h.Count(i) != w {
			t.Errorf("bucket %d = %d, want %d", i, h.Count(i), w)
		}
	}
	if h.Fraction(0) != 0.25 {
		t.Errorf("fraction = %v", h.Fraction(0))
	}
	if h.Buckets() != 4 {
		t.Errorf("buckets = %d", h.Buckets())
	}
}

func TestHistogramUnsortedBounds(t *testing.T) {
	h := NewHistogram(63, 3, 15) // constructor sorts
	h.Add(4)
	if h.Count(1) != 1 {
		t.Error("bounds not sorted")
	}
}

func TestBreakdown(t *testing.T) {
	b := NewBreakdown("alu", "load", "branch")
	b.Add("alu", 6)
	b.Add("load", 3)
	b.Add("branch", 1)
	if b.Total() != 10 {
		t.Errorf("total = %d", b.Total())
	}
	if b.Fraction("alu") != 0.6 {
		t.Errorf("fraction = %v", b.Fraction("alu"))
	}
	if len(b.Labels()) != 3 || b.Labels()[1] != "load" {
		t.Error("labels wrong")
	}
	empty := NewBreakdown("x")
	if empty.Fraction("x") != 0 {
		t.Error("empty fraction not 0")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "bench", "ipc", "rate")
	tb.Row("crafty", 1.2345, "17%")
	tb.Row("averylongbenchname", 0.5, "2%")
	tb.Note("n = %d", 2)
	s := tb.String()
	if !strings.Contains(s, "== Demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(s, "crafty") || !strings.Contains(s, "1.23") {
		t.Errorf("missing cells:\n%s", s)
	}
	if !strings.Contains(s, "# n = 2") {
		t.Error("missing note")
	}
	// Alignment: all data lines equally wide at the first column.
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) < 5 {
		t.Fatalf("too few lines:\n%s", s)
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "bench,ipc,rate\n") {
		t.Errorf("csv header: %q", csv)
	}
	if tb.NumRows() != 2 || tb.Cell(0, 0) != "crafty" {
		t.Error("accessors wrong")
	}
}

func TestMeans(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Errorf("geomean = %v", g)
	}
	if GeoMean(nil) != 0 || GeoMean([]float64{1, 0}) != 0 {
		t.Error("geomean degenerate cases")
	}
	if a := AMean([]float64{1, 2, 3}); a != 2 {
		t.Errorf("amean = %v", a)
	}
	if AMean(nil) != 0 {
		t.Error("amean empty")
	}
}
