// Package workload provides the 16 synthetic benchmarks standing in for
// the paper's SPEC2000 integer suite (see DESIGN.md for the substitution
// rationale). Each program is written in rix assembly and engineered to
// exhibit the workload property the paper attributes to its namesake:
// call intensity and depth, save/restore frequency, un-hoisted loop
// invariants, branch predictability, and cache behaviour. All programs
// are self-checking: they print a checksum and exit 0.
package workload

import (
	"fmt"
	"sort"

	"rix/internal/asm"
	"rix/internal/emu"
	"rix/internal/prog"
)

// Benchmark is one registered workload.
type Benchmark struct {
	Name        string
	Description string
	Class       string // "call-rich", "call-poor", "memory-bound", "mixed"
	Source      string
}

var registry = map[string]Benchmark{}

func register(b Benchmark) {
	if _, dup := registry[b.Name]; dup {
		panic("workload: duplicate benchmark " + b.Name)
	}
	registry[b.Name] = b
}

// Names returns the paper's benchmark order.
func Names() []string {
	return []string{
		"bzip2", "crafty", "eon.c", "eon.k", "eon.r", "gap", "gcc", "gzip",
		"mcf", "parser", "perl.d", "perl.s", "twolf", "vortex", "vpr.p", "vpr.r",
	}
}

// All returns every benchmark in paper order.
func All() []Benchmark {
	out := make([]Benchmark, 0, len(registry))
	for _, n := range Names() {
		if b, ok := registry[n]; ok {
			out = append(out, b)
		}
	}
	// Any extras (e.g. test-only registrations) in name order.
	known := map[string]bool{}
	for _, n := range Names() {
		known[n] = true
	}
	var extra []string
	for n := range registry {
		if !known[n] {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	for _, n := range extra {
		out = append(out, registry[n])
	}
	return out
}

// ByName finds a benchmark.
func ByName(name string) (Benchmark, bool) {
	b, ok := registry[name]
	return b, ok
}

// MaxInstrs bounds golden-trace generation; every benchmark must halt
// well within it.
const MaxInstrs = 1 << 24

// Build assembles the benchmark and produces its golden trace.
func (b Benchmark) Build() (*prog.Program, []emu.TraceRec, error) {
	p, err := asm.Assemble(b.Name+".s", b.Source)
	if err != nil {
		return nil, nil, fmt.Errorf("workload %s: %w", b.Name, err)
	}
	p.Name = b.Name
	trace, e, err := emu.Trace(p, MaxInstrs)
	if err != nil {
		return nil, nil, fmt.Errorf("workload %s: %w", b.Name, err)
	}
	if e.ExitCode != 0 {
		return nil, nil, fmt.Errorf("workload %s: exit code %d (self-check failed)", b.Name, e.ExitCode)
	}
	return p, trace, nil
}
