// Package workload provides the 16 synthetic benchmarks standing in for
// the paper's SPEC2000 integer suite (see DESIGN.md for the substitution
// rationale). Each program is written in rix assembly and engineered to
// exhibit the workload property the paper attributes to its namesake:
// call intensity and depth, save/restore frequency, un-hoisted loop
// invariants, branch predictability, and cache behaviour. All programs
// are self-checking: they print a checksum and exit 0.
package workload

import (
	"context"
	"fmt"
	"sort"

	"rix/internal/asm"
	"rix/internal/emu"
	"rix/internal/prog"
)

// Benchmark is one registered workload.
type Benchmark struct {
	Name        string
	Description string
	Class       string // "call-rich", "call-poor", "memory-bound", "mixed"
	Source      string
}

var registry = map[string]Benchmark{}

func register(b Benchmark) {
	if _, dup := registry[b.Name]; dup {
		panic("workload: duplicate benchmark " + b.Name)
	}
	registry[b.Name] = b
}

// Names returns the paper's benchmark order.
func Names() []string {
	return []string{
		"bzip2", "crafty", "eon.c", "eon.k", "eon.r", "gap", "gcc", "gzip",
		"mcf", "parser", "perl.d", "perl.s", "twolf", "vortex", "vpr.p", "vpr.r",
	}
}

// All returns every benchmark in paper order.
func All() []Benchmark {
	out := make([]Benchmark, 0, len(registry))
	for _, n := range Names() {
		if b, ok := registry[n]; ok {
			out = append(out, b)
		}
	}
	// Any extras (e.g. test-only registrations) in name order.
	known := map[string]bool{}
	for _, n := range Names() {
		known[n] = true
	}
	var extra []string
	for n := range registry {
		if !known[n] {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	for _, n := range extra {
		out = append(out, registry[n])
	}
	return out
}

// ByName finds a benchmark.
func ByName(name string) (Benchmark, bool) {
	b, ok := registry[name]
	return b, ok
}

// MaxInstrs bounds golden-trace generation; every benchmark must halt
// well within it.
const MaxInstrs = 1 << 24

// Build assembles the benchmark and validates it with one streaming
// emulation pass (halts within budget, self-check exit 0) without
// materializing the trace. The returned Built mints independent golden
// trace sources on demand; Materialize is the adapter for consumers that
// still want the full slice.
func (b Benchmark) Build() (Built, error) {
	return b.BuildContext(context.Background()) //rix:ctx-ok — compatibility shim; BuildContext is the real entry point
}

// BuildContext is Build with cancellation: the validation pass polls ctx
// at a batched record cadence, and a cancelled build returns ctx.Err().
func (b Benchmark) BuildContext(ctx context.Context) (Built, error) {
	p, err := asm.Assemble(b.Name+".s", b.Source)
	if err != nil {
		return Built{}, fmt.Errorf("workload %s: %w", b.Name, err)
	}
	p.Name = b.Name
	// Eager validation: drain one stream at O(1) memory.
	s := emu.Stream(p, MaxInstrs)
	s.SetContext(ctx)
	for {
		if _, ok := s.Next(); !ok {
			break
		}
	}
	if err := s.Err(); err != nil {
		if ctx.Err() != nil && err == ctx.Err() {
			return Built{}, err
		}
		return Built{}, fmt.Errorf("workload %s: %w", b.Name, err)
	}
	e := s.Emulator()
	if e.ExitCode != 0 {
		return Built{}, fmt.Errorf("workload %s: exit code %d (self-check failed)", b.Name, e.ExitCode)
	}
	n := int(e.Count)
	return Built{
		Prog:   p,
		DynLen: n,
		open: func() emu.TraceSource {
			src := emu.Stream(p, MaxInstrs)
			src.SetSizeHint(n)
			return src
		},
	}, nil
}

// BuildMaterialized assembles the benchmark and returns its fully
// materialized golden trace — the pre-streaming contract, kept for tests
// and small traces.
func (b Benchmark) BuildMaterialized() (*prog.Program, []emu.TraceRec, error) {
	bw, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	trace, err := bw.Materialize()
	if err != nil {
		return nil, nil, err
	}
	return bw.Prog, trace, nil
}
