package workload

import (
	"fmt"
	"testing"

	"rix/internal/isa"
)

// TestAllBenchmarksBuild assembles every benchmark, runs it to completion
// on the golden emulator, and checks self-termination, a sane dynamic
// length and non-empty output.
func TestAllBenchmarksBuild(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			bw, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			n := bw.DynLen
			if n < 40_000 {
				t.Errorf("%s: only %d dynamic instructions (too short to measure)", b.Name, n)
			}
			if n > 2_000_000 {
				t.Errorf("%s: %d dynamic instructions (too long for the harness)", b.Name, n)
			}
			if err := bw.Prog.Validate(); err != nil {
				t.Errorf("%s: %v", b.Name, err)
			}
		})
	}
}

// TestBenchmarkMixes sanity-checks per-class instruction mixes: call-rich
// benchmarks must actually call, memory-bound ones must load a lot.
func TestBenchmarkMixes(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			bw, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			p := bw.Prog
			var calls, loads, stores, branches uint64
			src := bw.Source()
			for {
				r, ok := src.Next()
				if !ok {
					break
				}
				in := p.Code[r.CodeIdx]
				switch {
				case in.Op.IsCall():
					calls++
				case in.Op.IsLoad():
					loads++
				case in.Op.IsStore():
					stores++
				case in.Op.IsConditional():
					branches++
				}
			}
			if err := src.Err(); err != nil {
				t.Fatal(err)
			}
			n := uint64(bw.DynLen)
			callRate := float64(calls) / float64(n)
			memRate := float64(loads+stores) / float64(n)
			switch b.Class {
			case "call-rich":
				if callRate < 0.01 {
					t.Errorf("call-rich %s: call rate %.4f too low", b.Name, callRate)
				}
			case "call-poor":
				if callRate > 0.01 {
					t.Errorf("call-poor %s: call rate %.4f too high", b.Name, callRate)
				}
			case "memory-bound":
				if memRate < 0.2 {
					t.Errorf("memory-bound %s: mem rate %.4f too low", b.Name, memRate)
				}
			}
			if branches == 0 {
				t.Errorf("%s: no conditional branches", b.Name)
			}
			_ = stores
		})
	}
}

func TestRegistryAndNames(t *testing.T) {
	names := Names()
	if len(names) != 16 {
		t.Fatalf("paper suite has 16 benchmarks, got %d", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate name %s", n)
		}
		seen[n] = true
	}
	for _, b := range All() {
		if b.Name == "" || b.Source == "" || b.Class == "" || b.Description == "" {
			t.Errorf("benchmark %q missing metadata", b.Name)
		}
	}
	if _, ok := ByName("gzip"); !ok {
		t.Error("ByName(gzip) failed")
	}
	if _, ok := ByName("no-such"); ok {
		t.Error("ByName(no-such) succeeded")
	}
}

// TestStackDiscipline verifies that call-rich benchmarks use the
// save/restore idiom reverse integration targets: SP-based stores paired
// with SP-based loads.
func TestStackDiscipline(t *testing.T) {
	for _, b := range All() {
		if b.Class != "call-rich" {
			continue
		}
		b := b
		t.Run(b.Name, func(t *testing.T) {
			p, trace, err := b.BuildMaterialized()
			if err != nil {
				t.Fatal(err)
			}
			var spStores, spLoads uint64
			for _, r := range trace {
				in := p.Code[r.CodeIdx]
				if in.IsSPStore() {
					spStores++
				}
				if in.IsSPLoad() {
					spLoads++
				}
			}
			if spStores == 0 || spLoads == 0 {
				t.Errorf("%s: sp stores %d, sp loads %d", b.Name, spStores, spLoads)
			}
			_ = isa.RegSP
		})
	}
}

func ExampleByName() {
	b, _ := ByName("gzip")
	fmt.Println(b.Name, b.Class)
	// Output: gzip call-poor
}
