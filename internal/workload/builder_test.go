package workload

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"rix/internal/emu"
	"rix/internal/prog"
)

func TestBuilderMemoizesConcurrentGets(t *testing.T) {
	var builds int64
	b := NewBuilderFunc(func(name string) (*prog.Program, []emu.TraceRec, error) {
		atomic.AddInt64(&builds, 1)
		return &prog.Program{Name: name}, make([]emu.TraceRec, 7), nil
	})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, trace, err := b.Get("x")
			if err != nil || p.Name != "x" || len(trace) != 7 {
				t.Errorf("Get: %v %v %d", p, err, len(trace))
			}
		}()
	}
	wg.Wait()
	if n := atomic.LoadInt64(&builds); n != 1 {
		t.Errorf("built %d times, want 1", n)
	}
	if err := b.BuildAll([]string{"x", "y", "z"}, 2); err != nil {
		t.Fatal(err)
	}
	if n := atomic.LoadInt64(&builds); n != 3 {
		t.Errorf("after BuildAll: %d builds, want 3 (x memoized)", n)
	}
}

func TestBuilderPropagatesErrors(t *testing.T) {
	b := NewBuilderFunc(func(name string) (*prog.Program, []emu.TraceRec, error) {
		if name == "bad" {
			return nil, nil, fmt.Errorf("no such thing")
		}
		return &prog.Program{Name: name}, nil, nil
	})
	err := b.BuildAll([]string{"ok", "bad"}, 4)
	if err == nil || !strings.Contains(err.Error(), "bad") {
		t.Errorf("BuildAll error = %v", err)
	}
	if _, _, err := b.Get("bad"); err == nil {
		t.Error("memoized error lost")
	}
}

func TestRegistryBuildUnknown(t *testing.T) {
	if _, _, err := RegistryBuild("not-a-benchmark"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}
