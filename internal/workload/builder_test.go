package workload

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"rix/internal/emu"
	"rix/internal/prog"
)

func TestBuilderMemoizesConcurrentGets(t *testing.T) {
	var builds int64
	b := NewBuilderFunc(func(ctx context.Context, name string) (Built, error) {
		atomic.AddInt64(&builds, 1)
		return BuiltFromTrace(&prog.Program{Name: name}, make([]emu.TraceRec, 7)), nil
	})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			bw, err := b.Get(context.Background(), "x")
			if err != nil || bw.Prog.Name != "x" || bw.DynLen != 7 {
				t.Errorf("Get: %+v %v", bw, err)
			}
		}()
	}
	wg.Wait()
	if n := atomic.LoadInt64(&builds); n != 1 {
		t.Errorf("built %d times, want 1", n)
	}
	if err := b.BuildAll(context.Background(), []string{"x", "y", "z"}, 2); err != nil {
		t.Fatal(err)
	}
	if n := atomic.LoadInt64(&builds); n != 3 {
		t.Errorf("after BuildAll: %d builds, want 3 (x memoized)", n)
	}
}

func TestBuilderPropagatesErrors(t *testing.T) {
	b := NewBuilderFunc(func(ctx context.Context, name string) (Built, error) {
		if name == "bad" {
			return Built{}, fmt.Errorf("no such thing")
		}
		return BuiltFromTrace(&prog.Program{Name: name}, nil), nil
	})
	err := b.BuildAll(context.Background(), []string{"ok", "bad"}, 4)
	if err == nil || !strings.Contains(err.Error(), "bad") {
		t.Errorf("BuildAll error = %v", err)
	}
	if _, err := b.Get(context.Background(), "bad"); err == nil {
		t.Error("memoized error lost")
	}
}

func TestRegistryBuildUnknown(t *testing.T) {
	if _, err := RegistryBuild(context.Background(), "not-a-benchmark"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

// TestBuiltSourcesAreIndependent verifies that every Source call gets its
// own cursor — the property concurrent simulation cells rely on.
func TestBuiltSourcesAreIndependent(t *testing.T) {
	recs := []emu.TraceRec{{CodeIdx: 0}, {CodeIdx: 1}, {CodeIdx: 2}}
	bw := BuiltFromTrace(&prog.Program{Name: "t"}, recs)
	s1, s2 := bw.Source(), bw.Source()
	r1, _ := s1.Next()
	r2, _ := s1.Next()
	q1, _ := s2.Next()
	if r1.CodeIdx != 0 || r2.CodeIdx != 1 || q1.CodeIdx != 0 {
		t.Errorf("sources share a cursor: %d %d %d", r1.CodeIdx, r2.CodeIdx, q1.CodeIdx)
	}
	got, err := bw.Materialize()
	if err != nil || len(got) != 3 {
		t.Errorf("Materialize: %d records, err %v", len(got), err)
	}
}

// TestBuilderWaiterNotPoisonedByOthersCancellation: a Get whose own
// context is live must not inherit the cancellation of the caller whose
// context the shared memoized build happened to run under.
func TestBuilderWaiterNotPoisonedByOthersCancellation(t *testing.T) {
	cancelled, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	release := make(chan struct{})
	var builds int64
	b := NewBuilderFunc(func(ctx context.Context, name string) (Built, error) {
		if atomic.AddInt64(&builds, 1) == 1 {
			close(started)
			<-release // hold the first build until the waiter has joined
		}
		if err := ctx.Err(); err != nil {
			return Built{}, err
		}
		return BuiltFromTrace(&prog.Program{Name: name}, make([]emu.TraceRec, 3)), nil
	})

	firstErr := make(chan error)
	go func() {
		_, err := b.Get(cancelled, "w")
		firstErr <- err
	}()
	<-started
	cancel() // the build's binding context dies while it is in flight

	waiterErr := make(chan error)
	go func() {
		_, err := b.Get(context.Background(), "w") // joins, then must retry
		waiterErr <- err
	}()
	close(release)

	if err := <-firstErr; err != context.Canceled {
		t.Errorf("cancelled caller got %v, want context.Canceled", err)
	}
	if err := <-waiterErr; err != nil {
		t.Errorf("live-context waiter got %v, want success via retry", err)
	}

	// And the cancelled-context caller itself sees the context error,
	// not a retry loop.
	if _, err := b.Get(cancelled, "w2"); err != context.Canceled {
		t.Errorf("Get under cancelled ctx = %v, want context.Canceled", err)
	}
}
