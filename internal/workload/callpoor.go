package workload

// Call-poor, loop-dominated benchmarks: gzip, bzip2, vpr.p, vpr.r.
//
// These are the programs for which the paper reports that opcode indexing
// *hurts*: they have few calls (one call depth, so the call-depth index
// mix cannot spread entries) and their hot loops contain several
// operations with identical opcode/immediate pairs whose IT entries churn
// a single set under opcode indexing. They also exploit little reverse
// integration (few save/restore pairs).

func init() {
	register(Benchmark{
		Name:        "gzip",
		Class:       "call-poor",
		Description: "LZ-style window scan with hash-table probes; single call depth, heavy opcode/imm aliasing",
		Source:      gzipSrc,
	})
	register(Benchmark{
		Name:        "bzip2",
		Class:       "call-poor",
		Description: "block-sort inner loops (shell sort passes over a byte block)",
		Source:      bzip2Src,
	})
	register(Benchmark{
		Name:        "vpr.p",
		Class:       "call-poor",
		Description: "placement: annealing-style cell swaps over a grid, loop-dominated",
		Source:      vprPlaceSrc,
	})
	register(Benchmark{
		Name:        "vpr.r",
		Class:       "call-poor",
		Description: "routing: wavefront grid relaxation sweeps, deeply loop-dominated",
		Source:      vprRouteSrc,
	})
}

const gzipSrc = `
; gzip: sliding-window scan with hash probes. Call-poor: the hot loop
; runs at call depth 0. Several addqi/andi ops share opcode+immediate,
; churning one IT set under opcode indexing (the paper's conflict case).
        .equ  ITERS, 9000
        .text
main:   ldiq s0, window        ; window base (loop-invariant root)
        ldiq s1, htab          ; hash table base
        ldiq s2, ITERS
        ldiq t0, 88172645      ; lcg state
        clr  s3                ; checksum
        clr  s4                ; position

        ; fill the 512-word window with pseudo-random bytes
        ldiq t1, 512
        mov  t2, s0
init:   mulqi t0, t0, 1103515245
        addqi t0, t0, 12345
        stq  t0, 0(t2)
        addqi t2, t2, 8
        addqi t1, t1, -1
        bne  t1, init

loop:   andi t3, s4, 511       ; window offset
        slli t3, t3, 3
        addq t4, s0, t3
        ldq  t5, 0(t4)         ; fetch window word

        srli t6, t5, 13        ; hash
        xor  t6, t6, t5
        andi t6, t6, 255
        slli t6, t6, 3
        addq t7, s1, t6
        ldq  t8, 0(t7)         ; probe chain head
        cmpeq t9, t8, t5
        bne  t9, match
        stq  t5, 0(t7)         ; install
        addqi s3, s3, 1
        br   cont
match:  addqi s3, s3, 5
cont:
        ; un-hoisted invariants: recomputed per iteration, general-reuse
        ; fodder (stable input pregs: s0/s1 never renamed in the loop)
        lda  t10, 64(s1)
        lda  t11, 4088(s0)
        ; opcode/imm aliasing churners: same op+imm, different registers
        addqi s4, s4, 1
        addqi t0, t0, 1
        mulqi t0, t0, 69069
        andi t1, t0, 15
        beq  t1, skipa
        addq s3, s3, t10
        br   skipb
skipa:  addq s3, s3, t11
skipb:  addqi s2, s2, -1
        bne  s2, loop

        andi a0, s3, 1048575
        ldiq v0, 1
        syscall                ; putint(checksum)
        clr  v0
        clr  a0
        syscall                ; exit(0)
        .data
window: .space 4096
htab:   .space 2048
`

const bzip2Src = `
; bzip2: shell-sort passes over a block. Call-poor; compare/branch heavy
; with data-dependent (mispredictable) exchanges.
        .equ  BLOCK, 192
        .equ  PASSES, 28
        .text
main:   ldiq s0, block
        ldiq s1, PASSES
        ldiq t0, 123456789
        clr  s3

        ; fill block
        ldiq t1, BLOCK
        mov  t2, s0
fill:   mulqi t0, t0, 1103515245
        addqi t0, t0, 12345
        srli t3, t0, 8
        andi t3, t3, 65535
        stq  t3, 0(t2)
        addqi t2, t2, 8
        addqi t1, t1, -1
        bne  t1, fill

        ; shell sort with gaps 13, 4, 1 — repeated PASSES times over
        ; freshly perturbed data
pass:   ldiq s2, gaps
nextgap:
        ldq  s4, 0(s2)         ; gap
        beq  s4, endgaps
        mov  t1, s4            ; i = gap
inner:  cmplti t2, t1, BLOCK
        beq  t2, gapdone
        slli t3, t1, 3
        addq t4, s0, t3        ; &block[i]
        ldq  t5, 0(t4)         ; v = block[i]
        mov  t6, t1            ; j = i
shift:  cmplt t7, t6, s4       ; j < gap ?
        bne  t7, place
        subq t8, t6, s4        ; j - gap
        slli t9, t8, 3
        addq t10, s0, t9
        ldq  t11, 0(t10)       ; block[j-gap]
        cmple t7, t11, t5      ; sorted already?
        bne  t7, place
        slli t9, t6, 3
        addq t9, s0, t9
        stq  t11, 0(t9)        ; block[j] = block[j-gap]
        mov  t6, t8
        br   shift
place:  slli t9, t6, 3
        addq t9, s0, t9
        stq  t5, 0(t9)
        addqi t1, t1, 1
        br   inner
gapdone:
        addqi s2, s2, 8
        br   nextgap
endgaps:
        ; checksum + perturb two elements so the next pass does work
        ldq  t2, 0(s0)
        addq s3, s3, t2
        mulqi t0, t0, 69069
        addqi t0, t0, 1
        andi t3, t0, 127
        slli t3, t3, 3
        addq t4, s0, t3
        andi t5, t0, 65535
        stq  t5, 0(t4)
        srli t6, t0, 16
        andi t6, t6, 127
        slli t6, t6, 3
        addq t7, s0, t6
        srli t8, t0, 24
        stq  t8, 0(t7)
        addqi s1, s1, -1
        bne  s1, pass

        andi a0, s3, 1048575
        ldiq v0, 1
        syscall
        clr  v0
        clr  a0
        syscall
        .data
gaps:   .word 13, 4, 1, 0
block:  .space 1536
`

const vprPlaceSrc = `
; vpr.p: annealing-style placement. Cell position swaps over a small
; grid; loop-dominated with a single rarely-called cost helper.
        .equ  CELLS, 128
        .equ  MOVES, 11000
        .text
main:   lda  sp, -16(sp)
        stq  ra, 0(sp)
        ldiq s0, pos
        ldiq s1, MOVES
        ldiq t0, 424242
        clr  s3

        ldiq t1, CELLS          ; init positions
        mov  t2, s0
pinit:  stq  t1, 0(t2)
        addqi t2, t2, 8
        addqi t1, t1, -1
        bne  t1, pinit

move:   mulqi t0, t0, 1103515245
        addqi t0, t0, 12345
        srli t1, t0, 5
        andi t1, t1, 127        ; cell a
        srli t2, t0, 13
        andi t2, t2, 127        ; cell b
        slli t3, t1, 3
        addq t3, s0, t3
        slli t4, t2, 3
        addq t4, s0, t4
        ldq  t5, 0(t3)          ; pos[a]
        ldq  t6, 0(t4)          ; pos[b]
        subq t7, t5, t6         ; delta cost
        andi t8, t7, 960
        beq  t8, accept         ; small deltas accepted (~held at ~7%)
        andi t8, t0, 63
        beq  t8, accept         ; rare uphill accept
        br   reject
accept: stq  t6, 0(t3)          ; swap
        stq  t5, 0(t4)
        addqi s3, s3, 3
reject: lda  t9, 1016(s0)       ; un-hoisted invariant
        ldq  t10, 0(t9)
        addq s3, s3, t10
        addqi s1, s1, -1
        bne  s1, move

        andi a0, s3, 1048575
        ldiq v0, 1
        syscall
        clr  v0
        clr  a0
        syscall
        .data
pos:    .space 1024
`

const vprRouteSrc = `
; vpr.r: routing wavefront sweeps over a grid. The paper's worst case for
; opcode indexing: zero calls in the hot path and five pointer bumps with
; identical opcode/immediate churning the same IT set.
        .equ  DIM, 32
        .equ  SWEEPS, 30
        .text
main:   ldiq s0, grid
        ldiq s1, SWEEPS
        clr  s3
        ldiq t0, 777777

        ldiq t1, 1024           ; init grid
        mov  t2, s0
ginit:  mulqi t0, t0, 1103515245
        addqi t0, t0, 12345
        andi t3, t0, 1023
        stq  t3, 0(t2)
        addqi t2, t2, 8
        addqi t1, t1, -1
        bne  t1, ginit

sweep:  ldiq t1, 992            ; inner cells (skip last row)
        mov  t2, s0
cell:   ldq  t3, 0(t2)          ; cost[i]
        ldq  t4, 8(t2)          ; east neighbour
        ldq  t5, 256(t2)        ; south neighbour (DIM*8)
        addqi t6, t4, 1         ; relax east
        addqi t7, t5, 1         ; relax south (same op/imm: aliases)
        cmplt t8, t6, t7
        bne  t8, useeast
        mov  t6, t7
useeast:
        cmplt t8, t6, t3
        beq  t8, keep
        stq  t6, 0(t2)
        addqi s3, s3, 1
keep:   addqi t2, t2, 8         ; five same-imm bumps across the loop
        addqi t1, t1, -1
        bne  t1, cell
        ; perturb one source cell so sweeps keep relaxing
        mulqi t0, t0, 69069
        addqi t0, t0, 1
        andi t9, t0, 255
        slli t9, t9, 3
        addq t9, s0, t9
        andi t10, t0, 511
        stq  t10, 0(t9)
        addq s3, s3, t10
        addqi s1, s1, -1
        bne  s1, sweep

        andi a0, s3, 1048575
        ldiq v0, 1
        syscall
        clr  v0
        clr  a0
        syscall
        .data
grid:   .space 8192
`
