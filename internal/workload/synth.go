package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// SynthParams parameterizes the synthetic program generator used by
// property tests and the customworkload example. All knobs are fractions
// of the loop body except Iters and Seed.
type SynthParams struct {
	Seed       int64
	Iters      int     // outer loop iterations (default 200)
	BodyOps    int     // operations per loop body (default 12)
	CallEvery  int     // 0 = no calls; otherwise one call per N body ops
	MemFrac    float64 // fraction of body ops that are loads/stores
	BranchFrac float64 // fraction of body ops guarded by a data branch
	Invariants int     // un-hoisted loop-invariant ops per body
}

func (p SynthParams) withDefaults() SynthParams {
	if p.Iters == 0 {
		p.Iters = 200
	}
	if p.BodyOps == 0 {
		p.BodyOps = 12
	}
	return p
}

// Synth generates a deterministic, self-terminating assembly program with
// the requested shape. The returned Benchmark is not registered.
func Synth(p SynthParams) Benchmark {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	var b strings.Builder
	add := func(s string, args ...interface{}) {
		fmt.Fprintf(&b, s+"\n", args...)
	}

	add("; synthetic workload (seed %d)", p.Seed)
	add("        .text")
	add("main:   lda  sp, -16(sp)")
	add("        stq  ra, 0(sp)")
	add("        ldiq s0, %d", p.Iters)
	add("        ldiq s1, %d", 1+rng.Intn(1<<20))
	add("        ldiq s2, data")
	add("        clr  s3")
	add("loop:")
	for i := 0; i < p.BodyOps; i++ {
		switch {
		case p.CallEvery > 0 && i%p.CallEvery == p.CallEvery-1:
			add("        mov  a0, s1")
			add("        call helper")
			add("        addq s3, s3, v0")
		case rng.Float64() < p.MemFrac:
			off := 8 * rng.Intn(8)
			if rng.Intn(2) == 0 {
				add("        ldq  t%d, %d(s2)", 1+rng.Intn(4), off)
			} else {
				add("        stq  s1, %d(s2)", off)
			}
		case rng.Float64() < p.BranchFrac:
			add("        andi t5, s1, %d", 1+rng.Intn(15))
			add("        beq  t5, sk%d", i)
			add("        addqi s3, s3, %d", 1+rng.Intn(9))
			add("sk%d:", i)
		default:
			switch rng.Intn(4) {
			case 0:
				add("        mulqi s1, s1, %d", 3+2*rng.Intn(8))
			case 1:
				add("        addqi s1, s1, %d", rng.Intn(99)-49)
			case 2:
				add("        xori t6, s1, %d", rng.Intn(1<<12))
				add("        addq s3, s3, t6")
			case 3:
				add("        srli t7, s1, %d", 1+rng.Intn(9))
				add("        subq s3, s3, t7")
			}
		}
	}
	for i := 0; i < p.Invariants; i++ {
		add("        lda  t%d, %d(s2)", 8+i%3, 8*(1+rng.Intn(7)))
		add("        addq s3, s3, t%d", 8+i%3)
	}
	add("        addqi s0, s0, -1")
	add("        bne  s0, loop")
	add("        andi a0, s3, 1048575")
	add("        ldiq v0, 1")
	add("        syscall")
	add("        clr  v0")
	add("        clr  a0")
	add("        syscall")
	add("helper: lda  sp, -16(sp)")
	add("        stq  s5, 8(sp)")
	add("        mulqi s5, a0, %d", 3+2*rng.Intn(20))
	add("        srli t9, s5, %d", 2+rng.Intn(6))
	add("        xor  v0, s5, t9")
	add("        ldq  s5, 8(sp)")
	add("        lda  sp, 16(sp)")
	add("        ret")
	add("        .data")
	add("data:   .space 128")

	return Benchmark{
		Name:        fmt.Sprintf("synth-%d", p.Seed),
		Class:       "synthetic",
		Description: fmt.Sprintf("generated workload: %d iters, %d ops/body", p.Iters, p.BodyOps),
		Source:      b.String(),
	}
}
