package workload

import (
	"testing"

	"rix/internal/isa"
)

func TestSynthDeterministic(t *testing.T) {
	a := Synth(SynthParams{Seed: 7, Iters: 50})
	b := Synth(SynthParams{Seed: 7, Iters: 50})
	if a.Source != b.Source {
		t.Error("same seed produced different programs")
	}
	c := Synth(SynthParams{Seed: 8, Iters: 50})
	if a.Source == c.Source {
		t.Error("different seeds produced identical programs")
	}
}

func TestSynthBuildsAndHalts(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		b := Synth(SynthParams{
			Seed: seed, Iters: 60, BodyOps: 10,
			CallEvery: int(seed % 4), MemFrac: 0.25, BranchFrac: 0.2,
			Invariants: int(seed % 3),
		})
		if _, err := b.Build(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestSynthCallDensity(t *testing.T) {
	count := func(callEvery int) float64 {
		b := Synth(SynthParams{Seed: 3, Iters: 100, BodyOps: 12, CallEvery: callEvery})
		p, trace, err := b.BuildMaterialized()
		if err != nil {
			t.Fatal(err)
		}
		calls := 0
		for _, r := range trace {
			if p.Code[r.CodeIdx].Op.IsCall() {
				calls++
			}
		}
		return float64(calls) / float64(len(trace))
	}
	none := count(0)
	sparse := count(12)
	dense := count(3)
	if none != 0 {
		t.Errorf("CallEvery=0 produced calls: %f", none)
	}
	if dense <= sparse {
		t.Errorf("call density not monotone: dense %f <= sparse %f", dense, sparse)
	}
}

func TestSynthMemFraction(t *testing.T) {
	b := Synth(SynthParams{Seed: 5, Iters: 80, BodyOps: 16, MemFrac: 0.5})
	p, trace, err := b.BuildMaterialized()
	if err != nil {
		t.Fatal(err)
	}
	mem := 0
	for _, r := range trace {
		if p.Code[r.CodeIdx].Op.IsMem() {
			mem++
		}
	}
	frac := float64(mem) / float64(len(trace))
	if frac < 0.15 {
		t.Errorf("MemFrac=0.5 gave only %.2f memory ops", frac)
	}
	_ = isa.LDQ
}

func TestSynthNotRegistered(t *testing.T) {
	b := Synth(SynthParams{Seed: 1})
	if _, ok := ByName(b.Name); ok {
		t.Error("synthetic benchmark leaked into the registry")
	}
}
