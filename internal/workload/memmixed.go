package workload

// Memory-bound and mixed benchmarks: mcf, twolf, parser.

func init() {
	register(Benchmark{
		Name:        "mcf",
		Class:       "memory-bound",
		Description: "network-simplex stand-in: dependent random walks over a 4MB arc array (L2- and DTLB-missing)",
		Source:      mcfSrc,
	})
	register(Benchmark{
		Name:        "twolf",
		Class:       "mixed",
		Description: "standard-cell placement: cost-driven swaps with an FP acceptance test",
		Source:      twolfSrc,
	})
	register(Benchmark{
		Name:        "parser",
		Class:       "mixed",
		Description: "link-grammar stand-in: word hashing and dictionary chain walks with a helper call",
		Source:      parserSrc,
	})
}

const mcfSrc = `
; mcf: latency-bound dependent loads over a 4MB working set. The region
; is deliberately left unmapped (reads return zero) so the cache and TLB
; models see a huge footprint without a multi-million-instruction init.
; The address of each load depends on the previous load's value: a serial
; miss chain, as in the real mcf. Integration helps little here (paper:
; "programs with a large memory component benefit less").
        .equ  ARCS, 24000
        .equ  BIGBASE, 0x2000000
        .equ  BIGMASK, 0x1ffff8
        .text
main:   ldiq s0, BIGBASE
        ldiq s1, ARCS
        ldiq t0, 1640531527
        clr  s3
        clr  t5                 ; chain value

walk:   mulqi t0, t0, 1103515245
        addqi t0, t0, 12345
        andi t1, t0, 3
        bne  t1, indep
        addq t1, t0, t5         ; 1/4 of walks: address depends on load
indep:  slli t2, t1, 3
        andi t2, t2, BIGMASK
        addq t3, s0, t2
        ldq  t5, 0(t3)          ; cold most of the time
        addq s3, s3, t5
        ldq  t6, 8(t3)          ; spatial neighbour (same line)
        addq s3, s3, t6
        ldq  t9, 16(t3)         ; second neighbour
        addq s3, s3, t9
        ldq  t4, 24(t3)         ; third neighbour
        addq s3, s3, t4
        ; flow update into the small hot region (write traffic)
        ldiq t10, flow
        andi t11, t0, 511
        slli t11, t11, 3
        addq t10, t10, t11
        stq  s3, 0(t10)
        addqi s1, s1, -1
        bne  s1, walk

        andi a0, s3, 1048575
        ldiq v0, 1
        syscall
        clr  v0
        clr  a0
        syscall
        .data
flow:   .space 4096
`

const twolfSrc = `
; twolf: standard-cell placement with an FP annealing acceptance test.
; Mixed call profile: a cost helper is invoked per move (shallow call
; graph), moderate memory traffic.
        .equ  MOVES, 5200
        .text
main:   lda  sp, -16(sp)
        stq  ra, 0(sp)
        ldiq s0, cells
        ldiq s1, MOVES
        ldiq t0, 31415926
        clr  s3
        ldiq t1, 64             ; init cells
        mov  t2, s0
cinit:  slli t3, t1, 4
        stq  t3, 0(t2)
        addqi t2, t2, 8
        addqi t1, t1, -1
        bne  t1, cinit

anneal: mulqi t0, t0, 1103515245
        addqi t0, t0, 12345
        srli t1, t0, 7
        andi t1, t1, 63
        slli t1, t1, 3
        addq a0, s0, t1         ; &cells[a]
        srli t2, t0, 17
        andi t2, t2, 63
        slli t2, t2, 3
        addq a1, s0, t2         ; &cells[b]
        call cost
        ; FP acceptance: exp-free threshold test on the scaled delta
        cvtqt t3, v0
        ldq  t4, temp
        fmul t5, t3, t4
        cvttq t6, t5
        andi t6, t6, 240        ; accept only small scaled deltas (~6%)
        beq  t6, accept
        andi t7, t0, 127
        beq  t7, accept         ; rare uphill move
        br   rejectm
accept: ldq  t8, 0(a0)          ; swap cells
        ldq  t9, 0(a1)
        stq  t9, 0(a0)
        stq  t8, 0(a1)
        addqi s3, s3, 1
rejectm:
        addqi s1, s1, -1
        bne  s1, anneal

        andi a0, s3, 1048575
        ldiq v0, 1
        syscall
        clr  v0
        clr  a0
        syscall

; cost(a0=&cells[a], a1=&cells[b]) = pos[a] - pos[b]
cost:   lda  sp, -16(sp)
        stq  s4, 8(sp)
        ldq  s4, 0(a0)
        ldq  t11, 0(a1)
        subq v0, s4, t11
        ldq  s4, 8(sp)
        lda  sp, 16(sp)
        ret
        .data
temp:   .word 0x3FE0000000000000   ; float64 bits of 0.5
cells:  .space 512
`

const parserSrc = `
; parser: dictionary hash probing with chain walks. Mixed profile:
; a hash helper called per word (call depth 1), pointer-style chain
; scans, data-dependent chain-length branches.
        .equ  WORDS, 5200
        .equ  HSIZE, 128
        .text
main:   lda  sp, -16(sp)
        stq  ra, 0(sp)
        ldiq s0, dict
        ldiq s1, WORDS
        ldiq t0, 161803398
        clr  s3

        ; seed the dictionary chains: dict[i] = (i*7) & 1023
        ldiq t1, HSIZE
        mov  t2, s0
dinit:  mulqi t3, t1, 7
        andi t3, t3, 1023
        stq  t3, 0(t2)
        addqi t2, t2, 8
        addqi t1, t1, -1
        bne  t1, dinit

word:   mulqi t0, t0, 1103515245
        addqi t0, t0, 12345
        mov  a0, t0
        call hash               ; v0 = hash(word)
        andi t1, v0, 127        ; bucket
        slli t1, t1, 3
        addq t2, s0, t1
        ldq  t3, 0(t2)          ; chain head
        ; walk the "chain": up to 4 probes, ends on a data-dependent hit
        ldiq t4, 4
probe:  andi t5, t3, 7
        beq  t5, hit
        srli t3, t3, 3
        addq s3, s3, t3
        addqi t4, t4, -1
        bne  t4, probe
hit:    addq s3, s3, t3
        addqi s1, s1, -1
        bne  s1, word

        andi a0, s3, 1048575
        ldiq v0, 1
        syscall
        clr  v0
        clr  a0
        syscall

; hash(a0) with the classic save idiom; constants recomputed every call
; (program-constant reuse fodder, paper §2.2).
hash:   lda  sp, -16(sp)
        stq  s5, 8(sp)
        mulqi t8, a0, 40503
        srli t9, t8, 7
        xor  s5, t8, t9
        mov  v0, s5
        ldq  s5, 8(sp)
        lda  sp, 16(sp)
        ret
        .data
dict:   .space 1024
`
