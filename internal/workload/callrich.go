package workload

import "fmt"

// Call-rich benchmarks: crafty, gcc, gap, vortex, eon.{c,k,r},
// perl.{d,s}. These drive the paper's extension-2 and -3 wins: deep call
// graphs give the call-depth index distribution power, and dense
// save/restore idioms feed reverse integration.

func init() {
	register(Benchmark{
		Name:        "crafty",
		Class:       "call-rich",
		Description: "alpha-beta game-tree search: deep recursion, repeated in-function subexpressions, global counters that mis-integrate",
		Source:      craftySrc,
	})
	register(Benchmark{
		Name:        "gcc",
		Class:       "call-rich",
		Description: "recursive expression-tree walk over an in-memory binary tree",
		Source:      gccSrc,
	})
	register(Benchmark{
		Name:        "gap",
		Class:       "call-rich",
		Description: "bytecode interpreter: jump-table dispatch to small save/restore handlers",
		Source:      gapSrc,
	})
	register(Benchmark{
		Name:        "vortex",
		Class:       "call-rich",
		Description: "OO-database transactions: lookup/validate/copy call chains, ~45% loads+stores",
		Source:      vortexSrc,
	})
	register(Benchmark{
		Name:        "eon.c",
		Class:       "call-rich",
		Description: "ray-march (cook view): per-pixel shade/intersect FP call chain",
		Source:      eonSrc(701, 3, 5),
	})
	register(Benchmark{
		Name:        "eon.k",
		Class:       "call-rich",
		Description: "ray-march (kajiya view): more objects per ray",
		Source:      eonSrc(523, 4, 9),
	})
	register(Benchmark{
		Name:        "eon.r",
		Class:       "call-rich",
		Description: "ray-march (rushmeier view): fewer, costlier rays",
		Source:      eonSrc(811, 5, 13),
	})
	register(Benchmark{
		Name:        "perl.d",
		Class:       "call-rich",
		Description: "interpreter (diffmail script): arithmetic-heavy opcode mix, two-deep handler calls",
		Source:      perlSrc(4600, 7),
	})
	register(Benchmark{
		Name:        "perl.s",
		Class:       "call-rich",
		Description: "interpreter (splitmail script): hash/memory-heavy opcode mix",
		Source:      perlSrc(4200, 3),
	})
}

const craftySrc = `
; crafty: alpha-beta search over a synthetic game tree. Deep recursion
; (depth 9), register saves at every node, two static instances of the
; same subexpression inside search (opcode-indexing fodder), and a global
; node counter in memory whose loads mis-integrate (stale after the
; increment) until the LISP learns them.
        .equ  TOPS, 16
        .equ  DEPTH, 9
        .text
main:   lda  sp, -32(sp)
        stq  ra, 0(sp)
        stq  s0, 8(sp)
        stq  s1, 16(sp)
        ldiq s0, TOPS
        ldiq s1, 271828
        clr  s2
top:    mulqi s1, s1, 1103515245
        addqi s1, s1, 12345
        andi a0, s1, 65535      ; key
        ldiq a1, DEPTH
        call search
        addq s2, s2, v0
        addqi s0, s0, -1
        bne  s0, top
        andi a0, s2, 1048575
        ldiq v0, 1
        syscall
        clr  v0
        clr  a0
        syscall

; search(a0=key, a1=depth) -> v0 = subtree score
search: bne  a1, internal
        ; leaf: probe the transposition table, update the node counter
        ldiq t0, htab
        andi t1, a0, 63
        slli t1, t1, 3
        addq t2, t0, t1
        ldq  t3, 0(t2)          ; ttable probe
        cmpeq t4, t3, a0
        bne  t4, tthit
        stq  a0, 0(t2)          ; install
tthit:  ldq  t5, nodes          ; global counter: mis-integration source
        addqi t5, t5, 1
        stq  t5, nodes
        andi v0, a0, 255
        ret
internal:
        lda  sp, -48(sp)
        stq  ra, 0(sp)
        stq  s0, 8(sp)
        stq  s1, 16(sp)
        stq  s2, 24(sp)
        stq  s5, 32(sp)
        mov  s0, a0             ; key
        mov  s1, a1             ; depth
        clr  s2
        ; generate both child keys up front: two static instances of the
        ; same subexpression on the same s0 mapping (+opcode reuse), and
        ; likewise for the masking AND
        slli t0, s0, 1          ; instance 1
        addqi a0, t0, 1
        andi a0, a0, 65535
        slli t2, s0, 1          ; instance 2: integrates instance 1 under
        addqi s5, t2, 5         ; opcode indexing
        andi s5, s5, 65535
        subqi a1, s1, 1
        call search
        addq s2, s2, v0
        ; alpha-beta prune: data-dependent on score and key
        xor  t1, v0, s0
        andi t1, t1, 7
        beq  t1, cut
        ; child 1
        mov  a0, s5
        subqi a1, s1, 1
        call search
        mulqi s2, s2, 5         ; non-cancelling score mix
        subq s2, s2, v0
cut:    addq v0, s2, s0
        andi v0, v0, 16383
        ldq  s5, 32(sp)
        ldq  s2, 24(sp)
        ldq  s1, 16(sp)
        ldq  s0, 8(sp)
        ldq  ra, 0(sp)
        lda  sp, 48(sp)
        ret
        .data
htab:   .space 512
nodes:  .word 0
`

const gccSrc = `
; gcc: recursive walk over a 1023-node binary expression tree stored in
; memory (24-byte nodes: left, right, value). Call-rich with pointer
; loads; the tree is re-walked after perturbing node values.
        .equ  NODES, 1023
        .equ  WALKS, 11
        .text
main:   lda  sp, -32(sp)
        stq  ra, 0(sp)
        stq  s0, 8(sp)
        stq  s1, 16(sp)
        ldiq s0, tree
        ldiq s1, WALKS
        clr  s2
        ldiq t0, 13579

        ; build the tree: node i at tree+24i; children 2i+1, 2i+2
        clr  t1                 ; i
build:  mulqi t2, t1, 24
        addq t3, s0, t2         ; &node[i]
        slli t4, t1, 1
        addqi t5, t4, 1         ; left index
        cmplti t6, t5, NODES
        beq  t6, noleft
        mulqi t7, t5, 24
        addq t7, s0, t7
        br   setl
noleft: clr  t7
setl:   stq  t7, 0(t3)
        addqi t5, t4, 2         ; right index
        cmplti t6, t5, NODES
        beq  t6, noright
        mulqi t8, t5, 24
        addq t8, s0, t8
        br   setr
noright:
        clr  t8
setr:   stq  t8, 8(t3)
        mulqi t0, t0, 69069
        addqi t0, t0, 1
        andi t9, t0, 1023
        stq  t9, 16(t3)
        addqi t1, t1, 1
        cmplti t6, t1, NODES
        bne  t6, build

walks:  mov  a0, s0
        call walk
        addq s2, s2, v0
        ; perturb one node value
        mulqi t0, t0, 1103515245
        addqi t0, t0, 12345
        andi t1, t0, 1023
        mulqi t1, t1, 24
        addq t2, s0, t1
        andi t3, t0, 511
        stq  t3, 16(t2)
        addqi s1, s1, -1
        bne  s1, walks

        andi a0, s2, 1048575
        ldiq v0, 1
        syscall
        clr  v0
        clr  a0
        syscall

; walk(a0=node) -> v0 = value + walk(left) - walk(right)
walk:   bne  a0, descend
        clr  v0
        ret
descend:
        lda  sp, -32(sp)
        stq  ra, 0(sp)
        stq  s3, 8(sp)
        stq  s4, 16(sp)
        mov  s3, a0
        ldq  s4, 16(s3)         ; value
        ldq  a0, 0(s3)          ; left
        call walk
        addq s4, s4, v0
        ldq  a0, 8(s3)          ; right
        call walk
        subq s4, s4, v0
        mov  v0, s4
        ldq  s4, 16(sp)
        ldq  s3, 8(sp)
        ldq  ra, 0(sp)
        lda  sp, 32(sp)
        ret
        .data
tree:   .space 24576
`

const gapSrc = `
; gap: bytecode interpreter. The dispatch loop loads an opcode, looks up
; a handler in a jump table and calls it indirectly (BTB-mispredicting),
; and every handler opens a frame and saves registers: dense reverse
; integration fodder.
        .equ  STEPS, 7000
        .text
main:   lda  sp, -32(sp)
        stq  ra, 0(sp)
        stq  s0, 8(sp)
        stq  s1, 16(sp)
        ldiq s0, code
        ldiq s1, STEPS
        clr  s2                 ; accumulator
        ldiq t0, 24681357

        ; generate a 256-op bytecode program
        ldiq t1, 256
        mov  t2, s0
cgen:   mulqi t0, t0, 1103515245
        addqi t0, t0, 12345
        srli t3, t1, 4          ; runs of 16 identical ops...
        andi t3, t3, 3
        srli t4, t0, 11
        andi t4, t4, 7
        bne  t4, keepop         ; ...with 1-in-8 random replacements
        srli t3, t0, 3
        andi t3, t3, 3
keepop: stq  t3, 0(t2)
        addqi t2, t2, 8
        addqi t1, t1, -1
        bne  t1, cgen

        clr  s3                 ; vpc
step:   andi t1, s3, 255
        slli t1, t1, 3
        addq t2, s0, t1
        ldq  t3, 0(t2)          ; opcode
        slli t4, t3, 3
        ldiq t5, jt
        addq t6, t5, t4
        ldq  pv, 0(t6)          ; handler address
        mov  a0, s2
        jsr  (pv)
        mov  s2, v0
        addqi s3, s3, 1
        addqi s1, s1, -1
        bne  s1, step

        andi a0, s2, 1048575
        ldiq v0, 1
        syscall
        clr  v0
        clr  a0
        syscall

; handlers: op(a0=acc) -> v0
hadd:   lda  sp, -16(sp)
        stq  s4, 8(sp)
        ldiq s4, 17             ; program constant per invocation
        addq v0, a0, s4
        ldq  s4, 8(sp)
        lda  sp, 16(sp)
        ret
hxor:   lda  sp, -16(sp)
        stq  s4, 8(sp)
        ldiq s4, 2989
        xor  v0, a0, s4
        ldq  s4, 8(sp)
        lda  sp, 16(sp)
        ret
hshift: lda  sp, -16(sp)
        stq  s4, 8(sp)
        srli s4, a0, 3
        addq v0, a0, s4
        ldq  s4, 8(sp)
        lda  sp, 16(sp)
        ret
hmem:   lda  sp, -16(sp)
        stq  s4, 8(sp)
        ldiq s4, scratch
        stq  a0, 0(s4)
        ldq  v0, 0(s4)
        addqi v0, v0, 1
        ldq  s4, 8(sp)
        lda  sp, 16(sp)
        ret
        .data
jt:     .word hadd, hxor, hshift, hmem
code:   .space 2048
scratch: .space 8
`

const vortexSrc = `
; vortex: object-database transactions. main -> txn -> lookup/validate/
; copy, each with full save/restore prologues; record field copies make
; loads+stores ~45%% of the mix, as in the real vortex.
        .equ  TXNS, 3600
        .text
main:   lda  sp, -32(sp)
        stq  ra, 0(sp)
        stq  s0, 8(sp)
        stq  s1, 16(sp)
        ldiq s0, TXNS
        ldiq s1, 998877
        clr  s2

        ; init the record store: 4096 records x 4 fields (128KB: misses L1)
        ldiq t1, 16384
        ldiq t2, recs
rinit:  mulqi s1, s1, 1103515245
        addqi s1, s1, 12345
        andi t3, s1, 4095
        stq  t3, 0(t2)
        addqi t2, t2, 8
        addqi t1, t1, -1
        bne  t1, rinit

txns:   mulqi s1, s1, 69069
        addqi s1, s1, 1
        andi a0, s1, 4095       ; record id
        call txn
        addq s2, s2, v0
        addqi s0, s0, -1
        bne  s0, txns

        andi a0, s2, 1048575
        ldiq v0, 1
        syscall
        clr  v0
        clr  a0
        syscall

; txn(a0=id): lookup, validate, copy out
txn:    lda  sp, -32(sp)
        stq  ra, 0(sp)
        stq  s3, 8(sp)
        stq  s4, 16(sp)
        mov  s3, a0
        call lookup             ; v0 = &rec
        mov  s4, v0
        mov  a0, s4
        call validate           ; v0 = 0/1
        beq  v0, txdone
        mov  a0, s4
        call copyrec            ; v0 = field checksum
        ; audit: re-read two fields, then re-check them (two static
        ; instances of the same load on the same record mapping:
        ; opcode-indexing integration fodder)
        ldq  t4, 0(s4)
        ldq  t5, 8(s4)
        addq v0, v0, t4
        ldq  t6, 0(s4)
        ldq  t7, 8(s4)
        xor  t8, t5, t7
        addq v0, v0, t8
        addq v0, v0, t6
txdone: ldq  s4, 16(sp)
        ldq  s3, 8(sp)
        ldq  ra, 0(sp)
        lda  sp, 32(sp)
        ret

; lookup(a0=id): walk a 3-hop index chain (dependent loads), then
; return the record address
lookup: lda  sp, -16(sp)
        stq  s5, 8(sp)
        ldiq s5, recs           ; per-invocation constant
        slli t0, a0, 5          ; 32 bytes per record
        addq t1, s5, t0
        ldq  t2, 0(t1)          ; hop 1: field as next index
        andi t2, t2, 4095
        slli t2, t2, 5
        addq t3, s5, t2
        ldq  t4, 0(t3)          ; hop 2
        andi t4, t4, 4095
        slli t4, t4, 5
        addq v0, s5, t4
        ldq  s5, 8(sp)
        lda  sp, 16(sp)
        ret

; validate(a0=&rec) -> parity-ish acceptance
validate:
        lda  sp, -16(sp)
        stq  s5, 8(sp)
        ldq  s5, 0(a0)
        ldq  t0, 8(a0)
        xor  t1, s5, t0
        andi v0, t1, 1
        ldq  s5, 8(sp)
        lda  sp, 16(sp)
        ret

; copyrec(a0=&rec): copy 4 fields to the out buffer, return their sum
copyrec:
        lda  sp, -16(sp)
        stq  s5, 8(sp)
        ldiq s5, outbuf
        ldq  t0, 0(a0)
        stq  t0, 0(s5)
        ldq  t1, 8(a0)
        stq  t1, 8(s5)
        ldq  t2, 16(a0)
        stq  t2, 16(s5)
        ldq  t3, 24(a0)
        stq  t3, 24(s5)
        addq v0, t0, t1
        addq v0, v0, t2
        addq v0, v0, t3
        ldq  s5, 8(sp)
        lda  sp, 16(sp)
        ret
        .data
recs:   .space 131072
outbuf: .space 32
`

// eonSrc parameterizes the three eon views: seed, objects per ray, and
// the light constant.
func eonSrc(seed, objects, light int) string {
	return fmt.Sprintf(`
; eon: ray-march renderer. Per-pixel shade() call; shade intersects
; `+"`objects`"+` spheres with FP arithmetic, loading vector data and
; storing the pixel. Very call-rich with a high load/store fraction.
        .equ  PIXELS, 2600
        .text
main:   lda  sp, -32(sp)
        stq  ra, 0(sp)
        stq  s0, 8(sp)
        stq  s1, 16(sp)
        ldiq s0, PIXELS
        ldiq s1, %d
        clr  s2

        ; object table: %d spheres x 3 coords
        ldiq t1, %d
        ldiq t2, objs
oinit:  mulqi s1, s1, 1103515245
        addqi s1, s1, 12345
        andi t3, s1, 255
        cvtqt t4, t3
        stq  t4, 0(t2)
        addqi t2, t2, 8
        addqi t1, t1, -1
        bne  t1, oinit

pixel:  mulqi s1, s1, 69069
        addqi s1, s1, 1
        xor  a0, s1, s2         ; ray id depends on previous shade result
        andi a0, a0, 1023
        call shade
        addq s2, s2, v0
        addqi s0, s0, -1
        bne  s0, pixel

        andi a0, s2, 1048575
        ldiq v0, 1
        syscall
        clr  v0
        clr  a0
        syscall

; shade(a0=ray) -> v0: intersect objects, accumulate FP shading
shade:  lda  sp, -48(sp)
        stq  ra, 0(sp)
        stq  s3, 8(sp)
        stq  s4, 16(sp)
        stq  s5, 24(sp)
        mov  s3, a0
        andi s4, a0, 1          ; ray-dependent object count defeats the
        addqi s4, s4, %d        ; constant-chain collapse
        clr  s5
        cvtqt s5, s5            ; FP accumulator (serial across objects)
nextobj:
        subqi t0, s4, 1
        mulqi t1, t0, 24
        mov  a0, s3
        mov  a1, t1             ; object offset
        mov  a2, s5             ; running FP accumulator
        call isect
        mov  s5, v0             ; serial FP dependence chain
        addqi s4, s4, -1
        bne  s4, nextobj
        cvttq s5, s5
        ; light model: one FP multiply on the accumulated hit metric
        cvtqt t2, s5
        ldq  t3, lightk
        fmul t4, t2, t3
        cvttq t5, t4
        andi t5, t5, 65535
        addqi v0, t5, %d
        ldq  s5, 24(sp)
        ldq  s4, 16(sp)
        ldq  s3, 8(sp)
        ldq  ra, 0(sp)
        lda  sp, 48(sp)
        ret

; isect(a0=ray, a1=objoff, a2=FP acc) -> updated FP acc
isect:  lda  sp, -16(sp)
        stq  s5, 8(sp)
        ldiq s5, objs
        addq t6, s5, a1
        ldq  t7, 0(t6)          ; cx
        ldq  t8, 8(t6)          ; cy
        ldq  t9, 16(t6)         ; cz
        cvtqt t10, a0
        fsub t11, t10, t7
        fmul t11, t11, t11
        fadd t11, t11, t8
        fmul t11, t11, t9
        fadd v0, a2, t11        ; serial accumulate (latency chain)
        cvttq t4, t11
        andi t4, t4, 4095
        ; write the partial result (store traffic, as in eon)
        ldiq t5, partials
        andi t3, a0, 63
        slli t3, t3, 3
        addq t5, t5, t3
        stq  t4, 0(t5)
        ldq  s5, 8(sp)
        lda  sp, 16(sp)
        ret
        .data
lightk: .word 0x3FD0000000000000   ; float64 bits of 0.25
objs:   .space 1024
partials: .space 512
`, seed, objects, objects*3, objects, light)
}

// perlSrc parameterizes the two perl scripts: step count and opcode-mix
// rotation.
func perlSrc(steps, mix int) string {
	return fmt.Sprintf(`
; perl: opcode interpreter with two-deep handler call chains
; (dispatch -> handler -> helper). Handlers save callee registers and
; call string/number helpers: deep call-depth distribution plus dense
; save/restore traffic.
        .equ  STEPS, %d
        .text
main:   lda  sp, -32(sp)
        stq  ra, 0(sp)
        stq  s0, 8(sp)
        stq  s1, 16(sp)
        ldiq s0, STEPS
        ldiq s1, 11223344
        clr  s2
        clr  s3                 ; vpc

step:   mulqi s1, s1, 1103515245
        addqi s1, s1, 12345
        srli t0, s1, %d
        andi t0, t0, 3
        slli t0, t0, 3
        ldiq t1, jt
        addq t1, t1, t0
        ldq  pv, 0(t1)
        mov  a0, s2
        mov  a1, s3
        jsr  (pv)
        mov  s2, v0
        addqi s3, s3, 1
        addqi s0, s0, -1
        bne  s0, step

        andi a0, s2, 1048575
        ldiq v0, 1
        syscall
        clr  v0
        clr  a0
        syscall

; op handlers: each opens a frame and calls a helper
opnum:  lda  sp, -32(sp)
        stq  ra, 0(sp)
        stq  s4, 8(sp)
        mov  s4, a0
        addqi a0, a1, 3
        call numhelp
        addq v0, v0, s4
        ldq  s4, 8(sp)
        ldq  ra, 0(sp)
        lda  sp, 32(sp)
        ret
opstr:  lda  sp, -32(sp)
        stq  ra, 0(sp)
        stq  s4, 8(sp)
        mov  s4, a0
        andi a0, a1, 63
        call strhelp
        xor  v0, v0, s4
        ldq  s4, 8(sp)
        ldq  ra, 0(sp)
        lda  sp, 32(sp)
        ret
ophash: lda  sp, -32(sp)
        stq  ra, 0(sp)
        stq  s4, 8(sp)
        mov  s4, a0
        mov  a0, a1
        call hashhelp
        addq v0, v0, s4
        ldq  s4, 8(sp)
        ldq  ra, 0(sp)
        lda  sp, 32(sp)
        ret
opnop:  addqi v0, a0, 1
        ret

; helpers (call depth 2)
numhelp:
        lda  sp, -16(sp)
        stq  s5, 8(sp)
        ldiq s5, 9973
        mulq t2, a0, s5
        srli t3, t2, 5
        xor  v0, t2, t3
        ldq  s5, 8(sp)
        lda  sp, 16(sp)
        ret
strhelp:
        lda  sp, -16(sp)
        stq  s5, 8(sp)
        ldiq s5, strbuf
        slli t2, a0, 3
        andi t2, t2, 504
        addq t3, s5, t2
        ldq  t4, 0(t3)          ; read cell
        addqi t4, t4, 1
        stq  t4, 0(t3)          ; write back
        mov  v0, t4
        ldq  s5, 8(sp)
        lda  sp, 16(sp)
        ret
hashhelp:
        lda  sp, -16(sp)
        stq  s5, 8(sp)
        ldiq s5, hbuf
        andi t2, a0, 127
        slli t2, t2, 3
        addq t3, s5, t2
        ldq  t4, 0(t3)
        xor  v0, t4, a0
        stq  v0, 0(t3)
        ldq  s5, 8(sp)
        lda  sp, 16(sp)
        ret
        .data
jt:     .word opnum, opstr, ophash, opnop
strbuf: .space 512
hbuf:   .space 1024
`, steps, mix)
}
