package workload

import (
	"fmt"
	"runtime"
	"sync"

	"rix/internal/emu"
	"rix/internal/prog"
)

// Built pairs an assembled program with a factory for independent golden
// trace sources. Holding a Built costs O(program) memory, not O(trace):
// each Source call mints a fresh stream, so concurrent simulations of the
// same workload each get their own cursor.
type Built struct {
	Prog   *prog.Program
	DynLen int // validated dynamic instruction count

	open func() emu.TraceSource
}

// Source returns a fresh, independent golden trace source positioned at
// the first instruction. Every caller gets its own cursor.
func (b Built) Source() emu.TraceSource {
	if b.open == nil {
		return emu.FromSlice(nil)
	}
	return b.open()
}

// Materialize drains one source into a slice sized from the dynamic
// length hint — the adapter for tests and small traces.
func (b Built) Materialize() ([]emu.TraceRec, error) {
	return emu.Materialize(b.Source())
}

// BuiltFromTrace wraps an already-materialized trace as a Built; sources
// minted from it replay the slice.
func BuiltFromTrace(p *prog.Program, recs []emu.TraceRec) Built {
	return Built{
		Prog:   p,
		DynLen: len(recs),
		open:   func() emu.TraceSource { return emu.FromSlice(recs) },
	}
}

// BuildFunc produces a built workload by name. The default implementation
// assembles the registered benchmark and validates it with one streaming
// pass.
type BuildFunc func(name string) (Built, error)

// RegistryBuild is the default BuildFunc: it looks the benchmark up in the
// package registry and builds it.
func RegistryBuild(name string) (Built, error) {
	b, ok := ByName(name)
	if !ok {
		return Built{}, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	return b.Build()
}

// slot memoizes one workload build. The sync.Once guarantees the build
// runs exactly once even when many goroutines request the same name.
type slot struct {
	once  sync.Once
	built Built
	err   error
}

// Builder builds workloads on demand, memoizing each result. It is safe
// for concurrent use: concurrent requests for the same name share one
// build, and BuildAll fans distinct names out across CPUs. Memoization
// holds programs and validation metadata only; golden traces stream.
type Builder struct {
	build BuildFunc

	mu    sync.Mutex
	slots map[string]*slot
}

// NewBuilder returns a Builder that assembles registered benchmarks.
func NewBuilder() *Builder { return NewBuilderFunc(RegistryBuild) }

// NewBuilderFunc returns a Builder with a custom build function — the
// hook used by tests and by custom (unregistered) workload sources.
func NewBuilderFunc(fn BuildFunc) *Builder {
	return &Builder{build: fn, slots: make(map[string]*slot)}
}

func (b *Builder) slotFor(name string) *slot {
	b.mu.Lock()
	defer b.mu.Unlock()
	s, ok := b.slots[name]
	if !ok {
		s = &slot{}
		b.slots[name] = s
	}
	return s
}

// Get returns the built workload, building it on first use.
func (b *Builder) Get(name string) (Built, error) {
	s := b.slotFor(name)
	s.once.Do(func() { s.built, s.err = b.build(name) })
	return s.built, s.err
}

// BuildAll builds the named workloads with at most parallel concurrent
// builds (<=0 means NumCPU). Already-built names cost nothing; the first
// error is returned after all builds settle.
func (b *Builder) BuildAll(names []string, parallel int) error {
	if parallel <= 0 {
		parallel = runtime.NumCPU()
	}
	sem := make(chan struct{}, parallel)
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, n := range names {
		sem <- struct{}{} // acquire before spawning: bounds live goroutines
		wg.Add(1)
		go func(i int, n string) {
			defer wg.Done()
			defer func() { <-sem }()
			_, errs[i] = b.Get(n)
		}(i, n)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("workload: build %s: %w", names[i], err)
		}
	}
	return nil
}
