package workload

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"rix/internal/emu"
	"rix/internal/prog"
)

// Built pairs an assembled program with a factory for independent golden
// trace sources. Holding a Built costs O(program) memory, not O(trace):
// each Source call mints a fresh stream, so concurrent simulations of the
// same workload each get their own cursor.
type Built struct {
	Prog   *prog.Program
	DynLen int // validated dynamic instruction count

	open func() emu.TraceSource
}

// Source returns a fresh, independent golden trace source positioned at
// the first instruction. Every caller gets its own cursor.
func (b Built) Source() emu.TraceSource {
	if b.open == nil {
		return emu.FromSlice(nil)
	}
	return b.open()
}

// Materialize drains one source into a slice sized from the dynamic
// length hint — the adapter for tests and small traces.
func (b Built) Materialize() ([]emu.TraceRec, error) {
	return emu.Materialize(b.Source())
}

// BuiltFromTrace wraps an already-materialized trace as a Built; sources
// minted from it replay the slice.
func BuiltFromTrace(p *prog.Program, recs []emu.TraceRec) Built {
	return Built{
		Prog:   p,
		DynLen: len(recs),
		open:   func() emu.TraceSource { return emu.FromSlice(recs) },
	}
}

// BuiltFromProgram wraps an ad-hoc (unregistered, unvalidated) program
// as a Built whose sources stream from the emulator with the given
// instruction budget (0 means MaxInstrs). DynLen is unknown (0) until a
// source completes a pass.
func BuiltFromProgram(p *prog.Program, maxInstrs uint64) Built {
	if maxInstrs == 0 {
		maxInstrs = MaxInstrs
	}
	return Built{
		Prog: p,
		open: func() emu.TraceSource { return emu.Stream(p, maxInstrs) },
	}
}

// BuildFunc produces a built workload by name, honoring ctx
// cancellation. The default implementation assembles the registered
// benchmark and validates it with one streaming pass.
type BuildFunc func(ctx context.Context, name string) (Built, error)

// RegistryBuild is the default BuildFunc: it looks the benchmark up in the
// package registry and builds it.
func RegistryBuild(ctx context.Context, name string) (Built, error) {
	b, ok := ByName(name)
	if !ok {
		return Built{}, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	return b.BuildContext(ctx)
}

// slot memoizes one workload build. The sync.Once guarantees the build
// runs exactly once even when many goroutines request the same name.
type slot struct {
	once  sync.Once
	built Built
	err   error
}

// Builder builds workloads on demand, memoizing each result. It is safe
// for concurrent use: concurrent requests for the same name share one
// build, and BuildAll fans distinct names out across CPUs. Memoization
// holds programs and validation metadata only; golden traces stream.
type Builder struct {
	build BuildFunc

	mu    sync.Mutex
	slots map[string]*slot
}

// NewBuilder returns a Builder that assembles registered benchmarks.
func NewBuilder() *Builder { return NewBuilderFunc(RegistryBuild) }

// NewBuilderFunc returns a Builder with a custom build function — the
// hook used by tests and by custom (unregistered) workload sources.
func NewBuilderFunc(fn BuildFunc) *Builder {
	return &Builder{build: fn, slots: make(map[string]*slot)}
}

func (b *Builder) slotFor(name string) *slot {
	b.mu.Lock()
	defer b.mu.Unlock()
	s, ok := b.slots[name]
	if !ok {
		s = &slot{}
		b.slots[name] = s
	}
	return s
}

// Get returns the built workload, building it on first use. A build that
// fails only because a context was cancelled is not memoized: the
// poisoned slot is dropped, callers whose own context is still live
// retry under a fresh slot (a waiter that joined a build bound to some
// other caller's since-cancelled context must not inherit that
// cancellation), and only callers whose own context ended see the
// context error. Genuine build errors stay cached.
func (b *Builder) Get(ctx context.Context, name string) (Built, error) {
	for {
		s := b.slotFor(name)
		s.once.Do(func() { s.built, s.err = b.build(ctx, name) })
		if s.err == nil || (!errors.Is(s.err, context.Canceled) && !errors.Is(s.err, context.DeadlineExceeded)) {
			return s.built, s.err
		}
		b.mu.Lock()
		if b.slots[name] == s {
			delete(b.slots, name)
		}
		b.mu.Unlock()
		if err := ctx.Err(); err != nil {
			return Built{}, err
		}
		// Our context is live: the cancellation belonged to whichever
		// caller won the slot's once — retry. Each iteration either wins
		// the fresh slot with this live context or joins another build;
		// progress is guaranteed once any live-context build completes.
	}
}

// BuildAll builds the named workloads with at most parallel concurrent
// builds (<=0 means NumCPU). Already-built names cost nothing; the first
// error is returned after all builds settle. Cancelling ctx stops
// scheduling new builds and cancels the in-flight ones.
func (b *Builder) BuildAll(ctx context.Context, names []string, parallel int) error {
	if parallel <= 0 {
		parallel = runtime.NumCPU()
	}
	sem := make(chan struct{}, parallel)
	errs := make([]error, len(names))
	done := ctx.Done()
	var wg sync.WaitGroup
sched:
	for i, n := range names {
		select {
		case <-done: // stop scheduling once cancelled
			errs[i] = ctx.Err()
			break sched
		case sem <- struct{}{}: // acquire before spawning: bounds live goroutines
		}
		wg.Add(1)
		go func(i int, n string) {
			defer wg.Done()
			defer func() { <-sem }()
			_, errs[i] = b.Get(ctx, n)
		}(i, n)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return err
			}
			return fmt.Errorf("workload: build %s: %w", names[i], err)
		}
	}
	return nil
}
