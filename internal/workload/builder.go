package workload

import (
	"fmt"
	"runtime"
	"sync"

	"rix/internal/emu"
	"rix/internal/prog"
)

// Built pairs an assembled program with its golden trace.
type Built struct {
	Prog  *prog.Program
	Trace []emu.TraceRec
}

// BuildFunc produces a built workload by name. The default implementation
// assembles the registered benchmark and generates its golden trace.
type BuildFunc func(name string) (*prog.Program, []emu.TraceRec, error)

// RegistryBuild is the default BuildFunc: it looks the benchmark up in the
// package registry and builds it.
func RegistryBuild(name string) (*prog.Program, []emu.TraceRec, error) {
	b, ok := ByName(name)
	if !ok {
		return nil, nil, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	return b.Build()
}

// slot memoizes one workload build. The sync.Once guarantees the build
// runs exactly once even when many goroutines request the same name.
type slot struct {
	once  sync.Once
	prog  *prog.Program
	trace []emu.TraceRec
	err   error
}

// Builder builds workloads on demand, memoizing each result. It is safe
// for concurrent use: concurrent requests for the same name share one
// build, and BuildAll fans distinct names out across CPUs.
type Builder struct {
	build BuildFunc

	mu    sync.Mutex
	slots map[string]*slot
}

// NewBuilder returns a Builder that assembles registered benchmarks.
func NewBuilder() *Builder { return NewBuilderFunc(RegistryBuild) }

// NewBuilderFunc returns a Builder with a custom build function — the
// hook used by tests and by custom (unregistered) workload sources.
func NewBuilderFunc(fn BuildFunc) *Builder {
	return &Builder{build: fn, slots: make(map[string]*slot)}
}

func (b *Builder) slotFor(name string) *slot {
	b.mu.Lock()
	defer b.mu.Unlock()
	s, ok := b.slots[name]
	if !ok {
		s = &slot{}
		b.slots[name] = s
	}
	return s
}

// Get returns the built workload, building it on first use.
func (b *Builder) Get(name string) (*prog.Program, []emu.TraceRec, error) {
	s := b.slotFor(name)
	s.once.Do(func() { s.prog, s.trace, s.err = b.build(name) })
	return s.prog, s.trace, s.err
}

// BuildAll builds the named workloads with at most parallel concurrent
// builds (<=0 means NumCPU). Already-built names cost nothing; the first
// error is returned after all builds settle.
func (b *Builder) BuildAll(names []string, parallel int) error {
	if parallel <= 0 {
		parallel = runtime.NumCPU()
	}
	sem := make(chan struct{}, parallel)
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, n := range names {
		sem <- struct{}{} // acquire before spawning: bounds live goroutines
		wg.Add(1)
		go func(i int, n string) {
			defer wg.Done()
			defer func() { <-sem }()
			_, _, errs[i] = b.Get(n)
		}(i, n)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("workload: build %s: %w", names[i], err)
		}
	}
	return nil
}
