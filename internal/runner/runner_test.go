package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rix/internal/emu"
	"rix/internal/pipeline"
	"rix/internal/prog"
	"rix/internal/run"
	"rix/internal/sim"
	"rix/internal/stats"
	"rix/internal/workload"
)

var bg = context.Background()

// testSource builds a counting workload source: every build returns a
// program carrying its name, and buildCount records how often each name
// was actually built (memoization should pin this at one).
func testSource(counts *sync.Map) *workload.Builder {
	return workload.NewBuilderFunc(func(ctx context.Context, name string) (workload.Built, error) {
		if v, _ := counts.LoadOrStore(name, new(int64)); true {
			atomic.AddInt64(v.(*int64), 1)
		}
		time.Sleep(time.Millisecond) // widen the double-build race window
		return workload.BuiltFromTrace(&prog.Program{Name: name}, make([]emu.TraceRec, 100)), nil
	})
}

// testEngine wires a stub simulator that tags each result with a value
// derived from (workload, IT entries), so collectors can verify they
// received the right cell regardless of completion order.
func testEngine(names []string, counts *sync.Map) *Engine {
	e := NewEngineWith(names, testSource(counts))
	e.simulate = func(ctx context.Context, cfg pipeline.Config, p *prog.Program, src emu.TraceSource) (*pipeline.Stats, error) {
		// Finish later cells sooner to scramble completion order.
		time.Sleep(time.Duration(5000/cfg.IT.Entries) * time.Microsecond)
		return &pipeline.Stats{Retired: cellTag(p.Name, cfg.IT.Entries)}, nil
	}
	return e
}

func cellTag(bench string, entries int) uint64 {
	h := uint64(entries)
	for _, c := range bench {
		h = h*131 + uint64(c)
	}
	return h
}

func sizedSpec(id string, entries ...int) Spec {
	s := Spec{ID: id}
	for _, n := range entries {
		s.Configs = append(s.Configs, Config{
			Label: fmt.Sprintf("it%d", n),
			Opt:   sim.Options{ITEntries: n},
		})
	}
	return s
}

func TestRegisterValidation(t *testing.T) {
	collect := func(rs *ResultSet) ([]*stats.Table, error) { return nil, nil }
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"empty id", Spec{Collect: collect, Configs: []Config{{}}}, "empty id"},
		{"no configs", Spec{ID: "t-none", Collect: collect}, "no configs"},
		{"duplicate label", Spec{ID: "t-dup-label", Collect: collect,
			Configs: []Config{{Label: "x"}, {Label: "x"}}}, "duplicate config label"},
		{"unknown integration axis", Spec{ID: "t-axis", Collect: collect,
			Configs: []Config{{Opt: sim.Options{Integration: "warp"}}}}, "unknown integration"},
		{"unknown core axis", Spec{ID: "t-core", Collect: collect,
			Configs: []Config{{Opt: sim.Options{Core: "hyper"}}}}, "unknown core"},
		{"no collector", Spec{ID: "t-nocollect", Configs: []Config{{}}}, "no collector"},
	}
	for _, c := range cases {
		if err := Register(c.spec); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}

	// Unique id per run: the registry is process-global, so a fixed id
	// would collide under go test -count=N.
	goodID := fmt.Sprintf("t-good-%d", time.Now().UnixNano())
	good := Spec{ID: goodID, Description: "test spec", Collect: collect,
		Configs: []Config{{Opt: sim.Options{Integration: sim.IntReverse}}}}
	if err := Register(good); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if err := Register(good); err == nil || !strings.Contains(err.Error(), "duplicate spec") {
		t.Errorf("duplicate id accepted: %v", err)
	}
	s, ok := Lookup(goodID)
	if !ok {
		t.Fatal("registered spec not found")
	}
	// The empty label must have defaulted to the canonical option label.
	if s.Configs[0].Label != "+reverse/lisp" {
		t.Errorf("defaulted label = %q, want %q", s.Configs[0].Label, "+reverse/lisp")
	}
	found := false
	for _, id := range IDs() {
		if id == goodID {
			found = true
		}
	}
	if !found {
		t.Errorf("IDs() = %v missing %s", IDs(), goodID)
	}
}

func TestUnknownSpecAndWorkload(t *testing.T) {
	var counts sync.Map
	e := testEngine([]string{"a"}, &counts)
	if _, err := e.RunSpec(bg, "t-nope"); err == nil || !strings.Contains(err.Error(), "unknown spec") {
		t.Errorf("RunSpec unknown: %v", err)
	}
	if _, err := e.Run(bg, "nope", sim.Options{}); err == nil {
		t.Error("Run with unknown workload accepted")
	}
	if _, err := NewEngine([]string{"not-a-benchmark"}); err == nil {
		t.Error("NewEngine accepted unregistered workload")
	}
	if e, err := NewEngine(nil); err != nil || len(e.Names()) != len(workload.Names()) {
		t.Errorf("NewEngine(nil): %v, names=%d", err, len(e.Names()))
	}
}

func TestLazyMemoizedBuilds(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	var counts sync.Map
	e := testEngine(names, &counts)

	// Creation must not build anything.
	built := 0
	counts.Range(func(_, _ any) bool { built++; return true })
	if built != 0 {
		t.Fatalf("engine built %d workloads eagerly", built)
	}

	// Hammer the engine from several goroutines: overlapping specs plus
	// direct DynLen/Run access, all wanting the same workloads.
	spec := sizedSpec("t-lazy", 64, 128, 256)
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			switch i % 3 {
			case 0:
				if _, err := e.Gather(bg, &spec); err != nil {
					t.Error(err)
				}
			case 1:
				if n := e.DynLen(bg, "b"); n != 100 {
					t.Errorf("DynLen = %d", n)
				}
			case 2:
				if _, err := e.Run(bg, "c", sim.Options{}); err != nil {
					t.Error(err)
				}
			}
		}(i)
	}
	wg.Wait()

	for _, n := range names {
		v, ok := counts.Load(n)
		if !ok {
			t.Errorf("workload %s never built", n)
			continue
		}
		if got := atomic.LoadInt64(v.(*int64)); got != 1 {
			t.Errorf("workload %s built %d times, want exactly 1", n, got)
		}
	}
}

func TestWorkerPoolBound(t *testing.T) {
	var counts sync.Map
	e := testEngine([]string{"a", "b", "c", "d", "e"}, &counts)
	e.Parallel = 3

	var inflight, peak int64
	e.simulate = func(ctx context.Context, cfg pipeline.Config, p *prog.Program, src emu.TraceSource) (*pipeline.Stats, error) {
		n := atomic.AddInt64(&inflight, 1)
		for {
			old := atomic.LoadInt64(&peak)
			if n <= old || atomic.CompareAndSwapInt64(&peak, old, n) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		atomic.AddInt64(&inflight, -1)
		return &pipeline.Stats{}, nil
	}

	spec := sizedSpec("t-pool", 64, 128, 256, 512, 1024, 2048)
	cells := 0
	if err := e.Stream(bg, &spec, func(r Result) error { cells++; return nil }); err != nil {
		t.Fatal(err)
	}
	if want := 5 * 6; cells != want {
		t.Errorf("streamed %d cells, want %d", cells, want)
	}
	if p := atomic.LoadInt64(&peak); p > 3 {
		t.Errorf("peak concurrency %d exceeds Parallel=3", p)
	}
}

func TestDeterministicCollectorOrdering(t *testing.T) {
	names := []string{"zeta", "alpha", "mid"}
	var counts sync.Map
	e := testEngine(names, &counts)

	spec := sizedSpec("t-order", 1024, 64, 256) // label order != completion order
	for trial := 0; trial < 3; trial++ {
		rs, err := e.Gather(bg, &spec)
		if err != nil {
			t.Fatal(err)
		}
		// Bench order follows the engine, label order follows the spec —
		// not completion order.
		if got := strings.Join(rs.Benches(), ","); got != "zeta,alpha,mid" {
			t.Fatalf("bench order %q", got)
		}
		if got := strings.Join(rs.Labels(), ","); got != "it1024,it64,it256" {
			t.Fatalf("label order %q", got)
		}
		// Every cell must hold exactly the stats its (bench, label) key
		// claims, no matter which goroutine finished first.
		for _, b := range rs.Benches() {
			for _, entries := range []int{1024, 64, 256} {
				label := fmt.Sprintf("it%d", entries)
				if got := rs.Get(b, label).Retired; got != cellTag(b, entries) {
					t.Errorf("trial %d: cell (%s,%s) = %d, want %d",
						trial, b, label, got, cellTag(b, entries))
				}
			}
		}
	}
}

func TestStreamErrorPropagation(t *testing.T) {
	var counts sync.Map
	e := testEngine([]string{"a", "b"}, &counts)
	e.simulate = func(ctx context.Context, cfg pipeline.Config, p *prog.Program, src emu.TraceSource) (*pipeline.Stats, error) {
		if p.Name == "b" && cfg.IT.Entries == 128 {
			return nil, fmt.Errorf("boom")
		}
		return &pipeline.Stats{}, nil
	}
	spec := sizedSpec("t-err", 64, 128)
	_, err := e.Gather(bg, &spec)
	if err == nil || !strings.Contains(err.Error(), "boom") || !strings.Contains(err.Error(), "b [it128]") {
		t.Errorf("error = %v, want cell-attributed boom", err)
	}
}

func TestStreamAbortsSchedulingOnError(t *testing.T) {
	var counts sync.Map
	e := testEngine([]string{"a"}, &counts)
	e.Parallel = 1
	var simulated int64
	e.simulate = func(ctx context.Context, cfg pipeline.Config, p *prog.Program, src emu.TraceSource) (*pipeline.Stats, error) {
		atomic.AddInt64(&simulated, 1)
		if cfg.IT.Entries == 64 { // the very first cell fails
			return nil, fmt.Errorf("boom")
		}
		time.Sleep(time.Millisecond)
		return &pipeline.Stats{}, nil
	}
	entries := make([]int, 100)
	for i := range entries {
		entries[i] = 64 + i
	}
	spec := sizedSpec("t-abort", entries...)
	if _, err := e.Gather(bg, &spec); err == nil {
		t.Fatal("expected error")
	}
	// A handful of cells may race past the stop signal, but the bulk of
	// the 100-cell plan must never have been scheduled.
	if n := atomic.LoadInt64(&simulated); n > 30 {
		t.Errorf("%d cells simulated after first-cell failure, want early abort", n)
	}
}

func TestAdHocSpecValidation(t *testing.T) {
	var counts sync.Map
	e := testEngine([]string{"a"}, &counts)
	dup := Spec{ID: "t-adhoc", Configs: []Config{{Label: "x"}, {Label: "x"}}}
	if _, err := e.Gather(bg, &dup); err == nil {
		t.Error("Gather accepted duplicate labels")
	}
	// Labels default without mutating the caller's spec.
	adhoc := Spec{ID: "t-default", Configs: []Config{{Opt: sim.Options{Integration: sim.IntSquash}}}}
	rs, err := e.Gather(bg, &adhoc)
	if err != nil {
		t.Fatal(err)
	}
	if got := rs.Labels()[0]; got != "squash/lisp" {
		t.Errorf("defaulted label = %q", got)
	}
	if adhoc.Configs[0].Label != "" {
		t.Errorf("Gather mutated caller's spec: %q", adhoc.Configs[0].Label)
	}
}

// TestStreamCancellation: cancelling the context mid-matrix aborts
// scheduling, interrupts in-flight cells, surfaces the context error,
// and leaks no worker goroutines.
func TestStreamCancellation(t *testing.T) {
	var counts sync.Map
	e := testEngine([]string{"a", "b", "c"}, &counts)
	e.Parallel = 2

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var simulated int64
	e.simulate = func(ctx context.Context, cfg pipeline.Config, p *prog.Program, src emu.TraceSource) (*pipeline.Stats, error) {
		if atomic.AddInt64(&simulated, 1) == 2 {
			cancel()
		}
		// Every cell honors ctx, as the real pipeline does at its poll
		// boundary.
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(2 * time.Millisecond):
			return &pipeline.Stats{}, nil
		}
	}

	before := runtime.NumGoroutine()
	spec := sizedSpec("t-cancel", 64, 128, 256, 512, 1024, 2048)
	err := e.Stream(ctx, &spec, func(r Result) error { return nil })
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Stream returned %v, want a context.Canceled-wrapping error", err)
	}
	if n := atomic.LoadInt64(&simulated); n > 6 {
		t.Errorf("%d cells simulated after cancellation, want early abort", n)
	}
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutine leak after cancelled Stream: %d before, %d after", before, n)
	}
}

// TestEngineObserverEvents: the engine forwards every cell's lifecycle
// events to its Observer.
func TestEngineObserverEvents(t *testing.T) {
	var counts sync.Map
	e := testEngine([]string{"a", "b"}, &counts)
	var mu sync.Mutex
	seen := map[run.EventKind]int{}
	e.Observer = run.ObserverFunc(func(ev run.Event) {
		mu.Lock()
		defer mu.Unlock()
		seen[ev.Kind]++
	})
	spec := sizedSpec("t-obs", 64, 128)
	if _, err := e.Gather(bg, &spec); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if seen[run.CellStarted] != 4 || seen[run.CellFinished] != 4 {
		t.Errorf("cell events = %v, want 4 started / 4 finished", seen)
	}
}

func TestBenchesForSubset(t *testing.T) {
	var counts sync.Map
	e := testEngine([]string{"a", "b", "c"}, &counts)
	spec := sizedSpec("t-subset", 64)
	spec.Benchmarks = []string{"c", "nope", "a"} // spec order wins; unknowns drop
	rs, err := e.Gather(bg, &spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(rs.Benches(), ","); got != "c,a" {
		t.Errorf("benches = %q, want \"c,a\"", got)
	}
}
