package runner

import (
	"sync"
	"testing"

	"rix/internal/pipeline"
	"rix/internal/run"
	"rix/internal/sim"
)

// TestSampledWindowParallelStress runs real sampled cells through the
// engine pool with both cell-level and window-level parallelism live at
// once — the configuration the race detector needs to see. Every cell's
// stats must equal a sequential (WindowJobs=1) engine's, and the
// observer must witness the two-phase scheduler actually dispatching
// windows.
func TestSampledWindowParallelStress(t *testing.T) {
	if testing.Short() {
		t.Skip("real workload builds + four sampled runs (~10s under -race)")
	}
	sp := &Spec{ID: "window-stress"}
	layout := &sim.Sampling{Interval: 4000, Window: 300, Warmup: 150}
	for _, o := range []sim.Options{
		{Integration: sim.IntNone, Sampling: layout},
		{Integration: sim.IntReverse, Sampling: layout},
	} {
		sp.Configs = append(sp.Configs, Config{Label: o.Label(), Opt: o})
	}

	gather := func(e *Engine) map[string]pipeline.Stats {
		t.Helper()
		rs, err := e.Gather(bg, sp)
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string]pipeline.Stats)
		for _, b := range rs.Benches() {
			for _, l := range rs.Labels() {
				out[b+"/"+l] = *rs.Get(b, l)
			}
		}
		return out
	}

	seqEng, err := NewEngine([]string{"gzip", "crafty"})
	if err != nil {
		t.Fatal(err)
	}
	seqEng.Parallel = 2
	seqEng.WindowJobs = 1
	seq := gather(seqEng)

	parEng, err := NewEngine([]string{"gzip", "crafty"})
	if err != nil {
		t.Fatal(err)
	}
	parEng.Parallel = 4
	parEng.WindowJobs = 3
	var mu sync.Mutex
	var scheduled int
	parEng.Observer = run.ObserverFunc(func(e run.Event) {
		if e.Kind == run.WindowScheduled {
			mu.Lock()
			scheduled++
			mu.Unlock()
		}
	})
	par := gather(parEng)

	if scheduled == 0 {
		t.Error("no WindowScheduled events: the two-phase engine never engaged")
	}
	if len(par) != len(seq) {
		t.Fatalf("%d parallel cells vs %d sequential", len(par), len(seq))
	}
	for k, sst := range seq {
		if pst, ok := par[k]; !ok || pst != sst {
			t.Errorf("cell %s: window-parallel stats diverge from sequential", k)
		}
	}
}

// TestWindowJobsBudgetSplit pins the cells×windows budget arithmetic.
func TestWindowJobsBudgetSplit(t *testing.T) {
	e := &Engine{Parallel: 8}
	for _, tc := range []struct{ cells, want int }{
		{1, 8}, {2, 4}, {3, 2}, {8, 1}, {100, 1}, {0, 8},
	} {
		if got := e.windowJobs(tc.cells); got != tc.want {
			t.Errorf("windowJobs(%d) with Parallel=8: got %d, want %d", tc.cells, got, tc.want)
		}
	}
	e.WindowJobs = 3
	if got := e.windowJobs(5); got != 3 {
		t.Errorf("explicit WindowJobs not honored: got %d", got)
	}
}
