package runner

import (
	"context"
	"sync"
	"testing"
	"time"

	"rix/internal/pipeline"
	"rix/internal/run"
	"rix/internal/sample"
	"rix/internal/sample/procexec"
	"rix/internal/sim"
)

// TestSampledWindowParallelStress runs real sampled cells through the
// engine pool with both cell-level and window-level parallelism live at
// once — the configuration the race detector needs to see. Every cell's
// stats must equal a sequential (WindowJobs=1) engine's, and the
// observer must witness the two-phase scheduler actually dispatching
// windows.
func TestSampledWindowParallelStress(t *testing.T) {
	if testing.Short() {
		t.Skip("real workload builds + four sampled runs (~10s under -race)")
	}
	sp := &Spec{ID: "window-stress"}
	layout := &sample.Sampling{Interval: 4000, Window: 300, Warmup: 150}
	for _, o := range []sim.Options{
		{Integration: sim.IntNone, Sampling: layout},
		{Integration: sim.IntReverse, Sampling: layout},
	} {
		sp.Configs = append(sp.Configs, Config{Label: o.Label(), Opt: o})
	}

	gather := func(e *Engine) map[string]pipeline.Stats {
		t.Helper()
		rs, err := e.Gather(bg, sp)
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string]pipeline.Stats)
		for _, b := range rs.Benches() {
			for _, l := range rs.Labels() {
				out[b+"/"+l] = *rs.Get(b, l)
			}
		}
		return out
	}

	seqEng, err := NewEngine([]string{"gzip", "crafty"})
	if err != nil {
		t.Fatal(err)
	}
	seqEng.Parallel = 2
	seqEng.WindowJobs = 1
	seq := gather(seqEng)

	parEng, err := NewEngine([]string{"gzip", "crafty"})
	if err != nil {
		t.Fatal(err)
	}
	parEng.Parallel = 4
	parEng.WindowJobs = 3
	var mu sync.Mutex
	var scheduled int
	parEng.Observer = run.ObserverFunc(func(e run.Event) {
		if e.Kind == run.WindowScheduled {
			mu.Lock()
			scheduled++
			mu.Unlock()
		}
	})
	par := gather(parEng)

	if scheduled == 0 {
		t.Error("no WindowScheduled events: the two-phase engine never engaged")
	}
	if len(par) != len(seq) {
		t.Fatalf("%d parallel cells vs %d sequential", len(par), len(seq))
	}
	for k, sst := range seq {
		if pst, ok := par[k]; !ok || pst != sst {
			t.Errorf("cell %s: window-parallel stats diverge from sequential", k)
		}
	}
}

// TestCrossProcessEngineParity is the acceptance gate for the
// cross-process executor: a fig4-shaped sampled matrix (baseline plus
// the full-extension preset under realistic-LISP and oracle
// suppression, over gzip and crafty) run through an Executor=proc
// engine — every cell's windows claimed and executed by two worker
// loops over a shared directory — must be bit-identical, cell for cell,
// to the in-process scheduler engine. ci/smoke_worker.sh repeats the
// same comparison across real process boundaries.
func TestCrossProcessEngineParity(t *testing.T) {
	if testing.Short() {
		t.Skip("twelve sampled cells, six of them cross-process (~20s)")
	}
	layout := &sample.Sampling{Interval: 4000, Window: 300, Warmup: 150}
	sp := &Spec{ID: "fig4-proc"}
	for _, o := range []sim.Options{
		{Integration: sim.IntNone, Sampling: layout},
		{Integration: sim.IntReverse, Suppression: sim.SuppressLISP, Sampling: layout},
		{Integration: sim.IntReverse, Suppression: sim.SuppressOracle, Sampling: layout},
	} {
		sp.Configs = append(sp.Configs, Config{Label: o.Label(), Opt: o})
	}

	gather := func(e *Engine) map[string]pipeline.Stats {
		t.Helper()
		rs, err := e.Gather(bg, sp)
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string]pipeline.Stats)
		for _, b := range rs.Benches() {
			for _, l := range rs.Labels() {
				out[b+"/"+l] = *rs.Get(b, l)
			}
		}
		return out
	}

	inEng, err := NewEngine([]string{"gzip", "crafty"})
	if err != nil {
		t.Fatal(err)
	}
	inEng.Parallel = 2
	inEng.WindowJobs = 3
	want := gather(inEng)

	dir := t.TempDir()
	wctx, stopWorkers := context.WithCancel(bg)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			procexec.Work(wctx, dir, procexec.WorkerConfig{Poll: 2 * time.Millisecond}) //nolint:errcheck
		}()
	}
	defer func() { stopWorkers(); wg.Wait() }()

	procEng, err := NewEngine([]string{"gzip", "crafty"})
	if err != nil {
		t.Fatal(err)
	}
	procEng.Parallel = 2
	procEng.WindowJobs = 3
	procEng.Executor = run.ExecProc
	procEng.WorkerDir = dir
	got := gather(procEng)

	if len(got) != len(want) {
		t.Fatalf("%d cross-process cells vs %d in-process", len(got), len(want))
	}
	for k, w := range want {
		if g, ok := got[k]; !ok || g != w {
			t.Errorf("cell %s: cross-process stats diverge from in-process scheduler", k)
		}
	}
}

// TestSchedulerPoolResolution pins the shared-pool sizing rules that
// replaced the old static cells×windows budget split: the pool is the
// whole Parallel budget unless WindowJobs overrides it, and a 1-slot
// resolution means no pool at all (sequential sampled cells).
func TestSchedulerPoolResolution(t *testing.T) {
	e := &Engine{Parallel: 8}
	if got := e.schedSlots(); got != 8 {
		t.Errorf("default pool: got %d slots, want Parallel=8", got)
	}
	e.WindowJobs = 3
	if got := e.schedSlots(); got != 3 {
		t.Errorf("explicit WindowJobs not honored: got %d", got)
	}
	e.WindowJobs = 1
	sched, slots, release := e.scheduler()
	defer release()
	if sched != nil || slots != 1 {
		t.Errorf("WindowJobs=1 must disable the pool: got sched=%v slots=%d", sched, slots)
	}
	e.WindowJobs = 4
	sched, slots, release = e.scheduler()
	defer release()
	if sched == nil || sched.Size() != 4 || slots != 4 {
		t.Errorf("WindowJobs=4: got sched=%v (slots=%d), want a 4-slot pool", sched, slots)
	}
}
