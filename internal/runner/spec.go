// Package runner is the unified experiment engine: experiments are
// declared as Specs (a labeled matrix of sim.Options crossed with
// workloads plus a collector that turns keyed results into tables),
// validated and registered in a package-level registry, and executed by
// an Engine that lazily builds workloads in parallel, schedules the
// cross-product through a bounded worker pool with back-pressure, and
// streams per-cell results to collectors.
//
// cmd/rixbench enumerates the registry; internal/experiments populates
// it with the paper's figure and diagnostic suites. Adding a scenario is
// declaring a Spec and registering it — no fan-out or result-indexing
// code.
package runner

import (
	"fmt"
	"sort"
	"sync"

	"rix/internal/sample"
	"rix/internal/sim"
	"rix/internal/stats"
)

// Config is one labeled point on a spec's configuration axis. An empty
// Label defaults to Opt.Label() at registration/validation time.
type Config struct {
	Label string
	Opt   sim.Options
}

// Collector assembles tables from a completed, keyed result set.
type Collector func(*ResultSet) ([]*stats.Table, error)

// Spec declares one experiment: the workloads it runs on, the labeled
// configuration matrix, and the collector that renders its tables. The
// simulation plan is the cross-product Benchmarks x Configs.
type Spec struct {
	ID          string
	Description string

	// Benchmarks restricts the spec to a workload subset; rows follow
	// this order, names the engine doesn't hold are dropped, and nil
	// means every workload the engine holds (in engine order).
	Benchmarks []string

	// Configs is the labeled sim.Options axis. Labels key result cells
	// and must be unique within the spec.
	Configs []Config

	// Collect renders the result set into tables. Required for
	// registered specs; ad-hoc specs run through Engine.Gather may omit
	// it.
	Collect Collector
}

// normalize defaults empty config labels and validates the spec:
// non-empty id, at least one config, unique labels, and every Options
// value must compile to a pipeline configuration (catching unknown
// integration/suppression/core axis values here rather than mid-run).
func (s *Spec) normalize() error {
	if s.ID == "" {
		return fmt.Errorf("runner: spec with empty id")
	}
	if len(s.Configs) == 0 {
		return fmt.Errorf("runner: spec %q has no configs", s.ID)
	}
	seen := make(map[string]bool, len(s.Configs))
	for i := range s.Configs {
		c := &s.Configs[i]
		if c.Label == "" {
			c.Label = c.Opt.Label()
		}
		if seen[c.Label] {
			return fmt.Errorf("runner: spec %q: duplicate config label %q", s.ID, c.Label)
		}
		seen[c.Label] = true
		if _, err := c.Opt.Config(); err != nil {
			return fmt.Errorf("runner: spec %q, config %q: %w", s.ID, c.Label, err)
		}
	}
	return nil
}

// benchesFor resolves the spec's benchmark list against the engine's
// workload set: an intersection preserving the spec's order, so specs
// that name a full-suite subset still run under a restricted engine.
func (s *Spec) benchesFor(have []string) []string {
	if s.Benchmarks == nil {
		return have
	}
	avail := make(map[string]bool, len(have))
	for _, h := range have {
		avail[h] = true
	}
	var out []string
	for _, b := range s.Benchmarks {
		if avail[b] {
			out = append(out, b)
		}
	}
	return out
}

// registry holds registered specs in registration order.
var registry = struct {
	sync.RWMutex
	specs map[string]*Spec
	order []string
}{specs: make(map[string]*Spec)}

// Register validates a spec and adds it to the registry. It rejects
// duplicate ids, duplicate config labels, unknown option axis values,
// and specs without a collector.
func Register(s Spec) error {
	// Detach from the caller's backing arrays so later mutation of the
	// source slices cannot bypass validation or label defaulting.
	s.Configs = append([]Config(nil), s.Configs...)
	s.Benchmarks = append([]string(nil), s.Benchmarks...)
	if err := s.normalize(); err != nil {
		return err
	}
	if s.Collect == nil {
		return fmt.Errorf("runner: spec %q has no collector", s.ID)
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.specs[s.ID]; dup {
		return fmt.Errorf("runner: duplicate spec %q", s.ID)
	}
	registry.specs[s.ID] = &s
	registry.order = append(registry.order, s.ID)
	return nil
}

// MustRegister is Register for static spec tables; it panics on error.
func MustRegister(s Spec) {
	if err := Register(s); err != nil {
		panic(err)
	}
}

// Lookup finds a registered spec by id.
func Lookup(id string) (*Spec, bool) {
	registry.RLock()
	defer registry.RUnlock()
	s, ok := registry.specs[id]
	return s, ok
}

// IDs returns registered spec ids in registration order.
func IDs() []string {
	registry.RLock()
	defer registry.RUnlock()
	return append([]string(nil), registry.order...)
}

// Specs returns registered specs in registration order.
func Specs() []*Spec {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]*Spec, 0, len(registry.order))
	for _, id := range registry.order {
		out = append(out, registry.specs[id])
	}
	return out
}

// SortedIDs returns registered spec ids in lexical order (for stable
// diagnostics; display order is IDs()).
func SortedIDs() []string {
	ids := IDs()
	sort.Strings(ids)
	return ids
}

// Sampled derives the interval-sampled variant of a spec: the same
// workloads, configuration matrix (labels preserved, so the original
// collector renders it unchanged) and collector, with every cell
// switched to checkpointed interval sampling under sp. The variant's id
// gains a "-sampled" suffix; it is returned, not registered — run it
// ad-hoc through Engine.Gather, or register it explicitly.
func Sampled(s *Spec, sp sample.Sampling) Spec {
	c := *s
	c.ID = s.ID + "-sampled"
	c.Description = s.Description + " (sampled " + sp.String() + ")"
	c.Benchmarks = append([]string(nil), s.Benchmarks...)
	c.Configs = make([]Config, len(s.Configs))
	for i, cc := range s.Configs {
		spc := sp
		cc.Opt.Sampling = &spc
		c.Configs[i] = cc
	}
	return c
}
