package runner

import (
	"testing"

	"rix/internal/testutil"
)

// TestMain fails the package if the parallel cell tests leave worker
// goroutines behind — Run's workers must all exit before it returns.
func TestMain(m *testing.M) {
	testutil.VerifyNoLeaks(m)
}
