package runner

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"rix/internal/pipeline"
	"rix/internal/run"
	"rix/internal/sample"
	"rix/internal/sim"
	"rix/internal/stats"
	"rix/internal/workload"
)

// WorkloadSource supplies built workloads to the engine. Get memoizes
// per name and returns a workload.Built whose Source method mints
// independent golden-trace streams; BuildAll warms a name set with
// bounded parallelism, honoring ctx. workload.Builder is the standard
// implementation.
type WorkloadSource interface {
	Get(ctx context.Context, name string) (workload.Built, error)
	BuildAll(ctx context.Context, names []string, parallel int) error
}

// Engine executes specs over a fixed workload set, with every cell
// routed through the unified run API (run.Do): workloads are built
// lazily — in parallel, memoized — the first time a spec (or DynLen/Run)
// needs them, and the (workload x config) cross-product runs through a
// worker pool that acquires its semaphore slot *before* spawning each
// goroutine, so at most Parallel simulations are live at once and memory
// stays bounded. Every entry point takes a context.Context: cancelling
// it stops scheduling new cells and interrupts the in-flight ones at
// their batched poll boundaries.
type Engine struct {
	// Parallel bounds concurrent workload builds and simulations
	// (default NumCPU; values < 1 mean 1).
	Parallel int

	// Observer, when set, receives every cell's typed progress events
	// (cell started/finished, instructions retired, windows completed,
	// checkpoints written). Cells run concurrently, so the observer must
	// be safe for concurrent use.
	Observer run.Observer

	// WindowJobs sizes the shared window-scheduler pool every sampled
	// cell in a Run/Stream/Gather call draws from. 0 (the default) sizes
	// the pool to Parallel: there is no static per-cell split — a cell
	// that settles its speculative waves early simply stops submitting,
	// and its slots immediately execute the windows other cells still
	// have queued (work stealing). Each pool slot reuses one set of boot
	// structures across every window it runs, whatever the cell. Set 1
	// to force the sequential sampled engine per cell (no pool).
	WindowJobs int

	// WarmJobs bounds each sampled cell's warm-pass shard workers. 0
	// (the default) splits the same budget the window pool gets
	// (WindowJobs, falling back to Parallel): a cell whose warm pass
	// can shard — stride snapshots cached or recorded by an earlier
	// build — fast-forwards disjoint trace spans on that many workers,
	// overlapping with other cells' window phases. Warm workers are
	// per-cell and transient (they exist only for the cell's warm
	// pass), so a matrix of simultaneous cache-cold cells may briefly
	// oversubscribe; set 1 to force sequential warm passes.
	WarmJobs int

	// WarmStride is the spacing, in dynamic instructions, of the stride
	// snapshots a cache-cold sampled cell records during its sequential
	// warm pass (persisted to CheckpointCache when set). 0 defaults to
	// each cell's sampling interval.
	WarmStride uint64

	// CheckpointCache, when set, is the content-addressed warm-set cache
	// directory passed to every sampled cell: repeat runs of the same
	// (workload, layout, geometry) skip their warm pass entirely. It
	// also holds the layout-independent stride snapshots (.stride
	// entries) that let later warm passes shard across WarmJobs workers.
	CheckpointCache string

	// CacheMaxMB / CacheMaxAgeSec bound CheckpointCache by total size
	// (MiB) and entry age (seconds): each sampled cell's save sweeps
	// least-recently-used entries over the bounds. 0 disables a bound.
	CacheMaxMB     int
	CacheMaxAgeSec int

	// Executor selects how sampled cells execute their detail windows:
	// empty or run.ExecPool keeps them on the shared in-process
	// scheduler pool above; run.ExecProc dispatches every cell's
	// windows as job manifests under WorkerDir for `rixsim -worker`
	// processes to claim (each cell gets its own coordinator, all
	// sharing the directory and the worker fleet; no in-process pool is
	// created). Estimates are bit-identical either way.
	Executor string

	// WorkerDir is the cache directory shared with the worker processes
	// when Executor is run.ExecProc.
	WorkerDir string

	names    []string
	src      WorkloadSource
	simulate run.DetailRunner // test seam; nil = run.Do's real pipeline
}

// NewEngine creates an engine over the named workloads (nil means the
// full paper suite). Names are validated against the workload registry
// up front; nothing is built until first use.
func NewEngine(names []string) (*Engine, error) {
	if names == nil {
		names = workload.Names()
	}
	for _, n := range names {
		if _, ok := workload.ByName(n); !ok {
			return nil, fmt.Errorf("runner: unknown workload %q", n)
		}
	}
	return NewEngineWith(names, workload.NewBuilder()), nil
}

// NewEngineWith creates an engine over a custom workload source; names
// are taken as-is. This is the seam for tests and unregistered
// workloads.
func NewEngineWith(names []string, src WorkloadSource) *Engine {
	return &Engine{
		Parallel: runtime.NumCPU(),
		names:    append([]string(nil), names...),
		src:      src,
	}
}

// Names returns the engine's workload names in order.
func (e *Engine) Names() []string { return e.names }

func (e *Engine) parallel() int {
	if e.Parallel < 1 {
		return 1
	}
	return e.Parallel
}

func (e *Engine) has(name string) bool {
	for _, n := range e.names {
		if n == name {
			return true
		}
	}
	return false
}

// DynLen returns the dynamic instruction count of a workload (building
// it on first use), or 0 if the workload is unknown or fails to build.
func (e *Engine) DynLen(ctx context.Context, name string) int {
	if !e.has(name) {
		return 0
	}
	bw, err := e.src.Get(ctx, name)
	if err != nil {
		return 0
	}
	return bw.DynLen
}

// schedSlots resolves the shared window-scheduler pool size: the
// explicit WindowJobs override, or the whole Parallel budget. 1 means
// "no pool" — each sampled cell runs its classic sequential engine.
func (e *Engine) schedSlots() int {
	if e.WindowJobs > 0 {
		return e.WindowJobs
	}
	return e.parallel()
}

// scheduler creates the shared window pool for one Run/Stream call, or
// nil when the resolved slot count forces sequential sampled cells. The
// caller must call the returned release func after every cell has
// settled.
func (e *Engine) scheduler() (*sample.Scheduler, int, func()) {
	slots := e.schedSlots()
	if e.Executor == run.ExecProc {
		// Cross-process cells execute nothing locally: skip the pool and
		// let the slot budget size each coordinator's speculation depth.
		return nil, slots, func() {}
	}
	if slots <= 1 {
		return nil, 1, func() {}
	}
	sched := sample.NewScheduler(slots)
	return sched, slots, sched.Close
}

// Run simulates one workload under the given options, outside any spec.
// A sampled run fans its detail windows across a scheduler pool sized
// to the engine's whole Parallel budget — it is the only cell.
func (e *Engine) Run(ctx context.Context, name string, o sim.Options) (*pipeline.Stats, error) {
	if !e.has(name) {
		return nil, fmt.Errorf("runner: workload %q not in engine", name)
	}
	sched, slots, release := e.scheduler()
	defer release()
	return e.cell(ctx, name, Config{Label: o.Label(), Opt: o}, sched, slots)
}

// cell executes one (workload, config) cell through run.Do. Each cell
// mints its own trace source, so concurrent cells over the same workload
// stream independently at O(ROB) memory apiece. Cells whose options
// request sampling run through the interval-sampling engine instead of
// the full-detail pipeline; their Stats cover the measured windows, so
// every ratio metric (IPC, rates, per-million counts) estimates the
// full run while absolute counters are sampled totals.
func (e *Engine) cell(ctx context.Context, bench string, c Config, sched *sample.Scheduler, slots int) (*pipeline.Stats, error) {
	opts := []run.Option{run.WithSource(e.src)}
	if e.Observer != nil {
		opts = append(opts, run.WithObserver(e.Observer))
	}
	if e.simulate != nil {
		opts = append(opts, run.WithDetailRunner(e.simulate))
	}
	req := run.Request{Workload: bench, Label: c.Label, Options: c.Opt}
	if c.Opt.Sampling != nil {
		req.Jobs = slots
		req.WarmJobs = e.WarmJobs
		if req.WarmJobs == 0 {
			req.WarmJobs = slots
		}
		req.WarmStride = e.WarmStride
		req.CheckpointCache = e.CheckpointCache
		if e.CheckpointCache != "" {
			req.CacheMaxMB = e.CacheMaxMB
			req.CacheMaxAgeSec = e.CacheMaxAgeSec
		}
		req.Executor = e.Executor
		req.WorkerDir = e.WorkerDir
		if sched != nil {
			opts = append(opts, run.WithScheduler(sched))
		}
	}
	res, err := run.Do(ctx, req, opts...)
	if err != nil {
		return nil, err
	}
	return &res.Stats, nil
}

// prep normalizes a private copy of the spec so ad-hoc specs get the
// same label defaulting and axis validation as registered ones.
func (e *Engine) prep(s *Spec) (*Spec, error) {
	c := *s
	c.Configs = append([]Config(nil), s.Configs...)
	if err := c.normalize(); err != nil {
		return nil, err
	}
	return &c, nil
}

// Stream executes the spec's cross-product and calls fn once per
// completed cell, in completion order, from a single goroutine. The
// spec's workloads are built first — in parallel, memoized — and cells
// are then scheduled through the bounded pool. On the first cell or fn
// error, no further cells are scheduled; the error is returned after
// in-flight simulations settle. Cancelling ctx aborts the same way,
// with the context's error.
func (e *Engine) Stream(ctx context.Context, s *Spec, fn func(Result) error) error {
	sp, err := e.prep(s)
	if err != nil {
		return err
	}
	benches := sp.benchesFor(e.names)
	par := e.parallel()
	if err := e.src.BuildAll(ctx, benches, par); err != nil {
		return err
	}
	// One shared window-scheduler pool for the whole matrix: every
	// sampled cell dispatches its speculative detail windows into it, so
	// the WindowJobs budget is never stranded on a cell that settled
	// early — its slots immediately pick up the windows other cells
	// still have queued.
	sched, slots, release := e.scheduler()
	defer release()

	sem := make(chan struct{}, par)
	results := make(chan Result)
	stop := make(chan struct{}) // closed on first error: stop scheduling
	done := ctx.Done()
	go func() {
		defer close(results)
		var wg sync.WaitGroup
		defer wg.Wait()
		for _, b := range benches {
			for _, c := range sp.Configs {
				select {
				case <-stop: // checked alone first: select picks randomly among ready cases
					return
				case <-done:
					return
				default:
				}
				select {
				case <-stop:
					return
				case <-done:
					return
				case sem <- struct{}{}: // acquire before spawning (back-pressure)
				}
				wg.Add(1)
				go func(b string, c Config) {
					defer wg.Done()
					defer func() { <-sem }()
					st, err := e.cell(ctx, b, c, sched, slots)
					results <- Result{Bench: b, Label: c.Label, Stats: st, Err: err}
				}(b, c)
			}
		}
	}()

	var firstErr error
	for r := range results {
		if firstErr != nil {
			continue // drain so workers can exit
		}
		if r.Err != nil {
			firstErr = fmt.Errorf("runner: %s [%s]: %w", r.Bench, r.Label, r.Err)
		} else if err := fn(r); err != nil {
			firstErr = err
		}
		if firstErr != nil {
			close(stop)
		}
	}
	if firstErr == nil {
		firstErr = ctx.Err()
	}
	return firstErr
}

// Gather executes the spec and accumulates every cell into a keyed,
// deterministically ordered ResultSet.
func (e *Engine) Gather(ctx context.Context, s *Spec) (*ResultSet, error) {
	sp, err := e.prep(s)
	if err != nil {
		return nil, err
	}
	rs := newResultSet(sp.benchesFor(e.names), sp.Configs)
	if err := e.Stream(ctx, sp, func(r Result) error { rs.add(r); return nil }); err != nil {
		return nil, err
	}
	return rs, nil
}

// RunSpec looks a registered spec up, executes it, and renders its
// tables through the spec's collector.
func (e *Engine) RunSpec(ctx context.Context, id string) ([]*stats.Table, error) {
	sp, ok := Lookup(id)
	if !ok {
		return nil, fmt.Errorf("runner: unknown spec %q (registered: %s)",
			id, strings.Join(SortedIDs(), ", "))
	}
	rs, err := e.Gather(ctx, sp)
	if err != nil {
		return nil, err
	}
	return sp.Collect(rs)
}
