package runner

import (
	"fmt"

	"rix/internal/pipeline"
)

// Result is one completed cell of a spec's (workload x config) matrix,
// streamed from the engine as simulations finish.
type Result struct {
	Bench string
	Label string
	Stats *pipeline.Stats
	Err   error
}

// ResultSet holds a spec's completed cells keyed by (workload,
// config-label). Iteration order is deterministic — benches in engine
// order, labels in spec order — regardless of the order cells finished
// in.
type ResultSet struct {
	benches []string
	labels  []string
	cells   map[string]map[string]*pipeline.Stats
}

func newResultSet(benches []string, cfgs []Config) *ResultSet {
	rs := &ResultSet{
		benches: benches,
		labels:  make([]string, len(cfgs)),
		cells:   make(map[string]map[string]*pipeline.Stats, len(benches)),
	}
	for i, c := range cfgs {
		rs.labels[i] = c.Label
	}
	for _, b := range benches {
		rs.cells[b] = make(map[string]*pipeline.Stats, len(cfgs))
	}
	return rs
}

func (rs *ResultSet) add(r Result) {
	rs.cells[r.Bench][r.Label] = r.Stats
}

// Benches returns the workloads in deterministic (engine) order.
func (rs *ResultSet) Benches() []string { return rs.benches }

// Labels returns the config labels in spec order.
func (rs *ResultSet) Labels() []string { return rs.labels }

// Get returns the stats for one cell. A miss is a collector programming
// error (the registry validated every label), so it panics with the
// offending key rather than returning nil into arithmetic.
func (rs *ResultSet) Get(bench, label string) *pipeline.Stats {
	st, ok := rs.cells[bench][label]
	if !ok {
		panic(fmt.Sprintf("runner: no result cell (%s, %s)", bench, label))
	}
	return st
}
