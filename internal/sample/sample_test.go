package sample

import (
	"testing"
)

// TestEstimateAggregation pins the estimate arithmetic: weighted ratios,
// coverage accounting, and the confidence interval degenerating to zero
// below two windows.
func TestEstimateAggregation(t *testing.T) {
	sp := Sampling{Interval: 1000, Window: 100, Warmup: 50}
	mkWin := func(idx int, retired, cycles, integrated uint64) WindowStat {
		w := WindowStat{Index: idx, Start: uint64(idx * 1000)}
		w.Stats.Retired = retired
		w.Stats.Cycles = cycles
		w.Stats.Integrated = integrated
		return w
	}
	est := aggregate(sp, 10, []WindowStat{
		mkWin(1, 100, 50, 10),
		mkWin(0, 100, 100, 30),
		mkWin(2, 0, 0, 0), // empty (stream ended in warmup): dropped
	}, 4000)
	if len(est.Windows) != 2 {
		t.Fatalf("kept %d windows, want 2", len(est.Windows))
	}
	if est.Windows[0].Index != 0 || est.Windows[1].Index != 1 {
		t.Errorf("windows not in index order: %+v", est.Windows)
	}
	if got, want := est.IPC(), 200.0/150.0; abs(got-want) > 1e-12 {
		t.Errorf("IPC = %v, want %v (weighted)", got, want)
	}
	if got, want := est.IntegrationRate(), 40.0/200.0; abs(got-want) > 1e-12 {
		t.Errorf("rate = %v, want %v", got, want)
	}
	if est.SampledInstrs != 200 || est.TotalInstrs != 4000 {
		t.Errorf("coverage: sampled=%d total=%d", est.SampledInstrs, est.TotalInstrs)
	}
	// Detailed work: warmup + retired + pad per kept window.
	if want := uint64(2 * (50 + 100 + 10)); est.DetailedInstrs != want {
		t.Errorf("DetailedInstrs = %d, want %d", est.DetailedInstrs, want)
	}
	if est.IPCCI95 <= 0 {
		t.Errorf("two dissimilar windows should give a positive CI, got %v", est.IPCCI95)
	}

	single := aggregate(sp, 10, []WindowStat{mkWin(0, 100, 50, 10)}, 1000)
	if single.IPCCI95 != 0 || single.RateCI95 != 0 {
		t.Errorf("single window must claim no bound, got %v / %v", single.IPCCI95, single.RateCI95)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestWindowStartPlacement pins the de-aliasing placement: window 0 at
// the origin (the pilot), later windows jittered within their interval,
// strictly increasing.
func TestWindowStartPlacement(t *testing.T) {
	sp := DefaultSampling()
	if windowStart(0, sp) != 0 {
		t.Fatalf("window 0 must start at 0, got %d", windowStart(0, sp))
	}
	prev := uint64(0)
	jittered := false
	for k := 1; k < 50; k++ {
		s := windowStart(k, sp)
		lo := uint64(k) * sp.Interval
		hi := lo + (sp.Interval - sp.Warmup - sp.Window)
		if s < lo || s >= hi {
			t.Fatalf("window %d start %d outside [%d, %d)", k, s, lo, hi)
		}
		if s != lo {
			jittered = true
		}
		if s <= prev {
			t.Fatalf("window starts not strictly increasing: %d then %d", prev, s)
		}
		prev = s
	}
	if !jittered {
		t.Error("no window was jittered off its interval boundary")
	}
}
