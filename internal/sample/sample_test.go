package sample

import (
	"reflect"
	"testing"
	"time"

	"rix/internal/sim"
	"rix/internal/workload"
)

// benchSubset mirrors the repository's benchmark subset: one workload
// per class (call-poor, call-rich, mixed, memory-bound).
var benchSubset = []string{"gzip", "crafty", "vortex", "mcf"}

func buildBench(t testing.TB, name string) workload.Built {
	t.Helper()
	b, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("workload %q not registered", name)
	}
	bw, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return bw
}

// TestSampledAccuracyAcrossPresets is the sampled-vs-full property test:
// on the benchmark workloads, under the no-integration baseline and
// every integration preset crossed with both suppression modes, the
// default-knob sampled estimates must stay within the documented bounds
// (IPCErrBound relative on IPC, RateErrBound absolute on integration
// rate) of the full-detail run.
func TestSampledAccuracyAcrossPresets(t *testing.T) {
	if testing.Short() {
		t.Skip("full-detail reference runs (~1 minute)")
	}
	opts := []sim.Options{{Integration: sim.IntNone}}
	for _, p := range sim.IntegrationPresets() {
		opts = append(opts,
			sim.Options{Integration: p, Suppression: sim.SuppressLISP},
			sim.Options{Integration: p, Suppression: sim.SuppressOracle})
	}
	for _, name := range benchSubset {
		bw := buildBench(t, name)
		for _, o := range opts {
			cfg, err := o.Config()
			if err != nil {
				t.Fatal(err)
			}
			full, err := sim.Run(bw.Prog, bw.Source(), o)
			if err != nil {
				t.Fatalf("%s [%s] full: %v", name, o.Label(), err)
			}
			est, err := Run(bw.Prog, bw.DynLen, cfg, Config{})
			if err != nil {
				t.Fatalf("%s [%s] sampled: %v", name, o.Label(), err)
			}
			ipcErr := est.IPC()/full.IPC() - 1
			if ipcErr < 0 {
				ipcErr = -ipcErr
			}
			if ipcErr > IPCErrBound {
				t.Errorf("%s [%s]: IPC %.3f vs full %.3f: relative error %.1f%% exceeds %.0f%%",
					name, o.Label(), est.IPC(), full.IPC(), 100*ipcErr, 100*IPCErrBound)
			}
			rateErr := est.IntegrationRate() - full.IntegrationRate()
			if rateErr < 0 {
				rateErr = -rateErr
			}
			if rateErr > RateErrBound {
				t.Errorf("%s [%s]: rate %.4f vs full %.4f: absolute error %.2fpp exceeds %.1fpp",
					name, o.Label(), est.IntegrationRate(), full.IntegrationRate(),
					100*rateErr, 100*RateErrBound)
			}
		}
	}
}

// TestCheckpointResumeBitEqual is the checkpoint round-trip guarantee: a
// sampled run that wrote checkpoints, resumed from disk (gob decode,
// state reconstruction, window re-execution), reproduces every window's
// Stats and the aggregate byte-for-byte.
func TestCheckpointResumeBitEqual(t *testing.T) {
	bw := buildBench(t, "crafty")
	o := sim.Options{Integration: sim.IntReverse}
	cfg, err := o.Config()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	sc := Config{CheckpointDir: dir}

	direct, err := Run(bw.Prog, bw.DynLen, cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Windows) < 4 {
		t.Fatalf("only %d windows; want a multi-window run", len(direct.Windows))
	}
	paths, err := Checkpoints(dir, bw.Prog.Name)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != len(direct.Windows) {
		t.Fatalf("%d checkpoints for %d windows", len(paths), len(direct.Windows))
	}

	resumed, err := Resume(bw.Prog, bw.DynLen, cfg, Config{CheckpointDir: dir, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed.Windows) != len(direct.Windows) {
		t.Fatalf("resume produced %d windows, direct %d", len(resumed.Windows), len(direct.Windows))
	}
	for i := range direct.Windows {
		if !reflect.DeepEqual(direct.Windows[i], resumed.Windows[i]) {
			t.Errorf("window %d differs:\ndirect:  %+v\nresumed: %+v",
				i, direct.Windows[i], resumed.Windows[i])
		}
	}
	if !reflect.DeepEqual(direct.Agg, resumed.Agg) {
		t.Errorf("aggregate Stats differ:\ndirect:  %+v\nresumed: %+v", direct.Agg, resumed.Agg)
	}
}

// TestRunCheckpointShard exercises the sharding primitive: one window
// run in isolation from its checkpoint file matches the direct run's
// window exactly.
func TestRunCheckpointShard(t *testing.T) {
	bw := buildBench(t, "gzip")
	o := sim.Options{Integration: sim.IntReverse}
	cfg, err := o.Config()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	direct, err := Run(bw.Prog, bw.DynLen, cfg, Config{CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	paths, err := Checkpoints(dir, bw.Prog.Name)
	if err != nil {
		t.Fatal(err)
	}
	pick := len(paths) / 2
	ck, err := LoadCheckpoint(paths[pick])
	if err != nil {
		t.Fatal(err)
	}
	ws, err := RunCheckpoint(bw.Prog, ck, cfg, direct.Sampling)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*ws, direct.Windows[pick]) {
		t.Errorf("sharded window %d differs:\nshard:  %+v\ndirect: %+v", pick, *ws, direct.Windows[pick])
	}

	// Mismatched window layout must be rejected, not silently mis-run.
	bad := direct.Sampling
	bad.Window++
	if _, err := RunCheckpoint(bw.Prog, ck, cfg, bad); err == nil {
		t.Error("RunCheckpoint accepted a mismatched window layout")
	}
}

// TestSampledFig4Speedup enforces the sampling acceptance criterion on
// the Figure 4 configuration matrix over the benchmark subset: at least
// 10x less detailed-simulation work than full detail (the
// scale-invariant guarantee — the fraction is independent of trace
// length), measurably faster wall-clock even on these short synthetic
// traces, and headline metrics within the documented bounds.
func TestSampledFig4Speedup(t *testing.T) {
	if testing.Short() {
		t.Skip("full-detail fig4 reference runs (~1 minute)")
	}
	opts := []sim.Options{{Integration: sim.IntNone}}
	for _, p := range sim.IntegrationPresets() {
		opts = append(opts,
			sim.Options{Integration: p, Suppression: sim.SuppressLISP},
			sim.Options{Integration: p, Suppression: sim.SuppressOracle})
	}

	var fullTime, sampledTime time.Duration
	var totalInstrs, detailedInstrs uint64
	for _, name := range benchSubset {
		bw := buildBench(t, name)
		for _, o := range opts {
			cfg, err := o.Config()
			if err != nil {
				t.Fatal(err)
			}
			t0 := time.Now()
			full, err := sim.Run(bw.Prog, bw.Source(), o)
			if err != nil {
				t.Fatal(err)
			}
			fullTime += time.Since(t0)

			t1 := time.Now()
			est, err := Run(bw.Prog, bw.DynLen, cfg, Config{})
			if err != nil {
				t.Fatal(err)
			}
			sampledTime += time.Since(t1)

			totalInstrs += est.TotalInstrs
			detailedInstrs += est.DetailedInstrs
			if ipcErr := abs(est.IPC()/full.IPC() - 1); ipcErr > IPCErrBound {
				t.Errorf("%s [%s]: IPC error %.1f%% exceeds bound", name, o.Label(), 100*ipcErr)
			}
			if rateErr := abs(est.IntegrationRate() - full.IntegrationRate()); rateErr > RateErrBound {
				t.Errorf("%s [%s]: rate error %.2fpp exceeds bound", name, o.Label(), 100*rateErr)
			}
		}
	}

	workRatio := float64(totalInstrs) / float64(detailedInstrs)
	t.Logf("fig4 matrix: detailed work ratio %.1fx, wall-clock %.1fx (full %v, sampled %v)",
		workRatio, fullTime.Seconds()/sampledTime.Seconds(), fullTime, sampledTime)
	if workRatio < 10 {
		t.Errorf("detailed-work reduction %.1fx, want >= 10x", workRatio)
	}
	// Wall-clock on the short synthetic traces carries per-window
	// overhead that amortizes on longer workloads; require a clear win
	// with CI-safe margin rather than the asymptotic ratio.
	if sampledTime*2 >= fullTime {
		t.Errorf("sampled wall-clock %v not at least 2x faster than full %v", sampledTime, fullTime)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestEstimateAggregation pins the estimate arithmetic: weighted ratios,
// coverage accounting, and the confidence interval degenerating to zero
// below two windows.
func TestEstimateAggregation(t *testing.T) {
	sp := sim.Sampling{Interval: 1000, Window: 100, Warmup: 50}
	mkWin := func(idx int, retired, cycles, integrated uint64) WindowStat {
		w := WindowStat{Index: idx, Start: uint64(idx * 1000)}
		w.Stats.Retired = retired
		w.Stats.Cycles = cycles
		w.Stats.Integrated = integrated
		return w
	}
	est := aggregate(sp, 10, []WindowStat{
		mkWin(1, 100, 50, 10),
		mkWin(0, 100, 100, 30),
		mkWin(2, 0, 0, 0), // empty (stream ended in warmup): dropped
	}, 4000)
	if len(est.Windows) != 2 {
		t.Fatalf("kept %d windows, want 2", len(est.Windows))
	}
	if est.Windows[0].Index != 0 || est.Windows[1].Index != 1 {
		t.Errorf("windows not in index order: %+v", est.Windows)
	}
	if got, want := est.IPC(), 200.0/150.0; abs(got-want) > 1e-12 {
		t.Errorf("IPC = %v, want %v (weighted)", got, want)
	}
	if got, want := est.IntegrationRate(), 40.0/200.0; abs(got-want) > 1e-12 {
		t.Errorf("rate = %v, want %v", got, want)
	}
	if est.SampledInstrs != 200 || est.TotalInstrs != 4000 {
		t.Errorf("coverage: sampled=%d total=%d", est.SampledInstrs, est.TotalInstrs)
	}
	// Detailed work: warmup + retired + pad per kept window.
	if want := uint64(2 * (50 + 100 + 10)); est.DetailedInstrs != want {
		t.Errorf("DetailedInstrs = %d, want %d", est.DetailedInstrs, want)
	}
	if est.IPCCI95 <= 0 {
		t.Errorf("two dissimilar windows should give a positive CI, got %v", est.IPCCI95)
	}

	single := aggregate(sp, 10, []WindowStat{mkWin(0, 100, 50, 10)}, 1000)
	if single.IPCCI95 != 0 || single.RateCI95 != 0 {
		t.Errorf("single window must claim no bound, got %v / %v", single.IPCCI95, single.RateCI95)
	}
}

// TestWindowStartPlacement pins the de-aliasing placement: window 0 at
// the origin (the pilot), later windows jittered within their interval,
// strictly increasing.
func TestWindowStartPlacement(t *testing.T) {
	sp := sim.DefaultSampling()
	if windowStart(0, sp) != 0 {
		t.Fatalf("window 0 must start at 0, got %d", windowStart(0, sp))
	}
	prev := uint64(0)
	jittered := false
	for k := 1; k < 50; k++ {
		s := windowStart(k, sp)
		lo := uint64(k) * sp.Interval
		hi := lo + (sp.Interval - sp.Warmup - sp.Window)
		if s < lo || s >= hi {
			t.Fatalf("window %d start %d outside [%d, %d)", k, s, lo, hi)
		}
		if s != lo {
			jittered = true
		}
		if s <= prev {
			t.Fatalf("window starts not strictly increasing: %d then %d", prev, s)
		}
		prev = s
	}
	if !jittered {
		t.Error("no window was jittered off its interval boundary")
	}
}
