package sample

import (
	"rix/internal/bpred"
	"rix/internal/core"
	"rix/internal/emu"
	"rix/internal/isa"
	"rix/internal/memsys"
	"rix/internal/pipeline"
	"rix/internal/prog"
)

// warmer is the functional-warmup half of the sampling engine: while the
// emulator fast-forwards between measurement windows, every architectural
// instruction is folded into the long-lived microarchitectural state —
// cache and TLB tags, branch-direction tables and global history, BTB
// targets, and the return-address stack (whose top-of-stack index seeds
// the call depth that extension 2 mixes into the IT index).
//
// Three kinds of state are deliberately not warmed functionally:
//
//   - Timing state (MSHRs, buses, write buffer) is empty at any
//     instruction boundary and starts cold by construction.
//
//   - Rename-dependent state — the integration table and the register
//     file — names physical registers that exist only inside one
//     pipeline instance. Each window warms it during its detailed
//     warmup prefix (pipeline.RunWindow's warmup mode): full-detail
//     execution with statistics gated off. Measured across the suite,
//     a few hundred instructions of detailed warmup reproduce the IT's
//     steady-state match behavior; a functional occupancy model adds
//     nothing.
//
//   - DIVA feedback — the LISP, a never-aging table — trains on
//     microarchitectural accidents (mis-integrations) that no
//     architectural model reproduces. The engine instead chains each
//     completed window's final LISP state through the warmer
//     (adoptFeedback) into every later window's boot, mirroring how a
//     handful of early training events shape the full machine's entire
//     run.
type warmer struct {
	pred *bpred.Predictor
	btb  *bpred.BTB
	ras  *bpred.RAS
	cht  *bpred.CHT
	hier *memsys.Hierarchy
	lisp *core.LISP // feedback carrier only; never trained functionally

	lastLine uint64 // last I-side line touched; ^0 = none
	lineMask uint64
}

func newWarmer(cfg pipeline.Config) *warmer {
	pc := cfg.Pred.WithDefaults()
	w := &warmer{
		pred:     bpred.NewPredictor(cfg.Pred),
		btb:      bpred.NewBTB(pc.BTBEntries),
		ras:      bpred.NewRAS(pc.RASEntries),
		cht:      bpred.NewCHT(pc.CHTEntries),
		hier:     memsys.New(cfg.Mem),
		lastLine: ^uint64(0),
		lineMask: ^(uint64(cfg.Mem.L1I.LineBytes) - 1),
	}
	if cfg.Policy.Enable {
		w.lisp = core.NewLISP(cfg.LISP)
	}
	return w
}

// observe folds one architecturally executed instruction into the warm
// state. pc is the instruction's PC, rec its trace record, and nextPC the
// architectural successor (the emulator's PC after the step), which
// trains the BTB for indirect transfers.
//
//rix:hotpath
func (w *warmer) observe(in isa.Instr, pc uint64, rec emu.TraceRec, nextPC uint64) {
	// One I-side tag touch per fetch line, mirroring the front end's one
	// I-cache access per fetch group.
	if pc&w.lineMask != w.lastLine {
		w.lastLine = pc & w.lineMask
		w.hier.WarmFetch(pc)
	}
	switch in.Op.ClassOf() {
	case isa.ClassLoad:
		w.hier.WarmLoad(rec.Addr)
	case isa.ClassStore:
		w.hier.WarmStore(rec.Addr)
	case isa.ClassBranch:
		// Predict to capture the training snapshot, shift the *actual*
		// outcome into the global history (the post-retirement state of a
		// full-detail run), and train the tables.
		taken := rec.Value == 1
		_, snap := w.pred.Predict(pc)
		w.pred.SpecUpdate(taken)
		w.pred.Train(pc, taken, snap)
	case isa.ClassCallDirect:
		w.ras.Push(pc + isa.InstrBytes)
	case isa.ClassCallIndirect:
		w.ras.Push(pc + isa.InstrBytes)
		w.btb.Train(pc, nextPC)
	case isa.ClassJumpIndirect:
		w.btb.Train(pc, nextPC)
	case isa.ClassRet:
		w.ras.Pop()
	}
}

// adoptFeedback replaces the warmer's LISP with a completed window's
// final state — the feedback-chaining path. Each window boots with the
// accumulated state, so its final state is a superset of what the
// warmer held; adoption is monotone, mirroring the real machine's
// never-aging table. The CHT is deliberately not chained: measured at
// the default window length, chaining adopts collision entries born
// from window-boot timing accidents, and the over-conservative loads
// cost more IPC accuracy than per-window re-discovery does (at very
// short windows the trade reverses — keep Window at a few hundred
// instructions or more).
func (w *warmer) adoptFeedback(fb feedback) error {
	if w.lisp != nil && len(fb.LISP.Entries) > 0 {
		if err := w.lisp.SetState(fb.LISP); err != nil {
			return err
		}
	}
	return nil
}

// WarmSnapshot is the serializable warm state at a window boundary — the
// microarchitectural half of a Checkpoint. LISP and CHT carry the
// feedback chained from completed windows (the warmer itself never
// trains them); their contents depend on the cell's policy, which makes
// a checkpoint set specific to one machine configuration. LastLine is
// the warmer's I-side touch deduplication cursor, carried so a restored
// warmer (Continue) folds exactly the same touches an uninterrupted one
// would.
type WarmSnapshot struct {
	Pred     bpred.PredictorState
	BTB      bpred.BTBState
	RAS      bpred.RASState
	CHT      bpred.CHTState
	Mem      memsys.WarmState
	LISP     core.LISPState
	LastLine uint64
}

// snapshot deep-copies the current warm state.
func (w *warmer) snapshot() WarmSnapshot {
	ws := WarmSnapshot{
		Pred:     w.pred.State(),
		BTB:      w.btb.State(),
		RAS:      w.ras.State(),
		CHT:      w.cht.State(),
		Mem:      w.hier.WarmState(),
		LastLine: w.lastLine,
	}
	if w.lisp != nil {
		ws.LISP = w.lisp.State()
	}
	return ws
}

// warmerFromSnapshot rebuilds a live warmer from a checkpoint's warm
// snapshot — the continuation path (Continue): the restored warmer keeps
// folding fast-forwarded instructions into the exact state the
// interrupted run held, so the continuation's later windows are
// bit-identical to the uninterrupted run's.
func warmerFromSnapshot(cfg pipeline.Config, ws WarmSnapshot) (*warmer, error) {
	w := newWarmer(cfg)
	if err := w.pred.SetState(ws.Pred); err != nil {
		return nil, err
	}
	if err := w.btb.SetState(ws.BTB); err != nil {
		return nil, err
	}
	if err := w.ras.SetState(ws.RAS); err != nil {
		return nil, err
	}
	if err := w.cht.SetState(ws.CHT); err != nil {
		return nil, err
	}
	if err := w.hier.SetWarmState(ws.Mem); err != nil {
		return nil, err
	}
	if w.lisp != nil && len(ws.LISP.Entries) > 0 {
		if err := w.lisp.SetState(ws.LISP); err != nil {
			return nil, err
		}
	}
	w.lastLine = ws.LastLine
	return w, nil
}

// cloneBoot builds a window's pipeline boot state by direct deep copies
// of the live emulator and warm structures — the in-memory fast path.
// It constructs exactly the state buildBoot reconstructs from a
// serialized checkpoint, so a resumed window's Stats are bit-identical
// to the direct run's (the checkpoint tests enforce this equivalence).
func (w *warmer) cloneBoot(cfg pipeline.Config, e *emu.Emulator) *pipeline.BootState {
	var lisp *core.LISP
	if w.lisp != nil {
		lisp = core.NewLISP(cfg.LISP)
		if err := lisp.SetState(w.lisp.State()); err != nil {
			panic(err) // same geometry by construction
		}
	}
	return &pipeline.BootState{
		PC:   e.PC,
		Regs: e.Regs,
		Mem:  e.Mem.Clone(),
		Pred: w.pred.Clone(),
		BTB:  w.btb.Clone(),
		RAS:  w.ras.Clone(),
		CHT:  w.cht.Clone(),
		Hier: w.hier.CloneWarm(),
		LISP: lisp,
	}
}

// bootPool recycles one set of window-boot structures — predictor, BTB,
// RAS, CHT, hierarchy, LISP — plus the finished pipeline's Scratch
// across a run's windows, so steady-state window boot performs in-place
// copies instead of fresh clone allocations. The CopyFrom primitives
// zero every diagnostic tally and reset the transient timing parts, so
// a pooled boot is bit-equivalent to cloneBoot's fresh clones.
type bootPool struct {
	pred    *bpred.Predictor
	btb     *bpred.BTB
	ras     *bpred.RAS
	cht     *bpred.CHT
	hier    *memsys.Hierarchy
	lisp    *core.LISP
	scratch *pipeline.Scratch
}

// fromWarmer builds the next window's boot state from the live warmer:
// fresh clones on first use (exactly cloneBoot), in-place copies into
// the pooled structures afterwards. The returned BootState is owned by
// the next pipeline until it finishes; call again only after that.
func (bp *bootPool) fromWarmer(cfg pipeline.Config, e *emu.Emulator, w *warmer) (*pipeline.BootState, error) {
	if bp.pred == nil {
		boot := w.cloneBoot(cfg, e)
		bp.pred, bp.btb, bp.ras, bp.cht = boot.Pred, boot.BTB, boot.RAS, boot.CHT
		bp.hier, bp.lisp = boot.Hier, boot.LISP
		boot.Scratch = bp.scratch
		return boot, nil
	}
	if err := bp.pred.CopyFrom(w.pred); err != nil {
		return nil, err
	}
	if err := bp.btb.CopyFrom(w.btb); err != nil {
		return nil, err
	}
	if err := bp.ras.CopyFrom(w.ras); err != nil {
		return nil, err
	}
	if err := bp.cht.CopyFrom(w.cht); err != nil {
		return nil, err
	}
	if err := bp.hier.CopyWarmFrom(w.hier); err != nil {
		return nil, err
	}
	if w.lisp != nil {
		if err := bp.lisp.CopyFrom(w.lisp); err != nil {
			return nil, err
		}
	}
	return &pipeline.BootState{
		PC:      e.PC,
		Regs:    e.Regs,
		Mem:     e.Mem.Clone(),
		Pred:    bp.pred,
		BTB:     bp.btb,
		RAS:     bp.ras,
		CHT:     bp.cht,
		Hier:    bp.hier,
		LISP:    bp.lisp,
		Scratch: bp.scratch,
	}, nil
}

// buildBoot reconstructs a pipeline boot state from an emulator
// checkpoint and a warm snapshot — the on-disk checkpoint path. It
// yields the same state as cloneBoot over the live structures, so a
// resumed window is bit-identical to the window the sampled run
// executed directly.
func buildBoot(cfg pipeline.Config, p *prog.Program, st emu.State, ws WarmSnapshot) (*pipeline.BootState, error) {
	pc := cfg.Pred.WithDefaults()
	pred := bpred.NewPredictor(cfg.Pred)
	if err := pred.SetState(ws.Pred); err != nil {
		return nil, err
	}
	btb := bpred.NewBTB(pc.BTBEntries)
	if err := btb.SetState(ws.BTB); err != nil {
		return nil, err
	}
	ras := bpred.NewRAS(pc.RASEntries)
	if err := ras.SetState(ws.RAS); err != nil {
		return nil, err
	}
	cht := bpred.NewCHT(pc.CHTEntries)
	if err := cht.SetState(ws.CHT); err != nil {
		return nil, err
	}
	hier := memsys.New(cfg.Mem)
	if err := hier.SetWarmState(ws.Mem); err != nil {
		return nil, err
	}
	var lisp *core.LISP
	if cfg.Policy.Enable && len(ws.LISP.Entries) > 0 {
		lisp = core.NewLISP(cfg.LISP)
		if err := lisp.SetState(ws.LISP); err != nil {
			return nil, err
		}
	}
	mem, err := emu.NewMemoryFromState(st.Mem)
	if err != nil {
		return nil, err
	}
	return &pipeline.BootState{
		PC:   st.PC,
		Regs: st.Regs,
		Mem:  mem,
		Pred: pred,
		BTB:  btb,
		RAS:  ras,
		CHT:  cht,
		Hier: hier,
		LISP: lisp,
	}, nil
}
