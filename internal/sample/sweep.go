package sample

import (
	"os"
	"path/filepath"
	"sort"
	"time"
)

// This file bounds the warm cache directory — both the per-layout
// .warmset entries and the layout-independent .stride entries. Every
// key writes one entry and nothing ever rewrote or removed them, so a
// long-lived cache dir grew forever; the sweep runs best-effort after
// each save and evicts least-recently-used entries over the configured
// size and age bounds. Recency is the file's modification time: saves
// stamp it by writing, and cache hits re-stamp it (touchWarmSet), so
// eviction order is true LRU over both writers and readers — and one
// LRU over both entry kinds, so a hot stride set outlives cold warm
// sets and vice versa. See doc/FORMATS.md for the on-disk layout.

// sweepWarmCache enforces Config.CacheMaxBytes / CacheMaxAge over dir:
// entries older than maxAge go first, then least-recently-used entries
// until the directory's combined .warmset + .stride total fits
// maxBytes. A zero bound
// disables that check. keep names the entry just written, which is
// never evicted — the run that wrote it must find it on its next probe
// even under a bound smaller than one entry. All failures are silently
// ignored: the sweep is advisory, and a missed eviction only costs
// disk, never correctness (loads validate content, not directory
// state).
func sweepWarmCache(dir string, maxBytes int64, maxAge time.Duration, keep string) {
	if maxBytes <= 0 && maxAge <= 0 {
		return
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	type entry struct {
		path string
		size int64
		mod  time.Time
	}
	var files []entry
	var total int64
	now := time.Now()
	for _, de := range ents {
		if de.IsDir() {
			continue
		}
		if ext := filepath.Ext(de.Name()); ext != ".warmset" && ext != ".stride" {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		e := entry{path: filepath.Join(dir, de.Name()), size: info.Size(), mod: info.ModTime()}
		if e.path == keep {
			continue
		}
		if maxAge > 0 && now.Sub(e.mod) > maxAge {
			os.Remove(e.path)
			continue
		}
		files = append(files, e)
		total += e.size
	}
	if maxBytes <= 0 {
		return
	}
	if keep != "" {
		if info, err := os.Stat(keep); err == nil {
			total += info.Size()
		}
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mod.Before(files[j].mod) })
	for _, e := range files {
		if total <= maxBytes {
			break
		}
		if os.Remove(e.path) == nil {
			total -= e.size
		}
	}
}

// touchWarmSet re-stamps a cache entry's modification time on a hit, so
// the LRU sweep ranks hot entries as recently used. Best-effort.
func touchWarmSet(path string) {
	now := time.Now()
	_ = os.Chtimes(path, now, now)
}
