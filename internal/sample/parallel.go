package sample

import (
	"context"
	"fmt"
	"sync"

	"rix/internal/core"
	"rix/internal/emu"
	"rix/internal/pipeline"
	"rix/internal/prog"
)

// This file is the second phase of the two-phase engine: a bounded
// worker pool that executes the warm set's detail windows concurrently.
//
// The only cross-window dependency is the DIVA feedback chain: window
// j+1 must boot with window j's final LISP state. The scheduler runs
// the chain speculatively — a wave of up to Config.Windows windows is
// dispatched with the feedback known at dispatch time, then settled in
// index order; a window whose actual feedback requirement diverges from
// its speculative boot invalidates the wave's remaining results, which
// re-dispatch under the corrected feedback. The first window of every
// wave boots with validated feedback by construction, so the scheduler
// always makes progress, degrades to sequential execution under a
// feedback chain that mutates every window, and reaches full
// parallelism on the common quiescent chain — while the aggregate stays
// bit-identical to the sequential engine in every case.

// runTwoPhase is Run's two-phase path: warm pass (or cache hit /
// injected warm set), then the parallel window phase, then the same
// deterministic index-ordered aggregation as the sequential engine.
func runTwoPhase(ctx context.Context, p *prog.Program, dynLen int, cfg pipeline.Config, sc Config) (*Estimate, error) {
	set, err := prepareWarm(ctx, p, cfg, sc)
	if err != nil {
		return nil, err
	}
	if set.Total > sc.MaxInstrs {
		// The sequential fast-forward would have tripped its budget
		// before the program halted; a cached warm set must not bypass
		// the bound.
		return nil, fmt.Errorf("sample: %s did not halt within %d instructions", p.Name, sc.MaxInstrs)
	}
	windows, err := runParallel(ctx, p, cfg, sc, set)
	if err != nil {
		return nil, err
	}
	total := uint64(dynLen)
	if total == 0 {
		total = set.Total
	}
	return aggregate(sc.Sampling, detailPad(cfg), windows, total), nil
}

// winOut is one speculatively executed window's result.
type winOut struct {
	stat  pipeline.Stats
	fb    core.LISPState // window's final LISP: the next window's requirement
	guess core.LISPState // LISP this window booted with (for validation)
	err   error
}

// winWorker carries one worker slot's recycled pipeline scratch across
// the windows it executes. Slots are disjoint within a wave, so no
// locking is needed.
type winWorker struct {
	scratch *pipeline.Scratch
}

// runParallel executes every boundary's detail window across a pool of
// up to sc.Windows workers with speculative feedback validation,
// returning WindowStats in index order.
func runParallel(ctx context.Context, p *prog.Program, cfg pipeline.Config, sc Config, set *WarmSet) ([]WindowStat, error) {
	sp := sc.Sampling
	nb := len(set.Boundaries)
	width := sc.Windows
	if width < 1 {
		width = 1
	}
	if width > nb {
		width = nb
	}
	results := make([]*winOut, nb)
	workers := make([]winWorker, width)
	var windows []WindowStat
	// Feedback only chains when the integration policy is on: with it
	// off the boot LISP is ignored by every window, so speculation is
	// vacuously correct and validation is skipped.
	chain := cfg.Policy.Enable
	// Adopted feedback: nil until the first window settles, meaning
	// "boot with the boundary snapshot's own (warm-pass) LISP" — which
	// is exactly what the sequential engine's first window boots with.
	var fb *core.LISPState

	i := 0
	for i < nb {
		hi := i + width
		if hi > nb {
			hi = nb
		}
		var wg sync.WaitGroup
		for j := i; j < hi; j++ {
			b := &set.Boundaries[j]
			guess := b.Warm.LISP
			if fb != nil {
				guess = *fb
			}
			if sc.Hooks.WindowScheduled != nil {
				sc.Hooks.WindowScheduled(b.Index)
			}
			wg.Add(1)
			go func(j int, wk *winWorker, guess core.LISPState) {
				defer wg.Done()
				results[j] = runWindowJob(ctx, p, cfg, sp, &set.Boundaries[j], guess, wk)
			}(j, &workers[j-i], guess)
		}
		wg.Wait()

		// Settle in index order; stop the wave at the first feedback
		// misspeculation and re-dispatch the remainder under the
		// corrected chain.
		for i < hi {
			r := results[i]
			b := &set.Boundaries[i]
			if r.err != nil {
				if ctx.Err() != nil && r.err == ctx.Err() {
					return windows, r.err
				}
				return windows, fmt.Errorf("sample: window %d of %s: %w", b.Index, p.Name, r.err)
			}
			ws := WindowStat{
				Index:        b.Index,
				Start:        b.Start,
				MeasuredFrom: b.Start + sp.Warmup,
				Stats:        r.stat,
			}
			windows = append(windows, ws)
			if sc.Hooks.WindowDone != nil {
				sc.Hooks.WindowDone(ws)
			}
			if sc.CheckpointDir != "" {
				// Authoritative rewrite of the provisional warm-pass
				// checkpoint: the boot feedback replaces the warm-pass
				// LISP, converging on the exact bytes the sequential
				// engine writes for this boundary.
				warm := b.Warm
				warm.LISP = r.guess
				ck := &Checkpoint{
					Format:   CheckpointFormat,
					Program:  p.Name,
					Index:    b.Index,
					Start:    b.Start,
					Sampling: sp,
					Emu:      b.Emu,
					Warm:     warm,
				}
				path, err := SaveCheckpoint(sc.CheckpointDir, ck)
				if err != nil {
					return windows, err
				}
				if sc.Hooks.CheckpointWritten != nil {
					sc.Hooks.CheckpointWritten(path, b.Index)
				}
			}
			results[i] = nil
			i++
			if !chain {
				continue
			}
			next := r.fb
			fb = &next
			if i < hi && !lispStateEqual(next, results[i].guess) {
				// Misspeculation: the remaining wave results booted with
				// stale feedback. Discard and re-dispatch from i.
				for k := i; k < hi; k++ {
					results[k] = nil
				}
				break
			}
		}
	}
	return windows, nil
}

// runWindowJob executes one detail window from its boundary snapshot
// with the given boot feedback, recycling the worker slot's pipeline
// scratch. The window span is re-derived from the emulator checkpoint
// (emu.ResumeStream) — the path the checkpoint-equivalence tests prove
// bit-identical to the sequential engine's in-memory record replay.
func runWindowJob(ctx context.Context, p *prog.Program, cfg pipeline.Config, sp Sampling,
	b *Boundary, guess core.LISPState, wk *winWorker) *winOut {

	warm := b.Warm
	warm.LISP = guess
	boot, err := buildBoot(cfg, p, b.Emu, warm)
	if err != nil {
		return &winOut{err: err}
	}
	boot.Scratch = wk.scratch
	n := sp.Warmup + sp.Window + detailPad(cfg)
	src, err := emu.ResumeStream(p, b.Emu, b.Emu.Count+n+1)
	if err != nil {
		return &winOut{err: err}
	}
	pl := pipeline.NewFrom(cfg, p, emu.Limit(src, n), boot)
	stats, err := pl.RunWindowContext(ctx, sp.Warmup, sp.Window)
	if err != nil {
		return &winOut{err: err}
	}
	out := &winOut{stat: *stats, fb: pl.Integrator().LISP.State(), guess: guess}
	wk.scratch = pl.Recycle()
	return out
}

// lispStateEqual reports whether two serialized LISP states are
// identical — the feedback-speculation validation predicate.
func lispStateEqual(a, b core.LISPState) bool {
	if a.Tick != b.Tick || len(a.Entries) != len(b.Entries) {
		return false
	}
	for i := range a.Entries {
		if a.Entries[i] != b.Entries[i] {
			return false
		}
	}
	return true
}
