package sample

import (
	"context"
	"fmt"

	"rix/internal/core"
	"rix/internal/emu"
	"rix/internal/pipeline"
	"rix/internal/prog"
)

// This file is the second phase of the two-phase engine: the cell-side
// coordinator that schedules a detail-window run onto an Executor
// (executor.go) — the in-process work-stealing pool by default, a
// cross-process worker fleet (procexec) when configured.
//
// The only cross-window dependency is the DIVA feedback chain: window
// j+1 must boot with window j's final LISP state. The coordinator runs
// the chain speculatively — it keeps up to the executor's width of
// windows in flight, each dispatched with the feedback known at its
// dispatch time, and settles strictly in index order; a settled window
// whose actual feedback diverges from the next window's speculative
// boot cancels every in-flight successor, which re-dispatch under the
// corrected chain. The window right after a settle always boots with
// validated feedback, so the coordinator always makes progress,
// degrades to sequential execution under a feedback chain that mutates
// every window, and reaches full parallelism on the common quiescent
// chain — while the aggregate stays bit-identical to the sequential
// engine in every case.
//
// Because dispatch and settlement both happen on the coordinator
// goroutine and window results depend only on their boot inputs, the
// dispatch/settle interleaving — and with it the dispatched and
// discarded counts — is deterministic for a given run, regardless of
// which executor, how many slots, or how many competing cells execute
// the windows.

// runTwoPhase is Run's two-phase path: warm pass (or cache hit /
// injected warm set), then the scheduled window phase, then the same
// deterministic index-ordered aggregation as the sequential engine.
func runTwoPhase(ctx context.Context, p *prog.Program, dynLen int, cfg pipeline.Config, sc Config) (*Estimate, error) {
	set, err := prepareWarm(ctx, p, cfg, sc)
	if err != nil {
		return nil, err
	}
	if set.Total > sc.MaxInstrs {
		// The sequential fast-forward would have tripped its budget
		// before the program halted; a cached warm set must not bypass
		// the bound.
		return nil, fmt.Errorf("sample: %s did not halt within %d instructions", p.Name, sc.MaxInstrs)
	}
	windows, err := runParallel(ctx, p, cfg, sc, set)
	if err != nil {
		return nil, err
	}
	total := uint64(dynLen)
	if total == 0 {
		total = set.Total
	}
	return aggregate(sc.Sampling, detailPad(cfg), windows, total), nil
}

// winOut is one speculatively executed window's result, as delivered by
// a scheduler pool slot.
type winOut struct {
	stat pipeline.Stats
	fb   core.LISPState // window's final LISP: the next window's requirement
	err  error
}

// outcome is one in-flight window's delivery from its executor
// goroutine.
type outcome struct {
	res WindowResult
	err error
}

// inflight tracks one dispatched window on the coordinator: the LISP
// guess it booted with (for feedback validation and the checkpoint
// rewrite), the cancel releasing its job context, and the buffered
// delivery channel its executor goroutine writes exactly once.
type inflight struct {
	guess  core.LISPState
	cancel context.CancelFunc
	out    chan outcome
}

// runParallel schedules every boundary's detail window onto an Executor
// — sc.Executor when set, otherwise the in-process pool (the run's own
// Config.Scheduler, or an ephemeral pool of sc.Windows slots) —
// returning WindowStats in index order.
func runParallel(ctx context.Context, p *prog.Program, cfg pipeline.Config, sc Config, set *WarmSet) ([]WindowStat, error) {
	sp := sc.Sampling
	nb := len(set.Boundaries)
	exec := sc.Executor
	if exec == nil {
		sched := sc.Scheduler
		if sched == nil {
			width := sc.Windows
			if width > nb {
				width = nb
			}
			sched = NewScheduler(width)
			defer sched.Close()
		}
		exec = newPoolExecutor(sched, &sc.Hooks)
	}
	depth := exec.Width()
	if depth < 1 {
		depth = 1
	}
	if depth > nb {
		depth = nb
	}
	flights := make([]*inflight, nb)
	// Cancel whatever is still in flight on every exit path, so an error
	// (or ctx cancellation) never leaves this run's jobs occupying a
	// shared executor.
	defer func() {
		for _, f := range flights {
			if f != nil {
				f.cancel()
			}
		}
	}()
	var windows []WindowStat
	// Feedback only chains when the integration policy is on: with it
	// off the boot LISP is ignored by every window, so speculation is
	// vacuously correct and validation is skipped.
	chain := cfg.Policy.Enable
	// Adopted feedback: nil until the first window settles, meaning
	// "boot with the boundary snapshot's own (warm-pass) LISP" — which
	// is exactly what the sequential engine's first window boots with.
	var fb *core.LISPState

	dispatch := func(j int) {
		b := &set.Boundaries[j]
		guess := b.Warm.LISP
		if fb != nil {
			guess = *fb
		}
		if sc.Hooks.WindowScheduled != nil {
			sc.Hooks.WindowScheduled(b.Index)
		}
		jctx, cancel := context.WithCancel(ctx)
		fl := &inflight{guess: guess, cancel: cancel, out: make(chan outcome, 1)}
		job := WindowJob{Prog: p, Config: cfg, Sampling: sp, Boundary: *b, Feedback: guess}
		go func() {
			res, err := exec.Run(jctx, job)
			fl.out <- outcome{res: res, err: err}
		}()
		flights[j] = fl
	}

	next := 0 // next window index to dispatch
	for i := 0; i < nb; i++ {
		// Keep the speculation window full: everything from the settle
		// cursor out to the executor's width is in flight.
		for next < nb && next < i+depth {
			dispatch(next)
			next++
		}
		fl := flights[i]
		flights[i] = nil
		o := <-fl.out
		fl.cancel() // settled: release the job context
		b := &set.Boundaries[i]
		if o.err != nil {
			if ctx.Err() != nil && o.err == ctx.Err() {
				return windows, o.err
			}
			return windows, fmt.Errorf("sample: window %d of %s: %w", b.Index, p.Name, o.err)
		}
		ws := WindowStat{
			Index:        b.Index,
			Start:        b.Start,
			MeasuredFrom: b.Start + sp.Warmup,
			Stats:        o.res.Stats,
		}
		windows = append(windows, ws)
		if sc.Hooks.WindowDone != nil {
			sc.Hooks.WindowDone(ws)
		}
		if next == nb && sc.Hooks.SlotReturned != nil {
			// The run has dispatched its last window: each settle from
			// here on shrinks its in-flight set, releasing one executor
			// slot to whatever cells are still dispatching.
			sc.Hooks.SlotReturned(b.Index)
		}
		if sc.CheckpointDir != "" {
			// Authoritative rewrite of the provisional warm-pass
			// checkpoint: the boot feedback replaces the warm-pass
			// LISP, converging on the exact bytes the sequential
			// engine writes for this boundary.
			warm := b.Warm
			warm.LISP = fl.guess
			ck := &Checkpoint{
				Format:   CheckpointFormat,
				Program:  p.Name,
				Index:    b.Index,
				Start:    b.Start,
				Sampling: sp,
				Emu:      b.Emu,
				Warm:     warm,
			}
			path, err := SaveCheckpoint(sc.CheckpointDir, ck)
			if err != nil {
				return windows, err
			}
			if sc.Hooks.CheckpointWritten != nil {
				sc.Hooks.CheckpointWritten(path, b.Index)
			}
		}
		if !chain {
			continue
		}
		fbNext := o.res.Feedback
		fb = &fbNext
		if i+1 < next && !lispStateEqual(fbNext, flights[i+1].guess) {
			// Misspeculation: every in-flight successor booted with a
			// chain this settle just invalidated. Cancel them and pull
			// the dispatch cursor back, so the next settle iteration
			// re-dispatches under the corrected feedback.
			for k := i + 1; k < next; k++ {
				flights[k].cancel()
				flights[k] = nil
				if sc.Hooks.WindowDiscarded != nil {
					sc.Hooks.WindowDiscarded(set.Boundaries[k].Index)
				}
			}
			next = i + 1
		}
	}
	return windows, nil
}

// runWindowJob executes one detail window job on a pool worker slot's
// pooled boot structures and recycled pipeline scratch. The window span
// is re-derived from the emulator checkpoint (emu.ResumeStream) — the
// path the checkpoint-equivalence tests prove bit-identical to the
// sequential engine's in-memory record replay.
func runWindowJob(ctx context.Context, job WindowJob, sl *slot) *winOut {
	p, cfg, sp := job.Prog, job.Config, job.Sampling
	warm := job.Boundary.Warm
	warm.LISP = job.Feedback
	boot, err := sl.bootFrom(cfg, p, job.Boundary.Emu, warm)
	if err != nil {
		return &winOut{err: err}
	}
	n := sp.Warmup + sp.Window + detailPad(cfg)
	src, err := emu.ResumeStream(p, job.Boundary.Emu, job.Boundary.Emu.Count+n+1)
	if err != nil {
		return &winOut{err: err}
	}
	pl := pipeline.NewFrom(cfg, p, emu.Limit(src, n), boot)
	stats, err := pl.RunWindowContext(ctx, sp.Warmup, sp.Window)
	if err != nil {
		return &winOut{err: err}
	}
	out := &winOut{stat: *stats, fb: pl.Integrator().LISP.State()}
	sl.scratch = pl.Recycle()
	return out
}

// lispStateEqual reports whether two serialized LISP states are
// identical — the feedback-speculation validation predicate.
func lispStateEqual(a, b core.LISPState) bool {
	if a.Tick != b.Tick || len(a.Entries) != len(b.Entries) {
		return false
	}
	for i := range a.Entries {
		if a.Entries[i] != b.Entries[i] {
			return false
		}
	}
	return true
}
