package sample

import (
	"context"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"

	"rix/internal/emu"
	"rix/internal/pipeline"
	"rix/internal/prog"
)

// This file is the stride-snapshot subsystem behind the sharded warm
// pass. A stride pass is a plain linear scan of the whole trace —
// emulator plus warmer, every instruction observed — that captures the
// full resumable state (emu.State + WarmSnapshot) at every multiple of
// a coarse stride. Because the warm pass warms every instruction
// regardless of where the measurement windows land, and the only state
// it never touches functionally (LISP, CHT) is untrained until the
// window phase, the state at dynamic count k·S is the same for every
// window layout: one stride set serves warm passes for any Sampling.
// That is what makes the snapshots cacheable under a key that ignores
// the layout (strideKey), and what lets warm workers resume from them
// and reproduce the sequential pass's boundary snapshots bit-for-bit.
//
// Stride sets are produced three ways: PrepareStrides builds one
// directly; a sequential warm pass with a cache directory records one
// as a near-free byproduct (the copy-on-write emulator memory makes
// each capture O(resident pages)); and the content-addressed cache
// (.stride entries alongside .warmset ones) persists them across
// processes. doc/FORMATS.md documents the entry layout and key.

// StrideCacheFormat versions the on-disk stride-set encoding
// (doc/FORMATS.md). Bump it whenever StrideSet, Stride, WarmSnapshot or
// emu.State change shape.
const StrideCacheFormat = 1

// Stride is one resumable position in the trace: the complete emulator
// and warm state after exactly Count instructions.
type Stride struct {
	Count uint64
	Emu   emu.State
	Warm  WarmSnapshot
}

// StrideSet is a stride pass's output: snapshots at every multiple of
// Stride up to the program's halt at Total, sorted by Count (count 0 is
// not stored — a worker whose span starts there boots a fresh emulator
// and warmer instead). Key is the content-addressed identity the set
// was built under (strideKey); consumers revalidate it against their
// own program and geometry before resuming from the snapshots, so a set
// can never silently warm the wrong machine. A StrideSet is read-only
// once built and may be shared by concurrent runs (Config.Strides).
type StrideSet struct {
	Program string
	Stride  uint64
	Total   uint64 // dynamic instruction count at program halt
	Key     string
	Strides []Stride
}

// strideKey derives the stride cache key. It hashes the same inputs as
// warmKey except the window layout and drain pad — stride snapshots
// are layout-independent, which is the point. The stride itself is
// deliberately not keyed either: snapshots at any spacing resume a
// warm worker correctly, so one entry per (program, geometry) serves
// every stride request, and the entry's recorded Stride field simply
// wins over Config.WarmStride. Delete the entry to re-record at a
// different spacing.
func strideKey(p *prog.Program, cfg pipeline.Config) string {
	h := sha256.New()
	fmt.Fprintf(h, "strideset/%d/%d\n", StrideCacheFormat, CheckpointFormat)
	fmt.Fprintf(h, "prog/%s/%#x/%#x/%#x/%#x/%d\n", p.Name, p.CodeBase, p.Entry, p.StackTop, p.DataBase, len(p.Data))
	h.Write(p.Data)
	fmt.Fprintf(h, "\ncode/%#v\n", p.Code)
	fmt.Fprintf(h, "mem/%#v\n", cfg.Mem)
	fmt.Fprintf(h, "pred/%#v\n", cfg.Pred)
	fmt.Fprintf(h, "lisp/%#v\n", cfg.LISP)
	fmt.Fprintf(h, "enable/%v\n", cfg.Policy.Enable)
	return hex.EncodeToString(h.Sum(nil))
}

// strideFile is the cache entry envelope, mirroring warmSetFile.
type strideFile struct {
	Format           int
	CheckpointFormat int
	Key              string
	Set              StrideSet
}

// strideSetPath names a key's cache file.
func strideSetPath(dir, key string) string {
	return filepath.Join(dir, key[:16]+".stride")
}

// loadStrideSet returns the cached stride set for key, or nil on any
// kind of miss (absent, unreadable, format/key/content mismatch).
func loadStrideSet(dir, key, program string) (*StrideSet, string) {
	path := strideSetPath(dir, key)
	f, err := os.Open(path)
	if err != nil {
		return nil, ""
	}
	defer f.Close()
	var sf strideFile
	if err := gob.NewDecoder(f).Decode(&sf); err != nil {
		return nil, ""
	}
	if sf.Format != StrideCacheFormat || sf.CheckpointFormat != CheckpointFormat || sf.Key != key {
		return nil, ""
	}
	if sf.Set.Program != program || sf.Set.Key != key || sf.Set.Stride == 0 {
		return nil, ""
	}
	return &sf.Set, path
}

// saveStrideSet atomically persists a stride set under its key, exactly
// like saveWarmSet.
func saveStrideSet(dir string, set *StrideSet) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("sample: stride cache dir: %w", err)
	}
	path := strideSetPath(dir, set.Key)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return "", fmt.Errorf("sample: stride cache: %w", err)
	}
	err = gob.NewEncoder(f).Encode(&strideFile{
		Format:           StrideCacheFormat,
		CheckpointFormat: CheckpointFormat,
		Key:              set.Key,
		Set:              *set,
	})
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("sample: stride cache %s: %w", path, err)
	}
	return path, nil
}

// strideRec accumulates stride snapshots during a linear warm scan. A
// nil *strideRec disables recording; capture is called after every
// observed instruction and snapshots exactly at stride multiples.
type strideRec struct {
	set  *StrideSet
	next uint64
}

func newStrideRec(p *prog.Program, key string, stride uint64) *strideRec {
	return &strideRec{
		set:  &StrideSet{Program: p.Name, Stride: stride, Key: key},
		next: stride,
	}
}

// capture snapshots the scan state when it has just reached the next
// stride multiple. Cheap to call per instruction: one compare on the
// miss path.
func (sr *strideRec) capture(e *emu.Emulator, w *warmer) {
	if sr == nil || e.Count != sr.next {
		return
	}
	sr.set.Strides = append(sr.set.Strides, Stride{Count: e.Count, Emu: e.State(), Warm: w.snapshot()})
	sr.next += sr.set.Stride
}

// finish stamps the halt count and returns the completed set.
func (sr *strideRec) finish(total uint64) *StrideSet {
	sr.set.Total = total
	return sr.set
}

// PrepareStrides returns the stride set for (p, cfg, sc): the injected
// sc.Strides when present, else a cache load (sc.CacheDir), else one
// stride pass over the whole trace — saved back into the cache when
// sc.CacheDir is set. The stride is sc.WarmStride (default: the
// sampling interval). Prepare once and inject via Config.Strides to
// give every subsequent warm pass — for any window layout — a sharded
// build.
func PrepareStrides(ctx context.Context, p *prog.Program, cfg pipeline.Config, sc Config) (*StrideSet, error) {
	sc, err := sc.normalized()
	if err != nil {
		return nil, err
	}
	return prepareStrides(ctx, p, cfg, sc)
}

// prepareStrides is PrepareStrides over an already-normalized Config.
func prepareStrides(ctx context.Context, p *prog.Program, cfg pipeline.Config, sc Config) (*StrideSet, error) {
	if sc.Strides != nil {
		if err := validateStrides(sc.Strides, p, cfg); err != nil {
			return nil, err
		}
		return sc.Strides, nil
	}
	key := strideKey(p, cfg)
	if sc.CacheDir != "" {
		if set, path := loadStrideSet(sc.CacheDir, key, p.Name); set != nil {
			touchWarmSet(path)
			if sc.Hooks.CacheHit != nil {
				sc.Hooks.CacheHit(path)
			}
			return set, nil
		}
	}
	set, err := stridePass(ctx, p, cfg, sc, key)
	if err != nil {
		return nil, err
	}
	if sc.CacheDir != "" {
		// Best-effort, like the warm-set save.
		if path, err := saveStrideSet(sc.CacheDir, set); err == nil {
			if sc.Hooks.CacheWritten != nil {
				sc.Hooks.CacheWritten(path)
			}
			sweepWarmCache(sc.CacheDir, sc.CacheMaxBytes, sc.CacheMaxAge, path)
		}
	}
	return set, nil
}

// validateStrides checks that a stride set was built for exactly this
// program and warm-relevant geometry, by re-deriving its key.
func validateStrides(set *StrideSet, p *prog.Program, cfg pipeline.Config) error {
	if set.Stride == 0 || set.Total == 0 {
		return fmt.Errorf("sample: stride set is empty or unbuilt")
	}
	if key := strideKey(p, cfg); set.Key != key {
		return fmt.Errorf("sample: stride set does not match %s under this machine geometry", p.Name)
	}
	return nil
}

// stridePass is the dedicated stride builder: one linear warm scan of
// the whole trace, snapshotting at every stride multiple. Identical
// per-instruction warming to the warm pass proper, so its snapshots
// resume into bit-identical state.
func stridePass(ctx context.Context, p *prog.Program, cfg pipeline.Config, sc Config, key string) (*StrideSet, error) {
	e := emu.New(p)
	w := newWarmer(cfg)
	sr := newStrideRec(p, key, sc.WarmStride)
	done := ctx.Done()
	for !e.Halted {
		if e.Count&(cancelCheckInterval-1) == 0 {
			if done != nil {
				select {
				case <-done:
					return nil, ctx.Err()
				default:
				}
			}
			if sc.Hooks.Progress != nil {
				sc.Hooks.Progress(e.Count)
			}
		}
		if e.Count >= sc.MaxInstrs {
			return nil, fmt.Errorf("sample: %s did not halt within %d instructions", p.Name, sc.MaxInstrs)
		}
		pc := e.PC
		rec, err := e.Step()
		if err != nil {
			return nil, fmt.Errorf("sample: stride pass failed: %w", err)
		}
		w.observe(p.Code[rec.CodeIdx], pc, rec, e.PC)
		sr.capture(e, w)
	}
	return sr.finish(e.Count), nil
}
