package sample

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"

	"rix/internal/pipeline"
	"rix/internal/prog"
)

// This file is the content-addressed warm-set cache: the warm pass's
// output keyed by everything that determines it, so a repeat run
// skips the warm pass entirely and any invalidating change is a clean
// miss rather than a stale hit. doc/FORMATS.md is the authoritative
// description of the entry layout, key derivation, invalidation
// rules, and the LRU sweep (sweep.go) — keep it in lockstep with any
// change here.

// WarmCacheFormat versions the on-disk warm-set encoding
// (doc/FORMATS.md). Bump it whenever WarmSet, Boundary, WarmSnapshot
// or emu.State change shape.
const WarmCacheFormat = 1

// warmSetFile is the cache entry envelope. The embedded key detects a
// (vanishingly unlikely) truncated-filename collision; the format pair
// rejects entries written by other encodings.
type warmSetFile struct {
	Format           int
	CheckpointFormat int
	Key              string
	Set              WarmSet
}

// warmKey derives the cache key: a SHA-256 over the format versions,
// the program's execution content, the window layout plus drain pad,
// and the warm-relevant machine geometry. doc/FORMATS.md documents
// each keyed input and why it is (or is not) included — notably the
// policy's Enable bit standing in for the whole integration preset.
func warmKey(p *prog.Program, cfg pipeline.Config, sp Sampling) string {
	h := sha256.New()
	fmt.Fprintf(h, "warmset/%d/%d\n", WarmCacheFormat, CheckpointFormat)
	fmt.Fprintf(h, "prog/%s/%#x/%#x/%#x/%#x/%d\n", p.Name, p.CodeBase, p.Entry, p.StackTop, p.DataBase, len(p.Data))
	h.Write(p.Data)
	fmt.Fprintf(h, "\ncode/%#v\n", p.Code)
	fmt.Fprintf(h, "sampling/%#v\n", sp)
	fmt.Fprintf(h, "pad/%d\n", detailPad(cfg))
	fmt.Fprintf(h, "mem/%#v\n", cfg.Mem)
	fmt.Fprintf(h, "pred/%#v\n", cfg.Pred)
	fmt.Fprintf(h, "lisp/%#v\n", cfg.LISP)
	fmt.Fprintf(h, "enable/%v\n", cfg.Policy.Enable)
	return hex.EncodeToString(h.Sum(nil))
}

// warmSetPath names a key's cache file. The truncated key keeps names
// readable; the full key inside the envelope disambiguates.
func warmSetPath(dir, key string) string {
	return filepath.Join(dir, key[:16]+".warmset")
}

// loadWarmSet returns the cached warm set for key, or nil on any kind
// of miss (absent, unreadable, format/key/content mismatch).
func loadWarmSet(dir, key, program string, sp Sampling) (*WarmSet, string) {
	path := warmSetPath(dir, key)
	f, err := os.Open(path)
	if err != nil {
		return nil, ""
	}
	defer f.Close()
	var wf warmSetFile
	if err := gob.NewDecoder(f).Decode(&wf); err != nil {
		return nil, ""
	}
	if wf.Format != WarmCacheFormat || wf.CheckpointFormat != CheckpointFormat || wf.Key != key {
		return nil, ""
	}
	if wf.Set.Program != program || wf.Set.Sampling != sp {
		return nil, ""
	}
	return &wf.Set, path
}

// saveWarmSet atomically persists a warm set under its key (tmp +
// rename, like SaveCheckpoint): a crash mid-write leaves no partial
// entry, and a concurrent writer of the same key simply wins the
// rename with identical contents.
func saveWarmSet(dir, key string, set *WarmSet) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("sample: warm cache dir: %w", err)
	}
	path := warmSetPath(dir, key)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return "", fmt.Errorf("sample: warm cache: %w", err)
	}
	err = gob.NewEncoder(f).Encode(&warmSetFile{
		Format:           WarmCacheFormat,
		CheckpointFormat: CheckpointFormat,
		Key:              key,
		Set:              *set,
	})
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("sample: warm cache %s: %w", path, err)
	}
	return path, nil
}
