package sample

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"rix/internal/pipeline"
)

// WindowStat is one measurement window's contribution to an estimate.
type WindowStat struct {
	Index        int
	Start        uint64 // dynamic instruction where the detailed run (warmup) begins
	MeasuredFrom uint64 // Start + Warmup: first measured instruction
	Stats        pipeline.Stats
}

// Estimate aggregates per-window measurements into whole-run estimates
// with approximate error bounds.
//
// Ratio metrics (IPC, integration rate, any Stats-derived rate) come
// from Agg, the component-wise sum of measured windows, so they are the
// sample-weighted estimates of the full-run values. The CI95 fields are
// approximate 95% confidence half-widths derived from the between-window
// variance (normal approximation; with fewer than two windows they are
// zero and no bound is claimed).
type Estimate struct {
	Sampling Sampling
	Windows  []WindowStat

	TotalInstrs    uint64 // full dynamic length of the run
	SampledInstrs  uint64 // measured instructions (sum of window Retired)
	DetailedInstrs uint64 // detailed-mode instructions including warmup prefixes

	Agg pipeline.Stats // component-wise sum of measured windows

	IPCCI95  float64 // relative half-width on IPC
	RateCI95 float64 // absolute half-width on integration rate
}

// aggregate folds windows (any dispatch order) into an Estimate. pad is
// the per-window drain pad (counted as detailed work). Windows that
// measured nothing (the stream ended inside their warmup) are dropped.
func aggregate(sp Sampling, pad uint64, windows []WindowStat, total uint64) *Estimate {
	sort.Slice(windows, func(i, j int) bool { return windows[i].Index < windows[j].Index })
	est := &Estimate{Sampling: sp, TotalInstrs: total}
	var ipcs, rates []float64
	for _, w := range windows {
		if w.Stats.Retired == 0 {
			continue
		}
		est.Windows = append(est.Windows, w)
		est.Agg.Add(&w.Stats)
		est.SampledInstrs += w.Stats.Retired
		est.DetailedInstrs += sp.Warmup + w.Stats.Retired + pad
		ipcs = append(ipcs, w.Stats.IPC())
		rates = append(rates, w.Stats.IntegrationRate())
	}
	if mean, half := ci95(ipcs); mean > 0 {
		est.IPCCI95 = half / mean
	}
	_, est.RateCI95 = ci95(rates)
	return est
}

// ci95 returns the arithmetic mean and the approximate 95% confidence
// half-width (1.96 standard errors, normal approximation) of vals. With
// fewer than two values the half-width is zero: no bound is claimable.
func ci95(vals []float64) (mean, half float64) {
	n := float64(len(vals))
	if n == 0 {
		return 0, 0
	}
	for _, v := range vals {
		mean += v
	}
	mean /= n
	if n < 2 {
		return mean, 0
	}
	var ss float64
	for _, v := range vals {
		d := v - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / (n - 1))
	return mean, 1.96 * sd / math.Sqrt(n)
}

// IPC is the sample-weighted IPC estimate.
func (e *Estimate) IPC() float64 { return e.Agg.IPC() }

// IntegrationRate is the sample-weighted integration-rate estimate.
func (e *Estimate) IntegrationRate() float64 { return e.Agg.IntegrationRate() }

// EstimatedCycles extrapolates the whole-run cycle count from the IPC
// estimate.
func (e *Estimate) EstimatedCycles() uint64 {
	ipc := e.IPC()
	if ipc == 0 {
		return 0
	}
	return uint64(float64(e.TotalInstrs)/ipc + 0.5)
}

// DetailFraction is the fraction of the run simulated in detail (warmup
// prefixes included) — the reciprocal of the sampling work speedup.
func (e *Estimate) DetailFraction() float64 {
	if e.TotalInstrs == 0 {
		return 0
	}
	return float64(e.DetailedInstrs) / float64(e.TotalInstrs)
}

// StatsEstimate returns the aggregated measured Stats — the drop-in
// value for collectors keyed on *pipeline.Stats. Absolute counters cover
// only the measured windows; every ratio (IPC, rates, per-million
// metrics) estimates the full run.
func (e *Estimate) StatsEstimate() *pipeline.Stats {
	cp := e.Agg
	return &cp
}

// Summary renders the canonical one-look sampled summary block from
// already-aggregated values (no trailing newline). Estimate.String and
// the run API's result summary share it, so the block cannot drift
// between the engine and the CLIs.
func Summary(sampledInstrs, totalInstrs uint64, detailFrac float64, windows int, sp Sampling,
	ipc, ipcCI95, rate, rateCI95 float64, estCycles uint64) string {

	var b strings.Builder
	fmt.Fprintf(&b, "sampled %d/%d instructions (%.1f%% detail incl. warmup) over %d windows (%s)\n",
		sampledInstrs, totalInstrs, 100*detailFrac, windows, sp)
	fmt.Fprintf(&b, "IPC              %.3f ±%.1f%% (95%% CI)\n", ipc, 100*ipcCI95)
	fmt.Fprintf(&b, "integration rate %.2f%% ±%.2fpp (95%% CI)\n", 100*rate, 100*rateCI95)
	fmt.Fprintf(&b, "est. cycles      %d", estCycles)
	return b.String()
}

// String renders a one-look summary block (trailing newline included,
// the historical contract).
func (e *Estimate) String() string {
	return Summary(e.SampledInstrs, e.TotalInstrs, e.DetailFraction(), len(e.Windows), e.Sampling,
		e.IPC(), e.IPCCI95, e.IntegrationRate(), e.RateCI95, e.EstimatedCycles()) + "\n"
}
