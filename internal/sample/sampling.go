package sample

import (
	"fmt"
	"strconv"
	"strings"
)

// Sampling selects checkpointed interval sampling for a run: instead of
// simulating every instruction in detail, the run fast-forwards
// functionally (warming caches, TLBs and branch predictors along the
// way) and drops into the detailed pipeline only for periodic
// measurement windows. This package implements the engine; sim.Options
// carries the knobs (referenced from sim.Options) so experiment specs,
// run.Requests and CLIs can declare sampled variants.
//
// Window layout, in dynamic instructions: a detailed run starts every
// Interval instructions, spends Warmup instructions in warmup mode
// (detailed execution, statistics gated off — this is what warms the
// integration table, whose entries cannot be warmed functionally), then
// measures Window instructions. The detailed fraction of the run is
// (Warmup+Window)/Interval.
type Sampling struct {
	Interval uint64 `json:"interval"` // distance between detailed-run starts
	Window   uint64 `json:"window"`   // measured instructions per window
	Warmup   uint64 `json:"warmup"`   // detailed warmup prefix per window (stats gated off)
}

// DefaultSampling is the tuned default: a ~7% detailed fraction (≥12×
// less detailed work, drain pad included) that keeps the documented
// accuracy bounds (IPCErrBound, RateErrBound) on the benchmark suite.
func DefaultSampling() Sampling {
	return Sampling{Interval: 16000, Window: 600, Warmup: 300}
}

// Validate rejects degenerate layouts: every field positive and windows
// that do not overlap the next interval's start.
func (s Sampling) Validate() error {
	if s.Interval == 0 || s.Window == 0 {
		return fmt.Errorf("sample: sampling interval and window must be positive (got %d/%d)",
			s.Interval, s.Window)
	}
	if s.Warmup+s.Window > s.Interval {
		return fmt.Errorf("sample: sampling warmup+window %d exceeds interval %d (windows would overlap)",
			s.Warmup+s.Window, s.Interval)
	}
	return nil
}

// String renders the canonical flag form, interval/window/warmup.
func (s Sampling) String() string {
	return fmt.Sprintf("%d/%d/%d", s.Interval, s.Window, s.Warmup)
}

// ParseSampling parses the CLI forms of a sampling spec: "default" (or
// "on") for DefaultSampling, or "interval/window[/warmup]" in dynamic
// instructions (e.g. "25000/1000/500").
func ParseSampling(s string) (Sampling, error) {
	switch s {
	case "default", "on":
		return DefaultSampling(), nil
	}
	parts := strings.Split(s, "/")
	if len(parts) != 2 && len(parts) != 3 {
		return Sampling{}, fmt.Errorf("sample: sampling spec %q, want interval/window[/warmup] or \"default\"", s)
	}
	var vals [3]uint64
	vals[2] = DefaultSampling().Warmup
	for i, p := range parts {
		v, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return Sampling{}, fmt.Errorf("sample: sampling spec %q: bad count %q", s, p)
		}
		vals[i] = v
	}
	sp := Sampling{Interval: vals[0], Window: vals[1], Warmup: vals[2]}
	return sp, sp.Validate()
}
