package procexec_test

import (
	"testing"

	"rix/internal/testutil"
)

// TestMain fails the package if any test leaks a goroutine — worker
// loops, heartbeat tickers, and coordinator poll loops must all be
// joined by the time their test returns.
func TestMain(m *testing.M) {
	testutil.VerifyNoLeaks(m)
}
