package procexec_test

import (
	"context"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"rix/internal/sample"
	"rix/internal/sample/procexec"
	"rix/internal/sim"
	"rix/internal/workload"
)

func buildBench(t testing.TB, name string) workload.Built {
	t.Helper()
	b, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("workload %q not registered", name)
	}
	bw, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return bw
}

// fastCoord is a test-speed coordinator config: tight polling, generous
// lease expiry (workers heartbeat constantly; only the crash tests
// shrink it).
func fastCoord() procexec.Config {
	return procexec.Config{Width: 4, Poll: 2 * time.Millisecond, LeaseExpiry: 5 * time.Second}
}

func fastWorker() procexec.WorkerConfig {
	return procexec.WorkerConfig{Poll: 2 * time.Millisecond, Heartbeat: 20 * time.Millisecond}
}

// startWorkers runs n in-process Work loops over dir — the same code
// path `rixsim -worker` runs, minus the process boundary — and returns
// a stop func that shuts them down and waits for them to exit.
func startWorkers(t *testing.T, dir string, n int, wc procexec.WorkerConfig) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		id := wc
		id.ID = fmt.Sprintf("test-worker-%d", i)
		go func() {
			defer wg.Done()
			procexec.Work(ctx, dir, id) //nolint:errcheck — exits with ctx.Err() on stop
		}()
	}
	return func() { cancel(); wg.Wait() }
}

// TestCrossProcessBitEqual is the executor abstraction's core
// guarantee: a sampled run whose windows execute on cooperating worker
// loops over a shared directory — the cross-process mode — produces an
// Estimate bit-identical to the sequential engine's. gzip is
// feedback-quiescent; crafty trains its LISP mid-run, so its
// misspeculations exercise discarded dispatches (withdrawn manifests)
// through the file protocol.
func TestCrossProcessBitEqual(t *testing.T) {
	ctx := context.Background()
	cfg, err := (sim.Options{Integration: sim.IntReverse}).Config()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"gzip", "crafty"} {
		bw := buildBench(t, name)
		seq, err := sample.Run(ctx, bw.Prog, bw.DynLen, cfg, sample.Config{})
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		stop := startWorkers(t, dir, 2, fastWorker())
		coord, err := procexec.New(dir, fastCoord())
		if err != nil {
			t.Fatal(err)
		}
		cross, err := sample.Run(ctx, bw.Prog, bw.DynLen, cfg, sample.Config{Executor: coord})
		stop()
		if err != nil {
			t.Fatalf("%s cross-process: %v", name, err)
		}
		if !reflect.DeepEqual(cross, seq) {
			t.Errorf("%s: cross-process estimate diverges from sequential", name)
		}
	}
}

// TestConcurrentRunsSharedDir races two coordinators (one per sampled
// run) and three worker loops on one directory — the multi-process,
// shared-cache-dir contention case, run under -race in CI. Distinct run
// IDs must keep the runs' files apart; every lease must be won exactly
// once (no double claims, tallied across all workers); and both
// estimates must stay bit-identical to their sequential counterparts.
func TestConcurrentRunsSharedDir(t *testing.T) {
	ctx := context.Background()
	cfg, err := (sim.Options{Integration: sim.IntReverse}).Config()
	if err != nil {
		t.Fatal(err)
	}
	benches := []string{"gzip", "crafty"}
	seq := make([]*sample.Estimate, len(benches))
	for i, name := range benches {
		bw := buildBench(t, name)
		if seq[i], err = sample.Run(ctx, bw.Prog, bw.DynLen, cfg, sample.Config{}); err != nil {
			t.Fatal(err)
		}
	}

	dir := t.TempDir()
	var mu sync.Mutex
	claims := map[string]int{}
	wc := fastWorker()
	wc.OnClaim = func(job string, window int) {
		mu.Lock()
		claims[job]++
		mu.Unlock()
	}
	stop := startWorkers(t, dir, 3, wc)
	defer stop()

	ests := make([]*sample.Estimate, len(benches))
	errs := make([]error, len(benches))
	var wg sync.WaitGroup
	for i, name := range benches {
		bw := buildBench(t, name)
		coord, err := procexec.New(dir, fastCoord())
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ests[i], errs[i] = sample.Run(ctx, bw.Prog, bw.DynLen, cfg, sample.Config{Executor: coord})
		}(i)
	}
	wg.Wait()
	stop()
	for i, name := range benches {
		if errs[i] != nil {
			t.Fatalf("%s: %v", name, errs[i])
		}
		if !reflect.DeepEqual(ests[i], seq[i]) {
			t.Errorf("%s: shared-dir estimate diverges from sequential", name)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(claims) == 0 {
		t.Fatal("no claims observed")
	}
	for job, n := range claims {
		if n != 1 {
			t.Errorf("job %s claimed %d times; the exclusive lease must be won exactly once", job, n)
		}
	}
}

// oneJob prepares a single dispatchable WindowJob plus its expected
// result, for tests that drive Coordinator.Run directly.
func oneJob(t *testing.T) (sample.WindowJob, sample.WindowResult) {
	t.Helper()
	ctx := context.Background()
	bw := buildBench(t, "gzip")
	cfg, err := (sim.Options{Integration: sim.IntReverse}).Config()
	if err != nil {
		t.Fatal(err)
	}
	warm, err := sample.PrepareWarm(ctx, bw.Prog, cfg, sample.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(warm.Boundaries) < 2 {
		t.Fatalf("only %d boundaries", len(warm.Boundaries))
	}
	b := warm.Boundaries[1]
	job := sample.WindowJob{
		Prog:     bw.Prog,
		Config:   cfg,
		Sampling: warm.Sampling,
		Boundary: b,
		Feedback: b.Warm.LISP,
	}
	want, err := sample.ExecuteWindow(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	return job, want
}

// waitForFile polls for a glob match under the jobs dir.
func waitForFile(t *testing.T, dir, pattern string) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		matches, err := filepath.Glob(filepath.Join(dir, procexec.JobsDir, pattern))
		if err != nil {
			t.Fatal(err)
		}
		if len(matches) > 0 {
			return matches[0]
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("no %s appeared in %s", pattern, dir)
	return ""
}

// TestCorruptResultIsMiss pins the warm-cache discipline on the result
// side of the protocol: a torn or garbage result entry is deleted and
// the job re-offered — never decoded into a bogus measurement — and the
// eventually collected result is the real one.
func TestCorruptResultIsMiss(t *testing.T) {
	ctx := context.Background()
	job, want := oneJob(t)
	dir := t.TempDir()
	coord, err := procexec.New(dir, fastCoord())
	if err != nil {
		t.Fatal(err)
	}
	type outcome struct {
		res sample.WindowResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := coord.Run(ctx, job)
		done <- outcome{res, err}
	}()

	jobPath := waitForFile(t, dir, "*.job")
	base := strings.TrimSuffix(filepath.Base(jobPath), ".job")
	resultPath := filepath.Join(dir, procexec.JobsDir, base+".result")
	if err := os.WriteFile(resultPath, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	// The coordinator must discard the corrupt entry and keep waiting;
	// only then start a real worker to finish the job.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(resultPath); os.IsNotExist(err) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("corrupt result was never discarded")
		}
		time.Sleep(2 * time.Millisecond)
	}
	stop := startWorkers(t, dir, 1, fastWorker())
	defer stop()
	o := <-done
	if o.err != nil {
		t.Fatalf("run after corrupt result: %v", o.err)
	}
	if !reflect.DeepEqual(o.res, want) {
		t.Error("result after corrupt-entry miss diverges from direct execution")
	}
}

// claimAs fakes a worker's exclusive claim without ever heartbeating —
// the crash stand-in for the orphan tests.
func claimAs(t *testing.T, dir, base, worker string) {
	t.Helper()
	path := filepath.Join(dir, procexec.JobsDir, base+".lease")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		t.Fatalf("claim %s: %v", base, err)
	}
	err = gob.NewEncoder(f).Encode(&procexec.Lease{
		Format: procexec.LeaseFormat, Job: base, Worker: worker, PID: os.Getpid(),
	})
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
}

// TestWorkerCrashRedispatch: a worker that claims a window and dies
// (its lease goes stale) must not wedge the run — the coordinator
// breaks the lease and the surviving worker re-claims and finishes the
// window, with the result unchanged.
func TestWorkerCrashRedispatch(t *testing.T) {
	ctx := context.Background()
	job, want := oneJob(t)
	dir := t.TempDir()
	cc := fastCoord()
	cc.LeaseExpiry = 50 * time.Millisecond
	cc.MaxRedispatch = 1
	var mu sync.Mutex
	var claimants []string
	cc.OnLeaseClaimed = func(job, worker string, window int) {
		mu.Lock()
		claimants = append(claimants, worker)
		mu.Unlock()
	}
	coord, err := procexec.New(dir, cc)
	if err != nil {
		t.Fatal(err)
	}
	type outcome struct {
		res sample.WindowResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := coord.Run(ctx, job)
		done <- outcome{res, err}
	}()

	jobPath := waitForFile(t, dir, "*.job")
	base := strings.TrimSuffix(filepath.Base(jobPath), ".job")
	claimAs(t, dir, base, "crashed-worker")
	// Wait for the coordinator to break the stale lease (the
	// re-dispatch), then bring up a live worker to take it over.
	leasePath := filepath.Join(dir, procexec.JobsDir, base+".lease")
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(leasePath); os.IsNotExist(err) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stale lease was never broken")
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop := startWorkers(t, dir, 1, fastWorker())
	defer stop()
	o := <-done
	if o.err != nil {
		t.Fatalf("run after worker crash: %v", o.err)
	}
	if !reflect.DeepEqual(o.res, want) {
		t.Error("re-dispatched result diverges from direct execution")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(claimants) == 0 || claimants[0] != "crashed-worker" {
		t.Errorf("claimants %v; want the crashed worker observed first", claimants)
	}
}

// TestWorkerCrashNamedInError: with the re-dispatch budget exhausted,
// the coordinator must fail the run with an error naming both the
// orphaned window and the worker that abandoned it — "some window
// timed out somewhere" is not actionable on a fleet.
func TestWorkerCrashNamedInError(t *testing.T) {
	ctx := context.Background()
	job, _ := oneJob(t)
	dir := t.TempDir()
	cc := fastCoord()
	cc.LeaseExpiry = 50 * time.Millisecond
	cc.MaxRedispatch = -1 // no re-dispatch budget: first orphan is fatal
	coord, err := procexec.New(dir, cc)
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := coord.Run(ctx, job)
		errCh <- err
	}()
	jobPath := waitForFile(t, dir, "*.job")
	base := strings.TrimSuffix(filepath.Base(jobPath), ".job")
	claimAs(t, dir, base, "crashed-worker-7")
	err = <-errCh
	if err == nil {
		t.Fatal("orphaned window with no re-dispatch budget did not fail")
	}
	msg := err.Error()
	wantWindow := fmt.Sprintf("window %d", job.Boundary.Index)
	if !strings.Contains(msg, wantWindow) || !strings.Contains(msg, "crashed-worker-7") {
		t.Errorf("error %q does not name the orphaned window (%s) and worker (crashed-worker-7)", msg, wantWindow)
	}
}

// TestSweepMidClaim races the warm-cache LRU sweep against cross-process
// claims on the same cache directory: a cache-bounded sampled run
// (CacheMaxBytes forces a sweep after every save) loops while a
// cross-process run dispatches window jobs into the directory's
// windows/ subdirectory. The sweep only considers .warmset/.stride
// entries at the cache root, so the job files must survive and both
// estimates must stay exact. Run under -race in CI.
func TestSweepMidClaim(t *testing.T) {
	ctx := context.Background()
	cfg, err := (sim.Options{Integration: sim.IntReverse}).Config()
	if err != nil {
		t.Fatal(err)
	}
	bw := buildBench(t, "crafty")
	seq, err := sample.Run(ctx, bw.Prog, bw.DynLen, cfg, sample.Config{})
	if err != nil {
		t.Fatal(err)
	}
	gz := buildBench(t, "gzip")

	dir := t.TempDir()
	stop := startWorkers(t, dir, 2, fastWorker())
	defer stop()

	sweeping := make(chan error, 1)
	go func() {
		// Every iteration saves a warm set and immediately sweeps the
		// directory down to one entry, concurrently with the claims.
		for i := 0; i < 3; i++ {
			sc := sample.Config{CacheDir: dir, Windows: 2, CacheMaxBytes: 1}
			if _, err := sample.Run(ctx, gz.Prog, gz.DynLen, cfg, sc); err != nil {
				sweeping <- err
				return
			}
		}
		sweeping <- nil
	}()

	coord, err := procexec.New(dir, fastCoord())
	if err != nil {
		t.Fatal(err)
	}
	cross, err := sample.Run(ctx, bw.Prog, bw.DynLen, cfg, sample.Config{Executor: coord})
	if err != nil {
		t.Fatalf("cross-process run under cache sweeps: %v", err)
	}
	if err := <-sweeping; err != nil {
		t.Fatalf("sweeping run: %v", err)
	}
	if !reflect.DeepEqual(cross, seq) {
		t.Error("cross-process estimate diverges under concurrent LRU sweeps")
	}
}

// TestWorkerIdleExit: a worker with an idle bound exits cleanly (nil,
// not ctx.Err()) when no work shows up — the mode CI smoke jobs use so
// orphaned workers cannot outlive their step.
func TestWorkerIdleExit(t *testing.T) {
	wc := fastWorker()
	wc.Idle = 30 * time.Millisecond
	if err := procexec.Work(context.Background(), t.TempDir(), wc); err != nil {
		t.Fatalf("idle worker exit: %v", err)
	}
}
