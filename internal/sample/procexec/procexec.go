// Package procexec is the cross-process window executor: a Coordinator
// that implements sample.Executor by writing window-job manifests into
// a shared cache directory, and a Work loop (run by `rixsim -worker
// <cachedir>`) that claims those manifests, executes their windows, and
// writes results back. Together they shard one sampled run's detail
// windows across any number of cooperating processes — on one machine
// or many sharing a filesystem — while the two-phase coordinator's
// speculation logic (and therefore the estimate, bit for bit) stays
// exactly what the in-process pool produces.
//
// # File protocol
//
// All traffic lives under <dir>/windows/ of the content-addressed
// cache directory sampled runs already share, three files per dispatch:
//
//	<base>.job     the manifest: program, machine config, window
//	               layout, boundary snapshot, and boot feedback —
//	               everything sample.ExecuteWindow needs. Written
//	               atomically (temp file + rename) by the coordinator.
//	<base>.lease   the claim: created by a worker with O_CREATE|O_EXCL,
//	               which makes claiming atomic on any POSIX filesystem —
//	               exactly one worker wins a job. The worker re-stamps
//	               the lease's mtime on a heartbeat interval while
//	               executing; a lease whose mtime goes stale marks its
//	               worker as crashed.
//	<base>.result  the measurement: stats plus the window's final LISP
//	               feedback. Written atomically by the worker; the
//	               coordinator removes all three files once collected.
//
// <base> is <runID>-w<index>-d<seq>: a random per-coordinator run ID
// (two coordinators sharing the directory never collide), the window
// index, and a dispatch sequence number (a window discarded by a
// feedback misspeculation re-dispatches under a new manifest whose
// Feedback differs — manifests are keyed by dispatch, not content).
//
// Every file follows the warm-set cache's discipline: saves are atomic,
// and a corrupt or mismatched entry is treated as a clean miss, never
// trusted — a half-written result (worker crashed mid-rename has no
// window for this, but a torn write on a non-atomic filesystem does)
// is deleted and the job re-offered. The warm-cache LRU sweep ignores
// the windows/ subdirectory (it only considers .warmset/.stride entries
// at the cache root), so a sweep racing a claim never eats a manifest.
//
// # Crash recovery
//
// The coordinator polls each dispatched job. A lease whose mtime is
// older than Config.LeaseExpiry is an orphan: its worker stopped
// heartbeating (crashed, killed, or unplugged). The coordinator breaks
// the lease — re-offering the manifest to the surviving workers — up to
// Config.MaxRedispatch times, then fails the run with an error naming
// the window and the worker that orphaned it. Because a window's result
// is a deterministic function of its manifest, a slow-but-alive worker
// whose lease was broken can still land a result harmlessly: it is
// byte-for-byte the result the re-dispatched claim produces.
package procexec

import (
	"context"
	"crypto/rand"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"rix/internal/core"
	"rix/internal/pipeline"
	"rix/internal/prog"
	"rix/internal/sample"
)

// Format constants version the three gob encodings. Bump the owning
// constant whenever its struct (or any embedded state struct) changes
// shape; both sides reject other versions as corrupt entries (clean
// misses). doc/FORMATS.md is the authoritative description — keep it in
// lockstep.
const (
	ManifestFormat = 1
	LeaseFormat    = 1
	ResultFormat   = 1
)

// JobsDir is the subdirectory of the shared cache directory that holds
// the window-job files. Keeping them out of the cache root keeps them
// invisible to the warm-set LRU sweep.
const JobsDir = "windows"

// Manifest is one dispatched window job on disk: the pure-data form of
// a sample.WindowJob plus identification, everything a worker process
// needs to execute the window with sample.ExecuteWindow.
type Manifest struct {
	Format   int
	Job      string // file base name, echoed back in Lease and Result
	Prog     *prog.Program
	Config   pipeline.Config
	Sampling sample.Sampling
	Boundary sample.Boundary
	Feedback core.LISPState
}

// Lease is a worker's claim on one job. The file's existence is the
// claim (created O_CREATE|O_EXCL); the contents identify the claimant,
// and the file's mtime — re-stamped on the worker's heartbeat — is the
// liveness signal.
type Lease struct {
	Format int
	Job    string
	Worker string
	PID    int
}

// Result is one executed window's measurement on disk. Err carries a
// worker-side execution failure (the coordinator fails the run with
// it); a worker shutting down mid-window writes no Result at all and
// releases its lease instead.
type Result struct {
	Format   int
	Job      string
	Worker   string
	Index    int
	Stats    pipeline.Stats
	Feedback core.LISPState
	Err      string
}

// Config tunes a Coordinator. The zero value selects every default.
type Config struct {
	// Width is the capability hint the two-phase coordinator uses as
	// its speculation depth: up to Width window jobs are on offer at
	// once (default 4). Size it to the worker fleet's total capacity.
	Width int

	// Poll is the coordinator's result/lease polling interval
	// (default 25ms).
	Poll time.Duration

	// LeaseExpiry is how stale a lease's mtime may grow before its
	// worker is declared crashed and the job re-offered (default 10s).
	// Workers heartbeat at a fraction of this; see WorkerConfig.
	LeaseExpiry time.Duration

	// MaxRedispatch bounds how many times one dispatch is re-offered
	// after orphaned leases or corrupt results before the run fails
	// (default 2).
	MaxRedispatch int

	// OnWorkerJoined fires the first time this coordinator observes a
	// given worker; OnLeaseClaimed fires for every claim observed —
	// through the lease file, or through the result itself when a fast
	// worker finished between polls; OnResultCollected fires when a
	// result is adopted. All
	// three are called from the Run goroutines (one per in-flight
	// window), so handlers must be safe for concurrent use; nil fields
	// are skipped.
	OnWorkerJoined    func(worker string)
	OnLeaseClaimed    func(job, worker string, window int)
	OnResultCollected func(job string, window int, path string)
}

func (c Config) withDefaults() Config {
	if c.Width < 1 {
		c.Width = 4
	}
	if c.Poll <= 0 {
		c.Poll = 25 * time.Millisecond
	}
	if c.LeaseExpiry <= 0 {
		c.LeaseExpiry = 10 * time.Second
	}
	if c.MaxRedispatch < 0 {
		c.MaxRedispatch = 0
	} else if c.MaxRedispatch == 0 {
		c.MaxRedispatch = 2
	}
	return c
}

// Coordinator implements sample.Executor over the shared-directory file
// protocol. One Coordinator serves one sampled run; concurrent runs
// each create their own (distinct run IDs keep their files apart), and
// any number of worker processes serve them all.
type Coordinator struct {
	dir   string // <cachedir>/windows
	cfg   Config
	runID string
	seq   atomic.Uint64

	mu      sync.Mutex
	workers map[string]bool // worker IDs already reported via OnWorkerJoined
}

// New creates a coordinator over the shared cache directory (the same
// directory `rixsim -worker` watches), creating its windows/
// subdirectory if missing.
func New(dir string, cfg Config) (*Coordinator, error) {
	if dir == "" {
		return nil, fmt.Errorf("procexec: coordinator needs a cache directory")
	}
	jobs := filepath.Join(dir, JobsDir)
	if err := os.MkdirAll(jobs, 0o755); err != nil {
		return nil, fmt.Errorf("procexec: jobs dir: %w", err)
	}
	var raw [6]byte
	if _, err := rand.Read(raw[:]); err != nil {
		return nil, fmt.Errorf("procexec: run id: %w", err)
	}
	return &Coordinator{
		dir:     jobs,
		cfg:     cfg.withDefaults(),
		runID:   hex.EncodeToString(raw[:]),
		workers: map[string]bool{},
	}, nil
}

// Width is the coordinator's speculation-depth hint.
func (c *Coordinator) Width() int { return c.cfg.Width }

// Run dispatches one window job to the worker fleet and blocks until
// its result is collected, the job fails permanently, or ctx is
// cancelled (the coordinator then withdraws the manifest so no worker
// wastes time on a discarded dispatch).
func (c *Coordinator) Run(ctx context.Context, job sample.WindowJob) (sample.WindowResult, error) {
	base := fmt.Sprintf("%s-w%05d-d%04d", c.runID, job.Boundary.Index, c.seq.Add(1))
	m := &Manifest{
		Format:   ManifestFormat,
		Job:      base,
		Prog:     job.Prog,
		Config:   job.Config,
		Sampling: job.Sampling,
		Boundary: job.Boundary,
		Feedback: job.Feedback,
	}
	jobPath := filepath.Join(c.dir, base+".job")
	if err := writeGob(jobPath, m); err != nil {
		return sample.WindowResult{}, err
	}
	res, err := c.collect(ctx, base, job.Boundary.Index)
	// Withdraw the dispatch whatever happened: on success the worker's
	// files go too; on cancellation or failure no worker should claim
	// (or keep heartbeating) a dead job. Removal is best-effort — a
	// worker mid-execution tidies its own lease and result when it
	// finds the manifest gone.
	os.Remove(jobPath)
	os.Remove(filepath.Join(c.dir, base+".lease"))
	os.Remove(filepath.Join(c.dir, base+".result"))
	if err != nil {
		return sample.WindowResult{}, err
	}
	return res, nil
}

// collect polls one dispatched job until its result lands, its lease
// orphans past the re-dispatch budget, or ctx cancels.
func (c *Coordinator) collect(ctx context.Context, base string, window int) (sample.WindowResult, error) {
	leasePath := filepath.Join(c.dir, base+".lease")
	resultPath := filepath.Join(c.dir, base+".result")
	ticker := time.NewTicker(c.cfg.Poll)
	defer ticker.Stop()
	retries := 0
	lastWorker := "unknown"
	leaseSeen := false
	for {
		// Result first: a finished job's lease no longer matters.
		switch res, err := readResult(resultPath); {
		case err == nil && res.Format == ResultFormat && res.Job == base && res.Index == window:
			if res.Err != "" {
				return sample.WindowResult{}, fmt.Errorf("procexec: window %d failed on worker %s: %s",
					window, res.Worker, res.Err)
			}
			if !leaseSeen {
				// A fast worker finished between polls and its lease was
				// never observed; the result names the claimant, so the
				// claim telemetry fires here instead of being lost.
				c.noteWorker(res.Worker)
				if c.cfg.OnLeaseClaimed != nil {
					c.cfg.OnLeaseClaimed(base, res.Worker, window)
				}
			}
			if c.cfg.OnResultCollected != nil {
				c.cfg.OnResultCollected(base, window, resultPath)
			}
			return sample.WindowResult{Index: res.Index, Stats: res.Stats, Feedback: res.Feedback}, nil
		case err == nil || !os.IsNotExist(err):
			// A result file exists but is torn, mislabeled, or from a
			// stale format: the warm-cache discipline applies — treat it
			// as a clean miss. Delete it together with the lease so a
			// worker re-claims the still-present manifest.
			retries++
			if retries > c.cfg.MaxRedispatch {
				return sample.WindowResult{}, fmt.Errorf(
					"procexec: window %d: corrupt result from worker %s (%s) and re-dispatch budget (%d) exhausted",
					window, lastWorker, base, c.cfg.MaxRedispatch)
			}
			os.Remove(resultPath)
			os.Remove(leasePath)
			leaseSeen = false
		default:
			// No result yet: check the lease for liveness.
			if info, err := os.Stat(leasePath); err == nil {
				if !leaseSeen {
					leaseSeen = true
					if w, err := readLease(leasePath); err == nil && w.Format == LeaseFormat {
						lastWorker = w.Worker
						c.noteWorker(w.Worker)
						if c.cfg.OnLeaseClaimed != nil {
							c.cfg.OnLeaseClaimed(base, w.Worker, window)
						}
					}
				}
				if time.Since(info.ModTime()) > c.cfg.LeaseExpiry {
					// Orphan: the claimant stopped heartbeating. Break the
					// lease so a surviving worker re-claims the manifest.
					// (If the claimant was merely slow and still finishes,
					// its result is identical by determinism and is
					// adopted harmlessly.)
					retries++
					if retries > c.cfg.MaxRedispatch {
						return sample.WindowResult{}, fmt.Errorf(
							"procexec: window %d orphaned by worker %s (lease %s stale for more than %s) and re-dispatch budget (%d) exhausted",
							window, lastWorker, base, c.cfg.LeaseExpiry, c.cfg.MaxRedispatch)
					}
					os.Remove(leasePath)
					leaseSeen = false
				}
			} else {
				leaseSeen = false
			}
		}
		select {
		case <-ctx.Done():
			return sample.WindowResult{}, ctx.Err()
		case <-ticker.C:
		}
	}
}

// noteWorker fires OnWorkerJoined once per distinct worker ID.
func (c *Coordinator) noteWorker(worker string) {
	c.mu.Lock()
	joined := !c.workers[worker]
	c.workers[worker] = true
	c.mu.Unlock()
	if joined && c.cfg.OnWorkerJoined != nil {
		c.cfg.OnWorkerJoined(worker)
	}
}

// writeGob atomically writes one gob-encoded file: the payload lands
// under a temporary name and is renamed into place, so readers never
// see a torn entry on a POSIX filesystem.
func writeGob(path string, v interface{}) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("procexec: %s: %w", path, err)
	}
	err = gob.NewEncoder(f).Encode(v)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("procexec: %s: %w", path, err)
	}
	return nil
}

func readResult(path string) (*Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r Result
	if err := gob.NewDecoder(f).Decode(&r); err != nil {
		return nil, fmt.Errorf("procexec: result %s: %w", path, err)
	}
	return &r, nil
}

func readLease(path string) (*Lease, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var l Lease
	if err := gob.NewDecoder(f).Decode(&l); err != nil {
		return nil, fmt.Errorf("procexec: lease %s: %w", path, err)
	}
	return &l, nil
}

func readManifest(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var m Manifest
	if err := gob.NewDecoder(f).Decode(&m); err != nil {
		return nil, fmt.Errorf("procexec: manifest %s: %w", path, err)
	}
	if m.Format != ManifestFormat {
		return nil, fmt.Errorf("procexec: manifest %s has format %d, want %d", path, m.Format, ManifestFormat)
	}
	return &m, nil
}
