package procexec

import (
	"context"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"rix/internal/sample"
)

// WorkerConfig tunes one Work loop. The zero value selects every
// default.
type WorkerConfig struct {
	// ID identifies this worker in leases, results, and coordinator
	// errors (default "<hostname>-<pid>").
	ID string

	// Poll is the directory scan interval while idle (default 50ms).
	Poll time.Duration

	// Heartbeat is the lease mtime re-stamp interval while executing a
	// window (default 1s). Keep it well under the coordinators'
	// LeaseExpiry or a long window looks like a crash.
	Heartbeat time.Duration

	// Idle, when positive, ends the loop cleanly after this long
	// without claiming a job; 0 runs until ctx is cancelled.
	Idle time.Duration

	// OnClaim fires after a lease is won, OnDone after its result is
	// written. Both run on the Work goroutine; nil fields are skipped.
	OnClaim func(job string, window int)
	OnDone  func(job string, window int)
}

func (w WorkerConfig) withDefaults() WorkerConfig {
	if w.ID == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "worker"
		}
		w.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if w.Poll <= 0 {
		w.Poll = 50 * time.Millisecond
	}
	if w.Heartbeat <= 0 {
		w.Heartbeat = time.Second
	}
	return w
}

// Work is the worker loop behind `rixsim -worker <cachedir>`: scan the
// directory's windows/ subdirectory for unclaimed job manifests, claim
// one at a time with an exclusive lease, execute it locally
// (sample.ExecuteWindow), and write the result back atomically. The
// loop serves every coordinator sharing the directory and runs until
// ctx is cancelled (returning ctx.Err()) or, when wc.Idle is set, until
// no job has been claimed for that long (returning nil).
//
// A corrupt manifest is a clean miss: the worker releases its claim and
// skips the job. A worker cancelled mid-window releases its claim
// without writing a result, so the coordinator re-offers the job; any
// other execution failure is reported in the result's Err field and
// fails the owning run.
func Work(ctx context.Context, dir string, wc WorkerConfig) error {
	wc = wc.withDefaults()
	jobs := filepath.Join(dir, JobsDir)
	if err := os.MkdirAll(jobs, 0o755); err != nil {
		return fmt.Errorf("procexec: jobs dir: %w", err)
	}
	ticker := time.NewTicker(wc.Poll)
	defer ticker.Stop()
	idleSince := time.Now()
	for {
		claimed, err := scanOnce(ctx, jobs, wc)
		if err != nil {
			return err
		}
		if claimed {
			idleSince = time.Now()
			// Something was runnable: rescan immediately — more jobs
			// are likely waiting behind it.
			continue
		}
		if wc.Idle > 0 && time.Since(idleSince) >= wc.Idle {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
	}
}

// scanOnce walks the job manifests in name order and executes the first
// one it can claim, reporting whether a claim was won. Name order makes
// competing workers start from the same candidate, which loses nothing
// (the O_EXCL claim settles ownership) and keeps lower window indexes —
// the ones the coordinators settle first — flowing out first.
func scanOnce(ctx context.Context, jobs string, wc WorkerConfig) (bool, error) {
	paths, err := filepath.Glob(filepath.Join(jobs, "*.job"))
	if err != nil {
		return false, err
	}
	sort.Strings(paths)
	for _, jobPath := range paths {
		if ctx.Err() != nil {
			return false, ctx.Err()
		}
		base := strings.TrimSuffix(filepath.Base(jobPath), ".job")
		resultPath := filepath.Join(jobs, base+".result")
		leasePath := filepath.Join(jobs, base+".lease")
		if _, err := os.Stat(resultPath); err == nil {
			continue // finished, awaiting collection
		}
		if _, err := os.Stat(leasePath); err == nil {
			continue // claimed by someone (liveness is the coordinator's call)
		}
		if !claimLease(leasePath, base, wc.ID) {
			continue // lost the race
		}
		if err := executeJob(ctx, jobPath, leasePath, resultPath, base, wc); err != nil {
			return false, err
		}
		return true, nil
	}
	return false, nil
}

// claimLease attempts the atomic claim: exclusive creation of the lease
// file. The Lease payload is written into the already-claimed file, so
// a reader may observe an empty or torn lease briefly — the coordinator
// only needs its mtime for liveness and tolerates an undecodable body.
func claimLease(path, base, worker string) bool {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return false
	}
	werr := writeLease(f, &Lease{Format: LeaseFormat, Job: base, Worker: worker, PID: os.Getpid()})
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		// Could not record the claimant; release rather than hold an
		// anonymous claim.
		os.Remove(path)
		return false
	}
	return true
}

// executeJob runs one claimed window: read the manifest, heartbeat the
// lease while sample.ExecuteWindow runs, and write the result. Only a
// worker-fatal condition (ctx cancellation) is returned as an error;
// per-job failures are reported through the result file.
func executeJob(ctx context.Context, jobPath, leasePath, resultPath, base string, wc WorkerConfig) error {
	m, err := readManifest(jobPath)
	if err != nil {
		// Corrupt manifest: a clean miss. Release the claim and move on;
		// the coordinator that owns the job will time it out or replace
		// it.
		os.Remove(leasePath)
		return nil
	}
	if wc.OnClaim != nil {
		wc.OnClaim(base, m.Boundary.Index)
	}

	// Heartbeat the lease for the duration of the window so the
	// coordinator can tell "long window" from "dead worker".
	hbCtx, hbStop := context.WithCancel(ctx)
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		t := time.NewTicker(wc.Heartbeat)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case now := <-t.C:
				os.Chtimes(leasePath, now, now)
			}
		}
	}()

	res, runErr := sample.ExecuteWindow(ctx, sample.WindowJob{
		Prog:     m.Prog,
		Config:   m.Config,
		Sampling: m.Sampling,
		Boundary: m.Boundary,
		Feedback: m.Feedback,
	})
	hbStop()
	hbWG.Wait()

	if runErr != nil && ctx.Err() != nil {
		// Shutting down mid-window: release the claim so the job
		// re-offers cleanly, and report the shutdown to the loop.
		os.Remove(leasePath)
		return ctx.Err()
	}
	out := &Result{Format: ResultFormat, Job: base, Worker: wc.ID, Index: m.Boundary.Index}
	if runErr != nil {
		out.Err = runErr.Error()
	} else {
		out.Index = res.Index
		out.Stats = res.Stats
		out.Feedback = res.Feedback
	}
	if err := writeGob(resultPath, out); err != nil {
		// Can't deliver: release the claim so another worker (or this
		// one, next scan) retries rather than wedging the job.
		os.Remove(leasePath)
		return nil
	}
	if _, err := os.Stat(jobPath); os.IsNotExist(err) {
		// The dispatch was withdrawn (discarded by a feedback
		// misspeculation, or its run ended) while we executed: nobody
		// will collect these. Tidy them up.
		os.Remove(resultPath)
		os.Remove(leasePath)
	}
	if wc.OnDone != nil {
		wc.OnDone(base, m.Boundary.Index)
	}
	return nil
}

func writeLease(f *os.File, l *Lease) error {
	return gob.NewEncoder(f).Encode(l)
}
