package sample_test

import (
	"context"
	"fmt"
	"log"
	"os"

	"rix/internal/sample"
	"rix/internal/sim"
	"rix/internal/workload"
)

// ExampleResume checkpoints a sampled run and then reproduces it from
// disk: Run with CheckpointDir writes one checkpoint per window
// boundary (doc/FORMATS.md), and Resume re-runs every checkpointed
// window — in parallel, without re-executing the fast-forward — with
// an aggregate bit-identical to the direct run's. The same directory
// also serves sample.Continue (finish an interrupted run) and
// sample.RunCheckpoint (one window in isolation, for cross-process
// sharding).
func ExampleResume() {
	bench, _ := workload.ByName("gzip")
	bw, err := bench.Build()
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := sim.Options{Integration: sim.IntReverse}.Config()
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "rix-ckpt-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	ctx := context.Background()
	sc := sample.Config{CheckpointDir: dir}
	direct, err := sample.Run(ctx, bw.Prog, bw.DynLen, cfg, sc)
	if err != nil {
		log.Fatal(err)
	}
	resumed, err := sample.Resume(ctx, bw.Prog, bw.DynLen, cfg, sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("every window re-ran from its checkpoint: %v\n",
		len(resumed.Windows) == len(direct.Windows))
	fmt.Printf("aggregate bit-identical to the direct run: %v\n",
		resumed.Agg == direct.Agg)
	// Output:
	// every window re-ran from its checkpoint: true
	// aggregate bit-identical to the direct run: true
}
