package sample

import (
	"context"
	"fmt"

	"rix/internal/emu"
	"rix/internal/pipeline"
	"rix/internal/prog"
)

// This file is the first phase of the two-phase sampled engine: one
// functional fast-forward over the whole trace that snapshots the
// emulator and warm state at every window boundary. The boundaries are
// mutually independent by construction — each one is exactly the
// checkpoint the sequential engine would have written there — so the
// second phase (parallel.go) can execute all detail windows
// concurrently and still aggregate bit-identically.

// WarmSet is the warm pass's output: every window boundary of one
// (program, window layout, warm-relevant machine geometry) triple. A
// WarmSet is read-only once built; concurrent runs may share it
// (Config.Warm), and the content-addressed cache (cache.go) persists it
// across processes. The boundary snapshots carry the warmer's LISP as
// of the warm pass — untrained — because DIVA feedback is discovered
// only by detailed windows; the scheduler substitutes the chained
// feedback at boot time.
type WarmSet struct {
	Program    string
	Sampling   Sampling
	Total      uint64 // dynamic instruction count at program halt
	Boundaries []Boundary
}

// Boundary is one window's self-contained starting state.
type Boundary struct {
	Index int
	Start uint64 // dynamic instruction of the detailed (warmup) start
	Emu   emu.State
	Warm  WarmSnapshot
}

// PrepareWarm returns the warm set for (p, cfg, sc): the injected
// sc.Warm when present, else a cache load (sc.CacheDir), else one warm
// pass — saved back into the cache when sc.CacheDir is set. Callers
// that run the same cell repeatedly (benchmarks, figure regeneration)
// can prepare once and inject the set via Config.Warm to skip the warm
// pass on every run.
func PrepareWarm(ctx context.Context, p *prog.Program, cfg pipeline.Config, sc Config) (*WarmSet, error) {
	sc, err := sc.normalized()
	if err != nil {
		return nil, err
	}
	return prepareWarm(ctx, p, cfg, sc)
}

// prepareWarm is PrepareWarm over an already-normalized Config.
func prepareWarm(ctx context.Context, p *prog.Program, cfg pipeline.Config, sc Config) (*WarmSet, error) {
	if sc.Warm != nil {
		if sc.Warm.Program != p.Name {
			return nil, fmt.Errorf("sample: warm set is for %q, not %q", sc.Warm.Program, p.Name)
		}
		if sc.Warm.Sampling != sc.Sampling {
			return nil, fmt.Errorf("sample: warm set layout %s does not match requested %s",
				sc.Warm.Sampling, sc.Sampling)
		}
		return sc.Warm, nil
	}
	var key string
	if sc.CacheDir != "" {
		key = warmKey(p, cfg, sc.Sampling)
		if set, path := loadWarmSet(sc.CacheDir, key, p.Name, sc.Sampling); set != nil {
			// Re-stamp the entry so the LRU sweep ranks it as hot.
			touchWarmSet(path)
			if sc.Hooks.CacheHit != nil {
				sc.Hooks.CacheHit(path)
			}
			return set, nil
		}
	}
	set, err := buildWarmSet(ctx, p, cfg, sc)
	if err != nil {
		return nil, err
	}
	if sc.CacheDir != "" {
		// Best-effort: a failed save costs the next run a warm pass, not
		// this run its result.
		if path, err := saveWarmSet(sc.CacheDir, key, set); err == nil {
			if sc.Hooks.CacheWritten != nil {
				sc.Hooks.CacheWritten(path)
			}
			sweepWarmCache(sc.CacheDir, sc.CacheMaxBytes, sc.CacheMaxAge, path)
		}
	}
	return set, nil
}

// buildWarmSet is the warm pass proper. It reproduces the sequential
// engine's fast-forward exactly — including the advance through each
// window's record span, which determines where later (jitter-clamped)
// boundaries land — so every Boundary matches the sequential run's
// checkpoint at the same index. When sc.CheckpointDir is set, each
// boundary is provisionally persisted as it is snapshotted (keeping an
// interrupted two-phase run continuable); the window phase later
// rewrites each file with the validated feedback, converging on the
// exact bytes the sequential engine writes.
func buildWarmSet(ctx context.Context, p *prog.Program, cfg pipeline.Config, sc Config) (*WarmSet, error) {
	sp := sc.Sampling
	e := emu.New(p)
	w := newWarmer(cfg)
	done := ctx.Done()
	n := sp.Warmup + sp.Window + detailPad(cfg)
	set := &WarmSet{Program: p.Name, Sampling: sp}

	for idx := 0; !e.Halted; idx++ {
		target := windowStart(idx, sp)
		if target < e.Count {
			target = e.Count
		}
		for e.Count < target && !e.Halted {
			if e.Count&(cancelCheckInterval-1) == 0 {
				if done != nil {
					select {
					case <-done:
						if sc.CheckpointDir != "" {
							flushPartial(sc, p, idx, e, w)
						}
						return nil, ctx.Err()
					default:
					}
				}
				if sc.Hooks.Progress != nil {
					sc.Hooks.Progress(e.Count)
				}
			}
			if e.Count >= sc.MaxInstrs {
				return nil, fmt.Errorf("sample: %s did not halt within %d instructions", p.Name, sc.MaxInstrs)
			}
			pc := e.PC
			rec, err := e.Step()
			if err != nil {
				return nil, fmt.Errorf("sample: fast-forward failed: %w", err)
			}
			w.observe(p.Code[rec.CodeIdx], pc, rec, e.PC)
		}
		if e.Halted {
			break
		}

		b := Boundary{Index: idx, Start: e.Count, Emu: e.State(), Warm: w.snapshot()}
		set.Boundaries = append(set.Boundaries, b)
		if sc.CheckpointDir != "" {
			ck := &Checkpoint{
				Format:   CheckpointFormat,
				Program:  p.Name,
				Index:    b.Index,
				Start:    b.Start,
				Sampling: sp,
				Emu:      b.Emu,
				Warm:     b.Warm,
			}
			if _, err := SaveCheckpoint(sc.CheckpointDir, ck); err != nil {
				return nil, err
			}
			// CheckpointWritten fires on the authoritative settle-time
			// rewrite, not this provisional write.
		}

		// Advance through the window's record span, still warming: the
		// sequential engine consumes these records for the detail window,
		// and later boundary positions depend on the cursor having moved.
		var taken uint64
		for taken < n && !e.Halted {
			if done != nil && e.Count&(cancelCheckInterval-1) == 0 {
				select {
				case <-done:
					// The provisional boundary checkpoint written above
					// already covers this interruption point.
					return nil, ctx.Err()
				default:
				}
			}
			pc := e.PC
			rec, err := e.Step()
			if err != nil {
				return nil, fmt.Errorf("sample: fast-forward failed: %w", err)
			}
			taken++
			w.observe(p.Code[rec.CodeIdx], pc, rec, e.PC)
		}
	}
	set.Total = e.Count
	return set, nil
}
