package sample

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"rix/internal/emu"
	"rix/internal/pipeline"
	"rix/internal/prog"
)

// This file is the first phase of the two-phase sampled engine: a
// functional fast-forward over the whole trace that snapshots the
// emulator and warm state at every window boundary. The boundaries are
// mutually independent by construction — each one is exactly the
// checkpoint the sequential engine would have written there — so the
// second phase (parallel.go) can execute all detail windows
// concurrently and still aggregate bit-identically.
//
// The pass itself runs in one of two shapes. The sequential build is a
// single linear scan, optionally recording stride snapshots (strides.go)
// as a byproduct. The sharded build splits the boundary list into
// contiguous spans and hands each to a warm worker that resumes from the
// nearest preceding stride snapshot; because every instruction is warmed
// identically in either shape and the boundary positions are computed
// arithmetically (boundaryStarts) rather than discovered, the sharded
// boundaries are bit-identical to the sequential ones — enforced by the
// parity tests in this package.

// WarmSet is the warm pass's output: every window boundary of one
// (program, window layout, warm-relevant machine geometry) triple. A
// WarmSet is read-only once built; concurrent runs may share it
// (Config.Warm), and the content-addressed cache (cache.go) persists it
// across processes. The boundary snapshots carry the warmer's LISP as
// of the warm pass — untrained — because DIVA feedback is discovered
// only by detailed windows; the scheduler substitutes the chained
// feedback at boot time.
type WarmSet struct {
	Program    string
	Sampling   Sampling
	Total      uint64 // dynamic instruction count at program halt
	Boundaries []Boundary
}

// Boundary is one window's self-contained starting state.
type Boundary struct {
	Index int
	Start uint64 // dynamic instruction of the detailed (warmup) start
	Emu   emu.State
	Warm  WarmSnapshot
}

// PrepareWarm returns the warm set for (p, cfg, sc): the injected
// sc.Warm when present, else a cache load (sc.CacheDir), else one warm
// pass — saved back into the cache when sc.CacheDir is set. Callers
// that run the same cell repeatedly (benchmarks, figure regeneration)
// can prepare once and inject the set via Config.Warm to skip the warm
// pass on every run.
//
// The warm pass shards across sc.WarmJobs workers when stride
// snapshots are available (Config.Strides, or a .stride entry in
// sc.CacheDir); otherwise it runs sequentially and — when sc.CacheDir
// is set — records a stride set alongside the warm set, so any later
// build for this program and geometry shards, whatever its layout.
func PrepareWarm(ctx context.Context, p *prog.Program, cfg pipeline.Config, sc Config) (*WarmSet, error) {
	sc, err := sc.normalized()
	if err != nil {
		return nil, err
	}
	return prepareWarm(ctx, p, cfg, sc)
}

// prepareWarm is PrepareWarm over an already-normalized Config.
func prepareWarm(ctx context.Context, p *prog.Program, cfg pipeline.Config, sc Config) (*WarmSet, error) {
	if sc.Warm != nil {
		if sc.Warm.Program != p.Name {
			return nil, fmt.Errorf("sample: warm set is for %q, not %q", sc.Warm.Program, p.Name)
		}
		if sc.Warm.Sampling != sc.Sampling {
			return nil, fmt.Errorf("sample: warm set layout %s does not match requested %s",
				sc.Warm.Sampling, sc.Sampling)
		}
		return sc.Warm, nil
	}
	var key, skey string
	if sc.CacheDir != "" {
		key = warmKey(p, cfg, sc.Sampling)
		skey = strideKey(p, cfg)
		if set, path := loadWarmSet(sc.CacheDir, key, p.Name, sc.Sampling); set != nil {
			// Re-stamp the entry so the LRU sweep ranks it as hot.
			touchWarmSet(path)
			if sc.Hooks.CacheHit != nil {
				sc.Hooks.CacheHit(path)
			}
			return set, nil
		}
	}

	// Resolve stride snapshots for a sharded build: the injected set
	// first, then the cache. An injected set is validated against the
	// program and geometry by its content-addressed key — the same
	// check a cache load performs by construction.
	str := sc.Strides
	if str != nil {
		if err := validateStrides(str, p, cfg); err != nil {
			return nil, err
		}
	} else if sc.CacheDir != "" {
		if s, path := loadStrideSet(sc.CacheDir, skey, p.Name); s != nil {
			touchWarmSet(path)
			if sc.Hooks.CacheHit != nil {
				sc.Hooks.CacheHit(path)
			}
			str = s
		}
	}

	var set *WarmSet
	var err error
	if str != nil {
		set, err = buildWarmSetSharded(ctx, p, cfg, sc, str)
	} else {
		// No snapshots to resume from: one sequential scan, recording
		// the stride set this build never got to use so the next one
		// (any layout) shards. Recording costs O(resident pages) per
		// stride thanks to the emulator's copy-on-write snapshots.
		var sr *strideRec
		if sc.CacheDir != "" {
			sr = newStrideRec(p, skey, sc.WarmStride)
		}
		set, err = buildWarmSet(ctx, p, cfg, sc, sr)
		if err == nil && sr != nil {
			// Best-effort, like the warm-set save below.
			if path, serr := saveStrideSet(sc.CacheDir, sr.finish(set.Total)); serr == nil {
				if sc.Hooks.CacheWritten != nil {
					sc.Hooks.CacheWritten(path)
				}
				sweepWarmCache(sc.CacheDir, sc.CacheMaxBytes, sc.CacheMaxAge, path)
			}
		}
	}
	if err != nil {
		return nil, err
	}
	if sc.CacheDir != "" {
		// Best-effort: a failed save costs the next run a warm pass, not
		// this run its result.
		if path, err := saveWarmSet(sc.CacheDir, key, set); err == nil {
			if sc.Hooks.CacheWritten != nil {
				sc.Hooks.CacheWritten(path)
			}
			sweepWarmCache(sc.CacheDir, sc.CacheMaxBytes, sc.CacheMaxAge, path)
		}
	}
	return set, nil
}

// buildWarmSet is the sequential warm pass. It reproduces the
// sequential engine's fast-forward exactly — including the advance
// through each window's record span, which determines where later
// (jitter-clamped) boundaries land — so every Boundary matches the
// sequential run's checkpoint at the same index. When sc.CheckpointDir
// is set, each boundary is provisionally persisted as it is snapshotted
// (keeping an interrupted two-phase run continuable); the window phase
// later rewrites each file with the validated feedback, converging on
// the exact bytes the sequential engine writes. A non-nil sr records
// stride snapshots along the way.
func buildWarmSet(ctx context.Context, p *prog.Program, cfg pipeline.Config, sc Config, sr *strideRec) (*WarmSet, error) {
	sp := sc.Sampling
	e := emu.New(p)
	w := newWarmer(cfg)
	done := ctx.Done()
	n := sp.Warmup + sp.Window + detailPad(cfg)
	set := &WarmSet{Program: p.Name, Sampling: sp}

	for idx := 0; !e.Halted; idx++ {
		target := windowStart(idx, sp)
		if target < e.Count {
			target = e.Count
		}
		for e.Count < target && !e.Halted {
			if e.Count&(cancelCheckInterval-1) == 0 {
				if done != nil {
					select {
					case <-done:
						if sc.CheckpointDir != "" {
							flushPartial(sc, p, idx, e, w)
						}
						return nil, ctx.Err()
					default:
					}
				}
				if sc.Hooks.Progress != nil {
					sc.Hooks.Progress(e.Count)
				}
			}
			if e.Count >= sc.MaxInstrs {
				return nil, fmt.Errorf("sample: %s did not halt within %d instructions", p.Name, sc.MaxInstrs)
			}
			pc := e.PC
			rec, err := e.Step()
			if err != nil {
				return nil, fmt.Errorf("sample: fast-forward failed: %w", err)
			}
			w.observe(p.Code[rec.CodeIdx], pc, rec, e.PC)
			sr.capture(e, w)
		}
		if e.Halted {
			break
		}

		b := Boundary{Index: idx, Start: e.Count, Emu: e.State(), Warm: w.snapshot()}
		set.Boundaries = append(set.Boundaries, b)
		if sc.CheckpointDir != "" {
			ck := &Checkpoint{
				Format:   CheckpointFormat,
				Program:  p.Name,
				Index:    b.Index,
				Start:    b.Start,
				Sampling: sp,
				Emu:      b.Emu,
				Warm:     b.Warm,
			}
			if _, err := SaveCheckpoint(sc.CheckpointDir, ck); err != nil {
				return nil, err
			}
			// CheckpointWritten fires on the authoritative settle-time
			// rewrite, not this provisional write.
		}

		// Advance through the window's record span, still warming: the
		// sequential engine consumes these records for the detail window,
		// and later boundary positions depend on the cursor having moved.
		var taken uint64
		for taken < n && !e.Halted {
			if done != nil && e.Count&(cancelCheckInterval-1) == 0 {
				select {
				case <-done:
					// The provisional boundary checkpoint written above
					// already covers this interruption point.
					return nil, ctx.Err()
				default:
				}
			}
			pc := e.PC
			rec, err := e.Step()
			if err != nil {
				return nil, fmt.Errorf("sample: fast-forward failed: %w", err)
			}
			taken++
			w.observe(p.Code[rec.CodeIdx], pc, rec, e.PC)
			sr.capture(e, w)
		}
	}
	set.Total = e.Count
	return set, nil
}

// boundaryStarts computes arithmetically the dynamic instruction
// position of every window boundary the sequential pass would snapshot
// on a trace of total instructions: each window starts at its jittered
// placement, clamped to the end of the previous window's record span,
// and the trace ends — the emulator halts — exactly at total, so a
// boundary exists iff its position lands strictly before it. This is
// the closed form of buildWarmSet's cursor walk, and what lets the
// sharded build assign boundaries to workers without scanning.
func boundaryStarts(sp Sampling, n, total uint64) []uint64 {
	var starts []uint64
	var cursor uint64
	for idx := 0; ; idx++ {
		pos := windowStart(idx, sp)
		if pos < cursor {
			pos = cursor
		}
		if pos >= total {
			return starts
		}
		starts = append(starts, pos)
		cursor = pos + n
	}
}

// buildWarmSetSharded is the sharded warm pass: the boundary list is
// split into contiguous spans, one per worker (at most sc.WarmJobs),
// and each worker resumes from the nearest stride snapshot preceding
// its span and scans linearly through it, warming every instruction and
// snapshotting each boundary — exactly what the sequential scan does
// over that same span, from identical resume state, hence bit-identical
// output. Workers fire Hooks.WarmShardStarted/Done rather than
// Progress (their counts interleave non-monotonically) and write the
// same provisional checkpoints the sequential build writes.
//
// Cancellation ends the build with ctx.Err(); unlike the sequential
// build there is no partial flush (no single frontier exists), but
// provisional checkpoints from completed boundaries remain on disk.
func buildWarmSetSharded(ctx context.Context, p *prog.Program, cfg pipeline.Config, sc Config, str *StrideSet) (*WarmSet, error) {
	sp := sc.Sampling
	if str.Total > sc.MaxInstrs {
		return nil, fmt.Errorf("sample: %s did not halt within %d instructions", p.Name, sc.MaxInstrs)
	}
	n := sp.Warmup + sp.Window + detailPad(cfg)
	starts := boundaryStarts(sp, n, str.Total)
	set := &WarmSet{Program: p.Name, Sampling: sp, Total: str.Total, Boundaries: make([]Boundary, len(starts))}
	if len(starts) == 0 {
		return set, nil
	}
	shards := sc.WarmJobs
	if shards > len(starts) {
		shards = len(starts)
	}
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errc := make(chan error, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		lo, hi := s*len(starts)/shards, (s+1)*len(starts)/shards
		wg.Add(1)
		go func(shard, lo, hi int) {
			defer wg.Done()
			if err := warmShard(sctx, p, cfg, sc, str, set, shard, starts, lo, hi); err != nil {
				errc <- err
				cancel() // one failed span fails the build; stop the rest
			}
		}(s, lo, hi)
	}
	wg.Wait()
	select {
	case err := <-errc:
		return nil, err
	default:
	}
	return set, nil
}

// warmShard runs one worker's span: boundaries starts[lo:hi], resumed
// from the nearest stride snapshot at or before starts[lo] (a fresh
// boot when the span opens the trace). Boundary snapshots land directly
// in set.Boundaries — disjoint indices per shard, so no locking.
func warmShard(ctx context.Context, p *prog.Program, cfg pipeline.Config, sc Config,
	str *StrideSet, set *WarmSet, shard int, starts []uint64, lo, hi int) error {

	var (
		e      *emu.Emulator
		w      *warmer
		resume uint64
		err    error
	)
	// Strides are sorted by Count; find the last one not past the span.
	if i := sort.Search(len(str.Strides), func(i int) bool { return str.Strides[i].Count > starts[lo] }) - 1; i >= 0 {
		st := &str.Strides[i]
		if e, err = emu.NewFromState(p, st.Emu); err != nil {
			return err
		}
		if w, err = warmerFromSnapshot(cfg, st.Warm); err != nil {
			return err
		}
		resume = st.Count
	} else {
		e = emu.New(p)
		w = newWarmer(cfg)
	}
	if sc.Hooks.WarmShardStarted != nil {
		sc.Hooks.WarmShardStarted(shard, resume, starts[hi-1])
	}
	done := ctx.Done()
	for k := lo; k < hi; k++ {
		for e.Count < starts[k] {
			if done != nil && e.Count&(cancelCheckInterval-1) == 0 {
				select {
				case <-done:
					return ctx.Err()
				default:
				}
			}
			if e.Halted {
				return fmt.Errorf("sample: %s halted at %d instructions, before boundary %d — stale stride set", p.Name, e.Count, k)
			}
			pc := e.PC
			rec, err := e.Step()
			if err != nil {
				return fmt.Errorf("sample: warm shard %d: %w", shard, err)
			}
			w.observe(p.Code[rec.CodeIdx], pc, rec, e.PC)
		}
		b := Boundary{Index: k, Start: starts[k], Emu: e.State(), Warm: w.snapshot()}
		set.Boundaries[k] = b
		if sc.CheckpointDir != "" {
			ck := &Checkpoint{
				Format:   CheckpointFormat,
				Program:  p.Name,
				Index:    b.Index,
				Start:    b.Start,
				Sampling: sc.Sampling,
				Emu:      b.Emu,
				Warm:     b.Warm,
			}
			if _, err := SaveCheckpoint(sc.CheckpointDir, ck); err != nil {
				return err
			}
		}
	}
	if sc.Hooks.WarmShardDone != nil {
		sc.Hooks.WarmShardDone(shard, resume, starts[hi-1])
	}
	return nil
}
