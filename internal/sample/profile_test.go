package sample

import (
	"testing"

	"rix/internal/core"
	"rix/internal/emu"
	"rix/internal/pipeline"
	"rix/internal/workload"
)

// BenchmarkWarmPass isolates the functional fast-forward (emulation +
// microarchitectural warming) — the part of a sampled run that touches
// every instruction, and therefore the asymptotic floor of the sampling
// speedup. Compare against BenchmarkEmulator (plain emulation) and
// BenchmarkPipeline (detailed simulation) in the root package.
func BenchmarkWarmPass(b *testing.B) {
	bench, _ := workload.ByName("vortex")
	bw, err := bench.Build()
	if err != nil {
		b.Fatal(err)
	}
	p := bw.Prog
	// The full +reverse machine, assembled directly (this internal test
	// cannot import the sim facade: sim now depends on sample).
	cfg := pipeline.DefaultConfig()
	cfg.Policy = core.Policy{Enable: true, GeneralReuse: true, OpcodeIndex: true, Reverse: true, UseLISP: true}
	b.ResetTimer()
	var total uint64
	for i := 0; i < b.N; i++ {
		w := newWarmer(cfg)
		e := emu.New(p)
		for !e.Halted {
			pc := e.PC
			rec, err := e.Step()
			if err != nil {
				b.Fatal(err)
			}
			w.observe(p.Code[rec.CodeIdx], pc, rec, e.PC)
		}
		total += e.Count
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}
