package sample

import (
	"context"

	"rix/internal/core"
	"rix/internal/pipeline"
	"rix/internal/prog"
)

// This file is the seam between the two-phase engine's scheduling layer
// and its execution layer. The coordinator (parallel.go) owns *what*
// runs — dispatch order, index-ordered settlement, feedback validation,
// discard-and-re-dispatch — and an Executor owns *how* one window runs:
// on the in-process work-stealing pool (poolExecutor, the default) or
// on cooperating worker processes sharing a cache directory
// (procexec.Coordinator). Because a window's result depends only on its
// WindowJob, swapping executors can never change the estimate — the
// bit-identity tests pin this for both implementations.

// WindowJob is one detail window as pure data: everything an executor —
// in this process or another one — needs to produce the window's
// measurement. The boundary snapshot carries the emulator state and
// warm microarchitectural state at the window's detailed start;
// Feedback is the LISP state the window boots with (the coordinator's
// speculative chain guess), overriding the snapshot's own warm-pass
// LISP exactly as the sequential engine's feedback chaining does.
type WindowJob struct {
	Prog     *prog.Program
	Config   pipeline.Config
	Sampling Sampling
	Boundary Boundary
	Feedback core.LISPState
}

// WindowResult is one executed window's output: the measured statistics
// and the window's final LISP state — the next window's boot
// requirement, which the coordinator validates against its speculative
// chain.
type WindowResult struct {
	Index    int
	Stats    pipeline.Stats
	Feedback core.LISPState
}

// Executor runs detail windows for the two-phase engine's coordinator.
//
// Run executes one window to completion and must honor ctx: the
// coordinator cancels a job's context when an earlier settle
// invalidates its boot feedback (the result is discarded unread), so a
// blocked Run would stall the corrected re-dispatch. Width is the
// executor's concurrency capability — the coordinator keeps up to
// Width windows in flight, so it doubles as the speculation depth.
//
// Run is called from one goroutine per in-flight window and must be
// safe for concurrent use. Implementations must be deterministic
// functions of the WindowJob: the coordinator's bit-identity guarantee
// assumes a window's result depends only on its boot inputs.
type Executor interface {
	Run(ctx context.Context, job WindowJob) (WindowResult, error)
	Width() int
}

// ExecuteWindow runs one window job locally on freshly built boot
// structures — the execution primitive behind every executor that does
// not hold pooled scheduler slots (the cross-process worker mode most
// of all). It is runDetail with the job's feedback spliced into the
// warm snapshot, so its result is bit-identical to the pooled path's:
// the checkpoint-parity tests pin fresh-boot and pooled-boot execution
// to the same bytes.
func ExecuteWindow(ctx context.Context, job WindowJob) (WindowResult, error) {
	if err := job.Sampling.Validate(); err != nil {
		return WindowResult{}, err
	}
	warm := job.Boundary.Warm
	warm.LISP = job.Feedback
	stats, fb, err := runDetail(ctx, job.Prog, job.Config, job.Boundary.Emu, warm, job.Sampling)
	if err != nil {
		return WindowResult{}, err
	}
	return WindowResult{Index: job.Boundary.Index, Stats: *stats, Feedback: fb.LISP}, nil
}

// poolExecutor adapts the in-process work-stealing Scheduler to the
// Executor interface: Run submits one schedTask into the shared queue
// and waits for its result or the job's cancellation. All jobs from one
// sampled run share a cellTag, so cross-cell slot handoffs keep firing
// SlotStolen exactly as before the executor split.
type poolExecutor struct {
	sched *Scheduler
	cell  *cellTag
}

func newPoolExecutor(sched *Scheduler, hooks *Hooks) *poolExecutor {
	return &poolExecutor{sched: sched, cell: &cellTag{hooks: hooks}}
}

func (x *poolExecutor) Width() int { return x.sched.Size() }

func (x *poolExecutor) Run(ctx context.Context, job WindowJob) (WindowResult, error) {
	t := &schedTask{cell: x.cell, out: make(chan *winOut, 1)}
	t.run = func(sl *slot) *winOut { return runWindowJob(ctx, job, sl) }
	x.sched.submit(t)
	select {
	case r := <-t.out:
		if r.err != nil {
			return WindowResult{}, r.err
		}
		return WindowResult{Index: job.Boundary.Index, Stats: r.stat, Feedback: r.fb}, nil
	case <-ctx.Done():
		// Cancelled while queued or executing: flag the task so an idle
		// worker skips it entirely; a worker already running it aborts at
		// the pipeline's next poll boundary and its late result is dropped
		// by the task's buffered channel.
		t.cancelled.Store(true)
		return WindowResult{}, ctx.Err()
	}
}
