package sample_test

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"rix/internal/sample"
	"rix/internal/sim"
)

// TestParallelEstimateBitEqual is the two-phase engine's core
// guarantee: across the no-integration baseline and every integration
// preset, on both a feedback-quiescent workload (gzip) and one whose
// LISP trains mid-run (crafty, exercising the misspeculation path), the
// parallel Estimate must equal the sequential Estimate bit-for-bit.
func TestParallelEstimateBitEqual(t *testing.T) {
	ctx := context.Background()
	opts := []sim.Options{{Integration: sim.IntNone}}
	for _, p := range sim.IntegrationPresets() {
		opts = append(opts, sim.Options{Integration: p})
	}
	for _, name := range []string{"gzip", "crafty"} {
		bw := buildBench(t, name)
		for _, o := range opts {
			cfg, err := o.Config()
			if err != nil {
				t.Fatal(err)
			}
			seq, err := sample.Run(ctx, bw.Prog, bw.DynLen, cfg, sample.Config{})
			if err != nil {
				t.Fatalf("%s [%s] sequential: %v", name, o.Label(), err)
			}
			par, err := sample.Run(ctx, bw.Prog, bw.DynLen, cfg, sample.Config{Windows: 4})
			if err != nil {
				t.Fatalf("%s [%s] parallel: %v", name, o.Label(), err)
			}
			if par.Agg != seq.Agg {
				t.Errorf("%s [%s]: parallel Agg diverges from sequential", name, o.Label())
			}
			if !reflect.DeepEqual(par, seq) {
				t.Errorf("%s [%s]: parallel Estimate diverges from sequential", name, o.Label())
			}
		}
	}
}

// TestSharedSchedulerBitEqual drives two concurrent sampled runs
// through one shared work-stealing scheduler — the cross-cell pool the
// runner engine uses — and requires both estimates bit-identical to
// their sequential counterparts. It also pins the wave-telemetry
// invariant: every dispatched window is either settled or discarded,
// and the counts are deterministic (the coordinator's dispatch/settle
// interleaving does not depend on worker timing).
func TestSharedSchedulerBitEqual(t *testing.T) {
	ctx := context.Background()
	o := sim.Options{Integration: sim.IntReverse}
	cfg, err := o.Config()
	if err != nil {
		t.Fatal(err)
	}
	benches := []string{"gzip", "crafty"}
	seq := make([]*sample.Estimate, len(benches))
	for i, name := range benches {
		bw := buildBench(t, name)
		if seq[i], err = sample.Run(ctx, bw.Prog, bw.DynLen, cfg, sample.Config{}); err != nil {
			t.Fatal(err)
		}
	}

	type tally struct{ scheduled, settled, discarded, returned int32 }
	run := func() ([]*sample.Estimate, []tally) {
		sched := sample.NewScheduler(3)
		defer sched.Close()
		ests := make([]*sample.Estimate, len(benches))
		tallies := make([]tally, len(benches))
		errs := make([]error, len(benches))
		var wg sync.WaitGroup
		for i, name := range benches {
			bw := buildBench(t, name)
			tl := &tallies[i]
			sc := sample.Config{Scheduler: sched, Hooks: sample.Hooks{
				WindowScheduled: func(int) { tl.scheduled++ },
				WindowDone:      func(sample.WindowStat) { tl.settled++ },
				WindowDiscarded: func(int) { tl.discarded++ },
				SlotReturned:    func(int) { tl.returned++ },
				// SlotStolen is deliberately not tallied: it fires from
				// pool workers and its count is timing-dependent.
			}}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				ests[i], errs[i] = sample.Run(ctx, bw.Prog, bw.DynLen, cfg, sc)
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("%s: %v", benches[i], err)
			}
		}
		return ests, tallies
	}

	ests, tallies := run()
	for i, name := range benches {
		if !reflect.DeepEqual(ests[i], seq[i]) {
			t.Errorf("%s: shared-scheduler estimate diverges from sequential", name)
		}
		tl := tallies[i]
		if tl.scheduled != tl.settled+tl.discarded {
			t.Errorf("%s: %d dispatched != %d settled + %d discarded", name, tl.scheduled, tl.settled, tl.discarded)
		}
		if tl.settled != int32(len(ests[i].Windows)) {
			t.Errorf("%s: %d settled vs %d windows", name, tl.settled, len(ests[i].Windows))
		}
		if tl.returned == 0 {
			t.Errorf("%s: no SlotReturned events", name)
		}
	}
	// Determinism of the telemetry counters across a rerun.
	_, again := run()
	for i, name := range benches {
		if again[i].scheduled != tallies[i].scheduled || again[i].discarded != tallies[i].discarded {
			t.Errorf("%s: telemetry not deterministic: %+v vs %+v", name, again[i], tallies[i])
		}
	}
}

// TestWarmCacheRoundTrip drives the content-addressed cache through a
// miss (warm pass runs, .warmset and .stride entries written), a hit
// (warm pass skipped, bit-identical estimate), and the invalidation
// rules: a layout change keys a different .warmset entry but reuses the
// layout-independent .stride entry (so the rebuild shards from cached
// snapshots), and a corrupt entry is a clean miss that gets rewritten.
func TestWarmCacheRoundTrip(t *testing.T) {
	ctx := context.Background()
	bw := buildBench(t, "gzip")
	o := sim.Options{Integration: sim.IntReverse}
	cfg, err := o.Config()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	seq, err := sample.Run(ctx, bw.Prog, bw.DynLen, cfg, sample.Config{})
	if err != nil {
		t.Fatal(err)
	}

	// Hits and writes, tallied separately per entry kind; lastWarm is
	// the most recently written .warmset path.
	var wsHits, wsWrites, stHits, stWrites int
	var lastWarm string
	reset := func() { wsHits, wsWrites, stHits, stWrites = 0, 0, 0, 0 }
	sc := sample.Config{CacheDir: dir, Windows: 2, Hooks: sample.Hooks{
		CacheHit: func(path string) {
			if filepath.Ext(path) == ".stride" {
				stHits++
			} else {
				wsHits++
			}
		},
		CacheWritten: func(path string) {
			if filepath.Ext(path) == ".stride" {
				stWrites++
			} else {
				wsWrites++
				lastWarm = path
			}
		},
	}}
	first, err := sample.Run(ctx, bw.Prog, bw.DynLen, cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	if wsHits != 0 || wsWrites != 1 || stHits != 0 || stWrites != 1 {
		t.Fatalf("cold run: warmset %d/%d, stride %d/%d hits/writes; want 0/1 and 0/1",
			wsHits, wsWrites, stHits, stWrites)
	}
	if !reflect.DeepEqual(first, seq) {
		t.Error("cached-miss run diverges from sequential")
	}

	second, err := sample.Run(ctx, bw.Prog, bw.DynLen, cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	if wsHits != 1 || wsWrites != 1 || stHits != 0 || stWrites != 1 {
		t.Fatalf("warm run: warmset %d/%d, stride %d/%d hits/writes; want 1/1 and 0/1",
			wsHits, wsWrites, stHits, stWrites)
	}
	if !reflect.DeepEqual(second, seq) {
		t.Error("cache-hit run diverges from sequential")
	}

	// A different window layout must key a different .warmset entry —
	// but the stride entry is layout-independent, so the rebuild hits
	// it and shards instead of rescanning from the trace head.
	spp := sample.Sampling{Interval: 8000, Window: 400, Warmup: 200}
	scLayout := sc
	scLayout.Sampling = spp
	if _, err := sample.Run(ctx, bw.Prog, bw.DynLen, cfg, scLayout); err != nil {
		t.Fatal(err)
	}
	if wsHits != 1 || wsWrites != 2 || stHits != 1 || stWrites != 1 {
		t.Fatalf("layout change: warmset %d/%d, stride %d/%d hits/writes; want 1/2 and 1/1",
			wsHits, wsWrites, stHits, stWrites)
	}

	// A corrupt entry is a miss: the run still succeeds, rewrites the
	// entry, and a following run hits it again.
	if err := os.WriteFile(lastWarm, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, _ := filepath.Glob(filepath.Join(dir, "*.warmset"))
	if len(entries) != 2 {
		t.Fatalf("%d warmset entries; want 2", len(entries))
	}
	strides, _ := filepath.Glob(filepath.Join(dir, "*.stride"))
	if len(strides) != 1 {
		t.Fatalf("%d stride entries; want 1", len(strides))
	}
	reset()
	if _, err := sample.Run(ctx, bw.Prog, bw.DynLen, cfg, scLayout); err != nil {
		t.Fatal(err)
	}
	if wsHits != 0 || wsWrites != 1 || stHits != 1 {
		t.Fatalf("corrupt entry: warmset %d/%d, stride hits %d; want 0/1 and 1", wsHits, wsWrites, stHits)
	}
	if _, err := sample.Run(ctx, bw.Prog, bw.DynLen, cfg, scLayout); err != nil {
		t.Fatal(err)
	}
	if wsHits != 1 {
		t.Fatalf("rewritten entry: %d warmset hits; want 1", wsHits)
	}
}

// TestPrepareWarmInjection proves the Config.Warm fast path: a
// prepared warm set injected into Run skips the warm pass (no cache
// involved) and reproduces the sequential estimate bit-for-bit.
func TestPrepareWarmInjection(t *testing.T) {
	ctx := context.Background()
	bw := buildBench(t, "crafty")
	o := sim.Options{Integration: sim.IntReverse}
	cfg, err := o.Config()
	if err != nil {
		t.Fatal(err)
	}
	warm, err := sample.PrepareWarm(ctx, bw.Prog, cfg, sample.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(warm.Boundaries) < 4 {
		t.Fatalf("only %d boundaries; want a multi-window run", len(warm.Boundaries))
	}
	seq, err := sample.Run(ctx, bw.Prog, bw.DynLen, cfg, sample.Config{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := sample.Run(ctx, bw.Prog, bw.DynLen, cfg, sample.Config{Windows: 4, Warm: warm})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par, seq) {
		t.Error("warm-injected parallel run diverges from sequential")
	}
	// Rejects a mismatched layout rather than silently misusing the set.
	bad := sample.Config{Warm: warm, Sampling: sample.Sampling{Interval: 8000, Window: 400, Warmup: 200}}
	if _, err := sample.Run(ctx, bw.Prog, bw.DynLen, cfg, bad); err == nil {
		t.Error("mismatched warm-set layout accepted")
	}
}

// TestCheckpointErrorsNameFile: a layout mismatch or unreadable entry
// in a checkpoint set must be reported with the offending file's path —
// a set holds dozens of files and "some checkpoint was bad" is not
// actionable.
func TestCheckpointErrorsNameFile(t *testing.T) {
	ctx := context.Background()
	bw := buildBench(t, "gzip")
	cfg, err := (sim.Options{Integration: sim.IntReverse}).Config()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := sample.Run(ctx, bw.Prog, bw.DynLen, cfg, sample.Config{CheckpointDir: dir}); err != nil {
		t.Fatal(err)
	}
	paths, err := sample.Checkpoints(dir, bw.Prog.Name)
	if err != nil || len(paths) < 2 {
		t.Fatalf("checkpoints: %v (%d files)", err, len(paths))
	}

	mismatch := sample.Config{CheckpointDir: dir, Sampling: sample.Sampling{Interval: 8000, Window: 400, Warmup: 200}}
	_, err = sample.Continue(ctx, bw.Prog, bw.DynLen, cfg, mismatch)
	if err == nil || !strings.Contains(err.Error(), filepath.Base(paths[len(paths)-1])) {
		t.Errorf("layout-mismatch error does not name the checkpoint file: %v", err)
	}

	if err := os.WriteFile(paths[0], []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = sample.Resume(ctx, bw.Prog, bw.DynLen, cfg, sample.Config{CheckpointDir: dir})
	if err == nil || !strings.Contains(err.Error(), filepath.Base(paths[0])) {
		t.Errorf("corrupt-checkpoint error does not name the file: %v", err)
	}
}

// TestParallelCheckpointParity: a parallel run with a checkpoint
// directory must leave checkpoints equal to the sequential run's — the
// warm-pass provisional writes are rewritten at settle time with the
// validated feedback. Compared decoded, not byte-wise: gob's map
// encoding makes the file bytes nondeterministic even across two
// sequential runs.
func TestParallelCheckpointParity(t *testing.T) {
	ctx := context.Background()
	bw := buildBench(t, "crafty")
	o := sim.Options{Integration: sim.IntReverse}
	cfg, err := o.Config()
	if err != nil {
		t.Fatal(err)
	}
	seqDir, parDir := t.TempDir(), t.TempDir()
	if _, err := sample.Run(ctx, bw.Prog, bw.DynLen, cfg, sample.Config{CheckpointDir: seqDir}); err != nil {
		t.Fatal(err)
	}
	if _, err := sample.Run(ctx, bw.Prog, bw.DynLen, cfg, sample.Config{CheckpointDir: parDir, Windows: 4}); err != nil {
		t.Fatal(err)
	}
	seqPaths, err := sample.Checkpoints(seqDir, bw.Prog.Name)
	if err != nil {
		t.Fatal(err)
	}
	parPaths, err := sample.Checkpoints(parDir, bw.Prog.Name)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqPaths) == 0 || len(seqPaths) != len(parPaths) {
		t.Fatalf("%d sequential vs %d parallel checkpoints", len(seqPaths), len(parPaths))
	}
	for i := range seqPaths {
		a, err := sample.LoadCheckpoint(seqPaths[i])
		if err != nil {
			t.Fatal(err)
		}
		b, err := sample.LoadCheckpoint(parPaths[i])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("checkpoint %s differs between sequential and parallel runs", filepath.Base(seqPaths[i]))
		}
	}
}
