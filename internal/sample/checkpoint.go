package sample

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"rix/internal/emu"
	"rix/internal/pipeline"
	"rix/internal/prog"
	"rix/internal/sim"
)

// CheckpointFormat versions the on-disk checkpoint encoding. Bump it
// whenever Checkpoint, WarmSnapshot, emu.State or any of the embedded
// state structs change shape; loads reject other versions.
const CheckpointFormat = 1

// Checkpoint is everything one measurement window needs to run in
// isolation: the emulator's architectural state at the window's detailed
// start and the warmed microarchitectural state at the same boundary.
// The warm snapshot includes the LISP feedback chained from the windows
// already run, which is specific to the machine configuration (policy
// and suppression mode) that produced it — so a checkpoint set belongs
// to one configuration; keep one directory per config. RunCheckpoint
// validates the window layout but cannot detect a policy mismatch.
type Checkpoint struct {
	Format   int
	Program  string
	Index    int
	Start    uint64 // dynamic instruction of the detailed (warmup) start
	Sampling sim.Sampling
	Emu      emu.State
	Warm     WarmSnapshot
}

// checkpointName names a window's file. The zero-padded index keeps
// lexical directory order equal to window order.
func checkpointName(program string, idx int) string {
	return fmt.Sprintf("%s-w%05d.ckpt", program, idx)
}

// SaveCheckpoint atomically writes a checkpoint into dir (created if
// missing), returning its path. A crash mid-write leaves no partial
// file: the payload lands under a temporary name and is renamed into
// place.
func SaveCheckpoint(dir string, ck *Checkpoint) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("sample: checkpoint dir: %w", err)
	}
	path := filepath.Join(dir, checkpointName(ck.Program, ck.Index))
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return "", fmt.Errorf("sample: checkpoint: %w", err)
	}
	err = gob.NewEncoder(f).Encode(ck)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("sample: checkpoint %s: %w", path, err)
	}
	return path, nil
}

// LoadCheckpoint reads and validates one checkpoint file.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sample: checkpoint: %w", err)
	}
	defer f.Close()
	var ck Checkpoint
	if err := gob.NewDecoder(f).Decode(&ck); err != nil {
		return nil, fmt.Errorf("sample: checkpoint %s: %w", path, err)
	}
	if ck.Format != CheckpointFormat {
		return nil, fmt.Errorf("sample: checkpoint %s has format %d, want %d", path, ck.Format, CheckpointFormat)
	}
	return &ck, nil
}

// Checkpoints lists a program's checkpoint files in window order.
func Checkpoints(dir, program string) ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, program+"-w*.ckpt"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// RunCheckpoint executes one measurement window from its checkpoint —
// the sharding primitive: any process holding the program and one
// checkpoint file can produce that window's Stats, bit-identical to the
// direct sampled run's.
func RunCheckpoint(p *prog.Program, ck *Checkpoint, cfg pipeline.Config, sp sim.Sampling) (*WindowStat, error) {
	if ck.Program != p.Name {
		return nil, fmt.Errorf("sample: checkpoint is for %q, not %q", ck.Program, p.Name)
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	if sp.Warmup != ck.Sampling.Warmup || sp.Window != ck.Sampling.Window {
		return nil, fmt.Errorf("sample: checkpoint window layout %s does not match requested %s",
			ck.Sampling, sp)
	}
	stats, _, err := runDetail(p, cfg, ck.Emu, ck.Warm, sp)
	if err != nil {
		return nil, fmt.Errorf("sample: window %d of %s: %w", ck.Index, p.Name, err)
	}
	return &WindowStat{
		Index:        ck.Index,
		Start:        ck.Start,
		MeasuredFrom: ck.Start + sp.Warmup,
		Stats:        *stats,
	}, nil
}

// Resume re-runs every checkpointed window of p in sc.CheckpointDir and
// aggregates them — the restart-after-interruption and shard-merge path.
// dynLen scales whole-run estimates exactly as in Run. The result is
// bit-identical to the direct sampled run that wrote the checkpoints.
func Resume(p *prog.Program, dynLen int, cfg pipeline.Config, sc Config) (*Estimate, error) {
	sc, err := sc.normalized()
	if err != nil {
		return nil, err
	}
	if sc.CheckpointDir == "" {
		return nil, fmt.Errorf("sample: Resume needs Config.CheckpointDir")
	}
	paths, err := Checkpoints(sc.CheckpointDir, p.Name)
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("sample: no checkpoints for %s in %s", p.Name, sc.CheckpointDir)
	}

	windows := make([]WindowStat, len(paths))
	errs := make([]error, len(paths))
	sem := make(chan struct{}, sc.Parallel)
	var wg sync.WaitGroup
	for i, path := range paths {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int, path string) {
			defer wg.Done()
			defer func() { <-sem }()
			ck, err := LoadCheckpoint(path)
			if err != nil {
				errs[i] = err
				return
			}
			ws, err := RunCheckpoint(p, ck, cfg, sc.Sampling)
			if err != nil {
				errs[i] = err
				return
			}
			windows[i] = *ws
		}(i, path)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	total := uint64(dynLen)
	if total == 0 {
		// No known dynamic length (e.g. an ad-hoc -file run): fall back
		// to the coverage lower bound so ratios and fractions stay
		// meaningful instead of dividing by zero.
		for _, w := range windows {
			if end := w.MeasuredFrom + w.Stats.Retired; end > total {
				total = end
			}
		}
	}
	return aggregate(sc.Sampling, detailPad(cfg), windows, total), nil
}
