package sample

import (
	"context"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"rix/internal/emu"
	"rix/internal/pipeline"
	"rix/internal/prog"
)

// CheckpointFormat versions the on-disk checkpoint encoding. Bump it
// whenever Checkpoint, WarmSnapshot, emu.State or any of the embedded
// state structs change shape; loads reject other versions.
// doc/FORMATS.md is the authoritative field-by-field description and
// version history — keep it in lockstep with any change here.
const CheckpointFormat = 2

// Checkpoint is everything one measurement window needs to run in
// isolation: the emulator's architectural state at the window's
// detailed start and the warmed microarchitectural state at the same
// boundary (doc/FORMATS.md). The warm snapshot includes the LISP
// feedback chained from the windows already run, which is specific to
// the machine configuration that produced it — so a checkpoint set
// belongs to one configuration; keep one directory per config.
// RunCheckpoint validates the window layout but cannot detect a
// policy mismatch.
type Checkpoint struct {
	Format   int
	Program  string
	Index    int
	Start    uint64 // dynamic instruction of the detailed (warmup) start
	Partial  bool   // mid-fast-forward cancellation flush: Start is NOT a window boundary
	Sampling Sampling
	Emu      emu.State
	Warm     WarmSnapshot
}

// checkpointName names a window's file. The zero-padded index keeps
// lexical directory order equal to window order.
func checkpointName(program string, idx int) string {
	return fmt.Sprintf("%s-w%05d.ckpt", program, idx)
}

// SaveCheckpoint atomically writes a checkpoint into dir (created if
// missing), returning its path. A crash mid-write leaves no partial
// file: the payload lands under a temporary name and is renamed into
// place. A partial (cancellation) checkpoint shares its window's file
// name, so the boundary checkpoint written when Continue reaches the
// window start replaces it.
func SaveCheckpoint(dir string, ck *Checkpoint) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("sample: checkpoint dir: %w", err)
	}
	path := filepath.Join(dir, checkpointName(ck.Program, ck.Index))
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return "", fmt.Errorf("sample: checkpoint: %w", err)
	}
	err = gob.NewEncoder(f).Encode(ck)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("sample: checkpoint %s: %w", path, err)
	}
	return path, nil
}

// LoadCheckpoint reads and validates one checkpoint file: the format
// version must match this build's and the recorded window layout must
// be internally valid. Every rejection names the offending file.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sample: checkpoint: %w", err)
	}
	defer f.Close()
	var ck Checkpoint
	if err := gob.NewDecoder(f).Decode(&ck); err != nil {
		return nil, fmt.Errorf("sample: checkpoint %s: %w", path, err)
	}
	if ck.Format != CheckpointFormat {
		return nil, fmt.Errorf("sample: checkpoint %s has format %d, want %d", path, ck.Format, CheckpointFormat)
	}
	if err := ck.Sampling.Validate(); err != nil {
		return nil, fmt.Errorf("sample: checkpoint %s: %w", path, err)
	}
	return &ck, nil
}

// Checkpoints lists a program's checkpoint files in window order.
func Checkpoints(dir, program string) ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, program+"-w*.ckpt"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// RunCheckpoint executes one measurement window from its checkpoint —
// the sharding primitive: any process holding the program and one
// checkpoint file can produce that window's Stats, bit-identical to the
// direct sampled run's. Partial (cancellation-flush) checkpoints are not
// window boundaries and are rejected; Continue is the path that
// finishes an interrupted run.
func RunCheckpoint(ctx context.Context, p *prog.Program, ck *Checkpoint, cfg pipeline.Config, sp Sampling) (*WindowStat, error) {
	if ck.Program != p.Name {
		return nil, fmt.Errorf("sample: checkpoint is for %q, not %q", ck.Program, p.Name)
	}
	if ck.Partial {
		return nil, fmt.Errorf("sample: checkpoint for window %d of %s is a partial (cancellation) flush, not a window boundary; use Continue", ck.Index, p.Name)
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	if sp.Warmup != ck.Sampling.Warmup || sp.Window != ck.Sampling.Window {
		return nil, fmt.Errorf("sample: checkpoint window layout %s does not match requested %s",
			ck.Sampling, sp)
	}
	stats, _, err := runDetail(ctx, p, cfg, ck.Emu, ck.Warm, sp)
	if err != nil {
		if ctx.Err() != nil && err == ctx.Err() {
			return nil, err
		}
		return nil, fmt.Errorf("sample: window %d of %s: %w", ck.Index, p.Name, err)
	}
	return &WindowStat{
		Index:        ck.Index,
		Start:        ck.Start,
		MeasuredFrom: ck.Start + sp.Warmup,
		Stats:        *stats,
	}, nil
}

// runCheckpointSet re-runs a set of checkpoint files across a bounded
// worker pool, returning the windows they measure in path order.
// Partial checkpoints contribute no window and are skipped. Cancelling
// ctx stops scheduling; in-flight windows see the same ctx. Each
// completed window fires Hooks.WindowDone — from the worker goroutine,
// in completion (not index) order — so observers see every measured
// window of a Resume/Continue, not just the sequential tail.
func runCheckpointSet(ctx context.Context, p *prog.Program, paths []string, cfg pipeline.Config, sc Config) ([]WindowStat, error) {
	windows := make([]*WindowStat, len(paths))
	errs := make([]error, len(paths))
	sem := make(chan struct{}, sc.Parallel)
	var wg sync.WaitGroup
	done := ctx.Done()
sched:
	for i, path := range paths {
		select {
		case <-done:
			errs[i] = ctx.Err()
			break sched
		case sem <- struct{}{}:
		}
		wg.Add(1)
		go func(i int, path string) {
			defer wg.Done()
			defer func() { <-sem }()
			ck, err := LoadCheckpoint(path)
			if err != nil {
				errs[i] = err
				return
			}
			if ck.Partial {
				return
			}
			ws, err := RunCheckpoint(ctx, p, ck, cfg, sc.Sampling)
			if err != nil {
				if ctx.Err() != nil && err == ctx.Err() {
					errs[i] = err
				} else {
					errs[i] = fmt.Errorf("checkpoint %s: %w", path, err)
				}
				return
			}
			windows[i] = ws
			if sc.Hooks.WindowDone != nil {
				sc.Hooks.WindowDone(*ws)
			}
		}(i, path)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var out []WindowStat
	for _, w := range windows {
		if w != nil {
			out = append(out, *w)
		}
	}
	return out, nil
}

// Resume re-runs every checkpointed window of p in sc.CheckpointDir and
// aggregates them — the restart-after-interruption and shard-merge path
// for a checkpoint set whose run completed. dynLen scales whole-run
// estimates exactly as in Run. The result is bit-identical to the
// direct sampled run that wrote the checkpoints. A partial
// (cancellation) checkpoint contributes no window; use Continue to
// finish an interrupted run instead of merely re-measuring its prefix.
func Resume(ctx context.Context, p *prog.Program, dynLen int, cfg pipeline.Config, sc Config) (*Estimate, error) {
	sc, err := sc.normalized()
	if err != nil {
		return nil, err
	}
	if sc.CheckpointDir == "" {
		return nil, fmt.Errorf("sample: Resume needs Config.CheckpointDir")
	}
	paths, err := Checkpoints(sc.CheckpointDir, p.Name)
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("sample: no checkpoints for %s in %s", p.Name, sc.CheckpointDir)
	}
	windows, err := runCheckpointSet(ctx, p, paths, cfg, sc)
	if err != nil {
		return nil, err
	}
	if len(windows) == 0 {
		return nil, fmt.Errorf("sample: no completed windows for %s in %s (the run was interrupted before any window boundary; use Continue to finish it)",
			p.Name, sc.CheckpointDir)
	}
	total := uint64(dynLen)
	if total == 0 {
		// No known dynamic length (e.g. an ad-hoc -file run): fall back
		// to the coverage lower bound so ratios and fractions stay
		// meaningful instead of dividing by zero.
		for _, w := range windows {
			if end := w.MeasuredFrom + w.Stats.Retired; end > total {
				total = end
			}
		}
	}
	return aggregate(sc.Sampling, detailPad(cfg), windows, total), nil
}

// Continue finishes an interrupted sampled run from its checkpoint
// directory: every window before the newest checkpoint is re-run from
// disk (in parallel, exactly as Resume), and the run then proceeds
// sequentially from the newest checkpoint — a window boundary or a
// partial cancellation flush — through the rest of the program, writing
// further checkpoints as it goes. The aggregate is bit-identical to the
// uninterrupted run's: re-run windows reproduce their stats exactly,
// and the continuation restores the emulator and warmer (including the
// chained LISP feedback) to the exact state the interrupted run held.
//
// A checkpoint set whose run already completed just re-measures every
// window (the final fast-forward discovers the program's halt), so
// Continue also subsumes Resume for whole-run re-execution.
func Continue(ctx context.Context, p *prog.Program, dynLen int, cfg pipeline.Config, sc Config) (*Estimate, error) {
	sc, err := sc.normalized()
	if err != nil {
		return nil, err
	}
	if sc.CheckpointDir == "" {
		return nil, fmt.Errorf("sample: Continue needs Config.CheckpointDir")
	}
	paths, err := Checkpoints(sc.CheckpointDir, p.Name)
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("sample: no checkpoints for %s in %s", p.Name, sc.CheckpointDir)
	}
	last, err := LoadCheckpoint(paths[len(paths)-1])
	if err != nil {
		return nil, err
	}
	if err := validateLayout(sc.Sampling, last.Sampling); err != nil {
		return nil, fmt.Errorf("checkpoint %s: %w", paths[len(paths)-1], err)
	}

	windows, err := runCheckpointSet(ctx, p, paths[:len(paths)-1], cfg, sc)
	if err != nil {
		return nil, err
	}

	e, err := emu.NewFromState(p, last.Emu)
	if err != nil {
		return nil, err
	}
	w, err := warmerFromSnapshot(cfg, last.Warm)
	if err != nil {
		return nil, err
	}
	cont, err := runFrom(ctx, p, e, w, last.Index, cfg, sc)
	windows = append(windows, cont...)
	if err != nil {
		return nil, err
	}

	total := uint64(dynLen)
	if total == 0 {
		total = e.Count
	}
	return aggregate(sc.Sampling, detailPad(cfg), windows, total), nil
}

// validateLayout rejects a requested window layout that does not match
// the one a checkpoint was written under.
func validateLayout(want, have Sampling) error {
	if err := want.Validate(); err != nil {
		return err
	}
	if want != have {
		return fmt.Errorf("sample: checkpoint sampling layout %s does not match requested %s", have, want)
	}
	return nil
}
