package sample_test

import (
	"context"
	"math/rand"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"rix/internal/sample"
	"rix/internal/sim"
)

// TestWarmShardParity is the sharded warm pass's core guarantee,
// mirroring TestParallelEstimateBitEqual one phase earlier: across the
// no-integration baseline and every integration preset, the sharded
// build must produce a WarmSet byte-identical to the sequential pass —
// every boundary position, emulator snapshot, and warm snapshot.
func TestWarmShardParity(t *testing.T) {
	ctx := context.Background()
	opts := []sim.Options{{Integration: sim.IntNone}}
	for _, p := range sim.IntegrationPresets() {
		opts = append(opts, sim.Options{Integration: p})
	}
	for _, name := range []string{"gzip", "crafty"} {
		bw := buildBench(t, name)
		for _, o := range opts {
			cfg, err := o.Config()
			if err != nil {
				t.Fatal(err)
			}
			seq, err := sample.PrepareWarm(ctx, bw.Prog, cfg, sample.Config{})
			if err != nil {
				t.Fatalf("%s [%s] sequential: %v", name, o.Label(), err)
			}
			str, err := sample.PrepareStrides(ctx, bw.Prog, cfg, sample.Config{})
			if err != nil {
				t.Fatalf("%s [%s] strides: %v", name, o.Label(), err)
			}
			shard, err := sample.PrepareWarm(ctx, bw.Prog, cfg, sample.Config{Strides: str, WarmJobs: 4})
			if err != nil {
				t.Fatalf("%s [%s] sharded: %v", name, o.Label(), err)
			}
			if !reflect.DeepEqual(shard, seq) {
				t.Errorf("%s [%s]: sharded warm set diverges from sequential", name, o.Label())
			}
		}
	}
}

// TestWarmShardParityProperty drives the sharded build through random
// stride and worker counts — including strides far coarser and finer
// than the interval, worker counts above the boundary count, and
// non-default window layouts — and requires byte-identical WarmSets
// every time. Seeded, so a failure reproduces.
func TestWarmShardParityProperty(t *testing.T) {
	ctx := context.Background()
	bw := buildBench(t, "crafty")
	cfg, err := (sim.Options{Integration: sim.IntReverse}).Config()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	layouts := []sample.Sampling{
		{},
		{Interval: 8000, Window: 400, Warmup: 200},
		{Interval: 24000, Window: 900, Warmup: 450},
	}
	for trial := 0; trial < 8; trial++ {
		sp := layouts[rng.Intn(len(layouts))]
		stride := uint64(1000 + rng.Intn(40000))
		jobs := 1 + rng.Intn(16)
		seq, err := sample.PrepareWarm(ctx, bw.Prog, cfg, sample.Config{Sampling: sp})
		if err != nil {
			t.Fatal(err)
		}
		str, err := sample.PrepareStrides(ctx, bw.Prog, cfg, sample.Config{WarmStride: stride})
		if err != nil {
			t.Fatal(err)
		}
		shard, err := sample.PrepareWarm(ctx, bw.Prog, cfg, sample.Config{
			Sampling: sp, Strides: str, WarmJobs: jobs,
		})
		if err != nil {
			t.Fatalf("trial %d (stride %d, jobs %d): %v", trial, stride, jobs, err)
		}
		if !reflect.DeepEqual(shard, seq) {
			t.Errorf("trial %d (stride %d, jobs %d, layout %s): sharded warm set diverges",
				trial, stride, jobs, shard.Sampling)
		}
	}
}

// TestWarmShardCheckpointParity: a sharded warm pass with a checkpoint
// directory must leave the same provisional checkpoints the sequential
// pass writes — decoded-equal, file for file.
func TestWarmShardCheckpointParity(t *testing.T) {
	ctx := context.Background()
	bw := buildBench(t, "gzip")
	cfg, err := (sim.Options{Integration: sim.IntReverse}).Config()
	if err != nil {
		t.Fatal(err)
	}
	seqDir, shardDir := t.TempDir(), t.TempDir()
	if _, err := sample.PrepareWarm(ctx, bw.Prog, cfg, sample.Config{CheckpointDir: seqDir}); err != nil {
		t.Fatal(err)
	}
	str, err := sample.PrepareStrides(ctx, bw.Prog, cfg, sample.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sample.PrepareWarm(ctx, bw.Prog, cfg, sample.Config{
		CheckpointDir: shardDir, Strides: str, WarmJobs: 4,
	}); err != nil {
		t.Fatal(err)
	}
	seqPaths, err := sample.Checkpoints(seqDir, bw.Prog.Name)
	if err != nil {
		t.Fatal(err)
	}
	shardPaths, err := sample.Checkpoints(shardDir, bw.Prog.Name)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqPaths) == 0 || len(seqPaths) != len(shardPaths) {
		t.Fatalf("%d sequential vs %d sharded checkpoints", len(seqPaths), len(shardPaths))
	}
	for i := range seqPaths {
		a, err := sample.LoadCheckpoint(seqPaths[i])
		if err != nil {
			t.Fatal(err)
		}
		b, err := sample.LoadCheckpoint(shardPaths[i])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("checkpoint %s differs between sequential and sharded passes", filepath.Base(seqPaths[i]))
		}
	}
}

// TestWarmShardEndToEnd: a full sampled run whose warm pass shards must
// produce the same Estimate as the fully sequential engine — the parity
// composes through the window phase.
func TestWarmShardEndToEnd(t *testing.T) {
	ctx := context.Background()
	bw := buildBench(t, "crafty")
	cfg, err := (sim.Options{Integration: sim.IntReverse}).Config()
	if err != nil {
		t.Fatal(err)
	}
	seq, err := sample.Run(ctx, bw.Prog, bw.DynLen, cfg, sample.Config{})
	if err != nil {
		t.Fatal(err)
	}
	str, err := sample.PrepareStrides(ctx, bw.Prog, cfg, sample.Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sample.Run(ctx, bw.Prog, bw.DynLen, cfg, sample.Config{
		Strides: str, WarmJobs: 4, Windows: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, seq) {
		t.Error("sharded-warm sampled run diverges from sequential")
	}
}

// TestWarmShardStrideMismatch: a stride set built for a different
// machine geometry (or program) must be rejected by its key, never
// silently warm the wrong machine.
func TestWarmShardStrideMismatch(t *testing.T) {
	ctx := context.Background()
	bw := buildBench(t, "gzip")
	cfg, err := (sim.Options{Integration: sim.IntReverse}).Config()
	if err != nil {
		t.Fatal(err)
	}
	str, err := sample.PrepareStrides(ctx, bw.Prog, cfg, sample.Config{})
	if err != nil {
		t.Fatal(err)
	}
	other, err := (sim.Options{Integration: sim.IntNone}).Config()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sample.PrepareWarm(ctx, bw.Prog, other, sample.Config{Strides: str, WarmJobs: 2}); err == nil {
		t.Error("stride set for another geometry accepted")
	}
	bw2 := buildBench(t, "crafty")
	if _, err := sample.PrepareWarm(ctx, bw2.Prog, cfg, sample.Config{Strides: str, WarmJobs: 2}); err == nil {
		t.Error("stride set for another program accepted")
	}
}

// TestWarmShardSharedCacheStress is the -race stress test: many
// concurrent sampled runs sharing one cache directory and one injected
// stride set, all sharding their warm passes at once. Every estimate
// must match the sequential baseline; the race detector (go test -race)
// checks the warm workers' sharing of the stride snapshots and the
// copy-on-write emulator pages.
func TestWarmShardSharedCacheStress(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	benches := []string{"gzip", "crafty"}
	cfg, err := (sim.Options{Integration: sim.IntReverse}).Config()
	if err != nil {
		t.Fatal(err)
	}
	seqs := make([]*sample.Estimate, len(benches))
	strs := make([]*sample.StrideSet, len(benches))
	for i, name := range benches {
		bw := buildBench(t, name)
		if seqs[i], err = sample.Run(ctx, bw.Prog, bw.DynLen, cfg, sample.Config{}); err != nil {
			t.Fatal(err)
		}
		if strs[i], err = sample.PrepareStrides(ctx, bw.Prog, cfg, sample.Config{}); err != nil {
			t.Fatal(err)
		}
	}
	const runsPerBench = 3
	var wg sync.WaitGroup
	errs := make([]error, len(benches)*runsPerBench)
	ests := make([]*sample.Estimate, len(benches)*runsPerBench)
	for i, name := range benches {
		for r := 0; r < runsPerBench; r++ {
			bw := buildBench(t, name)
			k := i*runsPerBench + r
			sc := sample.Config{CacheDir: dir, Windows: 2, WarmJobs: 3, Strides: strs[i]}
			wg.Add(1)
			go func() {
				defer wg.Done()
				ests[k], errs[k] = sample.Run(ctx, bw.Prog, bw.DynLen, cfg, sc)
			}()
		}
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", k, err)
		}
		if !reflect.DeepEqual(ests[k], seqs[k/runsPerBench]) {
			t.Errorf("run %d: concurrent sharded estimate diverges from sequential", k)
		}
	}
}
