package sample

import (
	"testing"

	"rix/internal/testutil"
)

// TestMain fails the package if the parallel window tests leak
// goroutines — Scheduler.Close must stop every pool worker, and
// EstimateParallel must reap its own workers even on error paths.
func TestMain(m *testing.M) {
	testutil.VerifyNoLeaks(m)
}
