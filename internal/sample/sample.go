// Package sample is the checkpointed interval-sampling engine: it makes
// long workloads tractable by simulating only periodic measurement
// windows in full detail and fast-forwarding functionally in between.
//
// A sampled run interleaves three modes over the dynamic instruction
// stream:
//
//   - Functional fast-forward: the architectural emulator executes every
//     instruction, and a warmer folds each one into the long-lived
//     microarchitectural state (caches, TLBs, branch predictors, BTB,
//     return-address stack). This costs tens of nanoseconds per
//     instruction instead of the detailed pipeline's microsecond.
//
//   - Detailed warmup: at each window boundary the detailed pipeline
//     boots from the emulator's architectural state plus a clone of the
//     warm state, and runs Warmup instructions with statistics gated off.
//     This warms the state functional execution cannot: the integration
//     table and LISP (whose entries name physical registers that exist
//     only inside one pipeline), the register file, and in-flight
//     structure occupancy.
//
//   - Measurement: the next Window instructions run in full detail and
//     their pipeline.Stats delta is recorded.
//
// Per-window measurements aggregate into an Estimate with approximate
// 95% confidence half-widths on IPC and integration rate; the
// sampled-vs-full accuracy bounds the engine is tuned to are
// IPCErrBound and RateErrBound, enforced by this package's tests.
//
// When Config.CheckpointDir is set, the run serializes one Checkpoint
// (emulator + warm state, including the feedback chained so far) per
// window boundary; Resume re-runs every window from disk — bit-identical
// to the direct run — so a run can be restarted after interruption or
// its windows sharded across processes and machines. Each checkpoint is
// self-contained, so Resume fans windows out across a bounded worker
// pool (Config.Parallel).
//
// # Two-phase parallel engine
//
// Setting Config.Windows > 1 (or Config.CacheDir, or Config.Warm)
// selects the two-phase engine: one warm pass fast-forwards the whole
// trace, snapshotting a WarmSnapshot per window boundary (PrepareWarm
// exposes this phase directly), then a bounded pool executes all
// detail windows concurrently. The chained LISP feedback is the only
// cross-window dependency, so windows dispatch speculatively in waves
// — each settles in index order, and a misspeculated feedback guess
// discards the rest of its wave for re-dispatch — which keeps the
// Estimate bit-identical to the sequential engine while the common
// quiescent chain reaches full parallelism.
//
// Config.CacheDir names a content-addressed warm-set cache: the warm
// pass's output is keyed by a SHA-256 over the program content, window
// layout, drain pad, warm-relevant machine geometry, and the encoding
// format versions, so a repeat run skips fast-forward entirely and any
// invalidating change is a clean miss. Loads are best-effort (corrupt
// or mismatched entries are misses that get rewritten); saves are
// atomic.
//
// Every run accepts a context.Context, checked at batched boundaries
// (cancelCheckInterval instructions of fast-forward, every poll interval
// of detailed simulation). Cancelling a checkpointing run flushes one
// final partial checkpoint at the interruption point, so Continue can
// later finish the run with stats bit-identical to an uninterrupted one.
package sample

import (
	"context"
	"fmt"
	"math"
	"time"

	"rix/internal/core"
	"rix/internal/emu"
	"rix/internal/pipeline"
	"rix/internal/prog"
)

// Documented accuracy bounds: on the benchmark workloads under every
// integration preset and suppression mode, a default-knob sampled run's
// headline metrics stay within these bounds of the full-detail run. The
// property test in this package enforces them; the worst observed
// errors are ~7.3% relative IPC (a phase-composition artifact on the
// call-rich workloads' short traces — the sampled windows' predictor
// and cache state match the full machine's bit-for-bit) and ~0.7
// points of integration rate.
const (
	// IPCErrBound bounds |IPC_sampled - IPC_full| / IPC_full.
	IPCErrBound = 0.09
	// RateErrBound bounds |rate_sampled - rate_full| (absolute, where
	// rate is the integration rate in [0,1]).
	RateErrBound = 0.015
)

// DefaultMaxInstrs bounds the functional fast-forward, mirroring
// workload.MaxInstrs: every benchmark must halt well within it.
const DefaultMaxInstrs = 1 << 24

// cancelCheckInterval is how many fast-forwarded instructions pass
// between context polls. A power of two, so the check compiles to a
// mask; at emulator speed (tens of ns/instr) cancellation is detected
// within well under a millisecond.
const cancelCheckInterval = 1 << 12

// Hooks are optional run observation callbacks. They exist so higher
// layers (internal/run) can surface typed progress events without this
// package knowing about them; nil fields are skipped. Progress and
// CheckpointWritten fire synchronously from the sequential run
// goroutine; WindowDone additionally fires from Resume/Continue's
// bounded worker pool — one call per re-run window, concurrently and in
// completion order — so a WindowDone hook must be safe for concurrent
// use.
type Hooks struct {
	// Progress reports the dynamic instruction count reached by the
	// functional fast-forward, at cancelCheckInterval granularity.
	Progress func(instrs uint64)
	// WindowScheduled fires when the two-phase engine dispatches a
	// window to a worker (from the coordinating goroutine, in dispatch
	// order; re-dispatch after a feedback misspeculation fires again).
	WindowScheduled func(index int)
	// WindowDone fires after each measurement window completes
	// (possibly concurrently; see above).
	WindowDone func(w WindowStat)
	// WindowDiscarded fires when a speculatively dispatched window is
	// cancelled because an earlier window settled with feedback that
	// invalidated its boot guess; the window re-dispatches under the
	// corrected chain. Fires from the coordinating goroutine, so the
	// dispatch/discard sequence is deterministic for a given run.
	WindowDiscarded func(index int)
	// SlotStolen fires when a shared scheduler slot that last executed
	// another run's window picks up one of this run's — the work-stealing
	// handoff. Fires from the pool's worker goroutines (concurrently,
	// and dependent on scheduling timing: the count is not
	// deterministic).
	SlotStolen func(slot int)
	// SlotReturned fires once per window settled after this run has
	// dispatched its last one — each such settle shrinks the run's
	// in-flight set, releasing a pool slot to cells still dispatching.
	// Fires from the coordinating goroutine, deterministically.
	SlotReturned func(index int)
	// WarmShardStarted fires when a sharded warm pass hands one trace
	// span to a warm worker: shard is the span's ordinal, start the
	// dynamic instruction count the worker resumes from (its nearest
	// preceding stride snapshot, 0 for a fresh boot), and end the last
	// window boundary inside the span. Fires from the worker goroutines,
	// so calls are concurrent; the set of (shard, start, end) triples is
	// deterministic, their order is not.
	WarmShardStarted func(shard int, start, end uint64)
	// WarmShardDone fires when that worker has snapshotted every
	// boundary in its span. Same concurrency contract as
	// WarmShardStarted.
	WarmShardDone func(shard int, start, end uint64)
	// CheckpointWritten fires after each checkpoint lands on disk.
	CheckpointWritten func(path string, index int)
	// CacheHit fires when a warm pass is skipped because the
	// content-addressed cache (Config.CacheDir) held a valid warm set.
	CacheHit func(path string)
	// CacheWritten fires after a freshly built warm set lands in the
	// cache.
	CacheWritten func(path string)
}

// Config configures a sampled run.
type Config struct {
	// Sampling is the window layout; the zero value selects
	// DefaultSampling().
	Sampling Sampling

	// CheckpointDir, when non-empty, persists one Checkpoint per window
	// boundary (atomically, named <program>-w<index>.ckpt) as the run
	// proceeds, plus one final partial checkpoint if the run is
	// cancelled mid-fast-forward.
	CheckpointDir string

	// Parallel bounds concurrently re-simulated windows in Resume and
	// Continue's prefix (default 1).
	Parallel int

	// Windows bounds concurrently executed detail windows in Run
	// (default 1: the classic sequential loop). Any value above 1
	// selects the two-phase engine — one warm pass over the whole
	// trace, then a bounded pool running windows concurrently with
	// speculative feedback validation — whose Estimate is bit-identical
	// to the sequential path's.
	Windows int

	// CacheDir, when non-empty, selects the two-phase engine and backs
	// its warm pass with an on-disk content-addressed cache: the warm
	// set is keyed by program content, window layout, warm-relevant
	// machine geometry, and format versions, so a repeat run skips the
	// warm pass entirely and an invalidating change (different binary,
	// layout, geometry, or format) is a clean miss, never a stale hit.
	CacheDir string

	// CacheMaxBytes bounds the total size of CacheDir's .warmset
	// entries: after each save, least-recently-used entries (by
	// modification time — cache hits re-stamp it) are evicted until the
	// directory fits. 0 leaves the size unbounded. The entry the run
	// just wrote is never evicted.
	CacheMaxBytes int64

	// CacheMaxAge evicts CacheDir entries not written or hit within the
	// window, during the same post-save sweep. 0 disables the age bound.
	CacheMaxAge time.Duration

	// Warm injects a pre-built warm set (PrepareWarm), skipping both
	// the warm pass and the cache probe. The set is read-only during
	// the run and may be shared by concurrent runs.
	Warm *WarmSet

	// WarmJobs bounds concurrent warm-pass shard workers (default 1).
	// Any value above 1 selects the two-phase engine and shards the
	// warm pass across disjoint trace spans when stride snapshots are
	// available — injected via Strides or loaded from CacheDir's
	// .stride entry. Without snapshots the pass runs sequentially and,
	// when CacheDir is set, records a stride set as a byproduct so the
	// next build shards.
	WarmJobs int

	// WarmStride is the spacing, in dynamic instructions, of the
	// emulator snapshots the stride pass captures (and the sharded warm
	// pass resumes from). 0 selects the sampling interval — one
	// resumable point per window, the finest stride that is ever
	// useful. Coarser strides shrink the cache entry at the cost of
	// longer per-shard resume distances.
	WarmStride uint64

	// Strides injects a pre-built stride set (PrepareStrides), skipping
	// both the stride pass and the cache probe and selecting the
	// sharded warm-pass build. The set is validated against the
	// program and machine geometry by its content-addressed key, is
	// read-only during the run, and may be shared by concurrent runs.
	Strides *StrideSet

	// Scheduler, when non-nil, selects the two-phase engine and runs
	// the detail-window phase on this shared work-stealing pool instead
	// of an ephemeral per-run pool; the run's speculation depth is the
	// pool's slot count (Windows is ignored). Concurrent runs may share
	// one Scheduler: a run that settles early stops submitting, and its
	// slots immediately serve the runs still dispatching. The caller
	// owns the pool and must Close it only after every run sharing it
	// has returned.
	Scheduler *Scheduler

	// Executor, when non-nil, selects the two-phase engine and executes
	// the detail-window phase through this executor instead of an
	// in-process scheduler pool (Scheduler and Windows are then
	// ignored); its Width is the run's speculation depth. The estimate
	// is bit-identical whichever executor runs the windows — see
	// Executor's determinism contract. The caller owns the executor's
	// lifecycle (e.g. procexec.Coordinator's cleanup).
	Executor Executor

	// MaxInstrs bounds functional execution (default DefaultMaxInstrs).
	MaxInstrs uint64

	// Hooks observe the run; see Hooks.
	Hooks Hooks
}

func (c Config) normalized() (Config, error) {
	if c.Sampling == (Sampling{}) {
		c.Sampling = DefaultSampling()
	}
	if err := c.Sampling.Validate(); err != nil {
		return c, err
	}
	if c.Parallel < 1 {
		c.Parallel = 1
	}
	if c.Windows < 1 {
		c.Windows = 1
	}
	if c.WarmJobs < 1 {
		c.WarmJobs = 1
	}
	if c.WarmStride == 0 {
		c.WarmStride = c.Sampling.Interval
	}
	if c.MaxInstrs == 0 {
		c.MaxInstrs = DefaultMaxInstrs
	}
	return c, nil
}

// Run samples one (program, machine configuration) cell: fast-forward
// with functional warming, detailed windows every Sampling.Interval
// instructions, and aggregation into an Estimate. dynLen is the known
// dynamic instruction count (workload.Built.DynLen); pass 0 if unknown —
// coverage and scaled estimates then use the observed count.
//
// Cancelling ctx ends the run with ctx.Err() within a bounded number of
// instructions; if Config.CheckpointDir is set, the windows completed so
// far remain checkpointed on disk and one final (possibly partial)
// checkpoint is flushed, so Continue can finish the run later.
func Run(ctx context.Context, p *prog.Program, dynLen int, cfg pipeline.Config, sc Config) (*Estimate, error) {
	sc, err := sc.normalized()
	if err != nil {
		return nil, err
	}
	if sc.Windows > 1 || sc.CacheDir != "" || sc.Warm != nil || sc.Scheduler != nil ||
		sc.Executor != nil || sc.Strides != nil || sc.WarmJobs > 1 {
		return runTwoPhase(ctx, p, dynLen, cfg, sc)
	}
	e := emu.New(p)
	w := newWarmer(cfg)
	windows, err := runFrom(ctx, p, e, w, 0, cfg, sc)
	if err != nil {
		return nil, err
	}
	total := uint64(dynLen)
	if total == 0 {
		total = e.Count
	}
	return aggregate(sc.Sampling, detailPad(cfg), windows, total), nil
}

// runFrom is the sequential sampling loop, starting at window startIdx
// with a live emulator and warmer (the program entry for Run, a
// checkpoint's restored state for Continue). Windows run in program
// order so each one's discovered DIVA feedback — the LISP's never-aging
// suppressions — chains into the warmer and thus into every later
// window's boot (and checkpoint). The real machine trains that table on
// a handful of events and keeps it for the whole run; cold-LISP windows
// systematically over-integrated. Parallelism lives across cells in the
// runner pool, and across processes by sharding the self-contained
// checkpoints (Resume).
func runFrom(ctx context.Context, p *prog.Program, e *emu.Emulator, w *warmer,
	startIdx int, cfg pipeline.Config, sc Config) ([]WindowStat, error) {

	sp := sc.Sampling
	done := ctx.Done()
	var windows []WindowStat

	n := sp.Warmup + sp.Window + detailPad(cfg)
	var pool bootPool
	recs := make([]emu.TraceRec, 0, n)
	for idx := startIdx; !e.Halted; idx++ {
		// Fast-forward (warming) to this window's detailed start. The
		// clamp covers jittered starts that would land inside the
		// previous window's recorded span.
		target := windowStart(idx, sp)
		if target < e.Count {
			target = e.Count
		}
		for e.Count < target && !e.Halted {
			if e.Count&(cancelCheckInterval-1) == 0 {
				if done != nil {
					select {
					case <-done:
						// Flush the interruption point so Continue can
						// pick the run up without repeating this
						// fast-forward (best-effort: the previous
						// boundary checkpoint already makes the run
						// resumable).
						if sc.CheckpointDir != "" {
							flushPartial(sc, p, idx, e, w)
						}
						return windows, ctx.Err()
					default:
					}
				}
				if sc.Hooks.Progress != nil {
					sc.Hooks.Progress(e.Count)
				}
			}
			if e.Count >= sc.MaxInstrs {
				return windows, fmt.Errorf("sample: %s did not halt within %d instructions", p.Name, sc.MaxInstrs)
			}
			pc := e.PC
			rec, err := e.Step()
			if err != nil {
				return windows, fmt.Errorf("sample: fast-forward failed: %w", err)
			}
			w.observe(p.Code[rec.CodeIdx], pc, rec, e.PC)
		}
		if e.Halted {
			break
		}

		if sc.CheckpointDir != "" {
			ck := &Checkpoint{
				Format:   CheckpointFormat,
				Program:  p.Name,
				Index:    idx,
				Start:    e.Count,
				Sampling: sp,
				Emu:      e.State(),
				Warm:     w.snapshot(),
			}
			path, err := SaveCheckpoint(sc.CheckpointDir, ck)
			if err != nil {
				return windows, err
			}
			if sc.Hooks.CheckpointWritten != nil {
				sc.Hooks.CheckpointWritten(path, idx)
			}
		}

		// Boot state from the pooled structures (direct copies of the
		// live warm state — fresh clones on the first window only), then
		// record the window's golden records while the same pass keeps
		// warming: the span is emulated once, and the window replays it
		// from memory.
		boot, err := pool.fromWarmer(cfg, e, w)
		if err != nil {
			return windows, err
		}
		start := e.Count
		recs = recs[:0]
		for uint64(len(recs)) < n && !e.Halted {
			if done != nil && e.Count&(cancelCheckInterval-1) == 0 {
				select {
				case <-done:
					// The window's own boundary checkpoint (written
					// above) already covers this interruption point.
					return windows, ctx.Err()
				default:
				}
			}
			pc := e.PC
			rec, err := e.Step()
			if err != nil {
				return windows, fmt.Errorf("sample: fast-forward failed: %w", err)
			}
			recs = append(recs, rec)
			w.observe(p.Code[rec.CodeIdx], pc, rec, e.PC)
		}

		pl := pipeline.NewFrom(cfg, p, emu.FromSlice(recs), boot)
		stats, err := pl.RunWindowContext(ctx, sp.Warmup, sp.Window)
		if err != nil {
			if ctx.Err() != nil && err == ctx.Err() {
				return windows, err
			}
			return windows, fmt.Errorf("sample: window %d of %s: %w", idx, p.Name, err)
		}
		ws := WindowStat{
			Index:        idx,
			Start:        start,
			MeasuredFrom: start + sp.Warmup,
			Stats:        *stats,
		}
		windows = append(windows, ws)
		if sc.Hooks.WindowDone != nil {
			sc.Hooks.WindowDone(ws)
		}
		// Feedback chaining, allocation-free: fold the window's final
		// LISP straight into the warmer (equivalent to adoptFeedback
		// over its serialized state — the integrator's LISP always has
		// full geometry).
		if w.lisp != nil {
			if err := w.lisp.CopyFrom(pl.Integrator().LISP); err != nil {
				return windows, err
			}
		}
		pool.scratch = pl.Recycle()
	}
	return windows, nil
}

// flushPartial writes the cancellation checkpoint: the run's state at an
// arbitrary fast-forward position, tagged Partial so window-replay paths
// (RunCheckpoint, Resume) skip it. Continue fast-forwards from it to the
// next window boundary, where the regular boundary checkpoint overwrites
// it (same index, same name). Flushing is best-effort — the run is
// already ending with ctx.Err(), and the previous boundary checkpoint
// keeps it resumable even if this write fails.
func flushPartial(sc Config, p *prog.Program, idx int, e *emu.Emulator, w *warmer) {
	ck := &Checkpoint{
		Format:   CheckpointFormat,
		Program:  p.Name,
		Index:    idx,
		Start:    e.Count,
		Partial:  true,
		Sampling: sc.Sampling,
		Emu:      e.State(),
		Warm:     w.snapshot(),
	}
	if path, err := SaveCheckpoint(sc.CheckpointDir, ck); err == nil && sc.Hooks.CheckpointWritten != nil {
		sc.Hooks.CheckpointWritten(path, idx)
	}
}

// feedback is the DIVA-feedback state a window discovers that is worth
// chaining from window to window (see warmer.adoptFeedback for why the
// CHT is excluded).
type feedback struct {
	LISP core.LISPState
}

// runDetail boots the detailed pipeline from a window's checkpoint state
// and runs warmup + measurement, returning the measured Stats delta and
// the window's final feedback state. The emulator budget only needs to
// cover the window: emu.Limit ends the stream after warmup+window+pad
// records regardless.
func runDetail(ctx context.Context, p *prog.Program, cfg pipeline.Config, st emu.State, ws WarmSnapshot,
	sp Sampling) (*pipeline.Stats, feedback, error) {

	boot, err := buildBoot(cfg, p, st, ws)
	if err != nil {
		return nil, feedback{}, err
	}
	n := sp.Warmup + sp.Window + detailPad(cfg)
	src, err := emu.ResumeStream(p, st, st.Count+n+1)
	if err != nil {
		return nil, feedback{}, err
	}
	pl := pipeline.NewFrom(cfg, p, emu.Limit(src, n), boot)
	stats, err := pl.RunWindowContext(ctx, sp.Warmup, sp.Window)
	if err != nil {
		return nil, feedback{}, err
	}
	return stats, feedback{LISP: pl.Integrator().LISP.State()}, nil
}

// detailPad is the drain pad fed beyond each measurement boundary so
// the window's tail overlaps with younger instructions exactly as in a
// full run (one in-flight machine's worth).
func detailPad(cfg pipeline.Config) uint64 {
	return uint64(cfg.ROBSize + cfg.FetchQueue + 16)
}

// windowStart places window idx's detailed start: one window per
// Interval, offset inside the interval by a low-discrepancy
// (golden-ratio) sequence. The synthetic workloads are strongly
// periodic, and a fixed stride aliases with their loop periods —
// systematically over- or under-sampling one phase of the loop body;
// the deterministic jitter de-aliases without sacrificing
// reproducibility (resume and sharding stay bit-identical). Window 0
// starts at 0: its cold-boot run doubles as the pilot that reproduces
// the full machine's startup transient.
func windowStart(idx int, sp Sampling) uint64 {
	if idx == 0 {
		return 0
	}
	slack := sp.Interval - sp.Warmup - sp.Window
	if slack == 0 {
		return uint64(idx) * sp.Interval
	}
	const phi = 0.6180339887498949
	f := float64(idx) * phi
	f -= math.Floor(f)
	return uint64(idx)*sp.Interval + uint64(f*float64(slack))
}
