// Package sample is the checkpointed interval-sampling engine: it makes
// long workloads tractable by simulating only periodic measurement
// windows in full detail and fast-forwarding functionally in between.
//
// A sampled run interleaves three modes over the dynamic instruction
// stream:
//
//   - Functional fast-forward: the architectural emulator executes every
//     instruction, and a warmer folds each one into the long-lived
//     microarchitectural state (caches, TLBs, branch predictors, BTB,
//     return-address stack). This costs tens of nanoseconds per
//     instruction instead of the detailed pipeline's microsecond.
//
//   - Detailed warmup: at each window boundary the detailed pipeline
//     boots from the emulator's architectural state plus a clone of the
//     warm state, and runs Warmup instructions with statistics gated off.
//     This warms the state functional execution cannot: the integration
//     table and LISP (whose entries name physical registers that exist
//     only inside one pipeline), the register file, and in-flight
//     structure occupancy.
//
//   - Measurement: the next Window instructions run in full detail and
//     their pipeline.Stats delta is recorded.
//
// Per-window measurements aggregate into an Estimate with approximate
// 95% confidence half-widths on IPC and integration rate; the
// sampled-vs-full accuracy bounds the engine is tuned to are
// IPCErrBound and RateErrBound, enforced by this package's tests.
//
// When Config.CheckpointDir is set, the run serializes one Checkpoint
// (emulator + warm state, including the feedback chained so far) per
// window boundary; Resume re-runs every window from disk — bit-identical
// to the direct run — so a run can be restarted after interruption or
// its windows sharded across processes and machines. Each checkpoint is
// self-contained, so Resume fans windows out across a bounded worker
// pool (Config.Parallel).
package sample

import (
	"fmt"
	"math"

	"rix/internal/core"
	"rix/internal/emu"
	"rix/internal/pipeline"
	"rix/internal/prog"
	"rix/internal/sim"
)

// Documented accuracy bounds: on the benchmark workloads under every
// integration preset and suppression mode, a default-knob sampled run's
// headline metrics stay within these bounds of the full-detail run. The
// property test in this package enforces them; the worst observed
// errors are ~7.3% relative IPC (a phase-composition artifact on the
// call-rich workloads' short traces — the sampled windows' predictor
// and cache state match the full machine's bit-for-bit) and ~0.7
// points of integration rate.
const (
	// IPCErrBound bounds |IPC_sampled - IPC_full| / IPC_full.
	IPCErrBound = 0.09
	// RateErrBound bounds |rate_sampled - rate_full| (absolute, where
	// rate is the integration rate in [0,1]).
	RateErrBound = 0.015
)

// DefaultMaxInstrs bounds the functional fast-forward, mirroring
// workload.MaxInstrs: every benchmark must halt well within it.
const DefaultMaxInstrs = 1 << 24

// Config configures a sampled run.
type Config struct {
	// Sampling is the window layout; the zero value selects
	// sim.DefaultSampling().
	Sampling sim.Sampling

	// CheckpointDir, when non-empty, persists one Checkpoint per window
	// boundary (atomically, named <program>-w<index>.ckpt) as the run
	// proceeds.
	CheckpointDir string

	// Parallel bounds concurrently re-simulated windows in Resume
	// (default 1). Run executes windows sequentially regardless: the
	// feedback chain is order-dependent, and cells already fan out
	// across the runner pool.
	Parallel int

	// MaxInstrs bounds functional execution (default DefaultMaxInstrs).
	MaxInstrs uint64
}

func (c Config) normalized() (Config, error) {
	if c.Sampling == (sim.Sampling{}) {
		c.Sampling = sim.DefaultSampling()
	}
	if err := c.Sampling.Validate(); err != nil {
		return c, err
	}
	if c.Parallel < 1 {
		c.Parallel = 1
	}
	if c.MaxInstrs == 0 {
		c.MaxInstrs = DefaultMaxInstrs
	}
	return c, nil
}

// Run samples one (program, machine configuration) cell: fast-forward
// with functional warming, detailed windows every Sampling.Interval
// instructions, and aggregation into an Estimate. dynLen is the known
// dynamic instruction count (workload.Built.DynLen); pass 0 if unknown —
// coverage and scaled estimates then use the observed count.
func Run(p *prog.Program, dynLen int, cfg pipeline.Config, sc Config) (*Estimate, error) {
	sc, err := sc.normalized()
	if err != nil {
		return nil, err
	}
	sp := sc.Sampling

	e := emu.New(p)
	w := newWarmer(cfg)
	var windows []WindowStat

	// Windows run sequentially in program order so each one's discovered
	// DIVA feedback — the LISP's never-aging suppressions — chains into
	// the warmer and thus into every later window's boot (and
	// checkpoint). The real machine trains that table on a handful of
	// events and keeps it for the whole run; cold-LISP windows
	// systematically over-integrated. Parallelism lives across cells in
	// the runner pool, and across processes by sharding the
	// self-contained checkpoints (Resume).
	n := sp.Warmup + sp.Window + detailPad(cfg)
	for idx := 0; !e.Halted; idx++ {
		// Fast-forward (warming) to this window's detailed start. The
		// clamp covers jittered starts that would land inside the
		// previous window's recorded span.
		target := windowStart(idx, sp)
		if target < e.Count {
			target = e.Count
		}
		for e.Count < target && !e.Halted {
			if e.Count >= sc.MaxInstrs {
				return nil, fmt.Errorf("sample: %s did not halt within %d instructions", p.Name, sc.MaxInstrs)
			}
			pc := e.PC
			rec, err := e.Step()
			if err != nil {
				return nil, fmt.Errorf("sample: fast-forward failed: %w", err)
			}
			w.observe(p.Code[rec.CodeIdx], pc, rec, e.PC)
		}
		if e.Halted {
			break
		}

		if sc.CheckpointDir != "" {
			ck := &Checkpoint{
				Format:   CheckpointFormat,
				Program:  p.Name,
				Index:    idx,
				Start:    e.Count,
				Sampling: sp,
				Emu:      e.State(),
				Warm:     w.snapshot(),
			}
			if _, err := SaveCheckpoint(sc.CheckpointDir, ck); err != nil {
				return nil, err
			}
		}

		// Boot state by direct clones, then record the window's golden
		// records while the same pass keeps warming — the span is
		// emulated once, and the window replays it from memory.
		boot := w.cloneBoot(cfg, e)
		start := e.Count
		recs := make([]emu.TraceRec, 0, n)
		for uint64(len(recs)) < n && !e.Halted {
			pc := e.PC
			rec, err := e.Step()
			if err != nil {
				return nil, fmt.Errorf("sample: fast-forward failed: %w", err)
			}
			recs = append(recs, rec)
			w.observe(p.Code[rec.CodeIdx], pc, rec, e.PC)
		}

		pl := pipeline.NewFrom(cfg, p, emu.FromSlice(recs), boot)
		stats, err := pl.RunWindow(sp.Warmup, sp.Window)
		if err != nil {
			return nil, fmt.Errorf("sample: window %d of %s: %w", idx, p.Name, err)
		}
		windows = append(windows, WindowStat{
			Index:        idx,
			Start:        start,
			MeasuredFrom: start + sp.Warmup,
			Stats:        *stats,
		})
		fb := feedback{LISP: pl.Integrator().LISP.State()}
		if err := w.adoptFeedback(fb); err != nil {
			return nil, err
		}
	}

	total := uint64(dynLen)
	if total == 0 {
		total = e.Count
	}
	return aggregate(sp, detailPad(cfg), windows, total), nil
}

// feedback is the DIVA-feedback state a window discovers that is worth
// chaining from window to window (see warmer.adoptFeedback for why the
// CHT is excluded).
type feedback struct {
	LISP core.LISPState
}

// runDetail boots the detailed pipeline from a window's checkpoint state
// and runs warmup + measurement, returning the measured Stats delta and
// the window's final feedback state. The emulator budget only needs to
// cover the window: emu.Limit ends the stream after warmup+window+pad
// records regardless.
func runDetail(p *prog.Program, cfg pipeline.Config, st emu.State, ws WarmSnapshot,
	sp sim.Sampling) (*pipeline.Stats, feedback, error) {

	boot, err := buildBoot(cfg, p, st, ws)
	if err != nil {
		return nil, feedback{}, err
	}
	n := sp.Warmup + sp.Window + detailPad(cfg)
	src, err := emu.ResumeStream(p, st, st.Count+n+1)
	if err != nil {
		return nil, feedback{}, err
	}
	pl := pipeline.NewFrom(cfg, p, emu.Limit(src, n), boot)
	stats, err := pl.RunWindow(sp.Warmup, sp.Window)
	if err != nil {
		return nil, feedback{}, err
	}
	return stats, feedback{LISP: pl.Integrator().LISP.State()}, nil
}

// detailPad is the drain pad fed beyond each measurement boundary so
// the window's tail overlaps with younger instructions exactly as in a
// full run (one in-flight machine's worth).
func detailPad(cfg pipeline.Config) uint64 {
	return uint64(cfg.ROBSize + cfg.FetchQueue + 16)
}

// windowStart places window idx's detailed start: one window per
// Interval, offset inside the interval by a low-discrepancy
// (golden-ratio) sequence. The synthetic workloads are strongly
// periodic, and a fixed stride aliases with their loop periods —
// systematically over- or under-sampling one phase of the loop body;
// the deterministic jitter de-aliases without sacrificing
// reproducibility (resume and sharding stay bit-identical). Window 0
// starts at 0: its cold-boot run doubles as the pilot that reproduces
// the full machine's startup transient.
func windowStart(idx int, sp sim.Sampling) uint64 {
	if idx == 0 {
		return 0
	}
	slack := sp.Interval - sp.Warmup - sp.Window
	if slack == 0 {
		return uint64(idx) * sp.Interval
	}
	const phi = 0.6180339887498949
	f := float64(idx) * phi
	f -= math.Floor(f)
	return uint64(idx)*sp.Interval + uint64(f*float64(slack))
}
