package sample

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// writeEntry drops a synthetic cache entry with a given size and age.
func writeEntry(t *testing.T, dir, name string, size int, age time.Duration) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, make([]byte, size), 0o644); err != nil {
		t.Fatal(err)
	}
	mod := time.Now().Add(-age)
	if err := os.Chtimes(path, mod, mod); err != nil {
		t.Fatal(err)
	}
	return path
}

func names(t *testing.T, dir string) map[string]bool {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]bool, len(ents))
	for _, e := range ents {
		out[e.Name()] = true
	}
	return out
}

// TestSweepEvictionOrder pins the LRU sweep: size pressure evicts the
// least-recently-used .warmset entries first, non-cache files are never
// touched, and the just-written entry survives any bound.
func TestSweepEvictionOrder(t *testing.T) {
	dir := t.TempDir()
	writeEntry(t, dir, "old.warmset", 100, 3*time.Hour)
	writeEntry(t, dir, "mid.warmset", 100, 2*time.Hour)
	writeEntry(t, dir, "hot.warmset", 100, 1*time.Hour)
	writeEntry(t, dir, "bystander.ckpt", 100, 5*time.Hour)
	keep := writeEntry(t, dir, "fresh.warmset", 100, 0)

	// 250 bytes of budget for 400 bytes of entries: the two oldest
	// non-kept entries must go, in age order, and nothing else.
	sweepWarmCache(dir, 250, 0, keep)
	got := names(t, dir)
	for n, want := range map[string]bool{
		"old.warmset": false, "mid.warmset": false,
		"hot.warmset": true, "fresh.warmset": true, "bystander.ckpt": true,
	} {
		if got[n] != want {
			t.Errorf("after size sweep, %s present=%v, want %v", n, got[n], want)
		}
	}

	// A bound smaller than one entry still never evicts the entry the
	// run just wrote.
	sweepWarmCache(dir, 1, 0, keep)
	got = names(t, dir)
	if !got["fresh.warmset"] {
		t.Error("size sweep evicted the just-written entry")
	}
	if got["hot.warmset"] {
		t.Error("size sweep under 1-byte bound kept a non-protected entry")
	}
}

// TestSweepAgeBound: entries idle past the age bound are evicted
// regardless of size pressure, and a touch (the cache-hit path)
// refreshes an entry's standing.
func TestSweepAgeBound(t *testing.T) {
	dir := t.TempDir()
	writeEntry(t, dir, "stale.warmset", 10, 3*time.Hour)
	touched := writeEntry(t, dir, "revived.warmset", 10, 3*time.Hour)
	writeEntry(t, dir, "young.warmset", 10, 10*time.Minute)

	touchWarmSet(touched) // a cache hit re-stamps recency
	sweepWarmCache(dir, 0, time.Hour, "")

	got := names(t, dir)
	if got["stale.warmset"] {
		t.Error("age sweep kept a stale entry")
	}
	if !got["revived.warmset"] {
		t.Error("age sweep evicted an entry a cache hit had just touched")
	}
	if !got["young.warmset"] {
		t.Error("age sweep evicted a young entry")
	}
}
