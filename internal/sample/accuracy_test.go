package sample_test

import (
	"context"
	"reflect"
	"testing"
	"time"

	"rix/internal/pipeline"
	"rix/internal/sample"
	"rix/internal/sim"
	"rix/internal/workload"
)

// benchSubset mirrors the repository's benchmark subset: one workload
// per class (call-poor, call-rich, mixed, memory-bound).
var benchSubset = []string{"gzip", "crafty", "vortex", "mcf"}

func buildBench(t testing.TB, name string) workload.Built {
	t.Helper()
	b, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("workload %q not registered", name)
	}
	bw, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return bw
}

func fullDetail(t *testing.T, bw workload.Built, o sim.Options) *pipeline.Stats {
	t.Helper()
	cfg, err := o.Config()
	if err != nil {
		t.Fatalf("%s [%s] config: %v", bw.Prog.Name, o.Label(), err)
	}
	full, err := pipeline.New(cfg, bw.Prog, bw.Source()).Run()
	if err != nil {
		t.Fatalf("%s [%s] full: %v", bw.Prog.Name, o.Label(), err)
	}
	return full
}

// TestSampledAccuracyAcrossPresets is the sampled-vs-full property test:
// on the benchmark workloads, under the no-integration baseline and
// every integration preset crossed with both suppression modes, the
// default-knob sampled estimates must stay within the documented bounds
// (IPCErrBound relative on IPC, RateErrBound absolute on integration
// rate) of the full-detail run.
func TestSampledAccuracyAcrossPresets(t *testing.T) {
	if testing.Short() {
		t.Skip("full-detail reference runs (~1 minute)")
	}
	ctx := context.Background()
	opts := []sim.Options{{Integration: sim.IntNone}}
	for _, p := range sim.IntegrationPresets() {
		opts = append(opts,
			sim.Options{Integration: p, Suppression: sim.SuppressLISP},
			sim.Options{Integration: p, Suppression: sim.SuppressOracle})
	}
	for _, name := range benchSubset {
		bw := buildBench(t, name)
		for _, o := range opts {
			cfg, err := o.Config()
			if err != nil {
				t.Fatal(err)
			}
			full := fullDetail(t, bw, o)
			est, err := sample.Run(ctx, bw.Prog, bw.DynLen, cfg, sample.Config{})
			if err != nil {
				t.Fatalf("%s [%s] sampled: %v", name, o.Label(), err)
			}
			ipcErr := est.IPC()/full.IPC() - 1
			if ipcErr < 0 {
				ipcErr = -ipcErr
			}
			if ipcErr > sample.IPCErrBound {
				t.Errorf("%s [%s]: IPC %.3f vs full %.3f: relative error %.1f%% exceeds %.0f%%",
					name, o.Label(), est.IPC(), full.IPC(), 100*ipcErr, 100*sample.IPCErrBound)
			}
			rateErr := est.IntegrationRate() - full.IntegrationRate()
			if rateErr < 0 {
				rateErr = -rateErr
			}
			if rateErr > sample.RateErrBound {
				t.Errorf("%s [%s]: rate %.4f vs full %.4f: absolute error %.2fpp exceeds %.1fpp",
					name, o.Label(), est.IntegrationRate(), full.IntegrationRate(),
					100*rateErr, 100*sample.RateErrBound)
			}
		}
	}
}

// TestCheckpointResumeBitEqual is the checkpoint round-trip guarantee: a
// sampled run that wrote checkpoints, resumed from disk (gob decode,
// state reconstruction, window re-execution), reproduces every window's
// Stats and the aggregate byte-for-byte.
func TestCheckpointResumeBitEqual(t *testing.T) {
	ctx := context.Background()
	bw := buildBench(t, "crafty")
	o := sim.Options{Integration: sim.IntReverse}
	cfg, err := o.Config()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	sc := sample.Config{CheckpointDir: dir}

	direct, err := sample.Run(ctx, bw.Prog, bw.DynLen, cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Windows) < 4 {
		t.Fatalf("only %d windows; want a multi-window run", len(direct.Windows))
	}
	paths, err := sample.Checkpoints(dir, bw.Prog.Name)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != len(direct.Windows) {
		t.Fatalf("%d checkpoints for %d windows", len(paths), len(direct.Windows))
	}

	resumed, err := sample.Resume(ctx, bw.Prog, bw.DynLen, cfg, sample.Config{CheckpointDir: dir, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed.Windows) != len(direct.Windows) {
		t.Fatalf("resume produced %d windows, direct %d", len(resumed.Windows), len(direct.Windows))
	}
	for i := range direct.Windows {
		if !reflect.DeepEqual(direct.Windows[i], resumed.Windows[i]) {
			t.Errorf("window %d differs:\ndirect:  %+v\nresumed: %+v",
				i, direct.Windows[i], resumed.Windows[i])
		}
	}
	if !reflect.DeepEqual(direct.Agg, resumed.Agg) {
		t.Errorf("aggregate Stats differ:\ndirect:  %+v\nresumed: %+v", direct.Agg, resumed.Agg)
	}
}

// TestRunCheckpointShard exercises the sharding primitive: one window
// run in isolation from its checkpoint file matches the direct run's
// window exactly.
func TestRunCheckpointShard(t *testing.T) {
	ctx := context.Background()
	bw := buildBench(t, "gzip")
	o := sim.Options{Integration: sim.IntReverse}
	cfg, err := o.Config()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	direct, err := sample.Run(ctx, bw.Prog, bw.DynLen, cfg, sample.Config{CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	paths, err := sample.Checkpoints(dir, bw.Prog.Name)
	if err != nil {
		t.Fatal(err)
	}
	pick := len(paths) / 2
	ck, err := sample.LoadCheckpoint(paths[pick])
	if err != nil {
		t.Fatal(err)
	}
	ws, err := sample.RunCheckpoint(ctx, bw.Prog, ck, cfg, direct.Sampling)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*ws, direct.Windows[pick]) {
		t.Errorf("sharded window %d differs:\nshard:  %+v\ndirect: %+v", pick, *ws, direct.Windows[pick])
	}

	// Mismatched window layout must be rejected, not silently mis-run.
	bad := direct.Sampling
	bad.Window++
	if _, err := sample.RunCheckpoint(ctx, bw.Prog, ck, cfg, bad); err == nil {
		t.Error("RunCheckpoint accepted a mismatched window layout")
	}
}

// TestContinueCancelledRunBitEqual is the resume-after-cancel
// acceptance criterion: a sampled run cancelled mid-flight (after its
// second window) flushes its checkpoints; Continue then finishes the
// run, and the combined windows and aggregate must equal an
// uninterrupted run's bit-for-bit.
func TestContinueCancelledRunBitEqual(t *testing.T) {
	bg := context.Background()
	bw := buildBench(t, "gzip")
	o := sim.Options{Integration: sim.IntReverse}
	cfg, err := o.Config()
	if err != nil {
		t.Fatal(err)
	}

	direct, err := sample.Run(bg, bw.Prog, bw.DynLen, cfg, sample.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Windows) < 4 {
		t.Fatalf("only %d windows; want a multi-window run to interrupt", len(direct.Windows))
	}

	// Cancel deterministically after the second completed window; the
	// run notices at its next batched poll and flushes a partial
	// checkpoint.
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(bg)
	defer cancel()
	sc := sample.Config{CheckpointDir: dir}
	sc.Hooks.WindowDone = func(w sample.WindowStat) {
		if w.Index == 1 {
			cancel()
		}
	}
	if _, err := sample.Run(ctx, bw.Prog, bw.DynLen, cfg, sc); err != context.Canceled {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}

	resumed, err := sample.Continue(bg, bw.Prog, bw.DynLen, cfg, sample.Config{CheckpointDir: dir, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed.Windows) != len(direct.Windows) {
		t.Fatalf("continue produced %d windows, uninterrupted %d", len(resumed.Windows), len(direct.Windows))
	}
	for i := range direct.Windows {
		if !reflect.DeepEqual(direct.Windows[i], resumed.Windows[i]) {
			t.Errorf("window %d differs:\nuninterrupted: %+v\ncontinued:     %+v",
				i, direct.Windows[i], resumed.Windows[i])
		}
	}
	if !reflect.DeepEqual(direct.Agg, resumed.Agg) {
		t.Errorf("aggregate Stats differ:\nuninterrupted: %+v\ncontinued:     %+v", direct.Agg, resumed.Agg)
	}
}

// TestRunCancelsPromptly bounds the cancellation latency of a sampled
// run: a context cancelled before the run starts must surface
// immediately, and one cancelled mid-run must surface well before the
// run would have finished.
func TestRunCancelsPromptly(t *testing.T) {
	bw := buildBench(t, "gzip")
	cfg, err := sim.Options{Integration: sim.IntReverse}.Config()
	if err != nil {
		t.Fatal(err)
	}

	pre, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := sample.Run(pre, bw.Prog, bw.DynLen, cfg, sample.Config{}); err != context.Canceled {
		t.Fatalf("pre-cancelled run returned %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("pre-cancelled run took %v to return", d)
	}
}

// TestSampledFig4Speedup enforces the sampling acceptance criterion on
// the Figure 4 configuration matrix over the benchmark subset: at least
// 10x less detailed-simulation work than full detail (the
// scale-invariant guarantee — the fraction is independent of trace
// length), measurably faster wall-clock even on these short synthetic
// traces, and headline metrics within the documented bounds.
func TestSampledFig4Speedup(t *testing.T) {
	if testing.Short() {
		t.Skip("full-detail fig4 reference runs (~1 minute)")
	}
	ctx := context.Background()
	opts := []sim.Options{{Integration: sim.IntNone}}
	for _, p := range sim.IntegrationPresets() {
		opts = append(opts,
			sim.Options{Integration: p, Suppression: sim.SuppressLISP},
			sim.Options{Integration: p, Suppression: sim.SuppressOracle})
	}

	var fullTime, sampledTime time.Duration
	var totalInstrs, detailedInstrs uint64
	for _, name := range benchSubset {
		bw := buildBench(t, name)
		for _, o := range opts {
			cfg, err := o.Config()
			if err != nil {
				t.Fatal(err)
			}
			t0 := time.Now()
			full := fullDetail(t, bw, o)
			fullTime += time.Since(t0)

			t1 := time.Now()
			est, err := sample.Run(ctx, bw.Prog, bw.DynLen, cfg, sample.Config{})
			if err != nil {
				t.Fatal(err)
			}
			sampledTime += time.Since(t1)

			totalInstrs += est.TotalInstrs
			detailedInstrs += est.DetailedInstrs
			if ipcErr := abs(est.IPC()/full.IPC() - 1); ipcErr > sample.IPCErrBound {
				t.Errorf("%s [%s]: IPC error %.1f%% exceeds bound", name, o.Label(), 100*ipcErr)
			}
			if rateErr := abs(est.IntegrationRate() - full.IntegrationRate()); rateErr > sample.RateErrBound {
				t.Errorf("%s [%s]: rate error %.2fpp exceeds bound", name, o.Label(), 100*rateErr)
			}
		}
	}

	workRatio := float64(totalInstrs) / float64(detailedInstrs)
	t.Logf("fig4 matrix: detailed work ratio %.1fx, wall-clock %.1fx (full %v, sampled %v)",
		workRatio, fullTime.Seconds()/sampledTime.Seconds(), fullTime, sampledTime)
	if workRatio < 10 {
		t.Errorf("detailed-work reduction %.1fx, want >= 10x", workRatio)
	}
	// Wall-clock on the short synthetic traces carries per-window
	// overhead that amortizes on longer workloads; require a clear win
	// with CI-safe margin rather than the asymptotic ratio.
	if sampledTime*2 >= fullTime {
		t.Errorf("sampled wall-clock %v not at least 2x faster than full %v", sampledTime, fullTime)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
