package sample

import (
	"sync"
	"sync/atomic"

	"rix/internal/bpred"
	"rix/internal/core"
	"rix/internal/emu"
	"rix/internal/memsys"
	"rix/internal/pipeline"
	"rix/internal/prog"
)

// This file is the work-stealing window scheduler: a process-wide pool
// of worker slots that every sampled cell draws from. Cells submit
// window jobs into one shared FIFO; each worker owns a slot whose boot
// structures (predictor, BTB, RAS, CHT, hierarchy, LISP, pipeline
// scratch) are recycled across every window the slot ever executes —
// regardless of which cell the window belongs to. Stealing is implicit
// in the shared queue: a cell that has settled its speculative waves
// stops submitting, so its share of the workers immediately drains the
// windows other cells still have queued. See doc/ARCHITECTURE.md for
// the slot lifecycle diagram.

// Scheduler is a shared pool of window worker slots. One scheduler
// serves any number of concurrent sampled runs (Config.Scheduler): all
// of them dispatch speculative detail windows into the same queue, and
// the pool's slots execute them in arrival order. A run that settles
// early implicitly returns its slots — the queue simply stops holding
// its jobs — and runs still dispatching pick them up; Hooks.SlotStolen
// fires on each such cross-cell handoff.
//
// Each worker slot carries pooled boot structures that are restored
// in place (SetState into existing arrays) for every window it runs,
// so steady-state window boot allocates only the per-window memory
// image instead of a full set of predictor and cache clones.
//
// The zero Scheduler is not usable; construct with NewScheduler and
// release with Close after every run sharing it has returned.
type Scheduler struct {
	queue chan *schedTask
	wg    sync.WaitGroup
	size  int
	close sync.Once
}

// schedTask is one speculatively dispatched detail window in the shared
// queue.
type schedTask struct {
	cell      *cellTag    // owning run, for steal detection
	cancelled atomic.Bool // set when the owning wave misspeculates
	run       func(*slot) *winOut
	out       chan *winOut // buffered 1: workers never block on delivery
}

// cellTag identifies one sampled run for the lifetime of its window
// phase. Pointer identity is the comparison, so concurrent runs —
// even of the same program under the same configuration — are distinct
// cells to the scheduler.
type cellTag struct {
	hooks *Hooks
}

// slot is one worker's private execution state: the recycled pipeline
// scratch plus the pooled boot structures, reused across every window
// (and every cell) the slot serves.
type slot struct {
	id       int
	lastCell *cellTag
	scratch  *pipeline.Scratch
	boot     slotBoot
}

// bootGeom is the machine geometry a pooled boot set was built for.
// A window whose configuration differs in any of these rebuilds the
// slot's structures from scratch; within one cell — and across cells of
// the same machine — the pooled set is restored in place.
type bootGeom struct {
	Pred   bpred.Config
	Mem    memsys.Config
	LISP   core.LISPConfig
	Enable bool
}

// slotBoot pools one full set of window-boot structures.
type slotBoot struct {
	ok   bool
	geom bootGeom
	pred *bpred.Predictor
	btb  *bpred.BTB
	ras  *bpred.RAS
	cht  *bpred.CHT
	hier *memsys.Hierarchy
	lisp *core.LISP
}

// NewScheduler starts a pool of `slots` worker slots (minimum 1).
func NewScheduler(slots int) *Scheduler {
	if slots < 1 {
		slots = 1
	}
	s := &Scheduler{
		// Submission blocks only under heavy cross-cell pressure; the
		// buffer keeps dispatch bursts (a full speculative wave per
		// cell) off the coordinators' critical path.
		queue: make(chan *schedTask, slots*4),
		size:  slots,
	}
	s.wg.Add(slots)
	for i := 0; i < slots; i++ {
		go s.worker(i)
	}
	return s
}

// Size is the number of worker slots — the bound on concurrently
// executing detail windows across every run sharing the pool.
func (s *Scheduler) Size() int { return s.size }

// Close stops the pool after the in-flight and queued jobs drain. Call
// only after every run sharing the scheduler has returned; submitting
// after Close panics. Close is idempotent.
func (s *Scheduler) Close() {
	s.close.Do(func() { close(s.queue) })
	s.wg.Wait()
}

// submit enqueues one window job. Blocks only when the queue is full
// (every slot busy and the backlog at capacity) — safe, because workers
// never block and therefore always drain the queue.
func (s *Scheduler) submit(t *schedTask) { s.queue <- t }

// worker owns one slot and executes queued window jobs until Close.
func (s *Scheduler) worker(id int) {
	defer s.wg.Done()
	sl := &slot{id: id}
	for t := range s.queue {
		if t.cancelled.Load() {
			// Misspeculated before starting: skip the work entirely.
			// The owning coordinator has already stopped listening, so
			// no result is owed.
			continue
		}
		if sl.lastCell != nil && sl.lastCell != t.cell && t.cell.hooks.SlotStolen != nil {
			// This slot last served a different cell: the submitting
			// cell just picked up a slot another cell released.
			t.cell.hooks.SlotStolen(id)
		}
		sl.lastCell = t.cell
		t.out <- t.run(sl)
	}
}

// bootFrom builds a window's pipeline boot state on the slot's pooled
// structures: fresh allocations only when the slot has never served
// this machine geometry, in-place SetState restores afterwards. The
// result is bit-equivalent to buildBoot's fresh construction — SetState
// overwrites every behavioral field, and the transient timing state and
// diagnostic tallies are explicitly reset, exactly as the sequential
// engine's bootPool.CopyFrom guarantees.
func (sl *slot) bootFrom(cfg pipeline.Config, p *prog.Program, st emu.State, ws WarmSnapshot) (*pipeline.BootState, error) {
	g := bootGeom{Pred: cfg.Pred, Mem: cfg.Mem, LISP: cfg.LISP, Enable: cfg.Policy.Enable}
	b := &sl.boot
	if !b.ok || b.geom != g {
		pc := cfg.Pred.WithDefaults()
		*b = slotBoot{
			ok:   true,
			geom: g,
			pred: bpred.NewPredictor(cfg.Pred),
			btb:  bpred.NewBTB(pc.BTBEntries),
			ras:  bpred.NewRAS(pc.RASEntries),
			cht:  bpred.NewCHT(pc.CHTEntries),
			hier: memsys.New(cfg.Mem),
		}
	}
	if err := b.pred.SetState(ws.Pred); err != nil {
		return nil, err
	}
	b.pred.Lookups = 0
	if err := b.btb.SetState(ws.BTB); err != nil {
		return nil, err
	}
	b.btb.Lookups, b.btb.Hits = 0, 0
	if err := b.ras.SetState(ws.RAS); err != nil {
		return nil, err
	}
	if err := b.cht.SetState(ws.CHT); err != nil {
		return nil, err
	}
	b.cht.Lookups, b.cht.Hits, b.cht.Trained = 0, 0, 0
	if err := b.hier.SetWarmState(ws.Mem); err != nil {
		return nil, err
	}
	b.hier.ResetTransient()
	var lisp *core.LISP
	if cfg.Policy.Enable && len(ws.LISP.Entries) > 0 {
		if b.lisp == nil {
			b.lisp = core.NewLISP(cfg.LISP)
		}
		if err := b.lisp.SetState(ws.LISP); err != nil {
			return nil, err
		}
		b.lisp.Lookups, b.lisp.Suppressed, b.lisp.TrainInsert = 0, 0, 0
		lisp = b.lisp
	}
	mem, err := emu.NewMemoryFromState(st.Mem)
	if err != nil {
		return nil, err
	}
	return &pipeline.BootState{
		PC:      st.PC,
		Regs:    st.Regs,
		Mem:     mem,
		Pred:    b.pred,
		BTB:     b.btb,
		RAS:     b.ras,
		CHT:     b.cht,
		Hier:    b.hier,
		LISP:    lisp,
		Scratch: sl.scratch,
	}, nil
}
