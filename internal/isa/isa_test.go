package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegByName(t *testing.T) {
	cases := []struct {
		name string
		want Reg
	}{
		{"sp", 30}, {"zero", 31}, {"ra", 26}, {"v0", 0},
		{"t0", 1}, {"t7", 8}, {"s0", 9}, {"s5", 14}, {"fp", 15},
		{"a0", 16}, {"a5", 21}, {"gp", 29}, {"at", 28}, {"pv", 27},
		{"r0", 0}, {"r31", 31}, {"$17", 17},
	}
	for _, c := range cases {
		got, ok := RegByName(c.name)
		if !ok || got != c.want {
			t.Errorf("RegByName(%q) = %v, %v; want %v", c.name, got, ok, c.want)
		}
	}
	for _, bad := range []string{"", "r32", "x3", "$-1", "spx", "r"} {
		if _, ok := RegByName(bad); ok {
			t.Errorf("RegByName(%q) unexpectedly resolved", bad)
		}
	}
}

func TestRegString(t *testing.T) {
	if RegSP.String() != "sp" || RegZero.String() != "zero" || RegRA.String() != "ra" {
		t.Errorf("special register names wrong: %s %s %s", RegSP, RegZero, RegRA)
	}
	if Reg(5).String() != "t4" {
		t.Errorf("Reg(5) = %s", Reg(5))
	}
	if Reg(33).String() != "r33" {
		t.Errorf("out-of-range Reg(33) = %s", Reg(33))
	}
	// Every canonical name must resolve back to its own number.
	for r := Reg(0); r < NumLogical; r++ {
		got, ok := RegByName(r.String())
		if !ok || got != r {
			t.Errorf("RegByName(%q) = %v, %v; want %v", r.String(), got, ok, r)
		}
	}
}

func TestOpByNameRoundTrip(t *testing.T) {
	for op := Opcode(0); op < numOpcodes; op++ {
		got, ok := OpByName(op.String())
		if !ok || got != op {
			t.Errorf("OpByName(%q) = %v, %v; want %v", op.String(), got, ok, op)
		}
	}
	if _, ok := OpByName("frobnicate"); ok {
		t.Error("OpByName accepted unknown mnemonic")
	}
}

func TestOpClassesConsistent(t *testing.T) {
	for op := Opcode(0); op < numOpcodes; op++ {
		switch op.ClassOf() {
		case ClassLoad:
			if !op.HasDest() || !op.ReadsRa() || !op.HasImm() {
				t.Errorf("%v: load must have rd, ra, imm", op)
			}
		case ClassStore:
			if op.HasDest() || !op.ReadsRa() || !op.ReadsRb() {
				t.Errorf("%v: store must read ra+rb, no dest", op)
			}
		case ClassBranch:
			if op.HasDest() || !op.ReadsRa() {
				t.Errorf("%v: branch reads ra only", op)
			}
		}
		if op.Latency() < 1 {
			t.Errorf("%v: latency %d < 1", op, op.Latency())
		}
	}
}

func TestIntegrableSet(t *testing.T) {
	// Paper §2.1: system calls, stores and direct jumps are not integrated.
	mustNot := []Opcode{SYSCALL, STQ, STL, BR, BSR, JSR, JMP, RET, NOP}
	for _, op := range mustNot {
		if op.Integrable() {
			t.Errorf("%v must not be integrable", op)
		}
	}
	must := []Opcode{ADDQ, ADDQI, LDA, LDQ, LDL, BEQ, BNE, FADD, MULQ, CVTQT}
	for _, op := range must {
		if !op.Integrable() {
			t.Errorf("%v must be integrable", op)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(opRaw, rd, ra, rb uint8, imm int32) bool {
		op := Opcode(int(opRaw) % NumOpcodes)
		in := Instr{
			Op:  op,
			Rd:  Reg(rd % NumLogical),
			Ra:  Reg(ra % NumLogical),
			Rb:  Reg(rb % NumLogical),
			Imm: int64(imm),
		}
		out, err := Decode(Encode(in))
		return err == nil && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsBadWords(t *testing.T) {
	bad := []uint64{
		uint64(numOpcodes) << 56,          // unknown opcode
		uint64(ADDQ)<<56 | uint64(40)<<48, // rd out of range
		uint64(ADDQ)<<56 | uint64(40)<<40, // ra out of range
		uint64(ADDQ)<<56 | uint64(99)<<32, // rb out of range
	}
	for _, w := range bad {
		if _, err := Decode(w); err == nil {
			t.Errorf("Decode(%#x) accepted bad word", w)
		}
	}
}

func TestMustDecodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustDecode did not panic on bad word")
		}
	}()
	MustDecode(uint64(numOpcodes) << 56)
}

func TestTarget(t *testing.T) {
	in := Instr{Op: BEQ, Ra: 3, Imm: 16}
	if got := in.Target(0x1000); got != 0x1014 {
		t.Errorf("Target = %#x, want 0x1014", got)
	}
	in.Imm = -8
	if got := in.Target(0x1000); got != 0xffc {
		t.Errorf("Target = %#x, want 0xffc", got)
	}
}

func TestUsesDefines(t *testing.T) {
	add := Instr{Op: ADDQ, Rd: 1, Ra: 2, Rb: 3}
	if !add.Uses(2) || !add.Uses(3) || add.Uses(1) || add.Uses(4) {
		t.Error("ADDQ Uses wrong")
	}
	if !add.Defines(1) || add.Defines(2) {
		t.Error("ADDQ Defines wrong")
	}
	// Zero register is never a dependence or definition.
	z := Instr{Op: ADDQ, Rd: RegZero, Ra: RegZero, Rb: RegZero}
	if z.Uses(RegZero) || z.Defines(RegZero) {
		t.Error("zero register must not be used/defined")
	}
	cmov := Instr{Op: CMOVEQ, Rd: 5, Ra: 1, Rb: 2}
	if !cmov.Uses(5) {
		t.Error("CMOVEQ must read its destination")
	}
	st := Instr{Op: STQ, Ra: RegSP, Rb: 9, Imm: 8}
	if !st.Uses(RegSP) || !st.Uses(9) || st.Defines(9) {
		t.Error("STQ deps wrong")
	}
}

func TestEvalOpIntegers(t *testing.T) {
	cases := []struct {
		op   Opcode
		a, b uint64
		imm  int64
		want uint64
	}{
		{ADDQ, 5, 7, 0, 12},
		{SUBQ, 5, 7, 0, ^uint64(1)},
		{MULQ, 3, 7, 0, 21},
		{AND, 0xff, 0x0f, 0, 0x0f},
		{BIS, 0xf0, 0x0f, 0, 0xff},
		{XOR, 0xff, 0x0f, 0, 0xf0},
		{BIC, 0xff, 0x0f, 0, 0xf0},
		{SLL, 1, 8, 0, 256},
		{SRL, 256, 8, 0, 1},
		{SRA, ^uint64(0), 4, 0, ^uint64(0)},
		{CMPEQ, 4, 4, 0, 1},
		{CMPEQ, 4, 5, 0, 0},
		{CMPLT, ^uint64(0), 0, 0, 1}, // -1 < 0 signed
		{CMPULT, ^uint64(0), 0, 0, 0},
		{CMPLE, 4, 4, 0, 1},
		{ADDQI, 5, 0, -3, 2},
		{SUBQI, 5, 0, 3, 2},
		{MULQI, 5, 0, 3, 15},
		{ANDI, 0xff, 0, 0x0f, 0x0f},
		{BISI, 0xf0, 0, 0x0f, 0xff},
		{XORI, 0xff, 0, 0x0f, 0xf0},
		{SLLI, 1, 0, 4, 16},
		{SRLI, 16, 0, 4, 1},
		{SRAI, ^uint64(0), 0, 4, ^uint64(0)},
		{CMPEQI, 7, 0, 7, 1},
		{CMPLTI, 3, 0, 7, 1},
		{CMPLEI, 7, 0, 7, 1},
		{CMPULTI, 3, 0, 7, 1},
		{LDA, 100, 0, -4, 96},
		{LDAH, 1, 0, 2, 1 + 2<<16},
	}
	for _, c := range cases {
		if got := EvalOp(c.op, c.a, c.b, 0, c.imm); got != c.want {
			t.Errorf("EvalOp(%v, %d, %d, imm=%d) = %d, want %d", c.op, c.a, c.b, c.imm, got, c.want)
		}
	}
}

func TestEvalOpCmov(t *testing.T) {
	if got := EvalOp(CMOVEQ, 0, 42, 7, 0); got != 42 {
		t.Errorf("CMOVEQ taken = %d", got)
	}
	if got := EvalOp(CMOVEQ, 1, 42, 7, 0); got != 7 {
		t.Errorf("CMOVEQ not-taken = %d", got)
	}
	if got := EvalOp(CMOVNE, 1, 42, 7, 0); got != 42 {
		t.Errorf("CMOVNE taken = %d", got)
	}
}

func TestEvalOpFP(t *testing.T) {
	a, b := f2b(1.5), f2b(2.5)
	if got := EvalOp(FADD, a, b, 0, 0); b2f(got) != 4.0 {
		t.Errorf("FADD = %v", b2f(got))
	}
	if got := EvalOp(FMUL, a, b, 0, 0); b2f(got) != 3.75 {
		t.Errorf("FMUL = %v", b2f(got))
	}
	if got := EvalOp(FDIV, a, f2b(0), 0, 0); b2f(got) != 0 {
		t.Errorf("FDIV by zero = %v", b2f(got))
	}
	if got := EvalOp(FCMPLT, a, b, 0, 0); got != 1 {
		t.Errorf("FCMPLT = %d", got)
	}
	if got := EvalOp(CVTQT, uint64(7), 0, 0, 0); b2f(got) != 7.0 {
		t.Errorf("CVTQT = %v", b2f(got))
	}
	if got := EvalOp(CVTTQ, f2b(7.9), 0, 0, 0); got != 7 {
		t.Errorf("CVTTQ = %d", got)
	}
}

func TestEvalBranch(t *testing.T) {
	neg := ^uint64(0)
	cases := []struct {
		op   Opcode
		a    uint64
		want bool
	}{
		{BEQ, 0, true}, {BEQ, 1, false},
		{BNE, 0, false}, {BNE, 1, true},
		{BLT, neg, true}, {BLT, 0, false},
		{BGE, 0, true}, {BGE, neg, false},
		{BLE, 0, true}, {BLE, 1, false},
		{BGT, 1, true}, {BGT, 0, false},
	}
	for _, c := range cases {
		if got := EvalBranch(c.op, c.a); got != c.want {
			t.Errorf("EvalBranch(%v, %d) = %v", c.op, c.a, got)
		}
	}
}

func TestInverse(t *testing.T) {
	cases := []struct {
		op     Opcode
		imm    int64
		inv    Opcode
		invImm int64
		ok     bool
	}{
		{STQ, 8, LDQ, 8, true},
		{STL, -4, LDL, -4, true},
		{LDA, -32, LDA, 32, true},
		{ADDQI, 4, ADDQI, -4, true},
		{SUBQI, 4, SUBQI, -4, true},
		{XORI, 0xff, XORI, 0xff, true},
		{MULQI, 3, 0, 0, false},
		{ADDQ, 0, 0, 0, false},
		{LDQ, 0, 0, 0, false},
	}
	for _, c := range cases {
		inv, invImm, ok := c.op.Inverse(c.imm)
		if ok != c.ok || (ok && (inv != c.inv || invImm != c.invImm)) {
			t.Errorf("Inverse(%v, %d) = %v/%d/%v; want %v/%d/%v",
				c.op, c.imm, inv, invImm, ok, c.inv, c.invImm, c.ok)
		}
	}
}

func TestInverseOfInverseIsIdentity(t *testing.T) {
	f := func(imm int32) bool {
		for _, op := range []Opcode{LDA, ADDQI, SUBQI, XORI} {
			inv, invImm, ok := op.Inverse(int64(imm))
			if !ok {
				return false
			}
			inv2, imm2, ok2 := inv.Inverse(invImm)
			if !ok2 || inv2 != op || imm2 != int64(imm) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSPIdioms(t *testing.T) {
	dec := Instr{Op: LDA, Rd: RegSP, Ra: RegSP, Imm: -32}
	inc := Instr{Op: LDA, Rd: RegSP, Ra: RegSP, Imm: 32}
	save := Instr{Op: STQ, Ra: RegSP, Rb: RegS0, Imm: 8}
	restore := Instr{Op: LDQ, Rd: RegS0, Ra: RegSP, Imm: 8}
	if !dec.IsSPDecrement() || dec.IsSPIncrement() {
		t.Error("SP decrement misclassified")
	}
	if !inc.IsSPIncrement() || inc.IsSPDecrement() {
		t.Error("SP increment misclassified")
	}
	if !save.IsSPStore() || save.IsSPLoad() {
		t.Error("SP store misclassified")
	}
	if !restore.IsSPLoad() || restore.IsSPStore() {
		t.Error("SP load misclassified")
	}
	// Non-SP variants.
	if (Instr{Op: LDA, Rd: 3, Ra: RegSP, Imm: -32}).IsSPDecrement() {
		t.Error("non-SP-dest LDA classified as decrement")
	}
	if (Instr{Op: STQ, Ra: 5, Rb: 9, Imm: 8}).IsSPStore() {
		t.Error("non-SP-base store classified as SP store")
	}
}

func TestDisasmSmoke(t *testing.T) {
	cases := []struct {
		in   Instr
		pc   uint64
		want string
	}{
		{Instr{Op: ADDQ, Rd: 1, Ra: 2, Rb: 3}, 0, "addq t0, t1, t2"},
		{Instr{Op: ADDQI, Rd: 1, Ra: 2, Imm: 5}, 0, "addqi t0, t1, 5"},
		{Instr{Op: LDA, Rd: RegSP, Ra: RegSP, Imm: -32}, 0, "lda sp, -32(sp)"},
		{Instr{Op: LDQ, Rd: 9, Ra: RegSP, Imm: 8}, 0, "ldq s0, 8(sp)"},
		{Instr{Op: STQ, Ra: RegSP, Rb: 9, Imm: 8}, 0, "stq s0, 8(sp)"},
		{Instr{Op: BEQ, Ra: 3, Imm: 12}, 0x1000, "beq t2, 0x1010"},
		{Instr{Op: BSR, Rd: RegRA, Imm: 0x20}, 0x1000, "bsr ra, 0x1024"},
		{Instr{Op: RET, Rb: RegRA}, 0, "ret (ra)"},
		{Instr{Op: SYSCALL}, 0, "syscall"},
		{Instr{Op: NOP}, 0, "nop"},
		{Instr{Op: CVTQT, Rd: 1, Ra: 2}, 0, "cvtqt t0, t1"},
		{Instr{Op: JSR, Rd: RegRA, Rb: RegPV}, 0, "jsr ra, (pv)"},
		{Instr{Op: JMP, Rb: 4}, 0, "jmp (t3)"},
		{Instr{Op: BR, Imm: -4}, 0x1000, "br 0x1000"},
	}
	for _, c := range cases {
		if got := Disasm(c.in, c.pc); got != c.want {
			t.Errorf("Disasm(%+v) = %q, want %q", c.in, got, c.want)
		}
	}
}

// Property: EvalOp never depends on `old` except for conditional moves.
func TestEvalOpOldOnlyForCmov(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for op := Opcode(0); op < numOpcodes; op++ {
		if op == CMOVEQ || op == CMOVNE {
			continue
		}
		for i := 0; i < 20; i++ {
			a, b := rng.Uint64(), rng.Uint64()
			imm := int64(int32(rng.Uint32()))
			if EvalOp(op, a, b, 0, imm) != EvalOp(op, a, b, rng.Uint64(), imm) {
				t.Errorf("%v result depends on old dest value", op)
			}
		}
	}
}

func TestFitsImm(t *testing.T) {
	if !FitsImm(0) || !FitsImm(-(1 << 31)) || !FitsImm(1<<31-1) {
		t.Error("FitsImm rejects in-range values")
	}
	if FitsImm(1<<31) || FitsImm(-(1<<31)-1) {
		t.Error("FitsImm accepts out-of-range values")
	}
}
