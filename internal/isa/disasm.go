package isa

import "fmt"

// Disasm renders an instruction in assembler syntax. pc is used to print
// absolute targets for PC-relative control; pass 0 to print raw offsets.
func Disasm(in Instr, pc uint64) string {
	switch in.Op.ClassOf() {
	case ClassNop:
		return "nop"
	case ClassIntALU, ClassIntMul, ClassFP:
		switch {
		case in.Op == LDA || in.Op == LDAH:
			return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rd, in.Imm, in.Ra)
		case in.Op == CVTQT || in.Op == CVTTQ:
			return fmt.Sprintf("%s %s, %s", in.Op, in.Rd, in.Ra)
		case in.Op.HasImm():
			return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rd, in.Ra, in.Imm)
		default:
			return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd, in.Ra, in.Rb)
		}
	case ClassLoad:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rd, in.Imm, in.Ra)
	case ClassStore:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rb, in.Imm, in.Ra)
	case ClassBranch:
		if pc != 0 {
			return fmt.Sprintf("%s %s, %#x", in.Op, in.Ra, in.Target(pc))
		}
		return fmt.Sprintf("%s %s, .%+d", in.Op, in.Ra, in.Imm)
	case ClassJumpDirect:
		if pc != 0 {
			return fmt.Sprintf("br %#x", in.Target(pc))
		}
		return fmt.Sprintf("br .%+d", in.Imm)
	case ClassCallDirect:
		if pc != 0 {
			return fmt.Sprintf("bsr %s, %#x", in.Rd, in.Target(pc))
		}
		return fmt.Sprintf("bsr %s, .%+d", in.Rd, in.Imm)
	case ClassCallIndirect:
		return fmt.Sprintf("jsr %s, (%s)", in.Rd, in.Rb)
	case ClassJumpIndirect:
		return fmt.Sprintf("jmp (%s)", in.Rb)
	case ClassRet:
		return fmt.Sprintf("ret (%s)", in.Rb)
	case ClassSyscall:
		return "syscall"
	}
	return fmt.Sprintf("%s ?", in.Op)
}
