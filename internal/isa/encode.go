package isa

import "fmt"

// Machine word layout (64 bits):
//
//	[63:56] opcode
//	[55:48] rd
//	[47:40] ra
//	[39:32] rb
//	[31:0]  signed 32-bit immediate
//
// Instructions occupy InstrBytes (4) of PC space but are stored as 64-bit
// words in the program image; the loader indexes code by (pc-base)/4.

// ErrBadEncoding is returned by Decode for malformed words.
type ErrBadEncoding struct {
	Word uint64
	Why  string
}

func (e *ErrBadEncoding) Error() string {
	return fmt.Sprintf("isa: bad encoding %#016x: %s", e.Word, e.Why)
}

// Encode packs the instruction into a machine word.
func Encode(in Instr) uint64 {
	return uint64(in.Op)<<56 |
		uint64(in.Rd)<<48 |
		uint64(in.Ra)<<40 |
		uint64(in.Rb)<<32 |
		uint64(uint32(int32(in.Imm)))
}

// Decode unpacks a machine word into an instruction, validating opcode and
// register fields.
func Decode(word uint64) (Instr, error) {
	in := Instr{
		Op:  Opcode(word >> 56),
		Rd:  Reg(word >> 48),
		Ra:  Reg(word >> 40),
		Rb:  Reg(word >> 32),
		Imm: int64(int32(uint32(word))),
	}
	if int(in.Op) >= NumOpcodes {
		return Instr{}, &ErrBadEncoding{word, "unknown opcode"}
	}
	if in.Rd >= NumLogical || in.Ra >= NumLogical || in.Rb >= NumLogical {
		return Instr{}, &ErrBadEncoding{word, "register out of range"}
	}
	if !fitsImm32(in.Imm) {
		return Instr{}, &ErrBadEncoding{word, "immediate out of range"}
	}
	return in, nil
}

// MustDecode decodes a word known to be valid; it panics on failure and is
// intended for program images produced by the assembler.
func MustDecode(word uint64) Instr {
	in, err := Decode(word)
	if err != nil {
		panic(err)
	}
	return in
}

// FitsImm reports whether v is representable in the instruction word's
// signed 32-bit immediate field.
func FitsImm(v int64) bool { return fitsImm32(v) }

func fitsImm32(v int64) bool {
	return v >= -(1<<31) && v < (1<<31)
}
