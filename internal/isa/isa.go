// Package isa defines the rix instruction set: a 64-bit, Alpha-flavoured
// RISC ISA with 32 integer logical registers, a hardwired zero register,
// LDA-style address arithmetic and the classic stack save/restore idiom.
// The ISA is the substrate on which register integration operates; its
// shape (opcode + immediate + input registers fully determine a result)
// is what makes the integration test of the paper well-defined.
package isa

import "fmt"

// Reg names a logical (architectural) register, 0..31.
type Reg uint8

// NumLogical is the number of architectural integer registers.
const NumLogical = 32

// Conventional register assignments (Alpha-flavoured).
const (
	RegV0   Reg = 0  // function result
	RegT0   Reg = 1  // caller-saved temporaries t0..t7 = r1..r8
	RegS0   Reg = 9  // callee-saved s0..s5 = r9..r14
	RegA0   Reg = 16 // arguments a0..a5 = r16..r21
	RegRA   Reg = 26 // return address
	RegPV   Reg = 27 // procedure value
	RegAT   Reg = 28 // assembler temporary
	RegGP   Reg = 29 // global pointer
	RegSP   Reg = 30 // stack pointer
	RegZero Reg = 31 // hardwired zero
)

// regNames maps conventional names to register numbers for the assembler
// and disassembler.
var regNames = map[string]Reg{
	"v0": 0,
	"t0": 1, "t1": 2, "t2": 3, "t3": 4, "t4": 5, "t5": 6, "t6": 7, "t7": 8,
	"s0": 9, "s1": 10, "s2": 11, "s3": 12, "s4": 13, "s5": 14, "fp": 15, "s6": 15,
	"a0": 16, "a1": 17, "a2": 18, "a3": 19, "a4": 20, "a5": 21,
	"t8": 22, "t9": 23, "t10": 24, "t11": 25,
	"ra": 26, "pv": 27, "t12": 27, "at": 28, "gp": 29, "sp": 30, "zero": 31,
}

// RegByName resolves a conventional ("sp") or numeric ("r30", "$30")
// register name.
func RegByName(name string) (Reg, bool) {
	if r, ok := regNames[name]; ok {
		return r, true
	}
	var n int
	if len(name) >= 2 && (name[0] == 'r' || name[0] == '$') {
		if _, err := fmt.Sscanf(name[1:], "%d", &n); err == nil && n >= 0 && n < NumLogical {
			return Reg(n), true
		}
	}
	return 0, false
}

// canonicalNames holds the preferred conventional name for each register.
var canonicalNames = [NumLogical]string{
	"v0", "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
	"s0", "s1", "s2", "s3", "s4", "s5", "fp",
	"a0", "a1", "a2", "a3", "a4", "a5",
	"t8", "t9", "t10", "t11",
	"ra", "pv", "at", "gp", "sp", "zero",
}

// String returns the canonical conventional name of the register.
func (r Reg) String() string {
	if r < NumLogical {
		return canonicalNames[r]
	}
	return fmt.Sprintf("r%d", uint8(r))
}

// Opcode enumerates every operation in the ISA.
type Opcode uint8

// Operate-format opcodes (register and immediate forms), memory, control
// and system opcodes. Immediate forms end in I; FP operations treat the
// 64-bit register contents as IEEE float64 bits.
const (
	NOP Opcode = iota

	// Integer operate, register form: rd = ra OP rb.
	ADDQ
	SUBQ
	MULQ
	AND
	BIS // logical OR (Alpha "bit set")
	XOR
	BIC // and-not
	SLL
	SRL
	SRA
	CMPEQ
	CMPLT
	CMPLE
	CMPULT
	CMOVEQ // rd = (ra==0) ? rb : rd  (reads rd)
	CMOVNE // rd = (ra!=0) ? rb : rd  (reads rd)

	// Integer operate, immediate form: rd = ra OP imm.
	ADDQI
	SUBQI
	MULQI
	ANDI
	BISI
	XORI
	SLLI
	SRLI
	SRAI
	CMPEQI
	CMPLTI
	CMPLEI
	CMPULTI

	// Address arithmetic: rd = ra + imm (LDA), rd = ra + imm<<16 (LDAH).
	LDA
	LDAH

	// Memory: displacement addressing off ra.
	LDQ // rd = mem64[ra+imm]
	LDL // rd = sign-extended mem32[ra+imm]
	STQ // mem64[ra+imm] = rb
	STL // mem32[ra+imm] = low32(rb)

	// Conditional branches: compare ra against zero, target = next PC + imm.
	BEQ
	BNE
	BLT
	BGE
	BLE
	BGT

	// Unconditional control.
	BR  // direct jump, resolved at decode, never integrated
	BSR // direct call: rd = next PC, push RAS
	JSR // indirect call: rd = next PC, target = rb
	JMP // indirect jump: target = rb
	RET // return: target = rb (conventionally ra), pop RAS

	// Floating point on float64 bit patterns.
	FADD
	FSUB
	FMUL
	FDIV
	FCMPLT // rd = (f(ra) < f(rb)) ? 1 : 0
	CVTQT  // rd = float64(int64(ra)) bits
	CVTTQ  // rd = int64(truncate(f(ra)))

	// System call: function in v0, args in a0..a1.
	SYSCALL

	numOpcodes
)

// NumOpcodes is the number of defined opcodes.
const NumOpcodes = int(numOpcodes)

// Class partitions opcodes by pipeline resource requirements.
type Class uint8

const (
	ClassNop Class = iota
	ClassIntALU
	ClassIntMul // complex integer: shares the FP/complex issue port
	ClassFP
	ClassLoad
	ClassStore
	ClassBranch       // conditional branch
	ClassJumpDirect   // BR: resolved at decode
	ClassCallDirect   // BSR: link register written at decode, pushes RAS
	ClassCallIndirect // JSR: link write + register target
	ClassJumpIndirect // JMP
	ClassRet          // RET: pops RAS
	ClassSyscall
)

// opInfo is the static description of one opcode.
type opInfo struct {
	name    string
	class   Class
	hasRd   bool // writes a destination register
	hasRa   bool // reads operand register a
	hasRb   bool // reads operand register b
	hasImm  bool // uses the immediate field
	latency int  // execute latency in cycles
}

var opTable = [numOpcodes]opInfo{
	NOP: {"nop", ClassNop, false, false, false, false, 1},

	ADDQ:   {"addq", ClassIntALU, true, true, true, false, 1},
	SUBQ:   {"subq", ClassIntALU, true, true, true, false, 1},
	MULQ:   {"mulq", ClassIntMul, true, true, true, false, 3},
	AND:    {"and", ClassIntALU, true, true, true, false, 1},
	BIS:    {"bis", ClassIntALU, true, true, true, false, 1},
	XOR:    {"xor", ClassIntALU, true, true, true, false, 1},
	BIC:    {"bic", ClassIntALU, true, true, true, false, 1},
	SLL:    {"sll", ClassIntALU, true, true, true, false, 1},
	SRL:    {"srl", ClassIntALU, true, true, true, false, 1},
	SRA:    {"sra", ClassIntALU, true, true, true, false, 1},
	CMPEQ:  {"cmpeq", ClassIntALU, true, true, true, false, 1},
	CMPLT:  {"cmplt", ClassIntALU, true, true, true, false, 1},
	CMPLE:  {"cmple", ClassIntALU, true, true, true, false, 1},
	CMPULT: {"cmpult", ClassIntALU, true, true, true, false, 1},
	CMOVEQ: {"cmoveq", ClassIntALU, true, true, true, false, 1},
	CMOVNE: {"cmovne", ClassIntALU, true, true, true, false, 1},

	ADDQI:   {"addqi", ClassIntALU, true, true, false, true, 1},
	SUBQI:   {"subqi", ClassIntALU, true, true, false, true, 1},
	MULQI:   {"mulqi", ClassIntMul, true, true, false, true, 3},
	ANDI:    {"andi", ClassIntALU, true, true, false, true, 1},
	BISI:    {"bisi", ClassIntALU, true, true, false, true, 1},
	XORI:    {"xori", ClassIntALU, true, true, false, true, 1},
	SLLI:    {"slli", ClassIntALU, true, true, false, true, 1},
	SRLI:    {"srli", ClassIntALU, true, true, false, true, 1},
	SRAI:    {"srai", ClassIntALU, true, true, false, true, 1},
	CMPEQI:  {"cmpeqi", ClassIntALU, true, true, false, true, 1},
	CMPLTI:  {"cmplti", ClassIntALU, true, true, false, true, 1},
	CMPLEI:  {"cmplei", ClassIntALU, true, true, false, true, 1},
	CMPULTI: {"cmpulti", ClassIntALU, true, true, false, true, 1},

	LDA:  {"lda", ClassIntALU, true, true, false, true, 1},
	LDAH: {"ldah", ClassIntALU, true, true, false, true, 1},

	LDQ: {"ldq", ClassLoad, true, true, false, true, 1},
	LDL: {"ldl", ClassLoad, true, true, false, true, 1},
	STQ: {"stq", ClassStore, false, true, true, true, 1},
	STL: {"stl", ClassStore, false, true, true, true, 1},

	BEQ: {"beq", ClassBranch, false, true, false, true, 1},
	BNE: {"bne", ClassBranch, false, true, false, true, 1},
	BLT: {"blt", ClassBranch, false, true, false, true, 1},
	BGE: {"bge", ClassBranch, false, true, false, true, 1},
	BLE: {"ble", ClassBranch, false, true, false, true, 1},
	BGT: {"bgt", ClassBranch, false, true, false, true, 1},

	BR:  {"br", ClassJumpDirect, false, false, false, true, 1},
	BSR: {"bsr", ClassCallDirect, true, false, false, true, 1},
	JSR: {"jsr", ClassCallIndirect, true, false, true, false, 1},
	JMP: {"jmp", ClassJumpIndirect, false, false, true, false, 1},
	RET: {"ret", ClassRet, false, false, true, false, 1},

	FADD:   {"fadd", ClassFP, true, true, true, false, 2},
	FSUB:   {"fsub", ClassFP, true, true, true, false, 2},
	FMUL:   {"fmul", ClassFP, true, true, true, false, 4},
	FDIV:   {"fdiv", ClassFP, true, true, true, false, 12},
	FCMPLT: {"fcmplt", ClassFP, true, true, true, false, 2},
	CVTQT:  {"cvtqt", ClassFP, true, true, false, false, 2},
	CVTTQ:  {"cvttq", ClassFP, true, true, false, false, 2},

	SYSCALL: {"syscall", ClassSyscall, false, false, false, false, 1},
}

// String returns the mnemonic of the opcode.
func (op Opcode) String() string {
	if int(op) < NumOpcodes {
		return opTable[op].name
	}
	return fmt.Sprintf("op%d", uint8(op))
}

// OpByName resolves a mnemonic to its opcode.
func OpByName(name string) (Opcode, bool) {
	op, ok := opsByName[name]
	return op, ok
}

var opsByName = func() map[string]Opcode {
	m := make(map[string]Opcode, NumOpcodes)
	for op := Opcode(0); op < numOpcodes; op++ {
		m[opTable[op].name] = op
	}
	return m
}()

// ClassOf returns the pipeline class of op.
func (op Opcode) ClassOf() Class { return opTable[op].class }

// Latency returns the execute latency of op in cycles.
func (op Opcode) Latency() int { return opTable[op].latency }

// HasDest reports whether op writes a destination register.
func (op Opcode) HasDest() bool { return opTable[op].hasRd }

// ReadsRa reports whether op reads operand register a.
func (op Opcode) ReadsRa() bool { return opTable[op].hasRa }

// ReadsRb reports whether op reads operand register b.
func (op Opcode) ReadsRb() bool { return opTable[op].hasRb }

// HasImm reports whether op uses the immediate field.
func (op Opcode) HasImm() bool { return opTable[op].hasImm }

// IsConditional reports whether op is a conditional branch.
func (op Opcode) IsConditional() bool { return opTable[op].class == ClassBranch }

// IsControl reports whether op can redirect the PC.
func (op Opcode) IsControl() bool {
	switch opTable[op].class {
	case ClassBranch, ClassJumpDirect, ClassCallDirect, ClassCallIndirect, ClassJumpIndirect, ClassRet:
		return true
	}
	return false
}

// IsMem reports whether op accesses memory.
func (op Opcode) IsMem() bool {
	c := opTable[op].class
	return c == ClassLoad || c == ClassStore
}

// IsLoad reports whether op is a load.
func (op Opcode) IsLoad() bool { return opTable[op].class == ClassLoad }

// IsStore reports whether op is a store.
func (op Opcode) IsStore() bool { return opTable[op].class == ClassStore }

// IsCall reports whether op pushes a return address.
func (op Opcode) IsCall() bool {
	c := opTable[op].class
	return c == ClassCallDirect || c == ClassCallIndirect
}

// Instr is a decoded instruction. Fields not used by the opcode are zero.
type Instr struct {
	Op  Opcode
	Rd  Reg   // destination register
	Ra  Reg   // first source / base register
	Rb  Reg   // second source / store-data register
	Imm int64 // immediate, displacement, or branch offset (bytes from next PC)
}

// InstrBytes is the architectural size of one instruction in PC units.
const InstrBytes = 4

// Target computes the target of a PC-relative control instruction located
// at pc.
func (in Instr) Target(pc uint64) uint64 {
	return pc + InstrBytes + uint64(in.Imm)
}

// Uses reports whether the instruction reads logical register r
// (excluding the hardwired zero register, which is never a dependence).
func (in Instr) Uses(r Reg) bool {
	if r == RegZero {
		return false
	}
	if in.Op.ReadsRa() && in.Ra == r {
		return true
	}
	if in.Op.ReadsRb() && in.Rb == r {
		return true
	}
	// Conditional moves read their destination.
	if (in.Op == CMOVEQ || in.Op == CMOVNE) && in.Rd == r {
		return true
	}
	return false
}

// Defines reports whether the instruction writes logical register r.
// Writes to the zero register are discarded and define nothing.
func (in Instr) Defines(r Reg) bool {
	return in.Op.HasDest() && in.Rd == r && r != RegZero
}
