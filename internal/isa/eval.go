package isa

import "math"

// EvalOp computes the result of a non-memory, non-control operate
// instruction given its source values. It is the single source of truth
// for operate semantics, shared by the functional emulator, the pipeline
// execute stage and the DIVA checker. a and b are the values of Ra and Rb;
// old is the prior value of Rd (read only by conditional moves).
func EvalOp(op Opcode, a, b, old uint64, imm int64) uint64 {
	iv := uint64(imm)
	switch op {
	case ADDQ:
		return a + b
	case SUBQ:
		return a - b
	case MULQ:
		return a * b
	case AND:
		return a & b
	case BIS:
		return a | b
	case XOR:
		return a ^ b
	case BIC:
		return a &^ b
	case SLL:
		return a << (b & 63)
	case SRL:
		return a >> (b & 63)
	case SRA:
		return uint64(int64(a) >> (b & 63))
	case CMPEQ:
		return boolTo(a == b)
	case CMPLT:
		return boolTo(int64(a) < int64(b))
	case CMPLE:
		return boolTo(int64(a) <= int64(b))
	case CMPULT:
		return boolTo(a < b)
	case CMOVEQ:
		if a == 0 {
			return b
		}
		return old
	case CMOVNE:
		if a != 0 {
			return b
		}
		return old

	case ADDQI:
		return a + iv
	case SUBQI:
		return a - iv
	case MULQI:
		return a * iv
	case ANDI:
		return a & iv
	case BISI:
		return a | iv
	case XORI:
		return a ^ iv
	case SLLI:
		return a << (iv & 63)
	case SRLI:
		return a >> (iv & 63)
	case SRAI:
		return uint64(int64(a) >> (iv & 63))
	case CMPEQI:
		return boolTo(a == iv)
	case CMPLTI:
		return boolTo(int64(a) < imm)
	case CMPLEI:
		return boolTo(int64(a) <= imm)
	case CMPULTI:
		return boolTo(a < iv)

	case LDA:
		return a + iv
	case LDAH:
		return a + uint64(imm<<16)

	case FADD:
		return f2b(b2f(a) + b2f(b))
	case FSUB:
		return f2b(b2f(a) - b2f(b))
	case FMUL:
		return f2b(b2f(a) * b2f(b))
	case FDIV:
		d := b2f(b)
		if d == 0 {
			return f2b(0)
		}
		return f2b(b2f(a) / d)
	case FCMPLT:
		return boolTo(b2f(a) < b2f(b))
	case CVTQT:
		return f2b(float64(int64(a)))
	case CVTTQ:
		f := b2f(a)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return 0
		}
		return uint64(int64(f))
	}
	return 0
}

// EvalBranch computes the taken/not-taken outcome of a conditional branch
// given the value of Ra.
func EvalBranch(op Opcode, a uint64) bool {
	switch op {
	case BEQ:
		return a == 0
	case BNE:
		return a != 0
	case BLT:
		return int64(a) < 0
	case BGE:
		return int64(a) >= 0
	case BLE:
		return int64(a) <= 0
	case BGT:
		return int64(a) > 0
	}
	return false
}

// EffAddr computes the effective address of a memory instruction.
func EffAddr(base uint64, imm int64) uint64 { return base + uint64(imm) }

func boolTo(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func b2f(v uint64) float64 { return math.Float64frombits(v) }
func f2b(f float64) uint64 { return math.Float64bits(f) }
