package isa

// Integration properties (paper §2.1): system calls, stores and direct
// jumps are never integrated. Everything that produces a register result as
// a pure function of its register inputs — ALU, FP, address arithmetic,
// loads (speculatively; DIVA/LISP guard against conflicting stores) — and
// conditional branches (whose outcome is a pure function of inputs) are
// integration candidates.

// Integrable reports whether the opcode may participate in integration.
// Conditional moves are excluded: they read three registers and the IT
// holds only two input operands.
func (op Opcode) Integrable() bool {
	switch op.ClassOf() {
	case ClassIntALU, ClassIntMul, ClassFP, ClassLoad, ClassBranch:
		return op != NOP && op != CMOVEQ && op != CMOVNE
	}
	return false
}

// Inverse computes the reverse-integration image of an operation
// (paper §2.4). For an operation rd = f(ra) it yields the opcode/immediate
// of the inverse ra = f⁻¹(rd), with input and output register roles
// swapped by the caller. ok is false when the operation has no cheap
// inverse.
//
// The paper's implementation creates reverse entries for two idioms:
//
//   - stq rb, disp(sp)   →  ldq rb, disp(sp)   (store→load, data untouched)
//   - lda sp, -n(sp)     →  lda sp, +n(sp)     (SP decrement→increment)
//
// Inverse also covers general invertible ALU immediates (add/sub/xor),
// used by the ReverseAll ablation.
func (op Opcode) Inverse(imm int64) (inv Opcode, invImm int64, ok bool) {
	switch op {
	case STQ:
		return LDQ, imm, true
	case STL:
		return LDL, imm, true
	case LDA:
		return LDA, -imm, true
	case ADDQI:
		return ADDQI, -imm, true
	case SUBQI:
		return SUBQI, -imm, true
	case XORI:
		return XORI, imm, true
	}
	return 0, 0, false
}

// StoreLoadPair maps a store opcode to the load opcode that reads back the
// value it wrote.
func (op Opcode) StoreLoadPair() (Opcode, bool) {
	switch op {
	case STQ:
		return LDQ, true
	case STL:
		return LDL, true
	}
	return 0, false
}

// IsSPDecrement reports whether the instruction is a stack-frame open:
// an LDA/ADDQI with rd==ra==sp and a negative immediate.
func (in Instr) IsSPDecrement() bool {
	return (in.Op == LDA || in.Op == ADDQI) &&
		in.Rd == RegSP && in.Ra == RegSP && in.Imm < 0
}

// IsSPIncrement reports whether the instruction is a stack-frame close.
func (in Instr) IsSPIncrement() bool {
	return (in.Op == LDA || in.Op == ADDQI) &&
		in.Rd == RegSP && in.Ra == RegSP && in.Imm > 0
}

// IsSPStore reports whether the instruction is a save to the stack frame
// (store with the stack pointer as base register).
func (in Instr) IsSPStore() bool {
	return in.Op.IsStore() && in.Ra == RegSP
}

// IsSPLoad reports whether the instruction is a restore from the stack
// frame.
func (in Instr) IsSPLoad() bool {
	return in.Op.IsLoad() && in.Ra == RegSP
}
