// Package experiments declares every table and figure in the paper's
// evaluation section (§3) as a runner.Spec: a labeled matrix of
// sim.Options crossed with workloads plus a collector that renders the
// keyed results into text tables. The specs register with the
// internal/runner registry at package init; cmd/rixbench enumerates and
// executes them, and EXPERIMENTS.md records the results against the
// paper's numbers and explains how to add a spec.
package experiments

import (
	"context"
	"fmt"

	"rix/internal/runner"
	"rix/internal/stats"
)

// Cache is the experiment engine (the name survives from the original
// eager workload cache): workloads build lazily in parallel on first
// use, and simulations run through a bounded worker pool.
type Cache = runner.Engine

// NewCache creates an engine over the named workloads (nil means the
// full paper suite). Names are validated immediately; builds are lazy.
func NewCache(names []string) (*Cache, error) { return runner.NewEngine(names) }

// The paper's suites, registered in presentation order.
func init() {
	for _, s := range []runner.Spec{fig4Spec, fig5Spec, fig6Spec, fig7Spec, diagSpec, ablateSpec} {
		runner.MustRegister(s)
	}
}

// Figure4 runs the registered "fig4" spec (extension impact).
func Figure4(ctx context.Context, c *Cache) ([]*stats.Table, error) { return c.RunSpec(ctx, "fig4") }

// Figure5 runs the registered "fig5" spec (integration stream analysis).
func Figure5(ctx context.Context, c *Cache) ([]*stats.Table, error) { return c.RunSpec(ctx, "fig5") }

// Figure6 runs the registered "fig6" spec (IT associativity and size).
func Figure6(ctx context.Context, c *Cache) ([]*stats.Table, error) { return c.RunSpec(ctx, "fig6") }

// Figure7 runs the registered "fig7" spec (reduced-complexity cores).
func Figure7(ctx context.Context, c *Cache) ([]*stats.Table, error) { return c.RunSpec(ctx, "fig7") }

// Diagnostics runs the registered "diag" spec (§3.2/§3.5 scalars).
func Diagnostics(ctx context.Context, c *Cache) ([]*stats.Table, error) {
	return c.RunSpec(ctx, "diag")
}

// Ablations runs the registered "ablate" spec (design-choice ablations).
func Ablations(ctx context.Context, c *Cache) ([]*stats.Table, error) {
	return c.RunSpec(ctx, "ablate")
}

func pct(x float64) string  { return fmt.Sprintf("%.1f", 100*x) }
func pct2(x float64) string { return fmt.Sprintf("%+.1f", 100*x) }
