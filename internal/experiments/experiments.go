// Package experiments regenerates every table and figure in the paper's
// evaluation section (§3). Each FigureN function returns text tables whose
// rows/series correspond to the paper's plots; cmd/rixbench prints them
// and EXPERIMENTS.md records them against the paper's numbers.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"rix/internal/emu"
	"rix/internal/pipeline"
	"rix/internal/prog"
	"rix/internal/sim"
	"rix/internal/workload"
)

// built is one assembled workload with its golden trace.
type built struct {
	prog  *prog.Program
	trace []emu.TraceRec
}

// Cache holds built workloads and runs simulations over them, fanning
// out across CPUs (each pipeline instance is independent; programs and
// traces are shared read-only).
type Cache struct {
	names    []string
	programs map[string]built
	Parallel int
}

// NewCache builds the named workloads (nil means the full paper suite).
func NewCache(names []string) (*Cache, error) {
	if names == nil {
		names = workload.Names()
	}
	c := &Cache{
		names:    names,
		programs: make(map[string]built, len(names)),
		Parallel: runtime.NumCPU(),
	}
	for _, n := range names {
		b, ok := workload.ByName(n)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown workload %q", n)
		}
		p, trace, err := b.Build()
		if err != nil {
			return nil, err
		}
		c.programs[n] = built{p, trace}
	}
	return c, nil
}

// Names returns the cached workload names in order.
func (c *Cache) Names() []string { return c.names }

// DynLen returns the dynamic instruction count of a workload.
func (c *Cache) DynLen(name string) int { return len(c.programs[name].trace) }

// job is one simulation request.
type job struct {
	bench string
	cfg   pipeline.Config
}

// runAll executes all jobs with bounded parallelism, preserving order.
func (c *Cache) runAll(jobs []job) ([]*pipeline.Stats, error) {
	results := make([]*pipeline.Stats, len(jobs))
	errs := make([]error, len(jobs))
	par := c.Parallel
	if par < 1 {
		par = 1
	}
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			b := c.programs[j.bench]
			st, err := pipeline.New(j.cfg, b.prog, b.trace).Run()
			results[i], errs[i] = st, err
		}(i, j)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", jobs[i].bench, err)
		}
	}
	return results, nil
}

// Run simulates one workload under named options.
func (c *Cache) Run(name string, o sim.Options) (*pipeline.Stats, error) {
	cfg, err := o.Config()
	if err != nil {
		return nil, err
	}
	b, ok := c.programs[name]
	if !ok {
		return nil, fmt.Errorf("experiments: workload %q not in cache", name)
	}
	return pipeline.New(cfg, b.prog, b.trace).Run()
}

// mustConfig converts options, panicking on programming errors (presets
// are all statically known here).
func mustConfig(o sim.Options) pipeline.Config {
	cfg, err := o.Config()
	if err != nil {
		panic(err)
	}
	return cfg
}

func pct(x float64) string  { return fmt.Sprintf("%.1f", 100*x) }
func pct2(x float64) string { return fmt.Sprintf("%+.1f", 100*x) }
