package experiments

import (
	"rix/internal/sim"
	"rix/internal/stats"
)

// Figure4 reproduces the paper's primary result (Figure 4): the impact of
// each extension — squash, +general, +opcode, +reverse — on speedup (top
// graph) and integration rate with mis-integrations (bottom graph), each
// under a realistic LISP and under oracle suppression.
//
// Paper reference points: squash 2%/1%, +general 10%/3.6%, +opcode
// 12.3%/5%, +reverse 17%/8% (rate / speedup, realistic LISP).
func Figure4(c *Cache) ([]*stats.Table, error) {
	presets := sim.IntegrationPresets()

	var jobs []job
	for _, bench := range c.Names() {
		jobs = append(jobs, job{bench, mustConfig(sim.Options{Integration: sim.IntNone})})
		for _, p := range presets {
			jobs = append(jobs, job{bench, mustConfig(sim.Options{Integration: p, Suppression: sim.SuppressLISP})})
			jobs = append(jobs, job{bench, mustConfig(sim.Options{Integration: p, Suppression: sim.SuppressOracle})})
		}
	}
	res, err := c.runAll(jobs)
	if err != nil {
		return nil, err
	}

	speed := stats.NewTable("Figure 4 (top): speedup % over no-integration baseline",
		"bench", "squash", "+general", "+opcode", "+reverse",
		"squash/or", "+general/or", "+opcode/or", "+reverse/or", "baseIPC")
	rate := stats.NewTable("Figure 4 (bottom): integration rate % (direct+reverse) and mis-integrations per 1M retired",
		"bench", "squash", "+general", "+opcode", "+reverse", "rev-part",
		"squash/or", "+general/or", "+opcode/or", "+reverse/or", "misint/M")

	nCols := 1 + 2*len(presets)
	var speedups [8][]float64 // per preset x suppression
	var rates [8][]float64
	k := 0
	for _, bench := range c.Names() {
		base := res[k]
		row := []interface{}{bench}
		rrow := []interface{}{bench}
		var lispVals, orVals []*float64
		_ = lispVals
		_ = orVals
		// Collect per-preset stats: order lisp, oracle.
		var sp [8]float64
		var rt [8]float64
		var revPart, misM float64
		for pi := 0; pi < len(presets); pi++ {
			lisp := res[k+1+2*pi]
			orc := res[k+2+2*pi]
			sp[pi] = lisp.IPC()/base.IPC() - 1
			sp[4+pi] = orc.IPC()/base.IPC() - 1
			rt[pi] = lisp.IntegrationRate()
			rt[4+pi] = orc.IntegrationRate()
			if pi == len(presets)-1 {
				revPart = lisp.ReverseRate()
				misM = lisp.MisIntPerMillion()
			}
			speedups[pi] = append(speedups[pi], 1+sp[pi])
			speedups[4+pi] = append(speedups[4+pi], 1+sp[4+pi])
			rates[pi] = append(rates[pi], rt[pi])
			rates[4+pi] = append(rates[4+pi], rt[4+pi])
		}
		for i := 0; i < 4; i++ {
			row = append(row, pct2(sp[i]))
		}
		for i := 4; i < 8; i++ {
			row = append(row, pct2(sp[i]))
		}
		row = append(row, base.IPC())
		speed.Row(row...)

		for i := 0; i < 4; i++ {
			rrow = append(rrow, pct(rt[i]))
		}
		rrow = append(rrow, pct(revPart))
		for i := 4; i < 8; i++ {
			rrow = append(rrow, pct(rt[i]))
		}
		rrow = append(rrow, int(misM))
		rate.Row(rrow...)
		k += nCols
	}

	// Means: geometric for speedups (paper), arithmetic for rates.
	srow := []interface{}{"GMean"}
	for i := 0; i < 8; i++ {
		srow = append(srow, pct2(stats.GeoMean(speedups[i])-1))
	}
	srow = append(srow, "")
	speed.Row(srow...)
	rrow := []interface{}{"AMean"}
	for i := 0; i < 4; i++ {
		rrow = append(rrow, pct(stats.AMean(rates[i])))
	}
	rrow = append(rrow, "")
	for i := 4; i < 8; i++ {
		rrow = append(rrow, pct(stats.AMean(rates[i])))
	}
	rrow = append(rrow, "")
	rate.Row(rrow...)

	speed.Note("paper (realistic LISP): squash ~1%%, +general 3.6%%, +opcode 5%%, +reverse 8%% mean speedup")
	rate.Note("paper (realistic LISP): squash ~2%%, +general 10%%, +opcode 12.3%%, +reverse 17%% mean rate")
	return []*stats.Table{speed, rate}, nil
}
