package experiments

import (
	"rix/internal/runner"
	"rix/internal/sim"
	"rix/internal/stats"
)

// fig4Spec reproduces the paper's primary result (Figure 4): the impact
// of each extension — squash, +general, +opcode, +reverse — on speedup
// (top graph) and integration rate with mis-integrations (bottom graph),
// each under a realistic LISP and under oracle suppression.
//
// Paper reference points: squash 2%/1%, +general 10%/3.6%, +opcode
// 12.3%/5%, +reverse 17%/8% (rate / speedup, realistic LISP).
var fig4Spec = runner.Spec{
	ID:          "fig4",
	Description: "Figure 4: per-extension speedup and integration rate, LISP vs oracle suppression",
	Configs:     fig4Configs(),
	Collect:     collectFig4,
}

func fig4Configs() []runner.Config {
	cfgs := []runner.Config{{Label: "base", Opt: sim.Options{Integration: sim.IntNone}}}
	for _, p := range sim.IntegrationPresets() {
		cfgs = append(cfgs,
			runner.Config{Label: p + "/lisp", Opt: sim.Options{Integration: p, Suppression: sim.SuppressLISP}},
			runner.Config{Label: p + "/or", Opt: sim.Options{Integration: p, Suppression: sim.SuppressOracle}})
	}
	return cfgs
}

func collectFig4(rs *runner.ResultSet) ([]*stats.Table, error) {
	presets := sim.IntegrationPresets()

	speed := stats.NewTable("Figure 4 (top): speedup % over no-integration baseline",
		"bench", "squash", "+general", "+opcode", "+reverse",
		"squash/or", "+general/or", "+opcode/or", "+reverse/or", "baseIPC")
	rate := stats.NewTable("Figure 4 (bottom): integration rate % (direct+reverse) and mis-integrations per 1M retired",
		"bench", "squash", "+general", "+opcode", "+reverse", "rev-part",
		"squash/or", "+general/or", "+opcode/or", "+reverse/or", "misint/M")

	var speedups [8][]float64 // per preset x suppression
	var rates [8][]float64
	for _, bench := range rs.Benches() {
		base := rs.Get(bench, "base")
		row := []interface{}{bench}
		rrow := []interface{}{bench}
		// Collect per-preset stats: order lisp, oracle.
		var sp [8]float64
		var rt [8]float64
		var revPart, misM float64
		for pi, p := range presets {
			lisp := rs.Get(bench, p+"/lisp")
			orc := rs.Get(bench, p+"/or")
			sp[pi] = lisp.IPC()/base.IPC() - 1
			sp[4+pi] = orc.IPC()/base.IPC() - 1
			rt[pi] = lisp.IntegrationRate()
			rt[4+pi] = orc.IntegrationRate()
			if pi == len(presets)-1 {
				revPart = lisp.ReverseRate()
				misM = lisp.MisIntPerMillion()
			}
			speedups[pi] = append(speedups[pi], 1+sp[pi])
			speedups[4+pi] = append(speedups[4+pi], 1+sp[4+pi])
			rates[pi] = append(rates[pi], rt[pi])
			rates[4+pi] = append(rates[4+pi], rt[4+pi])
		}
		for i := 0; i < 4; i++ {
			row = append(row, pct2(sp[i]))
		}
		for i := 4; i < 8; i++ {
			row = append(row, pct2(sp[i]))
		}
		row = append(row, base.IPC())
		speed.Row(row...)

		for i := 0; i < 4; i++ {
			rrow = append(rrow, pct(rt[i]))
		}
		rrow = append(rrow, pct(revPart))
		for i := 4; i < 8; i++ {
			rrow = append(rrow, pct(rt[i]))
		}
		rrow = append(rrow, int(misM))
		rate.Row(rrow...)
	}

	// Means: geometric for speedups (paper), arithmetic for rates.
	srow := []interface{}{"GMean"}
	for i := 0; i < 8; i++ {
		srow = append(srow, pct2(stats.GeoMean(speedups[i])-1))
	}
	srow = append(srow, "")
	speed.Row(srow...)
	rrow := []interface{}{"AMean"}
	for i := 0; i < 4; i++ {
		rrow = append(rrow, pct(stats.AMean(rates[i])))
	}
	rrow = append(rrow, "")
	for i := 4; i < 8; i++ {
		rrow = append(rrow, pct(stats.AMean(rates[i])))
	}
	rrow = append(rrow, "")
	rate.Row(rrow...)

	speed.Note("paper (realistic LISP): squash ~1%%, +general 3.6%%, +opcode 5%%, +reverse 8%% mean speedup")
	rate.Note("paper (realistic LISP): squash ~2%%, +general 10%%, +opcode 12.3%%, +reverse 17%% mean rate")
	return []*stats.Table{speed, rate}, nil
}
