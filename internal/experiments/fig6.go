package experiments

import (
	"fmt"

	"rix/internal/sim"
	"rix/internal/stats"
)

// Figure6 reproduces the IT-configuration study: speedup as a function of
// IT associativity (1/2/4/full at 1K entries) and of IT size (64/256/1K/4K
// fully associative; the 4K point also uses 4K physical registers), under
// both realistic-LISP and oracle suppression, on the Figure 5 benchmark
// subset, all with the full +reverse policy.
func Figure6(c *Cache) ([]*stats.Table, error) {
	benches := intersect(c.Names(), Fig5Benchmarks)

	type variant struct {
		label string
		opt   sim.Options
	}
	assocs := []variant{
		{"1-way", sim.Options{ITEntries: 1024, ITAssoc: 1}},
		{"2-way", sim.Options{ITEntries: 1024, ITAssoc: 2}},
		{"4-way", sim.Options{ITEntries: 1024, ITAssoc: 4}},
		{"full", sim.Options{ITEntries: 1024, ITAssoc: -1}},
	}
	sizes := []variant{
		{"64", sim.Options{ITEntries: 64, ITAssoc: -1}},
		{"256", sim.Options{ITEntries: 256, ITAssoc: -1}},
		{"1K", sim.Options{ITEntries: 1024, ITAssoc: -1}},
		{"4K", sim.Options{ITEntries: 4096, ITAssoc: -1, PhysRegs: 4096}},
	}

	build := func(vs []variant, title string) (*stats.Table, error) {
		var jobs []job
		for _, b := range benches {
			jobs = append(jobs, job{b, mustConfig(sim.Options{Integration: sim.IntNone})})
			for _, v := range vs {
				for _, sup := range []string{sim.SuppressLISP, sim.SuppressOracle} {
					o := v.opt
					o.Integration = sim.IntReverse
					o.Suppression = sup
					jobs = append(jobs, job{b, mustConfig(o)})
				}
			}
		}
		res, err := c.runAll(jobs)
		if err != nil {
			return nil, err
		}
		header := []string{"bench"}
		for _, v := range vs {
			header = append(header, v.label, v.label+"/or")
		}
		t := stats.NewTable(title, header...)
		per := 1 + 2*len(vs)
		gm := make([][]float64, 2*len(vs))
		for i, b := range benches {
			base := res[i*per]
			row := []interface{}{b}
			for vi := range vs {
				lisp := res[i*per+1+2*vi]
				orc := res[i*per+2+2*vi]
				su := lisp.IPC()/base.IPC() - 1
				so := orc.IPC()/base.IPC() - 1
				row = append(row, pct2(su), pct2(so))
				gm[2*vi] = append(gm[2*vi], 1+su)
				gm[2*vi+1] = append(gm[2*vi+1], 1+so)
			}
			t.Row(row...)
		}
		grow := []interface{}{"GMean"}
		for vi := range vs {
			grow = append(grow, pct2(stats.GeoMean(gm[2*vi])-1), pct2(stats.GeoMean(gm[2*vi+1])-1))
		}
		t.Row(grow...)
		return t, nil
	}

	left, err := build(assocs, "Figure 6 (left): speedup % vs IT associativity (1K entries, +reverse)")
	if err != nil {
		return nil, err
	}
	left.Note("paper: speedup only drops to 7%% (2-way) and 6%% (1-way); full assoc reaches 10%%")
	right, err := build(sizes, "Figure 6 (right): speedup % vs IT size (fully associative, +reverse)")
	if err != nil {
		return nil, err
	}
	right.Note(fmt.Sprintf("4K point uses 4K physical registers, per the paper (benches: %d)", len(benches)))
	return []*stats.Table{left, right}, nil
}
