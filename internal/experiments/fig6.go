package experiments

import (
	"rix/internal/runner"
	"rix/internal/sim"
	"rix/internal/stats"
)

// fig6Spec reproduces the IT-configuration study: speedup as a function
// of IT associativity (1/2/4/full at 1K entries) and of IT size
// (64/256/1K/4K fully associative; the 4K point also uses 4K physical
// registers), under both realistic-LISP and oracle suppression, on the
// Figure 5 benchmark subset, all with the full +reverse policy.
var fig6Spec = runner.Spec{
	ID:          "fig6",
	Description: "Figure 6: speedup vs IT associativity and IT size",
	Benchmarks:  Fig5Benchmarks,
	Configs:     fig6Configs(),
	Collect:     collectFig6,
}

// fig6Variant is one point on an IT axis.
type fig6Variant struct {
	label string
	opt   sim.Options
}

var fig6Assocs = []fig6Variant{
	{"1-way", sim.Options{ITEntries: 1024, ITAssoc: 1}},
	{"2-way", sim.Options{ITEntries: 1024, ITAssoc: 2}},
	{"4-way", sim.Options{ITEntries: 1024, ITAssoc: 4}},
	{"full", sim.Options{ITEntries: 1024, ITAssoc: -1}},
}

var fig6Sizes = []fig6Variant{
	{"64", sim.Options{ITEntries: 64, ITAssoc: -1}},
	{"256", sim.Options{ITEntries: 256, ITAssoc: -1}},
	{"1K", sim.Options{ITEntries: 1024, ITAssoc: -1}},
	{"4K", sim.Options{ITEntries: 4096, ITAssoc: -1, PhysRegs: 4096}},
}

func fig6Configs() []runner.Config {
	cfgs := []runner.Config{{Label: "base", Opt: sim.Options{Integration: sim.IntNone}}}
	add := func(group string, vs []fig6Variant) {
		for _, v := range vs {
			for _, sup := range []string{sim.SuppressLISP, sim.SuppressOracle} {
				o := v.opt
				o.Integration = sim.IntReverse
				o.Suppression = sup
				cfgs = append(cfgs, runner.Config{Label: group + "/" + v.label + "/" + sup, Opt: o})
			}
		}
	}
	add("assoc", fig6Assocs)
	add("size", fig6Sizes)
	return cfgs
}

// fig6Table assembles one axis (assoc or size) into a speedup table.
func fig6Table(rs *runner.ResultSet, group string, vs []fig6Variant, title string) *stats.Table {
	header := []string{"bench"}
	for _, v := range vs {
		header = append(header, v.label, v.label+"/or")
	}
	t := stats.NewTable(title, header...)
	gm := make([][]float64, 2*len(vs))
	for _, b := range rs.Benches() {
		base := rs.Get(b, "base")
		row := []interface{}{b}
		for vi, v := range vs {
			lisp := rs.Get(b, group+"/"+v.label+"/"+sim.SuppressLISP)
			orc := rs.Get(b, group+"/"+v.label+"/"+sim.SuppressOracle)
			su := lisp.IPC()/base.IPC() - 1
			so := orc.IPC()/base.IPC() - 1
			row = append(row, pct2(su), pct2(so))
			gm[2*vi] = append(gm[2*vi], 1+su)
			gm[2*vi+1] = append(gm[2*vi+1], 1+so)
		}
		t.Row(row...)
	}
	grow := []interface{}{"GMean"}
	for vi := range vs {
		grow = append(grow, pct2(stats.GeoMean(gm[2*vi])-1), pct2(stats.GeoMean(gm[2*vi+1])-1))
	}
	t.Row(grow...)
	return t
}

func collectFig6(rs *runner.ResultSet) ([]*stats.Table, error) {
	left := fig6Table(rs, "assoc", fig6Assocs,
		"Figure 6 (left): speedup % vs IT associativity (1K entries, +reverse)")
	left.Note("paper: speedup only drops to 7%% (2-way) and 6%% (1-way); full assoc reaches 10%%")
	right := fig6Table(rs, "size", fig6Sizes,
		"Figure 6 (right): speedup % vs IT size (fully associative, +reverse)")
	right.Note("4K point uses 4K physical registers, per the paper (benches: %d)", len(rs.Benches()))
	return []*stats.Table{left, right}, nil
}
