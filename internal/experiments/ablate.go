package experiments

import (
	"rix/internal/runner"
	"rix/internal/sim"
	"rix/internal/stats"
)

// ablateSpec benchmarks the design choices DESIGN.md calls out, beyond
// the paper's main configurations:
//
//   - generation-counter width (0 vs 2 vs 4 bits): register
//     mis-integration suppression (§2.2; "4-bit counters eliminate
//     virtually all register mis-integrations"),
//   - the call-depth index mix (extension 2's distribution fix),
//   - LISP on/off (cost of un-suppressed load mis-integrations),
//   - reverse entries for all stores and for invertible ALU immediates
//     (the paper's future-work directions).
var ablateSpec = runner.Spec{
	ID:          "ablate",
	Description: "Design-choice ablations: generation counters, call depth, LISP, reverse coverage",
	Benchmarks:  Fig5Benchmarks,
	Configs: append([]runner.Config{
		{Label: "base", Opt: sim.Options{Integration: sim.IntNone}},
	}, ablateVariants...),
	Collect: collectAblate,
}

// ablateVariants are the ablation columns; the config label is the
// column header.
var ablateVariants = []runner.Config{
	{Label: "default", Opt: sim.Options{Integration: sim.IntReverse}},
	{Label: "gen0", Opt: sim.Options{Integration: sim.IntReverse, NoGenCounters: true}},
	{Label: "gen2", Opt: sim.Options{Integration: sim.IntReverse, GenBits: 2}},
	{Label: "nodepth", Opt: sim.Options{Integration: sim.IntReverse, NoCallDepth: true}},
	{Label: "nolisp", Opt: sim.Options{Integration: sim.IntReverse, Suppression: sim.SuppressNone}},
	{Label: "rev-all-st", Opt: sim.Options{Integration: sim.IntReverse, ReverseAllStores: true}},
	{Label: "rev-alu", Opt: sim.Options{Integration: sim.IntReverse, ReverseALU: true}},
}

func collectAblate(rs *runner.ResultSet) ([]*stats.Table, error) {
	header := []string{"bench"}
	for _, v := range ablateVariants {
		header = append(header, v.Label)
	}
	speed := stats.NewTable("Ablations: speedup % vs no-integration baseline", header...)
	mis := stats.NewTable("Ablations: mis-integrations per 1M retired (reg+load)", header...)
	gm := make([][]float64, len(ablateVariants))
	for _, b := range rs.Benches() {
		base := rs.Get(b, "base")
		srow := []interface{}{b}
		mrow := []interface{}{b}
		for vi, v := range ablateVariants {
			st := rs.Get(b, v.Label)
			su := st.IPC()/base.IPC() - 1
			srow = append(srow, pct2(su))
			mrow = append(mrow, int(st.MisIntPerMillion()))
			gm[vi] = append(gm[vi], 1+su)
		}
		speed.Row(srow...)
		mis.Row(mrow...)
	}
	grow := []interface{}{"GMean"}
	for vi := range ablateVariants {
		grow = append(grow, pct2(stats.GeoMean(gm[vi])-1))
	}
	speed.Row(grow...)
	mis.Note("gen0 disables generation counters: register mis-integrations reappear (§2.2)")
	return []*stats.Table{speed, mis}, nil
}
