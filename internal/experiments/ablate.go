package experiments

import (
	"rix/internal/sim"
	"rix/internal/stats"
)

// Ablations benchmarks the design choices DESIGN.md calls out, beyond the
// paper's main configurations:
//
//   - generation-counter width (0 vs 2 vs 4 bits): register
//     mis-integration suppression (§2.2; "4-bit counters eliminate
//     virtually all register mis-integrations"),
//   - the call-depth index mix (extension 2's distribution fix),
//   - LISP on/off (cost of un-suppressed load mis-integrations),
//   - reverse entries for all stores and for invertible ALU immediates
//     (the paper's future-work directions).
func Ablations(c *Cache) ([]*stats.Table, error) {
	benches := intersect(c.Names(), Fig5Benchmarks)
	variants := []struct {
		label string
		opt   sim.Options
	}{
		{"default", sim.Options{Integration: sim.IntReverse}},
		{"gen0", sim.Options{Integration: sim.IntReverse, NoGenCounters: true}},
		{"gen2", sim.Options{Integration: sim.IntReverse, GenBits: 2}},
		{"nodepth", sim.Options{Integration: sim.IntReverse, NoCallDepth: true}},
		{"nolisp", sim.Options{Integration: sim.IntReverse, Suppression: sim.SuppressNone}},
		{"rev-all-st", sim.Options{Integration: sim.IntReverse, ReverseAllStores: true}},
		{"rev-alu", sim.Options{Integration: sim.IntReverse, ReverseALU: true}},
	}

	var jobs []job
	for _, b := range benches {
		jobs = append(jobs, job{b, mustConfig(sim.Options{Integration: sim.IntNone})})
		for _, v := range variants {
			jobs = append(jobs, job{b, mustConfig(v.opt)})
		}
	}
	res, err := c.runAll(jobs)
	if err != nil {
		return nil, err
	}

	speed := stats.NewTable("Ablations: speedup % vs no-integration baseline", header(variants)...)
	mis := stats.NewTable("Ablations: mis-integrations per 1M retired (reg+load)", header(variants)...)
	per := 1 + len(variants)
	gm := make([][]float64, len(variants))
	for i, b := range benches {
		base := res[i*per]
		srow := []interface{}{b}
		mrow := []interface{}{b}
		for vi := range variants {
			st := res[i*per+1+vi]
			su := st.IPC()/base.IPC() - 1
			srow = append(srow, pct2(su))
			mrow = append(mrow, int(st.MisIntPerMillion()))
			gm[vi] = append(gm[vi], 1+su)
		}
		speed.Row(srow...)
		mis.Row(mrow...)
	}
	grow := []interface{}{"GMean"}
	for vi := range variants {
		grow = append(grow, pct2(stats.GeoMean(gm[vi])-1))
	}
	speed.Row(grow...)
	mis.Note("gen0 disables generation counters: register mis-integrations reappear (§2.2)")
	return []*stats.Table{speed, mis}, nil
}

func header(variants []struct {
	label string
	opt   sim.Options
}) []string {
	h := []string{"bench"}
	for _, v := range variants {
		h = append(h, v.label)
	}
	return h
}
