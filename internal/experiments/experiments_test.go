package experiments

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"rix/internal/sim"
)

// smallCache builds a fast 3-benchmark cache shared by the tests.
var smallCacheNames = []string{"gzip", "crafty", "vortex"}

var bg = context.Background()

func smallCache(t *testing.T) *Cache {
	t.Helper()
	c, err := NewCache(smallCacheNames)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCacheBasics(t *testing.T) {
	c := smallCache(t)
	if len(c.Names()) != 3 {
		t.Fatalf("names = %v", c.Names())
	}
	if c.DynLen(bg, "gzip") < 40_000 {
		t.Errorf("gzip dyn len = %d", c.DynLen(bg, "gzip"))
	}
	st, err := c.Run(bg, "gzip", sim.Options{Integration: sim.IntReverse})
	if err != nil {
		t.Fatal(err)
	}
	if st.Retired == 0 {
		t.Error("no instructions retired")
	}
	if _, err := c.Run(bg, "nope", sim.Options{}); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := NewCache([]string{"nope"}); err == nil {
		t.Error("unknown cache name accepted")
	}
}

func TestFigure4Structure(t *testing.T) {
	c := smallCache(t)
	tables, err := Figure4(bg, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("want 2 tables, got %d", len(tables))
	}
	speed, rate := tables[0], tables[1]
	// 3 benchmarks + mean row.
	if speed.NumRows() != 4 || rate.NumRows() != 4 {
		t.Fatalf("rows: %d, %d", speed.NumRows(), rate.NumRows())
	}
	// The +reverse rate column must dominate squash for crafty/vortex.
	for r := 0; r < 3; r++ {
		sq := cellF(t, rate, r, 1)
		rev := cellF(t, rate, r, 4)
		if rate.Cell(r, 0) != "gzip" && rev <= sq {
			t.Errorf("%s: +reverse rate %.1f <= squash %.1f", rate.Cell(r, 0), rev, sq)
		}
	}
	// Oracle speedups must not be (systematically) worse than LISP: check
	// the mean row of +reverse.
	mean := speed.NumRows() - 1
	lisp := cellF(t, speed, mean, 4)
	oracle := cellF(t, speed, mean, 8)
	if oracle < lisp-2.0 {
		t.Errorf("oracle mean %.1f much worse than LISP %.1f", oracle, lisp)
	}
}

func TestFigure5Structure(t *testing.T) {
	c := smallCache(t)
	tables, err := Figure5(bg, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 4 {
		t.Fatalf("want 4 tables, got %d", len(tables))
	}
	// Only crafty, gzip, vortex are in the Fig5 subset.
	if tables[0].NumRows() != 3 {
		t.Fatalf("type rows = %d", tables[0].NumRows())
	}
	// Breakdown fractions must sum to ~100.
	for _, tb := range tables {
		for r := 0; r < tb.NumRows(); r++ {
			sum := 0.0
			start := 1
			if tb == tables[0] {
				start = 2 // skip rate column
			}
			for col := start; col < tb.NumCols(); col++ {
				v, err := strconv.ParseFloat(tb.Cell(r, col), 64)
				if err != nil {
					break
				}
				sum += v
			}
			if sum < 99 || sum > 101 {
				t.Errorf("%s row %d: breakdown sums to %.1f", tb.Title, r, sum)
			}
		}
	}
}

func TestFigure6Structure(t *testing.T) {
	c := smallCache(t)
	tables, err := Figure6(bg, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("want 2 tables, got %d", len(tables))
	}
	// Size study: oracle speedup should not decrease from 64 to 1K
	// entries (more capacity, perfect suppression) — allow small noise.
	right := tables[1]
	mean := right.NumRows() - 1
	or64 := cellF(t, right, mean, 2)
	or1k := cellF(t, right, mean, 6)
	if or1k < or64-1.0 {
		t.Errorf("oracle speedup fell with IT size: 64=%.1f 1K=%.1f", or64, or1k)
	}
}

func TestFigure7Structure(t *testing.T) {
	c := smallCache(t)
	tables, err := Figure7(bg, c)
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	mean := tb.NumRows() - 1
	// Complexity reductions must cost performance without integration...
	rs := cellF(t, tb, mean, 3)
	iw := cellF(t, tb, mean, 5)
	iwrs := cellF(t, tb, mean, 7)
	if rs >= 0 || iw >= 0 || iwrs >= 0 {
		t.Errorf("reduced cores not slower: RS=%.1f IW=%.1f IW+RS=%.1f", rs, iw, iwrs)
	}
	// ...and integration must recover part of the loss.
	rsInt := cellF(t, tb, mean, 4)
	iwInt := cellF(t, tb, mean, 6)
	iwrsInt := cellF(t, tb, mean, 8)
	if rsInt <= rs || iwInt <= iw || iwrsInt <= iwrs {
		t.Errorf("integration did not recover: RS %.1f->%.1f IW %.1f->%.1f IW+RS %.1f->%.1f",
			rs, rsInt, iw, iwInt, iwrs, iwrsInt)
	}
	// IW+RS should be the worst plain configuration.
	if iwrs > rs || iwrs > iw {
		t.Errorf("IW+RS (%.1f) not the worst of RS (%.1f) and IW (%.1f)", iwrs, rs, iw)
	}
}

func TestDiagnosticsStructure(t *testing.T) {
	c := smallCache(t)
	tables, err := Diagnostics(bg, c)
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	mean := tb.NumRows() - 1
	// Integration must reduce executed instructions on average.
	execD := cellF(t, tb, mean, 4)
	if execD >= 0 {
		t.Errorf("executed delta %.1f%% not negative", execD)
	}
	// RS occupancy must fall.
	occB := cellF(t, tb, mean, 6)
	occI := cellF(t, tb, mean, 7)
	if occI >= occB {
		t.Errorf("RS occupancy did not fall: %.1f -> %.1f", occB, occI)
	}
}

func TestAblationsStructure(t *testing.T) {
	c := smallCache(t)
	tables, err := Ablations(bg, c)
	if err != nil {
		t.Fatal(err)
	}
	speed, mis := tables[0], tables[1]
	if speed.NumRows() != 4 || mis.NumRows() != 3 {
		t.Fatalf("rows: %d, %d", speed.NumRows(), mis.NumRows())
	}
	// gen0 must produce at least as many mis-integrations as default.
	for r := 0; r < mis.NumRows(); r++ {
		def, _ := strconv.Atoi(mis.Cell(r, 1))
		g0, _ := strconv.Atoi(mis.Cell(r, 2))
		if g0 < def {
			t.Errorf("%s: gen0 misint %d < default %d", mis.Cell(r, 0), g0, def)
		}
	}
}

func cellF(t *testing.T, tb interface {
	Cell(r, c int) string
}, r, c int) float64 {
	t.Helper()
	s := strings.TrimPrefix(tb.Cell(r, c), "+")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not a number", r, c, tb.Cell(r, c))
	}
	return v
}
