package experiments

import (
	"rix/internal/sim"
	"rix/internal/stats"
)

// Figure7 reproduces the complexity-reduction study: Base (4-way, 40 RS),
// RS (20 reservation stations), IW (3-way issue with a single load/store
// port), and IW+RS — each without integration and with the full +reverse
// configuration under realistic and oracle suppression. Speedups are
// relative to the un-integrated Base machine.
//
// Paper reference points: IW costs 12% and integration recovers to within
// 2% of base; RS costs 10%, recovered to within 1%; IW+RS costs 18%,
// recovered to within 7%.
func Figure7(c *Cache) ([]*stats.Table, error) {
	cores := []string{sim.CoreBase, sim.CoreRS, sim.CoreIW, sim.CoreIWRS}

	var jobs []job
	for _, b := range c.Names() {
		for _, core := range cores {
			jobs = append(jobs, job{b, mustConfig(sim.Options{Core: core, Integration: sim.IntNone})})
			jobs = append(jobs, job{b, mustConfig(sim.Options{Core: core, Integration: sim.IntReverse, Suppression: sim.SuppressLISP})})
			jobs = append(jobs, job{b, mustConfig(sim.Options{Core: core, Integration: sim.IntReverse, Suppression: sim.SuppressOracle})})
		}
	}
	res, err := c.runAll(jobs)
	if err != nil {
		return nil, err
	}

	t := stats.NewTable("Figure 7: reduced-complexity cores, speedup % vs un-integrated Base",
		"bench", "baseIPC",
		"base+int", "RS", "RS+int", "IW", "IW+int", "IW+RS", "IW+RS+int",
		"base+or", "RS+or", "IW+or", "IW+RS+or")
	per := len(cores) * 3
	gm := make([][]float64, 12)
	for i, b := range c.Names() {
		baseIPC := res[i*per].IPC()
		row := []interface{}{b, baseIPC}
		var vals []float64
		// Order: base+int, RS, RS+int, IW, IW+int, IWRS, IWRS+int, then oracles.
		speedup := func(idx int) float64 { return res[i*per+idx].IPC()/baseIPC - 1 }
		vals = append(vals,
			speedup(1),  // base + int(lisp)
			speedup(3),  // RS plain
			speedup(4),  // RS + int
			speedup(6),  // IW plain
			speedup(7),  // IW + int
			speedup(9),  // IW+RS plain
			speedup(10), // IW+RS + int
			speedup(2),  // base + oracle
			speedup(5),  // RS + oracle
			speedup(8),  // IW + oracle
			speedup(11), // IW+RS + oracle
		)
		for vi, v := range vals {
			row = append(row, pct2(v))
			gm[vi] = append(gm[vi], 1+v)
		}
		t.Row(row...)
	}
	grow := []interface{}{"GMean", ""}
	for vi := 0; vi < 11; vi++ {
		grow = append(grow, pct2(stats.GeoMean(gm[vi])-1))
	}
	t.Row(grow...)
	t.Note("paper: RS alone -10%%, IW alone -12%%, IW+RS -18%%; integration recovers to -1%%, -2%%, -7%%")
	return []*stats.Table{t}, nil
}
