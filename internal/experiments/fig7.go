package experiments

import (
	"rix/internal/runner"
	"rix/internal/sim"
	"rix/internal/stats"
)

// fig7Spec reproduces the complexity-reduction study: Base (4-way, 40
// RS), RS (20 reservation stations), IW (3-way issue with a single
// load/store port), and IW+RS — each without integration and with the
// full +reverse configuration under realistic and oracle suppression.
// Speedups are relative to the un-integrated Base machine.
//
// Paper reference points: IW costs 12% and integration recovers to
// within 2% of base; RS costs 10%, recovered to within 1%; IW+RS costs
// 18%, recovered to within 7%.
var fig7Spec = runner.Spec{
	ID:          "fig7",
	Description: "Figure 7: reduced-complexity cores, with and without integration",
	Configs:     fig7Configs(),
	Collect:     collectFig7,
}

var fig7Cores = []string{sim.CoreBase, sim.CoreRS, sim.CoreIW, sim.CoreIWRS}

func fig7Configs() []runner.Config {
	var cfgs []runner.Config
	for _, core := range fig7Cores {
		cfgs = append(cfgs,
			runner.Config{Label: core + "/none", Opt: sim.Options{Core: core, Integration: sim.IntNone}},
			runner.Config{Label: core + "/lisp", Opt: sim.Options{Core: core, Integration: sim.IntReverse, Suppression: sim.SuppressLISP}},
			runner.Config{Label: core + "/or", Opt: sim.Options{Core: core, Integration: sim.IntReverse, Suppression: sim.SuppressOracle}})
	}
	return cfgs
}

func collectFig7(rs *runner.ResultSet) ([]*stats.Table, error) {
	t := stats.NewTable("Figure 7: reduced-complexity cores, speedup % vs un-integrated Base",
		"bench", "baseIPC",
		"base+int", "RS", "RS+int", "IW", "IW+int", "IW+RS", "IW+RS+int",
		"base+or", "RS+or", "IW+or", "IW+RS+or")
	// Column order: base+int, RS, RS+int, IW, IW+int, IWRS, IWRS+int,
	// then the oracle column block.
	cols := []string{
		sim.CoreBase + "/lisp",
		sim.CoreRS + "/none", sim.CoreRS + "/lisp",
		sim.CoreIW + "/none", sim.CoreIW + "/lisp",
		sim.CoreIWRS + "/none", sim.CoreIWRS + "/lisp",
		sim.CoreBase + "/or", sim.CoreRS + "/or",
		sim.CoreIW + "/or", sim.CoreIWRS + "/or",
	}
	gm := make([][]float64, len(cols))
	for _, b := range rs.Benches() {
		baseIPC := rs.Get(b, sim.CoreBase+"/none").IPC()
		row := []interface{}{b, baseIPC}
		for ci, label := range cols {
			v := rs.Get(b, label).IPC()/baseIPC - 1
			row = append(row, pct2(v))
			gm[ci] = append(gm[ci], 1+v)
		}
		t.Row(row...)
	}
	grow := []interface{}{"GMean", ""}
	for ci := range cols {
		grow = append(grow, pct2(stats.GeoMean(gm[ci])-1))
	}
	t.Row(grow...)
	t.Note("paper: RS alone -10%%, IW alone -12%%, IW+RS -18%%; integration recovers to -1%%, -2%%, -7%%")
	return []*stats.Table{t}, nil
}
