package experiments

import (
	"rix/internal/core"
	"rix/internal/runner"
	"rix/internal/sim"
	"rix/internal/stats"
)

// Fig5Benchmarks is the paper's "every other benchmark" subset shown in
// Figure 5.
var Fig5Benchmarks = []string{
	"crafty", "eon.k", "gap", "gzip", "parser", "perl.s", "vortex", "vpr.r",
}

// fig5Spec reproduces the integration-retirement-stream breakdowns of
// Figure 5: instruction Type, integration Distance, result Status at
// integration time, and post-integration Refcount — all under the
// default +reverse configuration with a realistic LISP.
var fig5Spec = runner.Spec{
	ID:          "fig5",
	Description: "Figure 5: integration stream breakdowns (type, distance, status, refcount)",
	Benchmarks:  Fig5Benchmarks,
	Configs: []runner.Config{
		{Label: "+reverse/lisp", Opt: sim.Options{Integration: sim.IntReverse, Suppression: sim.SuppressLISP}},
	},
	Collect: collectFig5,
}

func collectFig5(rs *runner.ResultSet) ([]*stats.Table, error) {
	typ := stats.NewTable("Figure 5 (Type): integration stream by instruction type, % of integrations",
		"bench", "rate%", "load-sp", "load", "ALU", "branch", "FP")
	dist := stats.NewTable("Figure 5 (Distance): rename-stream distance from entry creation, % of integrations",
		"bench", "<4", "<16", "<64", ">=64")
	status := stats.NewTable("Figure 5 (Status): result state at integration time, % of integrations",
		"bench", "rename", "issue", "retire", "shadow/squash")
	ref := stats.NewTable("Figure 5 (Refcount): post-integration reference count, % of register integrations",
		"bench", "=1", "<=3", "<=7", ">7")

	for _, b := range rs.Benches() {
		st := rs.Get(b, "+reverse/lisp")
		tot := float64(st.Integrated)
		if tot == 0 {
			tot = 1
		}
		typ.Row(b, pct(st.IntegrationRate()),
			pctOf(st.IntType[0], tot), pctOf(st.IntType[1], tot),
			pctOf(st.IntType[2], tot), pctOf(st.IntType[3], tot),
			pctOf(st.IntType[4], tot))
		dist.Row(b,
			pctOf(st.IntDistance[0], tot), pctOf(st.IntDistance[1], tot),
			pctOf(st.IntDistance[2], tot), pctOf(st.IntDistance[3], tot))
		status.Row(b,
			pctOf(st.IntStatus[core.StatusRename], tot),
			pctOf(st.IntStatus[core.StatusIssue], tot),
			pctOf(st.IntStatus[core.StatusRetire], tot),
			pctOf(st.IntStatus[core.StatusShadowSquash], tot))
		regTot := float64(st.IntRefcount[0] + st.IntRefcount[1] + st.IntRefcount[2] + st.IntRefcount[3])
		if regTot == 0 {
			regTot = 1
		}
		ref.Row(b,
			pctOf(st.IntRefcount[0], regTot), pctOf(st.IntRefcount[1], regTot),
			pctOf(st.IntRefcount[2], regTot), pctOf(st.IntRefcount[3], regTot))
	}
	dist.Note("paper: <10%% of integrations within 4 instructions, <20%% within 16")
	status.Note("paper: 10-20%% of results integrated before the producer executed")
	ref.Note("paper: ~60%% of integrations share with an active mapping; degrees 2-3 dominate")
	return []*stats.Table{typ, dist, status, ref}, nil
}

func pctOf(n uint64, tot float64) string {
	return pct(float64(n) / tot)
}
