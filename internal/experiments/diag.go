package experiments

import (
	"rix/internal/runner"
	"rix/internal/sim"
	"rix/internal/stats"
)

// diagSpec reproduces the scalar performance diagnostics quoted in §3.2
// and §3.5 of the paper:
//
//   - mispredict resolution latency (paper: 26 -> 23.5 cycles),
//   - fetched-instruction reduction (paper: -0.6%),
//   - executed-instruction reduction (paper: -17%) and loads (-27%),
//   - average reservation-station occupancy (paper: 31 -> 27),
//   - per-type integration rates (loads 27%, stack loads 60%).
var diagSpec = runner.Spec{
	ID:          "diag",
	Description: "§3.2/§3.5 scalar diagnostics: base vs +reverse",
	Configs: []runner.Config{
		{Label: "base", Opt: sim.Options{Integration: sim.IntNone}},
		{Label: "+reverse/lisp", Opt: sim.Options{Integration: sim.IntReverse, Suppression: sim.SuppressLISP}},
	},
	Collect: collectDiag,
}

func collectDiag(rs *runner.ResultSet) ([]*stats.Table, error) {
	t := stats.NewTable("§3.2/§3.5 diagnostics: base vs +reverse",
		"bench", "resolve", "resolve+int", "fetchΔ%", "execΔ%", "loadExecΔ%",
		"RSocc", "RSocc+int", "load-int%", "sp-load-int%")
	var resolveB, resolveI, fetchD, execD, loadD, occB, occI, loadR, spR []float64
	for _, b := range rs.Benches() {
		base, integ := rs.Get(b, "base"), rs.Get(b, "+reverse/lisp")
		fd := float64(integ.Fetched)/float64(base.Fetched) - 1
		ed := float64(integ.Executed)/float64(base.Executed) - 1
		baseLoadsExec := float64(base.LoadsRetired) // loads that executed = retired loads in base
		intLoadsExec := baseLoadsExec - float64(integ.IntType[0]+integ.IntType[1])
		ld := intLoadsExec/baseLoadsExec - 1
		t.Row(b,
			base.MispredictResolutionAvg(), integ.MispredictResolutionAvg(),
			pct2(fd), pct2(ed), pct2(ld),
			base.AvgRSOccupancy(), integ.AvgRSOccupancy(),
			pct(integ.LoadIntegrationRate()), pct(integ.SPLoadIntegrationRate()))
		resolveB = append(resolveB, base.MispredictResolutionAvg())
		resolveI = append(resolveI, integ.MispredictResolutionAvg())
		fetchD = append(fetchD, fd)
		execD = append(execD, ed)
		loadD = append(loadD, ld)
		occB = append(occB, base.AvgRSOccupancy())
		occI = append(occI, integ.AvgRSOccupancy())
		loadR = append(loadR, integ.LoadIntegrationRate())
		spR = append(spR, integ.SPLoadIntegrationRate())
	}
	t.Row("AMean",
		stats.AMean(resolveB), stats.AMean(resolveI),
		pct2(stats.AMean(fetchD)), pct2(stats.AMean(execD)), pct2(stats.AMean(loadD)),
		stats.AMean(occB), stats.AMean(occI),
		pct(stats.AMean(loadR)), pct(stats.AMean(spR)))
	t.Note("paper: resolution 26 -> 23.5, fetched -0.6%%, executed -17%%, loads executed -27%%, RS occupancy 31 -> 27, loads integrate at 27%%, stack loads at 60%%")
	return []*stats.Table{t}, nil
}
