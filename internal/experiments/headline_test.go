package experiments

import (
	"context"
	"testing"

	"rix/internal/runner"
	"rix/internal/sim"
	"rix/internal/stats"
)

// TestPaperHeadline is the repository's thesis as an executable test: on
// the full 16-benchmark suite, the paper's Figure 4 shape must hold —
// integration rate and speedup grow monotonically from squash reuse
// through +general to +reverse, the +reverse configuration lands near the
// paper's 17% rate / 8% speedup, and the call-poor benchmarks show no
// reverse integration while the call-rich ones exceed 5%.
func TestPaperHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite headline check (~2 minutes)")
	}
	c, err := NewCache(nil) // full paper suite
	if err != nil {
		t.Fatal(err)
	}

	// An ad-hoc (unregistered) spec: baseline plus each extension stack
	// under its default suppression.
	spec := runner.Spec{
		ID:      "headline",
		Configs: []runner.Config{{Label: "base", Opt: sim.Options{Integration: sim.IntNone}}},
	}
	for _, p := range sim.IntegrationPresets() {
		spec.Configs = append(spec.Configs, runner.Config{Label: p, Opt: sim.Options{Integration: p}})
	}
	rs, err := c.Gather(context.Background(), &spec)
	if err != nil {
		t.Fatal(err)
	}

	type res struct{ rate, reverse, speedup float64 }
	means := map[string]res{}
	perBench := map[string]map[string]res{}
	for _, preset := range sim.IntegrationPresets() {
		var rates, sps []float64
		for _, b := range rs.Benches() {
			base, st := rs.Get(b, "base"), rs.Get(b, preset)
			r := res{
				rate:    st.IntegrationRate(),
				reverse: st.ReverseRate(),
				speedup: st.IPC() / base.IPC(),
			}
			if perBench[b] == nil {
				perBench[b] = map[string]res{}
			}
			perBench[b][preset] = r
			rates = append(rates, r.rate)
			sps = append(sps, r.speedup)
		}
		means[preset] = res{rate: stats.AMean(rates), speedup: stats.GeoMean(sps)}
	}

	sq, gen, rev := means[sim.IntSquash], means[sim.IntGeneral], means[sim.IntReverse]

	// Monotone mean growth across the extension stack.
	if !(sq.rate < gen.rate && gen.rate < rev.rate) {
		t.Errorf("rate not monotone: squash %.3f, general %.3f, reverse %.3f",
			sq.rate, gen.rate, rev.rate)
	}
	if !(sq.speedup < gen.speedup && gen.speedup < rev.speedup) {
		t.Errorf("speedup not monotone: squash %.3f, general %.3f, reverse %.3f",
			sq.speedup, gen.speedup, rev.speedup)
	}

	// The headline point: +reverse near the paper's 17% / 8%.
	if rev.rate < 0.14 || rev.rate > 0.24 {
		t.Errorf("+reverse mean rate %.1f%%, want ~17%% (14-24)", 100*rev.rate)
	}
	if rev.speedup < 1.05 {
		t.Errorf("+reverse mean speedup %.1f%%, want >= 5%% (paper: 8%%)",
			100*(rev.speedup-1))
	}

	// Class structure: call-poor benchmarks must exploit no reverse
	// integration (paper §3.2: bzip2, gzip, vpr.r); call-rich ones must.
	for _, b := range []string{"bzip2", "gzip", "vpr.r", "vpr.p"} {
		if r := perBench[b][sim.IntReverse]; r.reverse > 0.005 {
			t.Errorf("call-poor %s has reverse rate %.1f%%", b, 100*r.reverse)
		}
	}
	for _, b := range []string{"gap", "gcc", "perl.d", "perl.s", "vortex", "eon.k", "crafty"} {
		if r := perBench[b][sim.IntReverse]; r.reverse < 0.03 {
			t.Errorf("call-rich %s has reverse rate only %.1f%%", b, 100*r.reverse)
		}
	}

	// mcf benefits least (the paper's memory-bound caveat).
	mcf := perBench["mcf"][sim.IntReverse]
	for b, m := range perBench {
		if b == "mcf" {
			continue
		}
		if m[sim.IntReverse].speedup < mcf.speedup-0.02 {
			t.Errorf("%s (%.3f) gains notably less than memory-bound mcf (%.3f)",
				b, m[sim.IntReverse].speedup, mcf.speedup)
		}
	}
}
