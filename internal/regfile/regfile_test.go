package regfile

import (
	"math/rand"
	"testing"
)

func newGeneral(t *testing.T) *File {
	t.Helper()
	return New(Config{NumRegs: 64, GenBits: 4, RefBits: 4, GeneralMode: true})
}

func newSquash(t *testing.T) *File {
	t.Helper()
	return New(Config{NumRegs: 64, GenBits: 4, RefBits: 4, GeneralMode: false})
}

func TestAllocBasics(t *testing.T) {
	f := newGeneral(t)
	p, ok := f.Alloc()
	if !ok || p == ZeroReg {
		t.Fatalf("Alloc = %d, %v", p, ok)
	}
	if f.RefCount(p) != 1 || f.Ready(p) || !f.Valid(p) {
		t.Errorf("fresh reg state: ref=%d ready=%v valid=%v", f.RefCount(p), f.Ready(p), f.Valid(p))
	}
	f.SetReady(p, 42)
	if !f.Ready(p) || f.Value(p) != 42 {
		t.Errorf("SetReady failed")
	}
}

func TestZeroRegPinned(t *testing.T) {
	f := newGeneral(t)
	if !f.Ready(ZeroReg) || f.Value(ZeroReg) != 0 || f.RefCount(ZeroReg) != 1 {
		t.Error("zero register not pinned ready/zero")
	}
	f.SetReady(ZeroReg, 99) // must be ignored
	if f.Value(ZeroReg) != 0 {
		t.Error("zero register value mutated")
	}
	f.Release(ZeroReg, CauseShadow) // must be a no-op
	if f.RefCount(ZeroReg) != 1 {
		t.Error("zero register released")
	}
	// Zero register must never be handed out by Alloc.
	for i := 0; i < f.NumRegs()*2; i++ {
		p, ok := f.Alloc()
		if !ok {
			break
		}
		if p == ZeroReg {
			t.Fatal("Alloc returned the zero register")
		}
	}
}

func TestTwoZeroReferenceStates(t *testing.T) {
	f := newGeneral(t)

	// Squash of an executed producer -> 0/T, integration-eligible.
	p1, _ := f.Alloc()
	g1 := f.Gen(p1)
	f.SetReady(p1, 7)
	f.Release(p1, CauseSquash)
	if !f.Eligible(p1, g1) {
		t.Error("executed+squashed register must be 0/T eligible")
	}

	// Squash of an un-executed producer -> 0/F, never eligible (the
	// deadlock-avoidance state of §2.2).
	p2, _ := f.Alloc()
	g2 := f.Gen(p2)
	f.Release(p2, CauseSquash)
	if f.Eligible(p2, g2) {
		t.Error("un-executed squashed register must be 0/F")
	}

	// Shadowed retired value in general mode -> 0/T.
	p3, _ := f.Alloc()
	g3 := f.Gen(p3)
	f.SetReady(p3, 9)
	f.Release(p3, CauseShadow)
	if !f.Eligible(p3, g3) {
		t.Error("general mode: shadowed register must stay eligible")
	}
}

func TestSquashOnlyModeShadowFrees(t *testing.T) {
	f := newSquash(t)
	p, _ := f.Alloc()
	g := f.Gen(p)
	f.SetReady(p, 7)
	f.Release(p, CauseShadow)
	if f.Eligible(p, g) {
		t.Error("squash-only mode: shadowed register must be 0/F")
	}

	// Squashed executed register IS eligible in squash-only mode.
	p2, _ := f.Alloc()
	g2 := f.Gen(p2)
	f.SetReady(p2, 8)
	f.Release(p2, CauseSquash)
	if !f.Eligible(p2, g2) {
		t.Error("squash-only mode: squashed register must be eligible")
	}

	// ...but an actively mapped register is NOT (no simultaneous sharing
	// in the baseline).
	p3, _ := f.Alloc()
	g3 := f.Gen(p3)
	f.SetReady(p3, 9)
	if f.Eligible(p3, g3) {
		t.Error("squash-only mode: active register must not be eligible")
	}
}

func TestGeneralModeSimultaneousSharing(t *testing.T) {
	f := newGeneral(t)
	p, _ := f.Alloc()
	g := f.Gen(p)
	f.SetReady(p, 7)
	if !f.Eligible(p, g) {
		t.Fatal("active register must be eligible in general mode")
	}
	if !f.Integrate(p) || !f.Integrate(p) {
		t.Fatal("integrations failed")
	}
	if f.RefCount(p) != 3 {
		t.Errorf("refcount = %d, want 3", f.RefCount(p))
	}
	// Partial dissolution keeps the register shared.
	f.Release(p, CauseSquash)
	if f.RefCount(p) != 2 || !f.Eligible(p, g) {
		t.Error("partial release broke sharing")
	}
	f.Release(p, CauseShadow)
	f.Release(p, CauseSquash)
	if f.RefCount(p) != 0 || !f.Eligible(p, g) {
		t.Error("full dissolution of executed reg must leave 0/T")
	}
}

func TestInFlightIntegrationEligible(t *testing.T) {
	// Integrating a not-yet-executed in-flight result is legal in general
	// mode (the "rename" status category of Figure 5).
	f := newGeneral(t)
	p, _ := f.Alloc()
	g := f.Gen(p)
	if !f.Eligible(p, g) {
		t.Error("in-flight (not ready) register must be eligible in general mode")
	}
}

func TestGenerationCounters(t *testing.T) {
	f := newGeneral(t)
	p, _ := f.Alloc()
	gOld := f.Gen(p)
	f.SetReady(p, 1)
	f.Release(p, CauseSquash) // 0/T
	// Drain the free queue until p is reallocated.
	seen := false
	for i := 0; i < f.NumRegs()*2 && !seen; i++ {
		q, ok := f.Alloc()
		if !ok {
			t.Fatal("exhausted before reallocating p")
		}
		seen = q == p
	}
	if !seen {
		t.Fatal("p never reallocated")
	}
	if f.Gen(p) == gOld {
		t.Error("generation did not change on reallocation")
	}
	if f.Eligible(p, gOld) {
		t.Error("stale generation still eligible")
	}
}

func TestGenBitsZeroDisables(t *testing.T) {
	f := New(Config{NumRegs: 64, GenBits: 0, RefBits: 4, GeneralMode: true})
	p, _ := f.Alloc()
	if f.Gen(p) != 0 {
		t.Error("gen must be 0 with 0 bits")
	}
	f.SetReady(p, 1)
	f.Release(p, CauseSquash)
	for i := 0; i < 200; i++ {
		q, ok := f.Alloc()
		if !ok {
			break
		}
		if q == p && f.Gen(p) != 0 {
			t.Error("gen changed despite 0-bit config")
		}
	}
}

func TestRefCounterSaturation(t *testing.T) {
	f := New(Config{NumRegs: 64, GenBits: 4, RefBits: 2, GeneralMode: true})
	p, _ := f.Alloc() // ref 1
	f.SetReady(p, 1)
	if !f.Integrate(p) || !f.Integrate(p) {
		t.Fatal("integrations to 3 must succeed")
	}
	if f.Integrate(p) {
		t.Error("integration past saturation (2-bit => max 3) must fail")
	}
	if f.RefSaturated != 1 {
		t.Errorf("RefSaturated = %d", f.RefSaturated)
	}
}

func TestAllocExhaustion(t *testing.T) {
	f := New(Config{NumRegs: 34, GenBits: 4, RefBits: 4, GeneralMode: true})
	n := 0
	for {
		_, ok := f.Alloc()
		if !ok {
			break
		}
		n++
	}
	if n != 33 { // 34 minus pinned zero register
		t.Errorf("allocated %d, want 33", n)
	}
}

func TestStaleFreeQueueEntriesSkipped(t *testing.T) {
	f := newGeneral(t)
	p, _ := f.Alloc()
	g := f.Gen(p)
	f.SetReady(p, 5)
	f.Release(p, CauseShadow) // 0/T, now queued
	// Re-share it via integration while it waits in the queue.
	if !f.Eligible(p, g) || !f.Integrate(p) {
		t.Fatal("re-integration of queued register failed")
	}
	// Alloc must never hand out p while it is mapped.
	for i := 0; i < f.NumRegs()*2; i++ {
		q, ok := f.Alloc()
		if !ok {
			break
		}
		if q == p {
			t.Fatal("Alloc returned a register with live references")
		}
	}
}

func TestReleaseUnmappedPanics(t *testing.T) {
	f := newGeneral(t)
	p, _ := f.Alloc()
	f.Release(p, CauseSquash)
	defer func() {
		if recover() == nil {
			t.Error("double release did not panic")
		}
	}()
	f.Release(p, CauseSquash)
}

// Randomized audit: a model of live mappings tracks every operation; the
// file's reference counts must match exactly, and Alloc must never return
// a live register.
func TestRandomizedRefcountAudit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := New(Config{NumRegs: 48, GenBits: 4, RefBits: 4, GeneralMode: true})
	live := map[PReg]int{}
	total := 0
	var liveList []PReg

	addMapping := func(p PReg) {
		live[p]++
		total++
		liveList = append(liveList, p)
	}
	dropRandom := func(cause ReleaseCause) {
		if len(liveList) == 0 {
			return
		}
		i := rng.Intn(len(liveList))
		p := liveList[i]
		liveList[i] = liveList[len(liveList)-1]
		liveList = liveList[:len(liveList)-1]
		live[p]--
		total--
		f.Release(p, cause)
	}

	for step := 0; step < 20000; step++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			if p, ok := f.Alloc(); ok {
				if live[p] != 0 {
					t.Fatalf("step %d: Alloc returned live p%d", step, p)
				}
				addMapping(p)
				if rng.Intn(2) == 0 {
					f.SetReady(p, rng.Uint64())
				}
			}
		case 4, 5, 6:
			if len(liveList) > 0 {
				p := liveList[rng.Intn(len(liveList))]
				if f.Eligible(p, f.Gen(p)) && f.Integrate(p) {
					addMapping(p)
				}
			}
		case 7, 8:
			dropRandom(CauseSquash)
		case 9:
			dropRandom(CauseShadow)
		}
		if f.RefSum() != total {
			t.Fatalf("step %d: refsum %d != model %d", step, f.RefSum(), total)
		}
	}
	// Drain everything; no leaks.
	for len(liveList) > 0 {
		dropRandom(CauseSquash)
	}
	if err := f.CheckLeaks(0); err != nil {
		t.Error(err)
	}
}

func TestEligibleRejectsBadArgs(t *testing.T) {
	f := newGeneral(t)
	if f.Eligible(NoReg, 0) {
		t.Error("NoReg eligible")
	}
	if f.Eligible(PReg(9999), 0) {
		t.Error("out-of-range eligible")
	}
}
