// Package regfile implements the physical register file and its state
// vector. The state vector is the paper's central extension-1 mechanism:
// true reference counts with a valid bit distinguishing the two
// zero-reference states (0/F "free, garbage" vs 0/T "unused but
// integration-eligible"), plus per-register generation counters that
// suppress register mis-integrations (§2.2).
package regfile

import "fmt"

// PReg names a physical register.
type PReg uint16

// NoReg is the absent-register sentinel.
const NoReg PReg = 0xffff

// Mode selects the register-state discipline.
type Mode uint8

const (
	// ModeSquashOnly is the baseline squash-reuse discipline: only
	// registers unmapped by a squash (with a computed value) are
	// integration-eligible; retirement-shadowed registers become plain
	// free registers.
	ModeSquashOnly Mode = iota
	// ModeGeneral is extension 1: every register holding a useful value is
	// integration-eligible, including actively mapped ones (simultaneous
	// sharing).
	ModeGeneral
)

// ReleaseCause says why a mapping to a register was dissolved.
type ReleaseCause uint8

const (
	// CauseSquash: the mapping was undone by mis-speculation recovery.
	CauseSquash ReleaseCause = iota
	// CauseShadow: the mapping was architecturally overwritten at the
	// retirement of a newer producer of the same logical register.
	CauseShadow
)

// File is the physical register file plus state vector.
type File struct {
	mode    Mode
	genMask uint8

	vals   []uint64
	ready  []bool
	refcnt []uint16
	valid  []bool
	gen    []uint8

	// FIFO reclamation (paper: circular/FIFO register reclamation
	// approximates coordination with LRU IT replacement).
	freeQ  []PReg
	qHead  int
	qTail  int
	qLen   int
	queued []bool

	// freeCount tracks zero-reference registers incrementally so the
	// rename stage's availability pre-check is O(1) instead of a scan of
	// the whole state vector (NumFree was ~20% of simulation time).
	freeCount int

	refMax uint16 // saturation point for reference counters

	// Stats.
	Allocations  uint64
	Integrations uint64
	RefSaturated uint64 // integrations refused due to a saturated counter
}

// Config sizes the file.
type Config struct {
	NumRegs     int
	GenBits     uint // generation counter width; 0 disables (ablation)
	RefBits     uint // reference counter width; 0 means unbounded
	GeneralMode bool
}

// ZeroReg is the physical register permanently holding zero, mapped by the
// architectural zero register.
const ZeroReg PReg = 0

// New builds a register file. Register 0 is pinned as the zero register:
// always ready, value 0, reference count held at 1, never reclaimed.
func New(cfg Config) *File {
	if cfg.NumRegs < 34 {
		panic("regfile: need at least 34 physical registers")
	}
	f := &File{
		mode:   ModeSquashOnly,
		vals:   make([]uint64, cfg.NumRegs),
		ready:  make([]bool, cfg.NumRegs),
		refcnt: make([]uint16, cfg.NumRegs),
		valid:  make([]bool, cfg.NumRegs),
		gen:    make([]uint8, cfg.NumRegs),
		freeQ:  make([]PReg, cfg.NumRegs),
		queued: make([]bool, cfg.NumRegs),
	}
	if cfg.GeneralMode {
		f.mode = ModeGeneral
	}
	if cfg.GenBits > 8 {
		cfg.GenBits = 8
	}
	f.genMask = uint8(1<<cfg.GenBits - 1)
	if cfg.RefBits == 0 || cfg.RefBits > 15 {
		f.refMax = 1<<15 - 1
	} else {
		f.refMax = 1<<cfg.RefBits - 1
	}
	f.ready[ZeroReg] = true
	f.valid[ZeroReg] = true
	f.refcnt[ZeroReg] = 1
	for p := 1; p < cfg.NumRegs; p++ {
		f.push(PReg(p))
	}
	f.freeCount = cfg.NumRegs - 1
	return f
}

// NumRegs returns the file size.
func (f *File) NumRegs() int { return len(f.vals) }

// Mode returns the active state discipline.
func (f *File) Mode() Mode { return f.mode }

func (f *File) push(p PReg) {
	if f.queued[p] {
		return
	}
	f.queued[p] = true
	f.freeQ[f.qTail] = p
	f.qTail = (f.qTail + 1) % len(f.freeQ)
	f.qLen++
}

// Alloc claims a free physical register for a new result, bumping its
// generation counter (a reallocation invalidates all stale IT entries that
// name it). ok is false when no register is free.
func (f *File) Alloc() (PReg, bool) {
	for f.qLen > 0 {
		p := f.freeQ[f.qHead]
		f.qHead = (f.qHead + 1) % len(f.freeQ)
		f.qLen--
		f.queued[p] = false
		if f.refcnt[p] != 0 {
			// Stale queue entry: the register was re-shared via
			// integration while waiting for reallocation.
			continue
		}
		f.refcnt[p] = 1
		f.ready[p] = false
		f.valid[p] = true
		f.vals[p] = 0
		f.gen[p] = (f.gen[p] + 1) & f.genMask
		f.freeCount--
		f.Allocations++
		return p, true
	}
	return NoReg, false
}

// Eligible reports whether p may be integrated by a new mapping whose IT
// entry recorded generation g. In squash-only mode, only zero-reference
// valid (squashed) registers qualify; in general mode, any valid register
// qualifies, including in-flight and retired ones.
func (f *File) Eligible(p PReg, g uint8) bool {
	if p == NoReg || int(p) >= len(f.vals) || !f.valid[p] {
		return false
	}
	if f.gen[p]&f.genMask != g&f.genMask {
		return false
	}
	if f.mode == ModeSquashOnly && f.refcnt[p] != 0 {
		return false
	}
	return true
}

// Integrate adds a mapping to p (reference increment). It fails when the
// reference counter is saturated, in which case the caller must allocate a
// fresh register instead (paper §3.3, Refcount discussion).
func (f *File) Integrate(p PReg) bool {
	if f.refcnt[p] >= f.refMax {
		f.RefSaturated++
		return false
	}
	if f.refcnt[p] == 0 && p != ZeroReg {
		f.freeCount--
	}
	f.refcnt[p]++
	f.Integrations++
	return true
}

// Release removes one mapping to p. When the last mapping disappears the
// register enters one of the two zero-reference states: 0/T (valid,
// integration-eligible — it still holds a useful computed value) or 0/F
// (garbage). A squashed un-executed result and — under squash-only mode —
// a shadowed result become 0/F.
func (f *File) Release(p PReg, cause ReleaseCause) {
	if p == ZeroReg || p == NoReg {
		return
	}
	if f.refcnt[p] == 0 {
		panic(fmt.Sprintf("regfile: release of unmapped p%d", p))
	}
	f.refcnt[p]--
	if f.refcnt[p] > 0 {
		return
	}
	f.freeCount++
	switch {
	case !f.ready[p]:
		f.valid[p] = false // squashed before executing: garbage
	case f.mode == ModeSquashOnly && cause == CauseShadow:
		f.valid[p] = false // baseline: architectural overwrite frees outright
	default:
		// keep valid: 0/T, integration-eligible
	}
	f.push(p)
}

// SetReady publishes the computed value of p.
func (f *File) SetReady(p PReg, v uint64) {
	if p == ZeroReg || p == NoReg {
		return
	}
	f.vals[p] = v
	f.ready[p] = true
}

// Ready reports whether p's value has been computed.
func (f *File) Ready(p PReg) bool { return p != NoReg && f.ready[p] }

// Value reads p's value (only meaningful when Ready).
func (f *File) Value(p PReg) uint64 { return f.vals[p] }

// Gen returns p's current generation (masked to the configured width).
func (f *File) Gen(p PReg) uint8 {
	if p == NoReg {
		return 0
	}
	return f.gen[p] & f.genMask
}

// RefCount returns the number of active mappings to p.
func (f *File) RefCount(p PReg) uint16 { return f.refcnt[p] }

// Valid reports p's valid bit.
func (f *File) Valid(p PReg) bool { return p != NoReg && f.valid[p] }

// NumFree reports zero-reference registers (both 0/F and 0/T); they are
// all claimable by Alloc. Maintained incrementally — the rename stage
// consults it for every destination-writing instruction.
func (f *File) NumFree() int { return f.freeCount }

// RefSum sums all reference counts (excluding the pinned zero register);
// tests use it to audit against the set of live mappings.
func (f *File) RefSum() int {
	n := 0
	for p := 1; p < len(f.refcnt); p++ {
		n += int(f.refcnt[p])
	}
	return n
}

// CheckLeaks verifies that exactly the expected number of mappings are
// live. It returns an error naming the first inconsistent register.
func (f *File) CheckLeaks(expected int) error {
	if got := f.RefSum(); got != expected {
		return fmt.Errorf("regfile: %d live mappings, expected %d", got, expected)
	}
	return nil
}
