// Package emu implements the architectural (functional) emulator for the
// rix ISA. It is the golden model: workloads are validated against it, the
// pipeline's DIVA checker compares retiring results to its trace, and the
// oracle mis-integration suppressor consults its values.
package emu

import (
	"fmt"
	"strconv"

	"rix/internal/isa"
	"rix/internal/prog"
)

// Syscall numbers (function code in v0, argument in a0).
const (
	SysExit   = 0 // exit with code a0
	SysPutInt = 1 // append decimal a0 and '\n' to output
	SysPutc   = 2 // append byte a0 to output
)

// Emulator executes a program architecturally, one instruction per Step.
type Emulator struct {
	Prog *prog.Program
	Mem  *Memory
	Regs [isa.NumLogical]uint64
	PC   uint64

	Halted   bool
	ExitCode uint64
	Output   []byte
	Count    uint64 // retired instruction count
}

// New loads the program: data image mapped, SP at StackTop, GP at the data
// base, PC at the entry point.
func New(p *prog.Program) *Emulator {
	e := &Emulator{Prog: p, Mem: NewMemory(), PC: p.Entry}
	e.Mem.LoadImage(p.DataBase, p.Data)
	e.Regs[isa.RegSP] = p.StackTop
	e.Regs[isa.RegGP] = p.DataBase
	return e
}

// TraceRec records the architectural effect of one dynamic instruction:
// the destination value (or store data), the effective address of memory
// operations, and the position of the instruction in the text segment.
// A slice of TraceRecs is the golden trace the pipeline validates against.
type TraceRec struct {
	CodeIdx uint32 // index into Prog.Code; PC = CodeBase + 4*CodeIdx
	Value   uint64 // destination result, or store data for stores
	Addr    uint64 // effective address for loads/stores, else 0
}

// PC returns the program counter of the traced instruction.
func (r TraceRec) PC(p *prog.Program) uint64 { return p.PCOf(int(r.CodeIdx)) }

// ErrBadPC is returned when architectural execution leaves the text
// segment — always a program or simulator bug on the correct path.
type ErrBadPC struct{ PC uint64 }

func (e *ErrBadPC) Error() string {
	return fmt.Sprintf("emu: PC %#x outside text segment", e.PC)
}

// Step executes one instruction and returns its trace record.
//
//rix:hotpath
func (e *Emulator) Step() (TraceRec, error) {
	if e.Halted {
		return TraceRec{}, fmt.Errorf("emu: step after halt") //rix:alloc-ok — terminal error path
	}
	idx, ok := e.Prog.CodeIndex(e.PC)
	if !ok {
		return TraceRec{}, &ErrBadPC{e.PC} //rix:alloc-ok — terminal error path
	}
	in := e.Prog.Code[idx]
	rec := TraceRec{CodeIdx: uint32(idx)}
	next := e.PC + isa.InstrBytes

	a := e.Regs[in.Ra]
	b := e.Regs[in.Rb]
	old := e.Regs[in.Rd]

	switch in.Op.ClassOf() {
	case isa.ClassNop:

	case isa.ClassIntALU, isa.ClassIntMul, isa.ClassFP:
		rec.Value = isa.EvalOp(in.Op, a, b, old, in.Imm)
		e.setReg(in.Rd, rec.Value)

	case isa.ClassLoad:
		addr := isa.EffAddr(a, in.Imm)
		rec.Addr = addr
		if in.Op == isa.LDQ {
			rec.Value = e.Mem.Read64(addr)
		} else {
			rec.Value = e.Mem.Read32(addr)
		}
		e.setReg(in.Rd, rec.Value)

	case isa.ClassStore:
		addr := isa.EffAddr(a, in.Imm)
		rec.Addr = addr
		rec.Value = b
		if in.Op == isa.STQ {
			e.Mem.Write64(addr, b)
		} else {
			e.Mem.Write32(addr, b)
		}

	case isa.ClassBranch:
		if isa.EvalBranch(in.Op, a) {
			next = in.Target(e.PC)
			rec.Value = 1
		}

	case isa.ClassJumpDirect:
		next = in.Target(e.PC)

	case isa.ClassCallDirect:
		rec.Value = e.PC + isa.InstrBytes
		e.setReg(in.Rd, rec.Value)
		next = in.Target(e.PC)

	case isa.ClassCallIndirect:
		rec.Value = e.PC + isa.InstrBytes
		target := b
		e.setReg(in.Rd, rec.Value)
		next = target

	case isa.ClassJumpIndirect, isa.ClassRet:
		next = b

	case isa.ClassSyscall:
		e.syscall()
	}

	e.PC = next
	e.Count++
	return rec, nil
}

func (e *Emulator) setReg(r isa.Reg, v uint64) {
	if r != isa.RegZero {
		e.Regs[r] = v
	}
}

func (e *Emulator) syscall() {
	fn := e.Regs[isa.RegV0]
	arg := e.Regs[isa.RegA0]
	switch fn {
	case SysExit:
		e.Halted = true
		e.ExitCode = arg
	case SysPutInt:
		e.Output = strconv.AppendInt(e.Output, int64(arg), 10)
		e.Output = append(e.Output, '\n')
	case SysPutc:
		e.Output = append(e.Output, byte(arg))
	default:
		// Unknown syscalls are no-ops, mirroring the paper's OS-expanded
		// system calls that the core never sees.
	}
}

// Run executes until halt or the instruction budget is exhausted.
func (e *Emulator) Run(maxInstrs uint64) error {
	for !e.Halted && e.Count < maxInstrs {
		if _, err := e.Step(); err != nil {
			return err
		}
	}
	if !e.Halted {
		return fmt.Errorf("emu: %s did not halt within %d instructions", e.Prog.Name, maxInstrs)
	}
	return nil
}

// Trace executes until halt, recording the golden trace. The returned
// slice has one record per retired instruction, in program order. It is
// the materialized convenience over Stream + Materialize; long traces
// should stay streaming via Stream.
func Trace(p *prog.Program, maxInstrs uint64) ([]TraceRec, *Emulator, error) {
	s := Stream(p, maxInstrs)
	recs, err := Materialize(s)
	if err != nil {
		return nil, nil, err
	}
	return recs, s.Emulator(), nil
}
