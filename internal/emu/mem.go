package emu

// Memory is a sparse, paged, little-endian 64-bit address space. Reads of
// unmapped memory return zero without allocating; writes allocate pages on
// demand. It serves as both the functional emulator's memory and the
// pipeline's architectural memory image.
//
// Snapshots are copy-on-write: State and Clone share the resident page
// arrays with the new snapshot/copy instead of duplicating them, and the
// first write to a shared page afterwards clones just that page. Sharing
// is tracked per page with an epoch counter — a page is privately
// writable only when its epoch matches the memory's current epoch, and
// every snapshot or clone bumps the epoch, instantly demoting all pages
// to shared. Shared page arrays are never written again by any owner, so
// a snapshot handed to another goroutine is race-free without locks.
//
// One-entry read and write caches short-circuit the map lookups on the
// common same-page access streak (stack traffic, sequential buffers);
// both are derived state and never serialized. The write cache
// additionally certifies that its page is already private in the current
// epoch, keeping the copy-on-write check off the hot write path.
type Memory struct {
	pages   map[uint64]*page
	epochs  map[uint64]uint64 // page number → epoch at which it became private
	epoch   uint64
	lastPN  uint64
	last    *page
	lastWPN uint64
	lastW   *page
}

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

type page [pageSize]byte

// NewMemory returns an empty address space.
func NewMemory() *Memory {
	return &Memory{
		pages:  make(map[uint64]*page),
		epochs: make(map[uint64]uint64),
	}
}

// LoadImage copies a byte image to base.
func (m *Memory) LoadImage(base uint64, img []byte) {
	for i, b := range img {
		m.Write8(base+uint64(i), b)
	}
}

// lookup returns the page holding addr, or nil when unmapped. The page
// may be shared with snapshots; callers must not write through it.
func (m *Memory) lookup(pn uint64) *page {
	if m.last != nil && m.lastPN == pn {
		return m.last
	}
	p := m.pages[pn]
	if p != nil {
		m.lastPN, m.last = pn, p
	}
	return p
}

// ensureWritable returns a privately owned page for pn, allocating an
// empty one if unmapped and cloning a shared one on first write after a
// snapshot. Both caches are pointed at the (possibly new) private page so
// the streak path never re-checks the epoch.
func (m *Memory) ensureWritable(pn uint64) *page {
	if m.lastW != nil && m.lastWPN == pn {
		return m.lastW
	}
	p := m.pages[pn]
	switch {
	case p == nil:
		p = new(page)
		m.pages[pn] = p
		m.epochs[pn] = m.epoch
	case m.epochs[pn] != m.epoch:
		np := new(page)
		*np = *p
		m.pages[pn] = np
		m.epochs[pn] = m.epoch
		p = np
	}
	m.lastPN, m.last = pn, p
	m.lastWPN, m.lastW = pn, p
	return p
}

// Read8 reads one byte.
func (m *Memory) Read8(addr uint64) byte {
	p := m.lookup(addr >> pageShift)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// Write8 writes one byte, allocating the page if needed.
func (m *Memory) Write8(addr uint64, v byte) {
	m.ensureWritable(addr >> pageShift)[addr&pageMask] = v
}

// Read64 reads a little-endian 64-bit word (no alignment requirement; the
// fast path handles the aligned, single-page case).
func (m *Memory) Read64(addr uint64) uint64 {
	if addr&7 == 0 {
		if p := m.lookup(addr >> pageShift); p != nil {
			off := addr & pageMask
			b := p[off : off+8 : off+8]
			return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
				uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
		}
		return 0
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(m.Read8(addr+uint64(i))) << (8 * i)
	}
	return v
}

// Write64 writes a little-endian 64-bit word.
func (m *Memory) Write64(addr uint64, v uint64) {
	if addr&7 == 0 {
		p := m.ensureWritable(addr >> pageShift)
		off := addr & pageMask
		b := p[off : off+8 : off+8]
		b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		b[4], b[5], b[6], b[7] = byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56)
		return
	}
	for i := 0; i < 8; i++ {
		m.Write8(addr+uint64(i), byte(v>>(8*i)))
	}
}

// Read32 reads a little-endian 32-bit word, sign-extended to 64 bits
// (LDL semantics).
func (m *Memory) Read32(addr uint64) uint64 {
	var v uint32
	for i := 0; i < 4; i++ {
		v |= uint32(m.Read8(addr+uint64(i))) << (8 * i)
	}
	return uint64(int64(int32(v)))
}

// Write32 writes the low 32 bits of v.
func (m *Memory) Write32(addr uint64, v uint64) {
	for i := 0; i < 4; i++ {
		m.Write8(addr+uint64(i), byte(v>>(8*i)))
	}
}

// PageCount reports the number of resident pages (for leak checks in
// tests).
func (m *Memory) PageCount() int { return len(m.pages) }

// Clone returns an independent copy of the address space in O(resident
// pages) map work: both sides keep the same page arrays and each clones
// a page privately on its next write to it. Clone mutates the receiver's
// sharing bookkeeping and must be called from the goroutine that owns
// it; the returned copy can then move to any other goroutine.
func (m *Memory) Clone() *Memory {
	m.epoch++
	m.lastWPN, m.lastW = 0, nil
	c := &Memory{
		pages: make(map[uint64]*page, len(m.pages)),
		// Left empty: a missing entry reads as epoch 0, below the
		// clone's starting epoch, so every inherited page is shared.
		epochs: make(map[uint64]uint64, len(m.pages)),
		epoch:  1,
	}
	for pn, p := range m.pages {
		c.pages[pn] = p //rix:shared — copy-on-write: either side clones the page before its next write
	}
	return c
}
