package emu

// Memory is a sparse, paged, little-endian 64-bit address space. Reads of
// unmapped memory return zero without allocating; writes allocate pages on
// demand. It serves as both the functional emulator's memory and the
// pipeline's architectural memory image.
//
// A one-entry page cache short-circuits the map lookup on the common
// same-page access streak (stack traffic, sequential buffers); it is
// derived state and never serialized.
type Memory struct {
	pages  map[uint64]*page
	lastPN uint64
	last   *page
}

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

type page [pageSize]byte

// NewMemory returns an empty address space.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*page)}
}

// LoadImage copies a byte image to base.
func (m *Memory) LoadImage(base uint64, img []byte) {
	for i, b := range img {
		m.Write8(base+uint64(i), b)
	}
}

// lookup returns the page holding addr, or nil when unmapped.
func (m *Memory) lookup(pn uint64) *page {
	if m.last != nil && m.lastPN == pn {
		return m.last
	}
	p := m.pages[pn]
	if p != nil {
		m.lastPN, m.last = pn, p
	}
	return p
}

// ensure returns the page holding addr, allocating it if needed.
func (m *Memory) ensure(pn uint64) *page {
	if p := m.lookup(pn); p != nil {
		return p
	}
	p := new(page)
	m.pages[pn] = p
	m.lastPN, m.last = pn, p
	return p
}

// Read8 reads one byte.
func (m *Memory) Read8(addr uint64) byte {
	p := m.lookup(addr >> pageShift)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// Write8 writes one byte, allocating the page if needed.
func (m *Memory) Write8(addr uint64, v byte) {
	m.ensure(addr >> pageShift)[addr&pageMask] = v
}

// Read64 reads a little-endian 64-bit word (no alignment requirement; the
// fast path handles the aligned, single-page case).
func (m *Memory) Read64(addr uint64) uint64 {
	if addr&7 == 0 {
		if p := m.lookup(addr >> pageShift); p != nil {
			off := addr & pageMask
			b := p[off : off+8 : off+8]
			return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
				uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
		}
		return 0
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(m.Read8(addr+uint64(i))) << (8 * i)
	}
	return v
}

// Write64 writes a little-endian 64-bit word.
func (m *Memory) Write64(addr uint64, v uint64) {
	if addr&7 == 0 {
		p := m.ensure(addr >> pageShift)
		off := addr & pageMask
		b := p[off : off+8 : off+8]
		b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		b[4], b[5], b[6], b[7] = byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56)
		return
	}
	for i := 0; i < 8; i++ {
		m.Write8(addr+uint64(i), byte(v>>(8*i)))
	}
}

// Read32 reads a little-endian 32-bit word, sign-extended to 64 bits
// (LDL semantics).
func (m *Memory) Read32(addr uint64) uint64 {
	var v uint32
	for i := 0; i < 4; i++ {
		v |= uint32(m.Read8(addr+uint64(i))) << (8 * i)
	}
	return uint64(int64(int32(v)))
}

// Write32 writes the low 32 bits of v.
func (m *Memory) Write32(addr uint64, v uint64) {
	for i := 0; i < 4; i++ {
		m.Write8(addr+uint64(i), byte(v>>(8*i)))
	}
}

// PageCount reports the number of resident pages (for leak checks in
// tests).
func (m *Memory) PageCount() int { return len(m.pages) }

// Clone returns a deep copy of the address space.
func (m *Memory) Clone() *Memory {
	c := NewMemory()
	for pn, p := range m.pages {
		cp := *p
		c.pages[pn] = &cp
	}
	return c
}
