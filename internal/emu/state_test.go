package emu

import (
	"reflect"
	"testing"

	"rix/internal/asm"
	"rix/internal/prog"
)

// stateProg is a small looping program with memory traffic so state
// snapshots cover registers, memory, and output.
const stateProgSrc = `
        .text
main:   clr   t0
        ldiq  t1, 64
loop:   stq   t0, 0(gp)
        ldq   t2, 0(gp)
        addq  t0, t2, t0
        addqi t0, t0, 1
        addqi t1, t1, -1
        bne   t1, loop
        andi  a0, t0, 65535
        ldiq  v0, 1
        syscall
        clr   v0
        clr   a0
        syscall
        .data
buf:    .space 64
`

func buildStateProg(t *testing.T) *prog.Program {
	t.Helper()
	p, err := asm.Assemble("state.s", stateProgSrc)
	if err != nil {
		t.Fatalf("state test program does not assemble: %v", err)
	}
	return p
}

// TestStateResumeEquivalence checkpoints mid-run and verifies the
// resumed emulator produces exactly the remaining trace.
func TestStateResumeEquivalence(t *testing.T) {
	p := buildStateProg(t)
	full, _, err := Trace(p, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 20 {
		t.Fatalf("test program too short: %d records", len(full))
	}
	cut := len(full) / 2

	s := Stream(p, 1<<20)
	for i := 0; i < cut; i++ {
		if _, ok := s.Next(); !ok {
			t.Fatalf("stream ended early at %d", i)
		}
	}
	ck := s.Checkpoint()
	if ck.Count != uint64(cut) {
		t.Fatalf("checkpoint count %d, want %d", ck.Count, cut)
	}

	rs, err := ResumeStream(p, ck, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	rest, err := Materialize(rs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rest, full[cut:]) {
		t.Fatalf("resumed trace diverges from the original suffix")
	}
	// Rewind on a resumed stream returns to the checkpoint, not entry.
	if err := rs.Rewind(); err != nil {
		t.Fatal(err)
	}
	again, err := Materialize(rs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, full[cut:]) {
		t.Fatalf("rewound resumed stream diverges")
	}
}

// TestSeek verifies architectural fast-forward positioning on streamer
// and slice sources, including rewind-then-forward and error cases.
func TestSeek(t *testing.T) {
	p := buildStateProg(t)
	full, _, err := Trace(p, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	n := uint64(len(full))

	s := Stream(p, 1<<20)
	if err := s.Seek(n / 2); err != nil {
		t.Fatal(err)
	}
	rec, ok := s.Next()
	if !ok || rec != full[n/2] {
		t.Fatalf("after Seek(%d): rec %+v ok=%v, want %+v", n/2, rec, ok, full[n/2])
	}
	// Backward seek rewinds and replays.
	if err := s.Seek(3); err != nil {
		t.Fatal(err)
	}
	if rec, _ := s.Next(); rec != full[3] {
		t.Fatalf("backward seek landed wrong: %+v want %+v", rec, full[3])
	}
	if err := s.Seek(n + 100); err == nil {
		t.Error("seek past program end succeeded")
	}

	ss := FromSlice(full).(*sliceSource)
	if err := ss.Seek(n - 1); err != nil {
		t.Fatal(err)
	}
	if rec, _ := ss.Next(); rec != full[n-1] {
		t.Fatalf("slice seek landed wrong")
	}
	if err := ss.Seek(n + 1); err == nil {
		t.Error("slice seek past end succeeded")
	}

	// Skip uses the seek fast path on both and draining on wrappers.
	s2 := Stream(p, 1<<20)
	if err := Skip(s2, 5); err != nil {
		t.Fatal(err)
	}
	if rec, _ := s2.Next(); rec != full[5] {
		t.Fatalf("Skip landed wrong on streamer")
	}
	lim := Limit(Stream(p, 1<<20), n)
	if err := Skip(lim, 7); err != nil {
		t.Fatal(err)
	}
	if rec, _ := lim.Next(); rec != full[7] {
		t.Fatalf("Skip landed wrong on limited source")
	}
}

// TestLimit verifies clean truncation semantics: bounded record count,
// nil Err on the cut, rewind restoring the budget, and size hints.
func TestLimit(t *testing.T) {
	p := buildStateProg(t)
	full, _, err := Trace(p, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	lim := Limit(FromSlice(full), 10)
	got, err := Materialize(lim)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || !reflect.DeepEqual(got, full[:10]) {
		t.Fatalf("limited stream: %d records", len(got))
	}
	if err := lim.Err(); err != nil {
		t.Fatalf("truncation reported error: %v", err)
	}
	if err := lim.Rewind(); err != nil {
		t.Fatal(err)
	}
	if h := lim.SizeHint(); h != 10 {
		t.Fatalf("SizeHint = %d, want 10", h)
	}
	again, err := Materialize(lim)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 10 {
		t.Fatalf("rewound limited stream: %d records", len(again))
	}
	// A limit past the end passes the stream through unchanged.
	all, err := Materialize(Limit(FromSlice(full), uint64(len(full))+100))
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(full) {
		t.Fatalf("over-limit stream truncated: %d of %d", len(all), len(full))
	}
}

// TestMemoryStateRoundTrip pins the memory snapshot encoding.
func TestMemoryStateRoundTrip(t *testing.T) {
	m := NewMemory()
	m.Write64(0x1000, 0xdeadbeefcafe)
	m.Write32(0x2004, 0x1234)
	m.Write8(0x7ffff8, 0xab)
	st := m.State()
	back, err := NewMemoryFromState(st)
	if err != nil {
		t.Fatal(err)
	}
	for _, addr := range []uint64{0x1000, 0x2004, 0x7ffff8, 0x9999} {
		if got, want := back.Read64(addr), m.Read64(addr); got != want {
			t.Errorf("addr %#x: %#x != %#x", addr, got, want)
		}
	}
	if back.PageCount() != m.PageCount() {
		t.Errorf("page count %d != %d", back.PageCount(), m.PageCount())
	}
	st.Pages[0] = []byte{1, 2, 3} // short page must be rejected
	if _, err := NewMemoryFromState(st); err == nil {
		t.Error("short page accepted")
	}
}
