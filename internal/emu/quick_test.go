package emu

import (
	"fmt"
	"testing"
	"testing/quick"
)

// Property: Read64(Write64(v)) == v at any address, including unaligned
// and page-crossing ones.
func TestMemoryRoundTrip64(t *testing.T) {
	m := NewMemory()
	f := func(addr, v uint64) bool {
		addr &= 0xffff_ffff // keep the page map small
		m.Write64(addr, v)
		return m.Read64(addr) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Write32 stores exactly 4 bytes and Read32 sign-extends.
func TestMemoryRoundTrip32(t *testing.T) {
	m := NewMemory()
	f := func(addr uint64, v uint32) bool {
		addr &= 0xfff_fff8 // aligned, bounded
		m.Write64(addr, 0xaaaaaaaa_aaaaaaaa)
		m.Write32(addr, uint64(v))
		want := uint64(int64(int32(v)))
		if m.Read32(addr) != want {
			return false
		}
		// Upper half untouched.
		return m.Read64(addr)>>32 == 0xaaaaaaaa
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: adjacent 64-bit writes never interfere.
func TestMemoryAdjacency(t *testing.T) {
	f := func(addr, a, b uint64) bool {
		addr &= 0xffff_fff8
		m := NewMemory()
		m.Write64(addr, a)
		m.Write64(addr+8, b)
		return m.Read64(addr) == a && m.Read64(addr+8) == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// parameterized program used by the determinism and zero-register
// property tests.
func paramProgram(seed int64) string {
	return fmt.Sprintf(`
        .text
main:   ldiq t0, %d
        ldiq t1, %d
        ldiq t5, data
        clr  t3
loop:   mulqi t1, t1, 1103515245
        addqi t1, t1, 12345
        andi t2, t1, 56
        addq t4, t5, t2
        stq  t1, 0(t4)
        ldq  t6, 0(t4)
        addq t3, t3, t6
        addqi zero, t1, 9      ; zero-register write (must be discarded)
        andi t7, t1, 3
        beq  t7, skip
        subq t3, t3, t7
skip:   addqi t0, t0, -1
        bne  t0, loop
        clr  v0
        mov  a0, t3
        syscall
        .data
data:   .space 64
`, 40+seed%17, 1+seed*7919)
}

// Property: emulation is deterministic — two independent runs of the same
// program produce identical traces.
func TestEmulationDeterministic(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		p1 := assemble(t, paramProgram(seed))
		p2 := assemble(t, paramProgram(seed))
		t1, _, err := Trace(p1, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		t2, _, err := Trace(p2, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if len(t1) != len(t2) {
			t.Fatalf("seed %d: trace lengths differ", seed)
		}
		for i := range t1 {
			if t1[i] != t2[i] {
				t.Fatalf("seed %d: trace diverges at %d", seed, i)
			}
		}
	}
}

// Property: the emulator's zero register never holds a nonzero value,
// even when a program writes to it.
func TestZeroRegisterInvariant(t *testing.T) {
	for seed := int64(10); seed < 14; seed++ {
		p := assemble(t, paramProgram(seed))
		e := New(p)
		for !e.Halted {
			if _, err := e.Step(); err != nil {
				t.Fatal(err)
			}
			if e.Regs[31] != 0 {
				t.Fatalf("seed %d: zero register = %d", seed, e.Regs[31])
			}
		}
	}
}
