package emu

import (
	"fmt"

	"rix/internal/prog"
)

// TraceSource streams golden-trace records one at a time. It is the
// producer half of the simulator's producer/consumer decomposition: the
// emulator (or any recorded trace) produces records incrementally and the
// pipeline consumes them with O(ROB) buffering, so trace length no longer
// bounds resident memory.
//
// A source is single-consumer and not safe for concurrent use; consumers
// that need independent cursors over the same workload should each mint
// their own source (see workload.Built.Source).
type TraceSource interface {
	// Next returns the next record in program order. ok is false when the
	// stream is exhausted — either because the traced program halted
	// cleanly or because production failed; Err distinguishes the two.
	Next() (TraceRec, bool)

	// Err returns the terminal production error, or nil after a clean end
	// of stream. It is meaningful only once Next has returned ok=false.
	Err() error

	// Rewind resets the source to the beginning of the stream so a single
	// build can feed multiple sequential pipeline configurations. For
	// emulator-backed sources this re-executes the program.
	Rewind() error

	// SizeHint returns the expected total number of records, or 0 when
	// unknown. Materialize uses it to pre-size; consumers must not rely
	// on it for correctness.
	SizeHint() int
}

// Streamer is the emulator-backed TraceSource: it executes the program
// incrementally, producing one TraceRec per retired instruction without
// materializing the trace. After the stream ends, Emulator exposes the
// final architectural state (exit code, program output).
type Streamer struct {
	p         *prog.Program
	maxInstrs uint64
	e         *Emulator
	err       error
	hint      int
}

// Stream returns a TraceSource that executes p incrementally, failing the
// stream if the program does not halt within maxInstrs instructions.
func Stream(p *prog.Program, maxInstrs uint64) *Streamer {
	return &Streamer{p: p, maxInstrs: maxInstrs, e: New(p)}
}

// SetSizeHint records the known dynamic instruction count (e.g. from a
// prior validation pass) so SizeHint is accurate before the first pass
// completes.
func (s *Streamer) SetSizeHint(n int) {
	if n > s.hint {
		s.hint = n
	}
}

// Next executes one instruction and returns its trace record.
func (s *Streamer) Next() (TraceRec, bool) {
	if s.err != nil || s.e.Halted {
		return TraceRec{}, false
	}
	if s.e.Count >= s.maxInstrs {
		s.err = fmt.Errorf("emu: %s did not halt within %d instructions", s.p.Name, s.maxInstrs)
		return TraceRec{}, false
	}
	rec, err := s.e.Step()
	if err != nil {
		s.err = err
		return TraceRec{}, false
	}
	if s.e.Halted && int(s.e.Count) > s.hint {
		s.hint = int(s.e.Count)
	}
	return rec, true
}

// Err reports why the stream ended, if it ended abnormally.
func (s *Streamer) Err() error { return s.err }

// Rewind restarts execution from the program entry point. The size hint
// learned from a completed pass is preserved.
func (s *Streamer) Rewind() error {
	s.e = New(s.p)
	s.err = nil
	return nil
}

// SizeHint returns the dynamic instruction count once known (after a
// complete pass or SetSizeHint), else 0.
func (s *Streamer) SizeHint() int { return s.hint }

// Emulator returns the backing emulator, exposing final architectural
// state (ExitCode, Output, Count) once the stream is drained.
func (s *Streamer) Emulator() *Emulator { return s.e }

// sliceSource adapts a materialized trace to the TraceSource interface.
type sliceSource struct {
	recs []TraceRec
	pos  int
}

// FromSlice returns a TraceSource over an in-memory trace. Rewind resets
// the cursor; Err is always nil.
func FromSlice(recs []TraceRec) TraceSource { return &sliceSource{recs: recs} }

func (s *sliceSource) Next() (TraceRec, bool) {
	if s.pos >= len(s.recs) {
		return TraceRec{}, false
	}
	rec := s.recs[s.pos]
	s.pos++
	return rec, true
}

func (s *sliceSource) Err() error    { return nil }
func (s *sliceSource) Rewind() error { s.pos = 0; return nil }
func (s *sliceSource) SizeHint() int { return len(s.recs) }

// Materialize drains a source into a slice, pre-sized from the source's
// hint. It is the adapter for tests and for small traces where random
// access is worth the memory.
func Materialize(src TraceSource) ([]TraceRec, error) {
	capHint := src.SizeHint()
	if capHint <= 0 {
		capHint = 1 << 10
	}
	recs := make([]TraceRec, 0, capHint)
	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		recs = append(recs, rec)
	}
	if err := src.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}
