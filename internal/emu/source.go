package emu

import (
	"context"
	"fmt"

	"rix/internal/prog"
)

// TraceSource streams golden-trace records one at a time. It is the
// producer half of the simulator's producer/consumer decomposition: the
// emulator (or any recorded trace) produces records incrementally and the
// pipeline consumes them with O(ROB) buffering, so trace length no longer
// bounds resident memory.
//
// A source is single-consumer and not safe for concurrent use; consumers
// that need independent cursors over the same workload should each mint
// their own source (see workload.Built.Source).
type TraceSource interface {
	// Next returns the next record in program order. ok is false when the
	// stream is exhausted — either because the traced program halted
	// cleanly or because production failed; Err distinguishes the two.
	Next() (TraceRec, bool)

	// Err returns the terminal production error, or nil after a clean end
	// of stream. It is meaningful only once Next has returned ok=false.
	Err() error

	// Rewind resets the source to the beginning of the stream so a single
	// build can feed multiple sequential pipeline configurations. For
	// emulator-backed sources this re-executes the program.
	Rewind() error

	// SizeHint returns the expected total number of records, or 0 when
	// unknown. Materialize uses it to pre-size; consumers must not rely
	// on it for correctness.
	SizeHint() int
}

// Streamer is the emulator-backed TraceSource: it executes the program
// incrementally, producing one TraceRec per retired instruction without
// materializing the trace. After the stream ends, Emulator exposes the
// final architectural state (exit code, program output).
type Streamer struct {
	p         *prog.Program
	maxInstrs uint64
	e         *Emulator
	err       error
	hint      int
	resume    *State // non-nil for resumed streams: Rewind target

	ctx  context.Context // nil = never cancelled
	done <-chan struct{}
}

// streamPollInterval is the record cadence of the batched cancellation
// check in Next and Seek (a power of two: one masked compare per record,
// one non-blocking channel read per interval). At emulator speed the
// bound is well under a millisecond.
const streamPollInterval = 1 << 12

// SetContext arms cancellation: production polls ctx every
// streamPollInterval records, and a cancelled stream ends with
// Err() == ctx.Err(). Rewind keeps the binding.
func (s *Streamer) SetContext(ctx context.Context) {
	s.ctx = ctx
	s.done = ctx.Done()
}

// cancelled runs the batched poll; it reports (and records) the
// context's error once the stream position crosses a poll boundary
// after cancellation.
func (s *Streamer) cancelled() bool {
	if s.done == nil || s.e.Count&(streamPollInterval-1) != 0 {
		return false
	}
	select {
	case <-s.done:
		s.err = s.ctx.Err()
		return true
	default:
		return false
	}
}

// Stream returns a TraceSource that executes p incrementally, failing the
// stream if the program does not halt within maxInstrs instructions.
func Stream(p *prog.Program, maxInstrs uint64) *Streamer {
	return &Streamer{p: p, maxInstrs: maxInstrs, e: New(p)}
}

// SetSizeHint records the known dynamic instruction count (e.g. from a
// prior validation pass) so SizeHint is accurate before the first pass
// completes.
func (s *Streamer) SetSizeHint(n int) {
	if n > s.hint {
		s.hint = n
	}
}

// Next executes one instruction and returns its trace record.
//
//rix:hotpath
func (s *Streamer) Next() (TraceRec, bool) {
	if s.err != nil || s.e.Halted {
		return TraceRec{}, false
	}
	if s.cancelled() {
		return TraceRec{}, false
	}
	if s.e.Count >= s.maxInstrs {
		s.err = fmt.Errorf("emu: %s did not halt within %d instructions", s.p.Name, s.maxInstrs) //rix:alloc-ok — terminal error path
		return TraceRec{}, false
	}
	rec, err := s.e.Step()
	if err != nil {
		s.err = err
		return TraceRec{}, false
	}
	if s.e.Halted && int(s.e.Count) > s.hint {
		s.hint = int(s.e.Count)
	}
	return rec, true
}

// Err reports why the stream ended, if it ended abnormally.
func (s *Streamer) Err() error { return s.err }

// Rewind restarts execution from the stream origin: the program entry
// point, or the checkpoint for resumed streams. The size hint learned
// from a completed pass is preserved.
func (s *Streamer) Rewind() error {
	if s.resume != nil {
		e, err := NewFromState(s.p, *s.resume)
		if err != nil {
			return err
		}
		s.e = e
	} else {
		s.e = New(s.p)
	}
	s.err = nil
	return nil
}

// SizeHint returns the dynamic instruction count once known (after a
// complete pass or SetSizeHint), else 0.
func (s *Streamer) SizeHint() int { return s.hint }

// Emulator returns the backing emulator, exposing final architectural
// state (ExitCode, Output, Count) once the stream is drained.
func (s *Streamer) Emulator() *Emulator { return s.e }

// Checkpoint captures the emulator state at the current stream position
// (deep copy; streaming may continue afterwards). Restoring it with
// ResumeStream yields a source producing exactly the remaining records.
func (s *Streamer) Checkpoint() State { return s.e.State() }

// ResumeStream mints a TraceSource that continues execution from a
// checkpointed emulator state: its first record is dynamic instruction
// st.Count. maxInstrs bounds the absolute retired count, exactly as for
// Stream. Rewind on a resumed stream returns to the checkpoint, not the
// program entry.
func ResumeStream(p *prog.Program, st State, maxInstrs uint64) (*Streamer, error) {
	e, err := NewFromState(p, st)
	if err != nil {
		return nil, err
	}
	return &Streamer{p: p, maxInstrs: maxInstrs, e: e, resume: &st}, nil
}

// Seek positions the stream so the next record is dynamic instruction n,
// fast-forwarding (or rewinding, then fast-forwarding) by architectural
// execution. Seeking before a resumed stream's checkpoint, or past the
// end of the program, fails.
func (s *Streamer) Seek(n uint64) error {
	if n < s.e.Count {
		if err := s.Rewind(); err != nil {
			return err
		}
	}
	if n < s.e.Count {
		return fmt.Errorf("emu: seek to %d before stream origin %d", n, s.e.Count)
	}
	for s.e.Count < n {
		if s.e.Halted {
			return fmt.Errorf("emu: seek to %d past program end at %d", n, s.e.Count)
		}
		if s.cancelled() {
			return s.err
		}
		if s.e.Count >= s.maxInstrs {
			return fmt.Errorf("emu: %s did not halt within %d instructions", s.p.Name, s.maxInstrs)
		}
		if _, err := s.e.Step(); err != nil {
			return err
		}
	}
	return nil
}

// sliceSource adapts a materialized trace to the TraceSource interface.
type sliceSource struct {
	recs []TraceRec
	pos  int
}

// FromSlice returns a TraceSource over an in-memory trace. Rewind resets
// the cursor; Err is always nil.
func FromSlice(recs []TraceRec) TraceSource { return &sliceSource{recs: recs} }

func (s *sliceSource) Next() (TraceRec, bool) {
	if s.pos >= len(s.recs) {
		return TraceRec{}, false
	}
	rec := s.recs[s.pos]
	s.pos++
	return rec, true
}

func (s *sliceSource) Err() error    { return nil }
func (s *sliceSource) Rewind() error { s.pos = 0; return nil }
func (s *sliceSource) SizeHint() int { return len(s.recs) }

// Seek positions the cursor at record n.
func (s *sliceSource) Seek(n uint64) error {
	if n > uint64(len(s.recs)) {
		return fmt.Errorf("emu: seek to %d past end of %d-record trace", n, len(s.recs))
	}
	s.pos = int(n)
	return nil
}

// Seeker is the optional fast-positioning extension of TraceSource:
// sources that can jump to dynamic instruction n (Seek) and report the
// index of the next record they would produce (Pos) without the
// consumer draining records one by one. Streamer (architectural
// fast-forward) and slice sources (cursor move) implement it; Skip uses
// it when present and falls back to draining otherwise.
type Seeker interface {
	Seek(n uint64) error
	Pos() uint64
}

// Skip advances src by n records: via Seek when the source supports it,
// else by draining. It fails if the stream ends first.
func Skip(src TraceSource, n uint64) error {
	if n == 0 {
		return nil
	}
	if sk, ok := src.(Seeker); ok {
		return sk.Seek(sk.Pos() + n)
	}
	for i := uint64(0); i < n; i++ {
		if _, ok := src.Next(); !ok {
			if err := src.Err(); err != nil {
				return err
			}
			return fmt.Errorf("emu: skip of %d records hit end of stream at %d", n, i)
		}
	}
	return nil
}

// Pos reports the dynamic instruction index of the next record.
func (s *Streamer) Pos() uint64 { return s.e.Count }

// Pos reports the cursor position.
func (s *sliceSource) Pos() uint64 { return uint64(s.pos) }

// limitSource truncates a source after n records, ending the stream
// cleanly (Err is nil for a truncation; underlying production errors
// still surface).
type limitSource struct {
	src  TraceSource
	n    uint64 // total budget, for Rewind
	left uint64
	cut  bool // true when we truncated before the source ended
}

// Limit returns a view of src ending after at most n records — the
// windowing adapter for sampled simulation: a pipeline consuming a
// limited source halts after the window retires.
func Limit(src TraceSource, n uint64) TraceSource {
	return &limitSource{src: src, n: n, left: n}
}

func (l *limitSource) Next() (TraceRec, bool) {
	if l.left == 0 {
		l.cut = true
		return TraceRec{}, false
	}
	rec, ok := l.src.Next()
	if !ok {
		return TraceRec{}, false
	}
	l.left--
	return rec, true
}

func (l *limitSource) Err() error {
	if l.cut {
		return nil
	}
	return l.src.Err()
}

func (l *limitSource) Rewind() error {
	if err := l.src.Rewind(); err != nil {
		return err
	}
	l.left, l.cut = l.n, false
	return nil
}

func (l *limitSource) SizeHint() int {
	h := l.src.SizeHint()
	if h == 0 || uint64(h) > l.n {
		h = int(l.n)
	}
	return h
}

// Materialize drains a source into a slice, pre-sized from the source's
// hint. It is the adapter for tests and for small traces where random
// access is worth the memory.
func Materialize(src TraceSource) ([]TraceRec, error) {
	capHint := src.SizeHint()
	if capHint <= 0 {
		capHint = 1 << 10
	}
	recs := make([]TraceRec, 0, capHint)
	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		recs = append(recs, rec)
	}
	if err := src.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}
