package emu

import (
	"testing"

	"rix/internal/asm"
	"rix/internal/isa"
	"rix/internal/prog"
)

func assemble(t *testing.T, src string) *prog.Program {
	t.Helper()
	p, err := asm.Assemble("test.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func run(t *testing.T, src string) *Emulator {
	t.Helper()
	e := New(assemble(t, src))
	if err := e.Run(1 << 22); err != nil {
		t.Fatalf("run: %v", err)
	}
	return e
}

func TestMemoryBasics(t *testing.T) {
	m := NewMemory()
	if m.Read64(0x1000) != 0 {
		t.Error("unmapped read not zero")
	}
	if m.PageCount() != 0 {
		t.Error("unmapped read allocated a page")
	}
	m.Write64(0x1000, 0x1122334455667788)
	if got := m.Read64(0x1000); got != 0x1122334455667788 {
		t.Errorf("Read64 = %#x", got)
	}
	if got := m.Read32(0x1000); got != 0x55667788 {
		t.Errorf("Read32 = %#x", got)
	}
	// Sign extension of 32-bit reads.
	m.Write32(0x2000, 0xffffffff)
	if got := m.Read32(0x2000); got != ^uint64(0) {
		t.Errorf("Read32 sign-extend = %#x", got)
	}
	// Unaligned and page-crossing access.
	m.Write64(0x2ffd, 0xa1b2c3d4e5f60718)
	if got := m.Read64(0x2ffd); got != 0xa1b2c3d4e5f60718 {
		t.Errorf("unaligned Read64 = %#x", got)
	}
	// Clone independence.
	c := m.Clone()
	c.Write64(0x1000, 42)
	if m.Read64(0x1000) == 42 {
		t.Error("Clone shares pages with original")
	}
}

func TestCountdownLoop(t *testing.T) {
	e := run(t, `
        .text
main:   ldiq t0, 10
        clr  t1
loop:   addq t1, t1, t0
        addqi t0, t0, -1
        bne  t0, loop
        mov  a0, t1
        ldiq v0, 1
        syscall             ; putint(sum)
        clr  v0
        clr  a0
        syscall             ; exit(0)
`)
	if string(e.Output) != "55\n" {
		t.Errorf("output = %q, want 55", e.Output)
	}
	if e.ExitCode != 0 {
		t.Errorf("exit = %d", e.ExitCode)
	}
}

func TestMemoryProgram(t *testing.T) {
	e := run(t, `
        .text
main:   ldiq t0, tbl
        ldq  t1, 0(t0)
        ldq  t2, 8(t0)
        addq t3, t1, t2
        stq  t3, 16(t0)
        ldq  a0, 16(t0)
        ldiq v0, 1
        syscall
        clr  v0
        syscall
        .data
tbl:    .word 40, 2
        .space 8
`)
	if string(e.Output) != "42\n" {
		t.Errorf("output = %q", e.Output)
	}
}

func TestRecursionWithStack(t *testing.T) {
	// fact(10) via the classic save/restore idiom — the reverse
	// integration target pattern.
	e := run(t, `
        .text
main:   ldiq a0, 10
        call fact
        mov  a0, v0
        ldiq v0, 1
        syscall
        clr  v0
        syscall

fact:   bne  a0, rec
        ldiq v0, 1
        ret
rec:    lda  sp, -16(sp)
        stq  ra, 0(sp)
        stq  a0, 8(sp)
        addqi a0, a0, -1
        call fact
        ldq  a0, 8(sp)
        ldq  ra, 0(sp)
        lda  sp, 16(sp)
        mulq v0, v0, a0
        ret
`)
	if string(e.Output) != "3628800\n" {
		t.Errorf("fact(10) = %q, want 3628800", e.Output)
	}
}

func TestIndirectCallAndJump(t *testing.T) {
	e := run(t, `
        .text
main:   ldiq pv, double
        ldiq a0, 21
        jsr  (pv)
        mov  a0, v0
        ldiq v0, 1
        syscall
        clr  v0
        syscall
double: addq v0, a0, a0
        ret
`)
	if string(e.Output) != "42\n" {
		t.Errorf("output = %q", e.Output)
	}
}

func TestFloatingPoint(t *testing.T) {
	e := run(t, `
        .text
main:   ldiq t0, 6
        ldiq t1, 7
        cvtqt t2, t0
        cvtqt t3, t1
        fmul t4, t2, t3
        cvttq a0, t4
        ldiq v0, 1
        syscall
        clr  v0
        syscall
`)
	if string(e.Output) != "42\n" {
		t.Errorf("output = %q", e.Output)
	}
}

func TestPutc(t *testing.T) {
	e := run(t, `
        .text
main:   ldiq v0, 2
        ldiq a0, 'h'
        syscall
        ldiq a0, 'i'
        syscall
        clr  v0
        syscall
`)
	if string(e.Output) != "hi" {
		t.Errorf("output = %q", e.Output)
	}
}

func TestExitCode(t *testing.T) {
	e := run(t, `
        .text
main:   clr  v0
        ldiq a0, 7
        syscall
`)
	if e.ExitCode != 7 || !e.Halted {
		t.Errorf("exit = %d halted=%v", e.ExitCode, e.Halted)
	}
}

func TestRunBudget(t *testing.T) {
	e := New(assemble(t, `
        .text
main:   br main
`))
	if err := e.Run(1000); err == nil {
		t.Error("infinite loop did not report budget exhaustion")
	}
}

func TestTraceMatchesExecution(t *testing.T) {
	p := assemble(t, `
        .text
main:   ldiq t0, 5
        clr  t1
loop:   addq t1, t1, t0
        stq  t1, buf
        ldq  t2, buf
        addqi t0, t0, -1
        bne  t0, loop
        clr  v0
        mov  a0, t1
        syscall
        .data
buf:    .space 8
`)
	recs, e, err := Trace(p, 1<<20)
	if err != nil {
		t.Fatalf("Trace: %v", err)
	}
	if uint64(len(recs)) != e.Count {
		t.Fatalf("trace len %d != count %d", len(recs), e.Count)
	}
	// Re-execute and compare every record.
	e2 := New(p)
	for i, want := range recs {
		pcIdx, _ := p.CodeIndex(e2.PC)
		if pcIdx != int(want.CodeIdx) {
			t.Fatalf("rec %d: pc idx %d, want %d", i, pcIdx, want.CodeIdx)
		}
		got, err := e2.Step()
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("rec %d: %+v != %+v", i, got, want)
		}
	}
	// Loads and stores to buf must carry the address.
	bufAddr := p.Symbols["buf"]
	sawStore := false
	for _, r := range recs {
		in := p.Code[r.CodeIdx]
		if in.Op == isa.STQ {
			sawStore = true
			if r.Addr != bufAddr {
				t.Errorf("store addr %#x, want %#x", r.Addr, bufAddr)
			}
		}
	}
	if !sawStore {
		t.Error("no store records in trace")
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	e := run(t, `
        .text
main:   addqi zero, zero, 5
        mov  a0, zero
        ldiq v0, 1
        syscall
        clr  v0
        syscall
`)
	if string(e.Output) != "0\n" {
		t.Errorf("zero register was written: %q", e.Output)
	}
}

func TestBadPC(t *testing.T) {
	p := assemble(t, `
        .text
main:   ldiq t0, 0x9999
        jmp (t0)
`)
	e := New(p)
	_, _ = e.Step()
	_, _ = e.Step()
	if _, err := e.Step(); err == nil {
		t.Error("jump outside text did not error")
	}
}
