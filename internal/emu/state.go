package emu

import (
	"fmt"

	"rix/internal/isa"
	"rix/internal/prog"
)

// State is the complete serializable architectural state of an Emulator at
// an instruction boundary: registers, PC, halt status, program output, the
// retired-instruction count, and the memory image. It is the emulator half
// of a sampling checkpoint (internal/sample) — restoring a State and
// stepping forward reproduces execution exactly.
//
// All fields are exported so the struct round-trips through encoding/gob
// unchanged; State and MemState must remain stable once checkpoints are
// written to disk (bump sample's checkpoint format version on change).
type State struct {
	Regs     [isa.NumLogical]uint64
	PC       uint64
	Halted   bool
	ExitCode uint64
	Output   []byte
	Count    uint64
	Mem      MemState
}

// MemState is the serializable form of a sparse Memory: page number →
// page image. Only resident pages appear.
//
// A MemState produced by Memory.State aliases the memory's page arrays
// copy-on-write rather than duplicating them; treat its pages as
// immutable. Serializing it, comparing it, or rebuilding a Memory with
// NewMemoryFromState are all safe — from any goroutine — because the
// source memory clones a shared page before ever writing to it again.
type MemState struct {
	Pages map[uint64][]byte
}

// State captures the memory in its serializable form. The snapshot is
// O(resident pages) map work, not a byte copy: the returned pages alias
// the live arrays, and the memory's next write to any captured page
// copies that page first (see Memory). Like Clone, State mutates the
// sharing bookkeeping and must be called from the owning goroutine.
func (m *Memory) State() MemState {
	st := MemState{Pages: make(map[uint64][]byte, len(m.pages))}
	for pn, p := range m.pages {
		st.Pages[pn] = p[:] //rix:shared — copy-on-write: the memory clones a captured page before writing to it
	}
	m.epoch++
	m.lastWPN, m.lastW = 0, nil
	return st
}

// NewMemoryFromState rebuilds an address space from a snapshot. Pages of
// the wrong size are rejected.
func NewMemoryFromState(st MemState) (*Memory, error) {
	m := NewMemory()
	for pn, img := range st.Pages {
		if len(img) != pageSize {
			return nil, fmt.Errorf("emu: page %#x has %d bytes, want %d", pn, len(img), pageSize)
		}
		p := new(page)
		copy(p[:], img)
		m.pages[pn] = p
	}
	return m, nil
}

// State captures the emulator's architectural state (deep copy; the
// emulator may keep running afterwards).
func (e *Emulator) State() State {
	st := State{
		Regs:     e.Regs,
		PC:       e.PC,
		Halted:   e.Halted,
		ExitCode: e.ExitCode,
		Count:    e.Count,
		Mem:      e.Mem.State(),
	}
	st.Output = append([]byte(nil), e.Output...)
	return st
}

// NewFromState rebuilds an emulator mid-execution. The program must be the
// one the state was captured from; the emulator resumes at st.PC with
// st.Count instructions already retired.
func NewFromState(p *prog.Program, st State) (*Emulator, error) {
	mem, err := NewMemoryFromState(st.Mem)
	if err != nil {
		return nil, err
	}
	e := &Emulator{
		Prog:     p,
		Mem:      mem,
		Regs:     st.Regs,
		PC:       st.PC,
		Halted:   st.Halted,
		ExitCode: st.ExitCode,
		Count:    st.Count,
	}
	e.Output = append([]byte(nil), st.Output...)
	return e, nil
}
