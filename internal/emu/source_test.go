package emu

import (
	"context"
	"testing"

	"rix/internal/prog"
)

// tinyProg assembles a minimal program: clr v0 (exit fn), syscall.
func tinyProg(t *testing.T) *prog.Program {
	t.Helper()
	return assemble(t, `
        .text
main:   clr  v0
        syscall
`)
}

func TestStreamMatchesTrace(t *testing.T) {
	p := tinyProg(t)
	recs, _, err := Trace(p, 100)
	if err != nil {
		t.Fatal(err)
	}
	s := Stream(p, 100)
	for i, want := range recs {
		got, ok := s.Next()
		if !ok || got != want {
			t.Fatalf("record %d: got %+v ok=%v, want %+v", i, got, ok, want)
		}
	}
	if _, ok := s.Next(); ok {
		t.Error("stream longer than materialized trace")
	}
	if err := s.Err(); err != nil {
		t.Errorf("clean end of stream reported error: %v", err)
	}
	if s.SizeHint() != len(recs) {
		t.Errorf("size hint %d after full pass, want %d", s.SizeHint(), len(recs))
	}
}

func TestStreamRewind(t *testing.T) {
	p := tinyProg(t)
	s := Stream(p, 100)
	first, _ := s.Next()
	for {
		if _, ok := s.Next(); !ok {
			break
		}
	}
	if err := s.Rewind(); err != nil {
		t.Fatal(err)
	}
	again, ok := s.Next()
	if !ok || again != first {
		t.Errorf("rewind: got %+v ok=%v, want %+v", again, ok, first)
	}
	if s.SizeHint() == 0 {
		t.Error("size hint lost across Rewind")
	}
}

func TestStreamBudgetExhaustion(t *testing.T) {
	p := tinyProg(t)
	s := Stream(p, 1) // too small: program needs 2 instructions
	if _, ok := s.Next(); !ok {
		t.Fatal("first step should succeed")
	}
	if _, ok := s.Next(); ok {
		t.Fatal("budget exhausted but stream continued")
	}
	if s.Err() == nil {
		t.Error("did-not-halt not reported via Err")
	}
	if _, err := Materialize(Stream(p, 1)); err == nil {
		t.Error("Materialize swallowed the production error")
	}
}

// TestMaterializeSizesFromHint covers the pre-sizing fix: the adapter
// must allocate from the source's hint rather than a fixed guess.
func TestMaterializeSizesFromHint(t *testing.T) {
	recs := make([]TraceRec, 5000)
	for i := range recs {
		recs[i].CodeIdx = uint32(i)
	}
	got, err := Materialize(FromSlice(recs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) || cap(got) != len(recs) {
		t.Errorf("materialized len=%d cap=%d, want len=cap=%d (sized from hint)",
			len(got), cap(got), len(recs))
	}
	// A hinted streamer must pre-size the same way.
	p := tinyProg(t)
	s := Stream(p, 100)
	s.SetSizeHint(2)
	out, err := Materialize(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || cap(out) != 2 {
		t.Errorf("hinted streamer: len=%d cap=%d, want 2/2", len(out), cap(out))
	}
}

func TestFromSliceRewind(t *testing.T) {
	src := FromSlice([]TraceRec{{CodeIdx: 1}, {CodeIdx: 2}})
	a, _ := src.Next()
	if err := src.Rewind(); err != nil {
		t.Fatal(err)
	}
	b, _ := src.Next()
	if a != b {
		t.Errorf("rewind changed first record: %+v vs %+v", a, b)
	}
}

// TestStreamContextCancel: a cancelled context ends the stream at the
// next batched poll with Err() == ctx.Err(), for both Next and Seek.
func TestStreamContextCancel(t *testing.T) {
	// An endless loop: the stream only stops via budget or cancellation.
	p := assemble(t, `
        .text
main:   br   main
`)
	ctx, cancel := context.WithCancel(context.Background())
	s := Stream(p, 1<<30)
	s.SetContext(ctx)
	cancel()
	n := 0
	for {
		if _, ok := s.Next(); !ok {
			break
		}
		n++
		if n > streamPollInterval {
			t.Fatal("stream did not stop within one poll interval of cancellation")
		}
	}
	if err := s.Err(); err != context.Canceled {
		t.Errorf("Err() = %v, want context.Canceled", err)
	}

	s2 := Stream(p, 1<<30)
	s2.SetContext(ctx)
	if err := s2.Seek(1 << 20); err != context.Canceled {
		t.Errorf("Seek under cancelled ctx = %v, want context.Canceled", err)
	}
}
