package emu

import (
	"bytes"
	"testing"
)

// TestSnapshotIsolation pins the copy-on-write contract: a MemState
// captured by State is frozen at capture time — later writes through the
// live memory, including writes to the very pages the snapshot aliases,
// never show through.
func TestSnapshotIsolation(t *testing.T) {
	m := NewMemory()
	m.Write64(0x1000, 0x1111)
	m.Write64(0x2000, 0x2222)

	st := m.State()
	if len(st.Pages) != 2 {
		t.Fatalf("%d snapshot pages, want 2", len(st.Pages))
	}

	// Overwrite a captured page, extend it, and touch a brand-new page.
	m.Write64(0x1000, 0xdead)
	m.Write8(0x2fff, 0xee)
	m.Write64(0x9000, 0x9999)

	if got := st.Pages[0x1][0]; got != 0x11 {
		t.Errorf("snapshot page 1 byte 0 = %#x after live write, want 0x11", got)
	}
	if got := st.Pages[0x2][pageMask]; got != 0 {
		t.Errorf("snapshot page 2 last byte = %#x after live write, want 0", got)
	}
	if _, ok := st.Pages[0x9]; ok {
		t.Error("page mapped after State leaked into the snapshot")
	}
	// The live memory sees its own writes, of course.
	if got := m.Read64(0x1000); got != 0xdead {
		t.Errorf("live Read64 = %#x, want 0xdead", got)
	}

	// Rebuilding from the snapshot reproduces the captured bytes.
	r, err := NewMemoryFromState(st)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Read64(0x1000); got != 0x1111 {
		t.Errorf("restored Read64(0x1000) = %#x, want 0x1111", got)
	}
	if got := r.Read64(0x2000); got != 0x2222 {
		t.Errorf("restored Read64(0x2000) = %#x, want 0x2222", got)
	}
}

// TestSnapshotChain takes snapshots between writes and checks each stays
// pinned to its own point in time — the epoch bump must demote every
// page, not just the most recently written one.
func TestSnapshotChain(t *testing.T) {
	m := NewMemory()
	var snaps []MemState
	for i := 0; i < 4; i++ {
		m.Write64(0x4000, uint64(i))
		m.Write64(uint64(0x10000+i*pageSize), uint64(i))
		snaps = append(snaps, m.State())
	}
	for i, st := range snaps {
		r, err := NewMemoryFromState(st)
		if err != nil {
			t.Fatal(err)
		}
		if got := r.Read64(0x4000); got != uint64(i) {
			t.Errorf("snapshot %d: Read64(0x4000) = %d, want %d", i, got, i)
		}
		if got := r.PageCount(); got != i+2 {
			t.Errorf("snapshot %d: %d pages, want %d", i, got, i+2)
		}
	}
}

// TestCloneWriteBothSides: after Clone, writes on either side must not
// show through on the other, in both directions, even on the same page.
func TestCloneWriteBothSides(t *testing.T) {
	m := NewMemory()
	m.Write64(0x1000, 7)
	c := m.Clone()
	m.Write64(0x1000, 8)
	c.Write64(0x1008, 9)
	if got := c.Read64(0x1000); got != 7 {
		t.Errorf("clone sees original's post-clone write: %d", got)
	}
	if got := m.Read64(0x1008); got != 0 {
		t.Errorf("original sees clone's write: %d", got)
	}
	// A snapshot of the clone is independent of both.
	st := c.State()
	c.Write64(0x1000, 99)
	if got := st.Pages[0x1][0]; got != 7 {
		t.Errorf("clone snapshot byte = %#x, want 7", got)
	}
}

// TestEmulatorStateWhileRunning captures emulator state mid-run and
// confirms continued execution does not disturb the snapshot — the
// pattern the sampled warm pass relies on when it snapshots boundaries
// and stride checkpoints from a still-advancing emulator.
func TestEmulatorStateWhileRunning(t *testing.T) {
	e := New(assemble(t, `
        .text
main:   ldiq t0, 64
        ldiq t2, 0x5000
loop:   stq  t0, 0(t2)
        addqi t2, t2, 8
        addqi t0, t0, -1
        bne  t0, loop
        clr  v0
        clr  a0
        syscall
`))
	for i := 0; i < 16; i++ {
		if _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	st := e.State()
	buf := make([]byte, pageSize)
	copy(buf, st.Mem.Pages[0x5])
	for !e.Halted {
		if _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(buf, st.Mem.Pages[0x5]) {
		t.Error("continued execution mutated the captured snapshot page")
	}
	r, err := NewFromState(e.Prog, st)
	if err != nil {
		t.Fatal(err)
	}
	for !r.Halted {
		if _, err := r.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if r.Count != e.Count || r.Mem.Read64(0x5000) != e.Mem.Read64(0x5000) {
		t.Error("resume from mid-run snapshot diverges from straight-through execution")
	}
}
