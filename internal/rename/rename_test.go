package rename

import (
	"testing"

	"rix/internal/isa"
	"rix/internal/regfile"
)

func TestMapTableBasics(t *testing.T) {
	mt := NewMapTable()
	for l := isa.Reg(0); l < isa.NumLogical; l++ {
		if mt.Get(l).P != regfile.ZeroReg {
			t.Fatalf("initial mapping of %v = p%d", l, mt.Get(l).P)
		}
	}
	old := mt.Set(isa.RegSP, Mapping{P: 5, Gen: 3})
	if old.P != regfile.ZeroReg {
		t.Errorf("Set returned old %+v", old)
	}
	if got := mt.Get(isa.RegSP); got.P != 5 || got.Gen != 3 {
		t.Errorf("Get = %+v", got)
	}
}

func TestSerialUndo(t *testing.T) {
	mt := NewMapTable()
	var undos []Undo
	// Rename r1 three times, recording undo entries.
	for i := 1; i <= 3; i++ {
		old := mt.Set(1, Mapping{P: regfile.PReg(i), Gen: uint8(i)})
		undos = append(undos, Undo{L: 1, Old: old})
	}
	if mt.Get(1).P != 3 {
		t.Fatalf("after renames: %+v", mt.Get(1))
	}
	// Undo newest-first.
	for i := len(undos) - 1; i >= 0; i-- {
		mt.Set(undos[i].L, undos[i].Old)
	}
	if mt.Get(1).P != regfile.ZeroReg {
		t.Errorf("undo did not restore initial mapping: %+v", mt.Get(1))
	}
}

func TestCopyFromAndSnapshot(t *testing.T) {
	front, arch := NewMapTable(), NewMapTable()
	arch.Set(2, Mapping{P: 7, Gen: 1})
	front.Set(2, Mapping{P: 9, Gen: 2})
	front.Set(3, Mapping{P: 11, Gen: 3})
	front.CopyFrom(arch)
	if front.Get(2).P != 7 || front.Get(3).P != regfile.ZeroReg {
		t.Errorf("CopyFrom: %+v %+v", front.Get(2), front.Get(3))
	}
	snap := arch.Snapshot()
	arch.Set(2, Mapping{P: 13, Gen: 4})
	if snap[2].P != 7 {
		t.Error("Snapshot aliased live table")
	}
}
