// Package rename implements the pointer-based register rename map table
// (logical register → physical register + generation), as in the MIPS
// R10000 / Alpha 21264 style the paper assumes. Mis-speculation recovery
// is serial undo driven by the pipeline's ROB records; the architectural
// (retirement) map supports whole-pipeline recovery after DIVA flushes.
package rename

import (
	"rix/internal/isa"
	"rix/internal/regfile"
)

// Mapping is one logical register's physical mapping.
type Mapping struct {
	P   regfile.PReg
	Gen uint8
}

// MapTable maps all logical registers.
type MapTable struct {
	m [isa.NumLogical]Mapping
}

// NewMapTable builds a map table with every logical register pointing at
// the pinned zero physical register. The caller is responsible for the
// matching reference counts: the zero register's count is pinned, so
// initial mappings to it are deliberately not counted.
func NewMapTable() *MapTable {
	var t MapTable
	for l := range t.m {
		t.m[l] = Mapping{P: regfile.ZeroReg, Gen: 0}
	}
	return &t
}

// Get returns the mapping of l.
func (t *MapTable) Get(l isa.Reg) Mapping { return t.m[l] }

// Set installs a mapping and returns the previous one for the undo log.
func (t *MapTable) Set(l isa.Reg, m Mapping) Mapping {
	old := t.m[l]
	t.m[l] = m
	return old
}

// CopyFrom overwrites this table with src (used to reset the speculative
// front-end map from the architectural map on a full flush).
func (t *MapTable) CopyFrom(src *MapTable) { t.m = src.m }

// Snapshot returns a value copy.
func (t *MapTable) Snapshot() [isa.NumLogical]Mapping { return t.m }

// Undo is one serial-undo record: restore l to Old, and release the
// mapping that the undone instruction had created.
type Undo struct {
	L   isa.Reg
	Old Mapping
}
