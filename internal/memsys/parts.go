package memsys

// TLB is a set-associative translation buffer. Misses are handled in
// hardware with a fixed penalty (paper: 30 cycles).
type TLB struct {
	cache       *Cache
	missPenalty uint64

	Accesses uint64
	Misses   uint64
}

// NewTLB builds a TLB with the given entry count, associativity and page
// size.
func NewTLB(entries, assoc, pageBytes int, missPenalty uint64) *TLB {
	return &TLB{
		cache: NewCache(CacheConfig{
			Name: "tlb", SizeBytes: entries * pageBytes,
			LineBytes: pageBytes, Assoc: assoc,
		}),
		missPenalty: missPenalty,
	}
}

// Penalty returns the extra cycles the access at addr pays (0 on a hit).
func (t *TLB) Penalty(addr uint64) uint64 {
	t.Accesses++
	hit, _, _ := t.cache.Access(addr, false)
	if hit {
		return 0
	}
	t.Misses++
	return t.missPenalty
}

// Bus models a shared transfer resource with a width and a cycle
// multiplier (a quarter-frequency bus has clockDiv 4). Transfers reserve
// contiguous slots; utilization is cycle-accounted.
type Bus struct {
	widthBytes int
	clockDiv   uint64
	busyUntil  uint64

	Transfers  uint64
	BusyCycles uint64
}

// NewBus builds a bus.
func NewBus(widthBytes int, clockDiv uint64) *Bus {
	return &Bus{widthBytes: widthBytes, clockDiv: clockDiv}
}

// Reset returns the bus to its just-built state: idle, zero tallies.
func (b *Bus) Reset() {
	b.busyUntil = 0
	b.Transfers, b.BusyCycles = 0, 0
}

// Transfer reserves the bus for `bytes` starting no earlier than `now`,
// returning the completion cycle.
func (b *Bus) Transfer(now uint64, bytes int) uint64 {
	beats := uint64((bytes + b.widthBytes - 1) / b.widthBytes)
	if beats == 0 {
		beats = 1
	}
	dur := beats * b.clockDiv
	start := now
	if b.busyUntil > start {
		start = b.busyUntil
	}
	b.busyUntil = start + dur
	b.Transfers++
	b.BusyCycles += dur
	return b.busyUntil
}

// MSHRFile tracks outstanding line misses, merging secondary misses onto
// the in-flight fill.
type MSHRFile struct {
	lines []mshr

	Allocs  uint64
	Merges  uint64
	FullNow uint64 // times an access found the file full
}

type mshr struct {
	line    uint64
	readyAt uint64
	valid   bool
}

// NewMSHRFile builds a file with n entries.
func NewMSHRFile(n int) *MSHRFile {
	return &MSHRFile{lines: make([]mshr, n)}
}

// Reset returns the file to its just-built state: no outstanding fills,
// zero tallies.
func (m *MSHRFile) Reset() {
	for i := range m.lines {
		m.lines[i] = mshr{}
	}
	m.Allocs, m.Merges, m.FullNow = 0, 0, 0
}

// Lookup finds an outstanding fill of line at `now`; ok is false when no
// fill is in flight.
func (m *MSHRFile) Lookup(line uint64, now uint64) (readyAt uint64, ok bool) {
	for i := range m.lines {
		e := &m.lines[i]
		if e.valid && e.readyAt <= now {
			e.valid = false // retire completed fills lazily
			continue
		}
		if e.valid && e.line == line {
			m.Merges++
			return e.readyAt, true
		}
	}
	return 0, false
}

// Alloc reserves an MSHR for a new fill completing at readyAt. When the
// file is full, it returns the earliest cycle at which an entry frees;
// the caller retries from there (modelled as added latency).
func (m *MSHRFile) Alloc(line uint64, now, readyAt uint64) (waitUntil uint64, ok bool) {
	var earliest uint64 = ^uint64(0)
	for i := range m.lines {
		e := &m.lines[i]
		if !e.valid || e.readyAt <= now {
			*e = mshr{line: line, readyAt: readyAt, valid: true}
			m.Allocs++
			return 0, true
		}
		if e.readyAt < earliest {
			earliest = e.readyAt
		}
	}
	m.FullNow++
	return earliest, false
}

// WriteBuffer absorbs retirement stores so that retire does not stall on
// the data cache; entries drain in FIFO order at the L1 write port rate.
type WriteBuffer struct {
	entries   int
	drainAt   []uint64 // completion cycles of buffered stores (ring)
	head, len int
	drainCost uint64
	lastDrain uint64

	Stores     uint64
	FullStalls uint64
}

// NewWriteBuffer builds an n-entry buffer; drainCost is the cycles each
// entry occupies the L1 write port.
func NewWriteBuffer(n int, drainCost uint64) *WriteBuffer {
	return &WriteBuffer{entries: n, drainAt: make([]uint64, n), drainCost: drainCost}
}

// Reset returns the buffer to its just-built state: empty, zero
// tallies. Stale completion cycles in the ring are unreadable once
// head and len reset, so they are not cleared.
func (w *WriteBuffer) Reset() {
	w.head, w.len = 0, 0
	w.lastDrain = 0
	w.Stores, w.FullStalls = 0, 0
}

// Add buffers a store at `now`, returning the cycle at which retire may
// proceed (== now unless the buffer is full).
func (w *WriteBuffer) Add(now uint64) uint64 {
	// Lazily drain completed entries.
	for w.len > 0 && w.drainAt[w.head] <= now {
		w.head = (w.head + 1) % w.entries
		w.len--
	}
	stallUntil := now
	if w.len == w.entries {
		// Full: wait for the oldest entry.
		stallUntil = w.drainAt[w.head]
		w.head = (w.head + 1) % w.entries
		w.len--
		w.FullStalls++
	}
	start := stallUntil
	if w.lastDrain > start {
		start = w.lastDrain
	}
	done := start + w.drainCost
	w.lastDrain = done
	w.drainAt[(w.head+w.len)%w.entries] = done
	w.len++
	w.Stores++
	return stallUntil
}
