// Package memsys implements the timing model of the paper's §3.1 memory
// system: L1 instruction and data caches, a unified L2, instruction and
// data TLBs with hardware miss handling, MSHRs for non-blocking misses, a
// retirement write buffer, and cycle-accounted backside and memory buses.
//
// The model is latency-forwarding: each access computes the absolute
// cycle at which its data arrives, reserving bus slots and MSHRs along
// the way. This is the standard fidelity class for simulators of this
// kind — contention appears as busy-until reservations rather than
// per-cycle queue stepping.
package memsys

// CacheConfig sizes one cache level.
type CacheConfig struct {
	Name       string
	SizeBytes  int
	LineBytes  int
	Assoc      int
	HitLatency uint64 // cycles from access to data
}

type cacheLine struct {
	valid bool
	dirty bool
	tag   uint64
	lru   uint64
}

// Cache is a set-associative, write-back, write-allocate tag array (data
// values live in the architectural memory; the cache models timing only).
type Cache struct {
	cfg      CacheConfig
	sets     [][]cacheLine
	setShift uint
	setMask  uint64
	tick     uint64

	Accesses   uint64
	Misses     uint64
	Writebacks uint64
}

// NewCache builds a cache; sizes must divide evenly.
func NewCache(cfg CacheConfig) *Cache {
	nLines := cfg.SizeBytes / cfg.LineBytes
	nSets := nLines / cfg.Assoc
	if nSets == 0 || nSets&(nSets-1) != 0 {
		panic("memsys: set count must be a positive power of two: " + cfg.Name)
	}
	c := &Cache{cfg: cfg, sets: make([][]cacheLine, nSets), setMask: uint64(nSets - 1)}
	for s := uint64(1); s < uint64(cfg.LineBytes); s <<= 1 {
		c.setShift++
	}
	// One flat backing array sliced per set: building a pipeline is two
	// allocations per cache, not one per set.
	lines := make([]cacheLine, nLines)
	for i := range c.sets {
		c.sets[i], lines = lines[:cfg.Assoc:cfg.Assoc], lines[cfg.Assoc:]
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// LineAddr maps an address to its line-aligned address.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr &^ (uint64(c.cfg.LineBytes) - 1)
}

// Probe reports whether addr hits without updating any state (used by
// tests and by the hierarchy to overlap L1 hits under misses).
func (c *Cache) Probe(addr uint64) bool {
	set := c.sets[(addr>>c.setShift)&c.setMask]
	tag := addr >> c.setShift >> log2(uint64(len(c.sets)))
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Access looks up addr, allocating the line on a miss. It returns whether
// it hit and, when a dirty victim was displaced, its line address.
func (c *Cache) Access(addr uint64, write bool) (hit bool, victim uint64, victimDirty bool) {
	c.tick++
	c.Accesses++
	setIdx := (addr >> c.setShift) & c.setMask
	set := c.sets[setIdx]
	tag := addr >> c.setShift >> log2(uint64(len(c.sets)))
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.tick
			if write {
				set[i].dirty = true
			}
			return true, 0, false
		}
	}
	c.Misses++
	// Miss: prefer an invalid way, otherwise evict the LRU way.
	vi := -1
	for i := range set {
		if !set[i].valid {
			vi = i
			break
		}
	}
	if vi < 0 {
		vi = 0
		for i := 1; i < len(set); i++ {
			if set[i].lru < set[vi].lru {
				vi = i
			}
		}
	}
	if set[vi].valid && set[vi].dirty {
		victimDirty = true
		victim = (set[vi].tag<<log2(uint64(len(c.sets)))|setIdx)<<c.setShift | 0
		c.Writebacks++
	}
	set[vi] = cacheLine{valid: true, dirty: write, tag: tag, lru: c.tick}
	return false, victim, victimDirty
}

// MissRate returns misses/accesses.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

func log2(v uint64) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
