package memsys

import (
	"reflect"
	"testing"
)

// TestCacheStateRoundTrip warms a cache, snapshots, restores, and
// verifies identical hit/miss behavior (including LRU decisions).
func TestCacheStateRoundTrip(t *testing.T) {
	c := NewCache(CacheConfig{Name: "t", SizeBytes: 1 << 12, LineBytes: 32, Assoc: 2})
	for i := 0; i < 500; i++ {
		c.Access(uint64(i*32%4096+i*64), i%5 == 0)
	}
	r := NewCache(CacheConfig{Name: "t", SizeBytes: 1 << 12, LineBytes: 32, Assoc: 2})
	if err := r.SetState(c.State()); err != nil {
		t.Fatal(err)
	}
	cl := c.Clone()
	for i := 0; i < 500; i++ {
		addr := uint64(i * 96)
		h1, _, _ := c.Access(addr, false)
		h2, _, _ := r.Access(addr, false)
		h3, _, _ := cl.Access(addr, false)
		if h1 != h2 || h1 != h3 {
			t.Fatalf("divergence at %#x: %v %v %v", addr, h1, h2, h3)
		}
	}
	small := NewCache(CacheConfig{Name: "t", SizeBytes: 1 << 10, LineBytes: 32, Assoc: 2})
	if err := small.SetState(c.State()); err == nil {
		t.Error("geometry mismatch accepted")
	}
}

// TestHierarchyWarmRoundTrip verifies warm state transfer and that warm
// accessors touch the same tag state the timing model uses.
func TestHierarchyWarmRoundTrip(t *testing.T) {
	h := New(DefaultConfig())
	for i := 0; i < 2000; i++ {
		h.WarmFetch(uint64(0x1000 + (i%300)*32))
		h.WarmLoad(uint64(0x100000 + (i%700)*8))
		if i%3 == 0 {
			h.WarmStore(uint64(0x200000 + (i%100)*8))
		}
	}
	if h.L1D.Accesses == 0 || h.L1I.Accesses == 0 || h.L2.Accesses == 0 {
		t.Fatal("warm accessors did not touch the caches")
	}

	viaState := New(DefaultConfig())
	if err := viaState.SetWarmState(h.WarmState()); err != nil {
		t.Fatal(err)
	}
	viaClone := h.CloneWarm()
	if !reflect.DeepEqual(viaState.WarmState(), viaClone.WarmState()) {
		t.Fatal("SetWarmState and CloneWarm disagree")
	}
	// A warm hit in the original is a warm hit in the copies.
	for _, probe := range []uint64{0x100000, 0x200000, 0x1000} {
		want := h.L1D.Probe(probe) || h.L1I.Probe(probe)
		got := viaClone.L1D.Probe(probe) || viaClone.L1I.Probe(probe)
		if want != got {
			t.Errorf("probe %#x: original %v clone %v", probe, want, got)
		}
	}
	// Timing state starts empty in the clone.
	if viaClone.MSHRs.Allocs != 0 || viaClone.WriteBuf.Stores != 0 {
		t.Error("clone carried timing state")
	}
}
