package memsys

import "fmt"

// This file holds the serializable tag-state snapshots of the memory
// hierarchy, plus the Warm* accessors the sampling subsystem's functional
// fast-forward uses to keep cache and TLB contents hot without paying for
// (or perturbing) the timing model. Snapshots capture behavioral state —
// line tags, dirty bits, LRU stamps and the LRU clock — so a restored
// hierarchy makes byte-identical replacement decisions; transient timing
// state (MSHRs, write buffer, bus reservations) is empty at an
// instruction boundary by construction and is not serialized.

// CacheLineState is one line's serializable tag state.
type CacheLineState struct {
	Valid bool
	Dirty bool
	Tag   uint64
	LRU   uint64
}

// CacheState is the serializable tag state of one cache (or of a TLB's
// backing tag array): lines flattened set-major, plus the LRU clock.
type CacheState struct {
	Lines []CacheLineState
	Tick  uint64
}

// State deep-copies the cache's tag state.
func (c *Cache) State() CacheState {
	st := CacheState{Lines: make([]CacheLineState, 0, len(c.sets)*c.cfg.Assoc), Tick: c.tick}
	for _, set := range c.sets {
		for i := range set {
			l := &set[i]
			st.Lines = append(st.Lines, CacheLineState{Valid: l.valid, Dirty: l.dirty, Tag: l.tag, LRU: l.lru})
		}
	}
	return st
}

// SetState restores a snapshot; the geometry (total line count) must
// match.
func (c *Cache) SetState(st CacheState) error {
	if len(st.Lines) != len(c.sets)*c.cfg.Assoc {
		return fmt.Errorf("memsys: %s state has %d lines, want %d",
			c.cfg.Name, len(st.Lines), len(c.sets)*c.cfg.Assoc)
	}
	k := 0
	for _, set := range c.sets {
		for i := range set {
			l := st.Lines[k]
			set[i] = cacheLine{valid: l.Valid, dirty: l.Dirty, tag: l.Tag, lru: l.LRU}
			k++
		}
	}
	c.tick = st.Tick
	return nil
}

// State deep-copies the TLB's tag state.
func (t *TLB) State() CacheState { return t.cache.State() }

// SetState restores a TLB snapshot.
func (t *TLB) SetState(st CacheState) error { return t.cache.SetState(st) }

// Clone returns an independent cache with the same geometry and tag
// state — the fast path for per-window hierarchy cloning (straight
// line-array copies, no intermediate state slice).
func (c *Cache) Clone() *Cache {
	n := NewCache(c.cfg)
	for i := range c.sets {
		copy(n.sets[i], c.sets[i])
	}
	n.tick = c.tick
	return n
}

// Clone returns an independent TLB with the same state.
func (t *TLB) Clone() *TLB {
	return &TLB{cache: t.cache.Clone(), missPenalty: t.missPenalty}
}

// CopyTagsFrom overwrites c's tag state with src's without allocating —
// the buffer-reuse path of the sampling engine's pooled window boots.
// Diagnostic tallies restart at zero, so a reused cache is
// indistinguishable from a fresh Clone of src.
func (c *Cache) CopyTagsFrom(src *Cache) error {
	if len(src.sets) != len(c.sets) || src.cfg.Assoc != c.cfg.Assoc {
		return fmt.Errorf("memsys: %s copy geometry %dx%d, want %dx%d",
			c.cfg.Name, len(src.sets), src.cfg.Assoc, len(c.sets), c.cfg.Assoc)
	}
	for i := range c.sets {
		copy(c.sets[i], src.sets[i])
	}
	c.tick = src.tick
	c.Accesses, c.Misses, c.Writebacks = 0, 0, 0
	return nil
}

// CopyFrom overwrites t's tag state with src's without allocating;
// diagnostic tallies restart at zero, as in a fresh Clone.
func (t *TLB) CopyFrom(src *TLB) error {
	if err := t.cache.CopyTagsFrom(src.cache); err != nil {
		return err
	}
	t.Accesses, t.Misses = 0, 0
	return nil
}

// CopyWarmFrom overwrites h's warm tag state with src's without
// allocating, and resets the transient timing state (MSHRs, write
// buffer, buses) to empty — the state CloneWarm builds fresh. The
// hierarchies must share a geometry. A reused hierarchy behaves
// bit-identically to a fresh CloneWarm of src.
func (h *Hierarchy) CopyWarmFrom(src *Hierarchy) error {
	if err := h.L1I.CopyTagsFrom(src.L1I); err != nil {
		return err
	}
	if err := h.L1D.CopyTagsFrom(src.L1D); err != nil {
		return err
	}
	if err := h.L2.CopyTagsFrom(src.L2); err != nil {
		return err
	}
	if err := h.ITLB.CopyFrom(src.ITLB); err != nil {
		return err
	}
	if err := h.DTLB.CopyFrom(src.DTLB); err != nil {
		return err
	}
	h.ResetTransient()
	return nil
}

// ResetTransient empties the transient timing state (MSHRs, write
// buffer, buses) and zeroes every diagnostic tally, hierarchy-wide.
// After ResetTransient plus SetWarmState, a previously used hierarchy is
// bit-equivalent to a fresh CloneWarm — the pooled-slot reboot path of
// the sampling scheduler.
func (h *Hierarchy) ResetTransient() {
	h.MSHRs.Reset()
	h.WriteBuf.Reset()
	h.Backside.Reset()
	h.MemBus.Reset()
	h.LoadAccesses, h.StoreAccesses, h.IFetches = 0, 0, 0
	h.L1I.Accesses, h.L1I.Misses, h.L1I.Writebacks = 0, 0, 0
	h.L1D.Accesses, h.L1D.Misses, h.L1D.Writebacks = 0, 0, 0
	h.L2.Accesses, h.L2.Misses, h.L2.Writebacks = 0, 0, 0
	h.ITLB.Accesses, h.ITLB.Misses = 0, 0
	h.DTLB.Accesses, h.DTLB.Misses = 0, 0
}

// WarmState bundles the hierarchy state that functional warmup carries
// across fast-forwarded regions and into detailed measurement windows.
type WarmState struct {
	L1I, L1D, L2 CacheState
	ITLB, DTLB   CacheState
}

// WarmState snapshots every warmable structure.
func (h *Hierarchy) WarmState() WarmState {
	return WarmState{
		L1I:  h.L1I.State(),
		L1D:  h.L1D.State(),
		L2:   h.L2.State(),
		ITLB: h.ITLB.State(),
		DTLB: h.DTLB.State(),
	}
}

// SetWarmState restores a warm snapshot into a hierarchy of the same
// geometry.
func (h *Hierarchy) SetWarmState(st WarmState) error {
	if err := h.L1I.SetState(st.L1I); err != nil {
		return err
	}
	if err := h.L1D.SetState(st.L1D); err != nil {
		return err
	}
	if err := h.L2.SetState(st.L2); err != nil {
		return err
	}
	if err := h.ITLB.SetState(st.ITLB); err != nil {
		return err
	}
	return h.DTLB.SetState(st.DTLB)
}

// CloneWarm returns a fresh hierarchy of the same configuration carrying
// this hierarchy's warm tag state. Timing state (MSHRs, write buffer,
// buses) starts empty, as at any quiesced instruction boundary.
func (h *Hierarchy) CloneWarm() *Hierarchy {
	return &Hierarchy{
		cfg:      h.cfg,
		L1I:      h.L1I.Clone(),
		L1D:      h.L1D.Clone(),
		L2:       h.L2.Clone(),
		ITLB:     h.ITLB.Clone(),
		DTLB:     h.DTLB.Clone(),
		MSHRs:    NewMSHRFile(h.cfg.MSHRs),
		WriteBuf: NewWriteBuffer(h.cfg.WriteBufEntries, 1),
		Backside: NewBus(h.cfg.BacksideBusBytes, 1),
		MemBus:   NewBus(h.cfg.MemBusBytes, h.cfg.MemBusClockDiv),
	}
}

// WarmFetch touches the instruction-side tag state for the fetch of pc:
// ITLB, L1I, and the L2 on an L1I miss. No timing is accounted.
func (h *Hierarchy) WarmFetch(pc uint64) {
	h.ITLB.Penalty(pc)
	if hit, _, _ := h.L1I.Access(pc, false); !hit {
		h.L2.Access(pc, false)
	}
}

// WarmLoad touches the data-side tag state for a load of addr.
func (h *Hierarchy) WarmLoad(addr uint64) {
	h.DTLB.Penalty(addr)
	if hit, _, _ := h.L1D.Access(addr, false); !hit {
		h.L2.Access(addr, false)
	}
}

// WarmStore touches the data-side tag state for a store to addr
// (write-allocate: the line lands dirty in the L1D, filling from L2 tags
// on a miss, exactly as the timing model's background allocate does).
func (h *Hierarchy) WarmStore(addr uint64) {
	h.DTLB.Penalty(addr)
	if hit, _, _ := h.L1D.Access(addr, true); !hit {
		h.L2.Access(addr, false)
	}
}
