package memsys

// Config carries every memory-system parameter from the paper's §3.1.
type Config struct {
	L1I CacheConfig
	L1D CacheConfig
	L2  CacheConfig

	ITLBEntries    int
	ITLBAssoc      int
	DTLBEntries    int
	DTLBAssoc      int
	PageBytes      int
	TLBMissPenalty uint64

	MSHRs            int
	WriteBufEntries  int
	StoreForwardLat  uint64 // store-queue forward latency
	MemLatency       uint64 // main-memory access latency
	BacksideBusBytes int    // L1<->L2 bus width, processor frequency
	MemBusBytes      int    // L2<->memory bus width
	MemBusClockDiv   uint64 // memory bus clock divider
}

// DefaultConfig returns the paper's memory system: 64KB/2-way/32B L1I,
// 32KB/2-way/32B/2-cycle L1D, 2MB/4-way/64B/6-cycle L2, 64-entry 4-way
// ITLB, 128-entry 4-way DTLB, 30-cycle TLB miss, 16 MSHRs, 16-entry write
// buffer, 2-cycle store forwarding, 80-cycle memory, 32B buses (memory bus
// at quarter frequency).
func DefaultConfig() Config {
	return Config{
		L1I: CacheConfig{Name: "L1I", SizeBytes: 64 << 10, LineBytes: 32, Assoc: 2, HitLatency: 1},
		L1D: CacheConfig{Name: "L1D", SizeBytes: 32 << 10, LineBytes: 32, Assoc: 2, HitLatency: 2},
		L2:  CacheConfig{Name: "L2", SizeBytes: 2 << 20, LineBytes: 64, Assoc: 4, HitLatency: 6},

		ITLBEntries: 64, ITLBAssoc: 4,
		DTLBEntries: 128, DTLBAssoc: 4,
		PageBytes:      4096,
		TLBMissPenalty: 30,

		MSHRs:            16,
		WriteBufEntries:  16,
		StoreForwardLat:  2,
		MemLatency:       80,
		BacksideBusBytes: 32,
		MemBusBytes:      32,
		MemBusClockDiv:   4,
	}
}

// PerfectConfig returns a hierarchy in which every access hits in the L1
// (used by limit studies and unit tests of the core pipeline).
func PerfectConfig() Config {
	c := DefaultConfig()
	c.L1I.SizeBytes = 16 << 20
	c.L1D.SizeBytes = 16 << 20
	c.TLBMissPenalty = 0
	return c
}

// Hierarchy is the assembled memory system.
type Hierarchy struct {
	cfg Config

	L1I, L1D, L2 *Cache
	ITLB, DTLB   *TLB
	MSHRs        *MSHRFile
	WriteBuf     *WriteBuffer
	Backside     *Bus
	MemBus       *Bus

	LoadAccesses  uint64
	StoreAccesses uint64
	IFetches      uint64
}

// New assembles the hierarchy.
func New(cfg Config) *Hierarchy {
	return &Hierarchy{
		cfg:   cfg,
		L1I:   NewCache(cfg.L1I),
		L1D:   NewCache(cfg.L1D),
		L2:    NewCache(cfg.L2),
		ITLB:  NewTLB(cfg.ITLBEntries, cfg.ITLBAssoc, cfg.PageBytes, cfg.TLBMissPenalty),
		DTLB:  NewTLB(cfg.DTLBEntries, cfg.DTLBAssoc, cfg.PageBytes, cfg.TLBMissPenalty),
		MSHRs: NewMSHRFile(cfg.MSHRs),
		// The L1D write port is pipelined: the buffer drains one store
		// per cycle regardless of hit latency.
		WriteBuf: NewWriteBuffer(cfg.WriteBufEntries, 1),
		Backside: NewBus(cfg.BacksideBusBytes, 1),
		MemBus:   NewBus(cfg.MemBusBytes, cfg.MemBusClockDiv),
	}
}

// Config returns the hierarchy parameters.
func (h *Hierarchy) Config() Config { return h.cfg }

// fillFromBelow computes the completion cycle of an L1 line fill that
// begins at `start`, probing the L2 and main memory and reserving buses.
func (h *Hierarchy) fillFromBelow(l1 *Cache, addr uint64, start uint64) uint64 {
	l2Hit, l2Victim, l2VictimDirty := h.L2.Access(addr, false)
	var dataAt uint64
	if l2Hit {
		dataAt = start + h.cfg.L2.HitLatency
	} else {
		// L2 miss: main memory access plus line transfer over the memory
		// bus, then L2 latency on the way up.
		memStart := start + h.cfg.L2.HitLatency // tag check before going out
		arrive := memStart + h.cfg.MemLatency
		arrive = h.MemBus.Transfer(arrive, h.cfg.L2.LineBytes)
		if l2VictimDirty {
			// Dirty L2 victim written back over the same bus.
			h.MemBus.Transfer(arrive, h.cfg.L2.LineBytes)
			_ = l2Victim
		}
		dataAt = arrive
	}
	// L2 -> L1 transfer over the backside bus.
	return h.Backside.Transfer(dataAt, l1.Config().LineBytes)
}

// Load computes the cycle at which the load's data is available, given
// the access begins at `now` (post address-generation). The minimum
// latency is the L1D hit latency (2), making a non-integrating load 3
// cycles including address generation, as in the paper.
func (h *Hierarchy) Load(addr uint64, now uint64) uint64 {
	h.LoadAccesses++
	start := now + h.DTLB.Penalty(addr)
	line := h.L1D.LineAddr(addr)
	hit, victim, victimDirty := h.L1D.Access(addr, false)
	if hit {
		return start + h.cfg.L1D.HitLatency
	}
	if victimDirty {
		h.WriteBuf.Add(start)
		_ = victim
	}
	// Merge onto an outstanding fill when possible.
	if readyAt, ok := h.MSHRs.Lookup(line, start); ok {
		return readyAt
	}
	reqStart := start + h.cfg.L1D.HitLatency // tag check
	fillAt := h.fillFromBelow(h.L1D, addr, reqStart)
	if wait, ok := h.MSHRs.Alloc(line, start, fillAt); !ok {
		// MSHR file full: the request retries when one frees.
		fillAt = wait + (fillAt - reqStart)
		h.MSHRs.Alloc(line, wait, fillAt)
	}
	return fillAt
}

// Store commits a retiring store at `now`, returning the cycle at which
// retirement may proceed (write-buffer admission; the actual cache write
// happens in the background).
func (h *Hierarchy) Store(addr uint64, now uint64) uint64 {
	h.StoreAccesses++
	start := now + h.DTLB.Penalty(addr)
	admitted := h.WriteBuf.Add(start)
	// Background write-allocate: keep the tag state truthful.
	hit, _, victimDirty := h.L1D.Access(addr, true)
	if !hit {
		line := h.L1D.LineAddr(addr)
		if _, ok := h.MSHRs.Lookup(line, admitted); !ok {
			fillAt := h.fillFromBelow(h.L1D, addr, admitted+h.cfg.L1D.HitLatency)
			h.MSHRs.Alloc(line, admitted, fillAt)
		}
	}
	if victimDirty {
		h.WriteBuf.Add(admitted)
	}
	return admitted
}

// IFetch computes the cycle at which the fetch group containing pc is
// available to decode.
func (h *Hierarchy) IFetch(pc uint64, now uint64) uint64 {
	h.IFetches++
	start := now + h.ITLB.Penalty(pc)
	hit, _, _ := h.L1I.Access(pc, false)
	if hit {
		return start + h.cfg.L1I.HitLatency
	}
	line := h.L1I.LineAddr(pc)
	if readyAt, ok := h.MSHRs.Lookup(line, start); ok {
		return readyAt
	}
	reqStart := start + h.cfg.L1I.HitLatency
	fillAt := h.fillFromBelow(h.L1I, pc, reqStart)
	if wait, ok := h.MSHRs.Alloc(line, start, fillAt); !ok {
		fillAt = wait + (fillAt - reqStart)
		h.MSHRs.Alloc(line, wait, fillAt)
	}
	return fillAt
}
