package memsys

import (
	"math/rand"
	"testing"
)

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(CacheConfig{Name: "t", SizeBytes: 1024, LineBytes: 32, Assoc: 2, HitLatency: 2})
	hit, _, _ := c.Access(0x1000, false)
	if hit {
		t.Error("cold access hit")
	}
	hit, _, _ = c.Access(0x1000, false)
	if !hit {
		t.Error("second access missed")
	}
	// Same line, different offset.
	hit, _, _ = c.Access(0x101f, false)
	if !hit {
		t.Error("same-line access missed")
	}
	// Next line.
	hit, _, _ = c.Access(0x1020, false)
	if hit {
		t.Error("next-line access hit")
	}
}

func TestCacheLRUReplacement(t *testing.T) {
	// 2-way: fill both ways of a set, touch the first, then force an
	// eviction — the untouched way must be the victim.
	c := NewCache(CacheConfig{Name: "t", SizeBytes: 1024, LineBytes: 32, Assoc: 2, HitLatency: 1})
	// Set stride = 1024/2 = 512 bytes (16 sets * 32B).
	a, b, d := uint64(0x0000), uint64(0x0200), uint64(0x0400) // all map to set 0
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a is MRU
	c.Access(d, false) // evicts b
	if hit, _, _ := c.Access(a, false); !hit {
		t.Error("MRU line evicted")
	}
	if hit, _, _ := c.Access(b, false); hit {
		t.Error("LRU line survived")
	}
}

func TestCacheDirtyWriteback(t *testing.T) {
	c := NewCache(CacheConfig{Name: "t", SizeBytes: 64, LineBytes: 32, Assoc: 1, HitLatency: 1})
	c.Access(0x0000, true) // dirty
	_, victim, dirty := c.Access(0x0040, false)
	if !dirty {
		t.Error("dirty victim not reported")
	}
	if victim != 0x0000 {
		t.Errorf("victim addr = %#x", victim)
	}
	if c.Writebacks != 1 {
		t.Errorf("writebacks = %d", c.Writebacks)
	}
}

func TestCacheProbeDoesNotMutate(t *testing.T) {
	c := NewCache(CacheConfig{Name: "t", SizeBytes: 64, LineBytes: 32, Assoc: 1, HitLatency: 1})
	if c.Probe(0x1000) {
		t.Error("cold probe hit")
	}
	if c.Accesses != 0 || c.Misses != 0 {
		t.Error("probe mutated stats")
	}
	c.Access(0x1000, false)
	if !c.Probe(0x1000) {
		t.Error("probe missed resident line")
	}
}

func TestTLB(t *testing.T) {
	tlb := NewTLB(4, 2, 4096, 30)
	if p := tlb.Penalty(0x1000); p != 30 {
		t.Errorf("cold TLB penalty = %d", p)
	}
	if p := tlb.Penalty(0x1400); p != 0 {
		t.Errorf("same-page penalty = %d", p)
	}
	if p := tlb.Penalty(0x2000); p != 30 {
		t.Errorf("new-page penalty = %d", p)
	}
}

func TestBusContention(t *testing.T) {
	b := NewBus(32, 4)
	// 64 bytes = 2 beats * 4 cycles = 8 cycles.
	done1 := b.Transfer(100, 64)
	if done1 != 108 {
		t.Errorf("first transfer done at %d", done1)
	}
	// Second transfer must queue behind the first.
	done2 := b.Transfer(100, 64)
	if done2 != 116 {
		t.Errorf("second transfer done at %d", done2)
	}
	// A later transfer starts fresh.
	done3 := b.Transfer(200, 32)
	if done3 != 204 {
		t.Errorf("third transfer done at %d", done3)
	}
	if b.BusyCycles != 8+8+4 {
		t.Errorf("busy cycles = %d", b.BusyCycles)
	}
}

func TestMSHRMergeAndFull(t *testing.T) {
	m := NewMSHRFile(2)
	if _, ok := m.Lookup(0x100, 5); ok {
		t.Error("empty MSHR lookup hit")
	}
	m.Alloc(0x100, 5, 50)
	if ready, ok := m.Lookup(0x100, 10); !ok || ready != 50 {
		t.Errorf("merge = %d, %v", ready, ok)
	}
	m.Alloc(0x200, 6, 60)
	if wait, ok := m.Alloc(0x300, 7, 70); ok || wait != 50 {
		t.Errorf("full alloc: wait=%d ok=%v", wait, ok)
	}
	// After the first fill completes, space frees.
	if _, ok := m.Alloc(0x300, 51, 90); !ok {
		t.Error("alloc after free failed")
	}
	// Completed fills stop matching.
	if _, ok := m.Lookup(0x100, 100); ok {
		t.Error("completed fill still matched")
	}
}

func TestWriteBuffer(t *testing.T) {
	w := NewWriteBuffer(2, 10)
	if s := w.Add(100); s != 100 {
		t.Errorf("first add stalled to %d", s)
	}
	if s := w.Add(100); s != 100 {
		t.Errorf("second add stalled to %d", s)
	}
	// Buffer full: third store waits for the first drain (cycle 110).
	if s := w.Add(100); s != 110 {
		t.Errorf("full add stalled to %d", s)
	}
	if w.FullStalls != 1 {
		t.Errorf("FullStalls = %d", w.FullStalls)
	}
	// Far in the future everything has drained.
	if s := w.Add(10_000); s != 10_000 {
		t.Errorf("late add stalled to %d", s)
	}
}

func TestHierarchyLoadLatencies(t *testing.T) {
	h := New(DefaultConfig())
	addr := uint64(0x10_0000)

	// Cold: TLB miss (30) + L1 miss -> L2 cold miss -> memory.
	done := h.Load(addr, 1000)
	cold := done - 1000
	if cold < 80 {
		t.Errorf("cold load latency %d, want >= 80 (memory)", cold)
	}

	// Warm L1 hit: exactly TLB-hit + 2 cycles.
	done = h.Load(addr, 2000)
	if done != 2002 {
		t.Errorf("L1 hit latency = %d, want 2", done-2000)
	}

	// L2 hit: evict the L1 line by conflict, keep L2 resident.
	// L1D is 32KB 2-way => way size 16KB.
	conflict1 := addr + 16<<10
	conflict2 := addr + 32<<10
	h.Load(conflict1, 3000)
	h.Load(conflict2, 4000)
	done = h.Load(addr, 5000)
	lat := done - 5000
	if lat <= 2 || lat >= 80 {
		t.Errorf("L2 hit latency = %d, want between L1 and memory", lat)
	}
}

func TestHierarchyMSHRMergesParallelMisses(t *testing.T) {
	h := New(DefaultConfig())
	a := uint64(0x20_0000)
	d1 := h.Load(a, 1000)
	d2 := h.Load(a+8, 1001) // same line, one cycle later
	if d2 > d1 {
		t.Errorf("merged miss finished later (%d) than primary (%d)", d2, d1)
	}
}

func TestHierarchyStoreAdmission(t *testing.T) {
	h := New(DefaultConfig())
	// Warm the TLB and line.
	h.Load(0x30_0000, 100)
	now := uint64(10_000)
	if got := h.Store(0x30_0000, now); got != now {
		t.Errorf("store admission stalled: %d", got)
	}
	if h.WriteBuf.Stores == 0 {
		t.Error("store did not reach write buffer")
	}
}

func TestHierarchyIFetch(t *testing.T) {
	h := New(DefaultConfig())
	pc := uint64(0x1000)
	d1 := h.IFetch(pc, 100)
	if d1 <= 100 {
		t.Error("cold ifetch free")
	}
	d2 := h.IFetch(pc, 1000)
	if d2 != 1001 {
		t.Errorf("warm ifetch latency = %d, want 1", d2-1000)
	}
}

func TestPerfectConfigAlwaysHits(t *testing.T) {
	h := New(PerfectConfig())
	rng := rand.New(rand.NewSource(3))
	// Touch a working set far larger than the real L1 but within the
	// perfect 16MB.
	base := uint64(0x10_0000)
	for i := 0; i < 1000; i++ {
		h.Load(base+uint64(rng.Intn(1<<22)), uint64(i*10))
	}
	warmMisses := h.L1D.Misses
	for i := 0; i < 1000; i++ {
		h.Load(base+uint64(rng.Intn(1<<22))&^7, uint64(100000+i*10))
	}
	// After warmup the 16MB cache must absorb everything (no capacity
	// misses; only cold ones).
	if h.L1D.Misses-warmMisses > 1000 {
		t.Errorf("perfect config misses: %d", h.L1D.Misses-warmMisses)
	}
}

func TestHierarchyMonotonicBusTimes(t *testing.T) {
	// Stress random loads; bus reservations must never go backwards and
	// results must be >= request time + min latency.
	h := New(DefaultConfig())
	rng := rand.New(rand.NewSource(9))
	now := uint64(100)
	for i := 0; i < 5000; i++ {
		addr := uint64(rng.Intn(1 << 24))
		done := h.Load(addr, now)
		if done < now+2 {
			t.Fatalf("load at %d done at %d (< min latency)", now, done)
		}
		now += uint64(rng.Intn(3))
	}
}
