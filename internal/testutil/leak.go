// Package testutil holds shared test harness helpers. It may be
// imported only from _test.go files.
package testutil

import (
	"fmt"
	"os"
	"runtime"
	"time"
)

// VerifyNoLeaks wraps a package's tests with a goroutine-leak check —
// call it from TestMain:
//
//	func TestMain(m *testing.M) { testutil.VerifyNoLeaks(m) }
//
// It snapshots the goroutine count before the tests, runs them, and
// fails the package if the count has not settled back down afterwards.
// Workers with graceful shutdown (the sample scheduler's pool, the
// runner's parallel cells) need a settle window, so the check retries
// before declaring a leak and dumps all goroutine stacks when it does.
func VerifyNoLeaks(m interface{ Run() int }) {
	before := runtime.NumGoroutine()
	code := m.Run()
	if code == 0 {
		if leaked, stacks := settle(before); leaked {
			fmt.Fprintf(os.Stderr,
				"testutil: goroutine leak: %d goroutines before the tests, %d after settling\n\n%s\n",
				before, runtime.NumGoroutine(), stacks)
			code = 1
		}
	}
	os.Exit(code)
}

// settle polls until the goroutine count returns to the baseline or the
// retry budget runs out, returning the final verdict and, on a leak,
// every goroutine stack.
func settle(baseline int) (leaked bool, stacks []byte) {
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= baseline {
			return false, nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	return true, buf[:runtime.Stack(buf, true)]
}
