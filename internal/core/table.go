// Package core implements the paper's contribution: the integration table
// (IT), the load integration suppression predictor (LISP), and the
// integration decision logic that plugs into register renaming.
//
// The three extensions appear as policy switches:
//
//  1. General reuse — the regfile's ModeGeneral reference-counting
//     discipline, selected by Policy.GeneralReuse.
//  2. Opcode indexing — IndexOpcode with the call depth XOR-mixed into the
//     set index (Policy.OpcodeIndex).
//  3. Reverse integration — speculative memory bypassing entries for
//     stack-pointer stores and SP decrements (Policy.Reverse).
package core

import (
	"rix/internal/isa"
	"rix/internal/regfile"
)

// Entry is one integration-table record: an operation descriptor tuple
// <operation, input-preg1, input-preg2, output-preg> with generation
// counters (paper §2.2) plus branch-outcome and reverse-entry metadata.
type Entry struct {
	valid bool
	stamp uint64 // write stamp, guards stale invalidation

	// Tag.
	pc  uint64 // PC-indexed mode tag
	op  isa.Opcode
	imm int64

	// Register dataflow.
	in1, in2       regfile.PReg
	in1Gen, in2Gen uint8
	out            regfile.PReg
	outGen         uint8

	// Conditional-branch outcome entries carry the resolved direction
	// instead of an output register.
	isBranch bool
	taken    bool

	// Reverse-integration entries (extension 3).
	reverse bool

	createdSeq uint64 // rename sequence at creation, for distance stats
	lru        uint64
}

// Out returns the entry's output physical register and generation.
func (e *Entry) Out() (regfile.PReg, uint8) { return e.out, e.outGen }

// IsReverse reports whether this is a reverse-integration entry.
func (e *Entry) IsReverse() bool { return e.reverse }

// Taken returns a branch entry's recorded outcome.
func (e *Entry) Taken() bool { return e.taken }

// CreatedSeq returns the rename sequence number at entry creation.
func (e *Entry) CreatedSeq() uint64 { return e.createdSeq }

// Stamp returns the entry's write stamp (changes on every overwrite).
func (e *Entry) Stamp() uint64 { return e.stamp }

// IndexMode selects the IT indexing scheme.
type IndexMode uint8

const (
	// IndexPC is the baseline squash-reuse scheme: set index and tag both
	// come from the instruction PC.
	IndexPC IndexMode = iota
	// IndexOpcode is extension 2: the set index XOR-mixes opcode,
	// immediate, and (optionally) the dynamic call depth; the tag is the
	// minimal opcode/immediate pair.
	IndexOpcode
)

// TableConfig sizes the IT.
type TableConfig struct {
	Entries      int // total entries (default 1024)
	Assoc        int // ways; 0 = fully associative
	Mode         IndexMode
	UseCallDepth bool // XOR call depth into the index (opcode mode)
}

func (c TableConfig) withDefaults() TableConfig {
	if c.Entries == 0 {
		c.Entries = 1024
	}
	if c.Assoc <= 0 || c.Assoc > c.Entries {
		c.Assoc = c.Entries // fully associative
	}
	return c
}

// Key identifies the IT set and tag for one operation instance.
type Key struct {
	PC    uint64
	Op    isa.Opcode
	Imm   int64
	Depth int // dynamic call depth (RAS TOS index)
}

// Table is the set-associative, LRU-managed integration table. Direct and
// reverse entries share the structure (the paper's unified design).
type Table struct {
	cfg   TableConfig
	sets  [][]Entry
	tick  uint64
	stamp uint64

	Lookups  uint64
	Matches  uint64
	Inserts  uint64
	Replaced uint64
}

// NewTable builds an IT.
func NewTable(cfg TableConfig) *Table {
	cfg = cfg.withDefaults()
	nSets := cfg.Entries / cfg.Assoc
	if nSets == 0 {
		nSets = 1
	}
	t := &Table{cfg: cfg, sets: make([][]Entry, nSets)}
	// One flat backing array sliced per set: building a table is two
	// allocations, not one per set.
	entries := make([]Entry, nSets*cfg.Assoc)
	for i := range t.sets {
		t.sets[i], entries = entries[:cfg.Assoc:cfg.Assoc], entries[cfg.Assoc:]
	}
	return t
}

// Config returns the table geometry.
func (t *Table) Config() TableConfig { return t.cfg }

// index computes the set index for a key. In opcode mode the index is the
// XOR of opcode, immediate and call depth (paper §2.3); deliberately not a
// strong hash — the clustering of common opcode/immediate combinations,
// and its relief via the call depth, are the phenomena under study.
func (t *Table) index(k Key) int {
	n := uint64(len(t.sets))
	if t.cfg.Mode == IndexPC {
		return int((k.PC >> 2) % n)
	}
	mix := uint64(k.Op)
	mix ^= uint64(k.Imm) ^ uint64(k.Imm)>>7
	if t.cfg.UseCallDepth {
		mix ^= uint64(k.Depth) << 2
	}
	return int(mix % n)
}

// tagMatch checks the minimal tag: full PC in PC mode, opcode/immediate in
// opcode mode.
func (t *Table) tagMatch(e *Entry, k Key) bool {
	if !e.valid {
		return false
	}
	if t.cfg.Mode == IndexPC {
		return e.pc == k.PC && e.op == k.Op && e.imm == k.Imm
	}
	return e.op == k.Op && e.imm == k.Imm
}

// Match finds an entry whose tag and input operands (register numbers and
// generations) match. The input comparison is the operational equivalence
// test: same operation on the same physical registers.
func (t *Table) Match(k Key, in1 regfile.PReg, in1Gen uint8, in2 regfile.PReg, in2Gen uint8) *Entry {
	t.Lookups++
	set := t.sets[t.index(k)]
	for i := range set {
		e := &set[i]
		if !t.tagMatch(e, k) {
			continue
		}
		if e.in1 != in1 || e.in2 != in2 {
			continue
		}
		if e.in1 != regfile.NoReg && e.in1Gen != in1Gen {
			continue
		}
		if e.in2 != regfile.NoReg && e.in2Gen != in2Gen {
			continue
		}
		t.tick++
		e.lru = t.tick
		t.Matches++
		return e
	}
	return nil
}

// Insert writes an entry for key k, replacing an existing entry with the
// same tag and inputs if present (refresh), otherwise the LRU way.
func (t *Table) Insert(k Key, e Entry) *Entry {
	t.Inserts++
	t.tick++
	t.stamp++
	set := t.sets[t.index(k)]
	victim := 0
	found := false
	for i := range set {
		c := &set[i]
		if t.tagMatch(c, k) && c.in1 == e.in1 && c.in2 == e.in2 && c.reverse == e.reverse {
			victim, found = i, true
			break
		}
		if !c.valid {
			if !found {
				victim, found = i, true
			}
			continue
		}
		if !found && c.lru < set[victim].lru {
			victim = i
		}
	}
	if set[victim].valid && !found {
		t.Replaced++
	}
	e.valid = true
	e.pc = k.PC
	e.op = k.Op
	e.imm = k.Imm
	e.lru = t.tick
	e.stamp = t.stamp
	set[victim] = e
	return &set[victim]
}

// Invalidate clears an entry if it still holds the record identified by
// stamp (mis-integration feedback).
func (t *Table) Invalidate(e *Entry, stamp uint64) {
	if e != nil && e.valid && e.stamp == stamp {
		e.valid = false
	}
}

// Occupancy counts valid entries (tests and diagnostics).
func (t *Table) Occupancy() int {
	n := 0
	for _, set := range t.sets {
		for i := range set {
			if set[i].valid {
				n++
			}
		}
	}
	return n
}
