package core

import (
	"rix/internal/isa"
	"rix/internal/regfile"
	"rix/internal/rename"
)

// Policy selects which parts of the integration mechanism are active.
// The paper's four experimental configurations are:
//
//	squash:   {Enable}                                   (PC index, squash-only regfile)
//	+general: {Enable, GeneralReuse}                     (PC index)
//	+opcode:  {Enable, GeneralReuse, OpcodeIndex}
//	+reverse: {Enable, GeneralReuse, OpcodeIndex, Reverse}
type Policy struct {
	Enable       bool
	GeneralReuse bool // extension 1: simultaneous sharing via refcounts
	OpcodeIndex  bool // extension 2: opcode/imm/call-depth indexing
	Reverse      bool // extension 3: speculative memory bypassing

	UseLISP bool // realistic mis-integration suppression
	Oracle  bool // oracle mis-integration suppression (upper bound)

	// Ablations beyond the paper's main configurations.
	ReverseAllStores bool // reverse entries for every store, not just SP-based
	ReverseALU       bool // reverse entries for invertible ALU immediates
	NoCallDepth      bool // opcode indexing without the call-depth mix
}

// ResultStatus is the state of the integrated result at integration time
// (Figure 5 "Status" breakdown).
type ResultStatus uint8

const (
	StatusRename       ResultStatus = iota // allocated, producer not issued
	StatusIssue                            // producer issued, not yet retired
	StatusRetire                           // producer completed and retired
	StatusShadowSquash                     // completed but unmapped (squashed or shadowed)
	NumStatuses
)

// String names the status.
func (s ResultStatus) String() string {
	switch s {
	case StatusRename:
		return "rename"
	case StatusIssue:
		return "issue"
	case StatusRetire:
		return "retire"
	case StatusShadowSquash:
		return "shadow/squash"
	}
	return "?"
}

// Result describes a successful integration.
type Result struct {
	Entry      *Entry
	EntryStamp uint64
	Out        regfile.PReg
	OutGen     uint8
	Reverse    bool
	Distance   uint64 // rename-stream distance from entry creation
	RefAfter   uint16 // reference count after the integration increment
	IsBranch   bool
	Taken      bool // branch entries: recorded outcome
}

// ProducerProbe lets the integrator classify the result status and run the
// oracle check; the pipeline supplies it.
type ProducerProbe interface {
	// Status reports the Figure-5 state of physical register p at
	// integration time, given its pre-integration reference count.
	Status(p regfile.PReg, refBefore uint16) ResultStatus
	// OracleValueKnown reports whether the architecturally correct value
	// of the candidate instruction is known, and that value.
	OracleValue() (uint64, bool)
	// PregValueKnown reports the eventual value of p if determinable now.
	PregValue(p regfile.PReg) (uint64, bool)
}

// Integrator bundles the IT, LISP and policy into the rename-stage
// decision logic.
type Integrator struct {
	Policy Policy
	Table  *Table
	LISP   *LISP
	RF     *regfile.File

	// Stats.
	Attempts         uint64
	Hits             uint64
	IneligibleOut    uint64
	SaturationFails  uint64
	LISPSuppressions uint64
	OracleRejects    uint64
}

// New builds an integrator. The regfile must have been configured with
// the matching mode (general vs squash-only).
func New(p Policy, tcfg TableConfig, lcfg LISPConfig, rf *regfile.File) *Integrator {
	if p.OpcodeIndex {
		tcfg.Mode = IndexOpcode
		tcfg.UseCallDepth = !p.NoCallDepth
	} else {
		tcfg.Mode = IndexPC
		tcfg.UseCallDepth = false
	}
	return &Integrator{
		Policy: p,
		Table:  NewTable(tcfg),
		LISP:   NewLISP(lcfg),
		RF:     rf,
	}
}

// key builds the IT key for an instruction instance.
func (g *Integrator) key(in isa.Instr, pc uint64, depth int) Key {
	return Key{PC: pc, Op: in.Op, Imm: in.Imm, Depth: depth}
}

// inputs extracts the IT input operands from the current map.
func inputs(in isa.Instr, m *rename.MapTable) (regfile.PReg, uint8, regfile.PReg, uint8) {
	in1, in2 := regfile.NoReg, regfile.NoReg
	var g1, g2 uint8
	if in.Op.ReadsRa() {
		mp := m.Get(in.Ra)
		in1, g1 = mp.P, mp.Gen
	}
	if in.Op.ReadsRb() {
		mp := m.Get(in.Rb)
		in2, g2 = mp.P, mp.Gen
	}
	return in1, g1, in2, g2
}

// TryIntegrate attempts to integrate the instruction at rename. seq is
// the rename sequence number (for the distance statistic). On success it
// performs the reference-count increment and returns the result; the
// caller updates the map table. probe may be nil (no oracle, status
// reported as shadow/squash for zero-reference results only).
func (g *Integrator) TryIntegrate(in isa.Instr, pc uint64, depth int, seq uint64, m *rename.MapTable, probe ProducerProbe) (Result, ResultStatus, bool) {
	if !g.Policy.Enable || !in.Op.Integrable() {
		return Result{}, 0, false
	}
	isBranch := in.Op.IsConditional()
	if !isBranch && (!in.Op.HasDest() || in.Rd == isa.RegZero) {
		return Result{}, 0, false
	}
	g.Attempts++

	if in.Op.IsLoad() && g.Policy.UseLISP && g.LISP.Suppress(pc) {
		g.LISPSuppressions++
		return Result{}, 0, false
	}

	in1, g1, in2, g2 := inputs(in, m)
	e := g.Table.Match(g.key(in, pc, depth), in1, g1, in2, g2)
	if e == nil {
		return Result{}, 0, false
	}

	if isBranch {
		// Branch integration: outcome reuse, no register transfer.
		if !e.isBranch {
			return Result{}, 0, false
		}
		g.Hits++
		return Result{
			Entry: e, EntryStamp: e.stamp, Out: regfile.NoReg,
			Distance: seq - e.createdSeq, IsBranch: true, Taken: e.taken,
		}, StatusRetire, true
	}
	if e.isBranch {
		return Result{}, 0, false
	}

	if !g.RF.Eligible(e.out, e.outGen) {
		g.IneligibleOut++
		return Result{}, 0, false
	}

	// Oracle suppression: integrate only when the entry's value provably
	// equals the architecturally correct value of this instruction.
	if g.Policy.Oracle && in.Op.IsLoad() && probe != nil {
		if want, ok := probe.OracleValue(); ok {
			if got, known := probe.PregValue(e.out); known && got != want {
				g.OracleRejects++
				return Result{}, 0, false
			}
		}
	}

	refBefore := g.RF.RefCount(e.out)
	if !g.RF.Integrate(e.out) {
		g.SaturationFails++
		return Result{}, 0, false
	}
	g.Hits++

	status := StatusShadowSquash
	if probe != nil {
		status = probe.Status(e.out, refBefore)
	} else if refBefore > 0 {
		status = StatusRetire
	}
	return Result{
		Entry: e, EntryStamp: e.stamp, Out: e.out, OutGen: e.outGen,
		Reverse: e.reverse, Distance: seq - e.createdSeq,
		RefAfter: g.RF.RefCount(e.out),
	}, status, true
}

// NoteRenamed creates IT entries after an instruction renamed. seq is the
// rename sequence number. out/oldOut are the post-rename destination
// mapping and the mapping it displaced (needed for SP-decrement reverse
// entries). integrated suppresses direct-entry creation (entries are
// created only when integration fails, paper §2.1).
func (g *Integrator) NoteRenamed(in isa.Instr, pc uint64, depth int, seq uint64,
	in1 rename.Mapping, in2 rename.Mapping, out rename.Mapping, oldOut rename.Mapping, integrated bool) {

	if !g.Policy.Enable {
		return
	}

	// Direct entries: integrable, register-writing operations. Branches
	// insert at resolution (outcome not known here); stores never insert
	// direct entries.
	if !integrated && in.Op.Integrable() && in.Op.HasDest() && in.Rd != isa.RegZero && !in.Op.IsConditional() {
		g.Table.Insert(g.key(in, pc, depth), Entry{
			in1: pregOf(in.Op.ReadsRa(), in1), in1Gen: in1.Gen,
			in2: pregOf(in.Op.ReadsRb(), in2), in2Gen: in2.Gen,
			out: out.P, outGen: out.Gen,
			createdSeq: seq,
		})
	}

	// Reverse entries (extension 3) require opcode indexing: the consumer
	// of the entry has a different PC than its creator.
	if !g.Policy.Reverse || !g.Policy.OpcodeIndex {
		return
	}

	switch {
	case in.Op.IsStore() && (in.Ra == isa.RegSP || g.Policy.ReverseAllStores):
		// stq rb, disp(ra)  creates  <ldq/disp, ra, -, rb>: a future load
		// from the same address reuses the store's data register.
		loadOp, _ := in.Op.StoreLoadPair()
		g.Table.Insert(Key{PC: pc, Op: loadOp, Imm: in.Imm, Depth: depth}, Entry{
			in1: in1.P, in1Gen: in1.Gen, // base register
			in2: regfile.NoReg,
			out: in2.P, outGen: in2.Gen, // data register
			reverse:    true,
			createdSeq: seq,
		})

	case in.IsSPDecrement():
		// lda sp, -n(sp) creates <lda/+n, newSP, -, oldSP>: the matching
		// increment reuses the pre-call stack-pointer register.
		invOp, invImm, _ := in.Op.Inverse(in.Imm)
		g.Table.Insert(Key{PC: pc, Op: invOp, Imm: invImm, Depth: depth}, Entry{
			in1: out.P, in1Gen: out.Gen,
			in2: regfile.NoReg,
			out: oldOut.P, outGen: oldOut.Gen,
			reverse:    true,
			createdSeq: seq,
		})

	case g.Policy.ReverseALU && in.Op.HasDest() && in.Rd != isa.RegZero && in.Rd != in.Ra:
		// Ablation: general invertible ALU immediates.
		if invOp, invImm, ok := in.Op.Inverse(in.Imm); ok && in.Op != isa.LDA {
			g.Table.Insert(Key{PC: pc, Op: invOp, Imm: invImm, Depth: depth}, Entry{
				in1: out.P, in1Gen: out.Gen,
				in2: regfile.NoReg,
				out: in1.P, outGen: in1.Gen,
				reverse:    true,
				createdSeq: seq,
			})
		}
	}
}

func pregOf(reads bool, m rename.Mapping) regfile.PReg {
	if !reads {
		return regfile.NoReg
	}
	return m.P
}

// NoteBranchResolved inserts a conditional-branch outcome entry at
// resolution time, keyed by the branch's rename-time input mapping.
func (g *Integrator) NoteBranchResolved(in isa.Instr, pc uint64, depth int, seq uint64,
	in1 rename.Mapping, taken bool) {
	if !g.Policy.Enable || !in.Op.IsConditional() {
		return
	}
	g.Table.Insert(g.key(in, pc, depth), Entry{
		in1: in1.P, in1Gen: in1.Gen,
		in2:      regfile.NoReg,
		out:      regfile.NoReg,
		isBranch: true, taken: taken,
		createdSeq: seq,
	})
}

// OnMisIntegration handles DIVA feedback: train the LISP for loads and
// invalidate the offending entry.
func (g *Integrator) OnMisIntegration(in isa.Instr, pc uint64, e *Entry, stamp uint64) {
	if in.Op.IsLoad() {
		g.LISP.Train(pc)
	}
	g.Table.Invalidate(e, stamp)
}
