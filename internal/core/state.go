package core

import (
	"fmt"

	"rix/internal/isa"
	"rix/internal/regfile"
)

// This file holds the serializable state snapshots of the integration
// table and the LISP — the core-side state hooks of the sampling
// subsystem. Unlike caches and branch predictors, IT entries name
// physical registers, which exist only inside one pipeline instance, so
// the functional fast-forward cannot warm the IT across windows; instead
// each detailed window warms it during its warmup prefix
// (pipeline.RunWindow). The hooks exist so pipeline.BootState can seed
// either structure (tests, future pipeline-state checkpoints) and so
// tooling can inspect or persist their contents.

// EntryState is one IT entry's serializable form. Zero-valued fields of
// an invalid entry are meaningless.
type EntryState struct {
	Valid bool
	Stamp uint64

	PC  uint64
	Op  isa.Opcode
	Imm int64

	In1, In2       regfile.PReg
	In1Gen, In2Gen uint8
	Out            regfile.PReg
	OutGen         uint8

	IsBranch bool
	Taken    bool
	Reverse  bool

	CreatedSeq uint64
	LRU        uint64
}

// TableState is the serializable state of an integration table: entries
// flattened set-major plus the LRU clock and write stamp.
type TableState struct {
	Entries []EntryState
	Tick    uint64
	Stamp   uint64
}

// State deep-copies the table contents.
func (t *Table) State() TableState {
	st := TableState{Entries: make([]EntryState, 0, len(t.sets)*t.cfg.Assoc), Tick: t.tick, Stamp: t.stamp}
	for _, set := range t.sets {
		for i := range set {
			e := &set[i]
			st.Entries = append(st.Entries, EntryState{
				Valid: e.valid, Stamp: e.stamp,
				PC: e.pc, Op: e.op, Imm: e.imm,
				In1: e.in1, In2: e.in2, In1Gen: e.in1Gen, In2Gen: e.in2Gen,
				Out: e.out, OutGen: e.outGen,
				IsBranch: e.isBranch, Taken: e.taken, Reverse: e.reverse,
				CreatedSeq: e.createdSeq, LRU: e.lru,
			})
		}
	}
	return st
}

// SetState restores a snapshot; the geometry (total entry count) must
// match. The caller is responsible for the physical-register identities
// the entries name being meaningful in the consuming pipeline.
func (t *Table) SetState(st TableState) error {
	if len(st.Entries) != len(t.sets)*t.cfg.Assoc {
		return fmt.Errorf("core: IT state has %d entries, want %d",
			len(st.Entries), len(t.sets)*t.cfg.Assoc)
	}
	k := 0
	for _, set := range t.sets {
		for i := range set {
			e := st.Entries[k]
			set[i] = Entry{
				valid: e.Valid, stamp: e.Stamp,
				pc: e.PC, op: e.Op, imm: e.Imm,
				in1: e.In1, in2: e.In2, in1Gen: e.In1Gen, in2Gen: e.In2Gen,
				out: e.Out, outGen: e.OutGen,
				isBranch: e.IsBranch, taken: e.Taken, reverse: e.Reverse,
				createdSeq: e.CreatedSeq, lru: e.LRU,
			}
			k++
		}
	}
	t.tick = st.Tick
	t.stamp = st.Stamp
	return nil
}

// LISPEntryState is one LISP entry's serializable form.
type LISPEntryState struct {
	Valid bool
	PC    uint64
	LRU   uint64
}

// LISPState is the serializable state of a LISP: entries flattened
// set-major plus the LRU clock. LISP state is purely PC-keyed, so unlike
// TableState it is meaningful across pipeline instances.
type LISPState struct {
	Entries []LISPEntryState
	Tick    uint64
}

// State deep-copies the predictor contents.
func (l *LISP) State() LISPState {
	st := LISPState{Entries: make([]LISPEntryState, 0, len(l.sets)*l.assoc), Tick: l.tick}
	for _, set := range l.sets {
		for i := range set {
			e := &set[i]
			st.Entries = append(st.Entries, LISPEntryState{Valid: e.valid, PC: e.pc, LRU: e.lru})
		}
	}
	return st
}

// CopyFrom overwrites l with src's behavioral state without allocating —
// the buffer-reuse path of the sampling engine's pooled window boots.
// Diagnostic tallies restart at zero, as in a fresh NewLISP + SetState.
func (l *LISP) CopyFrom(src *LISP) error {
	if len(src.sets) != len(l.sets) || src.assoc != l.assoc {
		return fmt.Errorf("core: LISP copy geometry %dx%d, want %dx%d",
			len(src.sets), src.assoc, len(l.sets), l.assoc)
	}
	for i := range l.sets {
		copy(l.sets[i], src.sets[i])
	}
	l.tick = src.tick
	l.Lookups, l.Suppressed, l.TrainInsert = 0, 0, 0
	return nil
}

// SetState restores a snapshot; the geometry must match.
func (l *LISP) SetState(st LISPState) error {
	if len(st.Entries) != len(l.sets)*l.assoc {
		return fmt.Errorf("core: LISP state has %d entries, want %d",
			len(st.Entries), len(l.sets)*l.assoc)
	}
	k := 0
	for _, set := range l.sets {
		for i := range set {
			e := st.Entries[k]
			set[i] = lispEntry{valid: e.Valid, pc: e.PC, lru: e.LRU}
			k++
		}
	}
	l.tick = st.Tick
	return nil
}
