package core

import (
	"reflect"
	"testing"

	"rix/internal/regfile"
)

// TestTableStateRoundTrip fills a table, snapshots it, restores into a
// fresh table, and verifies identical match/replacement behavior.
func TestTableStateRoundTrip(t *testing.T) {
	cfg := TableConfig{Entries: 64, Assoc: 4, Mode: IndexOpcode, UseCallDepth: true}
	a := NewTable(cfg)
	for i := 0; i < 300; i++ {
		k := Key{PC: uint64(0x1000 + i*4), Op: 17, Imm: int64(i % 9), Depth: i % 5}
		if a.Match(k, regfile.PReg(i%40), uint8(i%16), regfile.NoReg, 0) == nil {
			a.Insert(k, Entry{in1: regfile.PReg(i % 40), in1Gen: uint8(i % 16),
				in2: regfile.NoReg, out: regfile.PReg(100 + i%40), outGen: uint8(i % 16)})
		}
	}
	b := NewTable(cfg)
	if err := b.SetState(a.State()); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.State(), b.State()) {
		t.Fatal("state did not round-trip")
	}
	if a.Occupancy() != b.Occupancy() {
		t.Fatalf("occupancy %d != %d", a.Occupancy(), b.Occupancy())
	}
	// Identical lookups and identical LRU decisions afterwards.
	for i := 0; i < 300; i++ {
		k := Key{PC: uint64(0x1000 + i*8), Op: 17, Imm: int64(i % 9), Depth: i % 5}
		in1 := regfile.PReg(i % 40)
		ea := a.Match(k, in1, uint8(i%16), regfile.NoReg, 0)
		eb := b.Match(k, in1, uint8(i%16), regfile.NoReg, 0)
		if (ea == nil) != (eb == nil) {
			t.Fatalf("match divergence at %d", i)
		}
		if ea == nil {
			a.Insert(k, Entry{in1: in1, in2: regfile.NoReg})
			b.Insert(k, Entry{in1: in1, in2: regfile.NoReg})
		}
	}
	if !reflect.DeepEqual(a.State(), b.State()) {
		t.Fatal("tables diverged after identical operations")
	}
	small := NewTable(TableConfig{Entries: 32, Assoc: 4})
	if err := small.SetState(a.State()); err == nil {
		t.Error("geometry mismatch accepted")
	}
}

// TestLISPStateRoundTrip verifies the suppression predictor's snapshot —
// the state the sampling engine chains across measurement windows.
func TestLISPStateRoundTrip(t *testing.T) {
	a := NewLISP(LISPConfig{Entries: 16, Assoc: 2})
	a.Train(0x100)
	a.Train(0x104)
	a.Train(0x100) // refresh
	b := NewLISP(LISPConfig{Entries: 16, Assoc: 2})
	if err := b.SetState(a.State()); err != nil {
		t.Fatal(err)
	}
	for _, pc := range []uint64{0x100, 0x104, 0x108} {
		if got, want := b.Suppress(pc), pc != 0x108; got != want {
			t.Errorf("suppress(%#x) = %v, want %v", pc, got, want)
		}
	}
	if err := NewLISP(LISPConfig{Entries: 8, Assoc: 2}).SetState(a.State()); err == nil {
		t.Error("geometry mismatch accepted")
	}
}
