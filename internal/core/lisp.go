package core

// LISP is the load integration suppression predictor: a PC-indexed,
// set-associative tag cache in which a hit suppresses a load's
// integration. It is trained on load mis-integrations and deliberately
// overbiased — entries are never aged out except by conflict, trading
// false suppressions for fewer mis-integrations (paper §3.1).
type LISP struct {
	sets  [][]lispEntry
	assoc int
	tick  uint64

	Lookups     uint64
	Suppressed  uint64
	TrainInsert uint64
}

type lispEntry struct {
	valid bool
	pc    uint64
	lru   uint64
}

// LISPConfig sizes the predictor; defaults are the paper's 1K entries,
// 2-way.
type LISPConfig struct {
	Entries int
	Assoc   int
}

func (c LISPConfig) withDefaults() LISPConfig {
	if c.Entries == 0 {
		c.Entries = 1024
	}
	if c.Assoc == 0 {
		c.Assoc = 2
	}
	return c
}

// NewLISP builds the predictor.
func NewLISP(cfg LISPConfig) *LISP {
	cfg = cfg.withDefaults()
	nSets := cfg.Entries / cfg.Assoc
	if nSets == 0 {
		nSets = 1
	}
	l := &LISP{sets: make([][]lispEntry, nSets), assoc: cfg.Assoc}
	// One flat backing array sliced per set (cf. Table, memsys.Cache).
	entries := make([]lispEntry, nSets*cfg.Assoc)
	for i := range l.sets {
		l.sets[i], entries = entries[:cfg.Assoc:cfg.Assoc], entries[cfg.Assoc:]
	}
	return l
}

func (l *LISP) set(pc uint64) []lispEntry {
	return l.sets[(pc>>2)%uint64(len(l.sets))]
}

// Suppress reports whether integration of the load at pc should be
// suppressed.
func (l *LISP) Suppress(pc uint64) bool {
	l.Lookups++
	set := l.set(pc)
	for i := range set {
		if set[i].valid && set[i].pc == pc {
			l.tick++
			set[i].lru = l.tick
			l.Suppressed++
			return true
		}
	}
	return false
}

// Train records a mis-integrating load.
func (l *LISP) Train(pc uint64) {
	l.TrainInsert++
	l.tick++
	set := l.set(pc)
	victim := 0
	for i := range set {
		if set[i].valid && set[i].pc == pc {
			set[i].lru = l.tick
			return
		}
		if !set[i].valid {
			victim = i
		} else if set[victim].valid && set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = lispEntry{valid: true, pc: pc, lru: l.tick}
}
