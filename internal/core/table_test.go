package core

import (
	"testing"

	"rix/internal/isa"
	"rix/internal/regfile"
)

func TestTableMatchRequiresTagAndInputs(t *testing.T) {
	tb := NewTable(TableConfig{Entries: 64, Assoc: 4, Mode: IndexPC})
	k := Key{PC: 0x1000, Op: isa.ADDQI, Imm: 1}
	tb.Insert(k, Entry{in1: 5, in1Gen: 2, in2: regfile.NoReg, out: 9, outGen: 1, createdSeq: 10})

	if e := tb.Match(k, 5, 2, regfile.NoReg, 0); e == nil {
		t.Fatal("exact match failed")
	}
	if e := tb.Match(k, 6, 2, regfile.NoReg, 0); e != nil {
		t.Error("matched wrong input register")
	}
	if e := tb.Match(k, 5, 3, regfile.NoReg, 0); e != nil {
		t.Error("matched stale generation")
	}
	if e := tb.Match(Key{PC: 0x2000, Op: isa.ADDQI, Imm: 1}, 5, 2, regfile.NoReg, 0); e != nil {
		t.Error("PC mode matched different PC")
	}
	if e := tb.Match(Key{PC: 0x1000, Op: isa.ADDQI, Imm: 2}, 5, 2, regfile.NoReg, 0); e != nil {
		t.Error("matched different immediate")
	}
}

func TestTableOpcodeModeIgnoresPC(t *testing.T) {
	tb := NewTable(TableConfig{Entries: 64, Assoc: 4, Mode: IndexOpcode, UseCallDepth: true})
	k := Key{PC: 0x1000, Op: isa.LDQ, Imm: 8, Depth: 3}
	tb.Insert(k, Entry{in1: 5, in1Gen: 0, in2: regfile.NoReg, out: 9})

	// Different static instruction (different PC), same op/imm/depth: must
	// match — that is the point of extension 2.
	k2 := Key{PC: 0x5000, Op: isa.LDQ, Imm: 8, Depth: 3}
	if e := tb.Match(k2, 5, 0, regfile.NoReg, 0); e == nil {
		t.Error("opcode mode failed to match across PCs")
	}
	// Different call depth indexes a different set — with call-depth
	// mixing, the lookup misses (entry distribution property).
	k3 := Key{PC: 0x5000, Op: isa.LDQ, Imm: 8, Depth: 4}
	if e := tb.Match(k3, 5, 0, regfile.NoReg, 0); e != nil {
		t.Error("different call depth unexpectedly matched (index should differ)")
	}
}

func TestTableOpcodeIndexConflicts(t *testing.T) {
	// Without call-depth mixing, identical op/imm pairs from many
	// instructions pile into one set — the conflict phenomenon of §2.3.
	noDepth := NewTable(TableConfig{Entries: 64, Assoc: 2, Mode: IndexOpcode, UseCallDepth: false})
	withDepth := NewTable(TableConfig{Entries: 64, Assoc: 2, Mode: IndexOpcode, UseCallDepth: true})
	for d := 0; d < 8; d++ {
		k := Key{Op: isa.LDQ, Imm: 0, Depth: d}
		noDepth.Insert(k, Entry{in1: regfile.PReg(d + 1), out: regfile.PReg(d + 100)})
		withDepth.Insert(k, Entry{in1: regfile.PReg(d + 1), out: regfile.PReg(d + 100)})
	}
	// Without depth: all 8 inserts land in one 2-way set; at most 2
	// survive.
	if got := noDepth.Occupancy(); got > 2 {
		t.Errorf("no-depth occupancy = %d, want <= 2", got)
	}
	// With depth: inserts spread across sets.
	if got := withDepth.Occupancy(); got < 6 {
		t.Errorf("with-depth occupancy = %d, want >= 6", got)
	}
}

func TestTableLRUReplacement(t *testing.T) {
	tb := NewTable(TableConfig{Entries: 2, Assoc: 2, Mode: IndexPC})
	// One set of two ways; all PCs map to it.
	kA := Key{PC: 0x1000, Op: isa.ADDQ}
	kB := Key{PC: 0x1004, Op: isa.ADDQ}
	kC := Key{PC: 0x1008, Op: isa.ADDQ}
	tb.Insert(kA, Entry{in1: 1, in2: 2, out: 10})
	tb.Insert(kB, Entry{in1: 1, in2: 2, out: 11})
	// Touch A to make B the LRU.
	if tb.Match(kA, 1, 0, 2, 0) == nil {
		t.Fatal("A missing")
	}
	tb.Insert(kC, Entry{in1: 1, in2: 2, out: 12})
	if tb.Match(kA, 1, 0, 2, 0) == nil {
		t.Error("MRU entry A evicted")
	}
	if tb.Match(kB, 1, 0, 2, 0) != nil {
		t.Error("LRU entry B survived")
	}
}

func TestTableRefreshSameTuple(t *testing.T) {
	tb := NewTable(TableConfig{Entries: 4, Assoc: 4, Mode: IndexPC})
	k := Key{PC: 0x1000, Op: isa.ADDQI, Imm: 1}
	tb.Insert(k, Entry{in1: 5, in2: regfile.NoReg, out: 9})
	tb.Insert(k, Entry{in1: 5, in2: regfile.NoReg, out: 10}) // refresh, not second copy
	if got := tb.Occupancy(); got != 1 {
		t.Errorf("occupancy = %d, want 1 (refresh)", got)
	}
	e := tb.Match(k, 5, 0, regfile.NoReg, 0)
	if e == nil || e.out != 10 {
		t.Errorf("refresh did not update out: %+v", e)
	}
}

func TestTableInvalidateStampGuard(t *testing.T) {
	tb := NewTable(TableConfig{Entries: 4, Assoc: 4, Mode: IndexPC})
	k := Key{PC: 0x1000, Op: isa.ADDQI, Imm: 1}
	e := tb.Insert(k, Entry{in1: 5, in2: regfile.NoReg, out: 9})
	stale := e.Stamp()
	// Overwrite the slot with a different tuple.
	tb.Insert(k, Entry{in1: 6, in2: regfile.NoReg, out: 11})
	tb.Invalidate(e, stale) // must be a no-op: stamp changed
	if tb.Match(k, 6, 0, regfile.NoReg, 0) == nil {
		t.Error("stale invalidation clobbered a newer entry")
	}
	e2 := tb.Insert(k, Entry{in1: 7, in2: regfile.NoReg, out: 12})
	tb.Invalidate(e2, e2.Stamp())
	if tb.Match(k, 7, 0, regfile.NoReg, 0) != nil {
		t.Error("invalidation failed")
	}
}

func TestBranchEntries(t *testing.T) {
	tb := NewTable(TableConfig{Entries: 16, Assoc: 4, Mode: IndexPC})
	k := Key{PC: 0x1000, Op: isa.BNE}
	tb.Insert(k, Entry{in1: 5, in1Gen: 1, in2: regfile.NoReg, out: regfile.NoReg, isBranch: true, taken: true})
	e := tb.Match(k, 5, 1, regfile.NoReg, 0)
	if e == nil || !e.isBranch || !e.Taken() {
		t.Errorf("branch entry: %+v", e)
	}
}

func TestFullyAssociative(t *testing.T) {
	tb := NewTable(TableConfig{Entries: 8, Assoc: 0, Mode: IndexOpcode}) // 0 => fully assoc
	for i := 0; i < 8; i++ {
		tb.Insert(Key{Op: isa.LDQ, Imm: int64(i * 8)}, Entry{in1: 3, in2: regfile.NoReg, out: regfile.PReg(i + 10)})
	}
	if tb.Occupancy() != 8 {
		t.Errorf("occupancy = %d, want 8", tb.Occupancy())
	}
	for i := 0; i < 8; i++ {
		if tb.Match(Key{Op: isa.LDQ, Imm: int64(i * 8)}, 3, 0, regfile.NoReg, 0) == nil {
			t.Errorf("entry %d missing in fully associative table", i)
		}
	}
}

func TestLISP(t *testing.T) {
	l := NewLISP(LISPConfig{Entries: 64, Assoc: 2})
	if l.Suppress(0x1000) {
		t.Error("cold LISP suppressed")
	}
	l.Train(0x1000)
	if !l.Suppress(0x1000) {
		t.Error("trained LISP did not suppress")
	}
	// Overbias: repeated suppression hits keep the entry alive.
	for i := 0; i < 100; i++ {
		if !l.Suppress(0x1000) {
			t.Fatal("entry aged out despite hits")
		}
	}
	// Re-training an existing PC must not duplicate.
	l.Train(0x1000)
	if l.TrainInsert != 2 {
		t.Errorf("TrainInsert = %d", l.TrainInsert)
	}
}

func TestLISPConflictEviction(t *testing.T) {
	l := NewLISP(LISPConfig{Entries: 4, Assoc: 2}) // 2 sets
	// Three PCs in the same set: the LRU one is evicted.
	a, b, c := uint64(0x1000), uint64(0x1000+8), uint64(0x1000+16)
	l.Train(a)
	l.Train(b)
	l.Suppress(a) // refresh a
	l.Train(c)    // evicts b
	if !l.Suppress(a) || !l.Suppress(c) {
		t.Error("expected entries missing")
	}
	if l.Suppress(b) {
		t.Error("LRU entry survived conflict")
	}
}
