package core

import (
	"testing"

	"rix/internal/isa"
	"rix/internal/regfile"
	"rix/internal/rename"
)

// renamer is a miniature rename stage driving the Integrator the way the
// pipeline does, for unit-level walkthroughs of the paper's figures.
type renamer struct {
	t   *testing.T
	g   *Integrator
	rf  *regfile.File
	m   *rename.MapTable
	seq uint64
}

func newRenamer(t *testing.T, p Policy) *renamer {
	rf := regfile.New(regfile.Config{
		NumRegs: 64, GenBits: 4, RefBits: 4, GeneralMode: p.GeneralReuse,
	})
	return &renamer{
		t:  t,
		g:  New(p, TableConfig{Entries: 64, Assoc: 4}, LISPConfig{}, rf),
		rf: rf,
		m:  rename.NewMapTable(),
	}
}

// rename processes one instruction, returning the uop-equivalent record.
type renamed struct {
	in         isa.Instr
	res        Result
	integrated bool
	dest       rename.Mapping
	oldDest    rename.Mapping
	undo       rename.Undo
}

func (r *renamer) rename(in isa.Instr, pc uint64, depth int) renamed {
	r.seq++
	in1, in2 := r.m.Get(in.Ra), r.m.Get(in.Rb)
	res, _, ok := r.g.TryIntegrate(in, pc, depth, r.seq, r.m, nil)
	out := renamed{in: in, res: res, integrated: ok}
	switch {
	case ok && !res.IsBranch:
		out.oldDest = r.m.Set(in.Rd, rename.Mapping{P: res.Out, Gen: res.OutGen})
		out.dest = rename.Mapping{P: res.Out, Gen: res.OutGen}
		out.undo = rename.Undo{L: in.Rd, Old: out.oldDest}
	case in.Op.HasDest() && in.Rd != isa.RegZero:
		p, allocOK := r.rf.Alloc()
		if !allocOK {
			r.t.Fatal("out of physical registers")
		}
		out.dest = rename.Mapping{P: p, Gen: r.rf.Gen(p)}
		out.oldDest = r.m.Set(in.Rd, out.dest)
		out.undo = rename.Undo{L: in.Rd, Old: out.oldDest}
	}
	r.g.NoteRenamed(in, pc, depth, r.seq, in1, in2, out.dest, out.oldDest, out.integrated)
	return out
}

// execute marks the renamed instruction's output computed.
func (r *renamer) execute(u renamed, v uint64) {
	if u.dest.P != regfile.NoReg && u.dest.P != 0 && !u.integrated {
		r.rf.SetReady(u.dest.P, v)
	}
}

// commit retires the instruction: shadow-release of the displaced arch
// mapping (the test keeps rename-time old mapping as the arch shadow,
// valid because these walkthroughs retire in order without intervening
// redefinitions).
func (r *renamer) commit(u renamed) {
	if u.undo.L != 0 || u.dest.P != regfile.NoReg {
		if u.oldDest.P != regfile.ZeroReg && u.oldDest.P != regfile.NoReg {
			r.rf.Release(u.oldDest.P, regfile.CauseShadow)
		}
	}
}

// squash undoes the rename.
func (r *renamer) squash(u renamed) {
	if u.dest.P == regfile.NoReg {
		return
	}
	r.m.Set(u.undo.L, u.undo.Old)
	r.rf.Release(u.dest.P, regfile.CauseSquash)
}

// seedReg gives logical register l a fresh, ready physical mapping.
func (r *renamer) seedReg(l isa.Reg, v uint64) {
	p, _ := r.rf.Alloc()
	r.rf.SetReady(p, v)
	r.m.Set(l, rename.Mapping{P: p, Gen: r.rf.Gen(p)})
}

var generalPolicy = Policy{Enable: true, GeneralReuse: true}

const regT1 = isa.Reg(2)

// TestFigure2Walkthrough reproduces the general-reuse reference-counting
// scenario of the paper's Figure 2: instructions x10/x14 retire, newer
// instances integrate their results — one a shadowed register (0/T -> 1),
// one a still-mapped retired register (1 -> 2, simultaneous sharing) —
// then a squash partially dissolves the sharing.
func TestFigure2Walkthrough(t *testing.T) {
	r := newRenamer(t, generalPolicy)
	r.seedReg(1, 100) // R1 (the example's R1-R3 are r1-r3 here)

	x10 := isa.Instr{Op: isa.ADDQI, Rd: 2, Ra: 1, Imm: 1} // addqi R2, R1, 1
	x14 := isa.Instr{Op: isa.ADDQI, Rd: 3, Ra: 2, Imm: 1} // addqi R3, R2, 1
	x18 := isa.Instr{Op: isa.SUBQI, Rd: 2, Ra: 3, Imm: 1} // subqi R2, R3, 1

	// #1, #2, #3: first instances rename normally and retire.
	u1 := r.rename(x10, 0x10, 0)
	u2 := r.rename(x14, 0x14, 0)
	if u1.integrated || u2.integrated {
		t.Fatal("first instances must not integrate")
	}
	p4, p5 := u1.dest.P, u2.dest.P
	r.execute(u1, 101)
	r.execute(u2, 102)
	r.commit(u1)
	u3 := r.rename(x18, 0x18, 0) // shadows R2 (p4)
	r.execute(u3, 101)
	r.commit(u2)
	r.commit(u3) // R2's old mapping p4 shadow-released -> 0/T

	if r.rf.RefCount(p4) != 0 || !r.rf.Valid(p4) {
		t.Fatalf("p4 must be 0/T, got ref=%d valid=%v", r.rf.RefCount(p4), r.rf.Valid(p4))
	}
	if r.rf.RefCount(p5) != 1 {
		t.Fatalf("p5 must still be mapped by R3, ref=%d", r.rf.RefCount(p5))
	}

	// #4: new instance of x10 integrates p4 (0/T -> 1/T).
	u4 := r.rename(x10, 0x10, 0)
	if !u4.integrated || u4.dest.P != p4 {
		t.Fatalf("#4: integrated=%v dest=p%d want p%d", u4.integrated, u4.dest.P, p4)
	}
	if r.rf.RefCount(p4) != 1 {
		t.Errorf("p4 ref = %d, want 1", r.rf.RefCount(p4))
	}

	// #5: new instance of x14 integrates p5 while its retired mapping is
	// still live (1/T -> 2/T): simultaneous sharing.
	u5 := r.rename(x14, 0x14, 0)
	if !u5.integrated || u5.dest.P != p5 {
		t.Fatalf("#5: integrated=%v dest=p%d want p%d", u5.integrated, u5.dest.P, p5)
	}
	if r.rf.RefCount(p5) != 2 {
		t.Errorf("p5 ref = %d, want 2 (simultaneous sharing)", r.rf.RefCount(p5))
	}
	if u5.res.RefAfter != 2 {
		t.Errorf("RefAfter = %d, want 2", u5.res.RefAfter)
	}

	// Squash #5: sharing partially dissolves; p5 keeps the retired
	// mapping and stays integration-eligible.
	r.squash(u5)
	if r.rf.RefCount(p5) != 1 || !r.rf.Valid(p5) {
		t.Errorf("after squash: p5 ref=%d valid=%v", r.rf.RefCount(p5), r.rf.Valid(p5))
	}

	// A new instance can integrate p5 again.
	u5b := r.rename(x14, 0x14, 0)
	if !u5b.integrated || u5b.dest.P != p5 {
		t.Errorf("re-integration after squash failed")
	}
}

// TestDeadlockAvoidance verifies the 0/F state: a squashed, un-executed
// result must never be integrated (§2.2's deadlock scenario).
func TestDeadlockAvoidance(t *testing.T) {
	r := newRenamer(t, generalPolicy)
	r.seedReg(1, 100)
	x10 := isa.Instr{Op: isa.ADDQI, Rd: 2, Ra: 1, Imm: 1}
	u1 := r.rename(x10, 0x10, 0)
	// Squash before execution.
	r.squash(u1)
	u2 := r.rename(x10, 0x10, 0)
	if u2.integrated {
		t.Fatal("integrated a squashed, un-executed result (deadlock)")
	}
}

// TestSquashOnlyBaseline verifies the baseline discipline: only squashed
// results integrate; shadowed results do not.
func TestSquashOnlyBaseline(t *testing.T) {
	r := newRenamer(t, Policy{Enable: true, GeneralReuse: false})
	r.seedReg(1, 100)
	x10 := isa.Instr{Op: isa.ADDQI, Rd: 2, Ra: 1, Imm: 1}

	// Squash reuse works.
	u1 := r.rename(x10, 0x10, 0)
	r.execute(u1, 101)
	r.squash(u1)
	u2 := r.rename(x10, 0x10, 0)
	if !u2.integrated {
		t.Fatal("squash reuse failed in baseline mode")
	}
	r.execute(u2, 101)

	// Active results do not integrate (no simultaneous sharing).
	u3 := r.rename(x10, 0x10, 0)
	if u3.integrated {
		t.Fatal("baseline mode allowed simultaneous sharing")
	}
}

// TestFigure3Walkthrough reproduces the paper's Figure 3: speculative
// memory bypassing of a caller-save (t0) and callee-save (s0) pair via
// reverse integration, across a stack-pointer decrement/increment.
func TestFigure3Walkthrough(t *testing.T) {
	pol := Policy{Enable: true, GeneralReuse: true, OpcodeIndex: true, Reverse: true}
	r := newRenamer(t, pol)
	r.seedReg(isa.RegT0, 111)
	r.seedReg(isa.RegS0, 222)
	r.seedReg(isa.RegSP, 0x8000)
	t0Preg := r.m.Get(isa.RegT0).P
	s0Preg := r.m.Get(isa.RegS0).P
	spPreg := r.m.Get(isa.RegSP).P

	// Save sequence (depth 0 for the caller-save, depth 1 inside callee).
	// 1: stq t0, 8(sp)       — caller save, creates reverse ldq entry
	st1 := isa.Instr{Op: isa.STQ, Ra: isa.RegSP, Rb: isa.RegT0, Imm: 8}
	r.rename(st1, 0x100, 0)
	// 2: call function       — depth becomes 1 (modelled by depth arg)
	// 3: lda sp, -32(sp)     — creates reverse lda +32 entry
	dec := isa.Instr{Op: isa.LDA, Rd: isa.RegSP, Ra: isa.RegSP, Imm: -32}
	uDec := r.rename(dec, 0x200, 1)
	if uDec.integrated {
		t.Fatal("first decrement must not integrate")
	}
	r.execute(uDec, 0x8000-32)
	newSP := r.m.Get(isa.RegSP).P
	// 4: stq s0, 4(sp)       — callee save
	st4 := isa.Instr{Op: isa.STQ, Ra: isa.RegSP, Rb: isa.RegS0, Imm: 4}
	r.rename(st4, 0x204, 1)

	// Function body: t0 and s0 overwritten.
	body1 := r.rename(isa.Instr{Op: isa.ADDQI, Rd: isa.RegT0, Ra: isa.RegT0, Imm: 7}, 0x208, 1)
	r.execute(body1, 118)
	body2 := r.rename(isa.Instr{Op: isa.ADDQI, Rd: isa.RegS0, Ra: isa.RegS0, Imm: 9}, 0x20c, 1)
	r.execute(body2, 231)
	r.commit(body1)
	r.commit(body2)

	// 5: ldq s0, 4(sp)       — reverse integrates the callee save (s0Preg).
	ld5 := isa.Instr{Op: isa.LDQ, Rd: isa.RegS0, Ra: isa.RegSP, Imm: 4}
	u5 := r.rename(ld5, 0x210, 1)
	if !u5.integrated || !u5.res.Reverse || u5.dest.P != s0Preg {
		t.Fatalf("callee restore: integrated=%v reverse=%v dest=p%d want p%d",
			u5.integrated, u5.res.Reverse, u5.dest.P, s0Preg)
	}

	// 6: lda sp, 32(sp)      — reverse integrates the SP decrement,
	// restoring the pre-call mapping spPreg.
	inc := isa.Instr{Op: isa.LDA, Rd: isa.RegSP, Ra: isa.RegSP, Imm: 32}
	u6 := r.rename(inc, 0x214, 1)
	if !u6.integrated || u6.dest.P != spPreg {
		t.Fatalf("sp increment: integrated=%v dest=p%d want p%d", u6.integrated, u6.dest.P, spPreg)
	}
	_ = newSP

	// 8: ldq t0, 8(sp)       — with sp back on spPreg, the caller restore
	// reverse-integrates t0's original register.
	ld8 := isa.Instr{Op: isa.LDQ, Rd: isa.RegT0, Ra: isa.RegSP, Imm: 8}
	u8 := r.rename(ld8, 0x104, 0)
	if !u8.integrated || !u8.res.Reverse || u8.dest.P != t0Preg {
		t.Fatalf("caller restore: integrated=%v reverse=%v dest=p%d want p%d",
			u8.integrated, u8.res.Reverse, u8.dest.P, t0Preg)
	}
}

// TestReverseRequiresOpcodeIndex verifies that reverse entries are not
// created under PC indexing (a load's PC never matches a store's).
func TestReverseRequiresOpcodeIndex(t *testing.T) {
	pol := Policy{Enable: true, GeneralReuse: true, Reverse: true} // no OpcodeIndex
	r := newRenamer(t, pol)
	r.seedReg(isa.RegT0, 111)
	r.seedReg(isa.RegSP, 0x8000)
	st := isa.Instr{Op: isa.STQ, Ra: isa.RegSP, Rb: isa.RegT0, Imm: 8}
	r.rename(st, 0x100, 0)
	ld := isa.Instr{Op: isa.LDQ, Rd: isa.RegT0, Ra: isa.RegSP, Imm: 8}
	u := r.rename(ld, 0x104, 0)
	if u.integrated {
		t.Error("reverse integration occurred without opcode indexing")
	}
}

func TestNonSPStoreCreatesNoReverseEntry(t *testing.T) {
	pol := Policy{Enable: true, GeneralReuse: true, OpcodeIndex: true, Reverse: true}
	r := newRenamer(t, pol)
	r.seedReg(isa.RegT0, 111)
	r.seedReg(regT1, 0x9000) // non-SP base
	st := isa.Instr{Op: isa.STQ, Ra: regT1, Rb: isa.RegT0, Imm: 8}
	r.rename(st, 0x100, 0)
	ld := isa.Instr{Op: isa.LDQ, Rd: isa.RegT0, Ra: regT1, Imm: 8}
	u := r.rename(ld, 0x104, 0)
	if u.integrated {
		t.Error("non-SP store bypassed without ReverseAllStores")
	}
}

func TestReverseAllStoresAblation(t *testing.T) {
	pol := Policy{Enable: true, GeneralReuse: true, OpcodeIndex: true, Reverse: true, ReverseAllStores: true}
	r := newRenamer(t, pol)
	r.seedReg(isa.RegT0, 111)
	r.seedReg(regT1, 0x9000)
	st := isa.Instr{Op: isa.STQ, Ra: regT1, Rb: isa.RegT0, Imm: 8}
	r.rename(st, 0x100, 0)
	ld := isa.Instr{Op: isa.LDQ, Rd: isa.RegT0, Ra: regT1, Imm: 8}
	u := r.rename(ld, 0x104, 0)
	if !u.integrated || !u.res.Reverse {
		t.Error("ReverseAllStores failed to bypass a non-SP store-load pair")
	}
}

func TestBranchIntegration(t *testing.T) {
	r := newRenamer(t, generalPolicy)
	r.seedReg(1, 5)
	br := isa.Instr{Op: isa.BNE, Ra: 1, Imm: 0x20}
	in1 := r.m.Get(1)
	// First instance resolves taken; entry inserted at resolution.
	r.seq++
	r.g.NoteBranchResolved(br, 0x100, 0, r.seq, in1, true)
	// Second instance with the same input mapping integrates the outcome.
	u := r.rename(br, 0x100, 0)
	if !u.integrated || !u.res.IsBranch || !u.res.Taken {
		t.Fatalf("branch integration: %+v", u.res)
	}
	// After the register is renamed (new producer), the entry must not
	// match.
	w := r.rename(isa.Instr{Op: isa.ADDQI, Rd: 1, Ra: 1, Imm: 1}, 0x104, 0)
	r.execute(w, 6)
	u2 := r.rename(br, 0x100, 0)
	if u2.integrated {
		t.Error("branch integrated across an input redefinition")
	}
}

func TestLISPSuppressesLoadIntegration(t *testing.T) {
	pol := Policy{Enable: true, GeneralReuse: true, UseLISP: true}
	r := newRenamer(t, pol)
	r.seedReg(regT1, 0x9000)
	ld := isa.Instr{Op: isa.LDQ, Rd: isa.RegT0, Ra: regT1, Imm: 0}
	u1 := r.rename(ld, 0x100, 0)
	r.execute(u1, 42)
	r.commit(u1)
	// Train the LISP as if u1's sibling mis-integrated.
	r.g.OnMisIntegration(ld, 0x100, nil, 0)
	u2 := r.rename(ld, 0x100, 0)
	if u2.integrated {
		t.Error("LISP hit did not suppress load integration")
	}
	if r.g.LISPSuppressions != 1 {
		t.Errorf("LISPSuppressions = %d", r.g.LISPSuppressions)
	}
}

func TestNonIntegrableOpsRejected(t *testing.T) {
	r := newRenamer(t, generalPolicy)
	r.seedReg(1, 5)
	for _, in := range []isa.Instr{
		{Op: isa.STQ, Ra: isa.RegSP, Rb: 1, Imm: 0},
		{Op: isa.BR, Imm: 0x10},
		{Op: isa.SYSCALL},
		{Op: isa.ADDQI, Rd: isa.RegZero, Ra: 1, Imm: 1}, // zero-dest
	} {
		if _, _, ok := r.g.TryIntegrate(in, 0x100, 0, 1, r.m, nil); ok {
			t.Errorf("%v integrated", in.Op)
		}
	}
}

func TestDisabledPolicyNoEntries(t *testing.T) {
	r := newRenamer(t, Policy{})
	r.seedReg(1, 5)
	u := r.rename(isa.Instr{Op: isa.ADDQI, Rd: 2, Ra: 1, Imm: 1}, 0x10, 0)
	r.execute(u, 6)
	r.commit(u)
	if r.g.Table.Occupancy() != 0 {
		t.Error("disabled integrator created IT entries")
	}
	u2 := r.rename(isa.Instr{Op: isa.ADDQI, Rd: 2, Ra: 1, Imm: 1}, 0x10, 0)
	if u2.integrated {
		t.Error("disabled integrator integrated")
	}
}

func TestDistanceTracking(t *testing.T) {
	r := newRenamer(t, generalPolicy)
	r.seedReg(1, 5)
	x := isa.Instr{Op: isa.ADDQI, Rd: 2, Ra: 1, Imm: 1}
	u1 := r.rename(x, 0x10, 0) // seq 1, entry created
	r.execute(u1, 6)
	// Burn rename sequence numbers.
	for i := 0; i < 9; i++ {
		w := r.rename(isa.Instr{Op: isa.ADDQI, Rd: 3, Ra: 3, Imm: 1}, uint64(0x100+i*4), 0)
		r.execute(w, uint64(i))
	}
	u2 := r.rename(x, 0x10, 0) // seq 11
	if !u2.integrated {
		t.Fatal("no integration")
	}
	if u2.res.Distance != 10 {
		t.Errorf("distance = %d, want 10", u2.res.Distance)
	}
}
