// Package prog defines the linked program image produced by the assembler
// and consumed by the functional emulator and the pipeline simulator.
package prog

import (
	"fmt"
	"sort"

	"rix/internal/isa"
)

// Standard memory layout. Everything sits below 2^31 so that any address
// fits in the instruction word's signed 32-bit immediate field (data is
// addressed as label(zero)).
const (
	DefaultCodeBase = 0x0000_1000
	DefaultDataBase = 0x0010_0000
	DefaultStackTop = 0x0800_0000 // stacks grow down from here
)

// Program is a loaded, executable image.
type Program struct {
	Name     string
	CodeBase uint64
	Code     []isa.Instr // Code[i] sits at PC = CodeBase + 4*i
	DataBase uint64
	Data     []byte // initialized data image (includes zeroed .space)
	Entry    uint64
	StackTop uint64
	Symbols  map[string]uint64
	Lines    []int // source line of Code[i]; nil if unknown
}

// CodeIndex converts a PC into an index into Code; ok is false when pc is
// outside the text segment or misaligned.
func (p *Program) CodeIndex(pc uint64) (int, bool) {
	if pc < p.CodeBase || (pc-p.CodeBase)%isa.InstrBytes != 0 {
		return 0, false
	}
	i := int((pc - p.CodeBase) / isa.InstrBytes)
	if i >= len(p.Code) {
		return 0, false
	}
	return i, true
}

// InstrAt fetches the instruction at pc; ok is false outside the text
// segment (wrong-path fetch runs off the program).
func (p *Program) InstrAt(pc uint64) (isa.Instr, bool) {
	i, ok := p.CodeIndex(pc)
	if !ok {
		return isa.Instr{}, false
	}
	return p.Code[i], true
}

// PCOf converts a code index back to a PC.
func (p *Program) PCOf(idx int) uint64 {
	return p.CodeBase + uint64(idx)*isa.InstrBytes
}

// Symbol resolves a symbol address.
func (p *Program) Symbol(name string) (uint64, bool) {
	a, ok := p.Symbols[name]
	return a, ok
}

// SymbolFor returns the name of the symbol at or immediately preceding
// addr within the text segment, with its offset; used by the disassembler
// and trace tooling.
func (p *Program) SymbolFor(addr uint64) (string, uint64) {
	best, bestAddr := "", uint64(0)
	for name, a := range p.Symbols {
		if a <= addr && a >= bestAddr && a >= p.CodeBase {
			// Prefer the closest (largest) address; break ties by name for
			// determinism.
			if a > bestAddr || best == "" || name < best {
				best, bestAddr = name, a
			}
		}
	}
	if best == "" {
		return "", 0
	}
	return best, addr - bestAddr
}

// Validate performs structural checks: entry in range, control-flow
// targets inside the text segment, symbol table consistency.
func (p *Program) Validate() error {
	if len(p.Code) == 0 {
		return fmt.Errorf("prog %s: empty text segment", p.Name)
	}
	if _, ok := p.CodeIndex(p.Entry); !ok {
		return fmt.Errorf("prog %s: entry %#x outside text", p.Name, p.Entry)
	}
	end := p.CodeBase + uint64(len(p.Code))*isa.InstrBytes
	for i, in := range p.Code {
		pc := p.PCOf(i)
		switch in.Op.ClassOf() {
		case isa.ClassBranch, isa.ClassJumpDirect, isa.ClassCallDirect:
			t := in.Target(pc)
			if t < p.CodeBase || t >= end {
				return fmt.Errorf("prog %s: %#x: %s target %#x outside text",
					p.Name, pc, isa.Disasm(in, pc), t)
			}
		}
	}
	return nil
}

// SortedSymbols returns symbol names in address order (for listings).
func (p *Program) SortedSymbols() []string {
	names := make([]string, 0, len(p.Symbols))
	for n := range p.Symbols {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		ai, aj := p.Symbols[names[i]], p.Symbols[names[j]]
		if ai != aj {
			return ai < aj
		}
		return names[i] < names[j]
	})
	return names
}
