package prog

import (
	"testing"

	"rix/internal/isa"
)

func sample() *Program {
	return &Program{
		Name:     "t",
		CodeBase: DefaultCodeBase,
		Code: []isa.Instr{
			{Op: isa.ADDQI, Rd: 1, Ra: 1, Imm: 1},
			{Op: isa.BNE, Ra: 1, Imm: -8},
			{Op: isa.SYSCALL},
		},
		DataBase: DefaultDataBase,
		Entry:    DefaultCodeBase,
		StackTop: DefaultStackTop,
		Symbols: map[string]uint64{
			"main": DefaultCodeBase,
			"loop": DefaultCodeBase,
			"end":  DefaultCodeBase + 8,
		},
	}
}

func TestCodeIndex(t *testing.T) {
	p := sample()
	if i, ok := p.CodeIndex(p.CodeBase); !ok || i != 0 {
		t.Errorf("base: %d %v", i, ok)
	}
	if i, ok := p.CodeIndex(p.CodeBase + 8); !ok || i != 2 {
		t.Errorf("third: %d %v", i, ok)
	}
	if _, ok := p.CodeIndex(p.CodeBase + 12); ok {
		t.Error("past end accepted")
	}
	if _, ok := p.CodeIndex(p.CodeBase - 4); ok {
		t.Error("below base accepted")
	}
	if _, ok := p.CodeIndex(p.CodeBase + 2); ok {
		t.Error("misaligned accepted")
	}
}

func TestInstrAtAndPCOf(t *testing.T) {
	p := sample()
	in, ok := p.InstrAt(p.PCOf(1))
	if !ok || in.Op != isa.BNE {
		t.Errorf("InstrAt: %+v %v", in, ok)
	}
	if _, ok := p.InstrAt(0xdead0000); ok {
		t.Error("wild PC accepted")
	}
	if p.PCOf(2) != p.CodeBase+8 {
		t.Errorf("PCOf: %#x", p.PCOf(2))
	}
}

func TestValidate(t *testing.T) {
	p := sample()
	if err := p.Validate(); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}
	// Branch off the end of text.
	bad := sample()
	bad.Code[1].Imm = 400
	if err := bad.Validate(); err == nil {
		t.Error("out-of-text branch accepted")
	}
	// Entry outside text.
	bad2 := sample()
	bad2.Entry = 0
	if err := bad2.Validate(); err == nil {
		t.Error("bad entry accepted")
	}
	// Empty text.
	empty := &Program{Name: "e"}
	if err := empty.Validate(); err == nil {
		t.Error("empty program accepted")
	}
}

func TestSymbolHelpers(t *testing.T) {
	p := sample()
	if a, ok := p.Symbol("main"); !ok || a != p.CodeBase {
		t.Errorf("Symbol: %#x %v", a, ok)
	}
	if _, ok := p.Symbol("nope"); ok {
		t.Error("missing symbol found")
	}
	name, off := p.SymbolFor(p.CodeBase + 8)
	if name != "end" || off != 0 {
		t.Errorf("SymbolFor end: %s+%d", name, off)
	}
	name, off = p.SymbolFor(p.CodeBase + 4)
	if off != 4 || (name != "loop" && name != "main") {
		t.Errorf("SymbolFor mid: %s+%d", name, off)
	}
	sorted := p.SortedSymbols()
	if len(sorted) != 3 || p.Symbols[sorted[0]] > p.Symbols[sorted[2]] {
		t.Errorf("SortedSymbols: %v", sorted)
	}
}
