package bpred

// RAS is the return-address stack. Beyond predicting return targets, its
// top-of-stack index is the dynamic call depth that extension 2 mixes
// into the integration table index (paper §2.3: "the top-of-stack index
// of the return-address-stack ... results in a good distribution").
//
// Squash repair uses full shadow copies (as in 21264-class fetch units
// and the simulators of this era): each snapshot captures the whole
// stack, created lazily and shared until the next push/pop, so the cost
// is one copy per call/return fetched rather than per instruction.
type RAS struct {
	stack []uint64
	tos   int // number of live entries (also the call depth)
	depth int // unclamped call depth (can exceed stack size)

	snap *rasShadow // current shared shadow copy; nil when stale
}

type rasShadow struct {
	stack []uint64
	tos   int
	depth int
}

// RASSnap is the per-instruction checkpoint restored on squashes. The
// shadow is immutable and shared between all instructions fetched between
// two stack mutations.
type RASSnap struct {
	shadow *rasShadow
}

// Tos returns the checkpointed top-of-stack index.
func (s RASSnap) Tos() int {
	if s.shadow == nil {
		return 0
	}
	return s.shadow.tos
}

// Depth returns the checkpointed call depth.
func (s RASSnap) Depth() int {
	if s.shadow == nil {
		return 0
	}
	return s.shadow.depth
}

// NewRAS builds a stack with n entries.
func NewRAS(n int) *RAS {
	return &RAS{stack: make([]uint64, n)}
}

// Depth returns the current dynamic call depth (never negative; not
// clamped by the stack capacity).
func (r *RAS) Depth() int { return r.depth }

// Push records a return address at a call.
func (r *RAS) Push(addr uint64) {
	r.snap = nil
	if r.tos < len(r.stack) {
		r.stack[r.tos] = addr
		r.tos++
	} else {
		// Overflow: overwrite the top; deep recursion loses old entries.
		r.stack[len(r.stack)-1] = addr
	}
	r.depth++
}

// Pop predicts a return target.
func (r *RAS) Pop() (uint64, bool) {
	r.snap = nil
	if r.depth > 0 {
		r.depth--
	}
	if r.tos == 0 {
		return 0, false
	}
	r.tos--
	return r.stack[r.tos], true
}

// Snapshot captures the full state for squash repair. Snapshots taken
// between two stack mutations share one shadow copy.
func (r *RAS) Snapshot() RASSnap {
	if r.snap == nil {
		sh := &rasShadow{stack: make([]uint64, len(r.stack)), tos: r.tos, depth: r.depth}
		copy(sh.stack, r.stack)
		r.snap = sh
	}
	return RASSnap{shadow: r.snap}
}

// Restore rewinds to a snapshot (exact: full shadow copy-back).
func (r *RAS) Restore(s RASSnap) {
	if s.shadow == nil {
		r.tos, r.depth = 0, 0
		return
	}
	copy(r.stack, s.shadow.stack)
	r.tos = s.shadow.tos
	r.depth = s.shadow.depth
	r.snap = nil
}
