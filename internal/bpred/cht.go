package bpred

// CHT is the collision history table: a direct-mapped, PC-indexed tag
// table that remembers loads which previously issued past an unresolved
// older store and collided. A hit makes the scheduler hold the load until
// all older store addresses resolve (paper §3.1).
type CHT struct {
	tags []uint64

	Lookups uint64
	Hits    uint64
	Trained uint64
}

// NewCHT builds a table with n entries.
func NewCHT(n int) *CHT {
	return &CHT{tags: make([]uint64, n)}
}

func (c *CHT) index(pc uint64) int { return int((pc >> 2) % uint64(len(c.tags))) }

// Predict reports whether the load at pc is predicted to collide with an
// older store.
func (c *CHT) Predict(pc uint64) bool {
	c.Lookups++
	if c.tags[c.index(pc)] == pc {
		c.Hits++
		return true
	}
	return false
}

// Train records a collision by the load at pc.
func (c *CHT) Train(pc uint64) {
	c.Trained++
	c.tags[c.index(pc)] = pc
}
