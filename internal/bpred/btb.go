package bpred

// BTB predicts targets of indirect control transfers (JSR/JMP). Direct
// branch and call targets are decoded straight from the instruction word
// in this front end, so the BTB's only customers are register-indirect
// jumps; returns are served by the RAS.
type BTB struct {
	tags    []uint64
	targets []uint64

	Lookups uint64
	Hits    uint64
}

// NewBTB builds a direct-mapped BTB with n entries.
func NewBTB(n int) *BTB {
	return &BTB{tags: make([]uint64, n), targets: make([]uint64, n)}
}

func (b *BTB) index(pc uint64) int { return int((pc >> 2) % uint64(len(b.tags))) }

// Predict returns the predicted target for the control instruction at pc;
// ok is false on a BTB miss.
func (b *BTB) Predict(pc uint64) (uint64, bool) {
	b.Lookups++
	i := b.index(pc)
	if b.tags[i] == pc && b.targets[i] != 0 {
		b.Hits++
		return b.targets[i], true
	}
	return 0, false
}

// Train records the resolved target.
func (b *BTB) Train(pc, target uint64) {
	i := b.index(pc)
	b.tags[i] = pc
	b.targets[i] = target
}
