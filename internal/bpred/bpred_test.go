package bpred

import (
	"math/rand"
	"testing"
)

func TestPredictorLearnsAlwaysTaken(t *testing.T) {
	p := NewPredictor(Config{})
	pc := uint64(0x1000)
	for i := 0; i < 8; i++ {
		_, s := p.Predict(pc)
		p.SpecUpdate(true)
		p.Train(pc, true, s)
	}
	got, _ := p.Predict(pc)
	if !got {
		t.Error("predictor failed to learn always-taken")
	}
}

func TestPredictorLearnsAlternating(t *testing.T) {
	// Gshare with history should learn a strict T/N/T/N pattern that
	// bimodal cannot; the chooser should migrate to gshare.
	p := NewPredictor(Config{})
	pc := uint64(0x2000)
	taken := false
	correct := 0
	const rounds = 400
	for i := 0; i < rounds; i++ {
		pred, s := p.Predict(pc)
		if pred == taken {
			correct++
		}
		p.SpecUpdate(pred)
		if pred != taken {
			p.RestoreAfter(s, taken)
		}
		p.Train(pc, taken, s)
		taken = !taken
	}
	// Expect near-perfect accuracy in the second half.
	if correct < rounds*3/4 {
		t.Errorf("alternating pattern accuracy %d/%d", correct, rounds)
	}
}

func TestHistoryRestore(t *testing.T) {
	p := NewPredictor(Config{})
	_, s := p.Predict(0x1000)
	h0 := s.Hist
	p.SpecUpdate(true)
	p.SpecUpdate(true)
	p.SpecUpdate(false)
	p.Restore(s)
	_, s2 := p.Predict(0x1000)
	if s2.Hist != h0 {
		t.Errorf("Restore: hist %b, want %b", s2.Hist, h0)
	}
	p.RestoreAfter(s, true)
	_, s3 := p.Predict(0x1000)
	if s3.Hist != h0<<1|1 {
		t.Errorf("RestoreAfter: hist %b, want %b", s3.Hist, h0<<1|1)
	}
}

func TestBTB(t *testing.T) {
	b := NewBTB(64)
	if _, ok := b.Predict(0x1000); ok {
		t.Error("cold BTB hit")
	}
	b.Train(0x1000, 0x2000)
	if tgt, ok := b.Predict(0x1000); !ok || tgt != 0x2000 {
		t.Errorf("BTB = %#x, %v", tgt, ok)
	}
	// Conflicting PC evicts (direct-mapped aliasing).
	alias := uint64(0x1000 + 64*4)
	b.Train(alias, 0x3000)
	if tgt, ok := b.Predict(0x1000); ok && tgt == 0x2000 {
		t.Error("aliased entry survived")
	}
}

func TestRASBasic(t *testing.T) {
	r := NewRAS(8)
	if r.Depth() != 0 {
		t.Error("initial depth")
	}
	r.Push(0x1004)
	r.Push(0x2004)
	if r.Depth() != 2 {
		t.Errorf("depth = %d", r.Depth())
	}
	if a, ok := r.Pop(); !ok || a != 0x2004 {
		t.Errorf("pop = %#x, %v", a, ok)
	}
	if a, ok := r.Pop(); !ok || a != 0x1004 {
		t.Errorf("pop = %#x, %v", a, ok)
	}
	if _, ok := r.Pop(); ok {
		t.Error("pop of empty RAS succeeded")
	}
	if r.Depth() != 0 {
		t.Errorf("depth after pops = %d", r.Depth())
	}
}

func TestRASSnapshotRestore(t *testing.T) {
	r := NewRAS(8)
	r.Push(0x1004)
	r.Push(0x2004)
	snap := r.Snapshot()
	// Wrong path: pop below the checkpoint, then push garbage over it —
	// the pattern that defeats one-deep repair.
	r.Pop()
	r.Pop()
	r.Push(0xdead)
	r.Push(0xbeef)
	r.Push(0xf00d)
	r.Restore(snap)
	if r.Depth() != 2 {
		t.Errorf("depth = %d", r.Depth())
	}
	if a, ok := r.Pop(); !ok || a != 0x2004 {
		t.Errorf("restored top = %#x, %v", a, ok)
	}
	if a, ok := r.Pop(); !ok || a != 0x1004 {
		t.Errorf("restored second = %#x, %v", a, ok)
	}
	if snap.Tos() != 2 || snap.Depth() != 2 {
		t.Errorf("snap accessors: tos=%d depth=%d", snap.Tos(), snap.Depth())
	}
}

func TestRASSnapshotSharing(t *testing.T) {
	// Snapshots between mutations share one shadow.
	r := NewRAS(8)
	r.Push(0x10)
	s1 := r.Snapshot()
	s2 := r.Snapshot()
	if s1.shadow != s2.shadow {
		t.Error("snapshots between mutations not shared")
	}
	r.Push(0x20)
	s3 := r.Snapshot()
	if s3.shadow == s1.shadow {
		t.Error("snapshot not invalidated by push")
	}
	// Restoring an old snapshot must not be affected by later mutations.
	r.Restore(s1)
	if a, ok := r.Pop(); !ok || a != 0x10 {
		t.Errorf("restored = %#x, %v", a, ok)
	}
}

func TestRASOverflow(t *testing.T) {
	r := NewRAS(4)
	for i := 0; i < 10; i++ {
		r.Push(uint64(0x1000 + i*4))
	}
	if r.Depth() != 10 {
		t.Errorf("depth = %d, want 10 (unclamped)", r.Depth())
	}
	// Popping gives the most recent pushes that fit.
	if a, ok := r.Pop(); !ok || a != 0x1000+9*4 {
		t.Errorf("pop after overflow = %#x, %v", a, ok)
	}
}

func TestRASDepthTracksRecursion(t *testing.T) {
	// Depth is the IT call-depth index: push/pop symmetric.
	r := NewRAS(32)
	rng := rand.New(rand.NewSource(1))
	depth := 0
	for i := 0; i < 1000; i++ {
		if depth == 0 || rng.Intn(2) == 0 {
			r.Push(rng.Uint64())
			depth++
		} else {
			r.Pop()
			depth--
		}
		if r.Depth() != depth {
			t.Fatalf("step %d: depth %d, want %d", i, r.Depth(), depth)
		}
	}
}

func TestCHT(t *testing.T) {
	c := NewCHT(256)
	if c.Predict(0x1000) {
		t.Error("cold CHT hit")
	}
	c.Train(0x1000)
	if !c.Predict(0x1000) {
		t.Error("trained CHT miss")
	}
	// Different PC in the same set evicts.
	alias := uint64(0x1000 + 256*4)
	c.Train(alias)
	if c.Predict(0x1000) {
		t.Error("aliased CHT entry survived")
	}
	if !c.Predict(alias) {
		t.Error("newly trained entry missing")
	}
}

func TestPredictorStats(t *testing.T) {
	p := NewPredictor(Config{})
	for i := 0; i < 5; i++ {
		p.Predict(uint64(0x1000 + i*4))
	}
	if p.Lookups != 5 {
		t.Errorf("Lookups = %d", p.Lookups)
	}
	b := NewBTB(16)
	b.Train(0x10, 0x20)
	b.Predict(0x10)
	b.Predict(0x14)
	if b.Lookups != 2 || b.Hits != 1 {
		t.Errorf("BTB stats: %d/%d", b.Hits, b.Lookups)
	}
}
