package bpred

import "fmt"

// This file holds the serializable state snapshots of every front-end
// predictor. They serve two customers in the sampling subsystem
// (internal/sample): functional warmup clones a live predictor into each
// detailed measurement window, and on-disk checkpoints persist the warmed
// state so windows can resume or shard across processes. Clone is defined
// as SetState(State()) so both paths are identical by construction.
//
// Snapshots capture behavioral state only (counters that influence
// predictions); the diagnostic hit/lookup tallies restart at zero.

// WithDefaults returns the config with every zero field replaced by the
// paper default — the sizing a Pipeline built from this config will use,
// exported so external warmers construct identically-sized structures.
func (c Config) WithDefaults() Config { return c.withDefaults() }

// PredictorState is the serializable state of the direction predictor.
type PredictorState struct {
	Bimodal []uint8
	Gshare  []uint8
	Chooser []uint8
	Hist    uint64
}

// State deep-copies the predictor's behavioral state.
func (p *Predictor) State() PredictorState {
	return PredictorState{
		Bimodal: append([]uint8(nil), p.bimodal...),
		Gshare:  append([]uint8(nil), p.gshare...),
		Chooser: append([]uint8(nil), p.chooser...),
		Hist:    p.hist,
	}
}

// SetState restores a snapshot; the table geometries must match.
func (p *Predictor) SetState(st PredictorState) error {
	if len(st.Bimodal) != len(p.bimodal) || len(st.Gshare) != len(p.gshare) ||
		len(st.Chooser) != len(p.chooser) {
		return fmt.Errorf("bpred: predictor state geometry %d/%d/%d, want %d/%d/%d",
			len(st.Bimodal), len(st.Gshare), len(st.Chooser),
			len(p.bimodal), len(p.gshare), len(p.chooser))
	}
	copy(p.bimodal, st.Bimodal)
	copy(p.gshare, st.Gshare)
	copy(p.chooser, st.Chooser)
	p.hist = st.Hist
	return nil
}

// Clone returns an independent predictor with the same configuration and
// behavioral state.
func (p *Predictor) Clone() *Predictor {
	c := NewPredictor(p.cfg)
	if err := c.SetState(p.State()); err != nil {
		panic(err) // same config: geometries match by construction
	}
	return c
}

// CopyFrom overwrites p with src's behavioral state without allocating —
// the buffer-reuse path of the sampling engine's pooled window boots. The
// result is indistinguishable from a fresh Clone of src: diagnostic
// tallies restart at zero, exactly as State/SetState leave them.
func (p *Predictor) CopyFrom(src *Predictor) error {
	if len(src.bimodal) != len(p.bimodal) || len(src.gshare) != len(p.gshare) ||
		len(src.chooser) != len(p.chooser) {
		return fmt.Errorf("bpred: predictor copy geometry %d/%d/%d, want %d/%d/%d",
			len(src.bimodal), len(src.gshare), len(src.chooser),
			len(p.bimodal), len(p.gshare), len(p.chooser))
	}
	copy(p.bimodal, src.bimodal)
	copy(p.gshare, src.gshare)
	copy(p.chooser, src.chooser)
	p.hist = src.hist
	p.Lookups = 0
	return nil
}

// BTBState is the serializable state of the branch target buffer.
type BTBState struct {
	Tags    []uint64
	Targets []uint64
}

// State deep-copies the BTB.
func (b *BTB) State() BTBState {
	return BTBState{
		Tags:    append([]uint64(nil), b.tags...),
		Targets: append([]uint64(nil), b.targets...),
	}
}

// SetState restores a snapshot; the entry count must match.
func (b *BTB) SetState(st BTBState) error {
	if len(st.Tags) != len(b.tags) || len(st.Targets) != len(b.targets) {
		return fmt.Errorf("bpred: BTB state has %d entries, want %d", len(st.Tags), len(b.tags))
	}
	copy(b.tags, st.Tags)
	copy(b.targets, st.Targets)
	return nil
}

// Clone returns an independent BTB with the same state.
func (b *BTB) Clone() *BTB {
	c := NewBTB(len(b.tags))
	if err := c.SetState(b.State()); err != nil {
		panic(err)
	}
	return c
}

// CopyFrom overwrites b with src's behavioral state without allocating;
// diagnostic tallies restart at zero, as in a fresh Clone.
func (b *BTB) CopyFrom(src *BTB) error {
	if len(src.tags) != len(b.tags) {
		return fmt.Errorf("bpred: BTB copy has %d entries, want %d", len(src.tags), len(b.tags))
	}
	copy(b.tags, src.tags)
	copy(b.targets, src.targets)
	b.Lookups, b.Hits = 0, 0
	return nil
}

// RASState is the serializable state of the return-address stack. Beyond
// return prediction, Depth seeds the dynamic call depth that extension
// 2's opcode indexing mixes into the IT index — the reason warmup carries
// the RAS across fast-forwarded regions.
type RASState struct {
	Stack []uint64
	Tos   int
	Depth int
}

// State deep-copies the stack.
func (r *RAS) State() RASState {
	return RASState{Stack: append([]uint64(nil), r.stack...), Tos: r.tos, Depth: r.depth}
}

// SetState restores a snapshot; the capacity must match.
func (r *RAS) SetState(st RASState) error {
	if len(st.Stack) != len(r.stack) {
		return fmt.Errorf("bpred: RAS state has %d entries, want %d", len(st.Stack), len(r.stack))
	}
	if st.Tos < 0 || st.Tos > len(r.stack) || st.Depth < 0 {
		return fmt.Errorf("bpred: RAS state tos %d / depth %d out of range", st.Tos, st.Depth)
	}
	copy(r.stack, st.Stack)
	r.tos = st.Tos
	r.depth = st.Depth
	r.snap = nil
	return nil
}

// Clone returns an independent stack with the same state.
func (r *RAS) Clone() *RAS {
	c := NewRAS(len(r.stack))
	if err := c.SetState(r.State()); err != nil {
		panic(err)
	}
	return c
}

// CopyFrom overwrites r with src's behavioral state without allocating.
// Like SetState, it drops any pending shadow snapshot.
func (r *RAS) CopyFrom(src *RAS) error {
	if len(src.stack) != len(r.stack) {
		return fmt.Errorf("bpred: RAS copy has %d entries, want %d", len(src.stack), len(r.stack))
	}
	copy(r.stack, src.stack)
	r.tos = src.tos
	r.depth = src.depth
	r.snap = nil
	return nil
}

// CHTState is the serializable state of the collision history table.
type CHTState struct {
	Tags []uint64
}

// State deep-copies the table.
func (c *CHT) State() CHTState {
	return CHTState{Tags: append([]uint64(nil), c.tags...)}
}

// SetState restores a snapshot; the entry count must match.
func (c *CHT) SetState(st CHTState) error {
	if len(st.Tags) != len(c.tags) {
		return fmt.Errorf("bpred: CHT state has %d entries, want %d", len(st.Tags), len(c.tags))
	}
	copy(c.tags, st.Tags)
	return nil
}

// Clone returns an independent table with the same state.
func (c *CHT) Clone() *CHT {
	n := NewCHT(len(c.tags))
	if err := n.SetState(c.State()); err != nil {
		panic(err)
	}
	return n
}

// CopyFrom overwrites c with src's behavioral state without allocating;
// diagnostic tallies restart at zero, as in a fresh Clone.
func (c *CHT) CopyFrom(src *CHT) error {
	if len(src.tags) != len(c.tags) {
		return fmt.Errorf("bpred: CHT copy has %d entries, want %d", len(src.tags), len(c.tags))
	}
	copy(c.tags, src.tags)
	c.Lookups, c.Hits, c.Trained = 0, 0, 0
	return nil
}
