// Package bpred implements the front-end predictors of the paper's §3.1
// machine: an 8K-entry hybrid gshare/bimodal conditional-branch predictor,
// a 4K-entry BTB for indirect targets, a return-address stack whose
// top-of-stack index doubles as the dynamic call depth used by the
// integration table's opcode indexing (extension 2), and the 256-entry
// direct-mapped collision history table that throttles speculative loads.
package bpred

// Config sizes the predictors. Zero values select the paper defaults.
type Config struct {
	BimodalEntries int // default 8192
	GshareEntries  int // default 8192
	ChooserEntries int // default 8192
	HistoryBits    uint
	BTBEntries     int // default 4096
	RASEntries     int // default 32
	CHTEntries     int // default 256
}

func (c Config) withDefaults() Config {
	if c.BimodalEntries == 0 {
		c.BimodalEntries = 8192
	}
	if c.GshareEntries == 0 {
		c.GshareEntries = 8192
	}
	if c.ChooserEntries == 0 {
		c.ChooserEntries = 8192
	}
	if c.HistoryBits == 0 {
		c.HistoryBits = 13
	}
	if c.BTBEntries == 0 {
		c.BTBEntries = 4096
	}
	if c.RASEntries == 0 {
		c.RASEntries = 32
	}
	if c.CHTEntries == 0 {
		c.CHTEntries = 256
	}
	return c
}

// Predictor is the conditional-branch direction predictor.
type Predictor struct {
	cfg     Config
	bimodal []uint8 // 2-bit counters
	gshare  []uint8
	chooser []uint8 // 2-bit: >=2 selects gshare
	hist    uint64
	histMsk uint64

	Lookups uint64
}

// Snap captures the prediction-time state a branch needs for training and
// history repair.
type Snap struct {
	Hist    uint64
	Bimodal bool
	Gshare  bool
}

// NewPredictor builds the direction predictor.
func NewPredictor(cfg Config) *Predictor {
	cfg = cfg.withDefaults()
	return &Predictor{
		cfg:     cfg,
		bimodal: initCounters(cfg.BimodalEntries),
		gshare:  initCounters(cfg.GshareEntries),
		chooser: initCounters(cfg.ChooserEntries),
		histMsk: 1<<cfg.HistoryBits - 1,
	}
}

func initCounters(n int) []uint8 {
	c := make([]uint8, n)
	for i := range c {
		c[i] = 1 // weakly not-taken
	}
	return c
}

func pcIndex(pc uint64, n int) int {
	return int((pc >> 2) % uint64(n))
}

// Predict returns the predicted direction of the branch at pc plus the
// snapshot needed to train and to repair history after a squash.
func (p *Predictor) Predict(pc uint64) (bool, Snap) {
	p.Lookups++
	bi := p.bimodal[pcIndex(pc, len(p.bimodal))] >= 2
	gi := p.gshare[p.gshareIndex(pc)] >= 2
	use := p.chooser[pcIndex(pc, len(p.chooser))] >= 2
	taken := bi
	if use {
		taken = gi
	}
	return taken, Snap{Hist: p.hist, Bimodal: bi, Gshare: gi}
}

func (p *Predictor) gshareIndex(pc uint64) int {
	return int(((pc >> 2) ^ (p.hist & p.histMsk)) % uint64(len(p.gshare)))
}

// HistSnapshot captures the current speculative history without a
// prediction — every in-flight instruction checkpoints this so that a
// squash at any point can repair the history register.
func (p *Predictor) HistSnapshot() Snap { return Snap{Hist: p.hist} }

// SpecUpdate shifts the predicted direction into the speculative global
// history (done at prediction time, repaired on squash).
func (p *Predictor) SpecUpdate(taken bool) {
	p.hist <<= 1
	if taken {
		p.hist |= 1
	}
}

// Restore rewinds the global history to a snapshot (squash recovery).
func (p *Predictor) Restore(s Snap) { p.hist = s.Hist }

// RestoreAfter rewinds history to the state immediately after the branch
// with snapshot s resolved taken/not-taken — used when recovering to the
// instruction following a mispredicted branch.
func (p *Predictor) RestoreAfter(s Snap, taken bool) {
	p.hist = s.Hist << 1
	if taken {
		p.hist |= 1
	}
}

// Train updates the tables with the architectural outcome, using the
// history captured at prediction time.
func (p *Predictor) Train(pc uint64, taken bool, s Snap) {
	update(&p.bimodal[pcIndex(pc, len(p.bimodal))], taken)
	gidx := int(((pc >> 2) ^ (s.Hist & p.histMsk)) % uint64(len(p.gshare)))
	update(&p.gshare[gidx], taken)
	if s.Bimodal != s.Gshare {
		// Chooser trains toward whichever component was right.
		update(&p.chooser[pcIndex(pc, len(p.chooser))], s.Gshare == taken)
	}
}

func update(c *uint8, taken bool) {
	if taken {
		if *c < 3 {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
}
