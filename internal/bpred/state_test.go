package bpred

import (
	"reflect"
	"testing"
)

// TestPredictorStateRoundTrip trains a predictor, snapshots it, clones
// it, and verifies identical behavior and rejection of wrong geometry.
func TestPredictorStateRoundTrip(t *testing.T) {
	p := NewPredictor(Config{})
	for i := 0; i < 5000; i++ {
		pc := uint64(0x1000 + (i%37)*4)
		taken := i%3 != 0
		_, snap := p.Predict(pc)
		p.SpecUpdate(taken)
		p.Train(pc, taken, snap)
	}
	c := p.Clone()
	if !reflect.DeepEqual(p.State(), c.State()) {
		t.Fatal("clone state differs")
	}
	// Identical predictions after cloning.
	for i := 0; i < 100; i++ {
		pc := uint64(0x1000 + (i%41)*4)
		got, _ := c.Predict(pc)
		want, _ := p.Predict(pc)
		if got != want {
			t.Fatalf("clone diverges at %#x", pc)
		}
		p.SpecUpdate(got)
		c.SpecUpdate(got)
	}
	small := NewPredictor(Config{BimodalEntries: 16, GshareEntries: 16, ChooserEntries: 16})
	if err := small.SetState(p.State()); err == nil {
		t.Error("geometry mismatch accepted")
	}
}

func TestBTBStateRoundTrip(t *testing.T) {
	b := NewBTB(64)
	b.Train(0x100, 0x2000)
	b.Train(0x104, 0x3000)
	c := b.Clone()
	if tgt, ok := c.Predict(0x100); !ok || tgt != 0x2000 {
		t.Fatalf("clone predict: %#x %v", tgt, ok)
	}
	if err := NewBTB(32).SetState(b.State()); err == nil {
		t.Error("geometry mismatch accepted")
	}
}

func TestRASStateRoundTrip(t *testing.T) {
	r := NewRAS(8)
	for i := 0; i < 12; i++ { // overflow the stack deliberately
		r.Push(uint64(0x1000 + i*4))
	}
	c := r.Clone()
	if c.Depth() != r.Depth() {
		t.Fatalf("clone depth %d != %d", c.Depth(), r.Depth())
	}
	for {
		a, ok1 := r.Pop()
		b, ok2 := c.Pop()
		if ok1 != ok2 || a != b {
			t.Fatalf("clone pop diverges: %#x/%v vs %#x/%v", a, ok1, b, ok2)
		}
		if !ok1 {
			break
		}
	}
	if err := NewRAS(4).SetState(r.State()); err == nil {
		t.Error("geometry mismatch accepted")
	}
	bad := r.State()
	bad.Tos = 99
	if err := NewRAS(8).SetState(bad); err == nil {
		t.Error("out-of-range tos accepted")
	}
}

func TestCHTStateRoundTrip(t *testing.T) {
	c := NewCHT(16)
	c.Train(0x40)
	cl := c.Clone()
	if !cl.Predict(0x40) {
		t.Error("clone lost trained entry")
	}
	if cl.Predict(0x44) {
		t.Error("clone predicts untrained pc")
	}
	if err := NewCHT(8).SetState(c.State()); err == nil {
		t.Error("geometry mismatch accepted")
	}
}

func TestConfigWithDefaults(t *testing.T) {
	d := Config{}.WithDefaults()
	if d.BTBEntries != 4096 || d.RASEntries != 32 || d.CHTEntries != 256 || d.BimodalEntries != 8192 {
		t.Errorf("unexpected defaults: %+v", d)
	}
	c := Config{BTBEntries: 64}.WithDefaults()
	if c.BTBEntries != 64 {
		t.Errorf("explicit size overridden: %+v", c)
	}
}
