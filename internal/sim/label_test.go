package sim

import "testing"

func TestOptionsLabel(t *testing.T) {
	cases := []struct {
		opt  Options
		want string
	}{
		{Options{}, "none"},
		{Options{Integration: IntReverse}, "+reverse/lisp"},
		{Options{Integration: IntReverse, Suppression: SuppressOracle}, "+reverse/oracle"},
		{Options{Integration: IntGeneral, Suppression: SuppressNone}, "+general/off"},
		{Options{Core: CoreIWRS}, "none/iw+rs"},
		{Options{Integration: IntReverse, ITEntries: 1024, ITAssoc: -1}, "+reverse/lisp/it1024/afull"},
		{Options{Integration: IntReverse, ITEntries: 64, ITAssoc: 2, PhysRegs: 4096}, "+reverse/lisp/it64/a2/pr4096"},
		{Options{Integration: IntReverse, NoGenCounters: true, ReverseALU: true}, "+reverse/lisp/gen0/rev-alu"},
		{Options{Integration: IntReverse, GenBits: 2, NoCallDepth: true}, "+reverse/lisp/gen2/nodepth"},
	}
	for _, c := range cases {
		if got := c.opt.Label(); got != c.want {
			t.Errorf("Label(%+v) = %q, want %q", c.opt, got, c.want)
		}
	}
	// Equivalent option values must label identically (stable result keys).
	if a, b := (Options{Integration: IntReverse}).Label(), (Options{Integration: IntReverse, Suppression: SuppressLISP}).Label(); a != b {
		t.Errorf("default-suppression labels differ: %q vs %q", a, b)
	}
}
