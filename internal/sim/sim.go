// Package sim is the pure configuration facade: named presets for every
// machine the paper evaluates, rendered into pipeline.Config by
// Options.Config. Execution lives elsewhere — describe a run as a
// run.Request and execute it with run.Do (cancellable, observable,
// resumable), or drive pipeline.New directly for low-level control.
package sim

import (
	"fmt"
	"strings"

	"rix/internal/core"
	"rix/internal/memsys"
	"rix/internal/pipeline"
	"rix/internal/sample"
)

// Integration presets (Figure 4 configurations).
const (
	IntNone    = "none"
	IntSquash  = "squash"
	IntGeneral = "+general"
	IntOpcode  = "+opcode"
	IntReverse = "+reverse"
)

// IntegrationPresets lists the Figure 4 configurations in order.
func IntegrationPresets() []string {
	return []string{IntSquash, IntGeneral, IntOpcode, IntReverse}
}

// Suppression modes.
const (
	SuppressLISP   = "lisp"
	SuppressOracle = "oracle"
	SuppressNone   = "off"
)

// Core variants (Figure 7 configurations).
const (
	CoreBase = "base"  // 4-way issue, 40 RS
	CoreRS   = "rs"    // 4-way issue, 20 RS
	CoreIW   = "iw"    // 3-way issue, single load/store port
	CoreIWRS = "iw+rs" // both reductions
)

// Options selects a machine configuration by name. The JSON form is
// part of the serializable run API (run.Request): zero fields are
// omitted, so a round-tripped Options labels and configures identically
// to the original.
type Options struct {
	Integration string `json:"integration,omitempty"` // IntNone..IntReverse (default IntNone)
	Suppression string `json:"suppression,omitempty"` // SuppressLISP (default), SuppressOracle, SuppressNone
	Core        string `json:"core,omitempty"`        // CoreBase (default) .. CoreIWRS

	ITEntries int `json:"it_entries,omitempty"` // default 1024
	ITAssoc   int `json:"it_assoc,omitempty"`   // default 4; <0 = fully associative
	GenBits   int `json:"gen_bits,omitempty"`   // default 4; use NoGenCounters to ablate to 0
	RefBits   int `json:"ref_bits,omitempty"`   // default 4
	PhysRegs  int `json:"phys_regs,omitempty"`  // default 1024

	// Ablation switches.
	NoGenCounters    bool `json:"no_gen_counters,omitempty"`
	ReverseAllStores bool `json:"reverse_all_stores,omitempty"`
	ReverseALU       bool `json:"reverse_alu,omitempty"`
	NoCallDepth      bool `json:"no_call_depth,omitempty"`
	PerfectMemory    bool `json:"perfect_memory,omitempty"`

	// Sampling switches the run to checkpointed interval sampling
	// (internal/sample). nil means full-detail simulation; the machine
	// configuration (Config) is unaffected by this field.
	Sampling *sample.Sampling `json:"sampling,omitempty"`
}

// Label renders a short canonical name for the option set, suitable as a
// stable result key: the integration preset, then the suppression mode
// (when integration is on), then every explicitly set axis. Unset (zero)
// fields are normalized — Options values that differ only in spelled-out
// vs defaulted integration/suppression label identically — but an axis
// explicitly set to its machine default (e.g. ITEntries: 1024) still
// appears, so such a value labels differently from one that leaves the
// field unset.
func (o Options) Label() string {
	integ := o.Integration
	if integ == "" {
		integ = IntNone
	}
	parts := []string{integ}
	if integ != IntNone {
		sup := o.Suppression
		if sup == "" {
			sup = SuppressLISP
		}
		parts = append(parts, sup)
	}
	if o.Core != "" && o.Core != CoreBase {
		parts = append(parts, o.Core)
	}
	if o.ITEntries > 0 {
		parts = append(parts, fmt.Sprintf("it%d", o.ITEntries))
	}
	switch {
	case o.ITAssoc > 0:
		parts = append(parts, fmt.Sprintf("a%d", o.ITAssoc))
	case o.ITAssoc < 0:
		parts = append(parts, "afull")
	}
	if o.NoGenCounters {
		parts = append(parts, "gen0")
	} else if o.GenBits > 0 {
		parts = append(parts, fmt.Sprintf("gen%d", o.GenBits))
	}
	if o.RefBits > 0 {
		parts = append(parts, fmt.Sprintf("ref%d", o.RefBits))
	}
	if o.PhysRegs > 0 {
		parts = append(parts, fmt.Sprintf("pr%d", o.PhysRegs))
	}
	if o.ReverseAllStores {
		parts = append(parts, "rev-all-st")
	}
	if o.ReverseALU {
		parts = append(parts, "rev-alu")
	}
	if o.NoCallDepth {
		parts = append(parts, "nodepth")
	}
	if o.PerfectMemory {
		parts = append(parts, "pmem")
	}
	if o.Sampling != nil {
		parts = append(parts, fmt.Sprintf("smp%d-%d-%d",
			o.Sampling.Interval, o.Sampling.Window, o.Sampling.Warmup))
	}
	return strings.Join(parts, "/")
}

// Policy translates the named integration preset into a core.Policy.
func (o Options) policy() (core.Policy, error) {
	var p core.Policy
	switch o.Integration {
	case "", IntNone:
		return core.Policy{}, nil
	case IntSquash:
		p = core.Policy{Enable: true}
	case IntGeneral:
		p = core.Policy{Enable: true, GeneralReuse: true}
	case IntOpcode:
		p = core.Policy{Enable: true, GeneralReuse: true, OpcodeIndex: true}
	case IntReverse:
		p = core.Policy{Enable: true, GeneralReuse: true, OpcodeIndex: true, Reverse: true}
	default:
		return p, fmt.Errorf("sim: unknown integration preset %q", o.Integration)
	}
	switch o.Suppression {
	case "", SuppressLISP:
		p.UseLISP = true
	case SuppressOracle:
		p.Oracle = true
	case SuppressNone:
	default:
		return p, fmt.Errorf("sim: unknown suppression mode %q", o.Suppression)
	}
	p.ReverseAllStores = o.ReverseAllStores
	p.ReverseALU = o.ReverseALU
	p.NoCallDepth = o.NoCallDepth
	return p, nil
}

// Config assembles the full pipeline configuration. Sampling does not
// shape the machine, but an invalid sampling layout is rejected here so
// spec registration catches it eagerly.
func (o Options) Config() (pipeline.Config, error) {
	cfg := pipeline.DefaultConfig()
	if o.Sampling != nil {
		if err := o.Sampling.Validate(); err != nil {
			return cfg, err
		}
	}
	pol, err := o.policy()
	if err != nil {
		return cfg, err
	}
	cfg.Policy = pol

	switch o.Core {
	case "", CoreBase:
	case CoreRS:
		cfg.NumRS = 20
	case CoreIW:
		cfg.IssueWidth = 3
		cfg.CombinedLS = true
	case CoreIWRS:
		cfg.IssueWidth = 3
		cfg.CombinedLS = true
		cfg.NumRS = 20
	default:
		return cfg, fmt.Errorf("sim: unknown core variant %q", o.Core)
	}

	if o.ITEntries > 0 {
		cfg.IT.Entries = o.ITEntries
	}
	switch {
	case o.ITAssoc > 0:
		cfg.IT.Assoc = o.ITAssoc
	case o.ITAssoc < 0:
		cfg.IT.Assoc = cfg.IT.Entries // fully associative
	}
	if o.GenBits > 0 {
		cfg.GenBits = uint(o.GenBits)
	}
	if o.NoGenCounters {
		cfg.GenBits = 0
	}
	if o.RefBits > 0 {
		cfg.RefBits = uint(o.RefBits)
	}
	if o.PhysRegs > 0 {
		cfg.PhysRegs = o.PhysRegs
	}
	if o.PerfectMemory {
		cfg.Mem = memsys.PerfectConfig()
	}
	return cfg, nil
}
