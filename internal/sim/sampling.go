package sim

import "rix/internal/sample"

// Sampling is the interval-sampling window layout. The type lives with
// the engine (internal/sample); this alias keeps the knobs on the
// sim.Options facade so experiment specs, run.Requests and CLIs declare
// sampled variants without importing the engine.
type Sampling = sample.Sampling

// DefaultSampling is the tuned default layout (see
// sample.DefaultSampling).
func DefaultSampling() Sampling { return sample.DefaultSampling() }

// ParseSampling parses the CLI forms of a sampling spec: "default" (or
// "on") for DefaultSampling, or "interval/window[/warmup]" in dynamic
// instructions (e.g. "25000/1000/500").
func ParseSampling(s string) (Sampling, error) { return sample.ParseSampling(s) }
