package sim

import (
	"testing"

	"rix/internal/emu"
	"rix/internal/pipeline"
	"rix/internal/prog"
	"rix/internal/workload"
)

// runDetail renders the options into a pipeline.Config and runs the
// full-detail simulation — the execution path the deleted sim.Run shim
// wrapped; tests exercise Options.Config through it end to end.
func runDetail(t *testing.T, p *prog.Program, src emu.TraceSource, o Options) *pipeline.Stats {
	t.Helper()
	cfg, err := o.Config()
	if err != nil {
		t.Fatal(err)
	}
	st, err := pipeline.New(cfg, p, src).Run()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestPolicyPresets(t *testing.T) {
	cases := []struct {
		integ                           string
		enable, general, opcode, revers bool
	}{
		{IntNone, false, false, false, false},
		{IntSquash, true, false, false, false},
		{IntGeneral, true, true, false, false},
		{IntOpcode, true, true, true, false},
		{IntReverse, true, true, true, true},
	}
	for _, c := range cases {
		cfg, err := Options{Integration: c.integ}.Config()
		if err != nil {
			t.Fatalf("%s: %v", c.integ, err)
		}
		p := cfg.Policy
		if p.Enable != c.enable || p.GeneralReuse != c.general ||
			p.OpcodeIndex != c.opcode || p.Reverse != c.revers {
			t.Errorf("%s: policy %+v", c.integ, p)
		}
		if c.enable && !p.UseLISP {
			t.Errorf("%s: default suppression should be LISP", c.integ)
		}
	}
	if _, err := (Options{Integration: "bogus"}).Config(); err == nil {
		t.Error("bogus integration preset accepted")
	}
	if _, err := (Options{Integration: IntReverse, Suppression: "bogus"}).Config(); err == nil {
		t.Error("bogus suppression accepted")
	}
}

func TestSuppressionModes(t *testing.T) {
	cfg, _ := Options{Integration: IntReverse, Suppression: SuppressOracle}.Config()
	if !cfg.Policy.Oracle || cfg.Policy.UseLISP {
		t.Errorf("oracle: %+v", cfg.Policy)
	}
	cfg, _ = Options{Integration: IntReverse, Suppression: SuppressNone}.Config()
	if cfg.Policy.Oracle || cfg.Policy.UseLISP {
		t.Errorf("off: %+v", cfg.Policy)
	}
}

func TestCoreVariants(t *testing.T) {
	base, _ := Options{}.Config()
	if base.IssueWidth != 4 || base.NumRS != 40 || base.CombinedLS {
		t.Errorf("base: %+v", base)
	}
	rs, _ := Options{Core: CoreRS}.Config()
	if rs.NumRS != 20 || rs.IssueWidth != 4 {
		t.Errorf("rs: NumRS=%d IW=%d", rs.NumRS, rs.IssueWidth)
	}
	iw, _ := Options{Core: CoreIW}.Config()
	if iw.IssueWidth != 3 || !iw.CombinedLS || iw.NumRS != 40 {
		t.Errorf("iw: %+v", iw)
	}
	both, _ := Options{Core: CoreIWRS}.Config()
	if both.IssueWidth != 3 || !both.CombinedLS || both.NumRS != 20 {
		t.Errorf("iw+rs: %+v", both)
	}
	if _, err := (Options{Core: "bogus"}).Config(); err == nil {
		t.Error("bogus core accepted")
	}
}

func TestITAndRegfileKnobs(t *testing.T) {
	cfg, _ := Options{ITEntries: 256, ITAssoc: -1, PhysRegs: 4096, GenBits: 2, RefBits: 2}.Config()
	if cfg.IT.Entries != 256 || cfg.IT.Assoc != 256 {
		t.Errorf("IT: %+v", cfg.IT)
	}
	if cfg.PhysRegs != 4096 || cfg.GenBits != 2 || cfg.RefBits != 2 {
		t.Errorf("regfile: phys=%d gen=%d ref=%d", cfg.PhysRegs, cfg.GenBits, cfg.RefBits)
	}
	cfg, _ = Options{NoGenCounters: true}.Config()
	if cfg.GenBits != 0 {
		t.Errorf("NoGenCounters: gen=%d", cfg.GenBits)
	}
}

func TestPerfectMemoryOption(t *testing.T) {
	cfg, _ := Options{PerfectMemory: true}.Config()
	if cfg.Mem.L1D.SizeBytes < 1<<24 || cfg.Mem.TLBMissPenalty != 0 {
		t.Errorf("perfect memory: %+v", cfg.Mem.L1D)
	}
}

func TestOptionsEndToEnd(t *testing.T) {
	b := workload.Synth(workload.SynthParams{Seed: 99, Iters: 300, CallEvery: 4, MemFrac: 0.2})
	bw, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := bw.Prog
	st := runDetail(t, p, bw.Source(), Options{Integration: IntReverse})
	if st.Retired != uint64(bw.DynLen) {
		t.Errorf("retired %d != %d", st.Retired, bw.DynLen)
	}
	if st.IntegratedReverse == 0 {
		t.Error("call-dense synth workload produced no reverse integrations")
	}
	// Perfect memory must never be slower than the real hierarchy.
	perf := runDetail(t, p, bw.Source(), Options{Integration: IntReverse, PerfectMemory: true})
	if perf.Cycles > st.Cycles {
		t.Errorf("perfect memory slower: %d > %d", perf.Cycles, st.Cycles)
	}
}

func TestIntegrationPresetsOrder(t *testing.T) {
	ps := IntegrationPresets()
	if len(ps) != 4 || ps[0] != IntSquash || ps[3] != IntReverse {
		t.Errorf("presets: %v", ps)
	}
}
