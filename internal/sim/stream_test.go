package sim

import (
	"reflect"
	"testing"

	"rix/internal/emu"
	"rix/internal/pipeline"
	"rix/internal/workload"
)

// countingSource wraps a TraceSource and records how records were
// consumed: total pulls and the maximum pulled ahead of a low-water mark
// advanced by the window release (observed through pull ordering).
type countingSource struct {
	inner emu.TraceSource
	pulls int
}

func (c *countingSource) Next() (emu.TraceRec, bool) {
	rec, ok := c.inner.Next()
	if ok {
		c.pulls++
	}
	return rec, ok
}
func (c *countingSource) Err() error    { return c.inner.Err() }
func (c *countingSource) Rewind() error { c.pulls = 0; return c.inner.Rewind() }
func (c *countingSource) SizeHint() int { return c.inner.SizeHint() }

// TestStreamingMatchesMaterialized is the trace-source equivalence
// property: for every integration preset, a pipeline fed by the
// incremental emulator stream must produce Stats identical to one fed by
// the fully materialized trace.
func TestStreamingMatchesMaterialized(t *testing.T) {
	b := workload.Synth(workload.SynthParams{
		Seed: 17, Iters: 400, BodyOps: 10, CallEvery: 3,
		MemFrac: 0.3, BranchFrac: 0.2, Invariants: 2,
	})
	bw, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	trace, err := bw.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	presets := append([]string{IntNone}, IntegrationPresets()...)
	for _, preset := range presets {
		preset := preset
		t.Run(preset, func(t *testing.T) {
			o := Options{Integration: preset}
			streamed := runDetail(t, bw.Prog, bw.Source(), o)
			materialized := runDetail(t, bw.Prog, emu.FromSlice(trace), o)
			if !reflect.DeepEqual(streamed, materialized) {
				t.Errorf("stats diverge between streaming and materialized sources:\nstream: %+v\nslice:  %+v",
					streamed, materialized)
			}
		})
	}
}

// TestStreamConsumedIncrementally asserts bounded buffering: the pipeline
// must not slurp the trace. Two checks — the window high-water mark stays
// within the in-flight bound (ROB + fetch queue + slack), far below the
// trace length; and the source is never pulled past what fetch could have
// seen (pulls == retired + a residual smaller than the window bound).
func TestStreamConsumedIncrementally(t *testing.T) {
	b := workload.Synth(workload.SynthParams{
		Seed: 29, Iters: 600, BodyOps: 12, CallEvery: 4, MemFrac: 0.25, BranchFrac: 0.2,
	})
	bw, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cs := &countingSource{inner: bw.Source()}
	cfg, err := Options{Integration: IntReverse}.Config()
	if err != nil {
		t.Fatal(err)
	}
	st, err := pipeline.New(cfg, bw.Prog, cs).Run()
	if err != nil {
		t.Fatal(err)
	}
	bound := uint64(cfg.ROBSize + cfg.FetchQueue + 8)
	if st.TraceWindowPeak == 0 || st.TraceWindowPeak > bound {
		t.Errorf("trace window peak %d outside (0, %d]", st.TraceWindowPeak, bound)
	}
	if uint64(bw.DynLen) <= 4*bound {
		t.Fatalf("workload too short (%d) to distinguish streaming from slurping", bw.DynLen)
	}
	if got, want := uint64(cs.pulls), st.Retired; got != want {
		t.Errorf("pulled %d records, retired %d: the whole trace should stream through exactly once", got, want)
	}
}

// TestRewindReplaysIdentically exercises the Rewind hook: one streamer
// feeding two sequential configs must behave like two fresh sources.
func TestRewindReplaysIdentically(t *testing.T) {
	b := workload.Synth(workload.SynthParams{Seed: 5, Iters: 200, CallEvery: 3, MemFrac: 0.2})
	bw, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	src := bw.Source()
	first := runDetail(t, bw.Prog, src, Options{Integration: IntReverse})
	if err := src.Rewind(); err != nil {
		t.Fatal(err)
	}
	second := runDetail(t, bw.Prog, src, Options{Integration: IntReverse})
	if !reflect.DeepEqual(first, second) {
		t.Errorf("rewound source diverged:\nfirst:  %+v\nsecond: %+v", first, second)
	}
}
