package cmdutil

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"rix/internal/run"
	"rix/internal/runner"
	"rix/internal/sample/procexec"
)

// SampledFlags is the flag group shared by every tool that executes
// sampled simulations: parallelism for the two phases (detail windows
// and warm-pass shards) plus the content-addressed checkpoint cache and
// its bounds. Register installs the group on a FlagSet under one set of
// names, so rixsim and rixbench stay knob-for-knob identical; after
// flag.Parse, Apply (single run.Request) or Configure (runner.Engine)
// copies the resolved values onto the executing side.
type SampledFlags struct {
	// Jobs sizes the window-scheduler pool (0 = NumCPU for a single
	// run, the -j budget for a matrix; 1 = sequential windows).
	Jobs int
	// WarmJobs bounds warm-pass shard workers (0 = the Jobs budget;
	// 1 = sequential warm pass).
	WarmJobs int
	// WarmStride is the stride-snapshot spacing recorded during a
	// sequential warm pass (0 = the sampling interval).
	WarmStride uint64
	// Cache is the content-addressed warm-set cache directory;
	// CacheMB / CacheAge bound it (0 = unbounded).
	Cache    string
	CacheMB  int
	CacheAge time.Duration
	// Worker, when set, flips the tool into worker mode: instead of
	// running anything itself, it serves window jobs from the named
	// cache directory (see RunWorker). WorkerIdle ends the loop after
	// that long without a claim (0 = run until interrupted).
	Worker     string
	WorkerIdle time.Duration
	// Coordinator executes the sampled run's detail windows on
	// `-worker` processes sharing the -ckpt-cache directory instead of
	// the in-process pool.
	Coordinator bool
}

// Register installs the shared sampled-run flags on fs (typically
// flag.CommandLine).
func (f *SampledFlags) Register(fs *flag.FlagSet) {
	fs.IntVar(&f.Jobs, "jobs", 0,
		"sampled window-scheduler slots (0 = the parallelism budget, 1 = sequential windows)")
	fs.IntVar(&f.WarmJobs, "warm-jobs", 0,
		"warm-pass shard workers once stride snapshots exist (0 = the -jobs budget, 1 = sequential warm pass)")
	fs.Uint64Var(&f.WarmStride, "warm-stride", 0,
		"stride-snapshot spacing in dynamic instructions, recorded on the first warm pass (0 = the sampling interval)")
	fs.StringVar(&f.Cache, "ckpt-cache", "",
		"content-addressed warm-set + stride-snapshot cache directory shared by sampled runs")
	fs.IntVar(&f.CacheMB, "ckpt-cache-mb", 0,
		"bound -ckpt-cache total size in MiB, LRU-evicting on save (0 = unbounded)")
	fs.DurationVar(&f.CacheAge, "ckpt-cache-age", 0,
		"evict -ckpt-cache entries not used within this duration (0 = no age bound)")
	fs.StringVar(&f.Worker, "worker", "",
		"run as a window-job worker over this shared cache directory (serves -coordinator runs; no simulation of its own)")
	fs.DurationVar(&f.WorkerIdle, "worker-idle", 0,
		"exit the -worker loop after this long without claiming a job (0 = run until interrupted)")
	fs.BoolVar(&f.Coordinator, "coordinator", false,
		"execute sampled detail windows on -worker processes sharing -ckpt-cache instead of the in-process pool")
}

// Check validates the flag group's cross-field constraints after
// flag.Parse, with errors that name the missing flag.
func (f *SampledFlags) Check() error {
	if f.Worker != "" && f.Coordinator {
		return fmt.Errorf("-worker and -coordinator are mutually exclusive (a worker serves coordinators, it does not run one)")
	}
	if f.Coordinator && f.Cache == "" {
		return fmt.Errorf("-coordinator needs -ckpt-cache (the directory the -worker processes watch)")
	}
	if f.WorkerIdle > 0 && f.Worker == "" {
		return fmt.Errorf("-worker-idle needs -worker")
	}
	return nil
}

// WorkerMode reports whether -worker was given; the tool should call
// RunWorker and skip its normal body.
func (f *SampledFlags) WorkerMode() bool { return f.Worker != "" }

// RunWorker runs the worker loop behind -worker: claim window jobs
// from the shared cache directory, execute them, write results back.
// Returns when ctx is cancelled or, with -worker-idle, after the idle
// bound passes with no work. verbose logs each claim and completion to
// stderr.
func (f *SampledFlags) RunWorker(ctx context.Context, verbose bool) error {
	wc := procexec.WorkerConfig{Idle: f.WorkerIdle}
	if verbose {
		wc.OnClaim = func(job string, window int) {
			fmt.Fprintf(os.Stderr, "[%s] claimed window %d (%s)\n", time.Now().Format("15:04:05"), window, job)
		}
		wc.OnDone = func(job string, window int) {
			fmt.Fprintf(os.Stderr, "[%s] finished window %d (%s)\n", time.Now().Format("15:04:05"), window, job)
		}
	}
	return procexec.Work(ctx, f.Worker, wc)
}

// Apply copies the resolved knobs onto one sampled run.Request. Only
// call it for requests whose Options.Sampling is set — the warm-shard
// fields are rejected by Validate otherwise.
func (f *SampledFlags) Apply(req *run.Request) {
	jobs := f.Jobs
	if jobs == 0 {
		jobs = runtime.NumCPU()
	}
	req.Jobs = jobs
	warm := f.WarmJobs
	if warm == 0 {
		warm = jobs
	}
	req.WarmJobs = warm
	req.WarmStride = f.WarmStride
	req.CheckpointCache = f.Cache
	if f.Cache != "" {
		req.CacheMaxMB = f.CacheMB
		req.CacheMaxAgeSec = int(f.CacheAge / time.Second)
	}
	if f.Coordinator {
		req.Executor = run.ExecProc
		req.WorkerDir = f.Cache
	}
}

// Configure copies the knobs onto a matrix engine; the engine applies
// them to each sampled cell itself (zero values keep its defaults, so
// -jobs 0 means the engine's -j budget).
func (f *SampledFlags) Configure(e *runner.Engine) {
	e.WindowJobs = f.Jobs
	e.WarmJobs = f.WarmJobs
	e.WarmStride = f.WarmStride
	e.CheckpointCache = f.Cache
	e.CacheMaxMB = f.CacheMB
	e.CacheMaxAgeSec = int(f.CacheAge / time.Second)
	if f.Coordinator {
		e.Executor = run.ExecProc
		e.WorkerDir = f.Cache
	}
}
