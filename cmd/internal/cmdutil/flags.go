package cmdutil

import (
	"flag"
	"runtime"
	"time"

	"rix/internal/run"
	"rix/internal/runner"
)

// SampledFlags is the flag group shared by every tool that executes
// sampled simulations: parallelism for the two phases (detail windows
// and warm-pass shards) plus the content-addressed checkpoint cache and
// its bounds. Register installs the group on a FlagSet under one set of
// names, so rixsim and rixbench stay knob-for-knob identical; after
// flag.Parse, Apply (single run.Request) or Configure (runner.Engine)
// copies the resolved values onto the executing side.
type SampledFlags struct {
	// Jobs sizes the window-scheduler pool (0 = NumCPU for a single
	// run, the -j budget for a matrix; 1 = sequential windows).
	Jobs int
	// WarmJobs bounds warm-pass shard workers (0 = the Jobs budget;
	// 1 = sequential warm pass).
	WarmJobs int
	// WarmStride is the stride-snapshot spacing recorded during a
	// sequential warm pass (0 = the sampling interval).
	WarmStride uint64
	// Cache is the content-addressed warm-set cache directory;
	// CacheMB / CacheAge bound it (0 = unbounded).
	Cache    string
	CacheMB  int
	CacheAge time.Duration
}

// Register installs the shared sampled-run flags on fs (typically
// flag.CommandLine).
func (f *SampledFlags) Register(fs *flag.FlagSet) {
	fs.IntVar(&f.Jobs, "jobs", 0,
		"sampled window-scheduler slots (0 = the parallelism budget, 1 = sequential windows)")
	fs.IntVar(&f.WarmJobs, "warm-jobs", 0,
		"warm-pass shard workers once stride snapshots exist (0 = the -jobs budget, 1 = sequential warm pass)")
	fs.Uint64Var(&f.WarmStride, "warm-stride", 0,
		"stride-snapshot spacing in dynamic instructions, recorded on the first warm pass (0 = the sampling interval)")
	fs.StringVar(&f.Cache, "ckpt-cache", "",
		"content-addressed warm-set + stride-snapshot cache directory shared by sampled runs")
	fs.IntVar(&f.CacheMB, "ckpt-cache-mb", 0,
		"bound -ckpt-cache total size in MiB, LRU-evicting on save (0 = unbounded)")
	fs.DurationVar(&f.CacheAge, "ckpt-cache-age", 0,
		"evict -ckpt-cache entries not used within this duration (0 = no age bound)")
}

// Apply copies the resolved knobs onto one sampled run.Request. Only
// call it for requests whose Options.Sampling is set — the warm-shard
// fields are rejected by Validate otherwise.
func (f *SampledFlags) Apply(req *run.Request) {
	jobs := f.Jobs
	if jobs == 0 {
		jobs = runtime.NumCPU()
	}
	req.Jobs = jobs
	warm := f.WarmJobs
	if warm == 0 {
		warm = jobs
	}
	req.WarmJobs = warm
	req.WarmStride = f.WarmStride
	req.CheckpointCache = f.Cache
	if f.Cache != "" {
		req.CacheMaxMB = f.CacheMB
		req.CacheMaxAgeSec = int(f.CacheAge / time.Second)
	}
}

// Configure copies the knobs onto a matrix engine; the engine applies
// them to each sampled cell itself (zero values keep its defaults, so
// -jobs 0 means the engine's -j budget).
func (f *SampledFlags) Configure(e *runner.Engine) {
	e.WindowJobs = f.Jobs
	e.WarmJobs = f.WarmJobs
	e.WarmStride = f.WarmStride
	e.CheckpointCache = f.Cache
	e.CacheMaxMB = f.CacheMB
	e.CacheMaxAgeSec = int(f.CacheAge / time.Second)
}
