// Package cmdutil is the shared CLI harness for the rix tools: one exit
// path for errors (so deferred cleanup always runs — the tools used to
// hand-roll os.Exit(1) helpers that silently skipped defers), and
// signal-driven context cancellation with the conventional two-signal
// contract (first SIGINT/SIGTERM cancels gracefully, a second
// hard-kills).
package cmdutil

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// interruptExit is the conventional exit status for SIGINT (128 + 2).
const interruptExit = 130

// Main runs a tool's body under a signal-cancelled context and exits
// with its status: 0 on success, interruptExit (130) when the body
// ended because a signal cancelled the context, and 1 on any other
// error — including a -timeout deadline, reported as "tool: timed
// out". The body returns rather than exiting, so its deferred cleanup
// (partial-file removal, flushes) always runs — os.Exit happens only
// here, after the body is done.
func Main(tool string, body func(ctx context.Context) error) {
	os.Exit(runBody(tool, body))
}

func runBody(tool string, body func(ctx context.Context) error) int {
	ctx, stop := WithSignals(context.Background())
	defer stop()
	err := body(ctx)
	switch {
	case err == nil:
		return 0
	case errors.Is(err, context.Canceled):
		fmt.Fprintf(os.Stderr, "%s: interrupted\n", tool)
		return interruptExit
	case errors.Is(err, context.DeadlineExceeded):
		fmt.Fprintf(os.Stderr, "%s: timed out\n", tool)
		return 1
	default:
		fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
		return 1
	}
}

// WithSignals derives a context cancelled by the first SIGINT or
// SIGTERM. A second signal does not wait for graceful shutdown: it
// prints a note and exits immediately with the interrupt status. The
// returned stop function releases the signal handler (idempotent).
func WithSignals(parent context.Context) (context.Context, func()) {
	ctx, cancel := context.WithCancel(parent)
	ch := make(chan os.Signal, 2)
	quit := make(chan struct{})
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		select {
		case <-ch:
			cancel()
		case <-quit:
			return
		}
		select {
		case <-ch:
			fmt.Fprintln(os.Stderr, "second interrupt: exiting immediately")
			os.Exit(interruptExit)
		case <-quit:
		}
	}()
	var once sync.Once
	stop := func() {
		once.Do(func() {
			signal.Stop(ch)
			close(quit)
			cancel()
		})
	}
	return ctx, stop
}
