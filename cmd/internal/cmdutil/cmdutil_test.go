package cmdutil

import (
	"context"
	"syscall"
	"testing"
	"time"
)

// TestWithSignalsCancelsOnSignal: a SIGINT delivered to the process
// cancels the derived context.
func TestWithSignalsCancelsOnSignal(t *testing.T) {
	ctx, stop := WithSignals(context.Background())
	defer stop()
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
		if ctx.Err() != context.Canceled {
			t.Errorf("ctx.Err() = %v", ctx.Err())
		}
	case <-time.After(3 * time.Second):
		t.Fatal("context not cancelled after SIGINT")
	}
}

// TestWithSignalsStopIdempotent: stop releases the handler and is safe
// to call repeatedly (the Main defer plus an explicit call).
func TestWithSignalsStopIdempotent(t *testing.T) {
	ctx, stop := WithSignals(context.Background())
	stop()
	stop()
	select {
	case <-ctx.Done():
	default:
		t.Error("stop did not cancel the context")
	}
}

// TestRunBodyExitCodes pins the error-to-status mapping.
func TestRunBodyExitCodes(t *testing.T) {
	if got := runBody("t", func(ctx context.Context) error { return nil }); got != 0 {
		t.Errorf("success status = %d", got)
	}
	if got := runBody("t", func(ctx context.Context) error { return context.Canceled }); got != interruptExit {
		t.Errorf("cancel status = %d, want %d", got, interruptExit)
	}
	if got := runBody("t", func(ctx context.Context) error { return context.DeadlineExceeded }); got != 1 {
		t.Errorf("timeout status = %d, want 1", got)
	}
	// Deferred cleanup must run before the status is returned (the old
	// per-tool os.Exit helpers skipped defers).
	cleaned := false
	runBody("t", func(ctx context.Context) error {
		defer func() { cleaned = true }()
		return context.Canceled
	})
	if !cleaned {
		t.Error("deferred cleanup skipped")
	}
}
