// Command rixvet runs the project's static-analysis suite
// (internal/analysis): hotalloc, snapshotpure, eventenum, ctxflow, and
// gobversion. It has two modes:
//
// Standalone — the everyday and CI entry point:
//
//	rixvet ./...                  # analyze every package in the module
//	rixvet -only hotalloc ./...   # one analyzer
//	rixvet -json ./...            # machine-readable findings
//	rixvet -list                  # print the suite and exit
//	rixvet -update-gob-golden     # re-pin gob structure golden
//
// Packages are loaded with the offline loader (internal/analysis/load):
// no network, no module cache — the standard library is type-checked
// from GOROOT source. Exit status is 1 when any analyzer reports a
// finding.
//
// Vettool — the go-vet integration, speaking enough of the unitchecker
// protocol (-V=full version stamp, a JSON .cfg file per package, a
// facts file written to VetxOutput) to be used as:
//
//	go vet -vettool=$(command -v rixvet) ./...
//
// In this mode the toolchain hands rixvet already-compiled export data,
// so analysis is per-package incremental and cached by the go command.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"

	"rix/internal/analysis"
	"rix/internal/analysis/gobversion"
	"rix/internal/analysis/load"
	"rix/internal/analysis/suite"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rixvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listFlag    = fs.Bool("list", false, "print the analyzer suite and exit")
		onlyFlag    = fs.String("only", "", "comma-separated analyzer names to run (default: all)")
		jsonFlag    = fs.Bool("json", false, "emit findings as JSON")
		updateFlag  = fs.Bool("update-gob-golden", false, "regenerate the gobversion structure golden instead of checking it")
		versionFlag = fs.String("V", "", "print version and exit (go vet protocol; only -V=full is supported)")
	)
	if len(args) == 1 && args[0] == "-flags" {
		// go vet probes supported flags before the first real run.
		return printFlags(fs, stdout, stderr)
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *versionFlag != "" {
		return printVersion(stdout, *versionFlag)
	}
	if *listFlag {
		for _, a := range suite.Analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := selectAnalyzers(*onlyFlag)
	if err != nil {
		fmt.Fprintln(stderr, "rixvet:", err)
		return 2
	}
	gobversion.Update = *updateFlag

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return vettool(rest[0], analyzers, stderr)
	}
	return standalone(rest, analyzers, *jsonFlag, stdout, stderr)
}

// selectAnalyzers filters the suite by the -only flag.
func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return suite.Analyzers, nil
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a := suite.ByName(name)
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q (try -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// finding is one diagnostic, ready for text or JSON output.
type finding struct {
	Analyzer string `json:"analyzer"`
	Pos      string `json:"pos"`
	Message  string `json:"message"`
}

// standalone loads patterns (default ./...) from the enclosing module
// and applies every selected analyzer to every package.
func standalone(patterns []string, analyzers []*analysis.Analyzer, asJSON bool, stdout, stderr io.Writer) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "rixvet:", err)
		return 2
	}
	root, modulePath, err := load.ModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "rixvet:", err)
		return 2
	}
	loader := load.New(root, modulePath)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "rixvet:", err)
		return 2
	}
	var findings []finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			fs, err := applyAnalyzer(a, pkg.Fset, pkg.Syntax, pkg.Types, pkg.TypesInfo)
			if err != nil {
				fmt.Fprintf(stderr, "rixvet: %s: %s: %v\n", a.Name, pkg.PkgPath, err)
				return 2
			}
			findings = append(findings, fs...)
		}
	}
	return emit(findings, asJSON, stdout, stderr)
}

func applyAnalyzer(a *analysis.Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]finding, error) {
	var out []finding
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report: func(d analysis.Diagnostic) {
			p := fset.Position(d.Pos)
			out = append(out, finding{
				Analyzer: a.Name,
				Pos:      fmt.Sprintf("%s:%d:%d", p.Filename, p.Line, p.Column),
				Message:  d.Message,
			})
		},
	}
	if _, err := a.Run(pass); err != nil {
		return nil, err
	}
	return out, nil
}

func emit(findings []finding, asJSON bool, stdout, stderr io.Writer) int {
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].Pos != findings[j].Pos {
			return findings[i].Pos < findings[j].Pos
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	if asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, "rixvet:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintf(stdout, "%s: [%s] %s\n", f.Pos, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// printFlags answers go vet's -flags probe: a JSON description of every
// flag the tool accepts, so the go command knows what it may forward.
func printFlags(fs *flag.FlagSet, stdout, stderr io.Writer) int {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	fs.VisitAll(func(f *flag.Flag) {
		isBool := false
		if b, ok := f.Value.(interface{ IsBoolFlag() bool }); ok {
			isBool = b.IsBoolFlag()
		}
		flags = append(flags, jsonFlag{f.Name, isBool, f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		fmt.Fprintln(stderr, "rixvet:", err)
		return 2
	}
	stdout.Write(data)
	return 0
}

// printVersion implements the -V=full stamp the go command uses as a
// cache key for vettool runs: tool name plus a content hash of the
// executable.
func printVersion(stdout io.Writer, mode string) int {
	if mode != "full" {
		fmt.Fprintln(stdout, "rixvet version devel")
		return 0
	}
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Fprintf(stdout, "rixvet version devel buildID=%x\n", h.Sum(nil))
	return 0
}

// vetConfig is the subset of the go vet .cfg JSON rixvet consumes —
// the same shape x/tools' unitchecker reads.
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOnly    bool
	VetxOutput  string
}

// vettool analyzes one package from a go vet .cfg file: parse the listed
// files, type-check against the toolchain's export data, run the suite,
// and write the (empty) facts file go vet expects.
func vettool(cfgPath string, analyzers []*analysis.Analyzer, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(stderr, "rixvet:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "rixvet: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// Dependency packages are analyzed only for facts (VetxOnly); rixvet
	// exports none, so just satisfy the protocol and stay silent.
	if cfg.VetxOnly {
		return writeVetx(cfg.VetxOutput, stderr)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(stderr, "rixvet:", err)
			return 2
		}
		files = append(files, f)
	}
	// Resolve imports through the export data go vet hands us: vetted
	// import path -> canonical path -> compiled package file.
	lookup := func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, lookup)
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		fmt.Fprintf(stderr, "rixvet: type-checking %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	var findings []finding
	for _, a := range analyzers {
		fs, err := applyAnalyzer(a, fset, files, tpkg, info)
		if err != nil {
			fmt.Fprintf(stderr, "rixvet: %s: %s: %v\n", a.Name, cfg.ImportPath, err)
			return 2
		}
		findings = append(findings, fs...)
	}
	if code := writeVetx(cfg.VetxOutput, stderr); code != 0 {
		return code
	}
	reported := 0
	for _, f := range findings {
		// go vet feeds test files through too; rixvet checks shipped code
		// (the standalone loader never loads _test.go), so keep the two
		// modes consistent.
		if strings.HasSuffix(strings.SplitN(f.Pos, ":", 2)[0], "_test.go") {
			continue
		}
		fmt.Fprintf(stderr, "%s: [%s] %s\n", f.Pos, f.Analyzer, f.Message)
		reported++
	}
	if reported > 0 {
		return 1
	}
	return 0
}

// writeVetx writes the (empty) facts file go vet requires to exist.
func writeVetx(path string, stderr io.Writer) int {
	if path == "" {
		return 0
	}
	if err := os.WriteFile(path, nil, 0o666); err != nil {
		fmt.Fprintln(stderr, "rixvet:", err)
		return 2
	}
	return 0
}
