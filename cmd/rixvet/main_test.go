package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestListMode(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exited %d: %s", code, errb.String())
	}
	for _, name := range []string{"hotalloc", "snapshotpure", "eventenum", "ctxflow", "gobversion"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestFlagsProbe(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-flags"}, &out, &errb); code != 0 {
		t.Fatalf("-flags exited %d: %s", code, errb.String())
	}
	var flags []struct {
		Name string
		Bool bool
	}
	if err := json.Unmarshal(out.Bytes(), &flags); err != nil {
		t.Fatalf("-flags output is not JSON: %v\n%s", err, out.String())
	}
	byName := map[string]bool{}
	for _, f := range flags {
		byName[f.Name] = f.Bool
	}
	if !byName["json"] || byName["only"] {
		t.Errorf("flag Bool-ness wrong: %v", byName)
	}
}

func TestVersionStamp(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-V=full"}, &out, &errb); code != 0 {
		t.Fatalf("-V=full exited %d", code)
	}
	if !strings.HasPrefix(out.String(), "rixvet version ") {
		t.Errorf("bad version stamp: %q", out.String())
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-only", "nosuch"}, &out, &errb); code != 2 {
		t.Fatalf("expected exit 2 for unknown analyzer, got %d", code)
	}
	if !strings.Contains(errb.String(), "unknown analyzer") {
		t.Errorf("missing error message: %s", errb.String())
	}
}
