// rixsim runs one workload under one machine configuration and prints the
// full statistics block. It is a thin shell over the unified run API
// (internal/run): the flags assemble a run.Request, run.Do executes it
// under a signal-cancelled (and optionally deadlined) context, and the
// result can be printed as text or JSON. Ctrl-C cancels gracefully — a
// sampled run flushes a final checkpoint so -resume can finish it later;
// a second Ctrl-C hard-kills.
//
// Usage:
//
//	rixsim -bench crafty                          # base machine, no integration
//	rixsim -bench crafty -int +reverse            # full paper configuration
//	rixsim -bench gap -int +general -suppress oracle -core iw+rs
//	rixsim -file prog.s -int +reverse             # assemble and run a file
//	rixsim -bench gzip -timeout 30s -v            # deadline + live progress events
//
// Sampled simulation (checkpointed fast-forward + interval measurement):
//
//	rixsim -bench gcc -int +reverse -sample default
//	rixsim -bench gcc -int +reverse -sample 16000/600/300 -ckpt /tmp/ck
//	rixsim -bench gcc -int +reverse -sample default -ckpt /tmp/ck -resume
//
// Runs as data (the serializable request/result contract):
//
//	rixsim -bench gcc -int +reverse -sample default -dump-req > run.json
//	rixsim -req run.json -json
//
// Cross-process sampled windows (the procexec executor): workers claim
// window jobs from a shared cache directory, a coordinator run collects
// the results — bit-identical to the in-process scheduler:
//
//	rixsim -worker /shared/cache &                # any number, any machine
//	rixsim -worker /shared/cache -worker-idle 30s # exit when drained
//	rixsim -bench gcc -int +reverse -sample default -coordinator -ckpt-cache /shared/cache
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"rix/cmd/internal/cmdutil"
	"rix/internal/pipeline"
	"rix/internal/run"
	"rix/internal/sample"
	"rix/internal/sim"
	"rix/internal/workload"
)

func main() { cmdutil.Main("rixsim", body) }

func body(ctx context.Context) error {
	bench := flag.String("bench", "", "workload name (see -list)")
	file := flag.String("file", "", "assembly file to run instead of a named workload")
	integ := flag.String("int", "none", "integration preset: none|squash|+general|+opcode|+reverse")
	suppress := flag.String("suppress", "lisp", "mis-integration suppression: lisp|oracle|off")
	coreV := flag.String("core", "base", "core variant: base|rs|iw|iw+rs")
	itEntries := flag.Int("it", 1024, "integration table entries")
	itAssoc := flag.Int("assoc", 4, "integration table associativity (-1 = full)")
	sampleSpec := flag.String("sample", "",
		"interval sampling: 'default' or interval/window[/warmup] in dynamic instructions")
	ckptDir := flag.String("ckpt", "", "checkpoint directory (written during -sample, read by -resume)")
	resume := flag.Bool("resume", false, "finish (or re-measure) the run checkpointed in -ckpt")
	var sampled cmdutil.SampledFlags
	sampled.Register(flag.CommandLine)
	timeout := flag.Duration("timeout", 0, "cancel the run after this duration (0 = none)")
	verbose := flag.Bool("v", false, "stream typed progress events to stderr")
	asJSON := flag.Bool("json", false, "print the run result as JSON instead of the stats block")
	reqFile := flag.String("req", "", "execute a serialized run.Request JSON file (overrides the config flags)")
	dumpReq := flag.Bool("dump-req", false, "print the assembled run.Request as JSON and exit without running")
	list := flag.Bool("list", false, "list workloads and exit")
	flag.Parse()

	if err := sampled.Check(); err != nil {
		return err
	}
	if sampled.WorkerMode() {
		return sampled.RunWorker(ctx, *verbose)
	}

	if *list {
		for _, b := range workload.All() {
			fmt.Printf("%-8s %-12s %s\n", b.Name, b.Class, b.Description)
		}
		return nil
	}

	var req *run.Request
	if *reqFile != "" {
		data, err := os.ReadFile(*reqFile)
		if err != nil {
			return err
		}
		if req, err = run.UnmarshalRequest(data); err != nil {
			return err
		}
	} else {
		var err error
		if req, err = buildRequest(*bench, *file, sim.Options{
			Integration: *integ,
			Suppression: *suppress,
			Core:        *coreV,
			ITEntries:   *itEntries,
			ITAssoc:     *itAssoc,
		}, *sampleSpec, *ckptDir, *resume, &sampled); err != nil {
			return err
		}
	}
	if err := req.Validate(); err != nil {
		return err
	}

	if *dumpReq {
		data, err := run.MarshalRequest(req)
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}

	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var opts []run.Option
	if *verbose {
		opts = append(opts, run.WithObserver(run.ObserverFunc(printEvent)))
	}
	res, err := run.Do(ctx, *req, opts...)
	if err != nil {
		return err
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	name := res.Workload
	if res.Sampled != nil {
		fmt.Println(res.Sampled.String())
		name += " (sampled windows)"
	}
	printStats(name, &res.Stats)
	return nil
}

// buildRequest assembles the run.Request the config flags describe.
func buildRequest(bench, file string, o sim.Options, sampleSpec, ckptDir string, resume bool,
	sampled *cmdutil.SampledFlags) (*run.Request, error) {
	if sampleSpec != "" || resume {
		sp := sample.DefaultSampling()
		if sampleSpec != "" {
			var err error
			if sp, err = sample.ParseSampling(sampleSpec); err != nil {
				return nil, err
			}
		}
		o.Sampling = &sp
	}
	req := &run.Request{Options: o, CheckpointDir: ckptDir, Resume: resume}
	if o.Sampling != nil && !resume {
		sampled.Apply(req)
	}
	switch {
	case file != "":
		text, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		req.Source, req.SourceName = string(text), file
	case bench != "":
		if _, ok := workload.ByName(bench); !ok {
			return nil, fmt.Errorf("unknown workload %q (try -list)", bench)
		}
		req.Workload = bench
	default:
		return nil, fmt.Errorf("one of -bench or -file is required")
	}
	return req, nil
}

// printEvent renders one typed progress event on stderr (-v).
func printEvent(e run.Event) {
	switch e.Kind {
	case run.CellStarted:
		fmt.Fprintf(os.Stderr, "[%s] %s [%s] started (%s)\n", time.Now().Format("15:04:05"), e.Workload, e.Label, e.Mode)
	case run.Progress:
		fmt.Fprintf(os.Stderr, "[%s] %s [%s] %d instructions\n", time.Now().Format("15:04:05"), e.Workload, e.Label, e.Instrs)
	case run.WindowDone:
		fmt.Fprintf(os.Stderr, "[%s] %s [%s] window %d done (%d measured)\n", time.Now().Format("15:04:05"), e.Workload, e.Label, e.Window, e.Instrs)
	case run.WindowDiscarded:
		fmt.Fprintf(os.Stderr, "[%s] %s [%s] window %d discarded (feedback misspeculation)\n", time.Now().Format("15:04:05"), e.Workload, e.Label, e.Window)
	case run.WindowScheduled:
		fmt.Fprintf(os.Stderr, "[%s] %s [%s] window %d scheduled\n", time.Now().Format("15:04:05"), e.Workload, e.Label, e.Window)
	case run.WorkerJoined:
		fmt.Fprintf(os.Stderr, "[%s] %s [%s] worker %s joined\n", time.Now().Format("15:04:05"), e.Workload, e.Label, e.Worker)
	case run.LeaseClaimed:
		fmt.Fprintf(os.Stderr, "[%s] %s [%s] window %d claimed by worker %s\n", time.Now().Format("15:04:05"), e.Workload, e.Label, e.Window, e.Worker)
	case run.ResultCollected:
		fmt.Fprintf(os.Stderr, "[%s] %s [%s] window %d result collected (%s)\n", time.Now().Format("15:04:05"), e.Workload, e.Label, e.Window, e.Path)
	case run.WarmShardStarted:
		fmt.Fprintf(os.Stderr, "[%s] %s [%s] warm shard %d started (instrs %d-%d)\n", time.Now().Format("15:04:05"), e.Workload, e.Label, e.Shard, e.SpanStart, e.SpanEnd)
	case run.WarmShardDone:
		fmt.Fprintf(os.Stderr, "[%s] %s [%s] warm shard %d done (instrs %d-%d)\n", time.Now().Format("15:04:05"), e.Workload, e.Label, e.Shard, e.SpanStart, e.SpanEnd)
	case run.SlotStolen:
		fmt.Fprintf(os.Stderr, "[%s] %s [%s] stole scheduler slot %d\n", time.Now().Format("15:04:05"), e.Workload, e.Label, e.Slot)
	case run.SlotReturned:
		fmt.Fprintf(os.Stderr, "[%s] %s [%s] window %d settled, slot returned to pool\n", time.Now().Format("15:04:05"), e.Workload, e.Label, e.Window)
	case run.CheckpointWritten:
		fmt.Fprintf(os.Stderr, "[%s] %s [%s] checkpoint %d -> %s\n", time.Now().Format("15:04:05"), e.Workload, e.Label, e.Window, e.Path)
	case run.CacheHit:
		fmt.Fprintf(os.Stderr, "[%s] %s [%s] warm-set cache hit: %s\n", time.Now().Format("15:04:05"), e.Workload, e.Label, e.Path)
	case run.CacheWritten:
		fmt.Fprintf(os.Stderr, "[%s] %s [%s] warm set cached: %s\n", time.Now().Format("15:04:05"), e.Workload, e.Label, e.Path)
	case run.CellFinished:
		if e.Err != "" {
			fmt.Fprintf(os.Stderr, "[%s] %s [%s] failed: %s\n", time.Now().Format("15:04:05"), e.Workload, e.Label, e.Err)
		} else {
			fmt.Fprintf(os.Stderr, "[%s] %s [%s] finished (%d retired)\n", time.Now().Format("15:04:05"), e.Workload, e.Label, e.Instrs)
		}
	}
}

func printStats(name string, st *pipeline.Stats) {
	fmt.Printf("workload            %s\n", name)
	fmt.Printf("retired             %d\n", st.Retired)
	fmt.Printf("cycles              %d\n", st.Cycles)
	fmt.Printf("IPC                 %.3f\n", st.IPC())
	fmt.Printf("fetched             %d (%.1f%% wrong path)\n", st.Fetched,
		100*float64(st.FetchedWrongPath)/float64(st.Fetched))
	fmt.Printf("executed            %d (%.1f%% of retired bypassed execution)\n",
		st.Executed, 100*(1-float64(st.Executed)/float64(st.Retired)))
	fmt.Printf("integration rate    %.2f%% (direct %.2f%%, reverse %.2f%%)\n",
		100*st.IntegrationRate(),
		100*float64(st.IntegratedDirect)/float64(max64(st.Retired, 1)),
		100*st.ReverseRate())
	fmt.Printf("  by type           sp-load %d, load %d, alu %d, branch %d, fp %d\n",
		st.IntType[0], st.IntType[1], st.IntType[2], st.IntType[3], st.IntType[4])
	fmt.Printf("  load int rate     %.1f%% (sp loads %.1f%%)\n",
		100*st.LoadIntegrationRate(), 100*st.SPLoadIntegrationRate())
	fmt.Printf("mis-integrations    %d (%.0f/M; loads %d, regs %d)\n",
		st.MisIntegrations, st.MisIntPerMillion(), st.MisIntLoads, st.MisIntRegs)
	fmt.Printf("branches            %d cond (%.2f%% mispredict), resolution %.1f cycles\n",
		st.CondBranches,
		100*float64(st.CondMispredicts)/float64(max64(st.CondBranches, 1)),
		st.MispredictResolutionAvg())
	fmt.Printf("loads               %d retired, %d forwarded, %d order violations\n",
		st.LoadsRetired, st.LoadsForwarded, st.LoadViolations)
	fmt.Printf("RS occupancy        %.1f avg\n", st.AvgRSOccupancy())
	fmt.Printf("squashes            %d (%d DIVA flushes)\n", st.Squashes, st.DIVAFlushes)
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
