// rixsim runs one workload under one machine configuration and prints the
// full statistics block.
//
// Usage:
//
//	rixsim -bench crafty                          # base machine, no integration
//	rixsim -bench crafty -int +reverse            # full paper configuration
//	rixsim -bench gap -int +general -suppress oracle -core iw+rs
//	rixsim -file prog.s -int +reverse             # assemble and run a file
//
// Sampled simulation (checkpointed fast-forward + interval measurement):
//
//	rixsim -bench gcc -int +reverse -sample default
//	rixsim -bench gcc -int +reverse -sample 16000/600/300 -ckpt /tmp/ck
//	rixsim -bench gcc -int +reverse -sample default -ckpt /tmp/ck -resume
package main

import (
	"flag"
	"fmt"
	"os"

	"rix/internal/asm"
	"rix/internal/emu"
	"rix/internal/pipeline"
	"rix/internal/prog"
	"rix/internal/sample"
	"rix/internal/sim"
	"rix/internal/workload"
)

func main() {
	bench := flag.String("bench", "", "workload name (see -list)")
	file := flag.String("file", "", "assembly file to run instead of a named workload")
	integ := flag.String("int", "none", "integration preset: none|squash|+general|+opcode|+reverse")
	suppress := flag.String("suppress", "lisp", "mis-integration suppression: lisp|oracle|off")
	coreV := flag.String("core", "base", "core variant: base|rs|iw|iw+rs")
	itEntries := flag.Int("it", 1024, "integration table entries")
	itAssoc := flag.Int("assoc", 4, "integration table associativity (-1 = full)")
	sampleSpec := flag.String("sample", "",
		"interval sampling: 'default' or interval/window[/warmup] in dynamic instructions")
	ckptDir := flag.String("ckpt", "", "checkpoint directory (written during -sample, read by -resume)")
	resume := flag.Bool("resume", false, "re-run the windows checkpointed in -ckpt instead of fast-forwarding")
	list := flag.Bool("list", false, "list workloads and exit")
	flag.Parse()

	if *list {
		for _, b := range workload.All() {
			fmt.Printf("%-8s %-12s %s\n", b.Name, b.Class, b.Description)
		}
		return
	}

	// The golden trace streams from the emulator into the pipeline with
	// O(ROB) buffering; nothing materializes the full trace.
	var p *prog.Program
	var src emu.TraceSource
	var err error
	switch {
	case *file != "":
		text, rerr := os.ReadFile(*file)
		if rerr != nil {
			fatal(rerr)
		}
		p, err = asm.Assemble(*file, string(text))
		if err == nil {
			src = emu.Stream(p, workload.MaxInstrs)
		}
	case *bench != "":
		b, ok := workload.ByName(*bench)
		if !ok {
			fatal(fmt.Errorf("unknown workload %q (try -list)", *bench))
		}
		var bw workload.Built
		bw, err = b.Build()
		if err == nil {
			p, src = bw.Prog, bw.Source()
		}
	default:
		fatal(fmt.Errorf("one of -bench or -file is required"))
	}
	if err != nil {
		fatal(err)
	}

	o := sim.Options{
		Integration: *integ,
		Suppression: *suppress,
		Core:        *coreV,
		ITEntries:   *itEntries,
		ITAssoc:     *itAssoc,
	}

	if *sampleSpec != "" || *resume {
		runSampled(p, src, o, *sampleSpec, *ckptDir, *resume)
		return
	}

	st, err := sim.Run(p, src, o)
	if err != nil {
		fatal(err)
	}
	printStats(p.Name, st)
}

// runSampled executes the sampled path: a fresh sampled run (optionally
// writing checkpoints), or a resume that re-runs previously checkpointed
// windows — bit-identical to the run that wrote them.
func runSampled(p *prog.Program, src emu.TraceSource, o sim.Options, spec, ckptDir string, resume bool) {
	cfg, err := o.Config()
	if err != nil {
		fatal(err)
	}
	sp := sim.DefaultSampling()
	if spec != "" {
		if sp, err = sim.ParseSampling(spec); err != nil {
			fatal(err)
		}
	}
	// The dynamic length scales whole-run estimates; measure it from the
	// already-built source's hint when available.
	dynLen := src.SizeHint()
	sc := sample.Config{Sampling: sp, CheckpointDir: ckptDir}

	var est *sample.Estimate
	if resume {
		if ckptDir == "" {
			fatal(fmt.Errorf("-resume requires -ckpt"))
		}
		est, err = sample.Resume(p, dynLen, cfg, sc)
	} else {
		est, err = sample.Run(p, dynLen, cfg, sc)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Print(est.String())
	fmt.Println()
	printStats(p.Name+" (sampled windows)", est.StatsEstimate())
}

func printStats(name string, st *pipeline.Stats) {
	fmt.Printf("workload            %s\n", name)
	fmt.Printf("retired             %d\n", st.Retired)
	fmt.Printf("cycles              %d\n", st.Cycles)
	fmt.Printf("IPC                 %.3f\n", st.IPC())
	fmt.Printf("fetched             %d (%.1f%% wrong path)\n", st.Fetched,
		100*float64(st.FetchedWrongPath)/float64(st.Fetched))
	fmt.Printf("executed            %d (%.1f%% of retired bypassed execution)\n",
		st.Executed, 100*(1-float64(st.Executed)/float64(st.Retired)))
	fmt.Printf("integration rate    %.2f%% (direct %.2f%%, reverse %.2f%%)\n",
		100*st.IntegrationRate(),
		100*float64(st.IntegratedDirect)/float64(max64(st.Retired, 1)),
		100*st.ReverseRate())
	fmt.Printf("  by type           sp-load %d, load %d, alu %d, branch %d, fp %d\n",
		st.IntType[0], st.IntType[1], st.IntType[2], st.IntType[3], st.IntType[4])
	fmt.Printf("  load int rate     %.1f%% (sp loads %.1f%%)\n",
		100*st.LoadIntegrationRate(), 100*st.SPLoadIntegrationRate())
	fmt.Printf("mis-integrations    %d (%.0f/M; loads %d, regs %d)\n",
		st.MisIntegrations, st.MisIntPerMillion(), st.MisIntLoads, st.MisIntRegs)
	fmt.Printf("branches            %d cond (%.2f%% mispredict), resolution %.1f cycles\n",
		st.CondBranches,
		100*float64(st.CondMispredicts)/float64(max64(st.CondBranches, 1)),
		st.MispredictResolutionAvg())
	fmt.Printf("loads               %d retired, %d forwarded, %d order violations\n",
		st.LoadsRetired, st.LoadsForwarded, st.LoadViolations)
	fmt.Printf("RS occupancy        %.1f avg\n", st.AvgRSOccupancy())
	fmt.Printf("squashes            %d (%d DIVA flushes)\n", st.Squashes, st.DIVAFlushes)
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rixsim:", err)
	os.Exit(1)
}
