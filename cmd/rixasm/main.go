// rixasm assembles, disassembles and lints rix assembly.
//
// Usage:
//
//	rixasm prog.s                 # assemble, report size and symbols
//	rixasm -d prog.s              # assemble and print a disassembly listing
//	rixasm -bench gzip -d         # disassemble a built-in workload
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"rix/cmd/internal/cmdutil"
	"rix/internal/asm"
	"rix/internal/isa"
	"rix/internal/prog"
	"rix/internal/workload"
)

func main() { cmdutil.Main("rixasm", body) }

func body(context.Context) error {
	disasm := flag.Bool("d", false, "print a disassembly listing")
	bench := flag.String("bench", "", "disassemble a built-in workload instead of a file")
	flag.Parse()

	var p *prog.Program
	var err error
	switch {
	case *bench != "":
		b, ok := workload.ByName(*bench)
		if !ok {
			return fmt.Errorf("unknown workload %q", *bench)
		}
		p, err = asm.Assemble(b.Name+".s", b.Source)
	case flag.NArg() == 1:
		var src []byte
		src, err = os.ReadFile(flag.Arg(0))
		if err != nil {
			return err
		}
		p, err = asm.Assemble(flag.Arg(0), string(src))
	default:
		return fmt.Errorf("usage: rixasm [-d] file.s | rixasm -bench name -d")
	}
	if err != nil {
		return err
	}

	fmt.Printf("%s: %d instructions, %d data bytes, entry %#x\n",
		p.Name, len(p.Code), len(p.Data), p.Entry)
	if !*disasm {
		for _, name := range p.SortedSymbols() {
			fmt.Printf("  %-16s %#x\n", name, p.Symbols[name])
		}
		return nil
	}
	labels := map[uint64]string{}
	for name, addr := range p.Symbols {
		labels[addr] = name
	}
	for i, in := range p.Code {
		pc := p.PCOf(i)
		if l, ok := labels[pc]; ok {
			fmt.Printf("%s:\n", l)
		}
		fmt.Printf("  %#06x  %016x  %s\n", pc, isa.Encode(in), isa.Disasm(in, pc))
	}
	return nil
}
