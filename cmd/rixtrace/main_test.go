package main

import (
	"os"
	"path/filepath"
	"testing"

	"rix/internal/emu"
	"rix/internal/workload"
)

// TestTraceWriterRoundTrip records a real workload trace and reads it
// back record-for-record.
func TestTraceWriterRoundTrip(t *testing.T) {
	b, ok := workload.ByName("gzip")
	if !ok {
		t.Fatal("gzip not registered")
	}
	bw, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	want, err := bw.Materialize()
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "gzip.trace")
	tw, err := newTraceWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range want {
		if err := tw.write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.finish(); err != nil {
		t.Fatal(err)
	}

	got, err := readTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d records, wrote %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

// TestTraceWriterAbortRemovesPartial is the regression test for the
// truncated-file bug: aborting mid-stream (the write-failure and
// source-failure paths) must remove the partial file.
func TestTraceWriterAbortRemovesPartial(t *testing.T) {
	path := filepath.Join(t.TempDir(), "partial.trace")
	tw, err := newTraceWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := tw.write(emu.TraceRec{CodeIdx: uint32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	tw.abort()
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("partial file still exists after abort (stat err: %v)", err)
	}
}

// TestTraceWriterFinishFailureRemovesPartial forces the flush to fail by
// closing the underlying file first; finish must report the error and
// remove the file.
func TestTraceWriterFinishFailureRemovesPartial(t *testing.T) {
	path := filepath.Join(t.TempDir(), "failflush.trace")
	tw, err := newTraceWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	// Fill past the buffer so finish must actually write.
	for i := 0; i < (1<<16)/traceRecBytes+8; i++ {
		if err := tw.write(emu.TraceRec{CodeIdx: uint32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	tw.f.Close() // sabotage: flush inside finish now fails
	if err := tw.finish(); err == nil {
		t.Fatal("finish succeeded despite closed file")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("partial file still exists after failed finish (stat err: %v)", err)
	}
}

// TestTraceWriterMidStreamWriteError drives the writer until the sticky
// bufio error surfaces, then verifies the abort path cleans up.
func TestTraceWriterMidStreamWriteError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "midstream.trace")
	tw, err := newTraceWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	tw.f.Close() // every flush from here on fails
	var werr error
	for i := 0; i < (1<<17)/traceRecBytes; i++ {
		if werr = tw.write(emu.TraceRec{CodeIdx: uint32(i)}); werr != nil {
			break
		}
	}
	if werr == nil {
		t.Fatal("no write error surfaced despite closed file")
	}
	tw.abort()
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("partial file still exists after abort (stat err: %v)", err)
	}
}
