// rixtrace functionally executes a workload on the golden emulator and
// reports its dynamic profile: instruction mix, call-depth distribution,
// save/restore density, and program output.
//
// The profile is computed from the streaming emu.TraceSource — records
// are folded into counters as they are produced, so memory stays O(1)
// regardless of trace length (the pre-streaming version materialized the
// whole trace first).
//
// Usage:
//
//	rixtrace -bench vortex
//	rixtrace -file prog.s
//	rixtrace -bench gcc -max 1048576    # bound the streamed instruction budget
//	rixtrace -bench perl.d -out 256     # cap the echoed program output bytes
package main

import (
	"flag"
	"fmt"
	"os"

	"rix/internal/asm"
	"rix/internal/emu"
	"rix/internal/isa"
	"rix/internal/prog"
	"rix/internal/workload"
)

func main() {
	bench := flag.String("bench", "", "workload name")
	file := flag.String("file", "", "assembly file")
	maxInstrs := flag.Uint64("max", workload.MaxInstrs, "instruction budget for the streamed trace")
	outCap := flag.Int("out", 1<<10, "max program-output bytes to echo (0 = none)")
	flag.Parse()

	var p *prog.Program
	var err error
	switch {
	case *bench != "":
		b, ok := workload.ByName(*bench)
		if !ok {
			fatal(fmt.Errorf("unknown workload %q", *bench))
		}
		p, err = asm.Assemble(b.Name+".s", b.Source)
	case *file != "":
		var src []byte
		src, err = os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		p, err = asm.Assemble(*file, string(src))
	default:
		fatal(fmt.Errorf("one of -bench or -file is required"))
	}
	if err != nil {
		fatal(err)
	}

	src := emu.Stream(p, *maxInstrs)

	var n, loads, stores, branches, taken, calls, rets, alu, fp, spStores, spLoads uint64
	depth, maxDepth := 0, 0
	depthSum := uint64(0)
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		n++
		in := p.Code[r.CodeIdx]
		switch in.Op.ClassOf() {
		case isa.ClassLoad:
			loads++
			if in.IsSPLoad() {
				spLoads++
			}
		case isa.ClassStore:
			stores++
			if in.IsSPStore() {
				spStores++
			}
		case isa.ClassBranch:
			branches++
			if r.Value == 1 {
				taken++
			}
		case isa.ClassCallDirect, isa.ClassCallIndirect:
			calls++
			depth++
			if depth > maxDepth {
				maxDepth = depth
			}
		case isa.ClassRet:
			rets++
			if depth > 0 {
				depth--
			}
		case isa.ClassFP:
			fp++
		default:
			alu++
		}
		depthSum += uint64(depth)
	}
	if err := src.Err(); err != nil {
		fatal(err)
	}
	e := src.Emulator()
	pc := func(v uint64) string { return fmt.Sprintf("%5.1f%%", 100*float64(v)/float64(n)) }

	fmt.Printf("workload     %s\n", p.Name)
	fmt.Printf("dynamic      %d instructions, exit %d\n", n, e.ExitCode)
	fmt.Printf("loads        %8d %s  (sp: %d)\n", loads, pc(loads), spLoads)
	fmt.Printf("stores       %8d %s  (sp: %d)\n", stores, pc(stores), spStores)
	fmt.Printf("branches     %8d %s  (%.1f%% taken)\n", branches, pc(branches),
		100*float64(taken)/float64(maxU(branches, 1)))
	fmt.Printf("calls/rets   %8d %s  / %d\n", calls, pc(calls), rets)
	fmt.Printf("fp           %8d %s\n", fp, pc(fp))
	fmt.Printf("alu/other    %8d %s\n", alu, pc(alu))
	fmt.Printf("call depth   avg %.2f, max %d\n", float64(depthSum)/float64(n), maxDepth)
	if out := e.Output; len(out) > 0 && *outCap > 0 {
		if len(out) > *outCap {
			fmt.Printf("output       %q... (%d bytes total)\n", out[:*outCap], len(out))
		} else {
			fmt.Printf("output       %q\n", out)
		}
	}
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rixtrace:", err)
	os.Exit(1)
}
