// rixtrace functionally executes a workload on the golden emulator and
// reports its dynamic profile: instruction mix, call-depth distribution,
// save/restore density, and program output. With -out it additionally
// records the golden trace to a binary file (20 bytes per record:
// little-endian CodeIdx u32, Value u64, Addr u64).
//
// The profile is computed from the streaming emu.TraceSource — records
// are folded into counters as they are produced, so memory stays O(1)
// regardless of trace length (the pre-streaming version materialized the
// whole trace first). Trace recording streams through a buffered writer
// the same way; a write failure mid-stream aborts with a non-zero exit
// and removes the partial file instead of leaving a silently truncated
// trace behind.
//
// The tool runs under the shared cmdutil harness: a SIGINT (or
// -timeout) cancels the stream at a batched poll boundary, the partial
// trace file is removed on the way out (deferred cleanup runs — the
// old hand-rolled os.Exit path could skip it), and a second SIGINT
// hard-kills.
//
// Usage:
//
//	rixtrace -bench vortex
//	rixtrace -file prog.s
//	rixtrace -bench gcc -max 1048576     # bound the streamed instruction budget
//	rixtrace -bench gcc -out gcc.trace   # record the golden trace to a file
//	rixtrace -bench perl.d -echo 256     # cap the echoed program output bytes
package main

import (
	"bufio"
	"context"
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"strconv"

	"rix/cmd/internal/cmdutil"
	"rix/internal/asm"
	"rix/internal/emu"
	"rix/internal/isa"
	"rix/internal/prog"
	"rix/internal/workload"
)

func main() { cmdutil.Main("rixtrace", body) }

func body(ctx context.Context) error {
	bench := flag.String("bench", "", "workload name")
	file := flag.String("file", "", "assembly file")
	maxInstrs := flag.Uint64("max", workload.MaxInstrs, "instruction budget for the streamed trace")
	outFile := flag.String("out", "", "record the golden trace to this file (binary, 20 bytes/record)")
	outCap := flag.Int("echo", 1<<10, "max program-output bytes to echo (0 = none)")
	timeout := flag.Duration("timeout", 0, "cancel the trace after this duration (0 = none)")
	flag.Parse()

	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var p *prog.Program
	var err error
	switch {
	case *bench != "":
		b, ok := workload.ByName(*bench)
		if !ok {
			return fmt.Errorf("unknown workload %q", *bench)
		}
		p, err = asm.Assemble(b.Name+".s", b.Source)
	case *file != "":
		var src []byte
		src, err = os.ReadFile(*file)
		if err != nil {
			return err
		}
		p, err = asm.Assemble(*file, string(src))
	default:
		return fmt.Errorf("one of -bench or -file is required")
	}
	if err != nil {
		return err
	}

	src := emu.Stream(p, *maxInstrs)
	src.SetContext(ctx)

	var tw *traceWriter
	if *outFile != "" {
		// -out used to be the echo-byte cap (now -echo); a bare number
		// here is almost certainly stale usage — fail loudly rather
		// than create a trace file named "256".
		if _, err := strconv.ParseUint(*outFile, 10, 64); err == nil {
			return fmt.Errorf("-out now takes a trace file path (got %q); the echo cap moved to -echo", *outFile)
		}
		if tw, err = newTraceWriter(*outFile); err != nil {
			return err
		}
		// Cancellation or any error below must not leave a silently
		// truncated trace behind; finish() disarms this.
		defer tw.abort()
	}

	var n, loads, stores, branches, taken, calls, rets, alu, fp, spStores, spLoads uint64
	depth, maxDepth := 0, 0
	depthSum := uint64(0)
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		if tw != nil {
			if err := tw.write(r); err != nil {
				return fmt.Errorf("writing %s: %w (partial file removed)", tw.path, err)
			}
		}
		n++
		in := p.Code[r.CodeIdx]
		switch in.Op.ClassOf() {
		case isa.ClassLoad:
			loads++
			if in.IsSPLoad() {
				spLoads++
			}
		case isa.ClassStore:
			stores++
			if in.IsSPStore() {
				spStores++
			}
		case isa.ClassBranch:
			branches++
			if r.Value == 1 {
				taken++
			}
		case isa.ClassCallDirect, isa.ClassCallIndirect:
			calls++
			depth++
			if depth > maxDepth {
				maxDepth = depth
			}
		case isa.ClassRet:
			rets++
			if depth > 0 {
				depth--
			}
		case isa.ClassFP:
			fp++
		default:
			alu++
		}
		depthSum += uint64(depth)
	}
	if err := src.Err(); err != nil {
		// A failed (or cancelled) production leaves the recorded prefix
		// incomplete; the deferred abort removes it rather than leave a
		// silently truncated trace.
		return err
	}
	if tw != nil {
		if err := tw.finish(); err != nil {
			return fmt.Errorf("writing %s: %w (partial file removed)", tw.path, err)
		}
		fmt.Printf("trace        %d records -> %s\n", tw.n, tw.path)
	}
	e := src.Emulator()
	pc := func(v uint64) string { return fmt.Sprintf("%5.1f%%", 100*float64(v)/float64(n)) }

	fmt.Printf("workload     %s\n", p.Name)
	fmt.Printf("dynamic      %d instructions, exit %d\n", n, e.ExitCode)
	fmt.Printf("loads        %8d %s  (sp: %d)\n", loads, pc(loads), spLoads)
	fmt.Printf("stores       %8d %s  (sp: %d)\n", stores, pc(stores), spStores)
	fmt.Printf("branches     %8d %s  (%.1f%% taken)\n", branches, pc(branches),
		100*float64(taken)/float64(maxU(branches, 1)))
	fmt.Printf("calls/rets   %8d %s  / %d\n", calls, pc(calls), rets)
	fmt.Printf("fp           %8d %s\n", fp, pc(fp))
	fmt.Printf("alu/other    %8d %s\n", alu, pc(alu))
	fmt.Printf("call depth   avg %.2f, max %d\n", float64(depthSum)/float64(n), maxDepth)
	if out := e.Output; len(out) > 0 && *outCap > 0 {
		if len(out) > *outCap {
			fmt.Printf("output       %q... (%d bytes total)\n", out[:*outCap], len(out))
		} else {
			fmt.Printf("output       %q\n", out)
		}
	}
	return nil
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// traceRecBytes is the on-disk record size: CodeIdx u32, Value u64,
// Addr u64, little-endian.
const traceRecBytes = 20

// traceWriter streams golden-trace records into a file. Any error —
// mid-stream write, final flush, or close — is propagated, and abort or
// a failed finish removes the partial file so downstream consumers never
// see a silently truncated trace (the old implementation exited 0 and
// left the truncated file in place). abort is idempotent and a no-op
// after a successful finish, so it can run unconditionally as a defer.
type traceWriter struct {
	path string
	f    *os.File
	w    *bufio.Writer
	n    uint64
	done bool
	buf  [traceRecBytes]byte
}

func newTraceWriter(path string) (*traceWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &traceWriter{path: path, f: f, w: bufio.NewWriterSize(f, 1<<16)}, nil
}

// write appends one record. bufio errors are sticky, so a failure
// surfaces on the write that hits it and every one after.
func (t *traceWriter) write(r emu.TraceRec) error {
	putRec(&t.buf, r)
	if _, err := t.w.Write(t.buf[:]); err != nil {
		return err
	}
	t.n++
	return nil
}

// putRec encodes one record into buf.
func putRec(buf *[traceRecBytes]byte, r emu.TraceRec) {
	binary.LittleEndian.PutUint32(buf[0:4], r.CodeIdx)
	binary.LittleEndian.PutUint64(buf[4:12], r.Value)
	binary.LittleEndian.PutUint64(buf[12:20], r.Addr)
}

// readRec decodes one record (the inverse of putRec; tests and future
// replay consumers).
func readRec(buf *[traceRecBytes]byte) emu.TraceRec {
	return emu.TraceRec{
		CodeIdx: binary.LittleEndian.Uint32(buf[0:4]),
		Value:   binary.LittleEndian.Uint64(buf[4:12]),
		Addr:    binary.LittleEndian.Uint64(buf[12:20]),
	}
}

// finish flushes and closes the file; on any failure the partial file is
// removed and the error returned. Success disarms the deferred abort.
func (t *traceWriter) finish() error {
	if t.done {
		return nil
	}
	t.done = true
	err := t.w.Flush()
	if cerr := t.f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(t.path)
	}
	return err
}

// abort closes and removes the partial file (no-op once finished).
func (t *traceWriter) abort() {
	if t.done {
		return
	}
	t.done = true
	t.f.Close()
	os.Remove(t.path)
}

// readTraceFile loads a recorded trace (tests and replay tooling).
func readTraceFile(path string) ([]emu.TraceRec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data)%traceRecBytes != 0 {
		return nil, fmt.Errorf("%s: %d bytes is not a whole number of %d-byte records",
			path, len(data), traceRecBytes)
	}
	recs := make([]emu.TraceRec, 0, len(data)/traceRecBytes)
	var buf [traceRecBytes]byte
	for off := 0; off < len(data); off += traceRecBytes {
		copy(buf[:], data[off:off+traceRecBytes])
		recs = append(recs, readRec(&buf))
	}
	return recs, nil
}
