// rixbench regenerates the paper's tables and figures by enumerating
// the experiment-spec registry (internal/runner, populated by
// internal/experiments). The engine executes every cell through the
// unified run API under a signal-cancelled context: Ctrl-C (or
// -timeout) stops scheduling and interrupts in-flight simulations at
// their next poll boundary; a second Ctrl-C hard-kills.
//
// Usage:
//
//	rixbench -list                  # print registered specs
//	rixbench -suite fig4            # Figure 4: extension impact
//	rixbench -suite fig5            # Figure 5: integration stream analysis
//	rixbench -suite fig6            # Figure 6: IT associativity and size
//	rixbench -suite fig7            # Figure 7: reduced-complexity cores
//	rixbench -suite diag            # §3.2/§3.5 scalar diagnostics
//	rixbench -suite ablate          # design-choice ablations
//	rixbench -suite all
//	rixbench -suite fig4 -bench gzip,crafty -csv
//	rixbench -suite all -json       # machine-readable results
//	rixbench -suite all -sample default         # interval-sampled matrix (fast)
//	rixbench -suite fig4 -sample 16000/600/300  # explicit interval/window/warmup
//	rixbench -suite all -timeout 10m -v         # deadline + per-cell events
//
// Cross-process sampled matrices: window jobs execute on `-worker`
// processes (rixbench or rixsim, any machine sharing the directory),
// with estimates bit-identical to the in-process pool:
//
//	rixbench -worker /shared/cache &
//	rixbench -suite fig4 -sample default -coordinator -ckpt-cache /shared/cache
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"rix/cmd/internal/cmdutil"
	_ "rix/internal/experiments" // registers the paper's specs
	"rix/internal/run"
	"rix/internal/runner"
	"rix/internal/sample"
	"rix/internal/stats"
)

// jsonTable / jsonSuite shape the -json output; one suite per spec run.
type jsonTable struct {
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
}

type jsonSuite struct {
	ID          string      `json:"id"`
	Description string      `json:"description"`
	Tables      []jsonTable `json:"tables"`
}

func main() { cmdutil.Main("rixbench", body) }

func body(ctx context.Context) error {
	suite := flag.String("suite", "all", "comma-separated spec ids, or 'all' (see -list)")
	benches := flag.String("bench", "", "comma-separated workload subset (default: full paper suite)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	list := flag.Bool("list", false, "list registered specs and exit")
	parallel := flag.Int("j", 0, "max parallel simulations (default: NumCPU)")
	var sampled cmdutil.SampledFlags
	sampled.Register(flag.CommandLine)
	sampleSpec := flag.String("sample", "",
		"run interval-sampled variants of the selected specs: 'default' or interval/window[/warmup]")
	timeout := flag.Duration("timeout", 0, "cancel the run after this duration (0 = none)")
	verbose := flag.Bool("v", false, "stream per-cell progress events to stderr")
	flag.Parse()

	if err := sampled.Check(); err != nil {
		return err
	}
	if sampled.WorkerMode() {
		return sampled.RunWorker(ctx, *verbose)
	}

	var sampling *sample.Sampling
	if *sampleSpec != "" {
		sp, err := sample.ParseSampling(*sampleSpec)
		if err != nil {
			return err
		}
		sampling = &sp
	}

	if *list {
		for _, s := range runner.Specs() {
			fmt.Printf("%-8s %s\n", s.ID, s.Description)
		}
		return nil
	}

	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var names []string
	if *benches != "" {
		names = strings.Split(*benches, ",")
	}
	engine, err := runner.NewEngine(names)
	if err != nil {
		return err
	}
	if *parallel > 0 {
		engine.Parallel = *parallel
	}
	sampled.Configure(engine)
	if *verbose {
		engine.Observer = newCellLogger()
	}

	selected := strings.Split(*suite, ",")
	if *suite == "all" {
		selected = runner.IDs()
	}

	var out []jsonSuite
	for _, id := range selected {
		spec, ok := runner.Lookup(id)
		if !ok {
			return fmt.Errorf("unknown suite %q (registered: %s)", id, strings.Join(runner.IDs(), ", "))
		}
		var tables []*stats.Table
		var err error
		if sampling != nil {
			// Sampled variant: same matrix and collector, every cell
			// through the interval-sampling engine. The variant's
			// id/description replace the original's in all output so
			// sampled estimates are never mistaken for full detail.
			sampled := runner.Sampled(spec, *sampling)
			spec = &sampled
			var rs *runner.ResultSet
			if rs, err = engine.Gather(ctx, &sampled); err == nil {
				tables, err = sampled.Collect(rs)
			}
		} else {
			tables, err = engine.RunSpec(ctx, id)
		}
		if err != nil {
			return err
		}
		switch {
		case *asJSON:
			out = append(out, jsonSuite{ID: spec.ID, Description: spec.Description, Tables: toJSON(tables)})
		case *csv:
			if sampling != nil {
				fmt.Printf("# %s\n", spec.Description)
			}
			for _, t := range tables {
				fmt.Printf("# %s\n%s\n", t.Title, t.CSV())
			}
		default:
			if sampling != nil {
				fmt.Printf("## %s\n\n", spec.Description)
			}
			for _, t := range tables {
				fmt.Println(t.String())
			}
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	return nil
}

// cellLogger renders cell lifecycle events on stderr. Cells complete
// concurrently, so the logger serializes writes.
type cellLogger struct {
	mu sync.Mutex
}

func newCellLogger() *cellLogger { return &cellLogger{} }

func (l *cellLogger) Observe(e run.Event) {
	//rix:partial — only cell lifecycle matters in a matrix run
	switch e.Kind {
	case run.CellStarted, run.CellFinished:
	default:
		return // per-instruction progress is too chatty for a matrix run
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case e.Kind == run.CellStarted:
		fmt.Fprintf(os.Stderr, "[%s] start  %s [%s]\n", time.Now().Format("15:04:05"), e.Workload, e.Label)
	case e.Err != "":
		fmt.Fprintf(os.Stderr, "[%s] FAIL   %s [%s]: %s\n", time.Now().Format("15:04:05"), e.Workload, e.Label, e.Err)
	default:
		fmt.Fprintf(os.Stderr, "[%s] done   %s [%s] (%d retired)\n", time.Now().Format("15:04:05"), e.Workload, e.Label, e.Instrs)
	}
}

func toJSON(tables []*stats.Table) []jsonTable {
	out := make([]jsonTable, len(tables))
	for i, t := range tables {
		out[i] = jsonTable{Title: t.Title, Header: t.Header(), Rows: t.Rows(), Notes: t.Notes()}
	}
	return out
}
