// rixbench regenerates the paper's tables and figures.
//
// Usage:
//
//	rixbench -suite fig4            # Figure 4: extension impact
//	rixbench -suite fig5            # Figure 5: integration stream analysis
//	rixbench -suite fig6            # Figure 6: IT associativity and size
//	rixbench -suite fig7            # Figure 7: reduced-complexity cores
//	rixbench -suite diag            # §3.2/§3.5 scalar diagnostics
//	rixbench -suite ablate          # design-choice ablations
//	rixbench -suite all
//	rixbench -suite fig4 -bench gzip,crafty -csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rix/internal/experiments"
	"rix/internal/stats"
)

func main() {
	suite := flag.String("suite", "all", "fig4|fig5|fig6|fig7|diag|ablate|all")
	benches := flag.String("bench", "", "comma-separated workload subset (default: full paper suite)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	parallel := flag.Int("j", 0, "max parallel simulations (default: NumCPU)")
	flag.Parse()

	var names []string
	if *benches != "" {
		names = strings.Split(*benches, ",")
	}
	cache, err := experiments.NewCache(names)
	if err != nil {
		fatal(err)
	}
	if *parallel > 0 {
		cache.Parallel = *parallel
	}

	runners := map[string]func(*experiments.Cache) ([]*stats.Table, error){
		"fig4":   experiments.Figure4,
		"fig5":   experiments.Figure5,
		"fig6":   experiments.Figure6,
		"fig7":   experiments.Figure7,
		"diag":   experiments.Diagnostics,
		"ablate": experiments.Ablations,
	}
	order := []string{"fig4", "fig5", "fig6", "fig7", "diag", "ablate"}

	selected := strings.Split(*suite, ",")
	if *suite == "all" {
		selected = order
	}
	for _, s := range selected {
		run, ok := runners[s]
		if !ok {
			fatal(fmt.Errorf("unknown suite %q", s))
		}
		tables, err := run(cache)
		if err != nil {
			fatal(err)
		}
		for _, t := range tables {
			if *csv {
				fmt.Printf("# %s\n%s\n", t.Title, t.CSV())
			} else {
				fmt.Println(t.String())
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rixbench:", err)
	os.Exit(1)
}
