// rixbench regenerates the paper's tables and figures by enumerating
// the experiment-spec registry (internal/runner, populated by
// internal/experiments).
//
// Usage:
//
//	rixbench -list                  # print registered specs
//	rixbench -suite fig4            # Figure 4: extension impact
//	rixbench -suite fig5            # Figure 5: integration stream analysis
//	rixbench -suite fig6            # Figure 6: IT associativity and size
//	rixbench -suite fig7            # Figure 7: reduced-complexity cores
//	rixbench -suite diag            # §3.2/§3.5 scalar diagnostics
//	rixbench -suite ablate          # design-choice ablations
//	rixbench -suite all
//	rixbench -suite fig4 -bench gzip,crafty -csv
//	rixbench -suite all -json       # machine-readable results
//	rixbench -suite all -sample default         # interval-sampled matrix (fast)
//	rixbench -suite fig4 -sample 16000/600/300  # explicit interval/window/warmup
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	_ "rix/internal/experiments" // registers the paper's specs
	"rix/internal/runner"
	"rix/internal/sim"
	"rix/internal/stats"
)

// jsonTable / jsonSuite shape the -json output; one suite per spec run.
type jsonTable struct {
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
}

type jsonSuite struct {
	ID          string      `json:"id"`
	Description string      `json:"description"`
	Tables      []jsonTable `json:"tables"`
}

func main() {
	suite := flag.String("suite", "all", "comma-separated spec ids, or 'all' (see -list)")
	benches := flag.String("bench", "", "comma-separated workload subset (default: full paper suite)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	list := flag.Bool("list", false, "list registered specs and exit")
	parallel := flag.Int("j", 0, "max parallel simulations (default: NumCPU)")
	sampleSpec := flag.String("sample", "",
		"run interval-sampled variants of the selected specs: 'default' or interval/window[/warmup]")
	flag.Parse()

	var sampling *sim.Sampling
	if *sampleSpec != "" {
		sp, err := sim.ParseSampling(*sampleSpec)
		if err != nil {
			fatal(err)
		}
		sampling = &sp
	}

	if *list {
		for _, s := range runner.Specs() {
			fmt.Printf("%-8s %s\n", s.ID, s.Description)
		}
		return
	}

	var names []string
	if *benches != "" {
		names = strings.Split(*benches, ",")
	}
	engine, err := runner.NewEngine(names)
	if err != nil {
		fatal(err)
	}
	if *parallel > 0 {
		engine.Parallel = *parallel
	}

	selected := strings.Split(*suite, ",")
	if *suite == "all" {
		selected = runner.IDs()
	}

	var out []jsonSuite
	for _, id := range selected {
		spec, ok := runner.Lookup(id)
		if !ok {
			fatal(fmt.Errorf("unknown suite %q (registered: %s)", id, strings.Join(runner.IDs(), ", ")))
		}
		var tables []*stats.Table
		var err error
		if sampling != nil {
			// Sampled variant: same matrix and collector, every cell
			// through the interval-sampling engine. The variant's
			// id/description replace the original's in all output so
			// sampled estimates are never mistaken for full detail.
			sampled := runner.Sampled(spec, *sampling)
			spec = &sampled
			var rs *runner.ResultSet
			if rs, err = engine.Gather(&sampled); err == nil {
				tables, err = sampled.Collect(rs)
			}
		} else {
			tables, err = engine.RunSpec(id)
		}
		if err != nil {
			fatal(err)
		}
		switch {
		case *asJSON:
			out = append(out, jsonSuite{ID: spec.ID, Description: spec.Description, Tables: toJSON(tables)})
		case *csv:
			if sampling != nil {
				fmt.Printf("# %s\n", spec.Description)
			}
			for _, t := range tables {
				fmt.Printf("# %s\n%s\n", t.Title, t.CSV())
			}
		default:
			if sampling != nil {
				fmt.Printf("## %s\n\n", spec.Description)
			}
			for _, t := range tables {
				fmt.Println(t.String())
			}
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	}
}

func toJSON(tables []*stats.Table) []jsonTable {
	out := make([]jsonTable, len(tables))
	for i, t := range tables {
		out[i] = jsonTable{Title: t.Title, Header: t.Header(), Rows: t.Rows(), Notes: t.Notes()}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rixbench:", err)
	os.Exit(1)
}
