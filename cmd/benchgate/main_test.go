package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: rix
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPipeline/gzip/none-8         	       3	 242527688 ns/op	         0.9675 Minstr/s	 3463296 B/op	    4169 allocs/op
BenchmarkPipeline/gzip/+reverse-8     	       3	 261206425 ns/op	         0.8983 Minstr/s	 3463296 B/op	    4169 allocs/op
BenchmarkRegfile-8                    	  203942	      5967 ns/op	    8320 B/op	       4 allocs/op
PASS
ok  	rix	4.939s
`

func TestParse(t *testing.T) {
	results, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(results))
	}
	p := results[0]
	if p.Name != "Pipeline/gzip/none" || p.MinstrS != 0.9675 || p.AllocsOp != 4169 || p.NsOp != 242527688 {
		t.Errorf("first result: %+v", p)
	}
	if r := results[2]; r.Name != "Regfile" || r.MinstrS != 0 || r.AllocsOp != 4 {
		t.Errorf("regfile result: %+v", r)
	}
}

func TestGate(t *testing.T) {
	base := File{Benchmarks: []Result{
		{Name: "Pipeline/gzip/none", MinstrS: 1.0},
		{Name: "Pipeline/gzip/+reverse", MinstrS: 1.0},
		{Name: "Regfile", NsOp: 100}, // no Minstr/s: never gated
	}}
	cur := File{Benchmarks: []Result{
		{Name: "Pipeline/gzip/none", MinstrS: 0.86},     // within 15%
		{Name: "Pipeline/gzip/+reverse", MinstrS: 0.80}, // 20% down: fails
		{Name: "Regfile", NsOp: 500},
		{Name: "NewBench", MinstrS: 0.1}, // not in baseline: ignored
	}}
	failures := gate(cur, base, 0.15)
	if len(failures) != 1 || !strings.Contains(failures[0], "+reverse") {
		t.Errorf("failures = %v, want exactly the +reverse regression", failures)
	}
	if got := gate(cur, base, 0.25); len(got) != 0 {
		t.Errorf("25%% tolerance should pass, got %v", got)
	}
}
