package main

import (
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: rix
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPipeline/gzip/none-8         	       3	 242527688 ns/op	         0.9675 Minstr/s	       152.0 trace-peak	 3463296 B/op	    4169 allocs/op
BenchmarkPipeline/gzip/+reverse-8     	       3	 261206425 ns/op	         0.8983 Minstr/s	       160.0 trace-peak	 3463296 B/op	    4169 allocs/op
BenchmarkRegfile-8                    	  203942	      5967 ns/op	    8320 B/op	       4 allocs/op
BenchmarkSampledParallel-8            	       3	  15964804 ns/op	        14.70 Minstr/s	         8.000 cores	         3.150 speedup	21572200 B/op	    1571 allocs/op
PASS
ok  	rix	4.939s
`

func TestParse(t *testing.T) {
	results, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("parsed %d results, want 4", len(results))
	}
	p := results[0]
	if p.Name != "Pipeline/gzip/none" || p.MinstrS != 0.9675 || p.AllocsOp != 4169 ||
		p.NsOp != 242527688 || p.TracePeak != 152 {
		t.Errorf("first result: %+v", p)
	}
	if r := results[2]; r.Name != "Regfile" || r.MinstrS != 0 || r.AllocsOp != 4 || r.TracePeak != 0 {
		t.Errorf("regfile result: %+v", r)
	}
	if r := results[3]; r.Name != "SampledParallel" || r.Speedup != 3.15 || r.Cores != 8 {
		t.Errorf("sampled-parallel result: %+v", r)
	}
}

var defaultTol = tolerances{MinstrS: 0.15, Allocs: 0.10, Peak: 0.10}

func TestGateMinstr(t *testing.T) {
	base := File{Benchmarks: []Result{
		{Name: "Pipeline/gzip/none", MinstrS: 1.0},
		{Name: "Pipeline/gzip/+reverse", MinstrS: 1.0},
		{Name: "Regfile", NsOp: 100}, // no Minstr/s: never throughput-gated
	}}
	cur := File{Benchmarks: []Result{
		{Name: "Pipeline/gzip/none", MinstrS: 0.86},     // within 15%
		{Name: "Pipeline/gzip/+reverse", MinstrS: 0.80}, // 20% down: fails
		{Name: "Regfile", NsOp: 500},
		{Name: "NewBench", MinstrS: 0.1}, // not in baseline: ignored
	}}
	failures := gate(cur, base, defaultTol)
	if len(failures) != 1 || !strings.Contains(failures[0], "+reverse") {
		t.Errorf("failures = %v, want exactly the +reverse regression", failures)
	}
	tol := defaultTol
	tol.MinstrS = 0.25
	if got := gate(cur, base, tol); len(got) != 0 {
		t.Errorf("25%% tolerance should pass, got %v", got)
	}
}

func TestGateAllocs(t *testing.T) {
	base := File{Benchmarks: []Result{
		{Name: "Pipeline/gzip/none", MinstrS: 1.0, AllocsOp: 4000},
		{Name: "Regfile", AllocsOp: 3},
	}}
	// Within relative tolerance: passes.
	cur := File{Benchmarks: []Result{
		{Name: "Pipeline/gzip/none", MinstrS: 1.0, AllocsOp: 4300},
		{Name: "Regfile", AllocsOp: 5}, // tiny absolute growth under slack
	}}
	if got := gate(cur, base, defaultTol); len(got) != 0 {
		t.Errorf("within-tolerance allocs should pass, got %v", got)
	}
	// Past the ceiling: fails.
	cur.Benchmarks[0].AllocsOp = 5000
	failures := gate(cur, base, defaultTol)
	if len(failures) != 1 || !strings.Contains(failures[0], "allocs/op") {
		t.Errorf("failures = %v, want the allocs regression", failures)
	}
	// A zero-alloc baseline exploding past the absolute slack: fails.
	base.Benchmarks[1].AllocsOp = 0
	cur.Benchmarks[0].AllocsOp = 4000
	cur.Benchmarks[1].AllocsOp = 100
	failures = gate(cur, base, defaultTol)
	if len(failures) != 1 || !strings.Contains(failures[0], "Regfile") {
		t.Errorf("failures = %v, want the Regfile alloc explosion", failures)
	}
}

func TestGateTracePeak(t *testing.T) {
	base := File{Benchmarks: []Result{
		{Name: "PipelineStreaming", MinstrS: 1.0, TracePeak: 150},
		{Name: "Regfile"}, // no peak: never peak-gated
	}}
	cur := File{Benchmarks: []Result{
		{Name: "PipelineStreaming", MinstrS: 1.0, TracePeak: 160},
		{Name: "Regfile"},
	}}
	if got := gate(cur, base, defaultTol); len(got) != 0 {
		t.Errorf("within-tolerance peak should pass, got %v", got)
	}
	cur.Benchmarks[0].TracePeak = 4000 // window grew to O(trace): fails
	failures := gate(cur, base, defaultTol)
	if len(failures) != 1 || !strings.Contains(failures[0], "trace-peak") {
		t.Errorf("failures = %v, want the trace-peak regression", failures)
	}
}

func TestGateSpeedup(t *testing.T) {
	base := File{Benchmarks: []Result{
		{Name: "SampledParallel", MinSpeedup: 2.5},
		{Name: "Regfile"}, // no floor: never speedup-gated
	}}
	// Enough cores, enough speedup: passes.
	cur := File{Benchmarks: []Result{
		{Name: "SampledParallel", Speedup: 3.1, Cores: 8},
		{Name: "Regfile"},
	}}
	if got := gate(cur, base, defaultTol); len(got) != 0 {
		t.Errorf("3.1x on 8 cores should pass, got %v", got)
	}
	// Enough cores, too little speedup: fails.
	cur.Benchmarks[0].Speedup = 1.8
	failures := gate(cur, base, defaultTol)
	if len(failures) != 1 || !strings.Contains(failures[0], "speedup") {
		t.Errorf("failures = %v, want the speedup regression", failures)
	}
	// Starved runner: exempt regardless of speedup.
	cur.Benchmarks[0].Cores = 2
	if got := gate(cur, base, defaultTol); len(got) != 0 {
		t.Errorf("2-core runner must be exempt from the speedup gate, got %v", got)
	}
}

// TestUpdateRoundTrip exercises the -update flow's write/load pair: the
// written baseline reads back identically, so refreshes are mechanical.
func TestUpdateRoundTrip(t *testing.T) {
	results, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := write(path, File{Benchmarks: results}); err != nil {
		t.Fatal(err)
	}
	back, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Benchmarks) != len(results) {
		t.Fatalf("round-trip lost benchmarks: %d != %d", len(back.Benchmarks), len(results))
	}
	for i := range results {
		if back.Benchmarks[i] != results[i] {
			t.Errorf("benchmark %d: %+v != %+v", i, back.Benchmarks[i], results[i])
		}
	}
}
