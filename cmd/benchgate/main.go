// benchgate converts `go test -bench` output into the committed
// BENCH_pipeline.json artifact format and gates performance regressions
// against a checked-in baseline.
//
// The JSON records, per benchmark: simulated-instruction throughput
// (Minstr/s, when the benchmark reports it), ns/op, B/op, allocs/op,
// and the peak golden-trace window occupancy (trace-peak, when the
// benchmark reports it). The gate fails (exit 1) when any benchmark
// present in both files:
//
//   - loses more than -tolerance of its baseline Minstr/s,
//   - grows allocs/op past baseline×(1+-alloc-tolerance) plus a small
//     absolute slack (the zero-allocation hot loop must stay that way), or
//   - grows trace-peak past baseline×(1+-peak-tolerance) (the O(ROB)
//     streaming bound must not quietly become O(trace)), or
//   - reports a speedup below the baseline's min_speedup floor while
//     running on >= 4 cores (a starved runner is exempt: it cannot
//     demonstrate parallel speedup).
//
// Usage:
//
//	go test -bench 'Pipeline|IntegrationTable|Regfile' -benchmem -run '^$' | \
//	    benchgate -out BENCH_pipeline.json -baseline ci/bench_baseline.json
//	benchgate -in bench.txt -baseline ci/bench_baseline.json -update   # refresh baseline
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"

	"rix/cmd/internal/cmdutil"
)

// Result is one benchmark's measurements; committed format — do not
// rename fields without updating ci/bench_baseline.json and the CI docs.
type Result struct {
	Name     string  `json:"name"`
	NsOp     float64 `json:"ns_op"`
	MinstrS  float64 `json:"minstr_s,omitempty"`
	BOp      float64 `json:"b_op,omitempty"`
	AllocsOp float64 `json:"allocs_op,omitempty"`
	// TracePeak is the peak golden-trace window occupancy
	// (pipeline.Stats.TraceWindowPeak) the benchmark observed — the
	// machine-checkable form of the O(ROB) streaming guarantee.
	TracePeak float64 `json:"trace_peak,omitempty"`
	// Speedup is a benchmark-reported wall-clock ratio against its own
	// sequential reference (BenchmarkSampledParallel reports it), and
	// Cores the host parallelism it ran under. Gated only when the
	// baseline sets MinSpeedup and the host has >= 4 cores — a starved
	// CI runner cannot demonstrate parallel speedup and must not fail
	// the gate for it.
	Speedup float64 `json:"speedup,omitempty"`
	Cores   float64 `json:"cores,omitempty"`
	// MinSpeedup is a baseline-only floor on Speedup (never measured;
	// -update carries it over from the previous baseline).
	MinSpeedup float64 `json:"min_speedup,omitempty"`
}

// File is the BENCH_pipeline.json envelope.
type File struct {
	Benchmarks []Result `json:"benchmarks"`
}

var nameRe = regexp.MustCompile(`^Benchmark([^\s]+?)(-\d+)?$`)

// parse extracts benchmark results from `go test -bench` output. Lines
// look like:
//
//	BenchmarkPipeline/gzip/none-8  3  242527688 ns/op  0.9675 Minstr/s  3463296 B/op  4169 allocs/op
func parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		m := nameRe.FindStringSubmatch(fields[0])
		if m == nil {
			continue
		}
		res := Result{Name: m[1]}
		// fields[1] is the iteration count; the rest are (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchgate: bad value %q in %q", fields[i], sc.Text())
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsOp = v
			case "Minstr/s":
				res.MinstrS = v
			case "B/op":
				res.BOp = v
			case "allocs/op":
				res.AllocsOp = v
			case "trace-peak":
				res.TracePeak = v
			case "speedup":
				res.Speedup = v
			case "cores":
				res.Cores = v
			}
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

func load(path string) (File, error) {
	var f File
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	return f, json.Unmarshal(data, &f)
}

func write(path string, f File) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// tolerances bundles the per-metric gate thresholds.
type tolerances struct {
	MinstrS float64 // allowed fractional Minstr/s loss
	Allocs  float64 // allowed fractional allocs/op growth
	Peak    float64 // allowed fractional trace-peak growth
}

// allocSlack is the absolute allocs/op headroom under the relative
// ceiling, so near-zero baselines (the zero-allocation hot loop) do not
// flake on a couple of one-off allocations.
const allocSlack = 16

// gate compares every benchmark both files measure against the baseline:
// Minstr/s must not fall below its floor, allocs/op and trace-peak must
// not grow past their ceilings.
func gate(cur, base File, tol tolerances) (failures []string) {
	baseBy := map[string]Result{}
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	for _, c := range cur.Benchmarks {
		b, ok := baseBy[c.Name]
		if !ok {
			continue
		}
		if b.MinstrS > 0 && c.MinstrS > 0 {
			floor := b.MinstrS * (1 - tol.MinstrS)
			if c.MinstrS < floor {
				failures = append(failures, fmt.Sprintf(
					"%s: %.4f Minstr/s is %.1f%% below baseline %.4f (floor %.4f)",
					c.Name, c.MinstrS, 100*(1-c.MinstrS/b.MinstrS), b.MinstrS, floor))
			}
		}
		if ceil := b.AllocsOp*(1+tol.Allocs) + allocSlack; c.AllocsOp > ceil {
			failures = append(failures, fmt.Sprintf(
				"%s: %.0f allocs/op exceeds baseline %.0f (ceiling %.0f)",
				c.Name, c.AllocsOp, b.AllocsOp, ceil))
		}
		if b.TracePeak > 0 && c.TracePeak > b.TracePeak*(1+tol.Peak) {
			failures = append(failures, fmt.Sprintf(
				"%s: trace-peak %.0f exceeds baseline %.0f (ceiling %.0f): streaming window no longer O(ROB)?",
				c.Name, c.TracePeak, b.TracePeak, b.TracePeak*(1+tol.Peak)))
		}
		if b.MinSpeedup > 0 && c.Speedup > 0 && c.Cores >= 4 && c.Speedup < b.MinSpeedup {
			failures = append(failures, fmt.Sprintf(
				"%s: %.2fx speedup on %.0f cores is below the required %.2fx",
				c.Name, c.Speedup, c.Cores, b.MinSpeedup))
		}
	}
	return failures
}

func main() { cmdutil.Main("benchgate", body) }

func body(context.Context) error {
	in := flag.String("in", "", "bench output file (default stdin)")
	out := flag.String("out", "BENCH_pipeline.json", "JSON artifact to write")
	baseline := flag.String("baseline", "", "baseline JSON to gate against (no gate when empty)")
	tolerance := flag.Float64("tolerance", 0.15, "allowed fractional Minstr/s regression")
	allocTol := flag.Float64("alloc-tolerance", 0.10, "allowed fractional allocs/op growth")
	peakTol := flag.Float64("peak-tolerance", 0.10, "allowed fractional trace-peak growth")
	update := flag.Bool("update", false,
		"rewrite the -baseline file from the current results instead of gating")
	flag.Parse()

	src := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	results, err := parse(src)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark results found in input")
	}
	cur := File{Benchmarks: results}
	if err := write(*out, cur); err != nil {
		return err
	}
	fmt.Printf("benchgate: wrote %s (%d benchmarks)\n", *out, len(results))

	if *baseline == "" {
		if *update {
			return fmt.Errorf("-update requires -baseline")
		}
		return nil
	}
	if *update {
		// Intentional perf change: the new numbers become the baseline,
		// ending the era of hand-edited baseline bumps. MinSpeedup floors
		// are policy, not measurement — carry them over by name.
		if old, err := load(*baseline); err == nil {
			floors := map[string]float64{}
			for _, b := range old.Benchmarks {
				if b.MinSpeedup > 0 {
					floors[b.Name] = b.MinSpeedup
				}
			}
			for i := range cur.Benchmarks {
				cur.Benchmarks[i].MinSpeedup = floors[cur.Benchmarks[i].Name]
			}
		}
		if err := write(*baseline, cur); err != nil {
			return err
		}
		fmt.Printf("benchgate: baseline %s updated (%d benchmarks)\n", *baseline, len(results))
		return nil
	}
	base, err := load(*baseline)
	if err != nil {
		return fmt.Errorf("load baseline: %w", err)
	}
	tol := tolerances{MinstrS: *tolerance, Allocs: *allocTol, Peak: *peakTol}
	if failures := gate(cur, base, tol); len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "benchgate: REGRESSION:", f)
		}
		return fmt.Errorf("%d benchmark(s) regressed past baseline %s", len(failures), *baseline)
	}
	fmt.Printf("benchgate: within tolerance of baseline %s (Minstr/s %.0f%%, allocs %.0f%%, trace-peak %.0f%%)\n",
		*baseline, 100**tolerance, 100**allocTol, 100**peakTol)
	return nil
}
