// The membypass example walks through the paper's Figure 3: speculative
// memory bypassing of register saves and restores via reverse
// integration. It drives the integration machinery directly (integration
// table + reference-counted register file + map table) and narrates every
// rename decision, then runs the same pattern through the full pipeline.
package main

import (
	"context"
	"fmt"
	"log"

	"rix/internal/core"
	"rix/internal/isa"
	"rix/internal/regfile"
	"rix/internal/rename"
	"rix/internal/run"
	"rix/internal/sim"
)

func main() {
	fmt.Println("=== Figure 3 walkthrough: reverse integration at the rename stage ===")
	fmt.Println()
	walkthrough()
	fmt.Println()
	fmt.Println("=== The same idiom through the full pipeline ===")
	fmt.Println()
	pipelineDemo()
}

// walkthrough replays Figure 3's dynamic instruction stream.
func walkthrough() {
	rf := regfile.New(regfile.Config{NumRegs: 64, GenBits: 4, RefBits: 4, GeneralMode: true})
	g := core.New(
		core.Policy{Enable: true, GeneralReuse: true, OpcodeIndex: true, Reverse: true},
		core.TableConfig{Entries: 64, Assoc: 4}, core.LISPConfig{}, rf)
	m := rename.NewMapTable()
	seq := uint64(0)

	seed := func(l isa.Reg, v uint64) {
		p, _ := rf.Alloc()
		rf.SetReady(p, v)
		m.Set(l, rename.Mapping{P: p, Gen: rf.Gen(p)})
	}
	seed(isa.RegT0, 111) // t0: caller-saved value
	seed(isa.RegS0, 222) // s0: callee-saved value
	seed(isa.RegSP, 0x8000)

	step := func(comment string, in isa.Instr, pc uint64, depth int) {
		seq++
		in1, in2 := m.Get(in.Ra), m.Get(in.Rb)
		res, _, ok := g.TryIntegrate(in, pc, depth, seq, m, nil)
		var dest, old rename.Mapping
		switch {
		case ok:
			dest = rename.Mapping{P: res.Out, Gen: res.OutGen}
			old = m.Set(in.Rd, dest)
		case in.Op.HasDest() && in.Rd != isa.RegZero:
			p, _ := rf.Alloc()
			rf.SetReady(p, 0)
			dest = rename.Mapping{P: p, Gen: rf.Gen(p)}
			old = m.Set(in.Rd, dest)
		}
		g.NoteRenamed(in, pc, depth, seq, in1, in2, dest, old, ok)
		tag := " "
		if ok {
			tag = "*"
		}
		fmt.Printf(" %s %-24s ; %s", tag, isa.Disasm(in, 0), comment)
		if ok {
			fmt.Printf("  -> INTEGRATED p%d", res.Out)
			if res.Reverse {
				fmt.Printf(" (reverse entry)")
			}
		}
		fmt.Println()
	}

	t0p := m.Get(isa.RegT0).P
	s0p := m.Get(isa.RegS0).P
	spp := m.Get(isa.RegSP).P
	fmt.Printf("   initial mappings: t0->p%d, s0->p%d, sp->p%d\n\n", t0p, s0p, spp)

	step("caller save: creates reverse ldq entry",
		isa.Instr{Op: isa.STQ, Ra: isa.RegSP, Rb: isa.RegT0, Imm: 8}, 0x100, 0)
	step("open frame: creates reverse lda +32 entry",
		isa.Instr{Op: isa.LDA, Rd: isa.RegSP, Ra: isa.RegSP, Imm: -32}, 0x200, 1)
	step("callee save: creates reverse ldq entry",
		isa.Instr{Op: isa.STQ, Ra: isa.RegSP, Rb: isa.RegS0, Imm: 4}, 0x204, 1)
	step("function body clobbers t0",
		isa.Instr{Op: isa.ADDQI, Rd: isa.RegT0, Ra: isa.RegT0, Imm: 7}, 0x208, 1)
	step("function body clobbers s0",
		isa.Instr{Op: isa.ADDQI, Rd: isa.RegS0, Ra: isa.RegS0, Imm: 9}, 0x20c, 1)
	step("callee restore",
		isa.Instr{Op: isa.LDQ, Rd: isa.RegS0, Ra: isa.RegSP, Imm: 4}, 0x210, 1)
	step("close frame",
		isa.Instr{Op: isa.LDA, Rd: isa.RegSP, Ra: isa.RegSP, Imm: 32}, 0x214, 1)
	step("caller restore",
		isa.Instr{Op: isa.LDQ, Rd: isa.RegT0, Ra: isa.RegSP, Imm: 8}, 0x104, 0)

	fmt.Printf("\n   final mappings:   t0->p%d, s0->p%d, sp->p%d (originals restored: %v %v %v)\n",
		m.Get(isa.RegT0).P, m.Get(isa.RegS0).P, m.Get(isa.RegSP).P,
		m.Get(isa.RegT0).P == t0p, m.Get(isa.RegS0).P == s0p, m.Get(isa.RegSP).P == spp)
}

const demoSrc = `
        .text
main:   ldiq s0, 800
        ldiq s1, 5
loop:   mov  a0, s1
        call f
        mov  s1, v0
        addqi s0, s0, -1
        bne  s0, loop
        clr  v0
        clr  a0
        syscall
f:      lda  sp, -32(sp)
        stq  ra, 0(sp)
        stq  s2, 8(sp)
        stq  s3, 16(sp)
        addqi s2, a0, 3
        addqi s3, a0, 5
        addq v0, s2, s3
        andi v0, v0, 4095
        ldq  s3, 16(sp)
        ldq  s2, 8(sp)
        ldq  ra, 0(sp)
        lda  sp, 32(sp)
        ret
`

func pipelineDemo() {
	// Each run.Do call assembles the inline source and streams its own
	// golden trace straight from the emulator.
	ctx := context.Background()
	noRevRes, err := run.Do(ctx, run.Request{
		Source: demoSrc, SourceName: "membypass.s",
		Options: sim.Options{Integration: sim.IntOpcode},
	})
	if err != nil {
		log.Fatal(err)
	}
	revRes, err := run.Do(ctx, run.Request{
		Source: demoSrc, SourceName: "membypass.s",
		Options: sim.Options{Integration: sim.IntReverse},
	})
	if err != nil {
		log.Fatal(err)
	}
	noRev, rev := &noRevRes.Stats, &revRes.Stats
	fmt.Printf("without reverse integration: %5.1f%% of sp loads bypass, IPC %.3f\n",
		100*noRev.SPLoadIntegrationRate(), noRev.IPC())
	fmt.Printf("with    reverse integration: %5.1f%% of sp loads bypass, IPC %.3f\n",
		100*rev.SPLoadIntegrationRate(), rev.IPC())
	fmt.Printf("reverse integrations retired: %d (%.1f%% of all instructions)\n",
		rev.IntegratedReverse, 100*rev.ReverseRate())
}
