// Example: the unified run API (internal/run) end to end — a simulation
// described as a JSON value, executed under a cancellable context,
// observed live through typed events, with a JSON-serializable result.
//
// The program runs the gzip workload twice through run.Do:
//
//  1. A sampled run with checkpoints and an observer: the request is
//     round-tripped through JSON first (proving a run is just data),
//     window and checkpoint events stream as it executes.
//
//  2. The same run again with the context cancelled from an observer
//     after the second measurement window — then a Resume request
//     finishes the interrupted run from its flushed checkpoints and the
//     program verifies the aggregate matches the uninterrupted run
//     exactly (the resume-after-cancel guarantee).
//
// Run it with: go run ./examples/runapi
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"reflect"

	"rix/internal/run"
	"rix/internal/sample"
	"rix/internal/sim"
)

func main() {
	dir, err := os.MkdirTemp("", "runapi-ckpt-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sp := sample.DefaultSampling()
	req := run.Request{
		Workload:      "gzip",
		Options:       sim.Options{Integration: sim.IntReverse, Sampling: &sp},
		CheckpointDir: dir,
	}

	// A run is a value: serialize, deserialize (validated eagerly), run.
	data, err := run.MarshalRequest(&req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("request as data:\n%s\n\n", data)
	parsed, err := run.UnmarshalRequest(data)
	if err != nil {
		log.Fatal(err)
	}

	obs := run.ObserverFunc(func(e run.Event) {
		//rix:partial — the example prints just two illustrative kinds
		switch e.Kind {
		case run.WindowDone:
			fmt.Printf("  event: window %2d done (%d instructions measured)\n", e.Window, e.Instrs)
		case run.CellFinished:
			fmt.Printf("  event: %s [%s] finished\n", e.Workload, e.Label)
		}
	})
	fmt.Println("sampled run with live observation:")
	uninterrupted, err := run.Do(context.Background(), *parsed, run.WithObserver(obs))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s\nwall clock: %v\n\n", uninterrupted.Sampled, uninterrupted.Wall)

	// Interrupt the same run after window 1, from inside the run itself.
	dir2, err := os.MkdirTemp("", "runapi-ckpt2-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir2)
	req.CheckpointDir = dir2

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	killer := run.ObserverFunc(func(e run.Event) {
		if e.Kind == run.WindowDone && e.Window == 1 {
			cancel()
		}
	})
	_, err = run.Do(ctx, req, run.WithObserver(killer))
	if !errors.Is(err, context.Canceled) {
		log.Fatalf("interrupted run returned %v, want context.Canceled — the cancellation path was not exercised", err)
	}
	fmt.Printf("cancelled run returned: %v\n", err)

	// Finish it from the flushed checkpoints.
	req.Resume = true
	resumed, err := run.Do(context.Background(), req)
	if err != nil {
		log.Fatal(err)
	}
	if !reflect.DeepEqual(resumed.Stats, uninterrupted.Stats) {
		log.Fatal("resumed aggregate differs from the uninterrupted run")
	}
	fmt.Printf("resumed %d windows; aggregate is bit-identical to the uninterrupted run\n",
		len(resumed.Sampled.Windows))
	fmt.Printf("IPC %.3f, integration rate %.2f%%\n",
		resumed.Sampled.IPC, 100*resumed.Sampled.Rate)
}
