// The complexity example reproduces the paper's §3.5 trade-off on one
// workload: integration as a low-complexity substitute for execution
// bandwidth and issue buffering. It compares the base core against cores
// with half the reservation stations (RS), reduced issue width (IW), and
// both (IW+RS), each with and without integration.
package main

import (
	"fmt"
	"log"

	"rix/internal/sim"
	"rix/internal/workload"
)

func main() {
	bench := "vortex"
	b, ok := workload.ByName(bench)
	if !ok {
		log.Fatalf("unknown workload %s", bench)
	}
	bw, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	p := bw.Prog
	fmt.Printf("workload: %s (%s), %d dynamic instructions\n\n",
		b.Name, b.Description, bw.DynLen)

	cores := []struct {
		name, core string
	}{
		{"base: 4-way issue, 40 RS", sim.CoreBase},
		{"RS:   4-way issue, 20 RS", sim.CoreRS},
		{"IW:   3-way issue, 1 ld/st port", sim.CoreIW},
		{"IW+RS: both reductions", sim.CoreIWRS},
	}

	baseStats, err := sim.Run(p, bw.Source(), sim.Options{Core: sim.CoreBase, Integration: sim.IntNone})
	if err != nil {
		log.Fatal(err)
	}
	baseIPC := baseStats.IPC()
	fmt.Printf("%-34s %10s %12s %14s\n", "core", "plain", "+integration", "int. recovers")
	for _, c := range cores {
		plain, err := sim.Run(p, bw.Source(), sim.Options{Core: c.core, Integration: sim.IntNone})
		if err != nil {
			log.Fatal(err)
		}
		integ, err := sim.Run(p, bw.Source(), sim.Options{Core: c.core, Integration: sim.IntReverse})
		if err != nil {
			log.Fatal(err)
		}
		dPlain := 100 * (plain.IPC()/baseIPC - 1)
		dInteg := 100 * (integ.IPC()/baseIPC - 1)
		fmt.Printf("%-34s %+9.1f%% %+11.1f%% %13.1f%%\n",
			c.name, dPlain, dInteg, dInteg-dPlain)
	}
	fmt.Println("\n(percentages are IPC deltas vs the un-integrated base core;")
	fmt.Println(" the paper's claim: integration compensates for a 25% issue-width")
	fmt.Println(" or 50% issue-buffer reduction)")
}
