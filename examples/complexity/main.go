// The complexity example reproduces the paper's §3.5 trade-off on one
// workload: integration as a low-complexity substitute for execution
// bandwidth and issue buffering. It compares the base core against cores
// with half the reservation stations (RS), reduced issue width (IW), and
// both (IW+RS), each with and without integration.
package main

import (
	"context"
	"fmt"
	"log"

	"rix/internal/run"
	"rix/internal/sim"
	"rix/internal/workload"
)

// do executes one configuration of the workload through the unified run
// API and returns its IPC. Each call mints an independent golden-trace
// stream, so runs never share consumable state.
func do(ctx context.Context, bench string, o sim.Options) float64 {
	res, err := run.Do(ctx, run.Request{Workload: bench, Options: o})
	if err != nil {
		log.Fatal(err)
	}
	return res.Stats.IPC()
}

func main() {
	ctx := context.Background()
	bench := "vortex"
	b, ok := workload.ByName(bench)
	if !ok {
		log.Fatalf("unknown workload %s", bench)
	}
	bw, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s (%s), %d dynamic instructions\n\n",
		b.Name, b.Description, bw.DynLen)

	cores := []struct {
		name, core string
	}{
		{"base: 4-way issue, 40 RS", sim.CoreBase},
		{"RS:   4-way issue, 20 RS", sim.CoreRS},
		{"IW:   3-way issue, 1 ld/st port", sim.CoreIW},
		{"IW+RS: both reductions", sim.CoreIWRS},
	}

	baseIPC := do(ctx, bench, sim.Options{Core: sim.CoreBase, Integration: sim.IntNone})
	fmt.Printf("%-34s %10s %12s %14s\n", "core", "plain", "+integration", "int. recovers")
	for _, c := range cores {
		plainIPC := do(ctx, bench, sim.Options{Core: c.core, Integration: sim.IntNone})
		integIPC := do(ctx, bench, sim.Options{Core: c.core, Integration: sim.IntReverse})
		dPlain := 100 * (plainIPC/baseIPC - 1)
		dInteg := 100 * (integIPC/baseIPC - 1)
		fmt.Printf("%-34s %+9.1f%% %+11.1f%% %13.1f%%\n",
			c.name, dPlain, dInteg, dInteg-dPlain)
	}
	fmt.Println("\n(percentages are IPC deltas vs the un-integrated base core;")
	fmt.Println(" the paper's claim: integration compensates for a 25% issue-width")
	fmt.Println(" or 50% issue-buffer reduction)")
}
