// The quickstart example assembles a small program, runs it on the
// cycle-level simulator with and without register integration, and prints
// what integration did: which instructions bypassed the execution engine
// and how much faster the machine got.
package main

import (
	"context"
	"fmt"
	"log"

	"rix/internal/asm"
	"rix/internal/emu"
	"rix/internal/run"
	"rix/internal/sim"
)

const src = `
; A loop with un-hoisted invariants and a helper call: general reuse
; integrates the invariant recomputations, reverse integration bypasses
; the save/restore pair in the helper.
        .text
main:   lda  sp, -16(sp)
        stq  ra, 0(sp)
        ldiq s0, 2000           ; iterations
        ldiq s1, table
        clr  s2
loop:   lda  t0, 64(s1)         ; un-hoisted invariant
        ldq  t1, 0(t0)          ; invariant load
        mov  a0, t1
        call scale              ; helper with a callee save
        addq s2, s2, v0
        addqi s0, s0, -1
        bne  s0, loop
        mov  a0, s2
        ldiq v0, 1
        syscall                 ; print checksum
        clr  v0
        clr  a0
        syscall                 ; exit(0)

scale:  lda  sp, -16(sp)
        stq  s5, 8(sp)          ; save (reverse-integration target)
        ldiq s5, 3
        mulq v0, a0, s5
        ldq  s5, 8(sp)          ; restore (bypassed by reverse entry)
        lda  sp, 16(sp)
        ret
        .data
table:  .space 56
        .word 7
`

func main() {
	p, err := asm.Assemble("quickstart.s", src)
	if err != nil {
		log.Fatal(err)
	}
	// Golden trace: the architectural execution every configuration is
	// validated against (this is also how DIVA re-execution is modelled).
	// It is small here, so materialize it once for the banner; the
	// simulator itself consumes a streaming source with O(ROB) buffering.
	trace, e, err := emu.Trace(p, 1<<22)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program: %d static, %d dynamic instructions, output %q\n\n",
		len(p.Code), len(trace), e.Output)

	// Each run.Do call assembles the inline source and streams its own
	// golden trace — no shared state between the two configurations.
	ctx := context.Background()
	baseRes, err := run.Do(ctx, run.Request{
		Source: src, SourceName: "quickstart.s",
		Options: sim.Options{Integration: sim.IntNone},
	})
	if err != nil {
		log.Fatal(err)
	}
	fullRes, err := run.Do(ctx, run.Request{
		Source: src, SourceName: "quickstart.s",
		Options: sim.Options{Integration: sim.IntReverse},
	})
	if err != nil {
		log.Fatal(err)
	}
	base, full := &baseRes.Stats, &fullRes.Stats

	fmt.Printf("%-22s %12s %12s\n", "", "baseline", "+reverse")
	fmt.Printf("%-22s %12.3f %12.3f\n", "IPC", base.IPC(), full.IPC())
	fmt.Printf("%-22s %12d %12d\n", "cycles", base.Cycles, full.Cycles)
	fmt.Printf("%-22s %12d %12d\n", "executed instructions", base.Executed, full.Executed)
	fmt.Printf("%-22s %12s %12.1f%%\n", "integration rate", "-", 100*full.IntegrationRate())
	fmt.Printf("%-22s %12s %12.1f%%\n", "  of which reverse", "-", 100*full.ReverseRate())
	fmt.Printf("%-22s %12s %12.1f%%\n", "sp-load bypass rate", "-", 100*full.SPLoadIntegrationRate())
	fmt.Printf("\nspeedup: %.1f%%\n", 100*(full.IPC()/base.IPC()-1))
}
