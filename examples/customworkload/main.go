// The customworkload example uses the synthetic program generator to
// sweep one workload property — call density — and shows how reverse
// integration's contribution grows with it, which is the mechanism behind
// the paper's call-intensive vs call-poor benchmark split.
package main

import (
	"context"
	"fmt"
	"log"

	"rix/internal/run"
	"rix/internal/sim"
	"rix/internal/workload"
)

// builtSource resolves every workload name to one pre-built workload —
// the run.WithSource seam that lets run.Do execute programs outside the
// registry, such as this example's synthetic sweep points.
type builtSource struct{ bw workload.Built }

func (s builtSource) Get(context.Context, string) (workload.Built, error) { return s.bw, nil }

func main() {
	ctx := context.Background()
	fmt.Printf("%-14s %10s %10s %10s %10s\n",
		"call density", "rate%", "reverse%", "speedup%", "IPC")
	for _, callEvery := range []int{0, 12, 6, 3} {
		b := workload.Synth(workload.SynthParams{
			Seed:       42,
			Iters:      1500,
			BodyOps:    12,
			CallEvery:  callEvery,
			MemFrac:    0.2,
			BranchFrac: 0.15,
			Invariants: 1,
		})
		bw, err := b.Build()
		if err != nil {
			log.Fatal(err)
		}
		src := run.WithSource(builtSource{bw})
		baseRes, err := run.Do(ctx, run.Request{
			Workload: b.Name, Options: sim.Options{Integration: sim.IntNone},
		}, src)
		if err != nil {
			log.Fatal(err)
		}
		fullRes, err := run.Do(ctx, run.Request{
			Workload: b.Name, Options: sim.Options{Integration: sim.IntReverse},
		}, src)
		if err != nil {
			log.Fatal(err)
		}
		base, full := &baseRes.Stats, &fullRes.Stats
		label := "none"
		if callEvery > 0 {
			label = fmt.Sprintf("1 per %d ops", callEvery)
		}
		fmt.Printf("%-14s %9.1f%% %9.1f%% %+9.1f%% %10.2f\n",
			label,
			100*full.IntegrationRate(), 100*full.ReverseRate(),
			100*(full.IPC()/base.IPC()-1), base.IPC())
	}
}
