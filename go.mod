module rix

go 1.24
